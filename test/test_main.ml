(* Aggregate test runner. Each test module contributes a [suite] value. *)

let () =
  Alcotest.run "simd_align"
    (List.concat
       [
         Test_support.suite;
         Test_machine.suite;
         Test_parse.suite;
         Test_analysis.suite;
         Test_layout_interp.suite;
         Test_policies.suite;
         Test_opt.suite;
         Test_reassoc.suite;
         Test_codegen.suite;
         Test_vir.suite;
         Test_passes.suite;
         Test_unroll.suite;
         Test_reduce.suite;
         Test_strided.suite;
         Test_sim.suite;
         Test_peel.suite;
         Test_emit.suite;
         Test_backend.suite;
         Test_retarget.suite;
         Test_bench.suite;
         Test_corpus.suite;
         Test_facade.suite;
         Test_differential.suite;
         Test_fuzz.suite;
         Test_trace.suite;
         Test_par.suite;
         Test_check.suite;
         Test_mask.suite;
         Test_serve.suite;
         Test_dataflow.suite;
         Test_cleanup.suite;
         Test_lint.suite;
       ])
