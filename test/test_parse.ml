(* Parser and pretty-printer tests: concrete syntax, error reporting, and
   the print→parse round trip (including a qcheck property over random
   programs). *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok src =
  match Parse.program_of_string_result src with
  | Ok p -> p
  | Error m -> Alcotest.failf "unexpected parse error: %s" m

let parse_err src =
  match Parse.program_of_string_result src with
  | Ok _ -> Alcotest.failf "expected parse error for %S" src
  | Error m -> m

let fig1 =
  {|
int32 a[128] @ 0;
int32 b[128] @ 4;
int32 c[128] @ ?;
param alpha;
for (i = 0; i < 100; i++) {
  a[i+3] = b[i+1] + c[i+2] * alpha;
}
|}

let test_basic () =
  let p = parse_ok fig1 in
  check_int "arrays" 3 (List.length p.Ast.arrays);
  check_int "params" 1 (List.length p.Ast.params);
  check_int "stmts" 1 (List.length p.Ast.loop.Ast.body);
  Alcotest.(check string) "counter" "i" p.Ast.loop.Ast.counter;
  check_bool "trip" true (p.Ast.loop.Ast.trip = Ast.Trip_const 100);
  let b = Ast.find_array_exn p "b" in
  check_bool "b align" true (b.Ast.arr_align = Ast.Known 4);
  let c = Ast.find_array_exn p "c" in
  check_bool "c runtime" true (c.Ast.arr_align = Ast.Unknown)

let test_default_align () =
  let p = parse_ok "int32 a[8];\nfor (i = 0; i < 4; i++) { a[i] = 1; }" in
  check_bool "default @0" true
    ((Ast.find_array_exn p "a").Ast.arr_align = Ast.Known 0)

let test_negative_offset_and_literals () =
  let p =
    parse_ok
      "int32 a[8];\nint32 b[8];\nfor (i = 0; i < 4; i++) { a[i] = b[i-1] + (-3); }"
  in
  match (List.hd p.Ast.loop.Ast.body).Ast.rhs with
  | Ast.Binop (Ast.Add, Ast.Load r, Ast.Const c) ->
    check_int "offset -1" (-1) r.Ast.ref_offset;
    check_bool "const -3" true (c = -3L)
  | e -> Alcotest.failf "unexpected rhs %s" (Ast.show_expr e)

let test_precedence () =
  let p =
    parse_ok
      "int32 a[8];\nparam x;\nparam y;\nparam z;\n\
       for (i = 0; i < 4; i++) { a[i] = x + y * z; }"
  in
  (match (List.hd p.Ast.loop.Ast.body).Ast.rhs with
  | Ast.Binop (Ast.Add, Ast.Param "x", Ast.Binop (Ast.Mul, Ast.Param "y", Ast.Param "z"))
    ->
    ()
  | e -> Alcotest.failf "mul should bind tighter: %s" (Ast.show_expr e));
  let p2 =
    parse_ok
      "int32 a[8];\nparam x;\nparam y;\n\
       for (i = 0; i < 4; i++) { a[i] = x | y & x; }"
  in
  match (List.hd p2.Ast.loop.Ast.body).Ast.rhs with
  | Ast.Binop (Ast.Or, _, Ast.Binop (Ast.And, _, _)) -> ()
  | e -> Alcotest.failf "and should bind tighter than or: %s" (Ast.show_expr e)

let test_minmax_and_parens () =
  let p =
    parse_ok
      "int16 a[8];\nint16 b[8];\n\
       for (i = 0; i < 4; i++) { a[i] = min(b[i], 3) + max(b[i+1], (1 + 2)); }"
  in
  check_int "2 loads" 2 (List.length (Ast.expr_loads (List.hd p.Ast.loop.Ast.body).Ast.rhs))

let test_comments () =
  let p =
    parse_ok
      "// leading\nint32 a[8]; /* inline */ int32 b[8];\n\
       for (i = 0; i < 4; i++) { a[i] = b[i]; /* trailing */ }\n// eof"
  in
  check_int "arrays" 2 (List.length p.Ast.arrays)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_error_containing src fragment =
  let m = parse_err src in
  check_bool (Printf.sprintf "error mentions %S (got %S)" fragment m) true
    (contains ~sub:fragment m)

let test_errors () =
  expect_error_containing "int32 a[8]\nfor" "expected ';'";
  expect_error_containing
    "int32 a[8];\nfor (i = 1; i < 4; i++) { a[i] = 1; }" "normalized";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; j < 4; i++) { a[i] = 1; }" "loop counter";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; i < 4; j++) { a[i] = 1; }" "loop counter";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; i < 4; i++) { b[i] = 1; }" "undeclared array";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; i < 4; i++) { a[j] = 1; }" "affine references";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; i < 4; i++) { a[i] = x; }" "undeclared identifier";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; i < 4; i++) { a[i] = a; }" "without an index";
  expect_error_containing
    "int32 a[8];\nint32 a[8];\nfor (i = 0; i < 4; i++) { a[i] = 1; }" "duplicate";
  expect_error_containing
    "int32 a[8];\nfor (i = 0; i < n; i++) { a[i] = 1; }" "not a declared param";
  expect_error_containing "int32 a[0];\nfor (i = 0; i < 4; i++) { a[i] = 1; }"
    "positive length";
  expect_error_containing "int32 a[8]; $" "unexpected character";
  expect_error_containing "/* unterminated" "unterminated comment";
  expect_error_containing
    "int32 i[8];\nfor (i = 0; i < 4; i++) { i[i] = 1; }" "clashes"

let test_roundtrip_fig1 () =
  let p = parse_ok fig1 in
  let p' = parse_ok (Pp.program_to_string p) in
  check_bool "round trip" true (Ast.equal_program p p')

(* The printer is total on every operator: min/max have no infix form but
   must still yield their call-syntax names, and expressions putting them
   anywhere (including under infix operators) must round-trip. *)
let test_binop_symbol_total () =
  List.iter
    (fun op -> check_bool "nonempty symbol" true (Pp.binop_symbol op <> ""))
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.And; Ast.Or; Ast.Xor; Ast.Min; Ast.Max ];
  Alcotest.(check string) "min" "min" (Pp.binop_symbol Ast.Min);
  Alcotest.(check string) "max" "max" (Pp.binop_symbol Ast.Max);
  let load a =
    Ast.Load { Ast.ref_array = a; ref_offset = 0; ref_stride = 1 }
  in
  let e =
    Ast.Binop
      ( Ast.Min,
        Ast.Binop (Ast.Add, load "a0", Ast.Binop (Ast.Max, load "a1", Ast.Const 3L)),
        Ast.Const (-7L) )
  in
  let p =
    {
      Ast.arrays =
        List.map
          (fun k ->
            {
              Ast.arr_name = Printf.sprintf "a%d" k;
              arr_ty = Ast.I32;
              arr_len = 64;
              arr_align = Ast.Known 0;
            })
          [ 0; 1 ];
      params = [];
      loop =
        {
          Ast.counter = "i";
          trip = Ast.Trip_const 8;
          body =
            [
              {
                Ast.lhs =
                  { Ast.ref_array = "a0"; ref_offset = 0; ref_stride = 1 };
                rhs = e;
                kind = Ast.Assign;
                guard = None;
              };
            ];
        };
    }
  in
  let p' = parse_ok (Pp.program_to_string p) in
  check_bool "min/max round trip" true (Ast.equal_program p p')

(* Every committed corpus program — including the fuzz reproducers, whose
   comment headers the lexer must skip — survives parse ∘ pp ∘ parse. *)
let test_roundtrip_corpus () =
  let dirs =
    List.filter Sys.file_exists
      [ "../corpus"; "corpus"; "../corpus/fuzz"; "corpus/fuzz" ]
  in
  check_bool "corpus found" true (dirs <> []);
  let files =
    List.concat_map
      (fun dir ->
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".simd")
        |> List.map (Filename.concat dir))
      dirs
  in
  check_bool "corpus nonempty" true (files <> []);
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let p =
        match Parse.program_of_string_result src with
        | Ok p -> p
        | Error m -> Alcotest.failf "%s: %s" path m
      in
      let printed = Pp.program_to_string p in
      match Parse.program_of_string_result printed with
      | Error m -> Alcotest.failf "%s: printed form failed: %s" path m
      | Ok p' ->
        check_bool (path ^ " round trips") true (Ast.equal_program p p');
        (* printing is a fixpoint after one round *)
        Alcotest.(check string) (path ^ " pp stable") printed
          (Pp.program_to_string p'))
    files

(* Random program generator for the round-trip property. *)
let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let* ty = oneofl [ Ast.I8; Ast.I16; Ast.I32; Ast.I64 ] in
  let* n_arrays = int_range 1 5 in
  let arrays =
    List.init n_arrays (fun k ->
        {
          Ast.arr_name = Printf.sprintf "a%d" k;
          arr_ty = ty;
          arr_len = 64;
          arr_align = (if k mod 3 = 2 then Ast.Unknown else Ast.Known (4 * k mod 16));
        })
  in
  let* n_params = int_range 0 2 in
  let params = List.init n_params (fun k -> Printf.sprintf "p%d" k) in
  let rec gen_expr depth =
    if depth = 0 then
      let* k = int_range 0 2 in
      match k with
      | 0 ->
        let* a = int_range 0 (n_arrays - 1) in
        let* off = int_range 0 4 in
        return (Ast.Load { Ast.ref_array = Printf.sprintf "a%d" a; ref_offset = off; ref_stride = 1 })
      | 1 when params <> [] ->
        let* p = oneofl params in
        return (Ast.Param p)
      | _ ->
        let* c = int_range (-100) 100 in
        return (Ast.Const (Int64.of_int c))
    else
      let* op =
        oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Min; Ast.Max; Ast.And; Ast.Or; Ast.Xor ]
      in
      let* a = gen_expr (depth - 1) in
      let* b = gen_expr (depth - 1) in
      return (Ast.Binop (op, a, b))
  in
  let* depth = int_range 0 3 in
  let* rhs = gen_expr depth in
  let* store_off = int_range 0 4 in
  let body =
    [
      {
        Ast.lhs = { Ast.ref_array = "a0"; ref_offset = store_off; ref_stride = 1 };
        rhs;
        kind = Ast.Assign;
        guard = None;
      };
    ]
  in
  let* trip = int_range 1 50 in
  return
    {
      Ast.arrays;
      params;
      loop = { Ast.counter = "i"; trip = Ast.Trip_const trip; body };
    }

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print/parse round trip"
    (QCheck.make ~print:Pp.program_to_string gen_program)
    (fun p ->
      match Parse.program_of_string_result (Pp.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error m -> QCheck.Test.fail_reportf "re-parse failed: %s" m)

let suite =
  [
    ( "parse",
      [
        Alcotest.test_case "basic program" `Quick test_basic;
        Alcotest.test_case "default alignment" `Quick test_default_align;
        Alcotest.test_case "negative offsets/literals" `Quick
          test_negative_offset_and_literals;
        Alcotest.test_case "precedence" `Quick test_precedence;
        Alcotest.test_case "min/max/parens" `Quick test_minmax_and_parens;
        Alcotest.test_case "comments" `Quick test_comments;
        Alcotest.test_case "error messages" `Quick test_errors;
        Alcotest.test_case "round trip fig1" `Quick test_roundtrip_fig1;
        Alcotest.test_case "binop_symbol total" `Quick test_binop_symbol_total;
        Alcotest.test_case "round trip corpus" `Quick test_roundtrip_corpus;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
  ]
