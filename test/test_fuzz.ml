(* Differential fuzzing subsystem tests: generator well-formedness, case
   serialization, campaign determinism, shrinker behavior, a fixed-seed
   smoke campaign (the tier-1 gate), and replay of every committed
   reproducer in corpus/fuzz/. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Locate corpus/fuzz the same way test_corpus locates corpus/. *)
let fuzz_corpus_dir =
  List.find_opt Sys.file_exists
    [
      "../corpus/fuzz";
      "corpus/fuzz";
      "../../corpus/fuzz";
      "../../../corpus/fuzz";
    ]

let test_generator_well_formed () =
  let prng = Prng.create ~seed:7 in
  for _ = 1 to 500 do
    let case = Fuzz.Genloop.gen_case prng in
    (* Legality is judged on the if-converted program, exactly as the
       driver judges it: raw guarded reductions are rejected by design. *)
    (match
       Analysis.check ~machine:case.Fuzz.Case.config.Driver.machine
         (Mask.apply case.Fuzz.Case.program)
     with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "generated program is illegal: %s\n%s"
        (Analysis.error_to_string e)
        (Pp.program_to_string case.Fuzz.Case.program));
    (* runtime-bound cases always carry a concrete trip to run at *)
    ignore (Fuzz.Case.effective_trip case)
  done

let test_case_roundtrip () =
  let prng = Prng.create ~seed:11 in
  for _ = 1 to 200 do
    let case = Fuzz.Genloop.gen_case prng in
    match Fuzz.Case.of_string (Fuzz.Case.to_string case) with
    | Error m -> Alcotest.failf "reproducer did not re-parse: %s" m
    | Ok case' ->
      check_bool "program round trips" true
        (Ast.equal_program case.Fuzz.Case.program case'.Fuzz.Case.program);
      check_bool "config round trips" true
        (Fuzz.Case.config_to_string case.Fuzz.Case.config
        = Fuzz.Case.config_to_string case'.Fuzz.Case.config);
      check_bool "trip round trips" true
        (case.Fuzz.Case.trip = case'.Fuzz.Case.trip);
      check_int "seed round trips" case.Fuzz.Case.setup_seed
        case'.Fuzz.Case.setup_seed
  done

let test_campaign_deterministic () =
  let record () =
    let log = ref [] in
    let on_case index case outcome =
      log :=
        ( index,
          Pp.program_to_string case.Fuzz.Case.program,
          Fuzz.Case.config_to_string case.Fuzz.Case.config,
          Fuzz.Oracle.outcome_name outcome )
        :: !log
    in
    let stats, _ =
      Fuzz.Campaign.run ~shrink:false ~on_case ~seed:99 ~budget:150 ()
    in
    (stats, List.rev !log)
  in
  let stats_a, log_a = record () in
  let stats_b, log_b = record () in
  check_bool "same stats" true (stats_a = stats_b);
  check_bool "same cases and outcomes" true (log_a = log_b);
  check_int "all cases observed" 150 (List.length log_a)

(* The tier-1 smoke gate: a fixed-seed budget must come back clean. *)
let test_smoke_no_failures () =
  let stats, failures =
    Fuzz.Campaign.run ~shrink:false ~seed:1 ~budget:2000 ()
  in
  check_int "no divergences" 0 stats.Fuzz.Campaign.divergences;
  check_int "no crashes" 0 stats.Fuzz.Campaign.crashes;
  check_bool "no failures" true (failures = []);
  check_bool "mostly passing" true (stats.Fuzz.Campaign.passed > 1000)

(* Shrinking against a synthetic oracle: the minimizer must preserve the
   failure class while strictly reducing the case, and must terminate. *)
let test_shrinker_minimizes () =
  let prng = Prng.create ~seed:5 in
  (* Find a roomy case so there is something to shrink. *)
  let rec pick () =
    let c = Fuzz.Genloop.gen_case prng in
    if List.length c.Fuzz.Case.program.Ast.loop.Ast.body >= 2 then c
    else pick ()
  in
  let case = pick () in
  (* Synthetic failure: any program that still loads something. *)
  let oracle (c : Fuzz.Case.t) =
    if
      List.exists
        (fun (s : Ast.stmt) -> Ast.expr_loads s.Ast.rhs <> [])
        c.Fuzz.Case.program.Ast.loop.Ast.body
    then Fuzz.Oracle.Divergence "synthetic"
    else Fuzz.Oracle.Pass
  in
  let min = Fuzz.Shrink.minimize ~oracle case in
  check_bool "still failing" true (Fuzz.Oracle.is_failure (oracle min));
  check_int "one statement left" 1
    (List.length min.Fuzz.Case.program.Ast.loop.Ast.body);
  check_bool "fewer or equal arrays" true
    (List.length min.Fuzz.Case.program.Ast.arrays
    <= List.length case.Fuzz.Case.program.Ast.arrays);
  (* a passing case comes back unchanged *)
  let pass = { case with Fuzz.Case.setup_seed = case.Fuzz.Case.setup_seed } in
  check_bool "non-failure untouched" true
    (Fuzz.Shrink.minimize ~oracle:(fun _ -> Fuzz.Oracle.Pass) pass == pass)

(* Every committed reproducer is a regression seed: it must load and its
   bug must stay fixed. *)
let test_replay_reproducers () =
  match fuzz_corpus_dir with
  | None -> Alcotest.fail "corpus/fuzz directory not found"
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".simd")
      |> List.sort compare
    in
    check_bool "reproducers present" true (files <> []);
    List.iter
      (fun f ->
        match Fuzz.Case.of_file (Filename.concat dir f) with
        | Error m -> Alcotest.failf "%s: %s" f m
        | Ok case -> (
          match Fuzz.Oracle.run case with
          | Fuzz.Oracle.Pass -> ()
          | o ->
            Alcotest.failf "%s: regressed to %s" f
              (Format.asprintf "%a" Fuzz.Oracle.pp_outcome o)))
      files

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generator well-formed" `Quick
          test_generator_well_formed;
        Alcotest.test_case "case serialization round trip" `Quick
          test_case_roundtrip;
        Alcotest.test_case "campaign deterministic" `Quick
          test_campaign_deterministic;
        Alcotest.test_case "fixed-seed smoke clean" `Quick
          test_smoke_no_failures;
        Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes;
        Alcotest.test_case "reproducers stay fixed" `Quick
          test_replay_reproducers;
      ] );
  ]
