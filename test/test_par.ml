(* Parallel pool (Simd.Par): job classification, bounded retries, chunk-plan
   determinism, jobs-count independence of campaign results, fault
   injection (raising / hanging oracles), and the native oracle's
   compile cache (skipped when no C compiler is available). *)

open Simd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Pool ------------------------------------------------------------- *)

let test_pool_map_order () =
  let results, report = Par.Pool.map ~workers:3 (fun i -> i * i) 9 in
  check_int "jobs" 9 report.Par.Pool.jobs;
  check_int "ok" 9 report.Par.Pool.ok;
  check_int "crashes" 0 report.Par.Pool.crashes;
  Array.iteri
    (fun i (r : int Par.Pool.result) ->
      match r.Par.Pool.outcome with
      | Par.Pool.Done v -> check_int (Printf.sprintf "job %d" i) (i * i) v
      | _ -> Alcotest.failf "job %d not Done" i)
    results

let test_pool_job_error () =
  let results, report =
    Par.Pool.map ~workers:2
      (fun i -> if i = 2 then failwith "boom" else i)
      4
  in
  check_int "ok" 3 report.Par.Pool.ok;
  check_int "job_errors" 1 report.Par.Pool.job_errors;
  (match results.(2).Par.Pool.outcome with
  | Par.Pool.Job_error m ->
    let contains sub s =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    check_bool "carries message" true (contains "boom" m)
  | _ -> Alcotest.fail "job 2 not Job_error");
  (* job errors are deterministic: no retry *)
  check_int "attempts" 1 results.(2).Par.Pool.attempts

let test_pool_timeout () =
  let results, report =
    Par.Pool.map ~workers:2 ~timeout:0.3
      (fun i -> if i = 1 then Unix.sleep 30; i)
      3
  in
  check_int "ok" 2 report.Par.Pool.ok;
  check_int "timeouts" 1 report.Par.Pool.timeouts;
  (match results.(1).Par.Pool.outcome with
  | Par.Pool.Timed_out _ -> ()
  | _ -> Alcotest.fail "job 1 not Timed_out");
  check_int "timeouts are not retried" 1 results.(1).Par.Pool.attempts

let test_pool_crash_retries () =
  let results, report =
    Par.Pool.map ~workers:2 ~retries:1
      (fun i -> if i = 0 then Unix._exit 3 else i)
      3
  in
  check_int "ok" 2 report.Par.Pool.ok;
  check_int "crashes" 1 report.Par.Pool.crashes;
  check_int "retry consumed" 1 report.Par.Pool.retries;
  (match results.(0).Par.Pool.outcome with
  | Par.Pool.Crashed _ -> ()
  | _ -> Alcotest.fail "job 0 not Crashed");
  check_int "attempts = 1 + retries" 2 results.(0).Par.Pool.attempts

(* --- Chunk plan ------------------------------------------------------- *)

let test_plan_determinism () =
  let p1 = Fuzz.Campaign.plan ~chunk_size:50 ~seed:42 ~budget:230 () in
  let p2 = Fuzz.Campaign.plan ~chunk_size:50 ~seed:42 ~budget:230 () in
  check_bool "same seed, same plan" true (p1 = p2);
  let p3 = Fuzz.Campaign.plan ~chunk_size:50 ~seed:43 ~budget:230 () in
  check_bool "different seed, different chunk seeds" false
    (List.map (fun (c : Fuzz.Campaign.chunk) -> c.Fuzz.Campaign.chunk_seed) p1
    = List.map (fun (c : Fuzz.Campaign.chunk) -> c.Fuzz.Campaign.chunk_seed) p3);
  check_int "chunk count" 5 (List.length p1);
  (* contiguous, budget-covering *)
  let next = ref 0 in
  List.iter
    (fun (c : Fuzz.Campaign.chunk) ->
      check_int "first" !next c.Fuzz.Campaign.first;
      next := !next + c.Fuzz.Campaign.size)
    p1;
  check_int "covers budget" 230 !next

(* A deterministic injected-failure oracle: flags a stable subset of cases
   as divergent based on their serialized content, so campaigns at any
   jobs count must agree on which cases fail and how they minimize. *)
let injected_oracle (case : Fuzz.Case.t) =
  if Hashtbl.hash (Fuzz.Case.to_string case) mod 5 = 0 then
    Fuzz.Oracle.Divergence "injected"
  else Fuzz.Oracle.Pass

let campaign_fingerprint (r : Par.Campaign.result) =
  ( r.Par.Campaign.stats,
    List.map
      (fun (f : Fuzz.Campaign.failure) ->
        (f.Fuzz.Campaign.index, Fuzz.Case.to_string f.Fuzz.Campaign.minimized))
      r.Par.Campaign.failures )

let test_campaign_jobs_independent () =
  let run jobs =
    Par.Campaign.run ~jobs ~chunk_size:25
      ~oracle:(Par.Campaign.Custom injected_oracle) ~seed:123 ~budget:100 ()
  in
  let r1 = run 1 and r4 = run 4 in
  check_bool "both completed" true
    (Par.Campaign.completed r1 && Par.Campaign.completed r4);
  check_int "all cases classified" 100 r1.Par.Campaign.stats.Fuzz.Campaign.total;
  check_bool "some injected failures" true
    (r1.Par.Campaign.stats.Fuzz.Campaign.divergences > 0);
  check_bool "jobs 1 = jobs 4 (stats + minimized reproducers)" true
    (campaign_fingerprint r1 = campaign_fingerprint r4)

let test_campaign_simulator_jobs_independent () =
  let run jobs =
    Par.Campaign.run ~jobs ~chunk_size:30 ~seed:7 ~budget:90 ()
  in
  let r1 = run 1 and r3 = run 3 in
  check_bool "completed" true
    (Par.Campaign.completed r1 && Par.Campaign.completed r3);
  check_bool "identical" true (campaign_fingerprint r1 = campaign_fingerprint r3)

(* --- Fault injection -------------------------------------------------- *)

let test_campaign_raising_oracle () =
  let r =
    Par.Campaign.run ~jobs:2 ~chunk_size:20
      ~oracle:(Par.Campaign.Custom (fun _ -> failwith "oracle down"))
      ~seed:1 ~budget:40 ()
  in
  check_bool "not completed" false (Par.Campaign.completed r);
  check_int "no classified cases" 0 r.Par.Campaign.stats.Fuzz.Campaign.total;
  check_int "both chunks lost" 2 (List.length r.Par.Campaign.lost);
  List.iter
    (fun (l : Par.Campaign.lost_chunk) ->
      check_bool "classified as error" true
        (l.Par.Campaign.classification = "error"))
    r.Par.Campaign.lost

let test_campaign_hanging_oracle () =
  let r =
    Par.Campaign.run ~jobs:2 ~chunk_size:20 ~timeout:0.3
      ~oracle:(Par.Campaign.Custom (fun _ -> Unix.sleep 30; Fuzz.Oracle.Pass))
      ~seed:1 ~budget:40 ()
  in
  check_bool "not completed" false (Par.Campaign.completed r);
  check_int "both chunks lost" 2 (List.length r.Par.Campaign.lost);
  List.iter
    (fun (l : Par.Campaign.lost_chunk) ->
      check_bool "classified as timeout" true
        (l.Par.Campaign.classification = "timeout"))
    r.Par.Campaign.lost

(* --- Native oracle (needs a C compiler) -------------------------------- *)

let with_temp_cache f =
  let dir = Filename.temp_file "simd_par_cache" "" in
  Sys.remove dir;
  f dir

let fig1_case () =
  let program =
    Parse.program_of_string
      "int32 a[128] @ 0;\nint32 b[128] @ 4;\nint32 c[128] @ 8;\n\
       for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  { Fuzz.Case.program; config = Driver.default; trip = None; setup_seed = 1 }

let test_native_pass_and_cache () =
  match Cc.find () with
  | None -> () (* no C compiler: skip *)
  | Some cc ->
    with_temp_cache (fun cache_dir ->
        match Par.Native.create ~cc ~cache_dir () with
        | Error m -> Alcotest.failf "Native.create: %s" m
        | Ok oracle ->
          let case = fig1_case () in
          (* one harness compile per selected backend that supports the
             case's V = 16 — the oracle now runs the whole backend set *)
          let applicable =
            List.length
              (List.filter
                 (fun b -> Backend.supports_vl b 16)
                 (Par.Native.backends oracle))
          in
          check_bool "at least the portable backend" true (applicable >= 1);
          (match Par.Native.check oracle case with
          | Fuzz.Oracle.Pass -> ()
          | o ->
            Alcotest.failf "expected Pass, got %a" Fuzz.Oracle.pp_outcome o);
          let hits0, misses0 = Par.Native.cache_stats oracle in
          check_int "first check misses" applicable misses0;
          check_int "first check hits" 0 hits0;
          (match Par.Native.check oracle case with
          | Fuzz.Oracle.Pass -> ()
          | _ -> Alcotest.fail "second check should also pass");
          let hits1, misses1 = Par.Native.cache_stats oracle in
          check_int "second check hits cache" applicable hits1;
          check_int "no new miss" applicable misses1)

let suite =
  [
    ( "par",
      [
        Alcotest.test_case "pool map order" `Quick test_pool_map_order;
        Alcotest.test_case "pool job error" `Quick test_pool_job_error;
        Alcotest.test_case "pool timeout" `Slow test_pool_timeout;
        Alcotest.test_case "pool crash retries" `Quick test_pool_crash_retries;
        Alcotest.test_case "chunk plan determinism" `Quick test_plan_determinism;
        Alcotest.test_case "campaign jobs-independent (injected)" `Slow
          test_campaign_jobs_independent;
        Alcotest.test_case "campaign jobs-independent (simulator)" `Slow
          test_campaign_simulator_jobs_independent;
        Alcotest.test_case "raising oracle loses chunks, completes" `Quick
          test_campaign_raising_oracle;
        Alcotest.test_case "hanging oracle times out, completes" `Slow
          test_campaign_hanging_oracle;
        Alcotest.test_case "native oracle pass + cache" `Slow
          test_native_pass_and_cache;
      ] );
  ]
