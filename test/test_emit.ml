(* C emission tests: structural checks on all three backends, and
   gcc-compiled differential integration tests for the portable and SSE
   backends (skipped when no C compiler is available). *)

open Simd

let check_bool = Alcotest.(check bool)
let parse = Parse.program_of_string

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let assert_contains what s frags =
  List.iter
    (fun f -> check_bool (Printf.sprintf "%s contains %S" what f) true (contains ~sub:f s))
    frags

let fig1 =
  "int32 a[128] @ 0;\nint32 b[128] @ 4;\nint32 c[128] @ 8;\nparam k;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2] * k; }"

let simdized ?(config = Driver.default) src = Driver.simdize_exn config (parse src)

let test_portable_structure () =
  let o = simdized fig1 in
  let c = Emit_portable.unit o.Driver.prog in
  assert_contains "portable" c
    [
      "typedef struct { uint8_t b[VLEN]; } vec_t;";
      "(uintptr_t)p & ~(uintptr_t)(VLEN - 1)";
      "void kernel_scalar(int32_t *a, int32_t *b, int32_t *c, long ub, int32_t k)";
      "void kernel_simd(";
      "if (ub <= 12)";
      "vshiftpair";
      "vsplice";
      "vsplat(k)";
      "for (i = 4; i <";
    ]

let test_altivec_structure () =
  let o = simdized fig1 in
  let c = Emit_altivec.unit o.Driver.prog in
  assert_contains "altivec" c
    [
      "#include <altivec.h>";
      "vec_ld";
      "vec_st";
      "vec_perm";
      "vec_sel";
      "vec_splats";
      "typedef vector signed int vec_t;";
    ]

let test_sse_structure () =
  let o = simdized fig1 in
  let c = Emit_sse.unit o.Driver.prog in
  assert_contains "sse" c
    [
      "#include <tmmintrin.h>";
      "_mm_load_si128";
      "_mm_store_si128";
      "_mm_shuffle_epi8";
      "_mm_add_epi32";
      "~(uintptr_t)15";
    ]

let config_v32 =
  { Driver.default with Driver.machine = Machine.create ~vector_len:32 }

let test_avx2_structure () =
  let o = simdized ~config:config_v32 fig1 in
  let c = Emit_avx2.unit o.Driver.prog in
  assert_contains "avx2" c
    [
      "#include <immintrin.h>";
      "_mm256_load_si256";
      "_mm256_store_si256";
      "_mm256_add_epi32";
      "_mm256_blendv_epi8";
      "~(uintptr_t)31";
      (* vshiftpair's fast path crosses the 128-bit lane boundary with
         permute2x128 + lane-local alignr; the spill buffer stays as the
         fallback for amounts the jump table cannot fold *)
      "vshiftpair";
      "_mm256_permute2x128_si256";
      "_mm256_alignr_epi8";
      "vshiftpair_spill";
    ]

(* Predicated programs emit the compare/select/masked-store family in
   every backend's prelude (the kernel body is shared). *)
let pred_src =
  "int32 x[256] @ 4;\nint32 y[256] @ 0;\nparam t;\n\
   for (i = 0; i < 200; i++) { if (x[i+1] > t) { y[i+2] = x[i+1] - t; } }"

let test_pred_structure () =
  let check_backend name emit config intrinsics =
    let o = simdized ~config pred_src in
    let c = emit o.Driver.prog in
    assert_contains name c ([ "vcmp_gt"; "vsel"; "vstore_mask" ] @ intrinsics)
  in
  check_backend "portable" Emit_portable.unit Driver.default
    [ "DEFINE_LANECMP" ];
  check_backend "sse" Emit_sse.unit Driver.default [ "_mm_cmpgt_epi32" ];
  check_backend "avx2" Emit_avx2.unit config_v32 [ "_mm256_cmpgt_epi32" ];
  check_backend "neon" Emit_neon.unit Driver.default [ "vcgtq_s32" ];
  check_backend "altivec" Emit_altivec.unit Driver.default [ "vec_cmpgt" ]

let test_avx2_rejects_v16 () =
  let o = simdized fig1 in
  try
    ignore (Emit_avx2.unit o.Driver.prog);
    Alcotest.fail "avx2 accepted a V=16 program"
  with Invalid_argument _ -> ()

let test_neon_structure () =
  let o = simdized fig1 in
  let c = Emit_neon.unit o.Driver.prog in
  assert_contains "neon" c
    [
      "#include <arm_neon.h>";
      "int32x4_t";
      "vld1q_s32";
      "vst1q_s32";
      "vaddq_s32";
      "vbslq_s8";
      "~(uintptr_t)15";
    ]

let test_scalar_loop_c () =
  let program = parse fig1 in
  let c = C_syntax.scalar_loop ~program ~ub:"ub" ~iv:"s" ~indent:"" in
  assert_contains "scalar loop" c
    [ "for (long s = 0; s < ub; s++)"; "a[s + 3] ="; "b[s + 1]"; "c[s + 2]" ]

let test_widths_ctypes () =
  List.iter
    (fun (ty, ct) ->
      let src =
        Printf.sprintf "%s a[256] @ 0;\n%s b[256] @ %d;\nfor (i = 0; i < 200; i++) { a[i] = b[i+1]; }"
          ty ty (Ast.elem_width (match ty with
            | "int8" -> Ast.I8 | "int16" -> Ast.I16 | "int32" -> Ast.I32 | _ -> Ast.I64))
      in
      let o = simdized src in
      let c = Emit_portable.unit o.Driver.prog in
      check_bool (ty ^ " elem type") true (contains ~sub:("typedef " ^ ct ^ " elem_t;") c))
    [ ("int8", "int8_t"); ("int16", "int16_t"); ("int32", "int32_t"); ("int64", "int64_t") ]

(* --- gcc integration ---------------------------------------------------- *)

let run_c ~flags c_source name =
  match Cc.find () with
  | None -> `Skipped
  | Some cc ->
    let dir = Filename.temp_file "simd_emit" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let src = Filename.concat dir (name ^ ".c") in
    let exe = Filename.concat dir name in
    let oc = open_out src in
    output_string oc c_source;
    close_out oc;
    match Cc.compile cc ~flags ~src ~exe () with
    | Error _ -> `Compile_failed dir
    | Ok () ->
      if Sys.command (Printf.sprintf "%s >%s/run.log 2>&1" exe dir) <> 0 then
        `Run_failed dir
      else `Ok

let gcc_case ~backend ~flags ~config src seed =
  let program = parse src in
  match Driver.simdize config program with
  | Driver.Scalar r -> Alcotest.failf "not simdized: %a" Driver.pp_reason r
  | Driver.Simdized o ->
    let trip =
      match program.Ast.loop.Ast.trip with
      | Ast.Trip_const _ -> None
      | Ast.Trip_param _ -> Some 203
    in
    let setup = Sim_run.prepare ~seed ?trip ~machine:config.Driver.machine program in
    let harness =
      match backend with
      | `Portable ->
        Emit_portable.harness ~layout:setup.Sim_run.layout
          ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog
      | `Sse ->
        Emit_sse.harness ~layout:setup.Sim_run.layout ~params:setup.Sim_run.params
          ~trip:setup.Sim_run.trip o.Driver.prog
      | `Avx2 ->
        Emit_avx2.harness ~layout:setup.Sim_run.layout
          ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog
      | `Neon ->
        Emit_neon.harness ~layout:setup.Sim_run.layout
          ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog
    in
    (match run_c ~flags harness "t" with
    | `Ok -> ()
    | `Skipped -> ()
    | `Compile_failed d -> Alcotest.failf "gcc failed (logs in %s)" d
    | `Run_failed d -> Alcotest.failf "C harness mismatch (logs in %s)" d)

let test_gcc_portable_matrix () =
  (* a representative matrix: policies × reuse × widths × runtime align *)
  let cases =
    [
      (fig1, Driver.default);
      (fig1, { Driver.default with Driver.policy = Policy.Zero });
      (fig1, { Driver.default with Driver.reuse = Driver.No_reuse });
      (fig1, { Driver.default with Driver.reuse = Driver.Predictive_commoning });
      ( "int16 a[256] @ 2;\nint16 b[256] @ 6;\nint16 c[256] @ 0;\n\
         for (i = 0; i < 200; i++) { a[i+1] = min(b[i+3], c[i+2]); }",
        Driver.default );
      ( "int8 a[256] @ 3;\nint8 b[256] @ 9;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+3] ^ 7; }",
        Driver.default );
      ( "int64 a[256] @ 8;\nint64 b[256] @ 0;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+2] * 3; }",
        Driver.default );
      ( "int32 a[256] @ ?;\nint32 b[256] @ ?;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+2]; }",
        Driver.default );
      ( "int32 a[256] @ 4;\nint32 b[256] @ 8;\nint32 x[256] @ 0;\nint32 yy[256] @ 12;\n\
         for (i = 0; i < 197; i++) { a[i+2] = b[i+1]; x[i+3] = yy[i+1] + b[i+2]; }",
        Driver.default );
      (* reduction extension: dot product + max, misaligned inputs *)
      ( "int32 s[1] @ 12;\nint32 m[1] @ 4;\nint32 p[256] @ 4;\nint32 q[256] @ 8;\n\
         for (i = 0; i < 203; i++) { s += p[i+1] * q[i+3]; m max= q[i+2]; }",
        Driver.default );
      (* reduction + unrolling *)
      ( "int32 s[1] @ 0;\nint32 p[4200] @ ?;\nparam n;\n\
         for (i = 0; i < n; i++) { s += p[i+1]; }",
        { Driver.default with Driver.unroll = 2 } );
      (* strided gathers: deinterleave (stride 2) and stride 4, misaligned *)
      ( "int32 re[256] @ 0;\nint32 im[256] @ 4;\nint32 x[600] @ 8;\n\
         for (i = 0; i < 199; i++) { re[i] = x[2*i]; im[i+1] = x[2*i+1]; }",
        Driver.default );
      ( "int16 y[256] @ 2;\nint16 x[900] @ 6;\n\
         for (i = 0; i < 200; i++) { y[i+1] = x[4*i+3] + 7; }",
        { Driver.default with Driver.reuse = Driver.Predictive_commoning } );
      (* predication: masked store behind a threshold guard *)
      (pred_src, Driver.default);
      (* predication: complementary if/else merged into one vsel *)
      ( "int16 a[256] @ 2;\nint16 b[256] @ 6;\nint16 c[256] @ 0;\n\
         for (i = 0; i < 200; i++) { if (a[i+1] <= b[i+3]) { c[i+2] = \
         a[i+1] + b[i+3]; } else { c[i+2] = b[i+3] - a[i+1]; } }",
        Driver.default );
      (* predication: guarded store + runtime trip (peeled guards) *)
      ( "int8 src[1008] @ 3;\nint8 dst[1012] @ 5;\nparam n;\nparam lim;\n\
         for (i = 0; i < n; i++) { if (src[i+2] != lim) { dst[i+1] = \
         src[i+2] & lim; } }",
        Driver.default );
    ]
  in
  List.iteri
    (fun k (src, config) -> gcc_case ~backend:`Portable ~flags:"-O1 -Wall" ~config src (k + 1))
    cases

let test_gcc_sse () =
  (* SSE needs SSSE3; probe once with a trivial program. *)
  let probe =
    "#include <tmmintrin.h>\nint main(void){__m128i a=_mm_set1_epi8(1);a=_mm_shuffle_epi8(a,a);return _mm_cvtsi128_si32(a)==16843009?0:1;}"
  in
  match run_c ~flags:"-O1 -mssse3" probe "probe" with
  | `Skipped | `Compile_failed _ | `Run_failed _ -> () (* host lacks SSSE3 *)
  | `Ok ->
    List.iteri
      (fun k (src, config) ->
        gcc_case ~backend:`Sse ~flags:"-O2 -mssse3 -Wall" ~config src (100 + k))
      [
        (fig1, Driver.default);
        (fig1, { Driver.default with Driver.policy = Policy.Zero });
        ( "int16 a[256] @ 2;\nint16 b[256] @ 6;\n\
           for (i = 0; i < 200; i++) { a[i+1] = b[i+3] + 5; }",
          Driver.default );
        ( "int32 a[256] @ ?;\nint32 b[256] @ ?;\n\
           for (i = 0; i < 200; i++) { a[i+1] = b[i+2]; }",
          Driver.default );
        (* strided gather through pshufb masks *)
        ( "int32 re[256] @ 0;\nint32 x[600] @ 4;\n\
           for (i = 0; i < 200; i++) { re[i+1] = x[2*i+1]; }",
          Driver.default );
        (* predication: compare + blend + masked store, and the I64 lane
           fallback (no _mm_cmpgt_epi64 on the SSSE3 floor) *)
        (pred_src, Driver.default);
        ( "int64 a[256] @ 8;\nint64 b[256] @ 0;\n\
           for (i = 0; i < 200; i++) { if (b[i+2] > 9) { a[i+1] = b[i+2] \
           * 3; } }",
          Driver.default );
      ]

(* AVX2/NEON differential runs, gated on the capability probe: only a
   machine whose CPU executes the probe binary runs the harnesses, so a
   pre-AVX2 x86 (or any non-ARM host, for NEON) skips rather than
   SIGILLs. *)
let gcc_backend_cases ~backend ~probe_backend ~flags ~vl ~seed0 cases =
  match Cc.find () with
  | None -> ()
  | Some cc -> (
    match Backend.probe ~cc probe_backend with
    | Backend.Toolchain_only | Backend.Unsupported _ -> ()
    | Backend.Supported ->
      let at_vl config =
        { config with Driver.machine = Machine.create ~vector_len:vl }
      in
      List.iteri
        (fun k (src, config) ->
          gcc_case ~backend ~flags ~config:(at_vl config) src (seed0 + k))
        cases)

let isa_cases =
  [
    (fig1, Driver.default);
    (fig1, { Driver.default with Driver.policy = Policy.Zero });
    ( "int16 a[256] @ 2;\nint16 b[256] @ 6;\n\
       for (i = 0; i < 200; i++) { a[i+1] = b[i+3] + 5; }",
      Driver.default );
    ( "int8 a[256] @ 3;\nint8 b[256] @ 9;\n\
       for (i = 0; i < 200; i++) { a[i+1] = b[i+3] ^ 7; }",
      Driver.default );
    ( "int32 a[256] @ ?;\nint32 b[256] @ ?;\n\
       for (i = 0; i < 200; i++) { a[i+1] = b[i+2]; }",
      Driver.default );
    ( "int64 a[256] @ 8;\nint64 b[256] @ 0;\n\
       for (i = 0; i < 200; i++) { a[i+1] = b[i+2] * 3; }",
      Driver.default );
    (* predication across the ISA set: threshold guard -> masked store *)
    (pred_src, Driver.default);
    ( "int16 a[256] @ 2;\nint16 b[256] @ 6;\nint16 c[256] @ 0;\n\
       for (i = 0; i < 200; i++) { if (a[i+1] <= b[i+3]) { c[i+2] = \
       a[i+1] + b[i+3]; } else { c[i+2] = b[i+3] - a[i+1]; } }",
      Driver.default );
  ]

(* The AVX2 vshiftpair fast path (permute2x128 + alignr) under real gcc:
   misaligned 3-stream programs route every load through vshiftpair, so a
   run mismatch here would convict the jump table. Gated on the
   capability probe like the other AVX2 harnesses. *)
let test_gcc_avx2_shiftpair () =
  gcc_backend_cases ~backend:`Avx2 ~probe_backend:Backend.Avx2
    ~flags:"-O2 -mavx2 -Wall" ~vl:32 ~seed0:400
    [
      (fig1, Driver.default);
      (fig1, { Driver.default with Driver.policy = Policy.Eager });
      (fig1, { Driver.default with Driver.policy = Policy.Lazy });
      (* every element width exercises a different alignr amount *)
      ( "int8 a[256] @ 3;\nint8 b[256] @ 9;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+3] ^ 7; }",
        Driver.default );
      ( "int16 a[256] @ 2;\nint16 b[256] @ 6;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+3] + 5; }",
        Driver.default );
      ( "int64 a[256] @ 8;\nint64 b[256] @ 0;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+2] * 3; }",
        Driver.default );
      (* runtime alignment: the shift amount is a runtime value, so the
         switch dispatches dynamically (or falls through to the spill) *)
      ( "int32 a[256] @ ?;\nint32 b[256] @ ?;\n\
         for (i = 0; i < 200; i++) { a[i+1] = b[i+2]; }",
        Driver.default );
    ]

let test_gcc_avx2 () =
  gcc_backend_cases ~backend:`Avx2 ~probe_backend:Backend.Avx2
    ~flags:"-O2 -mavx2 -Wall" ~vl:32 ~seed0:200 isa_cases

let test_gcc_neon () =
  gcc_backend_cases ~backend:`Neon ~probe_backend:Backend.Neon
    ~flags:"-O2 -Wall" ~vl:16 ~seed0:300 isa_cases

let suite =
  [
    ( "emit",
      [
        Alcotest.test_case "portable structure" `Quick test_portable_structure;
        Alcotest.test_case "altivec structure" `Quick test_altivec_structure;
        Alcotest.test_case "sse structure" `Quick test_sse_structure;
        Alcotest.test_case "avx2 structure" `Quick test_avx2_structure;
        Alcotest.test_case "avx2 rejects V=16" `Quick test_avx2_rejects_v16;
        Alcotest.test_case "neon structure" `Quick test_neon_structure;
        Alcotest.test_case "predication structure" `Quick test_pred_structure;
        Alcotest.test_case "scalar loop C" `Quick test_scalar_loop_c;
        Alcotest.test_case "element C types" `Quick test_widths_ctypes;
        Alcotest.test_case "gcc portable matrix" `Slow test_gcc_portable_matrix;
        Alcotest.test_case "gcc sse" `Slow test_gcc_sse;
        Alcotest.test_case "gcc avx2 matrix" `Slow test_gcc_avx2;
        Alcotest.test_case "gcc avx2 shiftpair fast path" `Slow
          test_gcc_avx2_shiftpair;
        Alcotest.test_case "gcc neon matrix" `Slow test_gcc_neon;
      ] );
  ]
