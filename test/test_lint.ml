(* The lint driver (Simd.Lint): the rule registry, the acceptance
   corpus programs (dead-shift-zero-policy flagged, the cleanup witness
   dirty-then-clean, shared streams not flagged), hand-tampered VIR
   negative tests for the structural rules, the simd-lint/1 JSON shape,
   and the unified exit codes end-to-end through simdlint.exe and
   simdize --lint. *)

open Simd
module Prog = Vir_prog
module Expr = Vir_expr
module Rexpr = Vir_rexpr
module Addr = Vir_addr

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile ?(config = Driver.default) file =
  let program =
    Parse.program_of_string (read_file (Filename.concat corpus_dir file))
  in
  Driver.simdize_exn config program

let count rule (r : Lint.report) = List.assoc rule r.Lint.counts

let witness_outcome ~cleanup =
  match
    Fuzz.Case.of_file (Filename.concat corpus_dir "cleanup-beats-placed.simd")
  with
  | Error m -> Alcotest.failf "witness: %s" m
  | Ok case ->
    Driver.simdize_exn
      { case.Fuzz.Case.config with Driver.cleanup }
      case.Fuzz.Case.program

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  check_int "seven rules" 7 (List.length Lint.rules);
  let names = List.map (fun (r : Lint.rule) -> r.Lint.name) Lint.rules in
  check_int "names unique" 7 (List.length (List.sort_uniq compare names));
  List.iter
    (fun (r : Lint.rule) ->
      let expect =
        if r.Lint.name = "shift-range" then Lint.Error else Lint.Warning
      in
      check_bool (r.Lint.name ^ " severity") true (r.Lint.severity = expect);
      check_bool (r.Lint.name ^ " documented") true (r.Lint.doc <> ""))
    Lint.rules;
  check_bool "find_rule round-trips" true
    (List.for_all
       (fun (r : Lint.rule) -> Lint.find_rule r.Lint.name = r)
       Lint.rules)

(* ------------------------------------------------------------------ *)
(* Acceptance programs                                                 *)
(* ------------------------------------------------------------------ *)

let test_dead_shift_zero_policy_flagged () =
  let o =
    compile
      ~config:
        {
          Driver.default with
          Driver.policy = Policy.Zero;
          reuse = Driver.No_reuse;
        }
      "dead-shift-zero-policy.simd"
  in
  let r = Lint.run o in
  check_bool "zero-policy detour is flagged" true
    (count "redundant-shift" r > 0 || count "dead-vop" r > 0);
  check_int "no error-severity findings" 0 r.Lint.errors;
  check_int "strict escalates warnings" 1 (Lint.exit_code ~strict:true r);
  check_int "non-strict tolerates warnings" 0 (Lint.exit_code ~strict:false r)

let test_witness_dirty_then_clean () =
  let dirty = Lint.run (witness_outcome ~cleanup:false) in
  check_bool "placed witness lints dirty" false (Lint.clean dirty);
  check_bool "witness dirt is evidence-backed" true
    (count "dead-vop" dirty > 0 && count "redundant-shift" dirty > 0);
  let clean = Lint.run (witness_outcome ~cleanup:true) in
  check_bool "cleaned witness lints clean" true (Lint.clean clean);
  check_int "clean exits 0 even under strict" 0
    (Lint.exit_code ~strict:true clean)

(* A stream shared across statements is cheap by design, not waste: the
   joint-placement corpus program must not trip the shift rules. *)
let test_shared_streams_not_flagged () =
  let o =
    compile
      ~config:{ Driver.default with Driver.policy = Policy.Joint }
      "joint-beats-optimal.simd"
  in
  check_bool "program really shares streams" true (o.Driver.shared_streams <> []);
  let r = Lint.run o in
  check_int "no redundant-shift findings" 0 (count "redundant-shift" r);
  check_int "no error findings" 0 r.Lint.errors

(* ------------------------------------------------------------------ *)
(* Tampered outcomes: the structural rules                             *)
(* ------------------------------------------------------------------ *)

let tamper_body (o : Driver.outcome) extra =
  let p = o.Driver.prog in
  { o with Driver.prog = { p with Prog.body = p.Prog.body @ extra } }

let test_mask_uniform_fires () =
  let o = witness_outcome ~cleanup:true in
  check_bool "base is clean" true (Lint.clean (Lint.run o));
  let a = { Addr.array = "a"; offset = 0; scale = 1 } in
  let tampered =
    tamper_body o
      [ Expr.Storem (a, Expr.Load a, Expr.Splat (Ast.Const 1L)) ]
  in
  let r = Lint.run tampered in
  check_bool "splat mask flagged" true (count "mask-uniform" r > 0);
  check_bool "mask-uniform is a warning" true
    (List.for_all
       (fun (f : Lint.finding) ->
         f.Lint.rule <> "mask-uniform" || f.Lint.severity = Lint.Warning)
       r.Lint.findings)

let test_shift_range_is_an_error () =
  let o = witness_outcome ~cleanup:true in
  let a = { Addr.array = "a"; offset = 0; scale = 1 } in
  let b = { Addr.array = "b"; offset = 1; scale = 1 } in
  let tampered =
    tamper_body o
      [
        Expr.Store
          (a, Expr.Shiftpair (Expr.Load a, Expr.Load b, Rexpr.Const 23));
      ]
  in
  let r = Lint.run tampered in
  check_bool "out-of-range amount flagged" true (count "shift-range" r > 0);
  check_bool "shift-range findings are errors" true (r.Lint.errors > 0);
  check_int "errors exit 2 regardless of strict" 2
    (Lint.exit_code ~strict:false r)

let test_unused_stream_fires () =
  (* a declared stream no lint pass can see used anywhere *)
  let src =
    "int32 a[64] @ 0;\nint32 b[64] @ 0;\nint32 zz[64] @ 0;\n\
     for (i = 0; i < 40; i++) { a[i] = b[i]; }"
  in
  let o = Driver.simdize_exn Driver.default (Parse.program_of_string src) in
  let r = Lint.run o in
  check_bool "unused stream flagged" true (count "unused-stream" r > 0);
  check_bool "finding names the stream" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.rule = "unused-stream"
         && f.Lint.where = "program"
         && String.length f.Lint.detail > 0)
       r.Lint.findings)

(* ------------------------------------------------------------------ *)
(* The simd-lint/1 document                                            *)
(* ------------------------------------------------------------------ *)

let test_json_shape () =
  let r = Lint.run (witness_outcome ~cleanup:false) in
  match Lint.report_to_json r with
  | Json.Obj fields ->
    check_bool "schema tag" true
      (List.assoc_opt "schema" fields = Some (Json.String "simd-lint/1"));
    (match List.assoc_opt "counts" fields with
    | Some (Json.Obj counts) ->
      let keys = List.map fst counts in
      check_bool "counts cover the registry, zeros included" true
        (List.sort compare keys
        = List.sort compare
            (List.map (fun (r : Lint.rule) -> r.Lint.name) Lint.rules))
    | _ -> Alcotest.fail "counts object missing");
    (match List.assoc_opt "findings" fields with
    | Some (Json.List findings) ->
      check_int "findings serialized 1:1" (List.length r.Lint.findings)
        (List.length findings)
    | _ -> Alcotest.fail "findings array missing");
    check_bool "totals present and consistent" true
      (List.assoc_opt "errors" fields = Some (Json.Int r.Lint.errors)
      && List.assoc_opt "warnings" fields = Some (Json.Int r.Lint.warnings)
      && r.Lint.errors + r.Lint.warnings = List.length r.Lint.findings)
  | _ -> Alcotest.fail "report_to_json must be an object"

(* ------------------------------------------------------------------ *)
(* Exit codes end-to-end through the CLIs                              *)
(* ------------------------------------------------------------------ *)

let command line = Sys.command (line ^ " >/dev/null 2>&1")

let cli_available = Sys.file_exists "../bin/simdlint.exe"

let test_simdlint_exit_codes () =
  if not cli_available then ()
  else begin
    let witness = Filename.concat corpus_dir "cleanup-beats-placed.simd" in
    check_int "warnings without strict exit 0" 0
      (command ("../bin/simdlint.exe " ^ witness));
    check_int "warnings under strict exit 1" 1
      (command ("../bin/simdlint.exe --strict " ^ witness));
    check_int "cleanup then strict exits 0" 0
      (command ("../bin/simdlint.exe --cleanup --strict " ^ witness));
    check_int "unparseable input exits 2" 2
      (command "echo 'not a loop' | ../bin/simdlint.exe -");
    check_int "--rules exits 0" 0 (command "../bin/simdlint.exe --rules")
  end

let test_simdize_lint_exit_codes () =
  if not (Sys.file_exists "../bin/simdize.exe") then ()
  else begin
    (* simdize ignores reproducer headers, so the witness's zero policy
       must be restated on the command line *)
    let witness = Filename.concat corpus_dir "cleanup-beats-placed.simd" in
    check_int "simdize --lint tolerates warnings" 0
      (command ("../bin/simdize.exe " ^ witness ^ " -p zero --lint"));
    check_int "simdize --lint=strict escalates" 1
      (command ("../bin/simdize.exe " ^ witness ^ " -p zero --lint=strict"));
    check_int "simdize --cleanup --lint=strict is clean" 0
      (command ("../bin/simdize.exe " ^ witness ^ " -p zero --cleanup --lint=strict"))
  end

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "rule registry" `Quick test_registry;
        Alcotest.test_case "dead-shift-zero-policy is flagged" `Quick
          test_dead_shift_zero_policy_flagged;
        Alcotest.test_case "witness dirty without cleanup, clean with" `Quick
          test_witness_dirty_then_clean;
        Alcotest.test_case "shared streams are not waste" `Quick
          test_shared_streams_not_flagged;
        Alcotest.test_case "mask-uniform fires on a splat mask" `Quick
          test_mask_uniform_fires;
        Alcotest.test_case "shift-range is an error" `Quick
          test_shift_range_is_an_error;
        Alcotest.test_case "unused-stream fires" `Quick test_unused_stream_fires;
        Alcotest.test_case "simd-lint/1 document shape" `Quick test_json_shape;
        Alcotest.test_case "simdlint.exe exit codes" `Quick
          test_simdlint_exit_codes;
        Alcotest.test_case "simdize --lint exit codes" `Quick
          test_simdize_lint_exit_codes;
      ] );
  ]
