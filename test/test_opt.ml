(* Exact shift placement (Simd.Opt): the solver's graphs are valid and
   never cost more than any heuristic's — on every corpus program (incl.
   fuzz reproducers) and on a fixed-seed generator sweep — with a strict
   improvement on the committed counterexample; the DP's cost value agrees
   with the cost model applied to the rebuilt graph; auto selection
   achieves the candidate minimum; reports are consistent. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let eps = 1e-9

let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let simd_files dir =
  if Sys.file_exists dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".simd")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  else []

(* Whole-body invariants of the joint policy: every joint graph is valid,
   and under the body cost (per-statement costs minus the sharing
   discount) joint is never worse than per-statement optimal nor than any
   heuristic applied body-wide — the `joint ≤ optimal ≤ heuristics`
   property, body half. *)
let check_body_joint ~label ~(analysis : Analysis.t) =
  let body = analysis.Analysis.program.Ast.loop.Ast.body in
  let joint = Opt.Joint.place_body ~analysis body in
  List.iter
    (fun (_, g, _) ->
      match Graph.validate ~analysis g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: joint graph invalid: %s" label m)
    joint;
  let joint_cost =
    Opt.Joint.body_cost ~analysis (List.map (fun (s, g, _) -> (s, g)) joint)
  in
  let body_under policy =
    List.map
      (fun stmt ->
        let p = Opt.Place.place_with_fallback policy ~analysis stmt in
        (stmt, p.Opt.Place.graph))
      body
  in
  List.iter
    (fun p ->
      let c = Opt.Joint.body_cost ~analysis (body_under p) in
      if joint_cost > c +. eps then
        Alcotest.failf "%s: joint body (%.3f) beaten by %s body (%.3f)" label
          joint_cost (Policy.name p) c)
    (Policy.heuristics @ [ Policy.Optimal ])

(* Every statement with compile-time alignments: the solver graph is valid,
   its DP cost value matches the cost model on the rebuilt graph, no
   heuristic is cheaper, auto achieves the minimum, and the n−1 lower bound
   holds. Returns the number of statements checked. *)
let check_program ~label ~machine (program : Ast.program) : int =
  match Analysis.check ~machine program with
  | Error _ -> 0
  | Ok analysis ->
    check_body_joint ~label ~analysis;
    let checked = ref 0 in
    List.iter
      (fun stmt ->
        if Policy.offsets_known ~analysis stmt then begin
          incr checked;
          let graph, dp_cost =
            match Opt.Solve.solve_with_cost ~analysis stmt with
            | Ok r -> r
            | Error e ->
              Alcotest.failf "%s: solver rejected known alignments: %s" label
                (Format.asprintf "%a" Policy.pp_error e)
          in
          (match Graph.validate ~analysis graph with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: optimal graph invalid: %s" label m);
          let shift_term = Opt.Cost.shift_cost_of_graph ~analysis graph in
          check_bool
            (label ^ ": DP cost = cost model on rebuilt graph")
            true
            (Float.abs (dp_cost -. shift_term) <= eps);
          let opt_cost = Opt.Cost.graph_cost ~analysis ~stmt graph in
          List.iter
            (fun p ->
              match Policy.place p ~analysis stmt with
              | Error _ -> ()
              | Ok g ->
                let c = Opt.Cost.graph_cost ~analysis ~stmt g in
                if opt_cost > c +. eps then
                  Alcotest.failf "%s: optimal (%.3f) beaten by %s (%.3f)" label
                    opt_cost (Policy.name p) c)
            Policy.heuristics;
          let auto_graph, _ = Opt.Auto.place ~analysis stmt in
          let auto_cost = Opt.Cost.graph_cost ~analysis ~stmt auto_graph in
          check_bool
            (label ^ ": auto achieves the optimum")
            true
            (Float.abs (auto_cost -. opt_cost) <= eps);
          (* [Lb.min_shifts] counts stream shifts plus gather packs/window
             shifts, so compare against the same accounting of the optimal
             graphs. *)
          let lb = Lb.compute ~analysis ~policy:Policy.Optimal in
          check_bool
            (label ^ ": n-1 bound holds for the whole loop")
            true
            (lb.Lb.min_shifts
            <= Simd.Util.sum_by
                 (fun s ->
                   let g =
                     match Opt.Solve.solve ~analysis s with
                     | Ok g -> g
                     | Error _ -> Policy.place_exn Policy.Zero ~analysis s
                   in
                   let c = Opt.Cost.counts_of_node ~analysis g.Graph.root in
                   Opt.Cost.shifts c + c.Opt.Cost.packs)
                 analysis.Analysis.program.Ast.loop.Ast.body)
        end)
      program.Ast.loop.Ast.body;
    !checked

let test_corpus_optimal () =
  let files =
    simd_files corpus_dir @ simd_files (Filename.concat corpus_dir "fuzz")
  in
  check_bool "corpus found" true (List.length files > 5);
  let checked = ref 0 in
  List.iter
    (fun path ->
      match Parse.program_of_string_result (read_file path) with
      | Error m -> Alcotest.failf "%s: parse error: %s" path m
      | Ok program ->
        List.iter
          (fun vl ->
            checked :=
              !checked
              + check_program
                  ~label:(Filename.basename path ^ Printf.sprintf "@V%d" vl)
                  ~machine:(Machine.create ~vector_len:vl)
                  program)
          [ 8; 16; 32 ])
    files;
  check_bool "checked some statements" true (!checked > 10)

(* The committed counterexample where the exact solver strictly beats every
   §3.4 heuristic: offsets 4, 8, 8, 12, 12, 12, store 0 (V = 16). Dominant
   meets at 12 (4 shifts, one right); optimal chains 4→8→12→0 (3 shifts:
   2 right + 1 left = 3.5 weighted, vs dominant's 4.25 and lazy/eager/zero's
   6). *)
let test_strict_improvement () =
  let src =
    read_file (Filename.concat corpus_dir "opt-beats-heuristics.simd")
  in
  let analysis = Analysis.check_exn ~machine:Machine.default (Parse.program_of_string src) in
  let stmt = List.hd analysis.Analysis.program.Ast.loop.Ast.body in
  let opt = Opt.Solve.solve_exn ~analysis stmt in
  check_int "optimal shift count" 3 (Graph.graph_shift_count opt);
  let opt_cost = Opt.Cost.graph_cost ~analysis ~stmt opt in
  let heur_costs =
    List.map
      (fun p ->
        let g = Policy.place_exn p ~analysis stmt in
        (Policy.name p, Graph.graph_shift_count g, Opt.Cost.graph_cost ~analysis ~stmt g))
      Policy.heuristics
  in
  List.iter
    (fun (name, count, c) ->
      check_bool (name ^ " strictly beaten on cost") true (opt_cost < c -. eps);
      check_bool (name ^ " not beaten on raw count") true
        (Graph.graph_shift_count opt <= count))
    heur_costs;
  (* the shift-count win is strict too: best heuristic (dominant) needs 4 *)
  let best_count =
    List.fold_left (fun acc (_, c, _) -> min acc c) max_int heur_costs
  in
  check_int "best heuristic count" 4 best_count

(* The committed counterexamples where joint whole-body placement strictly
   beats per-statement optimal: shifting at the leaves costs one statement
   an extra vshiftstream, but the leaf chains feed the other statements,
   so the body runs on fewer distinct streams after value numbering. *)
let test_joint_strict_improvement () =
  List.iter
    (fun (file, expect_shared) ->
      let src = read_file (Filename.concat corpus_dir file) in
      List.iter
        (fun vl ->
          let machine = Machine.create ~vector_len:vl in
          let analysis =
            Analysis.check_exn ~machine (Parse.program_of_string src)
          in
          let body = analysis.Analysis.program.Ast.loop.Ast.body in
          let joint = Opt.Joint.place_body ~analysis body in
          let joint_cost =
            Opt.Joint.body_cost ~analysis
              (List.map (fun (s, g, _) -> (s, g)) joint)
          in
          let opt_cost =
            Opt.Joint.body_cost ~analysis
              (List.map
                 (fun stmt -> (stmt, Opt.Solve.solve_exn ~analysis stmt))
                 body)
          in
          check_bool
            (Printf.sprintf "%s@V%d: joint strictly beats optimal" file vl)
            true
            (joint_cost < opt_cost -. eps);
          (* the win comes from real sharing, visible in the outcome *)
          let o =
            Driver.simdize_exn
              { Driver.default with Driver.policy = Policy.Joint; machine }
              (Parse.program_of_string src)
          in
          check_int
            (Printf.sprintf "%s@V%d: shared streams detected" file vl)
            expect_shared
            (List.length o.Driver.shared_streams);
          check_bool
            (Printf.sprintf "%s@V%d: statements credited to joint" file vl)
            true
            (List.for_all (Policy.equal Policy.Joint) o.Driver.policies_used))
        [ 8; 16; 32 ])
    [ ("joint-beats-optimal.simd", 2); ("joint-beats-optimal-fir.simd", 2) ]

(* Satellite regression: Auto.place on an empty (or fully inapplicable)
   candidate list falls back to zero-shift instead of the old
   [assert false]. *)
let test_auto_empty_candidates () =
  let analysis =
    Analysis.check_exn ~machine:Machine.default
      (Parse.program_of_string
         "int32 a[64] @ 4;\nint32 b[64] @ 0;\n\
          for (i = 0; i < 32; i++) { a[i] = b[i+1]; }")
  in
  let stmt = List.hd analysis.Analysis.program.Ast.loop.Ast.body in
  let g, p = Opt.Auto.place ~candidates:[] ~analysis stmt in
  check_bool "empty candidates fall back to zero" true
    (Policy.equal Policy.Zero p);
  (match Graph.validate ~analysis g with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fallback graph invalid: %s" m);
  (* the default list still behaves as before *)
  let _, p = Opt.Auto.place ~analysis stmt in
  check_bool "default candidates pick a real policy" true
    (List.mem p Opt.Auto.candidates)

(* Satellite regression: feeding an already-placed tree back through a
   policy or the solver yields the diagnosable [Not_bare] error (and
   [Invalid_argument] from the _exn entry points), never a crash. *)
let test_not_bare () =
  let analysis =
    Analysis.check_exn ~machine:Machine.default
      (Parse.program_of_string
         "int32 a[64] @ 4;\nint32 b[64] @ 0;\n\
          for (i = 0; i < 32; i++) { a[i] = b[i+1]; }")
  in
  let stmt = List.hd analysis.Analysis.program.Ast.loop.Ast.body in
  let placed = Policy.place_exn Policy.Zero ~analysis stmt in
  check_bool "zero placement really has shifts" true
    (Graph.graph_shift_count placed > 0);
  let root = placed.Graph.root in
  check_bool "placed root is not bare" true (not (Graph.is_bare root));
  List.iter
    (fun p ->
      match Policy.place ~root p ~analysis stmt with
      | Error (Policy.Not_bare (p', _)) ->
        check_bool (Policy.name p ^ " error names the policy") true
          (Policy.equal p p')
      | Error e ->
        Alcotest.failf "%s on placed tree: wrong error %s" (Policy.name p)
          (Format.asprintf "%a" Policy.pp_error e)
      | Ok _ -> Alcotest.failf "%s accepted a placed tree" (Policy.name p))
    Policy.heuristics;
  (match Opt.Solve.solve ~root ~analysis stmt with
  | Error (Policy.Not_bare _) -> ()
  | Error e ->
    Alcotest.failf "solver on placed tree: wrong error %s"
      (Format.asprintf "%a" Policy.pp_error e)
  | Ok _ -> Alcotest.fail "solver accepted a placed tree");
  (match Policy.place_exn ~root Policy.Zero ~analysis stmt with
  | exception Invalid_argument _ -> ()
  | exception e ->
    Alcotest.failf "place_exn on placed tree raised %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "place_exn accepted a placed tree")

(* Single-def/single-use streams (an RHS that is one load): lazy is already
   optimal — one root shift at most — so the solver matches it exactly. *)
let test_single_use_matches_lazy () =
  List.iter
    (fun store_align ->
      List.iter
        (fun load_off ->
          let src =
            Printf.sprintf
              "int32 dst[64] @ %d;\nint32 s[64] @ 0;\n\
               for (i = 0; i < 32; i++) { dst[i] = s[i+%d]; }"
              store_align load_off
          in
          let analysis =
            Analysis.check_exn ~machine:Machine.default (Parse.program_of_string src)
          in
          let stmt = List.hd analysis.Analysis.program.Ast.loop.Ast.body in
          let opt = Opt.Solve.solve_exn ~analysis stmt in
          let lzy = Policy.place_exn Policy.Lazy ~analysis stmt in
          check_bool
            (Printf.sprintf "single load @%d -> store @%d" load_off store_align)
            true
            (Float.abs
               (Opt.Cost.graph_cost ~analysis ~stmt opt
               -. Opt.Cost.graph_cost ~analysis ~stmt lzy)
            <= eps))
        [ 0; 1; 2; 3 ])
    [ 0; 4; 8; 12 ]

(* Fixed-seed sweep of random multi-statement loops: the same invariants as
   the corpus pass, over a much wider shape space. Deterministic — no
   QCheck seed involved. *)
let test_generator_sweep () =
  let prng = Prng.create ~seed:0x0B7A11 in
  let checked = ref 0 in
  for case = 1 to 400 do
    let vl = Prng.pick prng [ 8; 16; 16; 32 ] in
    let n_stmts = Prng.range prng ~lo:1 ~hi:2 in
    let n_arrays = Prng.range prng ~lo:2 ~hi:8 in
    let decls =
      List.init n_arrays (fun k ->
          Printf.sprintf "int32 s%d[256] @ %d;" k
            (4 * Prng.int prng ~bound:(vl / 4)))
    in
    let stmts =
      List.init n_stmts (fun k ->
          let n_loads = Prng.range prng ~lo:1 ~hi:7 in
          let loads =
            List.init n_loads (fun _ ->
                Printf.sprintf "s%d[i+%d]"
                  (Prng.int prng ~bound:n_arrays)
                  (Prng.int prng ~bound:8))
          in
          Printf.sprintf "d%d[i+%d] = %s;" k
            (Prng.int prng ~bound:4)
            (String.concat " + " loads))
    in
    let dsts =
      List.init n_stmts (fun k ->
          Printf.sprintf "int32 d%d[256] @ %d;" k
            (4 * Prng.int prng ~bound:(vl / 4)))
    in
    let src =
      String.concat "\n" (decls @ dsts)
      ^ Printf.sprintf "\nfor (i = 0; i < 64; i++) { %s }"
          (String.concat " " stmts)
    in
    let program =
      match Parse.program_of_string_result src with
      | Ok p -> p
      | Error m -> Alcotest.failf "sweep case %d: parse error: %s" case m
    in
    checked :=
      !checked
      + check_program
          ~label:(Printf.sprintf "sweep case %d (V=%d)" case vl)
          ~machine:(Machine.create ~vector_len:vl)
          program
  done;
  check_bool "sweep checked enough statements" true (!checked >= 300)

(* Auto through the driver: the per-statement winner is recorded in
   [policies_used], and on an aligned loop it credits the earliest policy
   (zero) rather than the solver. *)
let test_auto_driver () =
  let aligned =
    Parse.program_of_string
      "int32 a[64] @ 0;\nint32 b[64] @ 0;\n\
       for (i = 0; i < 32; i++) { a[i] = b[i]; }"
  in
  let o =
    Driver.simdize_exn { Driver.default with Driver.policy = Policy.Auto } aligned
  in
  check_bool "aligned auto credits zero" true
    (List.for_all (Policy.equal Policy.Zero) o.Driver.policies_used);
  let mixed =
    Parse.program_of_string
      "int32 t[128] @ 0;\nint32 a[128] @ 0;\nint32 b[128] @ 0;\n\
       int32 c[128] @ 0;\nint32 u[128] @ 0;\nint32 v[128] @ 0;\n\
       int32 w[128] @ 0;\nfor (i = 0; i < 100; i++) { t[i] = a[i+1] + \
       b[i+2] + c[i+2] + u[i+3] + v[i+3] + w[i+3]; }"
  in
  let o =
    Driver.simdize_exn { Driver.default with Driver.policy = Policy.Auto } mixed
  in
  check_bool "counterexample auto credits optimal" true
    (List.for_all (Policy.equal Policy.Optimal) o.Driver.policies_used)

(* The report: per-statement cost equals counts priced by the model, totals
   add up, the optimal alternative is never beaten, and the JSON mentions
   every policy. *)
let test_report () =
  let program =
    Parse.program_of_string
      "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
       for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  let o =
    Driver.simdize_exn
      { Driver.default with Driver.policy = Policy.Optimal }
      program
  in
  let r = Driver.report o in
  check_int "one statement" 1 (List.length r.Opt.Report.stmts);
  let s = List.hd r.Opt.Report.stmts in
  check_bool "per-stmt cost = priced counts" true
    (Float.abs (s.Opt.Report.cost -. r.Opt.Report.total_cost) <= eps);
  check_int "streams: two loads + store" 3 (List.length s.Opt.Report.streams);
  let opt_alt = List.assoc Policy.Optimal s.Opt.Report.alternatives in
  List.iter
    (fun (p, c) ->
      check_bool (Policy.name p ^ " never beats optimal") true
        (opt_alt <= c +. eps))
    s.Opt.Report.alternatives;
  check_bool "chosen cost is the optimal alternative" true
    (Float.abs (s.Opt.Report.cost -. opt_alt) <= eps);
  let json = Opt.Report.to_string ~indent:2 r in
  List.iter
    (fun frag ->
      let n = String.length frag in
      let rec go i =
        i + n <= String.length json && (String.sub json i n = frag || go (i + 1))
      in
      check_bool ("report JSON has " ^ frag) true (go 0))
    [
      "\"policy\": \"optimal\"";
      "\"total_cost\"";
      "\"shifts\"";
      "\"alternatives\"";
      "\"zero\"";
      "\"dominant\"";
    ]

(* New policies through the full pipeline: differential verification on a
   runtime-alignment program (exercising the zero fallback) and on the
   strict-improvement counterexample. *)
let test_new_policies_verify () =
  List.iter
    (fun policy ->
      List.iter
        (fun src ->
          let program = Parse.program_of_string (read_file src) in
          let trip =
            match program.Ast.loop.Ast.trip with
            | Ast.Trip_const _ -> None
            | Ast.Trip_param _ -> Some 100
          in
          let config = { Driver.default with Driver.policy } in
          match Measure.verify ~config ~setup_seed:7 ?trip program with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "%s under %s: %s" (Filename.basename src)
              (Policy.name policy) m)
        [
          Filename.concat corpus_dir "opt-beats-heuristics.simd";
          Filename.concat corpus_dir "runtime_everything.simd";
          Filename.concat corpus_dir "fig1_paper.simd";
          Filename.concat corpus_dir "joint-beats-optimal.simd";
          Filename.concat corpus_dir "joint-beats-optimal-fir.simd";
        ])
    [ Policy.Optimal; Policy.Auto; Policy.Joint ]

(* The sharing section of the report: consumers and savings agree with the
   placed graphs, the body cost is total minus savings, and the JSON
   carries the schema keys. *)
let test_report_shared_streams () =
  let program =
    Parse.program_of_string
      (read_file (Filename.concat corpus_dir "joint-beats-optimal.simd"))
  in
  let o =
    Driver.simdize_exn { Driver.default with Driver.policy = Policy.Joint }
      program
  in
  let r = Driver.report o in
  check_int "two shared streams" 2 (List.length r.Opt.Report.shared);
  let saved =
    List.fold_left
      (fun acc s -> acc +. s.Opt.Report.shared_saved)
      0.0 r.Opt.Report.shared
  in
  check_bool "body cost = total - savings" true
    (Float.abs (r.Opt.Report.body_cost -. (r.Opt.Report.total_cost -. saved))
    <= eps);
  List.iter
    (fun s ->
      check_bool "every shared stream has >= 2 consumers" true
        (s.Opt.Report.shared_consumers >= 2))
    r.Opt.Report.shared;
  let json = Opt.Report.to_string ~indent:2 r in
  List.iter
    (fun frag ->
      let n = String.length frag in
      let rec go i =
        i + n <= String.length json && (String.sub json i n = frag || go (i + 1))
      in
      check_bool ("report JSON has " ^ frag) true (go 0))
    [
      "\"policy\": \"joint\"";
      "\"shared_streams\"";
      "\"consumers\"";
      "\"saved\"";
      "\"body_cost\"";
    ]

let suite =
  [
    ( "opt",
      [
        Alcotest.test_case "corpus: joint <= optimal <= heuristics" `Quick
          test_corpus_optimal;
        Alcotest.test_case "counterexample: strict improvement" `Quick
          test_strict_improvement;
        Alcotest.test_case "counterexamples: joint strictly beats optimal"
          `Quick test_joint_strict_improvement;
        Alcotest.test_case "auto is total on empty candidates" `Quick
          test_auto_empty_candidates;
        Alcotest.test_case "placed trees yield Not_bare, not a crash" `Quick
          test_not_bare;
        Alcotest.test_case "single-use streams match lazy" `Quick
          test_single_use_matches_lazy;
        Alcotest.test_case "fixed-seed sweep: joint <= optimal <= heuristics"
          `Quick test_generator_sweep;
        Alcotest.test_case "auto selection through driver" `Quick
          test_auto_driver;
        Alcotest.test_case "cost report consistency" `Quick test_report;
        Alcotest.test_case "shared-stream report section" `Quick
          test_report_shared_streams;
        Alcotest.test_case "optimal/auto/joint verify differentially" `Quick
          test_new_policies_verify;
      ] );
  ]
