(* Shift-placement policy tests: the paper's worked examples (Figures 4–6)
   with their exact stream-shift counts, graph validity (constraints C.2 and
   C.3) for every policy on random statements, and the runtime-alignment
   restrictions of §4.4. *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze src = Analysis.check_exn ~machine (Parse.program_of_string src)

(* Through the total dispatcher, so [Policy.all] iteration also covers the
   solver-placed policies (Optimal/Auto). *)
let place policy src =
  let a = analyze src in
  let stmt = List.hd a.Analysis.program.Ast.loop.Ast.body in
  (a, (Opt.Place.place_exn policy ~analysis:a stmt).Opt.Place.graph)

let shift_count policy src =
  let _, g = place policy src in
  Graph.graph_shift_count g

let validate policy src =
  let a, g = place policy src in
  match Graph.validate ~analysis:a g with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s graph invalid: %s" (Policy.name policy) m

(* The paper's running example: a[i+3] = b[i+1] + c[i+2], all arrays
   16-byte aligned (offsets 12, 4, 8). *)
let fig4 =
  "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"

(* Figure 6a: a[i+3] = b[i+1] + c[i+1] — relatively aligned loads. *)
let fig6a =
  "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+1]; }"

(* Figure 6b: a[i+3] = b[i+1] * c[i+2] + d[i+1] — dominant offset 4. *)
let fig6b =
  "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\nint32 d[128] @ 0;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] * c[i+2] + d[i+1]; }"

let test_fig4_zero () = check_int "zero: 3 shifts" 3 (shift_count Policy.Zero fig4)
let test_fig5_eager () = check_int "eager: 2 shifts" 2 (shift_count Policy.Eager fig4)

let test_fig6a_lazy () =
  (* zero-shift needs 3, eager 2, lazy only 1 (the store shift). *)
  check_int "zero: 3" 3 (shift_count Policy.Zero fig6a);
  check_int "eager: 2" 2 (shift_count Policy.Eager fig6a);
  check_int "lazy: 1" 1 (shift_count Policy.Lazy fig6a);
  check_int "dominant: 1" 1 (shift_count Policy.Dominant fig6a)

let test_fig6b_dominant () =
  check_int "zero: 4" 4 (shift_count Policy.Zero fig6b);
  check_int "eager: 3" 3 (shift_count Policy.Eager fig6b);
  check_int "dominant: 2" 2 (shift_count Policy.Dominant fig6b)

let test_dominant_beats_leftmost_lazy () =
  (* a[i] = b[i+1]*c[i+2] + d[i+2]: offsets 4, 8, 8; store 0. A lazy meet at
     the leftmost offset needs 3 shifts; meeting at the dominant offset 8
     needs 2. *)
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\nint32 d[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i] = b[i+1] * c[i+2] + d[i+2]; }"
  in
  check_bool "dominant <= lazy" true
    (shift_count Policy.Dominant src <= shift_count Policy.Lazy src);
  check_int "dominant: 2" 2 (shift_count Policy.Dominant src)

let test_aligned_loop_no_shifts () =
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i] = b[i] + c[i+4]; }"
  in
  List.iter
    (fun p -> check_int (Policy.name p ^ ": 0 shifts") 0 (shift_count p src))
    Policy.all

let test_splat_needs_no_shift () =
  let src =
    "int32 a[128] @ 4;\nparam x;\nfor (i = 0; i < 100; i++) { a[i] = x; }"
  in
  List.iter
    (fun p ->
      check_int (Policy.name p ^ ": splat-only rhs") 0 (shift_count p src);
      validate p src)
    Policy.all

let test_all_valid_on_figures () =
  List.iter
    (fun policy -> List.iter (validate policy) [ fig4; fig6a; fig6b ])
    Policy.all

let test_runtime_requires_zero () =
  let src =
    "int32 a[128] @ ?;\nint32 b[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i] = b[i+1]; }"
  in
  let a = analyze src in
  let stmt = List.hd a.Analysis.program.Ast.loop.Ast.body in
  (match Policy.place Policy.Lazy ~analysis:a stmt with
  | Error (Policy.Requires_compile_time_alignment _) -> ()
  | Error (Policy.Requires_solver _ | Policy.Not_bare _) ->
    Alcotest.fail "lazy is not solver-placed and the tree is bare"
  | Ok _ -> Alcotest.fail "lazy should reject runtime alignments");
  (match Opt.Place.place Policy.Optimal ~analysis:a stmt with
  | Error (Policy.Requires_compile_time_alignment _) -> ()
  | Error (Policy.Requires_solver _ | Policy.Not_bare _) ->
    Alcotest.fail "dispatcher is total and the tree is bare"
  | Ok _ -> Alcotest.fail "optimal should reject runtime alignments");
  (match Opt.Place.place Policy.Auto ~analysis:a stmt with
  | Ok { Opt.Place.used = Policy.Zero; graph } ->
    check_int "auto falls back to zero" 2 (Graph.graph_shift_count graph)
  | Ok { Opt.Place.used = p; _ } ->
    Alcotest.failf "auto under runtime alignment used %s" (Policy.name p)
  | Error _ -> Alcotest.fail "auto must be total");
  (match Policy.place Policy.Zero ~analysis:a stmt with
  | Ok g -> (
    check_int "zero handles runtime" 2 (Graph.graph_shift_count g);
    match Graph.validate ~analysis:a g with
    | Ok () -> ()
    | Error m -> Alcotest.failf "invalid: %s" m)
  | Error _ -> Alcotest.fail "zero must handle runtime alignments")

let test_zero_skips_aligned () =
  (* zero-shift leaves compile-time-aligned streams untouched *)
  let src =
    "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
     for (i = 0; i < 100; i++) { a[i] = b[i+1] + c[i]; }"
  in
  check_int "only b shifted" 1 (shift_count Policy.Zero src)

let test_offset_matching_runtime () =
  (* Two references to one runtime-aligned array, offsets congruent mod B:
     relatively aligned, so lazy-style matching applies within zero-shift
     semantics. Offset.matches must accept them. *)
  let r1 = { Ast.ref_array = "x"; ref_offset = 1; ref_stride = 1 } in
  let r2 = { Ast.ref_array = "x"; ref_offset = 5; ref_stride = 1 } in
  let r3 = { Ast.ref_array = "x"; ref_offset = 2; ref_stride = 1 } in
  check_bool "congruent mod 4" true
    (Offset.matches ~block:4 (Offset.Runtime r1) (Offset.Runtime r2));
  check_bool "not congruent" false
    (Offset.matches ~block:4 (Offset.Runtime r1) (Offset.Runtime r3));
  check_bool "any matches" true (Offset.matches ~block:4 Offset.Any (Offset.Known 4));
  check_bool "known/runtime don't match" false
    (Offset.matches ~block:4 (Offset.Known 4) (Offset.Runtime r1))

(* Property: every policy produces a valid graph on random statements with
   compile-time alignments; the shift count never exceeds zero-shift's. *)
let gen_stmt_src : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_loads = int_range 1 6 in
  let* aligns = list_repeat (n_loads + 1) (int_range 0 3) in
  let* offs = list_repeat n_loads (int_range 0 3) in
  let decls =
    List.mapi
      (fun k a ->
        Printf.sprintf "int32 %s[128] @ %d;"
          (if k = 0 then "dst" else Printf.sprintf "s%d" k)
          (4 * a))
      aligns
  in
  let loads =
    List.mapi (fun k o -> Printf.sprintf "s%d[i+%d]" (k + 1) o) offs
  in
  return
    (String.concat "\n" decls
    ^ Printf.sprintf "\nfor (i = 0; i < 64; i++) { dst[i+1] = %s; }"
        (String.concat " + " loads))

(* Note: no pointwise shift-count ordering between policies is asserted —
   zero-shift gets already-aligned loads for free, so e.g. eager can insert
   more shifts than zero on loops whose loads cluster at offset 0 while the
   store does not. The paper's orderings are aggregate trends; those are
   exercised by the Figure 11/12 experiment tests. What must always hold is
   validity (C.2/C.3) and that lazy never exceeds eager (delaying shifts
   can only merge relatively-aligned operands, never split them). *)
let prop_policies_valid =
  QCheck.Test.make ~count:300 ~name:"all policies valid; lazy <= eager"
    (QCheck.make ~print:Fun.id gen_stmt_src)
    (fun src ->
      let a = analyze src in
      let stmt = List.hd a.Analysis.program.Ast.loop.Ast.body in
      let graphs =
        List.map
          (fun p ->
            (p, (Opt.Place.place_exn p ~analysis:a stmt).Opt.Place.graph))
          Policy.all
      in
      List.for_all
        (fun (_, g) -> Result.is_ok (Graph.validate ~analysis:a g))
        graphs
      &&
      let count p = Graph.graph_shift_count (List.assoc p graphs) in
      count Policy.Lazy <= count Policy.Eager)

(* Property: the minimum-shift accounting of §5.3 lower-bounds every
   policy's actual shift count. *)
let prop_lb_shifts =
  QCheck.Test.make ~count:300 ~name:"LB shifts <= policy shifts"
    (QCheck.make ~print:Fun.id gen_stmt_src)
    (fun src ->
      let a = analyze src in
      let stmt = List.hd a.Analysis.program.Ast.loop.Ast.body in
      List.for_all
        (fun p ->
          let g = (Opt.Place.place_exn p ~analysis:a stmt).Opt.Place.graph in
          let lb = Lb.compute ~analysis:a ~policy:p in
          lb.Lb.min_shifts <= Graph.graph_shift_count g)
        Policy.all)

let suite =
  [
    ( "policies",
      [
        Alcotest.test_case "fig4: zero-shift = 3" `Quick test_fig4_zero;
        Alcotest.test_case "fig5: eager-shift = 2" `Quick test_fig5_eager;
        Alcotest.test_case "fig6a: lazy-shift = 1" `Quick test_fig6a_lazy;
        Alcotest.test_case "fig6b: dominant-shift = 2" `Quick test_fig6b_dominant;
        Alcotest.test_case "dominant meets globally" `Quick
          test_dominant_beats_leftmost_lazy;
        Alcotest.test_case "aligned loop: no shifts" `Quick test_aligned_loop_no_shifts;
        Alcotest.test_case "splat rhs: no shifts" `Quick test_splat_needs_no_shift;
        Alcotest.test_case "figures all valid" `Quick test_all_valid_on_figures;
        Alcotest.test_case "runtime align forces zero" `Quick test_runtime_requires_zero;
        Alcotest.test_case "zero skips aligned streams" `Quick test_zero_skips_aligned;
        Alcotest.test_case "runtime offset matching" `Quick test_offset_matching_runtime;
        QCheck_alcotest.to_alcotest prop_policies_valid;
        QCheck_alcotest.to_alcotest prop_lb_shifts;
      ] );
  ]
