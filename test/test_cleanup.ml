(* The vir_cleanup driver pass (Passes.vir_cleanup over
   Dataflow.Cleanup): the committed witness strictly reduces steady-state
   vop counts, the pass is a semantic no-op over the whole corpus under
   every policy and vector length (simulator agreement + zero
   error-severity static-verifier violations), and the placement cost
   report is unaffected (so joint <= optimal <= heuristics orderings are
   untouched). *)

open Simd
module Prog = Vir_prog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let fuzz_corpus_dir =
  List.find_opt Sys.file_exists
    [
      "../corpus/fuzz";
      "corpus/fuzz";
      "../../corpus/fuzz";
      "../../../corpus/fuzz";
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let total (c : Prog.static_counts) =
  c.Prog.loads + c.Prog.stores + c.Prog.ops + c.Prog.splats + c.Prog.shifts
  + c.Prog.splices + c.Prog.packs + c.Prog.copies

let witness_case () =
  match Fuzz.Case.of_file (Filename.concat corpus_dir "cleanup-beats-placed.simd") with
  | Ok case -> case
  | Error m -> Alcotest.failf "witness: %s" m

(* ------------------------------------------------------------------ *)
(* The committed witness strictly beats placed code                    *)
(* ------------------------------------------------------------------ *)

let test_witness_strictly_reduces () =
  let case = witness_case () in
  check_bool "witness header requests cleanup" true
    case.Fuzz.Case.config.Driver.cleanup;
  let placed =
    Driver.simdize_exn
      { case.Fuzz.Case.config with Driver.cleanup = false }
      case.Fuzz.Case.program
  in
  let cleaned =
    Driver.simdize_exn
      { case.Fuzz.Case.config with Driver.cleanup = true }
      case.Fuzz.Case.program
  in
  let before = Prog.body_counts placed.Driver.prog in
  let after = Prog.body_counts cleaned.Driver.prog in
  check_bool "steady-state shifts strictly drop" true
    (after.Prog.shifts < before.Prog.shifts);
  check_bool "steady-state vop total strictly drops" true
    (total after < total before);
  (* the genuine shift of the control statement survives *)
  check_bool "cleanup does not erase needed shifts" true (after.Prog.shifts > 0)

let test_witness_actions_and_fixpoint () =
  let case = witness_case () in
  let o =
    Driver.simdize_exn ~check:true
      { case.Fuzz.Case.config with Driver.cleanup = true }
      case.Fuzz.Case.program
  in
  List.iter
    (fun (boundary, (viol : Check.violation)) ->
      if viol.Check.severity = Check.Error then
        Alcotest.failf "witness: at %s: %s" boundary
          (Check.violation_to_string viol))
    (Driver.check_violations o);
  (* cleanup already ran: a second dry run finds nothing left to do *)
  let v = Machine.vector_len o.Driver.analysis.Analysis.machine in
  let p = o.Driver.prog in
  let actions =
    Dataflow.Cleanup.dry_run ~v ~block:p.Prog.block
      ~prologue:p.Prog.prologue ~body:p.Prog.body
      ~epilogues:p.Prog.epilogues
  in
  let residual =
    List.filter
      (function Dataflow.Cleanup.Propagated _ -> false | _ -> true)
      actions
  in
  check_int "cleanup reaches a fixpoint" 0 (List.length residual)

(* ------------------------------------------------------------------ *)
(* Semantic no-op over corpus x policies x V                           *)
(* ------------------------------------------------------------------ *)

(* Runtime-bound corpus loops need a concrete trip for the simulator. *)
let trip_for file =
  match file with
  | "pred-masked-epilogue.simd" | "runtime_everything.simd" -> Some 40
  | _ -> None

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simd")
  |> List.sort compare

let test_cleanup_is_semantic_noop () =
  let files = corpus_files () in
  check_bool "corpus present" true (files <> []);
  let verified = ref 0 in
  List.iter
    (fun file ->
      let program =
        Parse.program_of_string (read_file (Filename.concat corpus_dir file))
      in
      List.iter
        (fun vl ->
          let machine = Machine.create ~vector_len:vl in
          List.iter
            (fun policy ->
              let config =
                { Driver.default with Driver.machine; policy; cleanup = true }
              in
              (* translation validation at every pass boundary; a scalar
                 fallback (e.g. an @8 base at V=8) is a legitimate skip *)
              match Driver.simdize ~check:true config program with
              | Driver.Scalar _ -> ()
              | Driver.Simdized o -> (
                List.iter
                  (fun (boundary, (viol : Check.violation)) ->
                    if viol.Check.severity = Check.Error then
                      Alcotest.failf "%s (V=%d, %s): at %s: %s" file vl
                        (Policy.name policy) boundary
                        (Check.violation_to_string viol))
                  (Driver.check_violations o);
                (* differential simulation against the scalar interpreter *)
                match
                  Measure.verify ~config ?trip:(trip_for file) program
                with
                | Ok () -> incr verified
                | Error m ->
                  Alcotest.failf "%s (V=%d, %s): %s" file vl
                    (Policy.name policy) m
                | exception Measure.Not_simdized _ -> ()))
            Policy.all)
        [ 8; 16; 32 ])
    files;
  check_bool "sweep really simulated loops" true (!verified > 100)

(* Committed fuzz reproducers replay their exact configs with cleanup
   forced on; the rewrites must not resurrect any of the original bugs. *)
let test_fuzz_corpus_cleanup_clean () =
  match fuzz_corpus_dir with
  | None -> ()
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".simd")
    |> List.iter (fun f ->
           match Fuzz.Case.of_file (Filename.concat dir f) with
           | Error m -> Alcotest.failf "%s: %s" f m
           | Ok case -> (
             let config =
               { case.Fuzz.Case.config with Driver.cleanup = true }
             in
             match
               Measure.verify ~config ~setup_seed:case.Fuzz.Case.setup_seed
                 ?trip:case.Fuzz.Case.trip case.Fuzz.Case.program
             with
             | Ok () -> ()
             | Error m -> Alcotest.failf "%s: %s" f m
             | exception Measure.Not_simdized _ -> ()))

(* ------------------------------------------------------------------ *)
(* Placement costs are blind to cleanup                                *)
(* ------------------------------------------------------------------ *)

(* The cost report prices the *placed* graphs, before generation; the
   cleanup pass rewrites emitted VIR only. Identical reports mean every
   policy comparison (joint <= optimal <= heuristics) is unchanged. *)
let test_report_unchanged () =
  let files = corpus_files () in
  List.iter
    (fun file ->
      let program =
        Parse.program_of_string (read_file (Filename.concat corpus_dir file))
      in
      let report cleanup =
        match
          Driver.simdize { Driver.default with Driver.cleanup } program
        with
        | Driver.Scalar _ -> None
        | Driver.Simdized o ->
          Some (Json.to_line (Opt.Report.to_json (Driver.report o)))
      in
      match (report false, report true) with
      | Some off, Some on ->
        Alcotest.(check string) (file ^ ": report unchanged") off on
      | None, None -> ()
      | _ -> Alcotest.failf "%s: cleanup changed the scalar decision" file)
    files

let suite =
  [
    ( "cleanup",
      [
        Alcotest.test_case "witness strictly reduces vops" `Quick
          test_witness_strictly_reduces;
        Alcotest.test_case "witness validates and reaches fixpoint" `Quick
          test_witness_actions_and_fixpoint;
        Alcotest.test_case "semantic no-op over corpus x policies x V" `Slow
          test_cleanup_is_semantic_noop;
        Alcotest.test_case "fuzz reproducers stay green under cleanup" `Slow
          test_fuzz_corpus_cleanup_clean;
        Alcotest.test_case "cost report blind to cleanup" `Quick
          test_report_unchanged;
      ] );
  ]
