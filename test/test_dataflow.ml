(* The dataflow engine (Simd.Dataflow): qcheck laws for the Absoff
   lattice (join commutativity / associativity / idempotence, upper
   bounds, transfer monotonicity on the non-Bot sublattice), and unit
   tests for the shipped analyses — liveness with back-edge closure,
   definition summaries with If-poisoning, carried-temp discovery, the
   bounded fixpoint, and stream-offset evaluation. *)

open Simd
module Expr = Vir_expr
module Rexpr = Vir_rexpr
module Addr = Vir_addr
module SS = Util.String_set
module SM = Util.String_map

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = 16

(* ------------------------------------------------------------------ *)
(* Absoff lattice laws                                                 *)
(* ------------------------------------------------------------------ *)

(* The engine's invariant (see the interface) is that every value is
   kept normalized, so the laws are stated on normalized representatives
   — raw k's still range over [-2V, 2V] to exercise the wraparound. *)
let gen_absoff : Absoff.t QCheck.Gen.t =
  QCheck.Gen.(
    map
      (Absoff.normalize ~v)
      (frequency
         [
           (1, return Absoff.Bot);
           (3, map (fun k -> Absoff.Byte k) (int_range (-2 * v) (2 * v)));
           ( 3,
             map3
               (fun arr sign k ->
                 Absoff.Sym { arr; sign = (if sign then 1 else -1); k })
               (oneofl [ "a"; "b"; "c" ])
               bool
               (int_range (-2 * v) (2 * v)) );
           (1, return Absoff.Top);
         ]))

let arb_absoff = QCheck.make ~print:Absoff.to_string gen_absoff

let arb_absoff_pair = QCheck.pair arb_absoff arb_absoff
let arb_absoff_triple = QCheck.triple arb_absoff arb_absoff arb_absoff

(* x is below y in the join order (stated modulo normalization). *)
let leq x y =
  Absoff.equal
    (Absoff.normalize ~v (Absoff.merge ~v x y))
    (Absoff.normalize ~v y)

let prop_join_commutative =
  QCheck.Test.make ~count:1000 ~name:"merge commutative" arb_absoff_pair
    (fun (a, b) -> Absoff.equal (Absoff.merge ~v a b) (Absoff.merge ~v b a))

let prop_join_associative =
  QCheck.Test.make ~count:1000 ~name:"merge associative" arb_absoff_triple
    (fun (a, b, c) ->
      Absoff.equal
        (Absoff.merge ~v (Absoff.merge ~v a b) c)
        (Absoff.merge ~v a (Absoff.merge ~v b c)))

let prop_join_idempotent =
  QCheck.Test.make ~count:1000 ~name:"merge idempotent" arb_absoff (fun a ->
      Absoff.equal (Absoff.merge ~v a a) (Absoff.normalize ~v a))

let prop_join_upper_bound =
  QCheck.Test.make ~count:1000 ~name:"merge is an upper bound"
    arb_absoff_pair (fun (a, b) ->
      let j = Absoff.merge ~v a b in
      leq a j && leq b j)

(* Transfer monotonicity is stated on the Byte/Sym/Top sublattice: [Bot]
   is not a set-containment bottom but "lane-uniform, compatible with
   any offset", and [add] deliberately absorbs it (Bot + o = o), which
   is sound for the checker but not monotone in the join order. Above
   Bot the order is flat-plus-Top, so comparable pairs are x <= x and
   x <= Top. *)
let gen_mono_pair =
  QCheck.Gen.(
    let non_bot =
      gen_absoff
      |> map (fun x -> if x = Absoff.Bot then Absoff.Top else x)
    in
    pair non_bot bool
    |> map (fun (x, up) -> (x, if up then Absoff.Top else x)))

let arb_mono_pair =
  QCheck.make
    ~print:(fun (x, y) ->
      Printf.sprintf "(%s, %s)" (Absoff.to_string x) (Absoff.to_string y))
    gen_mono_pair

let prop_transfer_monotone =
  QCheck.Test.make ~count:1000 ~name:"transfers monotone above Bot"
    (QCheck.pair arb_mono_pair arb_absoff)
    (fun ((x, y), z) ->
      QCheck.assume (leq x y);
      let z = if z = Absoff.Bot then Absoff.Byte 4 else z in
      leq (Absoff.add ~v x z) (Absoff.add ~v y z)
      && leq (Absoff.sub ~v x z) (Absoff.sub ~v y z)
      && leq (Absoff.neg ~v x) (Absoff.neg ~v y)
      && leq (Absoff.mul_const ~v x 3) (Absoff.mul_const ~v y 3)
      && leq (Absoff.mod_const ~v x 8) (Absoff.mod_const ~v y 8)
      && leq (Absoff.merge ~v x z) (Absoff.merge ~v y z))

let prop_normalize_idempotent =
  QCheck.Test.make ~count:1000 ~name:"normalize idempotent" arb_absoff
    (fun a ->
      Absoff.equal
        (Absoff.normalize ~v (Absoff.normalize ~v a))
        (Absoff.normalize ~v a))

(* ------------------------------------------------------------------ *)
(* IR builders                                                         *)
(* ------------------------------------------------------------------ *)

let addr ?(scale = 1) array offset = { Addr.array; offset; scale }
let load ?scale arr off = Expr.Load (addr ?scale arr off)
let temp x = Expr.Temp x
let shiftp a b s = Expr.Shiftpair (a, b, Rexpr.Const s)

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness () =
  let body =
    [
      Expr.Assign ("x", load "a" 0);
      Expr.Assign ("y", Expr.Op (Ast.Add, temp "x", temp "x"));
      Expr.Store (addr "b" 0, temp "y");
    ]
  in
  let live = Dataflow.Live.live_in SS.empty body in
  check_bool "straight-line entry live set empty" true (SS.is_empty live);
  let live = Dataflow.Live.live_in (SS.singleton "x") body in
  check_bool "x redefined before exit" true (SS.is_empty live);
  let live = Dataflow.Live.live_in (SS.singleton "q") body in
  check_bool "unrelated live-out survives" true (SS.mem "q" live);
  check_bool "reads_of sees all reads" true
    (SS.equal (Dataflow.Live.reads_of body) (SS.of_list [ "x"; "y" ]))

let test_loop_out_closes_back_edge () =
  (* [old] is read at the top and refreshed at the bottom: it must be
     live around the back edge even with an empty tail set. *)
  let body =
    [
      Expr.Assign ("t", shiftp (temp "old") (load "a" 0) 4);
      Expr.Store (addr "b" 0, temp "t");
      Expr.Assign ("old", load "a" 4);
    ]
  in
  let out = Dataflow.Live.loop_out ~body SS.empty in
  check_bool "carried temp live across the back edge" true (SS.mem "old" out);
  check_bool "local temp not live out" false (SS.mem "t" out)

(* ------------------------------------------------------------------ *)
(* Definition summaries                                                *)
(* ------------------------------------------------------------------ *)

let test_defs_scan_and_resolve () =
  let stmts =
    [
      Expr.Assign ("x", load "a" 0);
      Expr.Assign ("y", temp "x");
      Expr.Assign ("z", temp "y");
    ]
  in
  let defs = Dataflow.Defs.scan stmts in
  (match Dataflow.Defs.single_def defs "y" with
  | Some (1, Expr.Temp "x") -> ()
  | _ -> Alcotest.fail "single_def y");
  (match Dataflow.Defs.resolve defs (temp "z") with
  | Expr.Load a -> check_bool "resolve chases to the load" true (a.Addr.array = "a")
  | _ -> Alcotest.fail "resolve z should reach the load")

let test_defs_if_poisons () =
  let guard = Rexpr.Ge (Rexpr.Trip, Rexpr.Const 4) in
  let stmts =
    [
      Expr.Assign ("x", load "a" 0);
      Expr.If (guard, [ Expr.Assign ("x", load "b" 0) ], []);
      Expr.Assign ("w", load "b" 4);
    ]
  in
  let defs = Dataflow.Defs.scan stmts in
  check_bool "If-redefined temp is never single-def" true
    (Dataflow.Defs.single_def defs "x" = None);
  check_bool "untouched temp still single-def" true
    (Dataflow.Defs.single_def defs "w" <> None)

(* ------------------------------------------------------------------ *)
(* Carried temps                                                       *)
(* ------------------------------------------------------------------ *)

let test_carried_temps () =
  let body =
    [
      Expr.Assign ("new0", load "a" 4);
      Expr.Assign ("t", shiftp (temp "old0") (temp "new0") 4);
      Expr.Store (addr "b" 0, temp "t");
      Expr.Assign ("old0", temp "new0");
    ]
  in
  match Dataflow.Reach.carried_temps body with
  | [ c ] ->
    Alcotest.(check string) "carried temp name" "old0" c.Dataflow.Reach.ca_name;
    check_int "first read" 1 c.Dataflow.Reach.ca_first_read;
    check_bool "first def recorded" true (c.Dataflow.Reach.ca_first_def = Some 3);
    check_int "single body def" 1 c.Dataflow.Reach.ca_def_count
  | cs ->
    Alcotest.failf "expected exactly one carried temp, got %d" (List.length cs)

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let test_fixpoint () =
  let r =
    Dataflow.fixpoint ~rounds:10 ~equal:Int.equal
      ~widen:(fun _ y -> y)
      ~f:(fun n -> min (n + 1) 3)
      0
  in
  check_int "converges to the fixed point" 3 r;
  let widened =
    Dataflow.fixpoint ~rounds:1 ~equal:Int.equal
      ~widen:(fun _ _ -> 99)
      ~f:(fun n -> n + 1)
      0
  in
  check_int "non-convergence forces the widen step" 99 widened

(* ------------------------------------------------------------------ *)
(* Stream offsets                                                      *)
(* ------------------------------------------------------------------ *)

let test_offsets_eval () =
  let ctx =
    {
      Dataflow.Offsets.v;
      elem = 4;
      lookup = (function "a" -> Some 0 | "b" -> Some 8 | _ -> None);
      opaque_loads = false;
    }
  in
  let eval = Dataflow.Offsets.eval ctx SM.empty in
  check_bool "aligned load" true (Absoff.equal (eval (load "a" 0)) (Absoff.Byte 0));
  check_bool "offset load" true (Absoff.equal (eval (load "a" 1)) (Absoff.Byte 4));
  check_bool "base + offset" true (Absoff.equal (eval (load "b" 1)) (Absoff.Byte 12));
  check_bool "splat is lane-uniform" true
    (Absoff.equal (eval (Expr.Splat (Ast.Const 1L))) Absoff.Bot);
  check_bool "equal-halves shiftpair is a rotation (Top)" true
    (Absoff.equal (eval (shiftp (load "a" 0) (load "a" 0) 4)) Absoff.Top);
  check_bool "unknown temp is Top" true
    (Absoff.equal (eval (temp "ghost")) Absoff.Top);
  let env = SM.add "x" (Absoff.Byte 4) SM.empty in
  check_bool "bound temp reads the environment" true
    (Absoff.equal (Dataflow.Offsets.eval ctx env (temp "x")) (Absoff.Byte 4))

let suite =
  [
    ( "dataflow",
      [
        QCheck_alcotest.to_alcotest prop_join_commutative;
        QCheck_alcotest.to_alcotest prop_join_associative;
        QCheck_alcotest.to_alcotest prop_join_idempotent;
        QCheck_alcotest.to_alcotest prop_join_upper_bound;
        QCheck_alcotest.to_alcotest prop_transfer_monotone;
        QCheck_alcotest.to_alcotest prop_normalize_idempotent;
        Alcotest.test_case "liveness transfer" `Quick test_liveness;
        Alcotest.test_case "loop_out closes the back edge" `Quick
          test_loop_out_closes_back_edge;
        Alcotest.test_case "defs scan and resolve" `Quick
          test_defs_scan_and_resolve;
        Alcotest.test_case "If definitions poison single-def" `Quick
          test_defs_if_poisons;
        Alcotest.test_case "carried temps" `Quick test_carried_temps;
        Alcotest.test_case "bounded fixpoint" `Quick test_fixpoint;
        Alcotest.test_case "stream-offset evaluation" `Quick test_offsets_eval;
      ] );
  ]
