(* The static verifier (Simd.Check): the Absoff lattice, the clean sweep
   over the whole corpus under every suite scheme and vector length, the
   re-injected PR-1 seam miscompilation caught *statically* at the unroll
   boundary, hand-tampered VIR negative tests, the dead-shift lint vs the
   cost report, and the fuzz-oracle static failure class. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let fuzz_corpus_dir =
  List.find_opt Sys.file_exists
    [
      "../corpus/fuzz";
      "corpus/fuzz";
      "../../corpus/fuzz";
      "../../../corpus/fuzz";
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Absoff lattice                                                      *)
(* ------------------------------------------------------------------ *)

let v = 16

let test_absoff_lattice () =
  let byte k = Absoff.Byte k in
  let sym ?(sign = 1) ?(k = 0) arr = Absoff.Sym { arr; sign; k } in
  (* cmp *)
  check_bool "byte= proved" true (Absoff.cmp ~v (byte 4) (byte 4) = Absoff.Proved);
  check_bool "byte/= refuted" true
    (Absoff.cmp ~v (byte 4) (byte 8) = Absoff.Refuted);
  check_bool "bot proves" true (Absoff.cmp ~v Absoff.Bot (byte 12) = Absoff.Proved);
  check_bool "top unknown" true
    (Absoff.cmp ~v Absoff.Top (byte 0) = Absoff.Unknown);
  check_bool "sym same proved" true
    (Absoff.cmp ~v (sym "a" ~k:4) (sym "a" ~k:4) = Absoff.Proved);
  check_bool "sym shifted refuted" true
    (Absoff.cmp ~v (sym "a" ~k:4) (sym "a" ~k:8) = Absoff.Refuted);
  check_bool "sym other array unknown" true
    (Absoff.cmp ~v (sym "a") (sym "b") = Absoff.Unknown);
  (* arithmetic mod V *)
  check_bool "add bytes wraps" true
    (Absoff.equal (Absoff.add ~v (byte 12) (byte 8)) (byte 4));
  check_bool "sym + byte" true
    (Absoff.equal (Absoff.add ~v (sym "a" ~k:4) (byte 8)) (sym "a" ~k:12));
  check_bool "sym - sym cancels" true
    (Absoff.equal (Absoff.sub ~v (sym "a" ~k:12) (sym "a" ~k:4)) (byte 8));
  check_bool "neg flips" true
    (Absoff.equal (Absoff.neg ~v (sym "a" ~k:4)) (sym ~sign:(-1) ~k:(v - 4) "a"));
  check_bool "mul by V is zero" true
    (Absoff.equal (Absoff.mul_const ~v (sym "a" ~k:4) 16) (byte 0));
  check_bool "mod V identity" true
    (Absoff.equal (Absoff.mod_const ~v (sym "a" ~k:4) 16) (sym "a" ~k:4));
  check_bool "mod divisor of V on byte" true
    (Absoff.equal (Absoff.mod_const ~v (byte 12) 8) (byte 4));
  (* merge *)
  check_bool "merge equal" true
    (Absoff.equal (Absoff.merge ~v (byte 4) (byte 4)) (byte 4));
  check_bool "merge differing tops out" true
    (Absoff.equal (Absoff.merge ~v (byte 4) (byte 8)) Absoff.Top);
  check_bool "merge bot identity" true
    (Absoff.equal (Absoff.merge ~v Absoff.Bot (sym "a")) (sym "a"))

(* ------------------------------------------------------------------ *)
(* The clean sweep: corpus x suite schemes x vector lengths            *)
(* ------------------------------------------------------------------ *)

let sweep_configs vector_len =
  let machine = Machine.create ~vector_len in
  [
    { Driver.default with Driver.machine };
    { Driver.default with Driver.machine; policy = Policy.Zero;
      reuse = Driver.No_reuse };
    { Driver.default with Driver.machine; policy = Policy.Eager;
      reuse = Driver.Predictive_commoning };
    { Driver.default with Driver.machine; policy = Policy.Lazy;
      reuse = Driver.Predictive_commoning; reassoc = true };
    { Driver.default with Driver.machine; policy = Policy.Eager; unroll = 2 };
    { Driver.default with Driver.machine; policy = Policy.Dominant;
      reuse = Driver.Predictive_commoning; unroll = 4 };
    { Driver.default with Driver.machine; policy = Policy.Optimal };
    { Driver.default with Driver.machine; policy = Policy.Auto;
      memnorm = false };
  ]

(* Every corpus program, under every scheme and V in {8,16,32}, must
   compile with zero error-severity violations — and the discharged
   obligations must be non-vacuous in aggregate. *)
let test_corpus_sweep () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".simd")
    |> List.sort compare
  in
  check_bool "corpus present" true (files <> []);
  let facts = ref Check.no_facts in
  let boundaries = ref 0 in
  List.iter
    (fun file ->
      let program = Parse.program_of_string (read_file (Filename.concat corpus_dir file)) in
      List.iter
        (fun vl ->
          List.iter
            (fun config ->
              match Driver.simdize ~check:true config program with
              | Driver.Scalar _ -> ()
              | Driver.Simdized o ->
                boundaries := !boundaries + List.length o.Driver.checks;
                facts := Check.add_facts !facts (Driver.check_facts o);
                List.iter
                  (fun (boundary, (viol : Check.violation)) ->
                    if viol.Check.severity = Check.Error then
                      Alcotest.failf "%s (V=%d): at %s: %s" file vl boundary
                        (Check.violation_to_string viol))
                  (Driver.check_violations o))
            (sweep_configs vl))
        [ 8; 16; 32 ])
    files;
  (* non-vacuity: the sweep really discharged obligations of every kind *)
  check_bool "boundaries checked" true (!boundaries > 1000);
  check_bool "ops proved" true ((!facts).Check.ops_proved > 100);
  check_bool "stores proved" true ((!facts).Check.stores_proved > 100);
  check_bool "shifts proved" true ((!facts).Check.shifts_proved > 100);
  check_bool "seams proved" true ((!facts).Check.seams_proved > 10)

(* Committed fuzz reproducers replay their exact configs; none may
   trigger the static verifier on the fixed compiler. *)
let test_fuzz_corpus_static_clean () =
  match fuzz_corpus_dir with
  | None -> ()
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".simd")
    |> List.iter (fun f ->
           match Fuzz.Case.of_file (Filename.concat dir f) with
           | Error m -> Alcotest.failf "%s: %s" f m
           | Ok case -> (
             match
               Driver.simdize ~check:true case.Fuzz.Case.config
                 case.Fuzz.Case.program
             with
             | Driver.Scalar _ -> ()
             | Driver.Simdized o ->
               List.iter
                 (fun (boundary, (viol : Check.violation)) ->
                   if viol.Check.severity = Check.Error then
                     Alcotest.failf "%s: at %s: %s" f boundary
                       (Check.violation_to_string viol))
                 (Driver.check_violations o)))

(* ------------------------------------------------------------------ *)
(* The re-injected PR-1 seam miscompilation, caught statically         *)
(* ------------------------------------------------------------------ *)

(* Flip the unroll seam-coalescer fault injection back on and compile
   the committed carry-chain reproducer with the verifier: the clobber
   must be refuted *without running the simulator*, and the violation
   must name the unroll pass boundary. *)
let test_seam_bug_detected_statically () =
  let dir =
    match fuzz_corpus_dir with
    | Some d -> d
    | None -> Alcotest.fail "corpus/fuzz not found"
  in
  let case =
    match Fuzz.Case.of_file (Filename.concat dir "pc-unroll-carry-chain-eager.simd") with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  let config = { case.Fuzz.Case.config with Driver.unroll = 2 } in
  let compile () =
    match Driver.simdize ~check:true config case.Fuzz.Case.program with
    | Driver.Scalar _ -> Alcotest.fail "reproducer left scalar"
    | Driver.Simdized o -> Driver.check_violations o
  in
  (* healthy compiler: clean *)
  check_int "no errors without the bug" 0
    (List.length
       (List.filter
          (fun (_, (viol : Check.violation)) -> viol.Check.severity = Check.Error)
          (compile ())));
  (* buggy coalescer: the verifier alone refutes the seam *)
  Passes.unsafe_unroll_seam_coalesce_bug := true;
  let violations =
    Fun.protect
      ~finally:(fun () -> Passes.unsafe_unroll_seam_coalesce_bug := false)
      compile
  in
  let seam_errors =
    List.filter
      (fun (boundary, (viol : Check.violation)) ->
        boundary = "unroll"
        && viol.Check.severity = Check.Error
        && (viol.Check.rule = "carried-clobber"
           || viol.Check.rule = "unroll-equiv"))
      violations
  in
  check_bool "clobber refuted at the unroll boundary" true (seam_errors <> []);
  (* and the fuzz oracle's static half classifies it without execution *)
  Passes.unsafe_unroll_seam_coalesce_bug := true;
  let outcome =
    Fun.protect
      ~finally:(fun () -> Passes.unsafe_unroll_seam_coalesce_bug := false)
      (fun () -> Fuzz.Oracle.run { case with Fuzz.Case.config })
  in
  check_bool "oracle classifies static_violation" true
    (match outcome with Fuzz.Oracle.Static_violation _ -> true | _ -> false)

(* check_unroll translation validation on a hand-tampered unrolled body *)
let test_check_unroll_tamper () =
  let program =
    Parse.program_of_string
      "int32 a[64] @ 0;\nint32 b[64] @ 0;\nfor (i = 0; i < 32; i++) { a[i] = b[i]; }"
  in
  let machine = Machine.create ~vector_len:16 in
  let analysis = Analysis.check_exn ~machine program in
  let addr arr off = { Vir_addr.array = arr; offset = off; scale = 1 } in
  (* a depth-1 carry: t0 carries t1's previous value *)
  let pre =
    [
      Vir_expr.Assign ("t2", Vir_expr.Op (Ast.Add, Vir_expr.Temp "t0",
                                          Vir_expr.Load (addr "b" 0)));
      Vir_expr.Store (addr "a" 0, Vir_expr.Temp "t2");
      Vir_expr.Assign ("t0", Vir_expr.Temp "t1");
      Vir_expr.Assign ("t1", Vir_expr.Load (addr "b" 4));
    ]
  in
  let block = analysis.Analysis.block in
  let good = Passes.unroll ~block ~factor:2 pre in
  let r = Check.check_unroll ~analysis ~factor:2 ~pre ~post:good in
  check_int "correct unroll validates" 0 (List.length (Check.errors r));
  check_bool "seams counted" true (r.Check.facts.Check.seams_proved > 0);
  (* drop the coalesced restore of the carried temp [t0]: it ends the
     unrolled body holding a stale value — exactly the PR-1 clobber *)
  let tampered =
    List.filter
      (function Vir_expr.Assign ("t0", _) -> false | _ -> true)
      good
  in
  let r = Check.check_unroll ~analysis ~factor:2 ~pre ~post:tampered in
  check_bool "missing restores refuted" true
    (List.exists
       (fun (viol : Check.violation) -> viol.Check.rule = "carried-clobber")
       (Check.errors r));
  (* a displaced store: the store sequences diverge *)
  let skewed =
    List.map
      (function
        | Vir_expr.Store (a, e) ->
          Vir_expr.Store ({ a with Vir_addr.offset = a.Vir_addr.offset + 1 }, e)
        | s -> s)
      good
  in
  let r = Check.check_unroll ~analysis ~factor:2 ~pre ~post:skewed in
  check_bool "skewed stores refuted" true
    (List.exists
       (fun (viol : Check.violation) -> viol.Check.rule = "unroll-equiv")
       (Check.errors r))

(* ------------------------------------------------------------------ *)
(* Hand-tampered VIR: each invariant refutable in isolation            *)
(* ------------------------------------------------------------------ *)

let tamper_fixture () =
  let program =
    Parse.program_of_string
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nfor (i = 0; i < 32; i++) { a[i] = b[i]; }"
  in
  let machine = Machine.create ~vector_len:16 in
  Analysis.check_exn ~machine program

let addr arr off = { Vir_addr.array = arr; offset = off; scale = 1 }

let regions_errors analysis ~prologue ~body =
  Check.errors (Check.check_regions ~analysis ~prologue ~body ~epilogues:[] ())

let has_rule rule errors =
  List.exists (fun (viol : Check.violation) -> viol.Check.rule = rule) errors

let test_tampered_vir_refuted () =
  let analysis = tamper_fixture () in
  (* (C.3): a and b sit at offsets 0 and 4 — combining their raw loads
     misaligns lanes *)
  let c3 =
    regions_errors analysis ~prologue:[]
      ~body:
        [
          Vir_expr.Store
            ( addr "a" 0,
              Vir_expr.Op (Ast.Add, Vir_expr.Load (addr "a" 0),
                           Vir_expr.Load (addr "b" 0)) );
        ]
  in
  check_bool "C.3 refuted" true (has_rule "C.3" c3);
  (* (C.2): storing b's stream (offset 4) to a (offset 0) unshifted *)
  let c2 =
    regions_errors analysis ~prologue:[]
      ~body:[ Vir_expr.Store (addr "a" 0, Vir_expr.Load (addr "b" 0)) ]
  in
  check_bool "C.2 refuted" true (has_rule "C.2" c2);
  (* adjacency: the halves are two registers apart, not one *)
  let adj =
    regions_errors analysis ~prologue:[]
      ~body:
        [
          Vir_expr.Store
            ( addr "a" 0,
              Vir_expr.Shiftpair
                ( Vir_expr.Load (addr "a" 0),
                  Vir_expr.Load (addr "a" 8),
                  Vir_rexpr.Const 4 ) );
        ]
  in
  check_bool "non-adjacent halves refuted" true (has_rule "adjacency" adj);
  (* def-before-use: a temp read that nothing defines *)
  let dbu =
    regions_errors analysis ~prologue:[]
      ~body:[ Vir_expr.Store (addr "a" 0, Vir_expr.Temp "ghost") ]
  in
  check_bool "undefined temp refuted" true (has_rule "def-before-use" dbu);
  (* range: a shift amount beyond V *)
  let range =
    regions_errors analysis ~prologue:[]
      ~body:
        [
          Vir_expr.Store
            ( addr "a" 0,
              Vir_expr.Shiftpair
                ( Vir_expr.Load (addr "a" 0),
                  Vir_expr.Load (addr "a" 4),
                  Vir_rexpr.Const 20 ) );
        ]
  in
  check_bool "out-of-range amount refuted" true (has_rule "range" range)

(* ------------------------------------------------------------------ *)
(* Dead-shift lint vs the cost report                                  *)
(* ------------------------------------------------------------------ *)

(* The committed minimized example: the zero policy detours the stream
   through offset 0 and back — the lint flags the pair, the graphs carry
   exactly those two shifts, and the exact placement's graphs carry
   none. *)
let test_dead_shift_lint_agrees_with_stats () =
  let program =
    Parse.program_of_string
      (read_file (Filename.concat corpus_dir "dead-shift-zero-policy.simd"))
  in
  let compile policy =
    Driver.simdize_exn ~check:true
      { Driver.default with Driver.policy; reuse = Driver.No_reuse }
      program
  in
  let zero = compile Policy.Zero in
  let dead_shifts =
    List.filter
      (fun (_, (viol : Check.violation)) -> viol.Check.rule = "dead-shift")
      (Driver.check_violations zero)
  in
  check_bool "lint fires on the zero policy" true (dead_shifts <> []);
  check_bool "lint is a warning, not an error" true
    (List.for_all
       (fun (_, (viol : Check.violation)) ->
         viol.Check.severity = Check.Warning)
       dead_shifts);
  let shift_count o =
    List.fold_left
      (fun acc (_, g) -> acc + Graph.graph_shift_count g)
      0 o.Driver.graphs
  in
  let optimal = compile Policy.Optimal in
  check_int "exact placement has no shifts" 0 (shift_count optimal);
  check_bool "zero policy pays for the flagged pair" true
    (shift_count zero >= 2);
  check_int "exact placement is lint-clean" 0
    (List.length (Driver.check_violations optimal))

(* The pair rule counts consumers body-wide: when another statement rides
   the same reorganization chain, the detour is one shared vshiftstream
   after value numbering and must not be flagged. Dropping the second
   consumer (reading an unrelated array instead) re-arms the lint. *)
let test_dead_shift_shared_suppression () =
  let compile src =
    Driver.simdize_exn ~check:true
      { Driver.default with
        Driver.policy = Policy.Zero;
        reuse = Driver.No_reuse;
      }
      (Parse.program_of_string src)
  in
  let dead_shifts o =
    List.filter
      (fun (_, (viol : Check.violation)) -> viol.Check.rule = "dead-shift")
      (Driver.check_violations o)
  in
  let shared =
    compile
      "int32 a[128] @ 4;\nint32 b[128] @ 4;\nint32 c[128] @ 0;\n\
       for (i = 0; i < 100; i++) { a[i] = b[i]; c[i] = b[i]; }"
  in
  check_bool "pair over a shared chain is not flagged" true
    (dead_shifts shared = []);
  let unshared =
    compile
      "int32 a[128] @ 4;\nint32 b[128] @ 4;\nint32 c[128] @ 0;\n\
       int32 d[128] @ 0;\n\
       for (i = 0; i < 100; i++) { a[i] = b[i]; c[i] = d[i]; }"
  in
  check_bool "same pair without the second consumer is flagged" true
    (dead_shifts unshared <> [])

(* ------------------------------------------------------------------ *)
(* Plumbing: outcome.checks, campaign counting                         *)
(* ------------------------------------------------------------------ *)

let test_checks_plumbing () =
  let program =
    Parse.program_of_string
      (read_file (Filename.concat corpus_dir "fig6b_dominant.simd"))
  in
  let off = Driver.simdize_exn Driver.default program in
  check_bool "no checks without ~check" true (off.Driver.checks = []);
  let on = Driver.simdize_exn ~check:true Driver.default program in
  let names = List.map fst on.Driver.checks in
  List.iter
    (fun b -> check_bool (b ^ " boundary present") true (List.mem b names))
    [ "placement"; "generate"; "memnorm"; "cse"; "final" ];
  check_bool "clean compile, non-vacuous facts" true
    ((Driver.check_facts on).Check.stores_proved > 0)

let test_campaign_counts_static_violations () =
  let oracle _ = Fuzz.Oracle.Static_violation "injected" in
  let stats, failures =
    Fuzz.Campaign.run ~shrink:false ~bisect:false ~oracle ~seed:3 ~budget:5 ()
  in
  check_int "all counted" 5 stats.Fuzz.Campaign.static_violations;
  check_int "all reported" 5 (List.length failures);
  check_bool "class preserved" true
    (List.for_all
       (fun (f : Fuzz.Campaign.failure) ->
         Fuzz.Oracle.same_class f.Fuzz.Campaign.outcome
           (Fuzz.Oracle.Static_violation ""))
       failures)

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "absoff lattice" `Quick test_absoff_lattice;
        Alcotest.test_case "corpus sweep is violation-free" `Slow
          test_corpus_sweep;
        Alcotest.test_case "fuzz corpus is statically clean" `Quick
          test_fuzz_corpus_static_clean;
        Alcotest.test_case "seam bug caught statically at unroll" `Quick
          test_seam_bug_detected_statically;
        Alcotest.test_case "check_unroll refutes tampering" `Quick
          test_check_unroll_tamper;
        Alcotest.test_case "tampered VIR refuted per rule" `Quick
          test_tampered_vir_refuted;
        Alcotest.test_case "dead-shift lint agrees with stats" `Quick
          test_dead_shift_lint_agrees_with_stats;
        Alcotest.test_case "dead-shift lint spares shared chains" `Quick
          test_dead_shift_shared_suppression;
        Alcotest.test_case "outcome.checks plumbing" `Quick
          test_checks_plumbing;
        Alcotest.test_case "campaign counts static violations" `Quick
          test_campaign_counts_static_violations;
      ] );
  ]
