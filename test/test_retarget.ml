(* Vector-length-agnostic retargeting (Simd.Retarget): one placement,
   re-instantiated at every V' in the matrix, must discharge all verifier
   obligations and agree with the scalar interpreter — the property the
   backend matrix stands on. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 =
  "int32 a[128] @ 0;\nint32 b[128] @ 4;\nint32 c[128] @ 8;\nparam k;\n\
   for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2] * k; }"

let config ?(vl = 16) policy =
  {
    Driver.default with
    Driver.machine = Machine.create ~vector_len:vl;
    policy;
  }

let simdized ?vl policy src =
  Driver.simdize_exn ~check:true (config ?vl policy) (Parse.program_of_string src)

(* --- single-placement showcase ----------------------------------------- *)

let test_fig1_structure_survives () =
  let o = simdized Policy.Dominant fig1 in
  List.iter
    (fun vl ->
      let t = Retarget.retarget_exn ~vector_len:vl o in
      check_int (Printf.sprintf "fig1 V'=%d from_vl" vl) 16 t.Retarget.from_vl;
      check_int (Printf.sprintf "fig1 V'=%d to_vl" vl) vl t.Retarget.to_vl;
      (* the placed structure is never thrown away for fig1: statuses are
         Preserved at the source V, and at widened Vs at worst Repaired
         (offset equalities like 16 ≡ 0 (mod 16) break at V' = 32, so a
         repair shift is legitimate — a Replaced would mean re-placement) *)
      List.iter
        (fun s ->
          match s with
          | Retarget.Preserved -> ()
          | Retarget.Repaired _ ->
            check_bool
              (Printf.sprintf "fig1 repaired only at widened V (V'=%d)" vl)
              true (vl <> 16)
          | Retarget.Replaced p ->
            Alcotest.failf "fig1 V'=%d replaced (policy %s)" vl
              (Policy.name p))
        t.Retarget.statuses;
      check_int
        (Printf.sprintf "fig1 V'=%d zero check errors" vl)
        0
        (List.length (Retarget.error_violations t)))
    Retarget.supported_vls

(* Retargeting to the source V is the identity on statuses: every offset
   equality that held still holds. *)
let test_same_v_is_preserved () =
  List.iter
    (fun policy ->
      let o = simdized policy fig1 in
      let t = Retarget.retarget_exn ~vector_len:16 o in
      List.iter
        (fun s ->
          check_bool
            (Policy.name policy ^ " V'=16 preserved")
            true (s = Retarget.Preserved))
        t.Retarget.statuses)
    [ Policy.Zero; Policy.Dominant; Policy.Optimal; Policy.Joint ]

let test_counts_partition_statuses () =
  let o = simdized Policy.Joint fig1 in
  List.iter
    (fun vl ->
      let t = Retarget.retarget_exn ~vector_len:vl o in
      let p, r, x = Retarget.counts t in
      check_int
        (Printf.sprintf "counts sum V'=%d" vl)
        (List.length t.Retarget.statuses)
        (p + r + x))
    Retarget.supported_vls

let test_sweep_covers_matrix () =
  let o = simdized Policy.Optimal fig1 in
  let results = Retarget.sweep o in
  check_int "sweep arity" (List.length Retarget.supported_vls)
    (List.length results);
  List.iter2
    (fun vl (vl', r) ->
      check_int "sweep V order" vl vl';
      match r with
      | Ok t -> check_int "sweep to_vl" vl t.Retarget.to_vl
      | Error reason ->
        Alcotest.failf "sweep V'=%d failed: %a" vl Driver.pp_reason reason)
    Retarget.supported_vls results

let test_to_json_shape () =
  let o = simdized Policy.Dominant fig1 in
  let t = Retarget.retarget_exn ~vector_len:32 o in
  let doc = Retarget.to_json t in
  List.iter
    (fun field ->
      check_bool ("to_json has " ^ field) true (Json.member field doc <> None))
    [
      "from_vl"; "to_vl"; "statuses"; "preserved"; "repaired"; "replaced";
      "check_errors"; "cost"; "body_cost";
    ]

(* --- corpus × policies × V' (the acceptance property) ------------------- *)

let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simd")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus_matrix () =
  let files = corpus_files () in
  check_bool "corpus present" true (files <> []);
  let retargets = ref 0 in
  List.iter
    (fun file ->
      let program = Parse.program_of_string (read_file file) in
      List.iter
        (fun policy ->
          match
            Driver.simdize ~check:true (config policy) program
          with
          | Driver.Scalar _ -> () (* legitimately scalar under this config *)
          | Driver.Simdized o ->
            List.iter
              (fun vl ->
                match Retarget.retarget ~vector_len:vl o with
                | Error _ -> () (* illegal or trip too small at V' *)
                | Ok t ->
                  incr retargets;
                  (* zero error-severity verifier violations *)
                  (match Retarget.error_violations t with
                  | [] -> ()
                  | (boundary, v) :: _ ->
                    Alcotest.failf "%s %s V'=%d: %s: %a" file
                      (Policy.name policy) vl boundary Check.pp_violation v);
                  (* and the simulator agrees with the scalar original *)
                  let o' = t.Retarget.outcome in
                  let trip =
                    match program.Ast.loop.Ast.trip with
                    | Ast.Trip_const _ -> None
                    | Ast.Trip_param _ -> Some 200
                  in
                  let setup =
                    Sim_run.prepare ?trip
                      ~machine:o'.Driver.config.Driver.machine program
                  in
                  (match Sim_run.verify setup o'.Driver.prog with
                  | Ok () -> ()
                  | Error m ->
                    Alcotest.failf "%s %s V'=%d: simulator mismatch: %a" file
                      (Policy.name policy) vl Sim_run.pp_mismatch m))
              Retarget.supported_vls)
        [ Policy.Zero; Policy.Dominant; Policy.Optimal; Policy.Joint ])
    files;
  (* the sweep must actually exercise the matrix, not vacuously pass *)
  check_bool
    (Printf.sprintf "corpus matrix is populated (%d retargets)" !retargets)
    true (!retargets >= 100)

(* --- retargeted costs stay priced under the V' model -------------------- *)

let test_retarget_cost_is_v'_model () =
  let o = simdized Policy.Dominant fig1 in
  let t = Retarget.retarget_exn ~vector_len:32 o in
  let vl =
    Machine.vector_len t.Retarget.outcome.Driver.config.Driver.machine
  in
  check_int "retargeted machine V" 32 vl;
  (* the retargeted program emits through the V'-native backend *)
  let c = Backend.unit_for Backend.Avx2 t.Retarget.outcome.Driver.prog in
  check_bool "avx2 unit from retargeted prog" true
    (String.length c > 0)

let suite =
  [
    ( "retarget",
      [
        Alcotest.test_case "fig1 structure survives every V'" `Quick
          test_fig1_structure_survives;
        Alcotest.test_case "same V is preserved" `Quick
          test_same_v_is_preserved;
        Alcotest.test_case "counts partition statuses" `Quick
          test_counts_partition_statuses;
        Alcotest.test_case "sweep covers the matrix" `Quick
          test_sweep_covers_matrix;
        Alcotest.test_case "to_json shape" `Quick test_to_json_shape;
        Alcotest.test_case "retargeted V' machine and emitter" `Quick
          test_retarget_cost_is_v'_model;
        Alcotest.test_case "corpus x policies x V' verifies and agrees" `Slow
          test_corpus_matrix;
      ] );
  ]
