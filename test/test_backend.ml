(* Backend registry and capability probe (Simd.Backend, Simd.Matrix):
   naming, vector-length support, probe caching, and the matrix join. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_name_round_trip () =
  List.iter
    (fun b ->
      match Backend.of_name (Backend.name b) with
      | Some b' -> check_bool (Backend.name b ^ " round trip") true (b = b')
      | None -> Alcotest.failf "of_name %s = None" (Backend.name b))
    Backend.all;
  check_bool "c aliases portable" true
    (Backend.of_name "c" = Some Backend.Portable);
  check_bool "unknown name" true (Backend.of_name "mmx" = None)

let test_registry_order () =
  check_int "five backends" 5 (List.length Backend.all);
  check_bool "portable first" true (List.hd Backend.all = Backend.Portable)

let test_supports_vl () =
  (* fixed-width ISAs accept exactly their native V *)
  List.iter
    (fun (b, v) ->
      check_bool (Backend.name b ^ " native") true (Backend.supports_vl b v);
      check_bool (Backend.name b ^ " rejects others") false
        (Backend.supports_vl b (2 * v) || Backend.supports_vl b (v / 2)))
    [ (Backend.Altivec, 16); (Backend.Sse, 16); (Backend.Avx2, 32);
      (Backend.Neon, 16) ];
  (* portable takes any power of two in [4, 64] *)
  List.iter
    (fun v -> check_bool (Printf.sprintf "portable V=%d" v) true
        (Backend.supports_vl Backend.Portable v))
    [ 4; 8; 16; 32; 64 ];
  List.iter
    (fun v -> check_bool (Printf.sprintf "portable rejects V=%d" v) false
        (Backend.supports_vl Backend.Portable v))
    [ 2; 5; 12; 128 ]

let test_default_vl_consistent () =
  List.iter
    (fun b ->
      let v = Backend.default_vl b in
      check_bool (Backend.name b ^ " default_vl supported") true
        (Backend.supports_vl b v);
      match Backend.native_vl b with
      | Some n -> check_int (Backend.name b ^ " native_vl") n v
      | None -> check_int (Backend.name b ^ " portable default") 16 v)
    Backend.all

let test_unit_for_checks_vl () =
  let program =
    Parse.program_of_string
      "int32 a[128] @ 0;\nint32 b[128] @ 4;\n\
       for (i = 0; i < 100; i++) { a[i+1] = b[i+2]; }"
  in
  let o = Driver.simdize_exn Driver.default program in
  (* V = 16 program: avx2 must refuse, the 16-byte backends must emit *)
  (try
     ignore (Backend.unit_for Backend.Avx2 o.Driver.prog);
     Alcotest.fail "avx2 accepted a V=16 program"
   with Invalid_argument _ -> ());
  List.iter
    (fun b ->
      check_bool (Backend.name b ^ " emits at 16") true
        (String.length (Backend.unit_for b o.Driver.prog) > 0))
    [ Backend.Portable; Backend.Altivec; Backend.Sse; Backend.Neon ]

let test_probe_deterministic_and_cached () =
  match Cc.find () with
  | None -> ()
  | Some cc ->
    Backend.clear_probe_cache ();
    let first = Backend.probe_all ~cc () in
    let second = Backend.probe_all ~cc () in
    check_bool "probe stable across calls" true (first = second);
    check_int "probe_all covers registry" (List.length Backend.all)
      (List.length first);
    (* the portable probe is plain C11 — a working cc must support it *)
    check_bool "portable supported" true
      (List.assoc Backend.Portable first = Backend.Supported)

let test_probe_json_fields () =
  let doc = Backend.to_json Backend.Avx2 Backend.Supported in
  List.iter
    (fun field ->
      check_bool ("probe json has " ^ field) true (Json.member field doc <> None))
    [ "backend"; "vl"; "cflags"; "support" ]

(* --- the matrix join ---------------------------------------------------- *)

let test_matrix_rows () =
  let program =
    Parse.program_of_string
      "int32 a[128] @ 0;\nint32 b[128] @ 4;\nint32 c[128] @ 8;\n\
       for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  let o = Driver.simdize_exn ~check:true Driver.default program in
  let rows = Simd.Matrix.rows o in
  check_int "one row per backend" (List.length Backend.all) (List.length rows);
  List.iter2
    (fun b (row : Simd.Matrix.row) ->
      check_bool "registry order" true (row.Simd.Matrix.backend = b);
      (* the row targets a V the backend can actually emit *)
      check_bool
        (Backend.name b ^ " row vl supported")
        true
        (Backend.supports_vl b row.Simd.Matrix.vl);
      match row.Simd.Matrix.retarget with
      | Error reason ->
        Alcotest.failf "%s row failed: %a" (Backend.name b) Driver.pp_reason
          reason
      | Ok t ->
        check_int (Backend.name b ^ " row to_vl") row.Simd.Matrix.vl
          t.Retarget.to_vl;
        check_int
          (Backend.name b ^ " zero check errors")
          0
          (List.length (Retarget.error_violations t));
        (* the row's unit emits through its own backend *)
        (match Simd.Matrix.unit_of_row row with
        | Some c -> check_bool (Backend.name b ^ " unit") true (String.length c > 0)
        | None -> Alcotest.failf "%s row has no unit" (Backend.name b)))
    Backend.all rows

let test_matrix_json () =
  let program =
    Parse.program_of_string
      "int32 a[128] @ 0;\nint32 b[128] @ 4;\n\
       for (i = 0; i < 100; i++) { a[i+1] = b[i+2]; }"
  in
  let o = Driver.simdize_exn ~check:true Driver.default program in
  match Simd.Matrix.to_json (Simd.Matrix.rows o) with
  | Json.List rows ->
    check_int "json rows" (List.length Backend.all) (List.length rows)
  | _ -> Alcotest.fail "matrix json is not a list"

let suite =
  [
    ( "backend",
      [
        Alcotest.test_case "name round trip" `Quick test_name_round_trip;
        Alcotest.test_case "registry order" `Quick test_registry_order;
        Alcotest.test_case "supports_vl" `Quick test_supports_vl;
        Alcotest.test_case "default_vl consistency" `Quick
          test_default_vl_consistent;
        Alcotest.test_case "unit_for enforces V" `Quick test_unit_for_checks_vl;
        Alcotest.test_case "probe deterministic + cached" `Quick
          test_probe_deterministic_and_cached;
        Alcotest.test_case "probe json fields" `Quick test_probe_json_fields;
        Alcotest.test_case "matrix rows" `Quick test_matrix_rows;
        Alcotest.test_case "matrix json" `Quick test_matrix_json;
      ] );
  ]
