(* Predication subsystem tests: Mask.if_convert unit behavior (merging,
   reduction rewriting, idempotence), the guarded-store-under-peeling
   property at every store offset o in [0, V), the predicated corpus
   swept across every policy x V in {8,16,32} with the static verifier
   on, and native-oracle replay of the predicated corpus on every
   probe-supported backend. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse src =
  match Parse.program_of_string_result src with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse error: %s" m

(* --- if-conversion units ------------------------------------------------ *)

let test_merge_complementary () =
  let p =
    parse
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nint32 c[64] @ 8;\n\
       for (i = 0; i < 40; i++) { if (a[i] > b[i+1]) { c[i+2] = a[i]; } \
       else { c[i+2] = b[i+1]; } }"
  in
  let p', stats = Mask.if_convert p in
  check_int "one merge" 1 stats.Mask.merged_selects;
  check_int "no residual" 0 stats.Mask.residual_guards;
  check_int "one stmt" 1 (List.length p'.Ast.loop.Ast.body);
  let s = List.hd p'.Ast.loop.Ast.body in
  check_bool "unguarded" true (s.Ast.guard = None);
  match s.Ast.rhs with
  | Ast.Select _ -> ()
  | e -> Alcotest.failf "expected a select, got %s" (Ast.show_expr e)

let test_rewrite_guarded_reduction () =
  let p =
    parse
      "int32 s[1] @ 0;\nint32 x[64] @ 4;\n\
       for (i = 0; i < 40; i++) { if (x[i+1] > 0) { s += x[i+1]; } }"
  in
  let p', stats = Mask.if_convert p in
  check_int "one rewrite" 1 stats.Mask.rewritten_reductions;
  let s = List.hd p'.Ast.loop.Ast.body in
  check_bool "reduction unguarded after rewrite" true (s.Ast.guard = None);
  (match s.Ast.rhs with
  | Ast.Select (_, _, Ast.Const 0L) -> () (* add identity on the else arm *)
  | e -> Alcotest.failf "expected identity-select, got %s" (Ast.show_expr e));
  (* the rewritten program is legal where the raw one is rejected *)
  let machine = Machine.create ~vector_len:16 in
  check_bool "raw rejected" true
    (match Analysis.check ~machine p with Error _ -> true | Ok _ -> false);
  check_bool "converted accepted" true
    (match Analysis.check ~machine p' with Ok _ -> true | Error _ -> false)

let test_residual_guard_counted () =
  let p =
    parse
      "int8 x[64] @ 0;\nint8 y[64] @ 1;\n\
       for (i = 0; i < 40; i++) { if (x[i] != 3) { y[i+1] = x[i]; } }"
  in
  let _, stats = Mask.if_convert p in
  check_int "residual" 1 stats.Mask.residual_guards;
  check_int "no merge" 0 stats.Mask.merged_selects

let test_if_convert_idempotent () =
  List.iter
    (fun src ->
      let p = parse src in
      let once = Mask.apply p in
      check_bool "idempotent" true (Ast.equal_program once (Mask.apply once)))
    [
      "int32 a[64] @ 0;\nint32 b[64] @ 4;\nint32 c[64] @ 8;\n\
       for (i = 0; i < 40; i++) { if (a[i] > b[i+1]) { c[i+2] = a[i]; } \
       else { c[i+2] = b[i+1]; } }";
      "int32 s[1] @ 0;\nint32 x[64] @ 4;\n\
       for (i = 0; i < 40; i++) { if (x[i+1] > 0) { s += x[i+1]; } }";
      "int8 x[64] @ 0;\nint8 y[64] @ 1;\n\
       for (i = 0; i < 40; i++) { if (x[i] != 3) { y[i+1] = x[i]; } }";
    ]

(* --- guarded store under peeling, every offset -------------------------- *)

(* For every V and every store offset o in [0, V), a guarded int8 store
   must match the scalar interpreter byte-for-byte: the prologue-peeled
   lanes in [0, o) and the epilogue remainder evaluate the guard
   scalar-wise (a lane whose guard fails must keep its old byte), while
   the steady state takes the vcmp/vsel/masked-store path. *)
let test_peeled_guard_every_offset () =
  List.iter
    (fun v ->
      let config =
        { Driver.default with Driver.machine = Machine.create ~vector_len:v }
      in
      let trip = (4 * v) + 3 in
      for o = 0 to v - 1 do
        let src =
          Printf.sprintf
            "int8 src[%d] @ 1;\nint8 dst[%d] @ 0;\nparam lim;\n\
             for (i = 0; i < %d; i++) { if (src[i+1] > lim) { dst[i+%d] = \
             src[i+1] ^ lim; } }"
            (trip + 4) (trip + o + 2) trip o
        in
        match Measure.verify ~config ~setup_seed:(o + 1) (parse src) with
        | Ok () -> ()
        | Error m -> Alcotest.failf "V=%d o=%d: %s" v o m
      done)
    [ 8; 16; 32 ]

(* --- predicated corpus x policies x V ----------------------------------- *)

let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let pred_corpus = [ "pred-threshold.simd"; "pred-if-else.simd"; "pred-masked-epilogue.simd" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let pred_program file = parse (read_file (Filename.concat corpus_dir file))

let trip_for (p : Ast.program) =
  match p.Ast.loop.Ast.trip with Ast.Trip_const _ -> None | Ast.Trip_param _ -> Some 100

let test_pred_corpus_policies_vls () =
  List.iter
    (fun file ->
      let program = pred_program file in
      let trip = trip_for program in
      List.iter
        (fun policy ->
          List.iter
            (fun v ->
              let config =
                {
                  Driver.default with
                  Driver.policy;
                  machine = Machine.create ~vector_len:v;
                }
              in
              let label =
                Printf.sprintf "%s / %s / V=%d" file (Policy.name policy) v
              in
              (* static: zero error-severity Check violations *)
              (match Driver.simdize ~check:true config program with
              | Driver.Scalar r ->
                Alcotest.failf "%s left scalar: %a" label Driver.pp_reason r
              | Driver.Simdized o ->
                List.iter
                  (fun (boundary, (viol : Check.violation)) ->
                    if viol.Check.severity = Check.Error then
                      Alcotest.failf "%s: at %s: %s" label boundary
                        (Check.violation_to_string viol))
                  (Driver.check_violations o));
              (* dynamic: simulator agreement with the scalar interpreter *)
              match Measure.verify ~config ?trip program with
              | Ok () -> ()
              | Error m -> Alcotest.failf "%s: %s" label m)
            [ 8; 16; 32 ])
        Policy.all)
    pred_corpus

(* --- native-oracle replay ----------------------------------------------- *)

let test_pred_corpus_native_oracle () =
  match Cc.find () with
  | None -> () (* no C compiler: skip *)
  | Some cc ->
    let cache_dir = Filename.temp_file "simd_mask_native" "" in
    Sys.remove cache_dir;
    (match Par.Native.create ~cc ~cache_dir () with
    | Error m -> Alcotest.failf "Native.create: %s" m
    | Ok oracle ->
      List.iter
        (fun file ->
          let program = pred_program file in
          let case =
            {
              Fuzz.Case.program;
              config = Driver.default;
              trip = trip_for program;
              setup_seed = 42;
            }
          in
          match Par.Native.check oracle case with
          | Fuzz.Oracle.Pass -> ()
          | o ->
            Alcotest.failf "%s: native oracle: %a" file Fuzz.Oracle.pp_outcome
              o)
        pred_corpus)

let suite =
  [
    ( "mask",
      [
        Alcotest.test_case "merge complementary pair" `Quick
          test_merge_complementary;
        Alcotest.test_case "rewrite guarded reduction" `Quick
          test_rewrite_guarded_reduction;
        Alcotest.test_case "residual guard counted" `Quick
          test_residual_guard_counted;
        Alcotest.test_case "if_convert idempotent" `Quick
          test_if_convert_idempotent;
        Alcotest.test_case "peeled guard, every offset" `Slow
          test_peeled_guard_every_offset;
        Alcotest.test_case "pred corpus x policies x V" `Slow
          test_pred_corpus_policies_vls;
        Alcotest.test_case "pred corpus native oracle" `Slow
          test_pred_corpus_native_oracle;
      ] );
  ]
