(* Regression corpus: every program in corpus/ must parse, round-trip
   through the printer, simdize under a spread of configurations, verify
   differentially, and emit compilable-shaped C. Runtime-trip programs are
   exercised at several trip counts including the guard region. *)

open Simd

let check_bool = Alcotest.(check bool)

(* The corpus directory relative to the test executable's cwd (dune runs
   tests in _build/default/test); fall back to the source tree. *)
let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../corpus"; "corpus"; "../../corpus"; "../../../corpus" ]
  |> Option.value ~default:"../corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simd")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let configs =
  [
    ("default", Driver.default);
    ("zero-plain", { Driver.default with Driver.policy = Policy.Zero;
                     reuse = Driver.No_reuse });
    ("lazy-pc-reassoc", { Driver.default with Driver.policy = Policy.Lazy;
                          reuse = Driver.Predictive_commoning; reassoc = true });
    ("eager-sp-unroll2", { Driver.default with Driver.policy = Policy.Eager;
                           unroll = 2 });
    ("dom-pc-unroll4", { Driver.default with Driver.policy = Policy.Dominant;
                         reuse = Driver.Predictive_commoning; unroll = 4 });
    ("optimal-sp", { Driver.default with Driver.policy = Policy.Optimal });
    ("auto-pc", { Driver.default with Driver.policy = Policy.Auto;
                  reuse = Driver.Predictive_commoning });
    ("joint-sp", { Driver.default with Driver.policy = Policy.Joint });
  ]

let trips_for (p : Ast.program) =
  match p.Ast.loop.Ast.trip with
  | Ast.Trip_const _ -> [ None ]
  | Ast.Trip_param _ -> [ Some 7; Some 13; Some 100; Some 1000 ]

let test_corpus_file file () =
  let src = read_file (Filename.concat corpus_dir file) in
  let program =
    match Parse.program_of_string_result src with
    | Ok p -> p
    | Error m -> Alcotest.failf "%s: %s" file m
  in
  (* printer round trip *)
  check_bool
    (file ^ " round trips")
    true
    (Ast.equal_program program (Parse.program_of_string (Pp.program_to_string program)));
  (* differential verification across configs and trips *)
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun trip ->
          match Measure.verify ~config ?trip program with
          | Ok () -> ()
          | Error m ->
            (* the guard keeping tiny runtime trips scalar is fine *)
            let is_guard =
              String.length m >= 10 && String.sub m 0 10 = "not simdiz"
            in
            if not (is_guard && trip <> None && Option.get trip <= 48) then
              Alcotest.failf "%s / %s / trip %s: %s" file cname
                (match trip with None -> "-" | Some t -> string_of_int t)
                m)
        (trips_for program))
    configs;
  (* the portable C unit contains both kernels *)
  match Driver.simdize Driver.default program with
  | Driver.Simdized o ->
    let c = Emit_portable.unit o.Driver.prog in
    List.iter
      (fun frag ->
        let n = String.length frag in
        let rec go i = i + n <= String.length c && (String.sub c i n = frag || go (i + 1)) in
        check_bool (file ^ " C has " ^ frag) true (go 0))
      [ "kernel_scalar"; "kernel_simd" ]
  | Driver.Scalar r ->
    Alcotest.failf "%s: default config left scalar: %s" file
      (Format.asprintf "%a" Driver.pp_reason r)

let suite =
  [
    ( "corpus",
      List.map
        (fun f -> Alcotest.test_case f `Quick (test_corpus_file f))
        (corpus_files ()) );
  ]
