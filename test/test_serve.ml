(* Compile service (Simd.Serve) and its foundations: the JSON parser
   (round trips, escapes, malformed input), the content-addressed
   artifact store (counter exactness, corruption recovery, LRU bound,
   concurrent writers), the wire protocol (request round trips, config
   vocabulary, control ops), the pure compile path (agreement with the
   driver, cache-key hygiene, cached-vs-cold byte equality), and the
   batching server (ordering, dedupe, determinism across worker counts,
   the fd loop end to end). *)

open Simd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- scratch directories -------------------------------------------- *)

let tmp_counter = ref 0

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "simd_serve_test.%d.%d" (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then remove_tree dir)
    (fun () -> f dir)

(* --- JSON parser ------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "hello \"world\"\n\ttab\\slash");
        ("i", Json.Int (-42));
        ("f", Json.Float 3.25);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  (match Json.of_string (Json.to_line doc) with
  | Ok parsed -> check_bool "compact round trip" true (parsed = doc)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  match Json.of_string (Json.to_string doc) with
  | Ok parsed -> check_bool "pretty round trip" true (parsed = doc)
  | Error m -> Alcotest.failf "pretty parse failed: %s" m

let test_json_escapes () =
  (match Json.of_string "\"caf\\u00e9\"" with
  | Ok (Json.String s) -> check_string "latin escape" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "latin escape");
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s) -> check_string "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair");
  (match Json.of_string "\"\\b\\f\\r\"" with
  | Ok (Json.String s) -> check_string "controls" "\b\x0c\r" s
  | _ -> Alcotest.fail "controls");
  (* a control character that must come back escaped *)
  match Json.of_string (Json.to_line (Json.String "\x02")) with
  | Ok (Json.String s) -> check_string "control round trip" "\x02" s
  | _ -> Alcotest.fail "control round trip"

let test_json_numbers () =
  check_bool "int" true (Json.of_string "42" = Ok (Json.Int 42));
  check_bool "negative" true (Json.of_string "-7" = Ok (Json.Int (-7)));
  check_bool "float" true (Json.of_string "3.25" = Ok (Json.Float 3.25));
  (match Json.of_string "1e3" with
  | Ok (Json.Float f) -> check_bool "exponent" true (f = 1000.)
  | _ -> Alcotest.fail "exponent");
  match Json.of_string "-0.5e-1" with
  | Ok (Json.Float f) -> check_bool "signed exponent" true (f = -0.05)
  | _ -> Alcotest.fail "signed exponent"

let test_json_malformed () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "{";
  bad {|{"a":|};
  bad "nope";
  bad "{} trailing";
  bad {|{"a" 1}|};
  bad {|[1,]|};
  bad {|"unterminated|}

let test_json_accessors () =
  let doc =
    Json.Obj
      [ ("s", Json.String "x"); ("i", Json.Int 3); ("b", Json.Bool false) ]
  in
  check_bool "member" true (Json.member "i" doc = Some (Json.Int 3));
  check_bool "member missing" true (Json.member "zz" doc = None);
  check_bool "member non-obj" true (Json.member "a" (Json.Int 1) = None);
  check_bool "to_string_opt" true
    (Option.bind (Json.member "s" doc) Json.to_string_opt = Some "x");
  check_bool "to_int_opt" true
    (Option.bind (Json.member "i" doc) Json.to_int_opt = Some 3);
  check_bool "to_bool_opt" true
    (Option.bind (Json.member "b" doc) Json.to_bool_opt = Some false);
  check_bool "bool from int" true (Json.to_bool_opt (Json.Int 1) = Some true)

(* --- Cas: counters, corruption, LRU, concurrency ---------------------- *)

let test_cas_counters () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~dir () in
      let key = Cas.key [ "a"; "b" ] in
      check_bool "cold find" true (Cas.find cas ~key = None);
      Cas.store cas ~key "payload";
      check_bool "hot find" true (Cas.find cas ~key = Some "payload");
      let s = Cas.stats cas in
      (* store bumps nothing: exactly one miss, one hit *)
      check_int "hits" 1 s.Cas.hits;
      check_int "misses" 1 s.Cas.misses;
      check_int "evictions" 0 s.Cas.evictions;
      check_int "corrupt" 0 s.Cas.corrupt;
      check_int "entries" 1 (Cas.entry_count cas))

let test_cas_find_or_build () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~dir () in
      let key = Cas.key [ "fob" ] in
      let built = ref 0 in
      let build () =
        incr built;
        Ok "artifact"
      in
      check_bool "first" true (Cas.find_or_build cas ~key build = Ok "artifact");
      check_bool "second" true (Cas.find_or_build cas ~key build = Ok "artifact");
      check_int "built once" 1 !built;
      (* builder errors are returned, not cached *)
      let key2 = Cas.key [ "fob2" ] in
      check_bool "error through" true
        (Cas.find_or_build cas ~key:key2 (fun () -> Error "no") = Error "no");
      check_int "error not stored" 1 (Cas.entry_count cas))

(* A store whose directory disappears degrades to a miss; it never
   raises into a caller whose compile already succeeded. *)
let test_cas_store_best_effort () =
  with_tmp_dir (fun dir ->
      let sub = Filename.concat dir "gone" in
      let cas = Cas.create ~dir:sub () in
      let key = Cas.key [ "best-effort" ] in
      Unix.rmdir sub;
      Cas.store cas ~key "artifact";
      check_bool "degrades to a miss" true (Cas.find cas ~key = None);
      (* find_or_build still returns the freshly built artifact *)
      check_bool "build result survives store failure" true
        (Cas.find_or_build cas ~key (fun () -> Ok "artifact") = Ok "artifact"))

let corrupt_entry dir key mangle =
  let path = Filename.concat dir (key ^ ".blob") in
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc (mangle content);
  close_out oc

let test_cas_corruption_recovery () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~dir () in
      let key = Cas.key [ "will-rot" ] in
      Cas.store cas ~key "the artifact";
      (* truncation *)
      corrupt_entry dir key (fun c -> String.sub c 0 (String.length c - 4));
      check_bool "truncated -> miss" true (Cas.find cas ~key = None);
      check_int "corrupt counted" 1 (Cas.stats cas).Cas.corrupt;
      check_int "corrupt entry deleted" 0 (Cas.entry_count cas);
      (* rebuild succeeds and is served again *)
      check_bool "rebuilt" true
        (Cas.find_or_build cas ~key (fun () -> Ok "the artifact")
        = Ok "the artifact");
      check_bool "served after rebuild" true
        (Cas.find cas ~key = Some "the artifact");
      (* garbled header *)
      corrupt_entry dir key (fun c -> "garbage " ^ c);
      check_bool "garbled -> miss" true (Cas.find cas ~key = None);
      check_int "corrupt counted again" 2 (Cas.stats cas).Cas.corrupt;
      (* payload tampering caught by the digest *)
      Cas.store cas ~key "the artifact";
      corrupt_entry dir key (fun c ->
          String.map (fun ch -> if ch = 'a' then 'b' else ch) c);
      check_bool "tampered -> miss" true (Cas.find cas ~key = None);
      check_int "tamper counted" 3 (Cas.stats cas).Cas.corrupt)

let test_cas_lru_bound () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~max_entries:3 ~dir () in
      let key i = Cas.key [ "lru"; string_of_int i ] in
      for i = 1 to 3 do
        Cas.store cas ~key:(key i) (Printf.sprintf "v%d" i);
        Unix.sleepf 0.02
      done;
      (* touch entry 1 so 2 becomes the LRU victim *)
      check_bool "touch 1" true (Cas.find cas ~key:(key 1) = Some "v1");
      Unix.sleepf 0.02;
      for i = 4 to 5 do
        Cas.store cas ~key:(key i) (Printf.sprintf "v%d" i);
        Unix.sleepf 0.02
      done;
      check_int "bounded" 3 (Cas.entry_count cas);
      check_int "evictions" 2 (Cas.stats cas).Cas.evictions;
      check_bool "recently used survives" true
        (Cas.find cas ~key:(key 1) = Some "v1");
      check_bool "LRU victim gone" true (Cas.find cas ~key:(key 2) = None);
      check_bool "newest survive" true
        (Cas.find cas ~key:(key 4) = Some "v4"
        && Cas.find cas ~key:(key 5) = Some "v5"))

let test_cas_concurrent_writers () =
  with_tmp_dir (fun dir ->
      let shared = Cas.key [ "shared" ] in
      let pids =
        List.init 4 (fun i ->
            match Unix.fork () with
            | 0 ->
              (* each child races on the shared key and writes one of its
                 own; exit code signals success *)
              let cas = Cas.create ~dir () in
              Cas.store cas ~key:shared "same payload";
              ignore
                (Cas.find_or_build cas ~key:shared (fun () ->
                     Ok "same payload"));
              Cas.store cas ~key:(Cas.key [ "own"; string_of_int i ])
                (Printf.sprintf "own%d" i);
              exit 0
            | pid -> pid)
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "writer child failed")
        pids;
      let cas = Cas.create ~dir () in
      check_bool "shared entry intact" true
        (Cas.find cas ~key:shared = Some "same payload");
      List.iteri
        (fun i () ->
          check_bool
            (Printf.sprintf "own %d intact" i)
            true
            (Cas.find cas
               ~key:(Cas.key [ "own"; string_of_int i ])
            = Some (Printf.sprintf "own%d" i)))
        [ (); (); (); () ];
      (* no stray temp files survive the races *)
      check_int "entries" 5 (Cas.entry_count cas))

let test_cas_raw_entries () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~dir () in
      let key = Cas.key [ "exe" ] in
      let built = ref 0 in
      let builder tmp =
        incr built;
        let oc = open_out_bin tmp in
        output_string oc "#!/bin/true\n";
        close_out oc;
        Ok ()
      in
      (match Cas.build_raw cas ~key builder with
      | Ok path -> check_bool "file exists" true (Sys.file_exists path)
      | Error m -> Alcotest.failf "build_raw: %s" m);
      (match Cas.build_raw cas ~key builder with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "build_raw hit: %s" m);
      check_int "built once" 1 !built;
      check_bool "find_raw" true (Cas.find_raw cas ~key <> None))

(* --- Protocol --------------------------------------------------------- *)

let sample_source =
  "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\nfor (i = 0; i < \
   100; i++) {\n  a[i+3] = b[i+1] + c[i+2];\n}\n"

let test_protocol_roundtrip () =
  let config =
    {
      Driver.default with
      Driver.policy = Policy.Joint;
      unroll = 2;
      machine = Machine.create ~vector_len:32;
    }
  in
  let req =
    {
      Serve.Protocol.id = "req-1";
      source = sample_source;
      config;
      emits = [ Serve.Protocol.Vir; Serve.Protocol.Sse ];
    }
  in
  match Serve.Protocol.parse_line (Serve.Protocol.request_to_line req) with
  | Serve.Protocol.Compile r ->
    check_string "id" "req-1" r.Serve.Protocol.id;
    check_string "source" sample_source r.Serve.Protocol.source;
    check_bool "emits" true (r.Serve.Protocol.emits = req.Serve.Protocol.emits);
    check_string "config"
      (Serve.Protocol.config_canonical config)
      (Serve.Protocol.config_canonical r.Serve.Protocol.config)
  | _ -> Alcotest.fail "round trip did not parse as Compile"

let test_protocol_ops () =
  (match Serve.Protocol.parse_line {|{"op":"ping"}|} with
  | Serve.Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match Serve.Protocol.parse_line {|{"op":"stats"}|} with
  | Serve.Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats");
  match Serve.Protocol.parse_line {|{"op":"shutdown"}|} with
  | Serve.Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown"

let test_protocol_malformed () =
  (match Serve.Protocol.parse_line "not json at all" with
  | Serve.Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage line");
  (* unknown config field must be rejected, with the id preserved *)
  (match
     Serve.Protocol.parse_line
       {|{"id":"x","source":"s","config":{"polcy":"zero"}}|}
   with
  | Serve.Protocol.Malformed { id = Some "x"; _ } -> ()
  | _ -> Alcotest.fail "typo in config field");
  (* a request without a source is not a compile *)
  match Serve.Protocol.parse_line {|{"id":"y"}|} with
  | Serve.Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "missing source"

(* An out-of-range vector length must come back as a malformed request —
   never as an exception that could take down the serve loop. *)
let test_protocol_bad_vl () =
  List.iter
    (fun vl ->
      match
        Serve.Protocol.parse_line
          (Printf.sprintf {|{"id":"v","source":"s","config":{"vl":%d}}|} vl)
      with
      | Serve.Protocol.Malformed { id = Some "v"; _ } -> ()
      | Serve.Protocol.Malformed _ -> Alcotest.failf "vl=%d: id dropped" vl
      | _ -> Alcotest.failf "vl=%d must be rejected" vl)
    [ 5; 0; -3; 1024 ]

let test_protocol_config_canonical () =
  let c1 = Driver.default in
  let c2 = { Driver.default with Driver.unroll = 4 } in
  check_bool "default equals itself" true
    (Serve.Protocol.config_canonical c1 = Serve.Protocol.config_canonical c1);
  check_bool "different configs differ" true
    (Serve.Protocol.config_canonical c1 <> Serve.Protocol.config_canonical c2);
  (* config_of_json inverts config_to_json *)
  match Serve.Protocol.config_of_json (Serve.Protocol.config_to_json c2) with
  | Ok c ->
    check_string "json round trip"
      (Serve.Protocol.config_canonical c2)
      (Serve.Protocol.config_canonical c)
  | Error m -> Alcotest.failf "config round trip: %s" m

(* --- Compile ---------------------------------------------------------- *)

let compile_request ?(id = "t") ?(config = Driver.default)
    ?(emits = [ Serve.Protocol.Vir; Serve.Protocol.C ]) source =
  { Serve.Protocol.id; source; config; emits }

let test_compile_agrees_with_driver () =
  match Serve.Compile.run (compile_request sample_source) with
  | Serve.Compile.Artifact a ->
    check_bool "check ok" true a.Serve.Compile.check_ok;
    let program = Parse.program_of_string sample_source in
    (match Driver.simdize ~check:true Driver.default program with
    | Driver.Simdized o ->
      let text name =
        match List.assoc name a.Serve.Compile.outputs with
        | Serve.Compile.Text t -> t
        | Serve.Compile.Skipped reason ->
          Alcotest.failf "output %s skipped: %s" name reason
      in
      check_string "vir output matches driver"
        (Vir_prog.to_string o.Driver.prog)
        (text "vir");
      check_string "c output matches driver"
        (Emit_portable.unit o.Driver.prog)
        (text "c")
    | Driver.Scalar _ -> Alcotest.fail "driver declined the sample")
  | _ -> Alcotest.fail "sample did not compile"

let test_compile_invalid () =
  match Serve.Compile.run (compile_request "this is not a loop") with
  | Serve.Compile.Invalid _ -> ()
  | _ -> Alcotest.fail "garbage source must be Invalid"

(* Every backend name parses as an emit, and ["portable"] aliases ["c"]. *)
let test_emit_names () =
  List.iter
    (fun e ->
      match Serve.Protocol.emit_of_name (Serve.Protocol.emit_name e) with
      | Some e' ->
        check_bool (Serve.Protocol.emit_name e ^ " round trip") true (e = e')
      | None ->
        Alcotest.failf "emit_of_name %s = None" (Serve.Protocol.emit_name e))
    [
      Serve.Protocol.Vir; Serve.Protocol.C; Serve.Protocol.Altivec;
      Serve.Protocol.Sse; Serve.Protocol.Avx2; Serve.Protocol.Neon;
    ];
  check_bool "portable aliases c" true
    (Serve.Protocol.emit_of_name "portable" = Some Serve.Protocol.C);
  check_bool "unknown emit" true (Serve.Protocol.emit_of_name "mmx" = None)

(* A V-mismatched ISA emit yields a skipped output — the request still
   succeeds, and the matching-V request yields real C. *)
let test_emit_vl_mismatch_skips () =
  (match
     Serve.Compile.run
       (compile_request ~emits:[ Serve.Protocol.Avx2 ] sample_source)
   with
  | Serve.Compile.Artifact a -> (
    match List.assoc "avx2" a.Serve.Compile.outputs with
    | Serve.Compile.Skipped reason ->
      check_bool "reason names both Vs" true
        (let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length reason
             && (String.sub reason i n = sub || go (i + 1))
           in
           go 0
         in
         has "32" && has "16")
    | Serve.Compile.Text _ -> Alcotest.fail "avx2 at V=16 must be skipped")
  | _ -> Alcotest.fail "V=16 avx2 request must still succeed");
  let config_v32 =
    { Driver.default with Driver.machine = Machine.create ~vector_len:32 }
  in
  match
    Serve.Compile.run
      (compile_request ~config:config_v32
         ~emits:[ Serve.Protocol.Avx2; Serve.Protocol.Sse ]
         sample_source)
  with
  | Serve.Compile.Artifact a ->
    (match List.assoc "avx2" a.Serve.Compile.outputs with
    | Serve.Compile.Text c ->
      check_bool "avx2 text at V=32" true (String.length c > 0)
    | Serve.Compile.Skipped r -> Alcotest.failf "avx2 at V=32 skipped: %s" r);
    (match List.assoc "sse" a.Serve.Compile.outputs with
    | Serve.Compile.Skipped _ -> ()
    | Serve.Compile.Text _ -> Alcotest.fail "sse at V=32 must be skipped")
  | _ -> Alcotest.fail "V=32 request did not compile"

(* The skipped output renders as {"skipped": reason} on the wire. *)
let test_emit_skip_json () =
  match
    Serve.Compile.run
      (compile_request ~emits:[ Serve.Protocol.Neon; Serve.Protocol.Avx2 ]
         sample_source)
  with
  | Serve.Compile.Artifact _ as outcome -> (
    let doc = Serve.Compile.outcome_to_json outcome in
    match Json.member "artifact" doc with
    | Some artifact -> (
      match Json.member "outputs" artifact with
      | Some (Json.Obj outputs) ->
        (* neon matches V=16, avx2 does not *)
        (match List.assoc "neon" outputs with
        | Json.String _ -> ()
        | _ -> Alcotest.fail "neon output must be C text");
        (match List.assoc "avx2" outputs with
        | Json.Obj fields ->
          check_bool "skipped field" true (List.mem_assoc "skipped" fields)
        | _ -> Alcotest.fail "avx2 output must be a skip object")
      | _ -> Alcotest.fail "no outputs object")
    | None -> Alcotest.fail "no artifact")
  | _ -> Alcotest.fail "request did not compile"

let test_compile_cache_key () =
  let r1 = compile_request ~id:"a" sample_source in
  let r2 = compile_request ~id:"b" sample_source in
  check_string "id excluded from key" (Serve.Compile.cache_key r1)
    (Serve.Compile.cache_key r2);
  let r3 =
    compile_request ~config:{ Driver.default with Driver.unroll = 2 }
      sample_source
  in
  check_bool "config in key" true
    (Serve.Compile.cache_key r1 <> Serve.Compile.cache_key r3);
  let r4 = compile_request ~emits:[ Serve.Protocol.Vir ] sample_source in
  check_bool "emits in key" true
    (Serve.Compile.cache_key r1 <> Serve.Compile.cache_key r4);
  let r5 = compile_request (sample_source ^ "// changed\n") in
  check_bool "source in key" true
    (Serve.Compile.cache_key r1 <> Serve.Compile.cache_key r5)

let test_compile_cached_byte_identical () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~dir () in
      let req = compile_request sample_source in
      let doc1, h1 = Serve.Compile.run_cached cas req in
      let doc2, h2 = Serve.Compile.run_cached cas req in
      check_bool "first is a miss" true (h1 = `Miss);
      check_bool "second is a hit" true (h2 = `Hit);
      check_string "byte identical" (Json.to_line doc1) (Json.to_line doc2))

(* --- Server ----------------------------------------------------------- *)

let compile_line ?id ?config source =
  Serve.Protocol.request_to_line (compile_request ?id ?config source)

let test_server_batch_order_and_dedupe () =
  with_tmp_dir (fun dir ->
      let cas = Cas.create ~dir () in
      let server = Serve.Server.create ~cache:cas () in
      let batch =
        [
          {|{"op":"ping"}|};
          compile_line ~id:"one" sample_source;
          "malformed {{{";
          compile_line ~id:"two" sample_source;
        ]
      in
      let responses, shutdown = Serve.Server.handle_batch server batch in
      check_bool "no shutdown" false shutdown;
      check_int "one response per line" 4 (List.length responses);
      (match responses with
      | [ pong; one; bad; two ] ->
        check_string "pong" {|{"op":"pong"}|} pong;
        check_bool "id one" true
          (Json.member "id" (Result.get_ok (Json.of_string one))
          = Some (Json.String "one"));
        check_bool "malformed answered" true
          (Json.member "status" (Result.get_ok (Json.of_string bad))
          = Some (Json.String "error"));
        check_bool "id two" true
          (Json.member "id" (Result.get_ok (Json.of_string two))
          = Some (Json.String "two"));
        (* identical requests compile once: the only difference is the id *)
        let strip_id line =
          match Json.of_string line with
          | Ok (Json.Obj fields) ->
            Json.to_line (Json.Obj (List.remove_assoc "id" fields))
          | _ -> line
        in
        check_string "dedupe yields identical payloads" (strip_id one)
          (strip_id two)
      | _ -> Alcotest.fail "shape");
      (* two identical compile requests, one unique key: exactly one miss *)
      check_int "single miss" 1 (Cas.stats cas).Cas.misses;
      (* replay the batch: both requests now hit *)
      let responses2, _ = Serve.Server.handle_batch server batch in
      check_bool "cache replay byte identical" true (responses = responses2);
      check_int "replay hits" 1 (Cas.stats cas).Cas.hits)

let test_server_deterministic_across_jobs () =
  let batch =
    [
      compile_line ~id:"a" sample_source;
      compile_line ~id:"b"
        ~config:{ Driver.default with Driver.policy = Policy.Zero }
        sample_source;
      compile_line ~id:"c" "garbage";
    ]
  in
  let inline = Serve.Server.create ~jobs:1 () in
  let pooled = Serve.Server.create ~jobs:2 () in
  let r1, _ = Serve.Server.handle_batch inline batch in
  let r2, _ = Serve.Server.handle_batch pooled batch in
  check_bool "jobs=1 and jobs=2 byte identical" true (r1 = r2)

let test_server_shutdown_and_stats () =
  let server = Serve.Server.create () in
  let responses, shutdown =
    Serve.Server.handle_batch server
      [ compile_line ~id:"x" sample_source; {|{"op":"stats"}|};
        {|{"op":"shutdown"}|} ]
  in
  check_bool "shutdown seen" true shutdown;
  check_int "all answered" 3 (List.length responses);
  (* the in-batch stats snapshot already counts the compile before it *)
  match Json.of_string (List.nth responses 1) with
  | Ok doc ->
    let requests = Option.get (Json.member "requests" doc) in
    check_bool "ok counted" true
      (Json.member "ok" requests = Some (Json.Int 1))
  | Error m -> Alcotest.failf "stats response: %s" m

let test_server_serve_fd () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let lines =
    [
      compile_line ~id:"p1" sample_source;
      {|{"op":"ping"}|};
      {|{"op":"shutdown"}|};
    ]
  in
  let payload = String.concat "\n" lines ^ "\n" in
  let written =
    Unix.write req_w (Bytes.of_string payload) 0 (String.length payload)
  in
  check_int "request bytes written" (String.length payload) written;
  Unix.close req_w;
  let server = Serve.Server.create () in
  let verdict = Serve.Server.serve_fd server req_r resp_w in
  check_bool "shutdown verdict" true (verdict = `Shutdown);
  Unix.close resp_w;
  Unix.close req_r;
  let ic = Unix.in_channel_of_descr resp_r in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  let out = List.rev !out in
  check_int "three responses" 3 (List.length out);
  match List.map Json.of_string out with
  | [ Ok first; Ok pong; Ok ack ] ->
    check_bool "compile answered" true
      (Json.member "id" first = Some (Json.String "p1"));
    check_bool "pong" true (Json.member "op" pong = Some (Json.String "pong"));
    check_bool "shutdown acked" true
      (Json.member "op" ack = Some (Json.String "shutdown"))
  | _ -> Alcotest.fail "responses did not parse"

(* A poison request inside a batch (invalid vl) gets an error response;
   every other line in the batch is still answered. *)
let test_server_poison_request () =
  let server = Serve.Server.create () in
  let responses, _ =
    Serve.Server.handle_batch server
      [
        {|{"id":"bad","source":"s","config":{"vl":5}}|};
        {|{"op":"ping"}|};
      ]
  in
  check_int "both answered" 2 (List.length responses);
  match List.map Json.of_string responses with
  | [ Ok bad; Ok pong ] ->
    check_bool "poison is an error response" true
      (Json.member "status" bad = Some (Json.String "error"));
    check_bool "stream continues" true
      (Json.member "op" pong = Some (Json.String "pong"))
  | _ -> Alcotest.fail "responses did not parse"

(* A final request without a trailing newline is processed, not dropped. *)
let test_server_no_trailing_newline () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let payload = {|{"op":"ping"}|} ^ "\n" ^ {|{"op":"stats"}|} (* no \n *) in
  let written =
    Unix.write req_w (Bytes.of_string payload) 0 (String.length payload)
  in
  check_int "request bytes written" (String.length payload) written;
  Unix.close req_w;
  let server = Serve.Server.create () in
  let verdict = Serve.Server.serve_fd server req_r resp_w in
  check_bool "eof verdict" true (verdict = `Eof);
  Unix.close resp_w;
  Unix.close req_r;
  let ic = Unix.in_channel_of_descr resp_r in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  close_in ic;
  check_int "unterminated final request answered" 2 (List.length !out)

(* Two concurrent clients on the Unix-domain socket. Client A parks half
   a request line (no newline); client B, connected alongside, must get a
   full round trip while A is mid-line — the accept loop multiplexes
   connections instead of serving them to completion one at a time. Then
   A completes and is served from its own reader state; B vanishing does
   not kill the daemon; shutdown from A does. *)
let test_socket_two_clients () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "sock" in
      match Unix.fork () with
      | 0 ->
        let server = Serve.Server.create () in
        (try Serve.Server.listen_unix server ~path with _ -> ());
        Unix._exit 0
      | pid ->
        let rec await n =
          if Sys.file_exists path then ()
          else if n = 0 then Alcotest.fail "socket never appeared"
          else begin
            Unix.sleepf 0.02;
            await (n - 1)
          end
        in
        await 250;
        let connect () =
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
        in
        let send fd str =
          ignore (Unix.write fd (Bytes.of_string str) 0 (String.length str))
        in
        let a = connect () in
        let b = connect () in
        let aic = Unix.in_channel_of_descr a in
        let bic = Unix.in_channel_of_descr b in
        let id_of line =
          Json.member "id" (Result.get_ok (Json.of_string line))
        in
        let op_of line =
          Json.member "op" (Result.get_ok (Json.of_string line))
        in
        (* A parks an incomplete request line. *)
        let a_line = compile_line ~id:"a1" sample_source in
        let half = String.length a_line / 2 in
        send a (String.sub a_line 0 half);
        (* B gets served while A is mid-line. *)
        send b (compile_line ~id:"b1" sample_source ^ "\n");
        check_bool "b served while a mid-line" true
          (id_of (input_line bic) = Some (Json.String "b1"));
        (* A completes its line and is served from its own buffer. *)
        send a (String.sub a_line half (String.length a_line - half) ^ "\n");
        check_bool "a completed and served" true
          (id_of (input_line aic) = Some (Json.String "a1"));
        (* B disconnecting ends only B's connection. *)
        close_in bic;
        send a "{|op-ping|}\n";
        check_bool "malformed still answered" true
          (match Json.of_string (input_line aic) with
          | Ok doc -> Json.member "status" doc = Some (Json.String "error")
          | Error _ -> false);
        send a ({|{"op":"ping"}|} ^ "\n");
        check_bool "daemon alive after b left" true
          (op_of (input_line aic) = Some (Json.String "pong"));
        (* Shutdown from any client stops the daemon. *)
        send a ({|{"op":"shutdown"}|} ^ "\n");
        check_bool "shutdown acked" true
          (op_of (input_line aic) = Some (Json.String "shutdown"));
        close_in aic;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> Alcotest.fail "daemon did not exit cleanly"))

let suite =
  [
    ( "serve json",
      [
        Alcotest.test_case "round trip" `Quick test_json_roundtrip;
        Alcotest.test_case "escapes" `Quick test_json_escapes;
        Alcotest.test_case "numbers" `Quick test_json_numbers;
        Alcotest.test_case "malformed" `Quick test_json_malformed;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "serve cas",
      [
        Alcotest.test_case "counters" `Quick test_cas_counters;
        Alcotest.test_case "find_or_build" `Quick test_cas_find_or_build;
        Alcotest.test_case "corruption recovery" `Quick
          test_cas_corruption_recovery;
        Alcotest.test_case "LRU bound" `Quick test_cas_lru_bound;
        Alcotest.test_case "concurrent writers" `Quick
          test_cas_concurrent_writers;
        Alcotest.test_case "raw entries" `Quick test_cas_raw_entries;
        Alcotest.test_case "store best-effort" `Quick
          test_cas_store_best_effort;
      ] );
    ( "serve protocol",
      [
        Alcotest.test_case "request round trip" `Quick test_protocol_roundtrip;
        Alcotest.test_case "control ops" `Quick test_protocol_ops;
        Alcotest.test_case "malformed requests" `Quick test_protocol_malformed;
        Alcotest.test_case "bad vector length" `Quick test_protocol_bad_vl;
        Alcotest.test_case "config canonical" `Quick
          test_protocol_config_canonical;
      ] );
    ( "serve compile",
      [
        Alcotest.test_case "agrees with driver" `Quick
          test_compile_agrees_with_driver;
        Alcotest.test_case "invalid source" `Quick test_compile_invalid;
        Alcotest.test_case "emit names" `Quick test_emit_names;
        Alcotest.test_case "V-mismatched emits skip" `Quick
          test_emit_vl_mismatch_skips;
        Alcotest.test_case "skipped output json" `Quick test_emit_skip_json;
        Alcotest.test_case "cache key" `Quick test_compile_cache_key;
        Alcotest.test_case "cached byte-identical" `Quick
          test_compile_cached_byte_identical;
      ] );
    ( "serve server",
      [
        Alcotest.test_case "batch order and dedupe" `Quick
          test_server_batch_order_and_dedupe;
        Alcotest.test_case "deterministic across jobs" `Quick
          test_server_deterministic_across_jobs;
        Alcotest.test_case "shutdown and in-batch stats" `Quick
          test_server_shutdown_and_stats;
        Alcotest.test_case "serve_fd end to end" `Quick test_server_serve_fd;
        Alcotest.test_case "poison request isolated" `Quick
          test_server_poison_request;
        Alcotest.test_case "socket: two concurrent clients" `Quick
          test_socket_two_clients;
        Alcotest.test_case "no trailing newline" `Quick
          test_server_no_trailing_newline;
      ] );
  ]
