(* Pass-pipeline tracing (Simd.Trace) and fuzz bisection tests: the diff
   engine, trace determinism (byte-identical JSON/human output modulo
   timings), the zero-cost no-op sink, the simd-trace/1 schema shape, the
   per-scheme summary, non-perturbation of the compilation, and the
   regression that pipeline bisection names [unroll] on the pre-fix PR-1
   reproducers when the seam-coalescer bug is re-injected. *)

open Simd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let source =
  {|
int32 a[128] @ 0;
int32 b[128] @ 4;
int32 c[128] @ 8;
for (i = 0; i < 100; i++) {
  a[i+3] = b[i+1] + c[i+2];
}
|}

let program () = parse_exn source

let fuzz_corpus_dir =
  List.find_opt Sys.file_exists
    [
      "../corpus/fuzz";
      "corpus/fuzz";
      "../../corpus/fuzz";
      "../../../corpus/fuzz";
    ]

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let test_diff () =
  let render ls = String.concat "|" (List.map Trace.Diff.line_to_string ls) in
  check_string "equal inputs keep everything" "  a|  b"
    (render (Trace.Diff.lines "a\nb" "a\nb"));
  check_string "insertion" "  a|+ x|  b"
    (render (Trace.Diff.lines "a\nb" "a\nx\nb"));
  check_string "deletion" "  a|- x|  b"
    (render (Trace.Diff.lines "a\nx\nb" "a\nb"));
  check_string "replacement" "- a|+ b" (render (Trace.Diff.lines "a" "b"));
  check_string "trailing newline adds no phantom line" "  a"
    (render (Trace.Diff.lines "a\n" "a"));
  check_bool "changed detects edits" true
    (Trace.Diff.changed (Trace.Diff.lines "a" "b"));
  check_bool "changed false on equality" false
    (Trace.Diff.changed (Trace.Diff.lines "a\nb" "a\nb"));
  check_int "changes_only drops keeps" 2
    (List.length (Trace.Diff.changes_only (Trace.Diff.lines "a\nx" "a\ny")));
  (* LCS minimality on a shared middle *)
  check_string "common subsequence preserved" "- p|  m|+ q"
    (render (Trace.Diff.lines "p\nm" "m\nq"))

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let trace_of config =
  let trace = Trace.create () in
  (match Driver.simdize ~trace config (program ()) with
  | Driver.Simdized _ -> ()
  | Driver.Scalar r ->
    Alcotest.failf "unexpectedly scalar: %a" Driver.pp_reason r);
  trace

let test_determinism () =
  List.iter
    (fun config ->
      let t1 = trace_of config and t2 = trace_of config in
      check_string "human transcript is byte-identical"
        (Trace.to_string t1) (Trace.to_string t2);
      check_string "JSON trace is byte-identical"
        (Json.to_string ~indent:2 (Trace.to_json t1))
        (Json.to_string ~indent:2 (Trace.to_json t2)))
    [
      Driver.default;
      { Driver.default with Driver.reuse = Driver.Predictive_commoning };
      { Driver.default with Driver.unroll = 2; reassoc = true };
      { Driver.default with Driver.policy = Policy.Optimal; cse = false };
    ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_timings_excluded () =
  (* wall-clock fields appear only on request *)
  let t = trace_of Driver.default in
  let base = Json.to_string (Trace.to_json t) in
  let timed = Json.to_string (Trace.to_json ~timings:true t) in
  check_bool "default JSON has no elapsed_ms" false (contains base "elapsed_ms");
  check_bool "timings JSON has elapsed_ms" true (contains timed "elapsed_ms")

(* ------------------------------------------------------------------ *)
(* The no-op sink                                                      *)
(* ------------------------------------------------------------------ *)

let test_noop_sink () =
  check_bool "none is inactive" false (Trace.active Trace.none);
  check_bool "create is active" true (Trace.active (Trace.create ()));
  Trace.add Trace.none
    (Trace.Reassoc { applied = false; before = ""; after = "" });
  check_int "add on none records nothing" 0
    (List.length (Trace.events Trace.none));
  (* the inactive path must touch neither the snapshotter nor the clock *)
  let result =
    Trace.record_pass Trace.none ~name:"x" ~enabled:true 41
      ~snap:(fun _ -> Alcotest.fail "snap called on inactive sink")
      (fun n -> n + 1)
  in
  check_int "record_pass still applies the pass" 42 result;
  let result =
    Trace.record_pass Trace.none ~name:"x" ~enabled:false 41
      ~snap:(fun _ -> Alcotest.fail "snap called on inactive sink")
      (fun _ -> Alcotest.fail "disabled pass applied")
  in
  check_int "record_pass skips a disabled pass" 41 result

let test_no_perturbation () =
  (* tracing must not change what is compiled *)
  List.iter
    (fun config ->
      let trace = Trace.create () in
      match
        (Driver.simdize config (program ()),
         Driver.simdize ~trace config (program ()))
      with
      | Driver.Simdized a, Driver.Simdized b ->
        check_string "same vector IR with and without tracing"
          (Vir_prog.to_string a.Driver.prog)
          (Vir_prog.to_string b.Driver.prog)
      | _ -> Alcotest.fail "unexpectedly scalar")
    [
      Driver.default;
      { Driver.default with Driver.unroll = 2; reuse = Driver.Predictive_commoning };
    ]

(* ------------------------------------------------------------------ *)
(* Schema and event shape                                              *)
(* ------------------------------------------------------------------ *)

let test_schema () =
  let t =
    trace_of { Driver.default with Driver.reassoc = true; unroll = 2 }
  in
  (match Trace.to_json t with
  | Json.Obj fields ->
    (match List.assoc_opt "schema" fields with
    | Some (Json.String s) -> check_string "schema tag" "simd-trace/1" s
    | _ -> Alcotest.fail "missing schema tag");
    (match List.assoc_opt "events" fields with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "missing events")
  | _ -> Alcotest.fail "trace JSON is not an object");
  let events = Trace.events t in
  check_bool "records a reassoc event" true
    (List.exists (function Trace.Reassoc _ -> true | _ -> false) events);
  check_bool "records a placement event" true
    (List.exists (function Trace.Placement _ -> true | _ -> false) events);
  check_bool "records the generated IR" true
    (List.exists (function Trace.Generated _ -> true | _ -> false) events);
  (* every Pass event name is either a registered pipeline pass or a
     structural stage *)
  let structural = [ "derive_epilogues"; "finalize_reductions"; "dce" ] in
  List.iter
    (function
      | Trace.Pass { name; _ } ->
        check_bool ("known pass name: " ^ name) true
          (List.mem name Trace.pass_names || List.mem name structural)
      | _ -> ())
    events;
  (* pass events appear in pipeline application order *)
  let order =
    List.filter_map
      (function
        | Trace.Pass { name; _ } when List.mem name Trace.pass_names ->
          Some name
        | _ -> None)
      events
  in
  check_bool "pipeline order" true
    (order
    = [
        "hoist_splats";
        "memnorm";
        "cse";
        "predictive_commoning";
        "cse";
        "unroll";
        "vir_cleanup";
      ])

let test_placement_provenance () =
  let t = trace_of Driver.default in
  match
    List.find_opt
      (function Trace.Placement _ -> true | _ -> false)
      (Trace.events t)
  with
  | Some (Trace.Placement p) ->
    check_int "statement index" 0 p.Trace.pl_index;
    check_bool "requested policy recorded" true
      (p.Trace.pl_requested = Policy.Dominant);
    check_bool "has shift provenance" true (p.Trace.pl_shifts <> []);
    (* dominant shift on fig1-style alignments: every shift is priced *)
    List.iter
      (fun (s : Trace.shift_prov) ->
        check_bool "shift cost is positive" true (s.Trace.sp_cost > 0.))
      p.Trace.pl_shifts;
    check_bool "statement cost covers the shift cost" true
      (p.Trace.pl_cost >= p.Trace.pl_shift_cost)
  | _ -> Alcotest.fail "no placement event"

let test_summary () =
  let t =
    trace_of { Driver.default with Driver.reuse = Driver.Predictive_commoning }
  in
  let rows = Trace.summary t in
  let names = List.map (fun r -> r.Trace.row_pass) rows in
  (* repeated passes (cse runs on body and prologue) merge into one row *)
  check_int "one row per pass"
    (List.length (Simd_support.Util.dedup names))
    (List.length names);
  let row name =
    match List.find_opt (fun r -> r.Trace.row_pass = name) rows with
    | Some r -> r
    | None -> Alcotest.failf "summary lacks a %s row" name
  in
  check_bool "pc row enabled" true (row "predictive_commoning").Trace.row_enabled;
  check_bool "unroll row disabled" false (row "unroll").Trace.row_enabled;
  check_bool "reassoc row disabled" false (row "reassoc").Trace.row_enabled;
  check_bool "memnorm changed the IR" true (row "memnorm").Trace.row_changed

(* ------------------------------------------------------------------ *)
(* Bisection                                                           *)
(* ------------------------------------------------------------------ *)

let prefix_reproducers () =
  match fuzz_corpus_dir with
  | None -> Alcotest.fail "corpus/fuzz directory not found"
  | Some dir ->
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f ->
           String.length f >= 20
           && String.sub f 0 20 = "pc-unroll-carry-chai")
    |> List.map (fun f ->
           match Fuzz.Case.of_file (Filename.concat dir f) with
           | Ok case -> (f, case)
           | Error m -> Alcotest.failf "%s: %s" f m)

let test_bisect_names_unroll () =
  (* Re-inject the PR-1 seam-coalescer bug and check that bisection blames
     [unroll] — the pass whose coalescer miscompiles — on every committed
     pre-fix reproducer. *)
  let cases = prefix_reproducers () in
  check_bool "found the PR-1 reproducers" true (List.length cases >= 4);
  Fun.protect
    ~finally:(fun () -> Passes.unsafe_unroll_seam_coalesce_bug := false)
    (fun () ->
      Passes.unsafe_unroll_seam_coalesce_bug := true;
      List.iter
        (fun (name, case) ->
          check_bool (name ^ " diverges under the re-broken coalescer") true
            (Fuzz.Oracle.is_failure (Fuzz.Oracle.run case));
          match Fuzz.Bisect.run case with
          | Fuzz.Bisect.First_diverging p ->
            check_string (name ^ " blames unroll") "unroll" p
          | v ->
            Alcotest.failf "%s: expected First_diverging unroll, got %s" name
              (Fuzz.Bisect.verdict_name v))
        cases)

let test_bisect_vanished_when_fixed () =
  (* With the real (fixed) coalescer the same reproducers pass, and
     bisection reports that honestly. *)
  List.iter
    (fun (name, case) ->
      match Fuzz.Bisect.run case with
      | Fuzz.Bisect.Vanished -> ()
      | v ->
        Alcotest.failf "%s: expected Vanished on fixed pipeline, got %s" name
          (Fuzz.Bisect.verdict_name v))
    (prefix_reproducers ())

let test_bisect_prefix_configs () =
  (* with_prefix 0 disables everything; full prefix is the identity *)
  let case =
    {
      Fuzz.Case.program = program ();
      config =
        {
          Driver.default with
          Driver.reuse = Driver.Predictive_commoning;
          unroll = 2;
          reassoc = true;
        };
      trip = None;
      setup_seed = 1;
    }
  in
  let n = List.length Trace.pass_names in
  let none_on = (Fuzz.Bisect.with_prefix case 0).Fuzz.Case.config in
  List.iter
    (fun p ->
      check_bool ("prefix 0 disables " ^ p) false
        (Fuzz.Bisect.enabled_in none_on p))
    Trace.pass_names;
  check_bool "full prefix leaves the config unchanged" true
    ((Fuzz.Bisect.with_prefix case n).Fuzz.Case.config = case.Fuzz.Case.config)

let suite =
  [
    ( "trace",
      [
      Alcotest.test_case "structural line diff" `Quick test_diff;
      Alcotest.test_case "deterministic output" `Quick test_determinism;
      Alcotest.test_case "timings only on request" `Quick test_timings_excluded;
      Alcotest.test_case "no-op sink does no work" `Quick test_noop_sink;
      Alcotest.test_case "tracing does not perturb compilation" `Quick
        test_no_perturbation;
      Alcotest.test_case "schema and event shape" `Quick test_schema;
      Alcotest.test_case "shift placement provenance" `Quick
        test_placement_provenance;
      Alcotest.test_case "per-scheme summary" `Quick test_summary;
      Alcotest.test_case "bisection blames unroll on PR-1 reproducers" `Quick
        test_bisect_names_unroll;
      Alcotest.test_case "bisection reports vanished when fixed" `Quick
        test_bisect_vanished_when_fixed;
      Alcotest.test_case "bisection prefix configs" `Quick
        test_bisect_prefix_configs;
      ] );
  ]
