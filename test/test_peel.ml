(* Loop-peeling baseline tests (prior work, §1/§6). *)

open Simd

let machine = Machine.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parse.program_of_string
let analyze src = Analysis.check_exn ~machine (parse src)

let test_applicable_uniform () =
  (* every reference misaligned by the same 4 bytes *)
  let a =
    analyze
      "int32 a[128] @ 4;\nint32 b[128] @ 4;\n\
       for (i = 0; i < 100; i++) { a[i] = b[i]; }"
  in
  check_bool "applicable" true (Peel.check a = Peel.Applicable);
  check_int "peel 3 iterations" 3 (Peel.peel_amount a)

let test_applicable_aligned () =
  let a =
    analyze
      "int32 a[128] @ 0;\nint32 b[128] @ 0;\n\
       for (i = 0; i < 100; i++) { a[i] = b[i]; }"
  in
  check_bool "applicable" true (Peel.check a = Peel.Applicable);
  check_int "no peel needed" 0 (Peel.peel_amount a)

let test_mixed_not_applicable () =
  let a =
    analyze
      "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
       for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  check_bool "mixed" true (Peel.check a = Peel.Mixed_alignments)

let test_runtime_not_applicable () =
  let a =
    analyze
      "int32 a[128] @ ?;\nint32 b[128] @ 4;\n\
       for (i = 0; i < 100; i++) { a[i] = b[i]; }"
  in
  check_bool "runtime" true (Peel.check a = Peel.Runtime_alignment)

(* Exhaustive peel amounts: every misalignment o in [0, V) crossed with
   every element width. Legal combinations (o a multiple of the width) must
   satisfy (V - o)/D mod B, stay inside [0, B), and actually cure the
   misalignment; the rest must be rejected loudly. *)
let test_peel_amount_exhaustive () =
  let v = Machine.vector_len machine in
  let ty_of_elem = function
    | 1 -> "int8"
    | 2 -> "int16"
    | 4 -> "int32"
    | _ -> "int64"
  in
  List.iter
    (fun elem ->
      let block = v / elem in
      for o = 0 to v - 1 do
        if o mod elem = 0 then begin
          let a =
            analyze
              (Printf.sprintf
                 "%s a[128] @ %d;\n%s b[128] @ %d;\n\
                  for (i = 0; i < 100; i++) { a[i] = b[i]; }"
                 (ty_of_elem elem) o (ty_of_elem elem) o)
          in
          let peel = Peel.peel_amount a in
          check_int
            (Printf.sprintf "o=%d elem=%d" o elem)
            ((v - o) / elem mod block)
            peel;
          check_bool "within a block" true (peel >= 0 && peel < block);
          check_bool "cures the misalignment" true ((o + (peel * elem)) mod v = 0)
        end
        else begin
          (* Not expressible in source (the analysis rejects such base
             alignments), so exercise peel_amount on a hand-built summary. *)
          let program =
            parse
              (Printf.sprintf
                 "%s a[128] @ 0;\nfor (i = 0; i < 100; i++) { a[i] = 1; }"
                 (ty_of_elem elem))
          in
          let r = { Ast.ref_array = "a"; ref_offset = 0; ref_stride = 1 } in
          let a =
            {
              Analysis.program;
              machine;
              elem;
              block;
              offsets = [ (r, Align.Known o) ];
              all_known = true;
            }
          in
          match Peel.peel_amount a with
          | exception Invalid_argument _ -> ()
          | n ->
            Alcotest.failf "o=%d elem=%d: expected rejection, got %d" o elem n
        end
      done)
    [ 1; 2; 4; 8 ]

let test_driver_baseline_refuses_mixed () =
  let config = { Driver.default with Driver.peel_baseline = true } in
  let program =
    parse
      "int32 a[128] @ 0;\nint32 b[128] @ 0;\nint32 c[128] @ 0;\n\
       for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }"
  in
  match Driver.simdize config program with
  | Driver.Scalar (Driver.Peeling_inapplicable Peel.Mixed_alignments) -> ()
  | _ -> Alcotest.fail "baseline must refuse the Figure-1 loop"

let test_driver_baseline_simdizes_uniform () =
  let config = { Driver.default with Driver.peel_baseline = true } in
  let program =
    parse
      "int32 a[128] @ 8;\nint32 b[128] @ 8;\n\
       for (i = 0; i < 100; i++) { a[i] = b[i]; }"
  in
  match Driver.simdize config program with
  | Driver.Simdized o ->
    (* equivalent to eager-shift: with uniform alignment, no stream shifts *)
    check_int "no shifts" 0 (Vir_prog.body_counts o.Driver.prog).Vir_prog.shifts;
    (match Measure.verify ~config program with
    | Ok () -> ()
    | Error m -> Alcotest.failf "verify: %s" m)
  | Driver.Scalar _ -> Alcotest.fail "uniform misalignment should peel"

let suite =
  [
    ( "peel",
      [
        Alcotest.test_case "uniform misalignment applicable" `Quick
          test_applicable_uniform;
        Alcotest.test_case "aligned applicable" `Quick test_applicable_aligned;
        Alcotest.test_case "mixed not applicable" `Quick test_mixed_not_applicable;
        Alcotest.test_case "runtime not applicable" `Quick test_runtime_not_applicable;
        Alcotest.test_case "peel amount exhaustive" `Quick
          test_peel_amount_exhaustive;
        Alcotest.test_case "driver refuses fig1" `Quick test_driver_baseline_refuses_mixed;
        Alcotest.test_case "driver peels uniform" `Quick
          test_driver_baseline_simdizes_uniform;
      ] );
  ]
