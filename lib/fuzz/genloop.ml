(** Seeded random program generator for differential fuzzing.

    Unlike {!Simd_bench.Synth}, which reproduces the paper's benchmark
    shapes (sums of loads), this generator covers the full accepted surface
    of the loop language so the oracle can probe corner cases: every element
    width, strided gathers, reused arrays with distinct offsets, parameters
    and constants inside expressions, all eight operators (including
    [min]/[max] call syntax and non-commutative [-]), reductions, runtime
    alignments, runtime trip counts, and trip values straddling the
    [ub > 3B] simdization guard.

    Programs are well-formed by construction: arrays are sized after the
    fact so every reference is in bounds at the chosen trip count, declared
    alignments are naturally aligned multiples of the element width, stored
    arrays are fresh per statement and never loaded, and reductions use only
    operators with identities. All draws come from one {!Simd_support.Prng}
    stream, so a seed reproduces the exact case sequence. *)

open Simd_loopir
module Prng = Simd_support.Prng
module Util = Simd_support.Util
module Driver = Simd_codegen.Driver
module Policy = Simd_dreorg.Policy

(* ------------------------------------------------------------------ *)
(* Machine and configuration sampling                                  *)
(* ------------------------------------------------------------------ *)

(* Weighted toward the paper's 16-byte machine, with the full supported
   range represented. *)
let vector_lengths = [| 4; 8; 16; 16; 16; 16; 32; 64 |]

let gen_machine prng =
  Simd_machine.Config.create ~vector_len:(Prng.pick_array prng vector_lengths)

let reuses =
  [| Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining |]

(** [gen_config prng ~machine] — a uniform-ish draw over the driver's whole
    configuration lattice. The peeling baseline is sampled rarely: it
    refuses most loops, which wastes budget. *)
let gen_config prng ~machine : Driver.config =
  {
    Driver.machine;
    policy = Prng.pick prng Policy.all;
    reuse = Prng.pick_array prng reuses;
    memnorm = Prng.bool prng;
    reassoc = Prng.bool prng;
    cse = Prng.bool prng;
    hoist_splats = Prng.bool prng;
    unroll = Prng.pick_array prng [| 1; 1; 1; 1; 2; 2; 3; 4 |];
    specialize_epilogue = Prng.bool prng;
    peel_baseline = Prng.chance prng 0.05;
    (* [gen_case] flips this from the setup seed's parity: deriving it
       instead of drawing keeps every historical seed's program/config
       stream intact while still exercising the pass on half the cases. *)
    cleanup = false;
  }

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  prng : Prng.t;
  ty : Ast.elem_ty;
  d : int;  (** element width *)
  v : int;  (** vector length *)
  block : int;
  mutable decls : (string * Ast.base_align) list;  (** reversed *)
  mutable refs : Ast.mem_ref list;  (** every reference, for array sizing *)
  mutable load_pool : Ast.mem_ref list;  (** reusable load references *)
  mutable params : string list;  (** reversed *)
  mutable fresh : int;
}

let fresh_name ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

(* Stream offsets in [0, 2B+2]: small enough to keep arrays compact, large
   enough to wrap chunk boundaries at every element width. *)
let gen_offset ctx =
  if Prng.chance ctx.prng 0.3 then 0
  else Prng.range ctx.prng ~lo:0 ~hi:((2 * ctx.block) + 2)

let gen_alignment ctx =
  if Prng.chance ctx.prng 0.2 then Ast.Unknown
  else Ast.Known (Prng.int ctx.prng ~bound:ctx.block * ctx.d)

(** A fresh array declaration plus a reference into it. Lengths are
    computed at the end from the collected references. *)
let fresh_ref ctx ~prefix ~stride =
  let name = fresh_name ctx prefix in
  ctx.decls <- (name, gen_alignment ctx) :: ctx.decls;
  let r = { Ast.ref_array = name; ref_offset = gen_offset ctx; ref_stride = stride } in
  ctx.refs <- r :: ctx.refs;
  r

let gen_load_ref ctx =
  let r =
    if ctx.load_pool <> [] && Prng.chance ctx.prng 0.35 then begin
      let prev = Prng.pick ctx.prng ctx.load_pool in
      (* Half the time revisit the same array at a different offset (FIR
         shape — the predictive-commoning stress case). *)
      if Prng.bool ctx.prng then prev
      else { prev with Ast.ref_offset = gen_offset ctx }
    end
    else
      let stride =
        if Prng.chance ctx.prng 0.15 then Prng.pick ctx.prng [ 2; 4 ] else 1
      in
      fresh_ref ctx ~prefix:"x" ~stride
  in
  ctx.refs <- r :: ctx.refs;
  ctx.load_pool <- r :: ctx.load_pool;
  r

(* Interesting constants: identities, sign boundaries of every lane width,
   and full-range noise. Int64.min_int is excluded — its negation does not
   round-trip through the printer's [(-c)] form. *)
let const_pool =
  [|
    0L; 1L; 2L; -1L; 3L; 7L; 127L; 128L; 255L; 256L; -128L; 32767L; -32768L;
    65535L; 2147483647L; -2147483648L; 4294967295L; Int64.max_int;
    Int64.neg Int64.max_int;
  |]

let gen_const ctx =
  if Prng.chance ctx.prng 0.7 then Prng.pick_array ctx.prng const_pool
  else Int64.of_int (Prng.range ctx.prng ~lo:(-1000) ~hi:1000)

let gen_param ctx =
  if ctx.params <> [] && Prng.chance ctx.prng 0.5 then Prng.pick ctx.prng ctx.params
  else begin
    let p = fresh_name ctx "p" in
    ctx.params <- p :: ctx.params;
    p
  end

let all_ops =
  [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Min; Ast.Max; Ast.And; Ast.Or; Ast.Xor |]

let reduce_ops = [| Ast.Add; Ast.Mul; Ast.Min; Ast.Max; Ast.And; Ast.Or; Ast.Xor |]
let all_cmps = [| Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne |]

let rec gen_expr ctx ~depth =
  if depth = 0 || Prng.chance ctx.prng 0.3 then
    (* leaf *)
    let roll = Prng.float ctx.prng in
    if roll < 0.62 then Ast.Load (gen_load_ref ctx)
    else if roll < 0.8 then Ast.Const (gen_const ctx)
    else Ast.Param (gen_param ctx)
  else if Prng.chance ctx.prng 0.12 then
    Ast.Select
      ( gen_cond ctx ~depth:(depth - 1),
        gen_expr ctx ~depth:(depth - 1),
        gen_expr ctx ~depth:(depth - 1) )
  else
    Ast.Binop
      ( Prng.pick_array ctx.prng all_ops,
        gen_expr ctx ~depth:(depth - 1),
        gen_expr ctx ~depth:(depth - 1) )

(* Guard/select conditions: usually a load against a splat threshold (the
   paper-shaped predication case), sometimes arbitrary expressions on both
   sides. *)
and gen_cond ctx ~depth =
  let cl =
    if Prng.chance ctx.prng 0.75 then Ast.Load (gen_load_ref ctx)
    else gen_expr ctx ~depth
  in
  let cr =
    let roll = Prng.float ctx.prng in
    if roll < 0.45 then Ast.Const (gen_const ctx)
    else if roll < 0.7 then Ast.Param (gen_param ctx)
    else gen_expr ctx ~depth
  in
  { Ast.cmp = Prng.pick_array ctx.prng all_cmps; cl; cr }

let gen_guard ctx ~chance =
  if Prng.chance ctx.prng chance then Some (gen_cond ctx ~depth:1) else None

(** One or two statements: plain/guarded stores, guarded reductions
    (if-converted to identity-selects downstream), and — the two-element
    case — a complementary if/else pair over one store, which
    {!Simd_mask.Mask.if_convert} merges into a [select]. *)
let gen_stmt ctx =
  let rhs = gen_expr ctx ~depth:(Prng.range ctx.prng ~lo:1 ~hi:3) in
  if Prng.chance ctx.prng 0.2 then begin
    (* reduction into a fresh one-element accumulator *)
    let name = fresh_name ctx "s" in
    ctx.decls <- (name, gen_alignment ctx) :: ctx.decls;
    let lhs = { Ast.ref_array = name; ref_offset = 0; ref_stride = 1 } in
    [
      {
        Ast.lhs;
        rhs;
        kind = Ast.Reduce (Prng.pick_array ctx.prng reduce_ops);
        guard = gen_guard ctx ~chance:0.25;
      };
    ]
  end
  else
    let lhs = fresh_ref ctx ~prefix:"y" ~stride:1 in
    if Prng.chance ctx.prng 0.1 then
      (* complementary if/else pair storing to the same array *)
      let g = gen_cond ctx ~depth:1 in
      [
        { Ast.lhs; rhs; kind = Ast.Assign; guard = Some g };
        {
          Ast.lhs;
          rhs = gen_expr ctx ~depth:(Prng.range ctx.prng ~lo:1 ~hi:3);
          kind = Ast.Assign;
          guard = Some (Ast.negate_cond g);
        };
      ]
    else [ { Ast.lhs; rhs; kind = Ast.Assign; guard = gen_guard ctx ~chance:0.2 } ]

(** Trip counts concentrate on the regions the guard logic carves out:
    comfortably simdizable, straddling [3B], and guard-fallback small. *)
let gen_trip_value ctx =
  let b = ctx.block in
  let roll = Prng.float ctx.prng in
  if roll < 0.5 then Prng.range ctx.prng ~lo:((3 * b) + 1) ~hi:(6 * b)
  else if roll < 0.7 then Prng.range ctx.prng ~lo:((3 * b) - 1) ~hi:((3 * b) + 2)
  else if roll < 0.85 then Prng.range ctx.prng ~lo:1 ~hi:(b + 2)
  else Prng.range ctx.prng ~lo:1 ~hi:((8 * b) + 5)

(** [gen_program prng ~machine] — one well-formed program, with the trip
    value to run it at when the bound is a runtime parameter. *)
let gen_program prng ~machine : Ast.program * int option =
  let v = Simd_machine.Config.vector_len machine in
  let widths = List.filter (fun w -> w <= v) [ 1; 2; 4; 8 ] in
  let ty = Ast.elem_ty_of_width (Prng.pick prng widths) in
  let d = Ast.elem_width ty in
  let ctx =
    {
      prng;
      ty;
      d;
      v;
      block = v / d;
      decls = [];
      refs = [];
      load_pool = [];
      params = [];
      fresh = 0;
    }
  in
  let n_stmts = Prng.pick_array prng [| 1; 1; 1; 2; 2; 3; 4 |] in
  let body = List.concat (List.init n_stmts (fun _ -> gen_stmt ctx)) in
  let trip_value = gen_trip_value ctx in
  let runtime_trip = Prng.chance prng 0.35 in
  let trip, trip_override, params =
    if runtime_trip then begin
      let p = "n" in
      (Ast.Trip_param p, Some trip_value, List.rev ctx.params @ [ p ])
    end
    else (Ast.Trip_const trip_value, None, List.rev ctx.params)
  in
  (* Size every array to cover its references at the effective trip count,
     plus a little random slack so lengths are not always tight. *)
  let needed name =
    List.fold_left
      (fun acc (r : Ast.mem_ref) ->
        if r.Ast.ref_array = name then
          max acc ((r.Ast.ref_stride * (trip_value - 1)) + r.Ast.ref_offset + 1)
        else acc)
      1 ctx.refs
  in
  let arrays =
    List.rev_map
      (fun (name, align) ->
        {
          Ast.arr_name = name;
          arr_ty = ty;
          arr_len = needed name + Prng.int prng ~bound:4;
          arr_align = align;
        })
      ctx.decls
  in
  ( { Ast.arrays; params; loop = { Ast.counter = "i"; trip; body } },
    trip_override )

(** [gen_case prng] — one complete fuzz case: machine, program, driver
    configuration, and simulation seed, all drawn from [prng]. The result
    always passes {!Analysis.check} under its own machine. *)
let gen_case prng : Case.t =
  let rec try_gen attempts =
    let machine = gen_machine prng in
    let program, trip = gen_program prng ~machine in
    let config = gen_config prng ~machine in
    let setup_seed = Prng.int prng ~bound:1_000_000 in
    let config = { config with Driver.cleanup = setup_seed land 1 = 1 } in
    (* Check the if-converted program, exactly as the driver will: raw
       guarded reductions are rejected by design until normalized. *)
    match Analysis.check ~machine (Simd_mask.Mask.apply program) with
    | Ok _ -> { Case.program; config; trip; setup_seed }
    | Error e ->
      (* Unreachable for a correct generator; regenerate rather than feed
         the oracle an illegal program, but fail loudly if it persists. *)
      if attempts > 5 then
        invalid_arg
          (Printf.sprintf "Genloop.gen_case: generator produced illegal \
                           programs repeatedly (%s)"
             (Analysis.error_to_string e))
      else try_gen (attempts + 1)
  in
  try_gen 0
