(** Greedy test-case shrinking: minimize a failing case's program and
    configuration while preserving the failure class. All proposed variants
    are strictly smaller under a well-founded measure, so shrinking
    terminates; [max_steps] additionally bounds oracle runs. *)

val normalize : Case.t -> Case.t
(** Drop arrays and params nothing references. *)

val candidates : Case.t -> Case.t list
(** All one-step-smaller variants, in the order they are tried. *)

val minimize :
  ?max_steps:int -> ?oracle:(Case.t -> Oracle.outcome) -> Case.t -> Case.t
(** Shrink a failing case greedily (default oracle {!Oracle.run}, default
    budget 1500 oracle runs). A non-failing case is returned unchanged. *)
