(** A fuzz case: one loop program plus everything needed to replay its
    differential check — driver configuration, concrete trip count for
    runtime bounds, and the simulation seed. Serializes to a [.simd] file
    whose comment header carries the replay data, so reproducers double as
    ordinary corpus programs. *)

open Simd_loopir

type t = {
  program : Ast.program;
  config : Simd_codegen.Driver.config;
  trip : int option;  (** concrete trip count when the bound is a param *)
  setup_seed : int;  (** seed for array placement and memory noise *)
}

val effective_trip : t -> int
(** The trip count the simulation runs with. Raises [Invalid_argument] on a
    runtime-bound case with no trip value. *)

val reuse_of_name : string -> Simd_codegen.Driver.reuse option
val config_to_string : Simd_codegen.Driver.config -> string

val to_string : t -> string
val of_string : string -> (t, string) result

val to_file : string -> t -> unit
val of_file : string -> (t, string) result

val pp : Format.formatter -> t -> unit
