(** A fuzz case: one loop program plus everything needed to replay its
    differential check bit-for-bit — the sampled driver configuration, the
    concrete trip count for runtime bounds, and the simulation seed that
    fixes array placement and memory noise.

    Cases serialize to ordinary [.simd] files whose header carries the
    replay data in comment lines the lexer already skips, so a committed
    reproducer is simultaneously a valid corpus program:

    {v
      // simd-fuzz reproducer
      // fuzz-config: vl=16 policy=dominant reuse=sp memnorm=1 reassoc=0
      //              cse=1 hoist=1 unroll=2 specialize=1 peel=0 seed=77
      // fuzz-trip: 40
      int32 y1[44] @ 4;
      ...
    v}

    (The [fuzz-config] line is a single line in practice; [fuzz-trip] is
    present only for runtime-bound loops.) *)

open Simd_loopir
module Driver = Simd_codegen.Driver
module Policy = Simd_dreorg.Policy

type t = {
  program : Ast.program;
  config : Driver.config;
  trip : int option;  (** concrete trip count when the bound is a param *)
  setup_seed : int;  (** seed for array placement and memory noise *)
}

(** [effective_trip case] — the trip count the simulation runs with. *)
let effective_trip (c : t) =
  match c.program.Ast.loop.Ast.trip with
  | Ast.Trip_const n -> n
  | Ast.Trip_param _ -> (
    match c.trip with
    | Some n -> n
    | None -> invalid_arg "Case.effective_trip: runtime trip without a value")

(* ------------------------------------------------------------------ *)
(* Config field names                                                  *)
(* ------------------------------------------------------------------ *)

let reuse_of_name = function
  | "plain" -> Some Driver.No_reuse
  | "pc" -> Some Driver.Predictive_commoning
  | "sp" -> Some Driver.Software_pipelining
  | _ -> None

let bool_field b = if b then "1" else "0"

let config_to_string (cfg : Driver.config) =
  Printf.sprintf
    "vl=%d policy=%s reuse=%s memnorm=%s reassoc=%s cse=%s hoist=%s \
     unroll=%d specialize=%s peel=%s cleanup=%s"
    (Simd_machine.Config.vector_len cfg.Driver.machine)
    (Policy.name cfg.Driver.policy)
    (Driver.reuse_name cfg.Driver.reuse)
    (bool_field cfg.Driver.memnorm) (bool_field cfg.Driver.reassoc)
    (bool_field cfg.Driver.cse)
    (bool_field cfg.Driver.hoist_splats)
    cfg.Driver.unroll
    (bool_field cfg.Driver.specialize_epilogue)
    (bool_field cfg.Driver.peel_baseline)
    (bool_field cfg.Driver.cleanup)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let to_string (c : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "// simd-fuzz reproducer\n";
  Buffer.add_string buf
    (Printf.sprintf "// fuzz-config: %s seed=%d\n" (config_to_string c.config)
       c.setup_seed);
  (match c.trip with
  | Some t -> Buffer.add_string buf (Printf.sprintf "// fuzz-trip: %d\n" t)
  | None -> ());
  Buffer.add_string buf (Pp.program_to_string c.program);
  Buffer.contents buf

exception Bad_header of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad_header m)) fmt

let parse_kv token =
  match String.index_opt token '=' with
  | Some i ->
    ( String.sub token 0 i,
      String.sub token (i + 1) (String.length token - i - 1) )
  | None -> fail "malformed field %S (expected key=value)" token

let parse_bool key = function
  | "0" | "false" -> false
  | "1" | "true" -> true
  | v -> fail "field %s: expected boolean, got %S" key v

let parse_int key v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> fail "field %s: expected integer, got %S" key v

let apply_field (cfg, seed) (key, v) =
  let open Driver in
  match key with
  | "vl" -> ({ cfg with machine = Simd_machine.Config.create ~vector_len:(parse_int key v) }, seed)
  | "policy" -> (
    match Policy.of_name v with
    | Some p -> ({ cfg with policy = p }, seed)
    | None -> fail "unknown policy %S" v)
  | "reuse" -> (
    match reuse_of_name v with
    | Some r -> ({ cfg with reuse = r }, seed)
    | None -> fail "unknown reuse strategy %S" v)
  | "memnorm" -> ({ cfg with memnorm = parse_bool key v }, seed)
  | "reassoc" -> ({ cfg with reassoc = parse_bool key v }, seed)
  | "cse" -> ({ cfg with cse = parse_bool key v }, seed)
  | "hoist" -> ({ cfg with hoist_splats = parse_bool key v }, seed)
  | "unroll" -> ({ cfg with unroll = parse_int key v }, seed)
  | "specialize" -> ({ cfg with specialize_epilogue = parse_bool key v }, seed)
  | "peel" -> ({ cfg with peel_baseline = parse_bool key v }, seed)
  | "cleanup" -> ({ cfg with cleanup = parse_bool key v }, seed)
  | "seed" -> (cfg, parse_int key v)
  | _ -> fail "unknown field %S" key

let header_payload ~prefix line =
  let line = String.trim line in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.trim (String.sub line (String.length prefix)
                            (String.length line - String.length prefix)))
  else None

let of_string src : (t, string) result =
  try
    let lines = String.split_on_char '\n' src in
    let cfg = ref Driver.default in
    let seed = ref 0x5EED in
    let trip = ref None in
    List.iter
      (fun line ->
        (match header_payload ~prefix:"// fuzz-config:" line with
        | Some payload ->
          let tokens =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' payload)
          in
          let cfg', seed' =
            List.fold_left
              (fun acc tok -> apply_field acc (parse_kv tok))
              (!cfg, !seed) tokens
          in
          cfg := cfg';
          seed := seed'
        | None -> ());
        match header_payload ~prefix:"// fuzz-trip:" line with
        | Some payload -> trip := Some (parse_int "fuzz-trip" payload)
        | None -> ())
      lines;
    match Parse.program_of_string_result src with
    | Error m -> Error m
    | Ok program ->
      Ok { program; config = !cfg; trip = !trip; setup_seed = !seed }
  with
  | Bad_header m -> Error ("bad fuzz header: " ^ m)
  | Invalid_argument m -> Error ("bad fuzz header: " ^ m)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let to_file path (c : t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))

let of_file path : (t, string) result =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match of_string src with
  | Ok c -> Ok c
  | Error m -> Error (Printf.sprintf "%s: %s" path m)

let pp fmt (c : t) =
  Format.fprintf fmt "config: %s seed=%d%s@\n%a" (config_to_string c.config)
    c.setup_seed
    (match c.trip with Some t -> Printf.sprintf " trip=%d" t | None -> "")
    Pp.pp_program c.program
