(** The differential oracle: run one fuzz case through the scalar
    interpreter and the full simdization pipeline on identical noise-filled
    memory (via {!Simd_bench.Measure.verify}) and classify the outcome.

    [Pass] — byte-identical arenas (including the guard-fallback path for
    trips below the [3B] bound). [Skipped] — the driver legitimately left
    the loop scalar (trip guard with a compile-time bound, peeling baseline
    refusals). [Static_violation] — the pass-boundary verifier
    ({!Simd_check.Check}, run first) refuted an alignment or
    well-formedness invariant: a miscompilation caught without executing
    anything. [Divergence] — the simdized execution produced different
    memory than the scalar oracle: a miscompilation. [Crash] — the compiler
    or simulator raised: an internal invariant broke. *)

module Driver = Simd_codegen.Driver
module Measure = Simd_bench.Measure

type outcome =
  | Pass
  | Skipped of string
  | Static_violation of string
  | Divergence of string
  | Crash of string

let is_failure = function
  | Pass | Skipped _ -> false
  | Static_violation _ | Divergence _ | Crash _ -> true

(** [same_class a b] — same outcome constructor (shrinking preserves the
    failure class, not the exact message). *)
let same_class a b =
  match (a, b) with
  | Pass, Pass -> true
  | Skipped _, Skipped _ -> true
  | Static_violation _, Static_violation _ -> true
  | Divergence _, Divergence _ -> true
  | Crash _, Crash _ -> true
  | _ -> false

let outcome_name = function
  | Pass -> "pass"
  | Skipped _ -> "skipped"
  | Static_violation _ -> "static_violation"
  | Divergence _ -> "divergence"
  | Crash _ -> "crash"

let pp_outcome fmt = function
  | Pass -> Format.pp_print_string fmt "pass"
  | Skipped m -> Format.fprintf fmt "skipped (%s)" m
  | Static_violation m -> Format.fprintf fmt "STATIC VIOLATION: %s" m
  | Divergence m -> Format.fprintf fmt "DIVERGENCE: %s" m
  | Crash m -> Format.fprintf fmt "CRASH: %s" m

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The static half of the oracle: compile once with the pass-boundary
   verifier on and surface the first Error-severity violation, prefixed
   with the boundary that introduced it. Scalar fallbacks and warnings
   fall through to the dynamic differential below. *)
let static_check (c : Case.t) : string option =
  match Driver.simdize ~check:true c.Case.config c.Case.program with
  | Driver.Scalar _ -> None
  | Driver.Simdized o -> (
    match
      List.filter
        (fun ((_ : string), (v : Driver.Check.violation)) ->
          v.Driver.Check.severity = Driver.Check.Error)
        (Driver.check_violations o)
    with
    | [] -> None
    | (boundary, v) :: _ ->
      Some
        (Printf.sprintf "at %s: %s" boundary
           (Driver.Check.violation_to_string v)))

(** [run case] — classify one case: the static verifier first (a refuted
    invariant is a miscompilation even when the arenas happen to agree),
    then the dynamic differential. Never raises: compiler and simulator
    exceptions are folded into [Crash]. *)
let run (c : Case.t) : outcome =
  match static_check c with
  | Some msg -> Static_violation msg
  | None | (exception _) -> (
    match
      Measure.verify ~config:c.Case.config ~setup_seed:c.Case.setup_seed
        ?trip:c.Case.trip c.Case.program
    with
    | Ok () -> Pass
    | Error m when starts_with ~prefix:"not simdized" m -> Skipped m
    | Error m -> Divergence m
    | exception e -> Crash (Printexc.to_string e))
