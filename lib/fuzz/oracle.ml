(** The differential oracle: run one fuzz case through the scalar
    interpreter and the full simdization pipeline on identical noise-filled
    memory (via {!Simd_bench.Measure.verify}) and classify the outcome.

    [Pass] — byte-identical arenas (including the guard-fallback path for
    trips below the [3B] bound). [Skipped] — the driver legitimately left
    the loop scalar (trip guard with a compile-time bound, peeling baseline
    refusals). [Divergence] — the simdized execution produced different
    memory than the scalar oracle: a miscompilation. [Crash] — the compiler
    or simulator raised: an internal invariant broke. *)

module Driver = Simd_codegen.Driver
module Measure = Simd_bench.Measure

type outcome =
  | Pass
  | Skipped of string
  | Divergence of string
  | Crash of string

let is_failure = function
  | Pass | Skipped _ -> false
  | Divergence _ | Crash _ -> true

(** [same_class a b] — same outcome constructor (shrinking preserves the
    failure class, not the exact message). *)
let same_class a b =
  match (a, b) with
  | Pass, Pass -> true
  | Skipped _, Skipped _ -> true
  | Divergence _, Divergence _ -> true
  | Crash _, Crash _ -> true
  | _ -> false

let outcome_name = function
  | Pass -> "pass"
  | Skipped _ -> "skipped"
  | Divergence _ -> "divergence"
  | Crash _ -> "crash"

let pp_outcome fmt = function
  | Pass -> Format.pp_print_string fmt "pass"
  | Skipped m -> Format.fprintf fmt "skipped (%s)" m
  | Divergence m -> Format.fprintf fmt "DIVERGENCE: %s" m
  | Crash m -> Format.fprintf fmt "CRASH: %s" m

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** [run case] — classify one case. Never raises: compiler and simulator
    exceptions are folded into [Crash]. *)
let run (c : Case.t) : outcome =
  match
    Measure.verify ~config:c.Case.config ~setup_seed:c.Case.setup_seed
      ?trip:c.Case.trip c.Case.program
  with
  | Ok () -> Pass
  | Error m when starts_with ~prefix:"not simdized" m -> Skipped m
  | Error m -> Divergence m
  | exception e -> Crash (Printexc.to_string e)
