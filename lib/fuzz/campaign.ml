(** Fuzzing campaigns: generate a budget of cases from one seed, classify
    each through the oracle, and minimize every failure. Everything is
    driven by the seed — two campaigns with the same seed and budget
    produce identical cases, outcomes, and minimized reproducers. *)

module Prng = Simd_support.Prng

type stats = {
  total : int;
  passed : int;
  skipped : int;
  divergences : int;
  crashes : int;
}

let zero_stats = { total = 0; passed = 0; skipped = 0; divergences = 0; crashes = 0 }

let count (s : stats) (o : Oracle.outcome) =
  let s = { s with total = s.total + 1 } in
  match o with
  | Oracle.Pass -> { s with passed = s.passed + 1 }
  | Oracle.Skipped _ -> { s with skipped = s.skipped + 1 }
  | Oracle.Divergence _ -> { s with divergences = s.divergences + 1 }
  | Oracle.Crash _ -> { s with crashes = s.crashes + 1 }

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "%d cases: %d passed, %d skipped, %d divergences, %d crashes" s.total
    s.passed s.skipped s.divergences s.crashes

type failure = {
  index : int;  (** 0-based case number within the campaign *)
  case : Case.t;
  minimized : Case.t;
  outcome : Oracle.outcome;
  culprit : Bisect.verdict option;
      (** pipeline bisection of the minimized case — the first pass whose
          output diverges; [None] when bisection was not requested *)
}

(** [run ~seed ~budget ()] — generate and check [budget] cases derived from
    [seed]. [shrink] (default true) minimizes each failure;
    [shrink_steps] bounds each minimization; [bisect] (default true) names
    the first diverging pass of each minimized failure. [on_case] observes
    every (index, case, outcome) as it happens — the CLI uses it for
    progress, tests for determinism checks. *)
let run ?(shrink = true) ?(shrink_steps = 1500) ?(bisect = true)
    ?(on_case = fun _ _ _ -> ()) ~seed ~budget () : stats * failure list =
  let prng = Prng.create ~seed in
  let stats = ref zero_stats in
  let failures = ref [] in
  for index = 0 to budget - 1 do
    let case = Genloop.gen_case prng in
    let outcome = Oracle.run case in
    on_case index case outcome;
    stats := count !stats outcome;
    if Oracle.is_failure outcome then begin
      let minimized =
        if shrink then Shrink.minimize ~max_steps:shrink_steps case else case
      in
      let culprit = if bisect then Some (Bisect.run minimized) else None in
      failures := { index; case; minimized; outcome; culprit } :: !failures
    end
  done;
  (!stats, List.rev !failures)
