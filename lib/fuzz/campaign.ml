(** Fuzzing campaigns: generate a budget of cases from one seed, classify
    each through the oracle, and minimize every failure. Everything is
    driven by the seed — two campaigns with the same seed and budget
    produce identical cases, outcomes, and minimized reproducers.

    Campaigns come in two shapes:

    - {!run}: the original single-stream loop — one {!Simd_support.Prng}
      stream drives all [budget] cases in order.
    - {!plan} / {!run_chunk} / {!merge}: deterministic chunked sharding,
      the unit of work of the parallel pool ({!Simd_par}). The campaign
      seed derives one independent PRNG stream per fixed-size chunk
      (SplitMix64 stream splitting), so a chunk's cases, outcomes, and
      minimized reproducers depend only on [(seed, chunk index)] — never
      on which worker ran it or how many workers there were. Merging the
      chunk results in index order therefore yields byte-identical
      aggregate output for any [--jobs N]. *)

module Prng = Simd_support.Prng
module Json = Simd_support.Json

type stats = {
  total : int;
  passed : int;
  skipped : int;
  static_violations : int;
  divergences : int;
  crashes : int;
}

let zero_stats =
  {
    total = 0;
    passed = 0;
    skipped = 0;
    static_violations = 0;
    divergences = 0;
    crashes = 0;
  }

let count (s : stats) (o : Oracle.outcome) =
  let s = { s with total = s.total + 1 } in
  match o with
  | Oracle.Pass -> { s with passed = s.passed + 1 }
  | Oracle.Skipped _ -> { s with skipped = s.skipped + 1 }
  | Oracle.Static_violation _ ->
    { s with static_violations = s.static_violations + 1 }
  | Oracle.Divergence _ -> { s with divergences = s.divergences + 1 }
  | Oracle.Crash _ -> { s with crashes = s.crashes + 1 }

let add_stats a b =
  {
    total = a.total + b.total;
    passed = a.passed + b.passed;
    skipped = a.skipped + b.skipped;
    static_violations = a.static_violations + b.static_violations;
    divergences = a.divergences + b.divergences;
    crashes = a.crashes + b.crashes;
  }

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "%d cases: %d passed, %d skipped, %d static violations, %d divergences, \
     %d crashes"
    s.total s.passed s.skipped s.static_violations s.divergences s.crashes

let stats_to_json (s : stats) : Json.t =
  Json.Obj
    [
      ("total", Json.Int s.total);
      ("passed", Json.Int s.passed);
      ("skipped", Json.Int s.skipped);
      ("static_violations", Json.Int s.static_violations);
      ("divergences", Json.Int s.divergences);
      ("crashes", Json.Int s.crashes);
    ]

type failure = {
  index : int;  (** 0-based case number within the campaign *)
  case : Case.t;
  minimized : Case.t;
  outcome : Oracle.outcome;
  culprit : Bisect.verdict option;
      (** pipeline bisection of the minimized case — the first pass whose
          output diverges; [None] when bisection was not requested *)
}

(* ------------------------------------------------------------------ *)
(* Shared case loop                                                    *)
(* ------------------------------------------------------------------ *)

let check_cases ~shrink ~shrink_steps ~bisect ~oracle ~on_case ~prng ~first
    ~count:n =
  let stats = ref zero_stats in
  let failures = ref [] in
  for local = 0 to n - 1 do
    let index = first + local in
    let case = Genloop.gen_case prng in
    let outcome = oracle case in
    on_case index case outcome;
    stats := count !stats outcome;
    if Oracle.is_failure outcome then begin
      let minimized =
        if shrink then Shrink.minimize ~max_steps:shrink_steps ~oracle case
        else case
      in
      let culprit = if bisect then Some (Bisect.run minimized) else None in
      failures := { index; case; minimized; outcome; culprit } :: !failures
    end
  done;
  (!stats, List.rev !failures)

(** [run ~seed ~budget ()] — generate and check [budget] cases derived from
    [seed]. [shrink] (default true) minimizes each failure;
    [shrink_steps] bounds each minimization; [bisect] (default true) names
    the first diverging pass of each minimized failure; [oracle] (default
    {!Oracle.run}) classifies each case and drives shrinking. [on_case]
    observes every (index, case, outcome) as it happens — the CLI uses it
    for progress, tests for determinism checks. *)
let run ?(shrink = true) ?(shrink_steps = 1500) ?(bisect = true)
    ?(oracle = Oracle.run) ?(on_case = fun _ _ _ -> ()) ~seed ~budget () :
    stats * failure list =
  let prng = Prng.create ~seed in
  check_cases ~shrink ~shrink_steps ~bisect ~oracle ~on_case ~prng ~first:0
    ~count:budget

(* ------------------------------------------------------------------ *)
(* Deterministic chunked sharding                                      *)
(* ------------------------------------------------------------------ *)

let default_chunk_size = 50

type chunk = {
  chunk_index : int;  (** position in the plan, 0-based *)
  chunk_seed : int;  (** split PRNG stream for this chunk alone *)
  first : int;  (** campaign index of the chunk's first case *)
  size : int;  (** number of cases in this chunk *)
}

(** [plan ~seed ~budget ()] — the campaign's chunk list. Chunk seeds are
    drawn sequentially from a root stream seeded by [seed], so chunk [k]'s
    seed is a function of [(seed, k)] only: the plan is identical no
    matter how the chunks are later scheduled. *)
let plan ?(chunk_size = default_chunk_size) ~seed ~budget () : chunk list =
  if chunk_size <= 0 then invalid_arg "Campaign.plan: chunk_size must be positive";
  if budget < 0 then invalid_arg "Campaign.plan: negative budget";
  let root = Prng.create ~seed in
  let nchunks = (budget + chunk_size - 1) / chunk_size in
  let chunks = ref [] in
  for k = 0 to nchunks - 1 do
    (* [land max_int] clears the sign bit: chunk seeds are non-negative
       ints, printable and replayable on their own. *)
    let chunk_seed = Int64.to_int (Prng.next_int64 root) land max_int in
    chunks :=
      {
        chunk_index = k;
        chunk_seed;
        first = k * chunk_size;
        size = min chunk_size (budget - (k * chunk_size));
      }
      :: !chunks
  done;
  List.rev !chunks

(** [run_chunk chunk] — check one chunk's cases: a pure function of the
    chunk (given the oracle), independent of every other chunk. Failure
    indices are campaign-global. *)
let run_chunk ?(shrink = true) ?(shrink_steps = 1500) ?(bisect = true)
    ?(oracle = Oracle.run) ?(on_case = fun _ _ _ -> ()) (c : chunk) :
    stats * failure list =
  let prng = Prng.create ~seed:c.chunk_seed in
  check_cases ~shrink ~shrink_steps ~bisect ~oracle ~on_case ~prng
    ~first:c.first ~count:c.size

(** [merge results] — aggregate per-chunk results (given in plan order)
    into campaign totals; failures come back sorted by campaign index. *)
let merge (results : (stats * failure list) list) : stats * failure list =
  let stats = List.fold_left (fun acc (s, _) -> add_stats acc s) zero_stats results in
  let failures =
    List.concat_map snd results
    |> List.sort (fun a b -> compare a.index b.index)
  in
  (stats, failures)
