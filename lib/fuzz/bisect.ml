(** Pipeline bisection of a failing fuzz case: name the first optimization
    pass whose output diverges.

    Every optional pass of the driver pipeline is config-gated, so no
    driver surgery is needed: bisection re-runs the differential oracle on
    the same case with config prefixes of the pipeline, in application
    order. With [k] passes enabled the oracle exercises exactly the
    pipeline up to pass [k]; the first [k] whose enablement flips the
    verdict from pass to failure names the culprit. At most
    [length passes + 1] oracle runs per case — each a full scalar-vs-simd
    differential check, so a named culprit means "the first pass whose
    enablement produces an observably wrong compilation", not a guess from
    IR shape. *)

module Driver = Simd_codegen.Driver
module Trace = Simd_trace.Trace

type verdict =
  | First_diverging of string
      (** the named pass is the earliest whose enablement makes the case
          fail; all prefixes before it pass *)
  | Core
      (** the case fails even with every optional pass disabled: the
          divergence is in placement/generation, not a pass *)
  | Vanished
      (** the full configured pipeline passes on re-run — not bisectable
          (e.g. the failure needed a configuration this case no longer
          expresses) *)

let verdict_name = function
  | First_diverging p -> p
  | Core -> "core (placement/generation)"
  | Vanished -> "vanished"

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_name v)

(* [disable_from config names] — turn off every pass in [names]. A pass
   absent from the case's configuration (pc when reuse isn't pc, unroll at
   factor 1) is already off; disabling it is the identity, which is what
   keeps prefix semantics honest. *)
let disable name (c : Driver.config) : Driver.config =
  match name with
  | "reassoc" -> { c with Driver.reassoc = false }
  | "hoist_splats" -> { c with Driver.hoist_splats = false }
  | "memnorm" -> { c with Driver.memnorm = false }
  | "cse" -> { c with Driver.cse = false }
  | "predictive_commoning" ->
    if c.Driver.reuse = Driver.Predictive_commoning then
      { c with Driver.reuse = Driver.No_reuse }
    else c
  | "unroll" -> { c with Driver.unroll = 1 }
  | "specialize_epilogue" -> { c with Driver.specialize_epilogue = false }
  | "vir_cleanup" -> { c with Driver.cleanup = false }
  | _ -> invalid_arg ("Bisect.disable: unknown pass " ^ name)

(* Is this pass actually on in the case's configuration? Disabled passes
   cannot be culprits and are skipped when reporting. *)
let enabled_in (c : Driver.config) name =
  match name with
  | "reassoc" -> c.Driver.reassoc
  | "hoist_splats" -> c.Driver.hoist_splats
  | "memnorm" -> c.Driver.memnorm
  | "cse" -> c.Driver.cse
  | "predictive_commoning" -> c.Driver.reuse = Driver.Predictive_commoning
  | "unroll" -> c.Driver.unroll > 1
  | "specialize_epilogue" -> c.Driver.specialize_epilogue
  | "vir_cleanup" -> c.Driver.cleanup
  | _ -> false

let with_prefix (case : Case.t) k : Case.t =
  (* keep the first [k] pipeline passes at the case's setting, disable the
     rest *)
  let _, config =
    List.fold_left
      (fun (i, c) name -> (i + 1, if i < k then c else disable name c))
      (0, case.Case.config) Trace.pass_names
  in
  { case with Case.config }

(** [run case] — bisect a failing [case]. Deterministic: same case, same
    verdict. [on_step] (diagnostics) sees each probed prefix length and
    its outcome. *)
let run ?(on_step = fun _ _ -> ()) (case : Case.t) : verdict =
  let outcome_at k =
    let o = Oracle.run (with_prefix case k) in
    on_step k o;
    o
  in
  let n = List.length Trace.pass_names in
  if not (Oracle.is_failure (outcome_at n)) then Vanished
  else if Oracle.is_failure (outcome_at 0) then Core
  else begin
    (* Linear scan, not binary search: pass interactions need not be
       monotone (a later pass can mask an earlier divergence), and the
       scan's invariant — every shorter prefix passed — is exactly what
       "first diverging" means. At most [n + 1] oracle runs. *)
    let rec scan k =
      if k > n then
        (* prefix n failed above but every scanned prefix passed: only
           possible with a non-deterministic oracle, which [Oracle.run]
           rules out *)
        assert false
      else if Oracle.is_failure (outcome_at k) then
        List.nth Trace.pass_names (k - 1)
      else scan (k + 1)
    in
    (* The flip pass is necessarily enabled in the case's configuration:
       disabling an already-off pass is the identity, and identical
       configurations produce identical outcomes. *)
    First_diverging (scan 1)
  end
