(** Greedy test-case shrinking.

    Starting from a failing case, repeatedly try "one step smaller"
    variants — of the program (drop statements, replace expressions by
    subexpressions, demote loads/params to constants, shrink offsets,
    strides, alignments, trip counts, and array lengths) and of the
    configuration (disable passes, lower the policy/reuse/unroll/vector
    length) — keeping any variant that still fails with the same outcome
    class. Every proposed variant is strictly smaller under a well-founded
    measure, so the greedy loop terminates; a step budget additionally
    bounds the number of oracle runs.

    The result is the smallest reproducer this rewrite system can reach:
    what gets committed to [corpus/fuzz/] and replayed as a regression. *)

open Simd_loopir
module Driver = Simd_codegen.Driver
module Policy = Simd_dreorg.Policy
module Util = Simd_support.Util

(* ------------------------------------------------------------------ *)
(* Normalization: drop arrays and params nothing references            *)
(* ------------------------------------------------------------------ *)

let used_arrays (p : Ast.program) =
  List.map (fun (r : Ast.mem_ref) -> r.Ast.ref_array) (Ast.program_refs p)
  @ List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Reduce _ -> Some s.Ast.lhs.Ast.ref_array
        | Ast.Assign -> None)
      p.Ast.loop.Ast.body

let stmt_params (s : Ast.stmt) =
  Ast.expr_params s.Ast.rhs
  @
  match s.Ast.guard with
  | None -> []
  | Some g -> Ast.expr_params g.Ast.cl @ Ast.expr_params g.Ast.cr

let used_params (p : Ast.program) =
  (match p.Ast.loop.Ast.trip with
  | Ast.Trip_param x -> [ x ]
  | Ast.Trip_const _ -> [])
  @ List.concat_map stmt_params p.Ast.loop.Ast.body

let normalize (c : Case.t) : Case.t =
  let p = c.Case.program in
  let arrays_used = used_arrays p in
  let params_used = used_params p in
  let program =
    {
      p with
      Ast.arrays =
        List.filter (fun (d : Ast.array_decl) -> List.mem d.Ast.arr_name arrays_used)
          p.Ast.arrays;
      params = List.filter (fun x -> List.mem x params_used) p.Ast.params;
    }
  in
  { c with Case.program }

(* ------------------------------------------------------------------ *)
(* One-step-smaller variants                                           *)
(* ------------------------------------------------------------------ *)

let ref_variants (r : Ast.mem_ref) : Ast.mem_ref list =
  (if r.Ast.ref_stride > 1 then [ { r with Ast.ref_stride = 1 } ] else [])
  @
  if r.Ast.ref_offset > 0 then
    List.map
      (fun o -> { r with Ast.ref_offset = o })
      (Util.dedup [ 0; r.Ast.ref_offset / 2; r.Ast.ref_offset - 1 ])
  else []

let rec expr_variants (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Binop (op, a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Ast.Binop (op, a', b)) (expr_variants a)
    @ List.map (fun b' -> Ast.Binop (op, a, b')) (expr_variants b)
  | Ast.Select (c, a, b) ->
    (* Either arm alone, or a one-step-smaller condition or arm. *)
    [ a; b ]
    @ List.map (fun c' -> Ast.Select (c', a, b)) (cond_variants c)
    @ List.map (fun a' -> Ast.Select (c, a', b)) (expr_variants a)
    @ List.map (fun b' -> Ast.Select (c, a, b')) (expr_variants b)
  | Ast.Load r ->
    List.map (fun r' -> Ast.Load r') (ref_variants r) @ [ Ast.Const 1L ]
  | Ast.Param _ -> [ Ast.Const 1L ]
  | Ast.Const c -> if c = 0L then [] else [ Ast.Const 0L ]

and cond_variants (c : Ast.cond) : Ast.cond list =
  List.map (fun cl -> { c with Ast.cl }) (expr_variants c.Ast.cl)
  @ List.map (fun cr -> { c with Ast.cr }) (expr_variants c.Ast.cr)

let stmt_variants (s : Ast.stmt) : Ast.stmt list =
  (* Dropping the guard is the biggest predication shrink; it survives only
     when the failure class persists unguarded (the greedy loop re-checks
     every candidate against the oracle). *)
  (match s.Ast.guard with
  | Some g ->
    { s with Ast.guard = None }
    :: List.map (fun g' -> { s with Ast.guard = Some g' }) (cond_variants g)
  | None -> [])
  @ List.map (fun rhs -> { s with Ast.rhs }) (expr_variants s.Ast.rhs)
  @
  match s.Ast.kind with
  | Ast.Assign ->
    List.map (fun lhs -> { s with Ast.lhs }) (ref_variants s.Ast.lhs)
  | Ast.Reduce _ -> []

(* Replace element [i] of [xs] by each of [f (List.nth xs i)]. *)
let at_each xs f =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if i = j then x' else y) xs)
           (f x))
       xs)

let with_program (c : Case.t) program = { c with Case.program }

let body_variants (c : Case.t) : Case.t list =
  let p = c.Case.program in
  let body = p.Ast.loop.Ast.body in
  let drops =
    if List.length body > 1 then
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) body) body
    else []
  in
  List.map
    (fun body' ->
      with_program c { p with Ast.loop = { p.Ast.loop with Ast.body = body' } })
    (drops @ at_each body stmt_variants)

let trip_variants (c : Case.t) : Case.t list =
  let p = c.Case.program in
  match p.Ast.loop.Ast.trip with
  | Ast.Trip_param _ ->
    (* Pin the runtime bound to its concrete value. *)
    let t = Case.effective_trip c in
    [
      {
        (with_program c
           { p with Ast.loop = { p.Ast.loop with Ast.trip = Ast.Trip_const t } })
        with
        Case.trip = None;
      };
    ]
    @ (match c.Case.trip with
      | Some t when t > 1 ->
        List.filter_map
          (fun t' ->
            if t' >= 1 && t' < t then Some { c with Case.trip = Some t' } else None)
          (Util.dedup [ t / 2; t - 1 ])
      | _ -> [])
  | Ast.Trip_const n ->
    List.filter_map
      (fun n' ->
        if n' >= 1 && n' < n then
          Some
            (with_program c
               { p with Ast.loop = { p.Ast.loop with Ast.trip = Ast.Trip_const n' } })
        else None)
      (Util.dedup [ n / 2; n - 1 ])

let array_variants (c : Case.t) : Case.t list =
  let p = c.Case.program in
  let trip = try Some (Case.effective_trip c) with Invalid_argument _ -> None in
  let needed (d : Ast.array_decl) =
    match trip with
    | None -> d.Ast.arr_len
    | Some t ->
      List.fold_left
        (fun acc (r : Ast.mem_ref) ->
          if r.Ast.ref_array = d.Ast.arr_name then
            max acc ((r.Ast.ref_stride * (t - 1)) + r.Ast.ref_offset + 1)
          else acc)
        1
        (Ast.program_refs p)
  in
  let decl_variants (d : Ast.array_decl) =
    let elem = Ast.elem_width d.Ast.arr_ty in
    let aligns =
      match d.Ast.arr_align with
      | Ast.Unknown -> [ Ast.Known 0 ]
      | Ast.Known k when k > 0 ->
        List.map (fun k' -> Ast.Known k')
          (Util.dedup [ 0; (k / 2 / elem) * elem; k - elem ])
      | Ast.Known _ -> []
    in
    List.map (fun a -> { d with Ast.arr_align = a }) aligns
    @
    let n = needed d in
    if n < d.Ast.arr_len then [ { d with Ast.arr_len = n } ] else []
  in
  List.map
    (fun arrays -> with_program c { p with Ast.arrays })
    (at_each p.Ast.arrays decl_variants)

(* Lower-is-simpler ranks: only strictly descending moves are proposed, so
   the shrink loop cannot cycle. *)
let policy_rank = function
  | Policy.Zero -> 0
  | Policy.Eager -> 1
  | Policy.Lazy -> 2
  | Policy.Dominant -> 3
  | Policy.Optimal -> 4
  | Policy.Auto -> 5
  | Policy.Joint -> 6

let reuse_rank = function
  | Driver.No_reuse -> 0
  | Driver.Predictive_commoning -> 1
  | Driver.Software_pipelining -> 2

let config_variants (c : Case.t) : Case.t list =
  let cfg = c.Case.config in
  let open Driver in
  let with_cfg config = { c with Case.config } in
  List.map with_cfg
    (List.filter_map
       (fun p ->
         if policy_rank p < policy_rank cfg.policy then Some { cfg with policy = p }
         else None)
       [
         Policy.Zero;
         Policy.Eager;
         Policy.Lazy;
         Policy.Dominant;
         Policy.Optimal;
         Policy.Auto;
       ]
    @ List.filter_map
        (fun r ->
          if reuse_rank r < reuse_rank cfg.reuse then Some { cfg with reuse = r }
          else None)
        [ No_reuse; Predictive_commoning ]
    @ (if cfg.memnorm then [ { cfg with memnorm = false } ] else [])
    @ (if cfg.reassoc then [ { cfg with reassoc = false } ] else [])
    @ (if cfg.cse then [ { cfg with cse = false } ] else [])
    @ (if cfg.hoist_splats then [ { cfg with hoist_splats = false } ] else [])
    @ (if cfg.unroll > 1 then
         List.map (fun u -> { cfg with unroll = u })
           (Util.dedup [ 1; cfg.unroll - 1 ])
       else [])
    @ (if cfg.specialize_epilogue then
         [ { cfg with specialize_epilogue = false } ]
       else [])
    @ (if cfg.peel_baseline then [ { cfg with peel_baseline = false } ] else [])
    @
    let vl = Simd_machine.Config.vector_len cfg.machine in
    List.filter_map
      (fun vl' ->
        if vl' < vl then
          Some { cfg with machine = Simd_machine.Config.create ~vector_len:vl' }
        else None)
      [ 16; 8; 4 ])

let seed_variants (c : Case.t) : Case.t list =
  if c.Case.setup_seed > 1 then
    [ { c with Case.setup_seed = 0 }; { c with Case.setup_seed = 1 } ]
  else if c.Case.setup_seed = 1 then [ { c with Case.setup_seed = 0 } ]
  else []

let candidates (c : Case.t) : Case.t list =
  body_variants c @ trip_variants c @ config_variants c @ array_variants c
  @ seed_variants c

(* ------------------------------------------------------------------ *)
(* The greedy loop                                                     *)
(* ------------------------------------------------------------------ *)

(** [minimize ?max_steps ?oracle case] — greedily shrink a failing case,
    preserving the outcome class reported by [oracle] (default
    {!Oracle.run}). Returns the input unchanged when it does not fail.
    [max_steps] bounds the number of oracle invocations (default 1500). *)
let minimize ?(max_steps = 1500) ?(oracle = Oracle.run) (c0 : Case.t) : Case.t =
  let target = oracle c0 in
  if not (Oracle.is_failure target) then c0
  else begin
    let steps = ref 0 in
    let still_fails cand =
      if !steps >= max_steps then false
      else begin
        incr steps;
        Oracle.same_class (oracle cand) target
      end
    in
    let rec loop current =
      if !steps >= max_steps then current
      else
        match
          List.find_opt still_fails (List.map normalize (candidates current))
        with
        | Some smaller -> loop smaller
        | None -> current
    in
    loop (normalize c0)
  end
