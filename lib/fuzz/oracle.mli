(** Differential oracle: scalar interpreter vs. simdized execution on
    identical memory, with outcomes classified for the fuzzer. *)

type outcome =
  | Pass  (** byte-identical arenas *)
  | Skipped of string  (** legitimately left scalar *)
  | Static_violation of string
      (** the pass-boundary verifier refuted an invariant *)
  | Divergence of string  (** miscompilation: arenas differ *)
  | Crash of string  (** compiler/simulator raised *)

val is_failure : outcome -> bool
val same_class : outcome -> outcome -> bool
val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

val run : Case.t -> outcome
(** Classify one case: static verifier first ([Static_violation] when a
    [~check:true] compilation reports an error-severity violation), then
    the dynamic differential. Never raises. *)
