(** Seeded random program generator covering the full accepted surface of
    the loop language: all element widths, strides, offsets, runtime and
    compile-time alignments and trip counts, reductions, parameters,
    constants, and every operator. Programs are well-formed by
    construction; all draws come from one {!Simd_support.Prng} stream. *)

open Simd_loopir

val gen_machine : Simd_support.Prng.t -> Simd_machine.Config.t

val gen_config :
  Simd_support.Prng.t ->
  machine:Simd_machine.Config.t ->
  Simd_codegen.Driver.config

val gen_program :
  Simd_support.Prng.t ->
  machine:Simd_machine.Config.t ->
  Ast.program * int option
(** One well-formed program plus the trip value to run it at when the
    bound is a runtime parameter. *)

val gen_case : Simd_support.Prng.t -> Case.t
(** One complete fuzz case (machine + program + config + simulation seed).
    Always passes {!Simd_loopir.Analysis.check} under its own machine. *)
