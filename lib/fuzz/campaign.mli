(** Fuzzing campaigns: a seeded, reproducible budget of generated cases
    classified through the oracle, with failures minimized. *)

type stats = {
  total : int;
  passed : int;
  skipped : int;
  divergences : int;
  crashes : int;
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

type failure = {
  index : int;  (** 0-based case number within the campaign *)
  case : Case.t;
  minimized : Case.t;
  outcome : Oracle.outcome;
}

val run :
  ?shrink:bool ->
  ?shrink_steps:int ->
  ?on_case:(int -> Case.t -> Oracle.outcome -> unit) ->
  seed:int ->
  budget:int ->
  unit ->
  stats * failure list
(** Same seed and budget ⇒ identical cases, outcomes, and reproducers. *)
