(** Fuzzing campaigns: a seeded, reproducible budget of generated cases
    classified through the oracle, with failures minimized. *)

type stats = {
  total : int;
  passed : int;
  skipped : int;
  divergences : int;
  crashes : int;
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

type failure = {
  index : int;  (** 0-based case number within the campaign *)
  case : Case.t;
  minimized : Case.t;
  outcome : Oracle.outcome;
  culprit : Bisect.verdict option;
      (** pipeline bisection of the minimized case — the first pass whose
          output diverges; [None] when bisection was not requested *)
}

val run :
  ?shrink:bool ->
  ?shrink_steps:int ->
  ?bisect:bool ->
  ?on_case:(int -> Case.t -> Oracle.outcome -> unit) ->
  seed:int ->
  budget:int ->
  unit ->
  stats * failure list
(** Same seed and budget ⇒ identical cases, outcomes, reproducers, and
    bisection verdicts. [bisect] (default true) runs {!Bisect.run} on each
    minimized failure. *)
