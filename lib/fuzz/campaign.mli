(** Fuzzing campaigns: a seeded, reproducible budget of generated cases
    classified through the oracle, with failures minimized.

    {!run} is the single-stream loop; {!plan}/{!run_chunk}/{!merge} are
    the deterministic chunked form the parallel pool ({!Simd_par})
    schedules: each chunk's PRNG stream is split from the campaign seed,
    so aggregate results are byte-identical for any worker count. *)

type stats = {
  total : int;
  passed : int;
  skipped : int;
  static_violations : int;
  divergences : int;
  crashes : int;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit
val stats_to_json : stats -> Simd_support.Json.t

type failure = {
  index : int;  (** 0-based case number within the campaign *)
  case : Case.t;
  minimized : Case.t;
  outcome : Oracle.outcome;
  culprit : Bisect.verdict option;
      (** pipeline bisection of the minimized case — the first pass whose
          output diverges; [None] when bisection was not requested *)
}

val run :
  ?shrink:bool ->
  ?shrink_steps:int ->
  ?bisect:bool ->
  ?oracle:(Case.t -> Oracle.outcome) ->
  ?on_case:(int -> Case.t -> Oracle.outcome -> unit) ->
  seed:int ->
  budget:int ->
  unit ->
  stats * failure list
(** Same seed and budget ⇒ identical cases, outcomes, reproducers, and
    bisection verdicts. [bisect] (default true) runs {!Bisect.run} on each
    minimized failure; [oracle] (default {!Oracle.run}) classifies cases
    and drives shrinking. *)

(** {2 Deterministic chunked sharding} *)

val default_chunk_size : int
(** 50 cases per chunk. *)

type chunk = {
  chunk_index : int;  (** position in the plan, 0-based *)
  chunk_seed : int;  (** split PRNG stream for this chunk alone *)
  first : int;  (** campaign index of the chunk's first case *)
  size : int;  (** number of cases in this chunk *)
}

val plan : ?chunk_size:int -> seed:int -> budget:int -> unit -> chunk list
(** The campaign's chunk list. Chunk [k]'s seed is a function of
    [(seed, k)] only — the plan never depends on scheduling. *)

val run_chunk :
  ?shrink:bool ->
  ?shrink_steps:int ->
  ?bisect:bool ->
  ?oracle:(Case.t -> Oracle.outcome) ->
  ?on_case:(int -> Case.t -> Oracle.outcome -> unit) ->
  chunk ->
  stats * failure list
(** Check one chunk — a pure function of the chunk (given the oracle),
    independent of every other chunk. Failure indices are
    campaign-global. *)

val merge : (stats * failure list) list -> stats * failure list
(** Aggregate per-chunk results (in plan order) into campaign totals;
    failures sorted by campaign index. *)
