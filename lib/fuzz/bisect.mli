(** Pipeline bisection of a failing fuzz case: name the first optimization
    pass whose output diverges.

    Every optional pass of the driver pipeline is config-gated, so
    bisection needs no driver surgery: it re-runs the differential oracle
    on the same case with config prefixes of
    {!Simd_trace.Trace.pass_names} in application order, and reports the
    first prefix length whose enablement flips the verdict from pass to
    failure. At most [n + 1] oracle runs per case, each a full
    scalar-vs-simd differential check. *)

type verdict =
  | First_diverging of string
      (** the named pass is the earliest whose enablement makes the case
          fail; every shorter prefix passes *)
  | Core
      (** the case fails even with all optional passes disabled: the
          divergence is in placement or generation, not a pass *)
  | Vanished
      (** the full configured pipeline passes on re-run — not bisectable *)

val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

val disable : string -> Simd_codegen.Driver.config -> Simd_codegen.Driver.config
(** [disable pass config] — [config] with the named pipeline pass turned
    off. Disabling a pass the configuration never enabled is the identity.
    Raises [Invalid_argument] on an unknown pass name. *)

val enabled_in : Simd_codegen.Driver.config -> string -> bool
(** Is the named pipeline pass actually on in this configuration? *)

val with_prefix : Case.t -> int -> Case.t
(** [with_prefix case k] — the case reconfigured to run only the first [k]
    pipeline passes (the rest disabled). *)

val run : ?on_step:(int -> Oracle.outcome -> unit) -> Case.t -> verdict
(** Bisect a failing case. Deterministic: same case, same verdict.
    [on_step] observes each probed prefix length and its outcome. *)
