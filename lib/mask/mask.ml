(** If-conversion (the predication extension).

    The parser attaches the guard of an [if] block to every statement
    inside it — the then-branch statements carry the condition, the
    else-branch statements its syntactic complement — and performs no
    rewriting of its own. This pass normalizes the guarded body into the
    forms the rest of the pipeline handles best:

    - {b Complementary stores merge into selects.} A pair of guarded
      assignments to the same element with complementary guards
      ([if (c) a\[i\] = x; if (!c) a\[i\] = y]) writes every iteration, so
      it becomes the single unguarded statement
      [a\[i\] = select(c, x, y)] — one unmasked store and one [vsel]
      instead of two masked stores and two mask streams. Reordering the
      pair to the first occurrence is safe because the legality analysis
      forbids any aliasing between stored and loaded arrays, so no
      statement between the two can observe the store.
    - {b Guarded reductions become identity-selects.} [acc op= rhs] under
      guard [c] accumulates [rhs] exactly in the iterations where [c]
      holds, which is the unguarded [acc op= select(c, rhs, e)] with [e]
      the identity of [op] at the accumulator's width. Operators without
      an identity keep their guard and are rejected downstream
      ({!Simd_loopir.Analysis}), with a message pointing back here.

    Statements whose guard has no complementary partner stay guarded and
    lower to masked stores ([vsel]-blended on targets without a native
    masked store), with the mask stream placed at the store offset like
    the value stream. *)

open Simd_loopir

(** What {!if_convert} did, for reports and tests. *)
type stats = {
  merged_selects : int;
      (** complementary guarded store pairs merged into [select]s *)
  rewritten_reductions : int;
      (** guarded reductions rewritten to identity-selects *)
  residual_guards : int;
      (** statements still guarded after conversion (masked stores) *)
}
[@@deriving show { with_path = false }, eq]

(* Find, later in the list, an assignment to the same element under the
   complementary guard; return it and the list without it. *)
let find_partner (s : Ast.stmt) (g : Ast.cond) rest =
  let rec go pre = function
    | [] -> None
    | (s' : Ast.stmt) :: tl
      when s'.Ast.kind = Ast.Assign
           && Ast.equal_mem_ref s'.Ast.lhs s.Ast.lhs
           &&
           match s'.Ast.guard with
           | Some g' -> Ast.complementary g g'
           | None -> false ->
      Some (s', List.rev_append pre tl)
    | s' :: tl -> go (s' :: pre) tl
  in
  go [] rest

(** [if_convert program] — normalize guards as described above; returns
    the rewritten program and conversion statistics. Idempotent: a second
    application is the identity. *)
let if_convert (program : Ast.program) : Ast.program * stats =
  let merged = ref 0 and rewritten = ref 0 in
  let rec convert acc = function
    | [] -> List.rev acc
    | (s : Ast.stmt) :: rest -> (
      match (s.Ast.kind, s.Ast.guard) with
      | Ast.Assign, Some g -> (
        match find_partner s g rest with
        | Some (s', rest') ->
          incr merged;
          let select = Ast.Select (g, s.Ast.rhs, s'.Ast.rhs) in
          convert ({ s with Ast.rhs = select; guard = None } :: acc) rest'
        | None -> convert (s :: acc) rest)
      | Ast.Reduce op, Some g -> (
        let ty =
          match Ast.find_array program s.Ast.lhs.Ast.ref_array with
          | Some d -> Some d.Ast.arr_ty
          | None -> None (* undeclared accumulator: let Analysis diagnose *)
        in
        match Option.bind ty (fun ty -> Ast.reduction_identity op ~ty) with
        | Some e ->
          incr rewritten;
          let select = Ast.Select (g, s.Ast.rhs, Ast.Const e) in
          convert ({ s with Ast.rhs = select; guard = None } :: acc) rest
        | None -> convert (s :: acc) rest)
      | _, None -> convert (s :: acc) rest)
  in
  let body = convert [] program.Ast.loop.Ast.body in
  let residual =
    List.length (List.filter (fun (s : Ast.stmt) -> s.Ast.guard <> None) body)
  in
  ( {
      program with
      Ast.loop = { program.Ast.loop with Ast.body = body };
    },
    {
      merged_selects = !merged;
      rewritten_reductions = !rewritten;
      residual_guards = residual;
    } )

(** [apply program] — {!if_convert} without the statistics. *)
let apply program = fst (if_convert program)

(** [guarded program] — does any statement carry a guard (before or after
    conversion)? Drivers use this to decide whether mask machinery is
    involved at all. *)
let guarded (program : Ast.program) =
  List.exists
    (fun (s : Ast.stmt) -> s.Ast.guard <> None)
    program.Ast.loop.Ast.body
