(** If-conversion for the predication extension ([Simd.Mask]): merge
    complementary guarded store pairs into [select] statements, rewrite
    guarded reductions to identity-selects, and leave residual guards to
    lower as masked stores. Run by the driver before legality analysis. *)

(** What {!if_convert} did, for reports and tests. *)
type stats = {
  merged_selects : int;
      (** complementary guarded store pairs merged into [select]s *)
  rewritten_reductions : int;
      (** guarded reductions rewritten to identity-selects *)
  residual_guards : int;
      (** statements still guarded after conversion (masked stores) *)
}
[@@deriving show, eq]

val if_convert :
  Simd_loopir.Ast.program -> Simd_loopir.Ast.program * stats
(** Normalize guards; idempotent. *)

val apply : Simd_loopir.Ast.program -> Simd_loopir.Ast.program
(** {!if_convert} without the statistics. *)

val guarded : Simd_loopir.Ast.program -> bool
(** Does any body statement carry a guard? *)
