(** The "compile once" half of the service: one request in, one artifact
    out — a pure function hoisted out of the driver front ends so the
    server, the load generator, the bench harness, and tests all share
    the same path.

    [run] parses, simdizes under the request's configuration with the
    static verifier on, prices the result ({!Simd_opt.Report}), and emits
    the requested code sections. The outcome (and hence its JSON
    document) is a pure function of (source, config, emits,
    {!Protocol.library_version}) — which is exactly the artifact-cache
    key, so serving from cache is indistinguishable from recompiling. *)

module Json = Simd_support.Json
module Cas = Simd_support.Cas

(** One requested code section: the emitted text, or the reason the
    emit was skipped (an ISA backend whose native vector length differs
    from the request's [vl] — skipped, not failed). *)
type output = Text of string | Skipped of string

type artifact = {
  policy : string;  (** requested placement policy (by name) *)
  policies_used : string list;  (** per statement, after fallbacks *)
  shared_streams : int;
  outputs : (string * output) list;
      (** emit name → output, in request order: ["vir"], ["c"], ... *)
  report : Json.t;  (** the {!Simd_opt.Report} cost document *)
  check_ok : bool;  (** no error-severity static-verifier violations *)
  check : Json.t;  (** per-boundary violations + discharged facts *)
  lint : Json.t;  (** the simd-lint/1 report ({!Simd_lint.Lint}) *)
}

type outcome =
  | Artifact of artifact
  | Scalar of string  (** driver legitimately declined; the reason *)
  | Invalid of string  (** unparseable source or illegal loop *)

val run : Protocol.request -> outcome
(** Compile, ignoring [request.id]. Never raises: parser and driver
    errors become {!Invalid}/{!Scalar}. *)

val outcome_to_json : outcome -> Json.t
(** The response payload: [{"status":"ok","artifact":{...}}],
    [{"status":"scalar","reason":...}], or
    [{"status":"error","message":...}]. Deterministic. *)

val cache_key : Protocol.request -> string
(** {!Simd_support.Cas.key} over library version × canonical config ×
    emit selection × source. The id is excluded — identical work shares
    one entry regardless of who asks. *)

val run_cached : Cas.t -> Protocol.request -> Json.t * [ `Hit | `Miss ]
(** The outcome document, served from the store when present. A cached
    document that fails to parse (impossible under the store's integrity
    envelope, but defended anyway) is rebuilt, never served. *)
