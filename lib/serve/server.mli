(** The "serve many" half: a long-lived compile server over
    newline-delimited JSON ({!Protocol}), batching, caching, and
    isolating requests.

    {b Batching}: the server blocks for one request line, then drains
    whatever further lines are already available (up to [max_batch]) and
    processes them as one batch. Within a batch, requests with the same
    cache key are compiled once. Responses always come back in request
    order.

    {b Caching}: with a store attached, every compile outcome is served
    from / written to the content-addressed artifact cache
    ({!Compile.run_cached}'s key). Because outcomes are deterministic, a
    hit is byte-identical to a recompile — cache state never shows in
    responses, only in telemetry.

    {b Isolation}: with [jobs ≥ 2], cache misses are compiled in forked
    workers from the {!Simd_par.Pool} with a per-request wall-clock
    [timeout] — a pathological program crashes or times out its worker
    and earns an error response; the server and the rest of the batch
    are unaffected. [jobs ≤ 1] compiles inline (fastest for trusted
    input, no isolation).

    {b Observability}: per-request latency, batch/queue depth, outcome
    and cache counters, pool utilization — snapshot via {!telemetry}
    (JSON, schema [simd-serve/1]) or the [{"op":"stats"}] protocol
    request; batches also land as timed {!Simd_trace.Trace} notes. *)

module Json = Simd_support.Json
module Cas = Simd_support.Cas

type t

val create :
  ?jobs:int ->
  ?timeout:float ->
  ?max_batch:int ->
  ?cache:Cas.t ->
  ?trace:Simd_trace.Trace.t ->
  unit ->
  t
(** Defaults: [jobs = 1] (inline compilation), [timeout = 30.] seconds
    per pooled request (ignored inline), [max_batch = 64], no cache, no
    trace. *)

val cache : t -> Cas.t option

val telemetry : t -> Json.t
(** Deterministic counters plus wall-clock data (latency percentiles,
    uptime) — the [{"op":"stats"}] response body. *)

val handle_batch : t -> string list -> string list * bool
(** [handle_batch t lines] — responses (one per line, in order) and
    whether a shutdown request was seen. The core the I/O loops drive;
    exposed for the in-process tests and the bench harness. *)

val serve_fd : t -> Unix.file_descr -> Unix.file_descr -> [ `Eof | `Shutdown ]
(** Serve one connection: read request lines from the first descriptor,
    write response lines to the second, until EOF or [{"op":"shutdown"}].
    Pipe mode is [serve_fd t Unix.stdin Unix.stdout]. *)

val listen_unix : t -> path:string -> unit
(** Unix-domain-socket mode: bind [path] (replacing a stale socket file)
    and serve every accepted connection concurrently — connections are
    select-multiplexed in one process, each with its own reader state, so
    batching stays per-client. A client that disconnects mid-batch, sends
    a malformed stream, or provokes an exception only ends its own
    connection; [{"op":"shutdown"}] from any client stops the daemon
    (removing the socket). *)
