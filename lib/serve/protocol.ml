(** Wire protocol of the compile service (see the interface). *)

module Driver = Simd_codegen.Driver
module Policy = Simd_dreorg.Policy
module Machine = Simd_machine.Config
module Json = Simd_support.Json

let schema = "simd-serve/1"

(* Folded into every cache key. Bump when compilation output changes. *)
let library_version = "simd_align/10"

type emit = Vir | C | Altivec | Sse | Avx2 | Neon

let emit_name = function
  | Vir -> "vir"
  | C -> "c"
  | Altivec -> "altivec"
  | Sse -> "sse"
  | Avx2 -> "avx2"
  | Neon -> "neon"

let emit_of_name = function
  | "vir" -> Some Vir
  | "c" | "portable" -> Some C
  | "altivec" -> Some Altivec
  | "sse" -> Some Sse
  | "avx2" -> Some Avx2
  | "neon" -> Some Neon
  | _ -> None

let default_emits = [ Vir; C ]

type request = {
  id : string;
  source : string;
  config : Driver.config;
  emits : emit list;
}

type parsed =
  | Compile of request
  | Ping
  | Stats
  | Shutdown
  | Malformed of { id : string option; message : string }

(* ------------------------------------------------------------------ *)
(* Config codec: the fuzz-header field vocabulary, as JSON             *)
(* ------------------------------------------------------------------ *)

let reuse_name = Driver.reuse_name

let reuse_of_name = function
  | "plain" | "none" -> Some Driver.No_reuse
  | "pc" -> Some Driver.Predictive_commoning
  | "sp" -> Some Driver.Software_pipelining
  | _ -> None

let config_to_json (cfg : Driver.config) =
  Json.Obj
    [
      ("vl", Json.Int (Machine.vector_len cfg.Driver.machine));
      ("policy", Json.String (Policy.name cfg.Driver.policy));
      ("reuse", Json.String (reuse_name cfg.Driver.reuse));
      ("memnorm", Json.Bool cfg.Driver.memnorm);
      ("reassoc", Json.Bool cfg.Driver.reassoc);
      ("cse", Json.Bool cfg.Driver.cse);
      ("hoist", Json.Bool cfg.Driver.hoist_splats);
      ("unroll", Json.Int cfg.Driver.unroll);
      ("specialize", Json.Bool cfg.Driver.specialize_epilogue);
      ("peel", Json.Bool cfg.Driver.peel_baseline);
      ("cleanup", Json.Bool cfg.Driver.cleanup);
    ]

exception Bad_field of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_field m)) fmt

let as_int key = function
  | Json.Int n -> n
  | _ -> bad "config field %s: expected integer" key

let as_bool key v =
  match Json.to_bool_opt v with
  | Some b -> b
  | None -> bad "config field %s: expected boolean" key

let as_string key = function
  | Json.String s -> s
  | _ -> bad "config field %s: expected string" key

let apply_config_field cfg (key, v) =
  let open Driver in
  match key with
  | "vl" -> (
    match Machine.create ~vector_len:(as_int key v) with
    | machine -> { cfg with machine }
    | exception Invalid_argument m -> bad "%s" m)
  | "policy" -> (
    let name = as_string key v in
    match Policy.of_name name with
    | Some p -> { cfg with policy = p }
    | None -> bad "unknown policy %S" name)
  | "reuse" -> (
    let name = as_string key v in
    match reuse_of_name name with
    | Some r -> { cfg with reuse = r }
    | None -> bad "unknown reuse strategy %S" name)
  | "memnorm" -> { cfg with memnorm = as_bool key v }
  | "reassoc" -> { cfg with reassoc = as_bool key v }
  | "cse" -> { cfg with cse = as_bool key v }
  | "hoist" -> { cfg with hoist_splats = as_bool key v }
  | "unroll" -> { cfg with unroll = as_int key v }
  | "specialize" -> { cfg with specialize_epilogue = as_bool key v }
  | "peel" -> { cfg with peel_baseline = as_bool key v }
  | "cleanup" -> { cfg with cleanup = as_bool key v }
  | _ -> bad "unknown config field %S" key

let config_of_json = function
  | Json.Obj fields -> (
    try Ok (List.fold_left apply_config_field Driver.default fields)
    with Bad_field m -> Error m)
  | Json.Null -> Ok Driver.default
  | _ -> Error "config: expected an object"

let bool_field b = if b then "1" else "0"

let config_canonical (cfg : Driver.config) =
  Printf.sprintf
    "vl=%d policy=%s reuse=%s memnorm=%s reassoc=%s cse=%s hoist=%s \
     unroll=%d specialize=%s peel=%s cleanup=%s"
    (Machine.vector_len cfg.Driver.machine)
    (Policy.name cfg.Driver.policy)
    (reuse_name cfg.Driver.reuse)
    (bool_field cfg.Driver.memnorm)
    (bool_field cfg.Driver.reassoc)
    (bool_field cfg.Driver.cse)
    (bool_field cfg.Driver.hoist_splats)
    cfg.Driver.unroll
    (bool_field cfg.Driver.specialize_epilogue)
    (bool_field cfg.Driver.peel_baseline)
    (bool_field cfg.Driver.cleanup)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let parse_emits = function
  | None -> Ok default_emits
  | Some (Json.List items) -> (
    try
      Ok
        (List.map
           (fun item ->
             match item with
             | Json.String s -> (
               match emit_of_name s with
               | Some e -> e
               | None -> bad "unknown emit kind %S" s)
             | _ -> bad "emit: expected a list of strings")
           items)
    with Bad_field m -> Error m)
  | Some _ -> Error "emit: expected a list of strings"

let parse_line line : parsed =
  match Json.of_string line with
  | Error m -> Malformed { id = None; message = m }
  | Ok doc -> (
    let id = Option.bind (Json.member "id" doc) Json.to_string_opt in
    match Option.bind (Json.member "op" doc) Json.to_string_opt with
    | Some "ping" -> Ping
    | Some "stats" -> Stats
    | Some "shutdown" -> Shutdown
    | Some op -> Malformed { id; message = Printf.sprintf "unknown op %S" op }
    | None -> (
      match Option.bind (Json.member "source" doc) Json.to_string_opt with
      | None -> Malformed { id; message = "missing \"source\" (or \"op\")" }
      | Some source -> (
        match
          config_of_json
            (Option.value ~default:Json.Null (Json.member "config" doc))
        with
        | Error m -> Malformed { id; message = m }
        | Ok config -> (
          match parse_emits (Json.member "emit" doc) with
          | Error m -> Malformed { id; message = m }
          | Ok emits ->
            Compile { id = Option.value ~default:"" id; source; config; emits }
          ))))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let request_to_line (r : request) =
  Json.to_line
    (Json.Obj
       [
         ("id", Json.String r.id);
         ("source", Json.String r.source);
         ("config", config_to_json r.config);
         ( "emit",
           Json.List (List.map (fun e -> Json.String (emit_name e)) r.emits) );
       ])

let response_line ~id outcome_doc =
  match outcome_doc with
  | Json.Obj fields -> Json.to_line (Json.Obj (("id", Json.String id) :: fields))
  | other ->
    Json.to_line (Json.Obj [ ("id", Json.String id); ("outcome", other) ])

let error_response ~id message =
  response_line ~id
    (Json.Obj
       [ ("status", Json.String "error"); ("message", Json.String message) ])
