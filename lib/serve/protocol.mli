(** The compile-service wire protocol, [simd-serve/1]: newline-delimited
    JSON in both directions. One request object per line in, one response
    object per line out, responses in request order.

    A {e compile request} is a [.simd] source × driver configuration ×
    output selection:

    {v
      {"id":"r1",
       "source":"int32 a[64] @ 0; ...",
       "config":{"vl":16,"policy":"joint","reuse":"sp","unroll":2},
       "emit":["vir","c"]}
    v}

    Every [config] field is optional and defaults to the driver default;
    the field names and values are exactly the fuzz-header vocabulary of
    [docs/LANGUAGE.md] ([vl], [policy], [reuse], [memnorm], [reassoc],
    [cse], [hoist], [unroll], [specialize], [peel]). [emit] selects the
    artifact's code sections from ["vir"], ["c"], ["altivec"], ["sse"],
    ["avx2"], ["neon"] (default [["vir","c"]]). An ISA emit whose native
    vector length differs from the request's [vl] yields a skipped-output
    object instead of C text (see [docs/SERVER.md]) — the request still
    succeeds.

    {e Control requests} carry an [op] instead of a [source]:
    [{"op":"ping"}], [{"op":"stats"}] (telemetry snapshot — the one
    deliberately non-deterministic response), [{"op":"shutdown"}].

    Responses to compile requests are a pure function of
    (source, config, emit, library version) — byte-deterministic across
    runs, batch sizes, worker counts, and cache state. *)

module Driver = Simd_codegen.Driver
module Json = Simd_support.Json

val schema : string
(** ["simd-serve/1"]. *)

val library_version : string
(** Token folded into every cache key: bump it whenever compilation
    output can change, and stale artifacts become unreachable. *)

type emit = Vir | C | Altivec | Sse | Avx2 | Neon

val emit_name : emit -> string
val emit_of_name : string -> emit option
(** Accepts every {!emit_name} plus ["portable"] for [C]. *)

val default_emits : emit list
(** [[Vir; C]]. *)

type request = {
  id : string;  (** echoed verbatim in the response *)
  source : string;  (** the [.simd] program text *)
  config : Driver.config;
  emits : emit list;
}

type parsed =
  | Compile of request
  | Ping
  | Stats
  | Shutdown
  | Malformed of { id : string option; message : string }
      (** unparseable line or bad field — answered with an error
          response, never fatal to the server *)

val parse_line : string -> parsed

val config_of_json : Json.t -> (Driver.config, string) result
(** Read a config object (all fields optional over [Driver.default]).
    Rejects unknown fields — a typo must not silently compile under
    defaults. *)

val config_to_json : Driver.config -> Json.t
(** Full field set, canonical order — [config_of_json] inverts it. *)

val config_canonical : Driver.config -> string
(** Canonical [key=value] line for cache keys: two configs compare equal
    iff their canonical strings do. *)

val request_to_line : request -> string
(** The request rendered as one protocol line (load generator, tests). *)

val response_line : id:string -> Json.t -> string
(** Wrap an outcome document ({!Compile.outcome_to_json}) with the
    request id into one response line. *)

val error_response : id:string -> string -> string
(** An error-status response line. *)
