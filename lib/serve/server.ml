(** The serve-many loop (see the interface). *)

module Json = Simd_support.Json
module Cas = Simd_support.Cas
module Pool = Simd_par.Pool
module Trace = Simd_trace.Trace

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

type telemetry = {
  mutable requests : int;
  mutable ok : int;
  mutable scalar : int;
  mutable errors : int;
  mutable control : int;
  mutable batches : int;
  mutable max_depth : int;
  mutable depth_sum : int;
  mutable pool_dispatched : int;
  mutable pool_errors : int;
  mutable pool_timeouts : int;
  mutable pool_crashes : int;
  mutable latencies_ms : float list;  (** newest first *)
  mutable latency_count : int;
  started : float;
}

let fresh_telemetry () =
  {
    requests = 0;
    ok = 0;
    scalar = 0;
    errors = 0;
    control = 0;
    batches = 0;
    max_depth = 0;
    depth_sum = 0;
    pool_dispatched = 0;
    pool_errors = 0;
    pool_timeouts = 0;
    pool_crashes = 0;
    latencies_ms = [];
    latency_count = 0;
    started = Unix.gettimeofday ();
  }

(* Bound the latency log: keep the newest window, plenty for stable
   percentiles without unbounded growth in a long-lived daemon. *)
let latency_window = 65536

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

type t = {
  jobs : int;
  timeout : float option;
  max_batch : int;
  cache_store : Cas.t option;
  trace : Trace.t;
  tel : telemetry;
}

let create ?(jobs = 1) ?(timeout = 30.) ?(max_batch = 64) ?cache ?trace () =
  {
    jobs = max 1 jobs;
    timeout = (if timeout <= 0. then None else Some timeout);
    max_batch = max 1 max_batch;
    cache_store = cache;
    trace = Option.value ~default:Trace.none trace;
    tel = fresh_telemetry ();
  }

let cache t = t.cache_store

let telemetry t =
  let tel = t.tel in
  let sorted = Array.of_list tel.latencies_ms in
  Array.sort compare sorted;
  Json.Obj
    [
      ("schema", Json.String Protocol.schema);
      ("type", Json.String "telemetry");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. tel.started));
      ( "requests",
        Json.Obj
          [
            ("total", Json.Int tel.requests);
            ("ok", Json.Int tel.ok);
            ("scalar", Json.Int tel.scalar);
            ("errors", Json.Int tel.errors);
            ("control", Json.Int tel.control);
          ] );
      ( "batches",
        Json.Obj
          [
            ("count", Json.Int tel.batches);
            ("max_depth", Json.Int tel.max_depth);
            ( "mean_depth",
              Json.Float
                (if tel.batches = 0 then 0.
                 else float_of_int tel.depth_sum /. float_of_int tel.batches)
            );
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("samples", Json.Int tel.latency_count);
            ("p50", Json.Float (percentile sorted 0.50));
            ("p90", Json.Float (percentile sorted 0.90));
            ("p99", Json.Float (percentile sorted 0.99));
            ( "max",
              Json.Float
                (match Array.length sorted with
                | 0 -> 0.
                | n -> sorted.(n - 1)) );
          ] );
      ( "cache",
        match t.cache_store with
        | None -> Json.Null
        | Some cas -> Cas.stats_to_json (Cas.stats cas) );
      ( "pool",
        Json.Obj
          [
            ("jobs", Json.Int t.jobs);
            ("dispatched", Json.Int tel.pool_dispatched);
            ("errors", Json.Int tel.pool_errors);
            ("timeouts", Json.Int tel.pool_timeouts);
            ("crashes", Json.Int tel.pool_crashes);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

(* Outcome documents travel as their compact rendering ([Json.to_line]),
   so cache hits splice straight into response lines with no re-parse.
   [outcome_to_json] emits [status] first in every shape, which makes the
   telemetry classification a prefix test. *)
let count_status t payload =
  if String.starts_with ~prefix:{|{"status":"ok"|} payload then
    t.tel.ok <- t.tel.ok + 1
  else if String.starts_with ~prefix:{|{"status":"scalar"|} payload then
    t.tel.scalar <- t.tel.scalar + 1
  else t.tel.errors <- t.tel.errors + 1

(* Prepend the id field textually — byte-identical to rendering
   [Protocol.response_line ~id] over the parsed document, because the
   payload is our own compact rendering. *)
let response_of_payload ~id payload =
  if String.length payload > 2 && payload.[0] = '{' then
    Printf.sprintf "{\"id\":%s,%s"
      (Json.to_line (Json.String id))
      (String.sub payload 1 (String.length payload - 1))
  else
    match Json.of_string payload with
    | Ok doc -> Protocol.response_line ~id doc
    | Error _ -> Protocol.error_response ~id "internal: bad outcome payload"

(* One compile, no store involved: what a pooled worker runs. The result
   crosses the pipe as the serialized document. *)
let compile_to_line (r : Protocol.request) =
  Json.to_line (Compile.outcome_to_json (Compile.run r))

let pool_failure_doc t (res : string Pool.result) =
  (match res.Pool.outcome with
  | Pool.Job_error _ -> t.tel.pool_errors <- t.tel.pool_errors + 1
  | Pool.Timed_out _ -> t.tel.pool_timeouts <- t.tel.pool_timeouts + 1
  | Pool.Crashed _ -> t.tel.pool_crashes <- t.tel.pool_crashes + 1
  | Pool.Done _ -> ());
  let message =
    match res.Pool.outcome with
    | Pool.Done _ -> assert false
    | Pool.Job_error m -> "compile failed: " ^ m
    | Pool.Timed_out s -> Printf.sprintf "timed out after %.0f s" s
    | Pool.Crashed m -> "compile worker crashed: " ^ m
  in
  Json.to_line
    (Json.Obj
       [ ("status", Json.String "error"); ("message", Json.String message) ])

(* Compile a batch's unique requests: cache first, then the pool (or
   inline when [jobs <= 1]). Returns the compact outcome payload per
   key. *)
let execute_group t (unique : (string * Protocol.request) list) :
    (string * string) list =
  let hits, misses =
    match t.cache_store with
    | None -> ([], unique)
    | Some cas ->
      List.partition_map
        (fun (key, req) ->
          match Cas.find cas ~key with
          | Some payload -> Left (key, payload)
          | None -> Right (key, req))
        unique
  in
  let store_built key line =
    match t.cache_store with
    | None -> ()
    | Some cas -> Cas.store cas ~key line
  in
  let built =
    if misses = [] then []
    else if t.jobs <= 1 then
      List.map
        (fun (key, req) ->
          let line = compile_to_line req in
          store_built key line;
          (key, line))
        misses
    else begin
      let arr = Array.of_list misses in
      t.tel.pool_dispatched <- t.tel.pool_dispatched + Array.length arr;
      let results, _report =
        Pool.map ~workers:t.jobs ?timeout:t.timeout ~trace:t.trace
          (fun i -> compile_to_line (snd arr.(i)))
          (Array.length arr)
      in
      Array.to_list
        (Array.mapi
           (fun i (res : string Pool.result) ->
             let key = fst arr.(i) in
             match res.Pool.outcome with
             | Pool.Done line -> (
               (* validate before caching: cheap next to the compile *)
               match Json.of_string line with
               | Ok _ ->
                 store_built key line;
                 (key, line)
               | Error m ->
                 ( key,
                   Json.to_line
                     (Json.Obj
                        [
                          ("status", Json.String "error");
                          ( "message",
                            Json.String ("garbled worker reply: " ^ m) );
                        ]) ))
             | _ -> (key, pool_failure_doc t res))
           results)
    end
  in
  hits @ built

type slot =
  | Request of { id : string; key : string }
  | Immediate of string  (** a ready response line (control op, error) *)
  | Stats_slot  (** rendered at assembly time, after outcomes are counted *)
  | Shutdown_ack of string

let handle_batch t (lines : string list) : string list * bool =
  let t0 = Unix.gettimeofday () in
  let depth = List.length lines in
  t.tel.batches <- t.tel.batches + 1;
  t.tel.depth_sum <- t.tel.depth_sum + depth;
  if depth > t.tel.max_depth then t.tel.max_depth <- depth;
  (* Parse every line; collect the unique compile work. *)
  let seen : (string, Protocol.request) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let slots =
    List.map
      (fun line ->
        t.tel.requests <- t.tel.requests + 1;
        (* No parse-time exception may kill the serve loop: anything the
           parser lets escape becomes a malformed-request response. *)
        let parsed =
          try Protocol.parse_line line
          with e ->
            Protocol.Malformed
              { id = None; message = "internal: " ^ Printexc.to_string e }
        in
        match parsed with
        | Protocol.Compile req ->
          let key = Compile.cache_key req in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key req;
            order := (key, req) :: !order
          end;
          Request { id = req.Protocol.id; key }
        | Protocol.Ping ->
          t.tel.control <- t.tel.control + 1;
          Immediate (Json.to_line (Json.Obj [ ("op", Json.String "pong") ]))
        | Protocol.Stats ->
          t.tel.control <- t.tel.control + 1;
          Stats_slot
        | Protocol.Shutdown ->
          t.tel.control <- t.tel.control + 1;
          Shutdown_ack
            (Json.to_line
               (Json.Obj
                  [ ("op", Json.String "shutdown"); ("ok", Json.Bool true) ]))
        | Protocol.Malformed { id; message } ->
          t.tel.errors <- t.tel.errors + 1;
          Immediate
            (Protocol.error_response
               ~id:(Option.value ~default:"" id)
               message))
      lines
  in
  let docs = execute_group t (List.rev !order) in
  let shutdown = ref false in
  let responses =
    List.map
      (fun slot ->
        match slot with
        | Immediate line -> line
        | Stats_slot ->
          (* Requests earlier in the batch are already counted — a stats
             probe sees the batch it rode in on. *)
          Json.to_line (telemetry t)
        | Shutdown_ack line ->
          shutdown := true;
          line
        | Request { id; key } -> (
          match List.assoc_opt key docs with
          | Some payload ->
            count_status t payload;
            response_of_payload ~id payload
          | None ->
            (* unreachable: every Request key is in the group *)
            t.tel.errors <- t.tel.errors + 1;
            Protocol.error_response ~id "internal: missing outcome"))
      slots
  in
  (* One latency sample per request: what a client in this batch saw. *)
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let compiles = List.length !order in
  if depth > 0 then begin
    let rec add n acc = if n = 0 then acc else add (n - 1) (elapsed_ms :: acc) in
    t.tel.latencies_ms <- add depth t.tel.latencies_ms;
    t.tel.latency_count <- t.tel.latency_count + depth;
    if t.tel.latency_count > latency_window then begin
      (* trim to the newest window *)
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      t.tel.latencies_ms <- take latency_window t.tel.latencies_ms;
      t.tel.latency_count <- min t.tel.latency_count latency_window
    end
  end;
  if Trace.active t.trace then
    Trace.note t.trace ~timed:true ~label:"serve.batch"
      (Printf.sprintf "depth=%d unique_compiles=%d elapsed_ms=%.3f" depth
         compiles elapsed_ms);
  (responses, !shutdown)

(* ------------------------------------------------------------------ *)
(* Buffered line reader with pending-data detection                    *)
(* ------------------------------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  mutable partial : string;  (** bytes after the last newline *)
  queue : string Queue.t;  (** complete lines, oldest first *)
  mutable eof : bool;
}

let make_reader fd =
  { fd; chunk = Bytes.create 65536; partial = ""; queue = Queue.create (); eof = false }

(* No legitimate request line approaches this; a stream that exceeds it
   without a newline would otherwise grow [partial] without bound. The
   oversized prefix is flushed as a line of its own — it (and the rest of
   that actual line) parse as malformed and get error responses. *)
let max_partial = 8 * 1024 * 1024

let enqueue_line r l = if String.trim l <> "" then Queue.add l r.queue

let rec read_restart fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_restart fd buf off len

(* Pull one chunk off the descriptor. [block = false] reads only when
   select reports data ready right now — the batching probe. *)
let refill r ~block =
  if r.eof then false
  else
    let ready =
      block
      ||
      match Unix.select [ r.fd ] [] [] 0.0 with
      | readable, _, _ -> readable <> []
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then false
    else begin
      let n = read_restart r.fd r.chunk 0 (Bytes.length r.chunk) in
      if n = 0 then begin
        r.eof <- true;
        (* A final line without a trailing newline is still a request. *)
        if r.partial = "" then false
        else begin
          enqueue_line r r.partial;
          r.partial <- "";
          not (Queue.is_empty r.queue)
        end
      end
      else begin
        let data = r.partial ^ Bytes.sub_string r.chunk 0 n in
        let parts = String.split_on_char '\n' data in
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
          | [] -> ([], "")
        in
        let complete, partial = split_last [] parts in
        List.iter (enqueue_line r) complete;
        if String.length partial > max_partial then begin
          Queue.add partial r.queue;
          r.partial <- ""
        end
        else r.partial <- partial;
        true
      end
    end

let rec next_line r ~block =
  match Queue.take_opt r.queue with
  | Some line -> Some line
  | None ->
    if refill r ~block then next_line r ~block
    else if block && not r.eof then next_line r ~block
    else None

(* ------------------------------------------------------------------ *)
(* I/O loops                                                           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let serve_fd t in_fd out_fd =
  let r = make_reader in_fd in
  let rec loop () =
    match next_line r ~block:true with
    | None -> `Eof
    | Some first ->
      (* Drain whatever is already pending: that is the batch. *)
      let batch = ref [ first ] in
      let n = ref 1 in
      let continue = ref true in
      while !n < t.max_batch && !continue do
        match next_line r ~block:false with
        | Some line ->
          batch := line :: !batch;
          incr n
        | None -> continue := false
      done;
      let responses, shutdown = handle_batch t (List.rev !batch) in
      write_all out_fd (String.concat "" (List.map (fun l -> l ^ "\n") responses));
      if shutdown then `Shutdown else loop ()
  in
  loop ()

(* One readiness event on an accepted connection: pull the bytes that
   arrived, then serve every complete batch already buffered (select only
   reports kernel-side data, so user-space queued lines must be drained
   here, not left for a wakeup that never comes). *)
let service_ready t r =
  ignore (refill r ~block:true);
  let rec serve_batches () =
    match next_line r ~block:false with
    | None -> if r.eof && Queue.is_empty r.queue then `Eof else `Continue
    | Some first ->
      let batch = ref [ first ] in
      let n = ref 1 in
      let continue = ref true in
      while !n < t.max_batch && !continue do
        match next_line r ~block:false with
        | Some line ->
          batch := line :: !batch;
          incr n
        | None -> continue := false
      done;
      let responses, shutdown = handle_batch t (List.rev !batch) in
      write_all r.fd
        (String.concat "" (List.map (fun l -> l ^ "\n") responses));
      if shutdown then `Shutdown else serve_batches ()
  in
  serve_batches ()

let listen_unix t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Per-connection reader state, keyed by descriptor. Connections are
     multiplexed with select in one process: batching stays per-client,
     and one client's malformed stream, mid-batch disconnect, or provoked
     exception closes only its own connection. *)
  let conns : (Unix.file_descr, reader) Hashtbl.t = Hashtbl.create 8 in
  let close_conn fd =
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let shutdown = ref false in
      while not !shutdown do
        let fds = sock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
        match Unix.select fds [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = sock then begin
                match Unix.accept sock with
                | client, _ -> Hashtbl.replace conns client (make_reader client)
                | exception Unix.Unix_error _ -> ()
              end
              else
                match Hashtbl.find_opt conns fd with
                | None -> () (* closed earlier in this readiness sweep *)
                | Some r -> (
                  match service_ready t r with
                  | `Continue -> ()
                  | `Eof -> close_conn fd
                  | `Shutdown ->
                    shutdown := true;
                    close_conn fd
                  | exception
                      Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                    ->
                    (* the client went away; its connection dies, not the
                       server *)
                    close_conn fd
                  | exception e ->
                    (* last resort: whatever one connection provoked, the
                       daemon stays up for the others *)
                    if Trace.active t.trace then
                      Trace.note t.trace ~label:"serve.connection-error"
                        (Printexc.to_string e);
                    close_conn fd))
            readable
      done)
