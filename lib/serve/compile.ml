(** The pure compile-once path (see the interface). *)

module Driver = Simd_codegen.Driver
module Policy = Simd_dreorg.Policy
module Check = Simd_check.Check
module Parse = Simd_loopir.Parse
module Prog = Simd_vir.Prog
module Report = Simd_opt.Report
module Json = Simd_support.Json
module Cas = Simd_support.Cas

type output = Text of string | Skipped of string

type artifact = {
  policy : string;
  policies_used : string list;
  shared_streams : int;
  outputs : (string * output) list;
  report : Json.t;
  check_ok : bool;
  check : Json.t;
  lint : Json.t;
}

type outcome = Artifact of artifact | Scalar of string | Invalid of string

(* ISA emits are V-specific: a request compiled at a different [vl]
   yields a skipped output (the request still succeeds) rather than an
   error — the skip/fail distinction the backend matrix relies on. *)
let emit_backend (e : Protocol.emit) =
  match e with
  | Protocol.Vir -> None
  | Protocol.C -> Some Simd_emit.Backend.Portable
  | Protocol.Altivec -> Some Simd_emit.Backend.Altivec
  | Protocol.Sse -> Some Simd_emit.Backend.Sse
  | Protocol.Avx2 -> Some Simd_emit.Backend.Avx2
  | Protocol.Neon -> Some Simd_emit.Backend.Neon

let emit_output (prog : Prog.t) (e : Protocol.emit) =
  let out =
    match emit_backend e with
    | None -> Text (Prog.to_string prog)
    | Some b ->
      let vl = Simd_machine.Config.vector_len prog.Prog.machine in
      if Simd_emit.Backend.supports_vl b vl then
        Text (Simd_emit.Backend.unit_for b prog)
      else
        Skipped
          (Printf.sprintf "backend %s requires V = %d, compiled at V = %d"
             (Simd_emit.Backend.name b)
             (Simd_emit.Backend.default_vl b)
             vl)
  in
  (Protocol.emit_name e, out)

let check_json (o : Driver.outcome) =
  let violation_json (boundary, v) =
    let fields =
      match Check.violation_to_json v with
      | Json.Obj fields -> fields
      | j -> [ ("violation", j) ]
    in
    Json.Obj (("boundary", Json.String boundary) :: fields)
  in
  let violations = Driver.check_violations o in
  let ok =
    not
      (List.exists
         (fun (_, (v : Check.violation)) -> v.Check.severity = Check.Error)
         violations)
  in
  ( ok,
    Json.Obj
      [
        ("ok", Json.Bool ok);
        ("violations", Json.List (List.map violation_json violations));
        ("facts", Check.facts_to_json (Driver.check_facts o));
      ] )

let run (r : Protocol.request) : outcome =
  match Parse.program_of_string_result r.Protocol.source with
  | Error m -> Invalid m
  | exception e -> Invalid (Printexc.to_string e)
  | Ok program -> (
    match Driver.simdize ~check:true r.Protocol.config program with
    | Driver.Scalar reason ->
      Scalar (Format.asprintf "%a" Driver.pp_reason reason)
    | Driver.Simdized o ->
      let check_ok, check = check_json o in
      Artifact
        {
          policy = Policy.name r.Protocol.config.Driver.policy;
          policies_used =
            List.map Policy.name o.Driver.policies_used;
          shared_streams = List.length o.Driver.shared_streams;
          outputs = List.map (emit_output o.Driver.prog) r.Protocol.emits;
          report = Report.to_json (Driver.report o);
          check_ok;
          check;
          lint = Simd_lint.Lint.report_to_json (Simd_lint.Lint.run o);
        }
    | exception e -> Invalid ("compile: " ^ Printexc.to_string e))

let outcome_to_json = function
  | Artifact a ->
    Json.Obj
      [
        ("status", Json.String "ok");
        ( "artifact",
          Json.Obj
            [
              ("schema", Json.String "simd-serve-artifact/1");
              ("policy", Json.String a.policy);
              ( "policies_used",
                Json.List (List.map (fun p -> Json.String p) a.policies_used)
              );
              ("shared_streams", Json.Int a.shared_streams);
              ( "outputs",
                Json.Obj
                  (List.map
                     (fun (k, v) ->
                       ( k,
                         match v with
                         | Text text -> Json.String text
                         | Skipped reason ->
                           Json.Obj [ ("skipped", Json.String reason) ] ))
                     a.outputs) );
              ("report", a.report);
              ("check", a.check);
              ("lint", a.lint);
            ] );
      ]
  | Scalar reason ->
    Json.Obj
      [ ("status", Json.String "scalar"); ("reason", Json.String reason) ]
  | Invalid message ->
    Json.Obj
      [ ("status", Json.String "error"); ("message", Json.String message) ]

let cache_key (r : Protocol.request) =
  Cas.key
    [
      Protocol.library_version;
      Protocol.config_canonical r.Protocol.config;
      String.concat "," (List.map Protocol.emit_name r.Protocol.emits);
      r.Protocol.source;
    ]

let run_cached cas (r : Protocol.request) : Json.t * [ `Hit | `Miss ] =
  let key = cache_key r in
  let build () =
    let doc = outcome_to_json (run r) in
    Cas.store cas ~key (Json.to_line doc);
    (doc, `Miss)
  in
  match Cas.find cas ~key with
  | Some payload -> (
    match Json.of_string payload with
    | Ok doc -> (doc, `Hit)
    (* defended against, not expected: rebuild rather than serve junk *)
    | Error _ -> build ())
  | None -> build ()
