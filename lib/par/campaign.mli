(** Parallel fuzz campaigns: schedule the deterministic chunk plan of
    {!Simd_fuzz.Campaign} across the process pool ({!Pool}) and merge.

    Determinism guarantee: for a fixed seed, budget, chunk size, and
    oracle, the merged [stats] and [failures] (cases, minimized
    reproducers, bisection verdicts) are identical for every [jobs] value
    — each chunk is a pure function of [(seed, chunk index)], the pool
    stores results by chunk index, and {!Simd_fuzz.Campaign.merge} folds
    them in plan order. Only the {!Pool.report} (wall clock, utilization)
    varies with scheduling.

    A chunk that times out, crashes its worker, or raises does not abort
    the campaign: it is classified and surfaced in [lost] while every
    other chunk completes. *)

(** Which oracle classifies cases (and drives shrinking). *)
type oracle =
  | Simulator  (** {!Simd_fuzz.Oracle.run}: interpreter vs simulated SIMD *)
  | Native of Native.t
      (** {!Native.check}: additionally compile + run the portable-C
          harness and cross-check *)
  | Custom of (Simd_fuzz.Case.t -> Simd_fuzz.Oracle.outcome)
      (** fault-injection hook for tests *)

val oracle_name : oracle -> string

(** A chunk whose worker did not deliver a result. *)
type lost_chunk = {
  chunk : Simd_fuzz.Campaign.chunk;
  classification : string;  (** {!Pool.outcome_class}: timeout/crash/error *)
  detail : string;
}

type result = {
  stats : Simd_fuzz.Campaign.stats;  (** over all completed chunks *)
  failures : Simd_fuzz.Campaign.failure list;  (** sorted by case index *)
  lost : lost_chunk list;  (** chunks without results, in plan order *)
  pool : Pool.report;
}

val completed : result -> bool
(** No lost chunks: every case of the budget was classified. *)

val run :
  ?jobs:int ->
  ?chunk_size:int ->
  ?timeout:float ->
  ?retries:int ->
  ?shrink:bool ->
  ?shrink_steps:int ->
  ?bisect:bool ->
  ?trace:Simd_trace.Trace.t ->
  ?on_chunk:(done_chunks:int -> total_chunks:int -> unit) ->
  ?oracle:oracle ->
  seed:int ->
  budget:int ->
  unit ->
  result
(** [run ~seed ~budget ()] — the sharded campaign. [jobs] (default 1) is
    the worker count; [timeout] (seconds, default none) bounds each
    chunk's wall clock; [bisect] defaults to true for [Simulator] and
    false otherwise (pipeline bisection replays through the simulator
    oracle, which cannot see emission-only bugs). [on_chunk] observes
    completion counts for progress meters. *)
