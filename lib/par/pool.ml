(** OS-process worker pool (see the interface for the contract).

    Design: one forked child per job attempt, at most [workers] alive at a
    time. The child computes the job, marshals an [(value, error)] payload
    onto a pipe, and exits with [Unix._exit] (never [exit]: the child
    inherits the parent's buffered channels and at_exit handlers and must
    not flush or run them). The parent multiplexes all live pipes with
    [select], accumulating each child's payload until EOF, then reaps it
    with [waitpid] and classifies the attempt. Per-job deadlines are
    enforced in the same loop: an expired child is SIGKILLed and the job
    classified [Timed_out].

    Fork-per-job keeps workers fully isolated (a segfault, runaway
    allocation, or wedged job can only take down its own attempt) at the
    price of one fork per job — which is why the fuzz campaign shards into
    ~50-case chunks rather than single cases: the fork cost amortizes to
    noise. *)

module Trace = Simd_trace.Trace
module Json = Simd_support.Json

type 'a outcome =
  | Done of 'a
  | Job_error of string
  | Timed_out of float
  | Crashed of string

let outcome_class = function
  | Done _ -> "ok"
  | Job_error _ -> "error"
  | Timed_out _ -> "timeout"
  | Crashed _ -> "crash"

type 'a result = {
  outcome : 'a outcome;
  attempts : int;
  elapsed_s : float;
  worker : int;
}

type worker_stat = { jobs_run : int; busy_s : float }

type report = {
  jobs : int;
  workers : int;
  wall_s : float;
  jobs_per_s : float;
  ok : int;
  job_errors : int;
  timeouts : int;
  crashes : int;
  retries : int;
  per_worker : worker_stat array;
}

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "%d jobs on %d workers in %.2f s (%.1f jobs/s): %d ok, %d errors, %d \
     timeouts, %d crashes, %d retries"
    r.jobs r.workers r.wall_s r.jobs_per_s r.ok r.job_errors r.timeouts
    r.crashes r.retries;
  Array.iteri
    (fun i (w : worker_stat) ->
      Format.fprintf fmt "@\n  worker %d: %d jobs, %.2f s busy (%.0f%%)" i
        w.jobs_run w.busy_s
        (if r.wall_s > 0. then 100. *. w.busy_s /. r.wall_s else 0.))
    r.per_worker

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("schema", Json.String "simd-par/1");
      ("jobs", Json.Int r.jobs);
      ("workers", Json.Int r.workers);
      ("wall_s", Json.Float r.wall_s);
      ("jobs_per_s", Json.Float r.jobs_per_s);
      ("ok", Json.Int r.ok);
      ("job_errors", Json.Int r.job_errors);
      ("timeouts", Json.Int r.timeouts);
      ("crashes", Json.Int r.crashes);
      ("retries", Json.Int r.retries);
      ( "per_worker",
        Json.List
          (Array.to_list
             (Array.map
                (fun (w : worker_stat) ->
                  Json.Obj
                    [
                      ("jobs", Json.Int w.jobs_run);
                      ("busy_s", Json.Float w.busy_s);
                      ( "utilization",
                        Json.Float
                          (if r.wall_s > 0. then w.busy_s /. r.wall_s else 0.)
                      );
                    ])
                r.per_worker)) );
    ]

(* ------------------------------------------------------------------ *)
(* Child side                                                          *)
(* ------------------------------------------------------------------ *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write fd bytes !pos (len - !pos) in
    pos := !pos + n
  done

(* The payload is a [Stdlib.result]: [Ok v] for a completed job, [Error m]
   for a job that raised. Marshalling uses no sharing flags and no
   closures — results must be plain data; a result that cannot be
   marshalled is converted to [Error] so the parent still gets a verdict
   rather than a crash. *)
let child_main f task wfd =
  let payload =
    match f task with
    | v -> (
      try Marshal.to_bytes (Ok v : ('a, string) Stdlib.result) []
      with e ->
        Marshal.to_bytes
          (Error ("unmarshallable job result: " ^ Printexc.to_string e)
            : ('a, string) Stdlib.result)
          [])
    | exception e ->
      Marshal.to_bytes
        (Error (Printexc.to_string e) : ('a, string) Stdlib.result)
        []
  in
  (try write_all wfd payload with _ -> ());
  (try Unix.close wfd with _ -> ());
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

type running = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  task : int;
  attempt : int;
  started : float;
}

type slot = Idle | Running of running

let now () = Unix.gettimeofday ()

(* [fork] with a small bounded retry on EAGAIN (transient: the system was
   briefly out of processes). *)
let rec fork_retrying tries =
  match Unix.fork () with
  | pid -> Ok pid
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) when tries > 0 ->
    Unix.sleepf 0.05;
    fork_retrying (tries - 1)
  | exception e -> Error (Printexc.to_string e)

let spawn f task ~attempt ~slot_index:_ =
  let rfd, wfd = Unix.pipe () in
  (* Flush the parent's buffered channels so the child's copies are empty
     (a child exiting via [_exit] never flushes, but partial buffers could
     otherwise be written twice by other paths). *)
  flush stdout;
  flush stderr;
  match fork_retrying 5 with
  | Error m ->
    Unix.close rfd;
    Unix.close wfd;
    Error m
  | Ok 0 ->
    Unix.close rfd;
    child_main f task wfd
  | Ok pid ->
    Unix.close wfd;
    Ok { pid; fd = rfd; buf = Buffer.create 4096; task; attempt; started = now () }

let reap pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

(* Classify a finished child from its exit status and accumulated
   payload. *)
let classify status buf : ('a outcome, [ `Retryable of string ]) Stdlib.result =
  match status with
  | Unix.WEXITED 0 -> (
    let bytes = Buffer.to_bytes buf in
    match (Marshal.from_bytes bytes 0 : ('a, string) Stdlib.result) with
    | Ok v -> Ok (Done v)
    | Error m -> Ok (Job_error m)
    | exception _ -> Error (`Retryable "worker returned a garbled payload"))
  | Unix.WEXITED c -> Error (`Retryable (Printf.sprintf "worker exited with code %d" c))
  | Unix.WSIGNALED s -> Error (`Retryable (Printf.sprintf "worker killed by signal %d" s))
  | Unix.WSTOPPED s -> Error (`Retryable (Printf.sprintf "worker stopped by signal %d" s))

let map ?(workers = 4) ?timeout ?(retries = 1) ?(trace = Trace.none)
    ?(on_result = fun _ -> ()) (f : int -> 'a) (n : int) :
    'a result array * report =
  if n < 0 then invalid_arg "Pool.map: negative job count";
  let workers = max 1 (min workers (max 1 n)) in
  let t_start = now () in
  let results : 'a result option array = Array.make n None in
  let stats = Array.make workers { jobs_run = 0; busy_s = 0. } in
  let retries_total = ref 0 in
  let slots = Array.make workers Idle in
  let next = ref 0 in
  let completed = ref 0 in
  let finish slot_index (r : running) (outcome : 'a outcome) =
    let elapsed_s = now () -. r.started in
    slots.(slot_index) <- Idle;
    stats.(slot_index) <-
      {
        jobs_run = stats.(slot_index).jobs_run + 1;
        busy_s = stats.(slot_index).busy_s +. elapsed_s;
      };
    results.(r.task) <-
      Some { outcome; attempts = r.attempt; elapsed_s; worker = slot_index };
    incr completed;
    on_result r.task
  in
  let start slot_index task ~attempt =
    match spawn f task ~attempt ~slot_index with
    | Ok running -> slots.(slot_index) <- Running running
    | Error m ->
      (* fork failed even after retries: classify without a worker *)
      results.(task) <-
        Some
          {
            outcome = Crashed ("fork: " ^ m);
            attempts = attempt;
            elapsed_s = 0.;
            worker = slot_index;
          };
      incr completed;
      on_result task
  in
  let retry_or_fail slot_index (r : running) message =
    if r.attempt <= retries then begin
      incr retries_total;
      let elapsed_s = now () -. r.started in
      stats.(slot_index) <-
        { stats.(slot_index) with busy_s = stats.(slot_index).busy_s +. elapsed_s };
      slots.(slot_index) <- Idle;
      start slot_index r.task ~attempt:(r.attempt + 1)
    end
    else finish slot_index r (Crashed message)
  in
  let handle_eof slot_index (r : running) =
    (try Unix.close r.fd with Unix.Unix_error _ -> ());
    let status = reap r.pid in
    match classify status r.buf with
    | Ok outcome -> finish slot_index r outcome
    | Error (`Retryable m) -> retry_or_fail slot_index r m
  in
  let read_chunk slot_index (r : running) =
    let bytes = Bytes.create 65536 in
    match Unix.read r.fd bytes 0 65536 with
    | 0 -> handle_eof slot_index r
    | k -> Buffer.add_subbytes r.buf bytes 0 k
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error _ -> handle_eof slot_index r
  in
  let expire slot_index (r : running) =
    kill_quietly r.pid;
    (try Unix.close r.fd with Unix.Unix_error _ -> ());
    ignore (reap r.pid);
    finish slot_index r (Timed_out (now () -. r.started))
  in
  while !completed < n do
    (* Refill idle slots in task order. *)
    Array.iteri
      (fun i s ->
        match s with
        | Idle when !next < n ->
          let task = !next in
          incr next;
          start i task ~attempt:1
        | _ -> ())
      slots;
    let busy =
      Array.to_list slots
      |> List.filter_map (function Running r -> Some r | Idle -> None)
    in
    if busy <> [] then begin
      (* Wait for data or the nearest deadline. *)
      let select_timeout =
        match timeout with
        | None -> 1.0
        | Some t ->
          let nearest =
            List.fold_left
              (fun acc r -> min acc (r.started +. t -. now ()))
              1.0 busy
          in
          max 0.0 (min 1.0 nearest)
      in
      let fds = List.map (fun r -> r.fd) busy in
      let readable =
        match Unix.select fds [] [] select_timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      Array.iteri
        (fun i s ->
          match s with
          | Running r when List.mem r.fd readable -> read_chunk i r
          | _ -> ())
        slots;
      (* Enforce deadlines on whoever is still running. *)
      match timeout with
      | None -> ()
      | Some t ->
        Array.iteri
          (fun i s ->
            match s with
            | Running r when now () -. r.started > t -> expire i r
            | _ -> ())
          slots
    end
  done;
  let wall_s = now () -. t_start in
  let results =
    Array.map
      (function
        | Some r -> r
        | None ->
          (* unreachable: every task is either finished or classified *)
          { outcome = Crashed "lost"; attempts = 0; elapsed_s = 0.; worker = 0 })
      results
  in
  let count p = Array.fold_left (fun acc r -> if p r.outcome then acc + 1 else acc) 0 results in
  let report =
    {
      jobs = n;
      workers;
      wall_s;
      jobs_per_s = (if wall_s > 0. then float_of_int n /. wall_s else 0.);
      ok = count (function Done _ -> true | _ -> false);
      job_errors = count (function Job_error _ -> true | _ -> false);
      timeouts = count (function Timed_out _ -> true | _ -> false);
      crashes = count (function Crashed _ -> true | _ -> false);
      retries = !retries_total;
      per_worker = stats;
    }
  in
  if Trace.active trace then begin
    Array.iteri
      (fun i r ->
        Trace.note trace ~label:"par"
          (Printf.sprintf "job %d: %s (attempts %d, worker %d)" i
             (outcome_class r.outcome) r.attempts r.worker))
      results;
    Trace.note trace ~timed:true ~label:"par"
      (Format.asprintf "%a" pp_report report)
  end;
  (results, report)
