(** Native differential oracle: compile the self-checking harness of a
    fuzz case for {e every selected backend} with the discovered C
    compiler ({!Simd_emit.Cc}), run the executables, and cross-check
    their verdicts against the simulator oracle ({!Simd_fuzz.Oracle}).

    The harnesses ({!Simd_emit.Portable.harness_with} over each backend's
    unit) place arrays exactly like the simulator's layout, fill the
    arena with the same deterministic noise, run scalar and simdized
    kernels, and byte-compare — so a native run checks the whole emission
    path (C backend, real compiler, real hardware) against the same
    ground truth the simulator uses, once per backend.

    Backend selection defaults to the capability probe
    ({!Simd_emit.Backend.probe}): only [Supported] backends — whose probe
    binary actually runs on this CPU — are executed; a backend that does
    not support a case's vector length is skipped for that case, not
    failed. Compiled harnesses are cached in a {!Simd_support.Cas} store,
    keyed by the hash of the C source plus compiler identity and the
    {e per-backend} flags (the same source under [-mavx2] is a different
    binary): replaying a corpus or re-running a campaign recompiles
    nothing that was seen before. *)

type t
(** A ready native oracle: discovered compiler + artifact store +
    selected backends. *)

val create :
  ?cc:Simd_emit.Cc.t ->
  ?flags:string ->
  ?backends:Simd_emit.Backend.id list ->
  ?cache_dir:string ->
  ?max_entries:int ->
  unit ->
  (t, string) result
(** [create ()] — discover a compiler (or use [cc]) and open the store at
    [cache_dir] (default ["_harness_cache"]; created if missing). Default
    [flags]: ["-O1"] (per-backend ISA flags are appended automatically).
    [backends] defaults to every registry backend the capability probe
    classifies [Supported] on this machine. [max_entries] bounds the
    store (LRU; default unbounded, matching the historical behavior CI
    relies on). [Error] when no C compiler is on PATH. *)

val cc : t -> Simd_emit.Cc.t
val cache_dir : t -> string

val backends : t -> Simd_emit.Backend.id list
(** The backends this oracle exercises, in registry order. *)

val cas : t -> Simd_support.Cas.t
(** The underlying artifact store — its {!Simd_support.Cas.stats} carry
    the hit/miss/eviction/corruption counters telemetry reports. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of this oracle value so far (process-local). *)

val harness_source_for :
  Simd_emit.Backend.id -> Simd_fuzz.Case.t -> (string, string) result
(** The case's complete self-checking C translation unit for one backend;
    [Error] when the driver legitimately leaves the case scalar or the
    backend does not support the case's vector length. *)

val harness_source : Simd_fuzz.Case.t -> (string, string) result
(** {!harness_source_for} the portable backend (the historical
    single-backend entry point). *)

(** One backend's native verdict on one case. *)
type verdict =
  | Agrees  (** harness printed OK and exited 0 *)
  | Mismatch of string  (** harness detected a byte difference *)
  | Cc_failed of string  (** the backend's unit did not compile *)
  | Not_applicable of string
      (** skipped: scalar fallback, or the backend does not support the
          case's vector length *)

val verdict_name : verdict -> string
(** ["agrees"] / ["mismatch"] / ["cc-failed"] / ["skipped"]. *)

val verdict_detail : verdict -> string

val case_matrix :
  t -> Simd_fuzz.Case.t -> (Simd_emit.Backend.id * verdict) list
(** One verdict per selected backend for one case — the raw table the
    CI backend-matrix job aggregates into [BENCH_backends.json]. *)

val check : t -> Simd_fuzz.Case.t -> Simd_fuzz.Oracle.outcome
(** Classify one case by the simulator {e and} every applicable
    backend's native harness:

    - simulator pass + every native harness OK ⇒ [Pass];
    - any native harness mismatch while the simulator passes ⇒
      [Divergence] naming the backend(s) (an emission/compiler-facing bug
      the simulator cannot see);
    - simulator divergence ⇒ [Divergence] (annotated with whether the
      native harnesses agreed);
    - scalar fallback ⇒ [Skipped]; compile failure or either oracle
      raising ⇒ [Crash].

    Deterministic for a fixed compiler, backend set, and case; never
    raises. *)
