(** Native differential oracle: compile the portable-C self-checking
    harness of a fuzz case with the discovered C compiler
    ({!Simd_emit.Cc}), run the executable, and cross-check its verdict
    against the simulator oracle ({!Simd_fuzz.Oracle}).

    The harness ([Emit_portable.harness]) places arrays exactly like the
    simulator's layout, fills the arena with the same deterministic noise,
    runs scalar and simdized kernels, and byte-compares — so a native run
    checks the whole emission path (C backend, real compiler, real
    hardware) against the same ground truth the simulator uses.

    Compiled harnesses are cached in a {!Simd_support.Cas} store, keyed
    by the hash of the C source (plus compiler identity and flags):
    replaying a corpus or re-running a campaign recompiles nothing that
    was seen before. The store provides concurrent-writer safety and
    (when [max_entries] is set) LRU eviction. *)

type t
(** A ready native oracle: discovered compiler + artifact store. *)

val create :
  ?cc:Simd_emit.Cc.t ->
  ?flags:string ->
  ?cache_dir:string ->
  ?max_entries:int ->
  unit ->
  (t, string) result
(** [create ()] — discover a compiler (or use [cc]) and open the store at
    [cache_dir] (default ["_harness_cache"]; created if missing). Default
    [flags]: ["-O1"]. [max_entries] bounds the store (LRU; default
    unbounded, matching the historical behavior CI relies on). [Error]
    when no C compiler is on PATH. *)

val cc : t -> Simd_emit.Cc.t
val cache_dir : t -> string

val cas : t -> Simd_support.Cas.t
(** The underlying artifact store — its {!Simd_support.Cas.stats} carry
    the hit/miss/eviction/corruption counters telemetry reports. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of this oracle value so far (process-local). *)

val harness_source : Simd_fuzz.Case.t -> (string, string) result
(** The case's complete self-checking C translation unit; [Error] when the
    driver legitimately leaves the case scalar (nothing to cross-check). *)

val check : t -> Simd_fuzz.Case.t -> Simd_fuzz.Oracle.outcome
(** Classify one case by {e both} oracles:

    - simulator pass + native OK ⇒ [Pass];
    - native harness mismatch while the simulator passes ⇒ [Divergence]
      (an emission/compiler-facing bug the simulator cannot see);
    - simulator divergence ⇒ [Divergence] (annotated with whether the
      native harness agreed);
    - scalar fallback ⇒ [Skipped]; compile failure or either oracle
      raising ⇒ [Crash].

    Deterministic for a fixed compiler and case; never raises. *)
