(** OS-process worker pool: run indexed jobs in forked worker processes
    with per-job wall-clock timeouts, crash isolation, and bounded retries.

    Each job runs in its own forked child; the result value is marshalled
    back over a pipe. A child that segfaults, is killed, exits nonzero, or
    returns a garbled payload becomes a classified {!outcome} — the pool
    never dies with a worker, and the freed slot is refilled. Job results
    are stored by job index, so aggregate output is independent of
    completion order (the determinism the sharded fuzz campaign builds
    on).

    Timeouts are wall-clock per job: on expiry the child is killed
    (SIGKILL) and the job classified {!Timed_out} — a stuck job can never
    hang the campaign. {!Crashed} jobs (and [fork] failures such as
    EAGAIN) are retried up to [retries] times; {!Job_error} (the job's own
    OCaml exception) and {!Timed_out} are treated as deterministic and
    not retried.

    Requires result values to be marshal-safe (plain data, no closures in
    the result). *)

type 'a outcome =
  | Done of 'a
  | Job_error of string  (** the job raised; carries [Printexc.to_string] *)
  | Timed_out of float  (** killed after this many seconds *)
  | Crashed of string
      (** the worker process died (signal, nonzero exit, or a garbled
          result payload), [retries] retries exhausted *)

val outcome_class : 'a outcome -> string
(** ["ok"], ["error"], ["timeout"], or ["crash"]. *)

type 'a result = {
  outcome : 'a outcome;
  attempts : int;  (** 1 + number of retries this job consumed *)
  elapsed_s : float;  (** wall clock of the last attempt *)
  worker : int;  (** slot that ran the last attempt *)
}

type worker_stat = { jobs_run : int; busy_s : float }

(** Aggregate pool statistics for one {!map} call. *)
type report = {
  jobs : int;
  workers : int;
  wall_s : float;
  jobs_per_s : float;
  ok : int;
  job_errors : int;
  timeouts : int;
  crashes : int;
  retries : int;  (** total respawns across all jobs *)
  per_worker : worker_stat array;
}

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Simd_support.Json.t
(** Schema [simd-par/1]: counters plus wall clock, throughput, and
    per-worker utilization. *)

val map :
  ?workers:int ->
  ?timeout:float ->
  ?retries:int ->
  ?trace:Simd_trace.Trace.t ->
  ?on_result:(int -> unit) ->
  (int -> 'a) ->
  int ->
  'a result array * report
(** [map f n] — run jobs [f 0 .. f (n-1)], at most [workers] (default 4)
    at a time, each in a forked child. [timeout] (seconds, default none)
    bounds each attempt's wall clock; [retries] (default 1) bounds
    respawns of crashed workers. [on_result i] fires in the parent as job
    [i] completes (any order) — progress reporting. When [trace] is
    active, the pool emits its per-job log (deterministic, in job order)
    and its stats (marked timed) as {!Simd_trace.Trace.Note} events. *)
