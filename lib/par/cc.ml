(** Alias of {!Simd_emit.Cc}: the shared C-compiler probe, re-exported so
    pool consumers can reach it as [Simd.Par.Cc] next to {!Native}. *)

include Simd_emit.Cc
