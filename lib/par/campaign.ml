(** Parallel fuzz campaigns (see the interface for the determinism
    contract). The pool's job [k] runs chunk [k] of the plan in a forked
    worker; the child returns the chunk's [(stats, failures)] which
    marshal cleanly (cases, outcomes, and verdicts are plain data). *)

module C = Simd_fuzz.Campaign
module Case = Simd_fuzz.Case
module Oracle = Simd_fuzz.Oracle
module Trace = Simd_trace.Trace

type oracle =
  | Simulator
  | Native of Native.t
  | Custom of (Case.t -> Oracle.outcome)

let oracle_name = function
  | Simulator -> "simulator"
  | Native _ -> "native"
  | Custom _ -> "custom"

let oracle_fn = function
  | Simulator -> Oracle.run
  | Native t -> Native.check t
  | Custom f -> f

type lost_chunk = { chunk : C.chunk; classification : string; detail : string }

type result = {
  stats : C.stats;
  failures : C.failure list;
  lost : lost_chunk list;
  pool : Pool.report;
}

let completed r = r.lost = []

let run ?(jobs = 1) ?chunk_size ?timeout ?retries ?(shrink = true)
    ?(shrink_steps = 1500) ?bisect ?trace ?(on_chunk = fun ~done_chunks:_ ~total_chunks:_ -> ())
    ?(oracle = Simulator) ~seed ~budget () : result =
  let bisect =
    match bisect with
    | Some b -> b
    | None -> ( match oracle with Simulator -> true | Native _ | Custom _ -> false)
  in
  let chunks = Array.of_list (C.plan ?chunk_size ~seed ~budget ()) in
  let n = Array.length chunks in
  let f = oracle_fn oracle in
  let done_chunks = ref 0 in
  let results, pool =
    Pool.map ?timeout ?retries ?trace ~workers:jobs
      ~on_result:(fun _ ->
        incr done_chunks;
        on_chunk ~done_chunks:!done_chunks ~total_chunks:n)
      (fun k -> C.run_chunk ~shrink ~shrink_steps ~bisect ~oracle:f chunks.(k))
      n
  in
  let completed_chunks = ref [] in
  let lost = ref [] in
  Array.iteri
    (fun k (r : (C.stats * C.failure list) Pool.result) ->
      match r.Pool.outcome with
      | Pool.Done payload -> completed_chunks := payload :: !completed_chunks
      | Pool.Job_error m ->
        lost := { chunk = chunks.(k); classification = "error"; detail = m } :: !lost
      | Pool.Timed_out s ->
        lost :=
          {
            chunk = chunks.(k);
            classification = "timeout";
            detail = Printf.sprintf "killed after %.1f s" s;
          }
          :: !lost
      | Pool.Crashed m ->
        lost := { chunk = chunks.(k); classification = "crash"; detail = m } :: !lost)
    results;
  let stats, failures = C.merge (List.rev !completed_chunks) in
  { stats; failures; lost = List.rev !lost; pool }
