(** Native differential oracle (see the interface). *)

module Cc = Simd_emit.Cc
module Backend = Simd_emit.Backend
module Cas = Simd_support.Cas
module Case = Simd_fuzz.Case
module Oracle = Simd_fuzz.Oracle
module Driver = Simd_codegen.Driver
module Machine = Simd_machine.Config
module Sim_run = Simd_sim.Run
module Emit_portable = Simd_emit.Portable

type t = {
  cc : Cc.t;
  flags : string;
  cas : Cas.t;
  backends : Backend.id list;
}

let cc t = t.cc
let cas t = t.cas
let cache_dir t = Cas.dir t.cas
let backends t = t.backends

let cache_stats t =
  let s = Cas.stats t.cas in
  (s.Cas.hits, s.Cas.misses)

let create ?cc ?(flags = "-O1") ?backends ?(cache_dir = "_harness_cache")
    ?max_entries () : (t, string) result =
  match (cc, Cc.find ()) with
  | Some cc, _ | None, Some cc ->
    let backends =
      match backends with
      | Some bs -> bs
      | None ->
        (* every backend whose probe binary runs on this machine —
           Toolchain_only backends compile but would die (SIGILL) *)
        List.filter
          (fun b -> Backend.probe ~cc b = Backend.Supported)
          Backend.all
    in
    Ok { cc; flags; cas = Cas.create ?max_entries ~dir:cache_dir (); backends }
  | None, None -> Error "no C compiler found (tried $SIMD_CC, gcc, cc, clang)"

(* ------------------------------------------------------------------ *)
(* Harness emission                                                    *)
(* ------------------------------------------------------------------ *)

let case_setup (case : Case.t) (config : Driver.config) =
  let trip =
    match case.Case.program.Simd_loopir.Ast.loop.Simd_loopir.Ast.trip with
    | Simd_loopir.Ast.Trip_const _ -> None
    | Simd_loopir.Ast.Trip_param _ -> case.Case.trip
  in
  Sim_run.prepare ~seed:case.Case.setup_seed ?trip
    ~machine:config.Driver.machine case.Case.program

let harness_source_for backend (case : Case.t) : (string, string) result =
  let config = case.Case.config in
  let vl = Machine.vector_len config.Driver.machine in
  if not (Backend.supports_vl backend vl) then
    Error
      (Printf.sprintf "backend %s does not support V = %d"
         (Backend.name backend) vl)
  else
    match Driver.simdize config case.Case.program with
    | Driver.Scalar reason ->
      Error (Format.asprintf "not simdized: %a" Driver.pp_reason reason)
    | Driver.Simdized o ->
      let setup = case_setup case config in
      Ok
        (Backend.harness_for backend ~layout:setup.Sim_run.layout
           ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog)

let harness_source (case : Case.t) : (string, string) result =
  harness_source_for Backend.Portable case

(* ------------------------------------------------------------------ *)
(* Compile cache                                                       *)
(* ------------------------------------------------------------------ *)

(* Per-backend flags: the oracle's base flags plus the backend's ISA
   flags ([-mavx2], ...). They are part of the cache key — the same C
   source compiled with different ISA flags is a different binary. *)
let flags_for t backend =
  String.concat " " (t.flags :: Backend.cflags backend)

(* The cache key covers everything that determines the binary: compiler
   identity, flags, and the full C source ({!Simd_support.Cas.key}). *)
let cache_key t ~flags src = Cas.key [ "harness"; Cc.id t.cc; flags; src ]

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(** [compiled_exe t ~flags src] — path of the compiled harness, compiling
    on a cache miss. Concurrency, atomicity, and eviction are the store's
    ({!Simd_support.Cas.build_raw}); the C source is kept as a sibling
    blob entry for debuggability. *)
let compiled_exe t ~flags src : (string, string) result =
  let key = cache_key t ~flags src in
  Cas.build_raw t.cas ~key (fun tmp_exe ->
      let c_file = tmp_exe ^ ".c" in
      write_file c_file src;
      Cas.store t.cas ~key:(key ^ "src") src;
      Fun.protect
        ~finally:(fun () -> try Sys.remove c_file with Sys_error _ -> ())
        (fun () ->
          match Cc.compile t.cc ~flags ~src:c_file ~exe:tmp_exe () with
          | Ok () ->
            (* temp_file created the name 0o600; the linker may keep that *)
            (try Unix.chmod tmp_exe 0o755 with Unix.Unix_error _ -> ());
            Ok ()
          | Error _ as e -> e))

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with _ -> ""

(** Run a compiled harness; [Ok ()] when it printed OK and exited 0,
    [Error tail] with its output otherwise. *)
let run_exe exe : (unit, string) result =
  let log = Filename.temp_file "simd_native" ".log" in
  let code =
    Sys.command
      (Printf.sprintf "%s >%s 2>&1" (Filename.quote exe) (Filename.quote log))
  in
  let out = String.trim (read_file log) in
  (try Sys.remove log with Sys_error _ -> ());
  if code = 0 then Ok ()
  else
    Error
      (Printf.sprintf "exit %d%s" code
         (if out = "" then "" else ": " ^ out))

(* ------------------------------------------------------------------ *)
(* Per-backend verdicts                                                *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Agrees
  | Mismatch of string
  | Cc_failed of string
  | Not_applicable of string

let verdict_name = function
  | Agrees -> "agrees"
  | Mismatch _ -> "mismatch"
  | Cc_failed _ -> "cc-failed"
  | Not_applicable _ -> "skipped"

let verdict_detail = function
  | Agrees -> ""
  | Mismatch m | Cc_failed m | Not_applicable m -> m

(* One backend against an already-simdized case. *)
let backend_verdict t backend ~setup (o : Driver.outcome) : verdict =
  let vl = Machine.vector_len o.Driver.config.Driver.machine in
  if not (Backend.supports_vl backend vl) then
    Not_applicable (Printf.sprintf "does not support V = %d" vl)
  else
    let src =
      Backend.harness_for backend ~layout:setup.Sim_run.layout
        ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog
    in
    match compiled_exe t ~flags:(flags_for t backend) src with
    | Error m -> Cc_failed m
    | Ok exe -> ( match run_exe exe with Ok () -> Agrees | Error m -> Mismatch m)

let case_matrix t (case : Case.t) : (Backend.id * verdict) list =
  let config = case.Case.config in
  match Driver.simdize config case.Case.program with
  | Driver.Scalar reason ->
    let m = Format.asprintf "not simdized: %a" Driver.pp_reason reason in
    List.map (fun b -> (b, Not_applicable m)) t.backends
  | Driver.Simdized o ->
    let setup = case_setup case config in
    List.map (fun b -> (b, backend_verdict t b ~setup o)) t.backends
  | exception e ->
    let m = "native: " ^ Printexc.to_string e in
    List.map (fun b -> (b, Cc_failed m)) t.backends

(* ------------------------------------------------------------------ *)
(* The cross-checking oracle                                           *)
(* ------------------------------------------------------------------ *)

let check_exn t (case : Case.t) : Oracle.outcome =
  let config = case.Case.config in
  match Driver.simdize config case.Case.program with
  | Driver.Scalar reason ->
    Oracle.Skipped (Format.asprintf "not simdized: %a" Driver.pp_reason reason)
  | Driver.Simdized o -> (
    let setup = case_setup case config in
    (* Every selected backend that supports the case's V runs natively;
       the rest are skipped (not failed). *)
    let verdicts =
      List.filter_map
        (fun b ->
          match backend_verdict t b ~setup o with
          | Not_applicable _ -> None
          | v -> Some (b, v))
        t.backends
    in
    let failed_cc =
      List.filter_map
        (fun (b, v) ->
          match v with Cc_failed m -> Some (Backend.name b ^ ": " ^ m) | _ -> None)
        verdicts
    in
    let mismatches =
      List.filter_map
        (fun (b, v) ->
          match v with Mismatch m -> Some (Backend.name b ^ ": " ^ m) | _ -> None)
        verdicts
    in
    let sim = Oracle.run case in
    match sim with
    | _ when failed_cc <> [] ->
      Oracle.Crash
        ("native: harness compilation failed: " ^ String.concat "; " failed_cc)
    | Oracle.Pass when mismatches = [] -> Oracle.Pass
    | Oracle.Pass ->
      Oracle.Divergence
        ("native harness mismatch ("
        ^ String.concat "; " mismatches
        ^ ") where the simulator passed")
    | Oracle.Divergence m when mismatches = [] ->
      Oracle.Divergence
        ("simulator divergence (" ^ m ^ ") where the native harnesses agreed")
    | Oracle.Divergence m ->
      Oracle.Divergence
        ("both oracles diverged: simulator: " ^ m ^ "; native: "
        ^ String.concat "; " mismatches)
    | (Oracle.Skipped _ | Oracle.Static_violation _ | Oracle.Crash _) -> sim)
  | exception e -> Oracle.Crash ("native: " ^ Printexc.to_string e)

let check t case =
  try check_exn t case
  with e -> Oracle.Crash ("native: " ^ Printexc.to_string e)
