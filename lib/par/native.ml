(** Native differential oracle (see the interface). *)

module Cc = Simd_emit.Cc
module Cas = Simd_support.Cas
module Case = Simd_fuzz.Case
module Oracle = Simd_fuzz.Oracle
module Driver = Simd_codegen.Driver
module Sim_run = Simd_sim.Run
module Emit_portable = Simd_emit.Portable

type t = { cc : Cc.t; flags : string; cas : Cas.t }

let cc t = t.cc
let cas t = t.cas
let cache_dir t = Cas.dir t.cas

let cache_stats t =
  let s = Cas.stats t.cas in
  (s.Cas.hits, s.Cas.misses)

let create ?cc ?(flags = "-O1") ?(cache_dir = "_harness_cache") ?max_entries ()
    : (t, string) result =
  match (cc, Cc.find ()) with
  | Some cc, _ | None, Some cc ->
    Ok { cc; flags; cas = Cas.create ?max_entries ~dir:cache_dir () }
  | None, None -> Error "no C compiler found (tried $SIMD_CC, gcc, cc, clang)"

(* ------------------------------------------------------------------ *)
(* Harness emission                                                    *)
(* ------------------------------------------------------------------ *)

let harness_source (case : Case.t) : (string, string) result =
  let config = case.Case.config in
  match Driver.simdize config case.Case.program with
  | Driver.Scalar reason ->
    Error (Format.asprintf "not simdized: %a" Driver.pp_reason reason)
  | Driver.Simdized o ->
    let trip =
      match case.Case.program.Simd_loopir.Ast.loop.Simd_loopir.Ast.trip with
      | Simd_loopir.Ast.Trip_const _ -> None
      | Simd_loopir.Ast.Trip_param _ -> case.Case.trip
    in
    let setup =
      Sim_run.prepare ~seed:case.Case.setup_seed ?trip
        ~machine:config.Driver.machine case.Case.program
    in
    Ok
      (Emit_portable.harness ~layout:setup.Sim_run.layout
         ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog)

(* ------------------------------------------------------------------ *)
(* Compile cache                                                       *)
(* ------------------------------------------------------------------ *)

(* The cache key covers everything that determines the binary: compiler
   identity, flags, and the full C source ({!Simd_support.Cas.key}). *)
let cache_key t src = Cas.key [ "harness"; Cc.id t.cc; t.flags; src ]

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(** [compiled_exe t src] — path of the compiled harness, compiling on a
    cache miss. Concurrency, atomicity, and eviction are the store's
    ({!Simd_support.Cas.build_raw}); the C source is kept as a sibling
    blob entry for debuggability. *)
let compiled_exe t src : (string, string) result =
  let key = cache_key t src in
  Cas.build_raw t.cas ~key (fun tmp_exe ->
      let c_file = tmp_exe ^ ".c" in
      write_file c_file src;
      Cas.store t.cas ~key:(key ^ "src") src;
      Fun.protect
        ~finally:(fun () -> try Sys.remove c_file with Sys_error _ -> ())
        (fun () ->
          match Cc.compile t.cc ~flags:t.flags ~src:c_file ~exe:tmp_exe () with
          | Ok () ->
            (* temp_file created the name 0o600; the linker may keep that *)
            (try Unix.chmod tmp_exe 0o755 with Unix.Unix_error _ -> ());
            Ok ()
          | Error _ as e -> e))

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with _ -> ""

(** Run a compiled harness; [Ok ()] when it printed OK and exited 0,
    [Error tail] with its output otherwise. *)
let run_exe exe : (unit, string) result =
  let log = Filename.temp_file "simd_native" ".log" in
  let code =
    Sys.command
      (Printf.sprintf "%s >%s 2>&1" (Filename.quote exe) (Filename.quote log))
  in
  let out = String.trim (read_file log) in
  (try Sys.remove log with Sys_error _ -> ());
  if code = 0 then Ok ()
  else
    Error
      (Printf.sprintf "exit %d%s" code
         (if out = "" then "" else ": " ^ out))

(* ------------------------------------------------------------------ *)
(* The cross-checking oracle                                           *)
(* ------------------------------------------------------------------ *)

let check_exn t (case : Case.t) : Oracle.outcome =
  match harness_source case with
  | Error reason -> Oracle.Skipped reason
  | Ok src -> (
    let native =
      match compiled_exe t src with
      | Error m -> `Cc_failed m
      | Ok exe -> (
        match run_exe exe with
        | Ok () -> `Agrees
        | Error m -> `Mismatch m)
    in
    let sim = Oracle.run case in
    match (sim, native) with
    | _, `Cc_failed m -> Oracle.Crash ("native: harness compilation failed: " ^ m)
    | Oracle.Pass, `Agrees -> Oracle.Pass
    | Oracle.Pass, `Mismatch m ->
      Oracle.Divergence
        ("native harness mismatch (" ^ m ^ ") where the simulator passed")
    | Oracle.Divergence m, `Agrees ->
      Oracle.Divergence
        ("simulator divergence (" ^ m ^ ") where the native harness agreed")
    | Oracle.Divergence m, `Mismatch nm ->
      Oracle.Divergence
        ("both oracles diverged: simulator: " ^ m ^ "; native: " ^ nm)
    | (Oracle.Skipped _ | Oracle.Static_violation _ | Oracle.Crash _), _ ->
      sim)
  | exception e -> Oracle.Crash ("native: " ^ Printexc.to_string e)

let check t case =
  try check_exn t case
  with e -> Oracle.Crash ("native: " ^ Printexc.to_string e)
