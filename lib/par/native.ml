(** Native differential oracle (see the interface). *)

module Cc = Simd_emit.Cc
module Case = Simd_fuzz.Case
module Oracle = Simd_fuzz.Oracle
module Driver = Simd_codegen.Driver
module Sim_run = Simd_sim.Run
module Emit_portable = Simd_emit.Portable

type t = {
  cc : Cc.t;
  flags : string;
  cache_dir : string;
  mutable hits : int;
  mutable misses : int;
}

let cc t = t.cc
let cache_dir t = t.cache_dir
let cache_stats t = (t.hits, t.misses)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let create ?cc ?(flags = "-O1") ?(cache_dir = "_harness_cache") () :
    (t, string) result =
  match (cc, Cc.find ()) with
  | Some cc, _ | None, Some cc ->
    mkdir_p cache_dir;
    Ok { cc; flags; cache_dir; hits = 0; misses = 0 }
  | None, None -> Error "no C compiler found (tried $SIMD_CC, gcc, cc, clang)"

(* ------------------------------------------------------------------ *)
(* Harness emission                                                    *)
(* ------------------------------------------------------------------ *)

let harness_source (case : Case.t) : (string, string) result =
  let config = case.Case.config in
  match Driver.simdize config case.Case.program with
  | Driver.Scalar reason ->
    Error (Format.asprintf "not simdized: %a" Driver.pp_reason reason)
  | Driver.Simdized o ->
    let trip =
      match case.Case.program.Simd_loopir.Ast.loop.Simd_loopir.Ast.trip with
      | Simd_loopir.Ast.Trip_const _ -> None
      | Simd_loopir.Ast.Trip_param _ -> case.Case.trip
    in
    let setup =
      Sim_run.prepare ~seed:case.Case.setup_seed ?trip
        ~machine:config.Driver.machine case.Case.program
    in
    Ok
      (Emit_portable.harness ~layout:setup.Sim_run.layout
         ~params:setup.Sim_run.params ~trip:setup.Sim_run.trip o.Driver.prog)

(* ------------------------------------------------------------------ *)
(* Compile cache                                                       *)
(* ------------------------------------------------------------------ *)

(* The cache key covers everything that determines the binary: compiler
   identity, flags, and the full C source. MD5 (stdlib Digest) is plenty
   for a content-addressed build cache. *)
let cache_key t src =
  Digest.to_hex (Digest.string (Cc.id t.cc ^ "\x00" ^ t.flags ^ "\x00" ^ src))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(** [compiled_exe t src] — path of the compiled harness, compiling on a
    cache miss. Concurrent-writer safe: compile to a unique temp name,
    [rename] (atomic on POSIX) into place. *)
let compiled_exe t src : (string, string) result =
  let key = cache_key t src in
  let exe = Filename.concat t.cache_dir ("h" ^ key) in
  if Sys.file_exists exe then begin
    t.hits <- t.hits + 1;
    Ok exe
  end
  else begin
    t.misses <- t.misses + 1;
    let c_file = exe ^ ".c" in
    let tmp_exe = Printf.sprintf "%s.tmp.%d" exe (Unix.getpid ()) in
    write_file c_file src;
    match Cc.compile t.cc ~flags:t.flags ~src:c_file ~exe:tmp_exe () with
    | Error m ->
      (try Sys.remove tmp_exe with Sys_error _ -> ());
      Error m
    | Ok () ->
      (try Sys.rename tmp_exe exe
       with Sys_error _ when Sys.file_exists exe -> ());
      Ok exe
  end

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with _ -> ""

(** Run a compiled harness; [Ok ()] when it printed OK and exited 0,
    [Error tail] with its output otherwise. *)
let run_exe exe : (unit, string) result =
  let log = Filename.temp_file "simd_native" ".log" in
  let code =
    Sys.command
      (Printf.sprintf "%s >%s 2>&1" (Filename.quote exe) (Filename.quote log))
  in
  let out = String.trim (read_file log) in
  (try Sys.remove log with Sys_error _ -> ());
  if code = 0 then Ok ()
  else
    Error
      (Printf.sprintf "exit %d%s" code
         (if out = "" then "" else ": " ^ out))

(* ------------------------------------------------------------------ *)
(* The cross-checking oracle                                           *)
(* ------------------------------------------------------------------ *)

let check_exn t (case : Case.t) : Oracle.outcome =
  match harness_source case with
  | Error reason -> Oracle.Skipped reason
  | Ok src -> (
    let native =
      match compiled_exe t src with
      | Error m -> `Cc_failed m
      | Ok exe -> (
        match run_exe exe with
        | Ok () -> `Agrees
        | Error m -> `Mismatch m)
    in
    let sim = Oracle.run case in
    match (sim, native) with
    | _, `Cc_failed m -> Oracle.Crash ("native: harness compilation failed: " ^ m)
    | Oracle.Pass, `Agrees -> Oracle.Pass
    | Oracle.Pass, `Mismatch m ->
      Oracle.Divergence
        ("native harness mismatch (" ^ m ^ ") where the simulator passed")
    | Oracle.Divergence m, `Agrees ->
      Oracle.Divergence
        ("simulator divergence (" ^ m ^ ") where the native harness agreed")
    | Oracle.Divergence m, `Mismatch nm ->
      Oracle.Divergence
        ("both oracles diverged: simulator: " ^ m ^ "; native: " ^ nm)
    | (Oracle.Skipped _ | Oracle.Static_violation _ | Oracle.Crash _), _ ->
      sim)
  | exception e -> Oracle.Crash ("native: " ^ Printexc.to_string e)

let check t case =
  try check_exn t case
  with e -> Oracle.Crash ("native: " ^ Printexc.to_string e)
