(** Operations-per-datum and speedup measurement (§5.3): every dynamic
    vector operation at weight 1, plus configurable loop overhead and
    one-time setup; register copies default to weight 0 (the paper's
    pipeline unrolls them away — so does ours, see the ablations). *)

open Simd_loopir

type weights = { copy : float; loop_overhead : float; setup : float }

val default_weights : weights
(** copy 0, loop_overhead 2, setup 5. *)

type sample = {
  program : Ast.program;
  config : Simd_codegen.Driver.config;
  counts : Simd_sim.Exec.counts;
  scalar : Interp.counts;
  lb : Lb.t;
  data : int;
  policies_used : Simd_dreorg.Policy.t list;
  fallback : bool;
}

val total_simd_ops : ?weights:weights -> sample -> float
val opd : ?weights:weights -> sample -> float
val shifts_per_datum : sample -> float

val speedup : ?weights:weights -> sample -> float
(** Ideal scalar count / charged simdized count (paper footnote 7). *)

val lb_speedup : sample -> float
(** The bound-implied ceiling: SEQ opd / LB opd. *)

exception Not_simdized of string

val of_outcome :
  ?setup_seed:int ->
  ?trip:int ->
  Ast.program ->
  Simd_codegen.Driver.outcome ->
  sample
(** Execute an already-simdized compilation (e.g. a
    {!Simd_codegen.Retarget} result at another V) against [program]'s
    scalar reference on the outcome's own machine. {!run} is
    [Driver.simdize] followed by this. *)

val run :
  config:Simd_codegen.Driver.config ->
  ?setup_seed:int ->
  ?trip:int ->
  Ast.program ->
  sample
(** Simdize and execute one loop. Raises {!Not_simdized} on scalar
    fallback. *)

val verify :
  config:Simd_codegen.Driver.config ->
  ?setup_seed:int ->
  ?trip:int ->
  Ast.program ->
  (unit, string) result
(** Differential check (simdize + run both versions + whole-arena diff). *)
