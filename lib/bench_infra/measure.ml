(** Operations-per-datum and speedup measurement (paper §5.3).

    "The metric being used is operations per datum (OPD), namely the number
    of operations needed to compute a single data element. … When reporting
    measurements for the compiler-generated codes, the operations per datum
    metric includes all overhead present in the execution of the real code,
    including a single function call and return, address computation, and
    loop overhead."

    The cost model charges every dynamically executed vector operation at
    weight 1, plus configurable per-iteration loop overhead and a one-time
    call/setup cost. Register copies default to weight 0 because the paper's
    pipeline explicitly runs "loop unrolling that removes needless copy
    operations" after simdization. *)

open Simd_loopir

type weights = {
  copy : float;  (** pipelining/commoning carries (removed by unrolling) *)
  loop_overhead : float;  (** per steady iteration: index update + branch *)
  setup : float;  (** one-time: call, return, address setup *)
}

let default_weights = { copy = 0.0; loop_overhead = 2.0; setup = 5.0 }

(** One measured loop under one configuration. *)
type sample = {
  program : Ast.program;
  config : Simd_codegen.Driver.config;
  counts : Simd_sim.Exec.counts;
  scalar : Interp.counts;  (** ideal scalar reference *)
  lb : Lb.t;
  data : int;  (** stored elements: s * trip *)
  policies_used : Simd_dreorg.Policy.t list;
  fallback : bool;  (** trip-guard fallback hit (should not happen in benches) *)
}

(** [total_simd_ops ?weights sample] — the charged dynamic operation count
    of the simdized execution. *)
let total_simd_ops ?(weights = default_weights) (s : sample) =
  let c = s.counts in
  float_of_int
    (c.Simd_sim.Exec.vloads + c.Simd_sim.Exec.vstores + c.Simd_sim.Exec.vops
   + c.Simd_sim.Exec.vsplats + c.Simd_sim.Exec.vshifts + c.Simd_sim.Exec.vsplices
   + c.Simd_sim.Exec.vpacks + c.Simd_sim.Exec.scalar_ops)
  +. (weights.copy *. float_of_int c.Simd_sim.Exec.copies)
  +. (weights.loop_overhead *. float_of_int c.Simd_sim.Exec.steady_iterations)
  +. weights.setup

(** [opd ?weights sample] — measured operations per datum. *)
let opd ?weights (s : sample) = total_simd_ops ?weights s /. float_of_int s.data

(** [shifts_per_datum sample] — measured reorganization ops per datum
    (vshiftpair; prologue/epilogue splices count as reorganization too). *)
let shifts_per_datum (s : sample) =
  float_of_int
    (s.counts.Simd_sim.Exec.vshifts + s.counts.Simd_sim.Exec.vsplices
   + s.counts.Simd_sim.Exec.vpacks)
  /. float_of_int s.data

(** [speedup ?weights sample] — ideal scalar operation count divided by the
    charged simdized count (the paper's footnote 7). *)
let speedup ?weights (s : sample) =
  float_of_int (Interp.total_ops s.scalar) /. total_simd_ops ?weights s

(** [lb_speedup sample] — the upper-bound speedup implied by the analytic
    lower bound: SEQ opd / LB opd. *)
let lb_speedup (s : sample) =
  let analysis =
    Analysis.check_exn ~machine:s.config.Simd_codegen.Driver.machine s.program
  in
  Lb.seq_opd ~analysis /. Lb.opd s.lb

exception Not_simdized of string

(** [run ~config ?setup_seed program] — simdize and execute one loop,
    gathering everything a table row needs. The trip count must be large
    enough to clear the [3B] guard. Raises {!Not_simdized} when the driver
    falls back to scalar code. *)
let of_outcome ?(setup_seed = 0x5EED) ?trip (program : Ast.program)
    (o : Simd_codegen.Driver.outcome) : sample =
  let config = o.Simd_codegen.Driver.config in
  let setup =
    Simd_sim.Run.prepare ~seed:setup_seed ?trip
      ~machine:config.Simd_codegen.Driver.machine program
  in
  let scalar, _ = Simd_sim.Run.run_scalar setup in
  let r = Simd_sim.Run.run_simd setup o.Simd_codegen.Driver.prog in
  let analysis = o.Simd_codegen.Driver.analysis in
  (* LB reflects the zero-shift accounting when every statement fell back
     to zero-shift (runtime alignments), per §5.3. *)
  let lb_policy =
    if
      List.for_all
        (fun p -> p = Simd_dreorg.Policy.Zero)
        o.Simd_codegen.Driver.policies_used
    then Simd_dreorg.Policy.Zero
    else config.Simd_codegen.Driver.policy
  in
  {
    program;
    config;
    counts = r.Simd_sim.Run.counts;
    scalar;
    lb = Lb.compute ~analysis ~policy:lb_policy;
    data = List.length program.Ast.loop.Ast.body * setup.Simd_sim.Run.trip;
    policies_used = o.Simd_codegen.Driver.policies_used;
    fallback = r.Simd_sim.Run.fallback_counts <> None;
  }

let run ~(config : Simd_codegen.Driver.config) ?setup_seed ?trip
    (program : Ast.program) : sample =
  match Simd_codegen.Driver.simdize config program with
  | Simd_codegen.Driver.Scalar r ->
    raise (Not_simdized (Format.asprintf "%a" Simd_codegen.Driver.pp_reason r))
  | Simd_codegen.Driver.Simdized o -> of_outcome ?setup_seed ?trip program o

(** [verify_first ~config program] — differential check before measuring
    (used by experiment drivers in paranoid mode and by the coverage
    driver). *)
let verify ~(config : Simd_codegen.Driver.config) ?(setup_seed = 0x5EED) ?trip
    (program : Ast.program) : (unit, string) result =
  match Simd_codegen.Driver.simdize config program with
  | Simd_codegen.Driver.Scalar r ->
    Error (Format.asprintf "not simdized: %a" Simd_codegen.Driver.pp_reason r)
  | Simd_codegen.Driver.Simdized o -> (
    let setup =
      Simd_sim.Run.prepare ~seed:setup_seed ?trip
        ~machine:config.Simd_codegen.Driver.machine program
    in
    match Simd_sim.Run.verify setup o.Simd_codegen.Driver.prog with
    | Ok () -> Ok ()
    | Error m -> Error (Format.asprintf "%a" Simd_sim.Run.pp_mismatch m))
