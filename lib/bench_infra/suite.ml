(** Experiment drivers reproducing §5's figures and tables.

    Each driver returns plain data (so tests can assert on trends) plus a
    renderer used by [bin/experiments] and [bench/main]. *)

open Simd_loopir
module Policy = Simd_dreorg.Policy
module Driver = Simd_codegen.Driver

type scheme = { policy : Policy.t; reuse : Driver.reuse }

let scheme_name s =
  Printf.sprintf "%s-%s"
    (String.uppercase_ascii (Policy.name s.policy))
    (Driver.reuse_name s.reuse)

let all_schemes =
  List.concat_map
    (fun policy ->
      List.map
        (fun reuse -> { policy; reuse })
        [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ])
    Policy.all

let config_of_scheme ~machine ~reassoc (s : scheme) =
  { Driver.default with Driver.machine; policy = s.policy; reuse = s.reuse; reassoc }

(* ------------------------------------------------------------------ *)
(* Figures 11 & 12: OPD breakdown per scheme                           *)
(* ------------------------------------------------------------------ *)

(** One stacked bar: measured OPD decomposed into the analytic lower bound,
    the shift overhead actually introduced beyond the bound, and the
    remaining (compiler/loop) overhead. *)
type opd_row = {
  name : string;
  lb_opd : float;
  shift_overhead : float;
  other_overhead : float;
  total_opd : float;  (** = lb + shift + other (arithmetic means) *)
  hmean_opd : float;  (** harmonic mean of per-loop totals *)
}

type opd_figure = {
  seq_opd : float;  (** the non-simdized reference bar *)
  rows : opd_row list;
  loops : int;
  reassoc : bool;
}

let opd_figure ~machine ~(spec : Synth.spec) ~count ~reassoc : opd_figure =
  let programs = Synth.benchmark ~machine ~spec ~count in
  let seq =
    Simd_support.Util.mean
      (List.map
         (fun p -> Lb.seq_opd ~analysis:(Analysis.check_exn ~machine p))
         programs)
  in
  let rows =
    List.map
      (fun scheme ->
        let config = config_of_scheme ~machine ~reassoc scheme in
        let samples = List.map (fun p -> Measure.run ~config p) programs in
        let totals = List.map (fun s -> Measure.opd s) samples in
        let lbs = List.map (fun s -> Lb.opd s.Measure.lb) samples in
        let shift_overs =
          List.map
            (fun s ->
              Float.max 0.0
                (Measure.shifts_per_datum s -. Lb.shifts_per_datum s.Measure.lb))
            samples
        in
        let lb_opd = Simd_support.Util.mean lbs in
        let shift_overhead = Simd_support.Util.mean shift_overs in
        let mean_total = Simd_support.Util.mean totals in
        {
          name = scheme_name scheme;
          lb_opd;
          shift_overhead;
          other_overhead = Float.max 0.0 (mean_total -. lb_opd -. shift_overhead);
          total_opd = mean_total;
          hmean_opd = Simd_support.Util.harmonic_mean totals;
        })
      all_schemes
  in
  { seq_opd = seq; rows; loops = count; reassoc }

let pp_opd_figure fmt (f : opd_figure) =
  Format.fprintf fmt
    "OPD breakdown (%d loops, OffsetReassoc %s); SEQ = %.3f opd@\n" f.loops
    (if f.reassoc then "ON" else "OFF")
    f.seq_opd;
  Format.fprintf fmt "%-14s %8s %8s %8s %8s %8s@\n" "scheme" "LB" "shift+" "other+"
    "total" "hmean";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s %8.3f %8.3f %8.3f %8.3f %8.3f@\n" r.name r.lb_opd
        r.shift_overhead r.other_overhead r.total_opd r.hmean_opd)
    f.rows

(* ------------------------------------------------------------------ *)
(* Tables 1 & 2: best-scheme speedups                                  *)
(* ------------------------------------------------------------------ *)

(** One table row: a loop family (s statements × l loads), the best
    compile-time scheme and the best runtime-alignment scheme, with actual
    and bound speedups (harmonic means over the family). *)
type speedup_row = {
  label : string;
  stmts : int;
  loads : int;
  ct_policy : string;
  ct_actual : float;
  ct_lb : float;
  rt_policy : string;
  rt_actual : float;
  rt_lb : float;
}

type speedup_table = {
  elem : Ast.elem_ty;
  peak : int;  (** B: data per vector *)
  rows : speedup_row list;
  loops_per_row : int;
}

let best_scheme ~machine ~reassoc ~schemes programs =
  (* (scheme, hmean actual speedup, hmean LB speedup) maximizing actual *)
  let evaluate scheme =
    let config = config_of_scheme ~machine ~reassoc scheme in
    let samples = List.map (fun p -> Measure.run ~config p) programs in
    ( scheme,
      Simd_support.Util.harmonic_mean (List.map (fun s -> Measure.speedup s) samples),
      Simd_support.Util.harmonic_mean (List.map (fun s -> Measure.lb_speedup s) samples)
    )
  in
  Simd_support.Util.max_by (fun (_, actual, _) -> actual) (List.map evaluate schemes)

let speedup_table ~machine ~(elem : Ast.elem_ty) ?(shapes =
    [ (1, 2); (1, 4); (1, 6); (2, 4); (4, 4); (4, 8) ]) ?(count = 50)
    ?(base_spec = Synth.default_spec) () : speedup_table =
  let compile_time_schemes =
    (* the paper's contenders: each policy with each reuse strategy *)
    all_schemes
  in
  let runtime_schemes =
    List.map
      (fun reuse -> { policy = Policy.Zero; reuse })
      [ Driver.No_reuse; Driver.Predictive_commoning; Driver.Software_pipelining ]
  in
  let rows =
    List.map
      (fun (s, l) ->
        let spec = { base_spec with Synth.stmts = s; loads_per_stmt = l; elem } in
        let programs = Synth.benchmark ~machine ~spec ~count in
        let ct_scheme, ct_actual, ct_lb =
          best_scheme ~machine ~reassoc:false ~schemes:compile_time_schemes programs
        in
        let rt_programs = List.map Synth.hide_alignments programs in
        let rt_scheme, rt_actual, rt_lb =
          best_scheme ~machine ~reassoc:false ~schemes:runtime_schemes rt_programs
        in
        {
          label = Printf.sprintf "S%d*L%d" s l;
          stmts = s;
          loads = l;
          ct_policy = scheme_name ct_scheme;
          ct_actual;
          ct_lb;
          rt_policy = scheme_name rt_scheme;
          rt_actual;
          rt_lb;
        })
      shapes
  in
  {
    elem;
    peak = Simd_machine.Config.blocking_factor machine ~elem:(Ast.elem_width elem);
    rows;
    loops_per_row = count;
  }

let pp_speedup_table fmt (t : speedup_table) =
  Format.fprintf fmt
    "Speedup of simdized vs scalar code (%s, %d data per vector → peak %d; %d \
     loops per row)@\n"
    (Ast.elem_ty_name t.elem) t.peak t.peak t.loops_per_row;
  Format.fprintf fmt "%-8s | %-14s %7s %7s | %-14s %7s %7s@\n" "loop"
    "best(ct)" "actual" "LB" "best(rt)" "actual" "LB";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8s | %-14s %7.2f %7.2f | %-14s %7.2f %7.2f@\n" r.label
        r.ct_policy r.ct_actual r.ct_lb r.rt_policy r.rt_actual r.rt_lb)
    t.rows

(* ------------------------------------------------------------------ *)
(* §5.4 coverage: simdize everything, verify everything                *)
(* ------------------------------------------------------------------ *)

type coverage_failure = {
  spec : Synth.spec;
  variant : string;
  scheme : string;
  message : string;
}

type coverage_report = {
  attempted : int;
  verified : int;
  failures : coverage_failure list;
}

(** [coverage ~machine ~loops ()] — generate loops across the (l, s, n, b,
    r) grid (l ≤ 8, s ≤ 4, trip ∈ [997, 1000]) with randomly drawn bias and
    reuse, in compile-time, runtime-alignment and runtime-trip variants,
    simdize each under a rotating scheme, simulate, and verify against the
    scalar interpreter (§5.4). *)
let coverage ~machine ?(seed = 7) ?(loops = 1000) () : coverage_report =
  let prng = Simd_support.Prng.create ~seed in
  let attempted = ref 0 in
  let verified = ref 0 in
  let failures = ref [] in
  let schemes = Array.of_list all_schemes in
  for k = 0 to loops - 1 do
    let spec =
      {
        Synth.stmts = Simd_support.Prng.range prng ~lo:1 ~hi:4;
        loads_per_stmt = Simd_support.Prng.range prng ~lo:1 ~hi:8;
        trip = Simd_support.Prng.range prng ~lo:997 ~hi:1000;
        elem =
          Simd_support.Prng.pick prng [ Ast.I8; Ast.I16; Ast.I32; Ast.I64 ];
        bias = Simd_support.Prng.float prng;
        reuse = Simd_support.Prng.float prng;
        (* a third of the sweep also exercises the extensions *)
        stride_prob =
          (if Simd_support.Prng.chance prng 0.33 then 0.3 else 0.0);
        reduce_prob =
          (if Simd_support.Prng.chance prng 0.33 then 0.3 else 0.0);
        seed = 100_000 + k;
      }
    in
    let program = Synth.generate ~machine spec in
    let scheme = schemes.(k mod Array.length schemes) in
    let variants =
      [
        ("compile-time", program, None);
        ("runtime-align", Synth.hide_alignments program, None);
        ("runtime-trip", Synth.hide_trip program, Some spec.Synth.trip);
      ]
    in
    List.iter
      (fun (variant, p, trip) ->
        incr attempted;
        let config = config_of_scheme ~machine ~reassoc:false scheme in
        match Measure.verify ~config ?trip ~setup_seed:(1000 + k) p with
        | Ok () -> incr verified
        | Error message ->
          failures :=
            { spec; variant; scheme = scheme_name scheme; message } :: !failures)
      variants
  done;
  { attempted = !attempted; verified = !verified; failures = List.rev !failures }

let pp_coverage fmt (r : coverage_report) =
  Format.fprintf fmt "coverage: %d/%d loop variants simdized and verified@\n"
    r.verified r.attempted;
  List.iteri
    (fun i f ->
      if i < 10 then
        Format.fprintf fmt "  FAIL %s %s (%s): %s@\n"
          (Synth.show_spec f.spec) f.variant f.scheme f.message)
    r.failures

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice studies beyond the paper's figures         *)
(* ------------------------------------------------------------------ *)

(** Reuse/unrolling ablation: operations per datum with copies charged at
    full cost (weight 1), isolating what software pipelining buys and what
    unrolling recovers. One row per (reuse, unroll) pair. *)
type ablation_row = { knob : string; value : string; opd : float; speedup : float }

type ablation = { title : string; rows : ablation_row list }

let pp_ablation fmt (a : ablation) =
  Format.fprintf fmt "%s@\n%-16s %-12s %8s %9s@\n" a.title "knob" "value" "opd"
    "speedup";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-16s %-12s %8.3f %8.2fx@\n" r.knob r.value r.opd
        r.speedup)
    a.rows

let charged = { Measure.default_weights with Measure.copy = 1.0 }

let mean_opd ~weights ~config programs =
  let samples = List.map (fun p -> Measure.run ~config p) programs in
  ( Simd_support.Util.mean (List.map (Measure.opd ~weights) samples),
    Simd_support.Util.harmonic_mean
      (List.map (Measure.speedup ~weights) samples) )

(** Reuse × unrolling, with copies charged (weight 1): quantifies the
    paper's §4.5 claim that unrolling removes the pipelining copies. *)
let ablation_reuse_unroll ~machine ?(spec = Synth.default_spec) ?(count = 20) ()
    : ablation =
  let programs = Synth.benchmark ~machine ~spec ~count in
  let rows =
    List.concat_map
      (fun (reuse, rname) ->
        List.map
          (fun unroll ->
            let config =
              {
                Driver.default with
                Driver.machine;
                policy = Policy.Dominant;
                reuse;
                unroll;
              }
            in
            let opd, speedup = mean_opd ~weights:charged ~config programs in
            { knob = rname; value = Printf.sprintf "unroll=%d" unroll; opd; speedup })
          [ 1; 2; 4 ])
      [
        (Driver.No_reuse, "plain");
        (Driver.Predictive_commoning, "pc");
        (Driver.Software_pipelining, "sp");
      ]
  in
  { title = "Ablation: reuse strategy x unrolling (copies charged at weight 1)";
    rows }

(** MemNorm ablation on a same-array multi-tap loop (FIR-like), where chunk
    normalization is what exposes the redundant loads. *)
let ablation_memnorm ~machine () : ablation =
  let src taps =
    let loads =
      String.concat " + " (List.init taps (fun k -> Printf.sprintf "x[i+%d]" k))
    in
    Printf.sprintf
      "int32 y[1100] @ 0;\nint32 x[1100] @ 4;\nfor (i = 0; i < 1000; i++) { y[i] = %s; }"
      loads
  in
  let rows =
    List.concat_map
      (fun taps ->
        let program = Simd_loopir.Parse.program_of_string (src taps) in
        List.map
          (fun memnorm ->
            let config =
              {
                Driver.default with
                Driver.machine;
                memnorm;
                reuse = Driver.Predictive_commoning;
              }
            in
            let sample = Measure.run ~config program in
            {
              knob = Printf.sprintf "%d-tap FIR" taps;
              value = (if memnorm then "memnorm" else "no-memnorm");
              opd = Measure.opd sample;
              speedup = Measure.speedup sample;
            })
          [ false; true ])
      [ 2; 4; 8 ]
  in
  { title = "Ablation: memory normalization on same-array multi-tap loops"; rows }

(** Vector length sweep: the framework is parametric in V; speedups should
    scale with data per vector. *)
let ablation_vector_length ?(spec = Synth.default_spec) ?(count = 20) () :
    ablation =
  let rows =
    List.map
      (fun vl ->
        let machine = Simd_machine.Config.create ~vector_len:vl in
        let programs = Synth.benchmark ~machine ~spec ~count in
        let config = { Driver.default with Driver.machine } in
        let opd, speedup = mean_opd ~weights:Measure.default_weights ~config programs in
        {
          knob = "vector_len";
          value = Printf.sprintf "V=%d (B=%d)" vl (vl / 4);
          opd;
          speedup;
        })
      [ 8; 16; 32; 64 ]
  in
  { title = "Ablation: vector register length (int32 loops, S1*L6)"; rows }

(** Element width sweep at V=16 — extends Tables 1/2 to all four widths. *)
let ablation_elem_width ~machine ?(count = 20) () : ablation =
  let rows =
    List.map
      (fun elem ->
        let spec = { Synth.default_spec with Synth.elem } in
        let programs = Synth.benchmark ~machine ~spec ~count in
        let config = { Driver.default with Driver.machine } in
        let opd, speedup = mean_opd ~weights:Measure.default_weights ~config programs in
        {
          knob = "elem_width";
          value =
            Printf.sprintf "%s (peak %d)"
              (Simd_loopir.Ast.elem_ty_name elem)
              (16 / Simd_loopir.Ast.elem_width elem);
          opd;
          speedup;
        })
      [ Simd_loopir.Ast.I8; Simd_loopir.Ast.I16; Simd_loopir.Ast.I32; Simd_loopir.Ast.I64 ]
  in
  { title = "Ablation: element width at V=16 (S1*L6 loops)"; rows }

(** Peeling-baseline comparison (§6): fraction of loops the prior-work
    baseline can simdize at all, vs. this paper's scheme, by misalignment
    bias. *)
type peel_row = { bias : float; peel_ok : int; ours_ok : int; total : int }

let peeling_coverage ~machine ?(count = 40) () : peel_row list =
  List.map
    (fun bias ->
      let spec = { Synth.default_spec with Synth.bias; loads_per_stmt = 3 } in
      let programs = Synth.benchmark ~machine ~spec ~count in
      let peel_ok =
        List.length
          (List.filter
             (fun p ->
               match
                 Driver.simdize
                   { Driver.default with Driver.machine; peel_baseline = true }
                   p
               with
               | Driver.Simdized _ -> true
               | Driver.Scalar _ -> false)
             programs)
      in
      let ours_ok =
        List.length
          (List.filter
             (fun p ->
               match Driver.simdize { Driver.default with Driver.machine } p with
               | Driver.Simdized _ -> true
               | Driver.Scalar _ -> false)
             programs)
      in
      { bias; peel_ok; ours_ok; total = count })
    [ 0.0; 0.3; 0.7; 1.0 ]

let pp_peeling fmt rows =
  Format.fprintf fmt
    "Baseline comparison: loops simdizable by peeling (prior work) vs this \
     scheme@\n%-8s %10s %10s %8s@\n"
    "bias" "peeling" "ours" "total";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8.1f %10d %10d %8d@\n" r.bias r.peel_ok r.ours_ok
        r.total)
    rows

(* ------------------------------------------------------------------ *)
(* JSON serialization (the bench harness's --json output)              *)
(* ------------------------------------------------------------------ *)

module Json = Simd_support.Json

let opd_row_to_json (r : opd_row) : Json.t =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("lb_opd", Json.Float r.lb_opd);
      ("shift_overhead", Json.Float r.shift_overhead);
      ("other_overhead", Json.Float r.other_overhead);
      ("total_opd", Json.Float r.total_opd);
      ("hmean_opd", Json.Float r.hmean_opd);
    ]

let opd_figure_to_json (f : opd_figure) : Json.t =
  Json.Obj
    [
      ("seq_opd", Json.Float f.seq_opd);
      ("loops", Json.Int f.loops);
      ("reassoc", Json.Bool f.reassoc);
      ("rows", Json.List (List.map opd_row_to_json f.rows));
    ]

let speedup_row_to_json (r : speedup_row) : Json.t =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("stmts", Json.Int r.stmts);
      ("loads", Json.Int r.loads);
      ("ct_policy", Json.String r.ct_policy);
      ("ct_actual", Json.Float r.ct_actual);
      ("ct_lb", Json.Float r.ct_lb);
      ("rt_policy", Json.String r.rt_policy);
      ("rt_actual", Json.Float r.rt_actual);
      ("rt_lb", Json.Float r.rt_lb);
    ]

let speedup_table_to_json (t : speedup_table) : Json.t =
  Json.Obj
    [
      ("elem", Json.String (Ast.elem_ty_name t.elem));
      ("peak", Json.Int t.peak);
      ("loops_per_row", Json.Int t.loops_per_row);
      ("rows", Json.List (List.map speedup_row_to_json t.rows));
    ]

let coverage_to_json (c : coverage_report) : Json.t =
  Json.Obj
    [
      ("attempted", Json.Int c.attempted);
      ("verified", Json.Int c.verified);
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("spec", Json.String (Synth.show_spec f.spec));
                   ("variant", Json.String f.variant);
                   ("scheme", Json.String f.scheme);
                   ("message", Json.String f.message);
                 ])
             c.failures) );
    ]

let ablation_to_json (a : ablation) : Json.t =
  Json.Obj
    [
      ("title", Json.String a.title);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("knob", Json.String r.knob);
                   ("value", Json.String r.value);
                   ("opd", Json.Float r.opd);
                   ("speedup", Json.Float r.speedup);
                 ])
             a.rows) );
    ]

let peeling_to_json (rows : peel_row list) : Json.t =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("bias", Json.Float r.bias);
             ("peel_ok", Json.Int r.peel_ok);
             ("ours_ok", Json.Int r.ours_ok);
             ("total", Json.Int r.total);
           ])
       rows)
