(** The analytic lower bound of §5.3.

    "The lower bound is computed based on parameters (l, s, n, b, r). It
    includes each distinct 16-byte aligned load and store in the loop. The
    bound also accounts for a minimum number of data reorganizations per
    statement … for a statement with accesses of n distinct alignments, a
    minimum of n−1 vshiftpair operations are required. Note that for the
    shift-zero policy, the number of vshiftpair operations is fully
    deterministic, namely one for each of the m misaligned memory streams.
    For that policy only, LB reflects m instead of n−1. The bound also
    includes the data computations in the loop, but explicitly ignores all
    architecture- and compiler-dependent factors such as address
    computation, constant generation, and loop overhead." *)

open Simd_loopir
module Policy = Simd_dreorg.Policy

type t = {
  distinct_load_streams : int;
      (** distinct 16-byte-aligned load streams per simdized iteration *)
  store_streams : int;  (** one vstore per statement *)
  min_shifts : int;  (** minimum reorganization ops per simdized iteration *)
  vops : int;  (** data computations per simdized iteration *)
  block : int;
  stmts : int;
}
[@@deriving show { with_path = false }, eq]

(** Chunk identity of a load stream: two static loads of one array address
    the same aligned vectors exactly when their normalized element offsets
    agree ([c - o/D]); with runtime alignment we conservatively key on the
    raw offset. *)
let stream_key ~(analysis : Analysis.t) (r : Ast.mem_ref) =
  match Analysis.offset_of analysis r with
  | Align.Known o ->
    ( r.Ast.ref_array,
      (r.Ast.ref_offset - (o / analysis.Analysis.elem), r.Ast.ref_stride) )
  | Align.Runtime -> (r.Ast.ref_array, (r.Ast.ref_offset, r.Ast.ref_stride))

(* Distinct alignment classes among one statement's references (loads and
   store; a reduction's target is offset 0, as is a gathered stream). *)
let stmt_aligns ~(analysis : Analysis.t) (s : Ast.stmt) =
  let offs =
    List.map
      (fun (r : Ast.mem_ref) ->
        if r.Ast.ref_stride > 1 then Align.Known 0
        else Analysis.offset_of analysis r)
      (Ast.stmt_refs s)
  in
  let offs = if Ast.is_reduction s then Align.Known 0 :: offs else offs in
  Simd_support.Util.dedup offs

(** [compute ~analysis ~policy] — the bound's components for this loop
    under the given placement policy. *)
let compute ~(analysis : Analysis.t) ~(policy : Policy.t) : t =
  let program = analysis.Analysis.program in
  let body = program.Ast.loop.Ast.body in
  let loads = List.concat_map (fun (s : Ast.stmt) -> Ast.expr_loads s.Ast.rhs) body in
  (* A stride-s gather consumes s chunks of its array per simdized
     iteration (extension). *)
  let distinct_load_streams =
    Simd_support.Util.sum_by
      (fun key -> snd (snd key))
      (Simd_support.Util.dedup (List.map (stream_key ~analysis) loads))
  in
  (* Reductions (extension) store nothing per iteration. *)
  let store_streams =
    List.length (List.filter (fun (s : Ast.stmt) -> not (Ast.is_reduction s)) body)
  in
  let min_shifts =
    match policy with
    | Policy.Zero ->
      (* m: one shift per misaligned stream (runtime offsets always shift). *)
      let stream_misaligned refs =
        let keyed =
          Simd_support.Util.dedup (List.map (fun r -> (stream_key ~analysis r, r)) refs)
        in
        List.length
          (List.filter
             (fun (_, (r : Ast.mem_ref)) ->
               (* gathered streams arrive at offset 0: never stream-shifted
                  (their window shifts are charged separately below) *)
               r.Ast.ref_stride = 1
               &&
               match Analysis.offset_of analysis r with
               | Align.Known 0 -> false
               | Align.Known _ | Align.Runtime -> true)
             keyed)
      in
      let load_shifts = stream_misaligned loads in
      let store_shifts =
        List.length
          (List.filter
             (fun (s : Ast.stmt) ->
               (* a reduction's target is offset 0: no root shift under
                  zero-shift (extension) *)
               (not (Ast.is_reduction s))
               &&
               match Analysis.offset_of analysis s.Ast.lhs with
               | Align.Known 0 -> false
               | Align.Known _ | Align.Runtime -> true)
             body)
      in
      load_shifts + store_shifts
    | Policy.Eager | Policy.Lazy | Policy.Dominant | Policy.Optimal
    | Policy.Auto ->
      (* n−1 per statement, n = distinct alignments among the statement's
         references (loads and store; a reduction's target is offset 0).
         Also a valid bound for the exact solver and auto selection: any
         valid placement must connect all n alignment classes. *)
      Simd_support.Util.sum_by
        (fun (s : Ast.stmt) ->
          max 0 (List.length (stmt_aligns ~analysis s) - 1))
        body
    | Policy.Joint ->
      (* Cross-statement sharing may serve several statements with one
         vshiftstream, so Σ(n−1) is not a valid bound. Any joint placement
         must still connect each statement's alignment classes; merging
         the per-statement class sets into body-wide connected components
         needs at least (classes − 1) shifts per component. *)
      let groups =
        List.filter_map
          (fun (s : Ast.stmt) ->
            let offs = stmt_aligns ~analysis s in
            if List.length offs >= 2 then Some offs else None)
          body
      in
      let components =
        List.fold_left
          (fun comps offs ->
            let touching, rest =
              List.partition
                (fun comp -> List.exists (fun o -> List.mem o comp) offs)
                comps
            in
            Simd_support.Util.dedup (offs @ List.concat touching) :: rest)
          [] groups
      in
      Simd_support.Util.sum_by
        (fun comp -> List.length comp - 1)
        components
  in
  (* Strided gathers need their pack trees regardless of policy:
     (s-1) vpacks, plus s window shifts when misaligned (extension). *)
  let gather_ops =
    Simd_support.Util.sum_by
      (fun (r : Ast.mem_ref) ->
        if r.Ast.ref_stride <= 1 then 0
        else
          let s = r.Ast.ref_stride in
          let shifts =
            match Analysis.offset_of analysis r with
            | Align.Known 0 -> 0
            | Align.Known _ | Align.Runtime -> s
          in
          s - 1 + shifts)
      (Simd_support.Util.dedup loads)
  in
  let min_shifts = min_shifts + gather_ops in
  let vops =
    (* a reduction additionally pays one accumulate per simdized iteration *)
    Simd_support.Util.sum_by
      (fun (s : Ast.stmt) ->
        Ast.expr_op_count s.Ast.rhs + if Ast.is_reduction s then 1 else 0)
      body
  in
  {
    distinct_load_streams;
    store_streams;
    min_shifts;
    vops;
    block = analysis.Analysis.block;
    stmts = List.length body;
  }

(** [shifts_per_datum t] — the shift component alone (for the figure
    breakdowns). *)
let shifts_per_datum t =
  float_of_int t.min_shifts /. float_of_int (t.stmts * t.block)

(** [opd t] — the bound as operations per datum: per simdized iteration the
    loop needs at least the counted operations, and produces [s*B] data. *)
let opd t =
  float_of_int (t.distinct_load_streams + t.store_streams + t.min_shifts + t.vops)
  /. float_of_int (t.stmts * t.block)

(** [seq_opd ~analysis] — the non-simdized reference: ideal scalar
    operations per datum (loads + arithmetic + store, per statement). *)
let seq_opd ~(analysis : Analysis.t) =
  let body = analysis.Analysis.program.Ast.loop.Ast.body in
  let ops =
    Simd_support.Util.sum_by
      (fun (s : Ast.stmt) ->
        List.length (Ast.expr_loads s.Ast.rhs) + Ast.expr_op_count s.Ast.rhs + 1)
      body
  in
  float_of_int ops /. float_of_int (List.length body)
