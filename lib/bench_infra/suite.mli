(** Experiment drivers reproducing §5's figures and tables, plus the
    extension ablations. Each driver returns plain data (tests assert on
    trends) and has a renderer used by [bin/experiments] and
    [bench/main]. *)

open Simd_loopir
module Policy = Simd_dreorg.Policy
module Driver = Simd_codegen.Driver

type scheme = { policy : Policy.t; reuse : Driver.reuse }

val scheme_name : scheme -> string
val all_schemes : scheme list

val config_of_scheme :
  machine:Simd_machine.Config.t -> reassoc:bool -> scheme -> Driver.config

(** {2 Figures 11 & 12: OPD breakdown per scheme} *)

type opd_row = {
  name : string;
  lb_opd : float;
  shift_overhead : float;  (** measured reorganization beyond the bound *)
  other_overhead : float;
  total_opd : float;
  hmean_opd : float;
}

type opd_figure = {
  seq_opd : float;
  rows : opd_row list;
  loops : int;
  reassoc : bool;
}

val opd_figure :
  machine:Simd_machine.Config.t ->
  spec:Synth.spec ->
  count:int ->
  reassoc:bool ->
  opd_figure

val pp_opd_figure : Format.formatter -> opd_figure -> unit

(** {2 Tables 1 & 2: best-scheme speedups} *)

type speedup_row = {
  label : string;
  stmts : int;
  loads : int;
  ct_policy : string;
  ct_actual : float;
  ct_lb : float;
  rt_policy : string;
  rt_actual : float;
  rt_lb : float;
}

type speedup_table = {
  elem : Ast.elem_ty;
  peak : int;
  rows : speedup_row list;
  loops_per_row : int;
}

val best_scheme :
  machine:Simd_machine.Config.t ->
  reassoc:bool ->
  schemes:scheme list ->
  Ast.program list ->
  scheme * float * float

val speedup_table :
  machine:Simd_machine.Config.t ->
  elem:Ast.elem_ty ->
  ?shapes:(int * int) list ->
  ?count:int ->
  ?base_spec:Synth.spec ->
  unit ->
  speedup_table

val pp_speedup_table : Format.formatter -> speedup_table -> unit

(** {2 §5.4 coverage} *)

type coverage_failure = {
  spec : Synth.spec;
  variant : string;
  scheme : string;
  message : string;
}

type coverage_report = {
  attempted : int;
  verified : int;
  failures : coverage_failure list;
}

val coverage :
  machine:Simd_machine.Config.t -> ?seed:int -> ?loops:int -> unit -> coverage_report

val pp_coverage : Format.formatter -> coverage_report -> unit

(** {2 Ablations (extensions)} *)

type ablation_row = { knob : string; value : string; opd : float; speedup : float }
type ablation = { title : string; rows : ablation_row list }

val pp_ablation : Format.formatter -> ablation -> unit

val ablation_reuse_unroll :
  machine:Simd_machine.Config.t ->
  ?spec:Synth.spec ->
  ?count:int ->
  unit ->
  ablation
(** Reuse × unrolling with copies charged at weight 1 (§4.5's claim). *)

val ablation_memnorm : machine:Simd_machine.Config.t -> unit -> ablation
val ablation_vector_length : ?spec:Synth.spec -> ?count:int -> unit -> ablation
val ablation_elem_width :
  machine:Simd_machine.Config.t -> ?count:int -> unit -> ablation

type peel_row = { bias : float; peel_ok : int; ours_ok : int; total : int }

val peeling_coverage :
  machine:Simd_machine.Config.t -> ?count:int -> unit -> peel_row list
(** Fraction of loops the prior-work peeling baseline can simdize at all,
    by alignment bias, vs this scheme. *)

val pp_peeling : Format.formatter -> peel_row list -> unit

(** {2 JSON serialization (bench [--json])} *)

val opd_figure_to_json : opd_figure -> Simd_support.Json.t
val speedup_table_to_json : speedup_table -> Simd_support.Json.t
val coverage_to_json : coverage_report -> Simd_support.Json.t
val ablation_to_json : ablation -> Simd_support.Json.t
val peeling_to_json : peel_row list -> Simd_support.Json.t
