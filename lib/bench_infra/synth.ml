(** Synthesized loop benchmarks (paper §5.3).

    "The loop benchmarks are synthesized based on a set of parameters: s,
    the number of statements, l, the number of load references per
    statement, and n, the iteration count. … The alignment of each memory
    reference is randomly selected, with a possible bias b toward a single,
    randomly selected alignment. Each memory reference within a single
    statement accesses a distinct array, but different statements can
    contain accesses to the same array. The amount of array reuse r among
    multiple statements is also parameterized."

    All draws come from a seeded SplitMix64 stream: a spec generates exactly
    one program, reproducibly. *)

open Simd_loopir
open Simd_support

type spec = {
  stmts : int;  (** s *)
  loads_per_stmt : int;  (** l *)
  trip : int;  (** n *)
  elem : Ast.elem_ty;
  bias : float;  (** b: probability of the biased alignment *)
  reuse : float;  (** r: probability a load reuses an earlier statement's ref *)
  stride_prob : float;
      (** extension: probability a load is a stride-2/4 gather (0 for the
          paper's benchmarks) *)
  reduce_prob : float;
      (** extension: probability a statement is a reduction (0 for the
          paper's benchmarks) *)
  seed : int;
}
[@@deriving show { with_path = false }, eq]

let default_spec =
  {
    stmts = 1;
    loads_per_stmt = 6;
    trip = 1000;
    elem = Ast.I32;
    bias = 0.3;
    reuse = 0.3;
    stride_prob = 0.0;
    reduce_prob = 0.0;
    seed = 42;
  }

(** [generate ~machine spec] — one synthesized loop program.

    Alignment of a reference [x\[i + c\]] is realized by choosing the index
    offset [c] uniformly in [\[0, 4\]] and then declaring the array base
    alignment [k = (target - c*D) mod V], so the reference's stream offset
    is exactly the drawn target. *)
let generate ~machine (spec : spec) : Ast.program =
  if spec.stmts < 1 || spec.loads_per_stmt < 1 then
    invalid_arg "Synth.generate: need at least one statement and one load";
  let prng = Prng.create ~seed:spec.seed in
  let d = Ast.elem_width spec.elem in
  let v = Simd_machine.Config.vector_len machine in
  let align_choices = List.init (v / d) (fun k -> k * d) in
  let biased_target = Prng.pick prng align_choices in
  let draw_alignment () =
    if Prng.chance prng spec.bias then biased_target
    else Prng.pick prng align_choices
  in
  let max_offset = 4 in
  let arrays = ref [] (* reversed decl list *) in
  let fresh_array ?(stride = 1) ?len prefix idx =
    let name = Printf.sprintf "%s%d" prefix idx in
    let target = draw_alignment () in
    let c = Prng.int prng ~bound:(max_offset + 1) in
    let base = Util.pos_mod (target - (c * d)) v in
    let arr_len =
      match len with
      | Some n -> n
      | None -> (stride * spec.trip) + max_offset + 8
    in
    arrays :=
      { Ast.arr_name = name; arr_ty = spec.elem; arr_len; arr_align = Ast.Known base }
      :: !arrays;
    { Ast.ref_array = name; ref_offset = c; ref_stride = stride }
  in
  (* All load refs generated so far, for cross-statement reuse. *)
  let prior_loads = ref [] in
  let counter = ref 0 in
  let gen_stmt si =
    let used = ref [] in
    let gen_load () =
      let reusable =
        List.filter
          (fun (r : Ast.mem_ref) -> not (List.mem r.Ast.ref_array !used))
          !prior_loads
      in
      let r =
        if si > 0 && reusable <> [] && Prng.chance prng spec.reuse then
          Prng.pick prng reusable
        else begin
          incr counter;
          let stride =
            if Prng.chance prng spec.stride_prob then Prng.pick prng [ 2; 4 ]
            else 1
          in
          fresh_array ~stride "x" !counter
        end
      in
      used := r.Ast.ref_array :: !used;
      prior_loads := r :: !prior_loads;
      r
    in
    let loads = List.init spec.loads_per_stmt (fun _ -> gen_load ()) in
    let rhs =
      match List.map (fun r -> Ast.Load r) loads with
      | [] -> assert false
      | e :: rest -> List.fold_left (fun acc x -> Ast.Binop (Ast.Add, acc, x)) e rest
    in
    incr counter;
    if Prng.chance prng spec.reduce_prob then begin
      let acc = fresh_array ~len:1 "acc" !counter in
      let op = Prng.pick prng [ Ast.Add; Ast.Min; Ast.Max; Ast.Or; Ast.Xor ] in
      { Ast.lhs = { acc with Ast.ref_offset = 0 }; rhs; kind = Ast.Reduce op; guard = None }
    end
    else
      let lhs = fresh_array "y" !counter in
      { Ast.lhs; rhs; kind = Ast.Assign; guard = None }
  in
  let body = List.init spec.stmts gen_stmt in
  {
    Ast.arrays = List.rev !arrays;
    params = [];
    loop = { Ast.counter = "i"; trip = Ast.Trip_const spec.trip; body };
  }

(** [hide_alignments program] — the same loop compiled without alignment
    information: every array's base alignment becomes a runtime value. Used
    for the paper's "align at runtime" measurement columns. The simulator's
    placement still realizes the original alignments only if the caller
    keeps the original layout; by default placement draws fresh random
    (naturally aligned) bases, which follows the same distribution. *)
let hide_alignments (p : Ast.program) : Ast.program =
  {
    p with
    Ast.arrays =
      List.map (fun d -> { d with Ast.arr_align = Ast.Unknown }) p.Ast.arrays;
  }

(** [hide_trip program] — the same loop with an unknown (runtime) trip
    count, exercising §4.4's unknown-loop-bound path. The original constant
    is recovered at simulation time via [Run.prepare ~trip]. *)
let hide_trip (p : Ast.program) : Ast.program =
  let param = "n" in
  if List.mem param p.Ast.params then p
  else
    {
      p with
      Ast.params = p.Ast.params @ [ param ];
      loop = { p.Ast.loop with Ast.trip = Ast.Trip_param param };
    }

(** [const_trip_exn p] — the trip count of a constant-bound program. *)
let const_trip_exn (p : Ast.program) =
  match p.Ast.loop.Ast.trip with
  | Ast.Trip_const n -> n
  | Ast.Trip_param _ -> invalid_arg "Synth.const_trip_exn: runtime trip"

(** [benchmark ~machine ~spec ~count] — a family of [count] loops sharing
    [spec]'s shape but distinct seeds (the paper's 50-loop benchmarks). *)
let benchmark ~machine ~(spec : spec) ~count : Ast.program list =
  List.init count (fun k -> generate ~machine { spec with seed = spec.seed + (1000 * k) })
