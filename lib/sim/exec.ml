(** Execution of simdized programs on the machine model.

    The executor is the stand-in for the paper's cycle-accurate simulator:
    it runs a {!Simd_vir.Prog.t} against a byte arena with AltiVec-style
    truncating vector memory operations and counts every dynamic operation
    by class. It also records, per vector load, the effective (truncated)
    address touched, which the never-load-the-same-data-twice property test
    inspects. *)

open Simd_loopir
open Simd_vir
open Simd_machine

(** Dynamic operation counts, by class. Vector load/store counts come from
    the memory model; the rest are counted here. [steady_iterations] lets
    cost models charge per-iteration loop overhead (§5.3 charges the real
    code's loop overhead against the idealized scalar bound). *)
type counts = {
  vloads : int;
  vstores : int;
  vops : int;
  vsplats : int;
  vshifts : int;
  vsplices : int;
  vpacks : int;  (** strided-gather packs (extension) *)
  copies : int;
  scalar_ops : int;  (** scalar arithmetic feeding splats *)
  steady_iterations : int;
}
[@@deriving show { with_path = false }, eq]

let zero_counts =
  {
    vloads = 0;
    vstores = 0;
    vops = 0;
    vsplats = 0;
    vsplices = 0;
    vshifts = 0;
    vpacks = 0;
    copies = 0;
    scalar_ops = 0;
    steady_iterations = 0;
  }

(** Total vector-unit operations (the paper's operation count: every
    dynamically executed instruction of the simdized loop). *)
let total t =
  t.vloads + t.vstores + t.vops + t.vsplats + t.vshifts + t.vsplices + t.vpacks
  + t.copies

type trace_entry = {
  segment : [ `Prologue | `Steady | `Epilogue ];
  array : string;
  site : string;
      (** static identity of the load: its printed address expression; after
          CSE each static access has one load site *)
  effective_addr : int;
}

type env = {
  mem : Mem.t;
  layout : Layout.t;
  params : int64 Simd_support.Util.String_map.t;
  trip : int;
  elem : int;
  v : int;
  temps : (string, Vec.t) Hashtbl.t;
  mutable counter : int;  (** current simdized loop counter value *)
  mutable segment : [ `Prologue | `Steady | `Epilogue ];
  mutable vops : int;
  mutable vsplats : int;
  mutable vshifts : int;
  mutable vsplices : int;
  mutable vpacks : int;
  mutable copies : int;
  mutable scalar_ops : int;
  mutable steady_iterations : int;
  mutable trace : trace_entry list;  (** reversed; only when tracing *)
  tracing : bool;
}

let make_env ~mem ~layout ~params ~trip ~elem ~tracing =
  {
    mem;
    layout;
    params =
      List.fold_left
        (fun m (k, v) -> Simd_support.Util.String_map.add k v m)
        Simd_support.Util.String_map.empty params;
    trip;
    elem;
    v = Config.vector_len (Mem.config mem);
    temps = Hashtbl.create 32;
    counter = 0;
    segment = `Prologue;
    vops = 0;
    vsplats = 0;
    vshifts = 0;
    vsplices = 0;
    vpacks = 0;
    copies = 0;
    scalar_ops = 0;
    steady_iterations = 0;
    trace = [];
    tracing;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let addr_value env (a : Addr.t) : int =
  let index = Addr.at_iteration a ~i:env.counter in
  Layout.addr env.layout ~elem:env.elem ~name:a.Addr.array ~index

let rec rexpr_value env (r : Rexpr.t) : int =
  match r with
  | Rexpr.Const c -> c
  | Rexpr.Trip -> env.trip
  | Rexpr.Counter -> env.counter
  | Rexpr.Offset_of a -> addr_value env a land (env.v - 1)
  | Rexpr.Add (a, b) -> rexpr_value env a + rexpr_value env b
  | Rexpr.Sub (a, b) -> rexpr_value env a - rexpr_value env b
  | Rexpr.Mul_const (a, k) -> rexpr_value env a * k
  | Rexpr.Mod_const (a, m) -> Simd_support.Util.pos_mod (rexpr_value env a) m

let cond_value env (c : Rexpr.cond) : bool =
  match c with
  | Rexpr.Ge (a, b) -> rexpr_value env a >= rexpr_value env b
  | Rexpr.Gt (a, b) -> rexpr_value env a > rexpr_value env b
  | Rexpr.Le (a, b) -> rexpr_value env a <= rexpr_value env b
  | Rexpr.Lt (a, b) -> rexpr_value env a < rexpr_value env b

(** Scalar evaluation of a loop-invariant expression (splat payloads). Each
    arithmetic node counts as one scalar op — these execute once in the
    prologue after splat hoisting, matching real code. *)
let rec scalar_value env (e : Ast.expr) : int64 =
  match e with
  | Ast.Load _ -> invalid_arg "Exec.scalar_value: load in invariant expression"
  | Ast.Const c -> Lane.canonicalize env.elem c
  | Ast.Param x -> (
    match Simd_support.Util.String_map.find_opt x env.params with
    | Some v -> Lane.canonicalize env.elem v
    | None -> invalid_arg (Printf.sprintf "Exec.scalar_value: unbound param %S" x))
  | Ast.Binop (op, a, b) ->
    let va = scalar_value env a in
    let vb = scalar_value env b in
    env.scalar_ops <- env.scalar_ops + 1;
    Lane.apply env.elem op va vb
  | Ast.Select (c, a, b) ->
    (* invariant guard: evaluate the condition once, scalar-wise *)
    let cl = scalar_value env c.Ast.cl in
    let cr = scalar_value env c.Ast.cr in
    env.scalar_ops <- env.scalar_ops + 1;
    if Lane.apply_cmp env.elem c.Ast.cmp cl cr then scalar_value env a
    else scalar_value env b

let rec vexpr_value env (e : Expr.vexpr) : Vec.t =
  match e with
  | Expr.Load a ->
    let addr = addr_value env a in
    if env.tracing then
      env.trace <-
        {
          segment = env.segment;
          array = a.Addr.array;
          site = Addr.to_string a;
          effective_addr = Mem.effective_vector_addr env.mem addr;
        }
        :: env.trace;
    Mem.load_vector env.mem addr
  | Expr.Splat s ->
    let x = scalar_value env s in
    env.vsplats <- env.vsplats + 1;
    Vec.splat ~vector_len:env.v ~elem:env.elem x
  | Expr.Op (op, a, b) ->
    let va = vexpr_value env a in
    let vb = vexpr_value env b in
    env.vops <- env.vops + 1;
    Vec.binop ~elem:env.elem op va vb
  | Expr.Shiftpair (a, b, s) ->
    let va = vexpr_value env a in
    let vb = vexpr_value env b in
    let shift = rexpr_value env s in
    env.vshifts <- env.vshifts + 1;
    Vec.shiftpair va vb ~shift
  | Expr.Splice (a, b, p) ->
    let va = vexpr_value env a in
    let vb = vexpr_value env b in
    let point = rexpr_value env p in
    env.vsplices <- env.vsplices + 1;
    Vec.splice va vb ~point
  | Expr.Pack (a, b) ->
    let va = vexpr_value env a in
    let vb = vexpr_value env b in
    env.vpacks <- env.vpacks + 1;
    Vec.pack_even ~elem:env.elem va vb
  | Expr.Cmp (c, a, b) ->
    let va = vexpr_value env a in
    let vb = vexpr_value env b in
    env.vops <- env.vops + 1;
    Vec.cmp ~elem:env.elem c va vb
  | Expr.Sel (m, a, b) ->
    let vm = vexpr_value env m in
    let va = vexpr_value env a in
    let vb = vexpr_value env b in
    env.vops <- env.vops + 1;
    Vec.select vm va vb
  | Expr.Temp x -> (
    match Hashtbl.find_opt env.temps x with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Exec.vexpr_value: unbound temp %S" x))

let rec exec_stmt env (s : Expr.stmt) : unit =
  match s with
  | Expr.Store (a, e) ->
    let value = vexpr_value env e in
    Mem.store_vector env.mem (addr_value env a) value
  | Expr.Storem (a, e, m) ->
    let value = vexpr_value env e in
    let mask = vexpr_value env m in
    Mem.store_vector_masked env.mem (addr_value env a) value mask
  | Expr.Assign (x, Expr.Temp y) ->
    (* Register copy (pipelining carry): counted separately — the paper
       removes these by unrolling + copy propagation, so cost models may
       weight them to 0. *)
    let value = vexpr_value env (Expr.Temp y) in
    env.copies <- env.copies + 1;
    Hashtbl.replace env.temps x value
  | Expr.Assign (x, e) ->
    let value = vexpr_value env e in
    Hashtbl.replace env.temps x value
  | Expr.If (c, th, el) ->
    if cond_value env c then List.iter (exec_stmt env) th
    else List.iter (exec_stmt env) el

(* ------------------------------------------------------------------ *)
(* Whole-program execution                                             *)
(* ------------------------------------------------------------------ *)

(** [run ~mem ~layout ~params ~trip ?tracing prog] — execute the simdized
    program (the caller is responsible for the [trip > min_trip] guard; see
    {!Run}). Returns the dynamic counts and, when [tracing], the vector-load
    trace in execution order. *)
let run ~mem ~layout ~params ~trip ?(tracing = false) (prog : Prog.t) :
    counts * trace_entry list =
  let env = make_env ~mem ~layout ~params ~trip ~elem:prog.Prog.elem ~tracing in
  Mem.reset_counters mem;
  (* Prologue at i = 0. *)
  env.segment <- `Prologue;
  env.counter <- 0;
  List.iter (exec_stmt env) prog.Prog.prologue;
  (* Steady state (the body may be unrolled: step = unroll * B). *)
  env.segment <- `Steady;
  let upper = Prog.resolve_upper prog ~trip in
  let i = ref prog.Prog.lower in
  while Prog.continue_cond prog ~upper !i do
    env.counter <- !i;
    List.iter (exec_stmt env) prog.Prog.body;
    env.steady_iterations <- env.steady_iterations + 1;
    i := !i + Prog.step prog
  done;
  (* Virtual epilogue iterations at i = exit + k*B. *)
  env.segment <- `Epilogue;
  List.iteri
    (fun k stmts ->
      env.counter <- !i + (k * prog.Prog.block);
      List.iter (exec_stmt env) stmts)
    prog.Prog.epilogues;
  let mc = Mem.counters mem in
  ( {
      vloads = mc.Mem.vector_loads;
      vstores = mc.Mem.vector_stores;
      vops = env.vops;
      vsplats = env.vsplats;
      vshifts = env.vshifts;
      vsplices = env.vsplices;
      vpacks = env.vpacks;
      copies = env.copies;
      scalar_ops = env.scalar_ops;
      steady_iterations = env.steady_iterations;
    },
    List.rev env.trace )
