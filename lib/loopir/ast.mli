(** Abstract syntax of the scalar loop language — the paper's input domain
    (§4.1): a normalized innermost loop whose statements store to (or, as
    our extension, reduce into) stride-one array references, plus
    loop-invariant scalar parameters. *)

type elem_ty = I8 | I16 | I32 | I64 [@@deriving show, eq, ord]

val elem_width : elem_ty -> int
val elem_ty_of_width : int -> elem_ty
val elem_ty_name : elem_ty -> string

(** Compile-time knowledge of an array's base alignment modulo the vector
    length: [Known k] means [base ≡ k (mod V)]; [Unknown] defers to
    runtime. *)
type base_align = Known of int | Unknown [@@deriving show, eq, ord]

type array_decl = {
  arr_name : string;
  arr_ty : elem_ty;
  arr_len : int;  (** extent in elements *)
  arr_align : base_align;
}
[@@deriving show, eq, ord]

(** An array reference [a\[stride*i + offset\]]; stride 1 is the paper's
    case, strides 2 and 4 on loads are the gather extension. *)
type mem_ref = { ref_array : string; ref_offset : int; ref_stride : int }
[@@deriving show, eq, ord]

val mem_ref : ?stride:int -> string -> int -> mem_ref
val supported_strides : int list

type binop = Simd_machine.Lane.binop = Add | Sub | Mul | Min | Max | And | Or | Xor
[@@deriving show, eq, ord]

(** Comparison operators (predication extension), re-exported from the
    machine model like {!binop}. *)
type cmp = Simd_machine.Lane.cmp = Lt | Le | Gt | Ge | Eq | Ne
[@@deriving show, eq, ord]

type expr =
  | Load of mem_ref
  | Param of string  (** loop-invariant scalar parameter *)
  | Const of int64
  | Binop of binop * expr * expr
  | Select of cond * expr * expr
      (** [select(cond, a, b)]: lane-wise [cond ? a : b]; both arms are
          evaluated (no side effects), matching the [vsel] lowering. *)

(** A comparison [cl ⋈ cr] guarding a statement or selecting between arms. *)
and cond = { cmp : cmp; cl : expr; cr : expr }
[@@deriving show, eq, ord]

(** [Assign] is the paper's store statement; [Reduce op] is the reduction
    extension [acc op= rhs] (the accumulator is element 0 of a one-element
    array, addressed absolutely). *)
type stmt_kind = Assign | Reduce of binop [@@deriving show, eq, ord]

(** A statement, optionally guarded ([if (cond) { … }]): a guarded
    statement stores/accumulates only in iterations where the guard
    holds. *)
type stmt = { lhs : mem_ref; rhs : expr; kind : stmt_kind; guard : cond option }
[@@deriving show, eq, ord]

val stmt : ?guard:cond -> mem_ref -> expr -> stmt_kind -> stmt

val is_reduction : stmt -> bool

val negate_cond : cond -> cond
(** The syntactic complement: same operands, complementary operator. *)

val complementary : cond -> cond -> bool
(** Identical operands, complementary operators — the two guards partition
    every iteration. *)

val reduction_identity : binop -> ty:elem_ty -> int64 option
(** The operator's identity (masks invalid lanes), or [None] when the
    operator is unusable in reductions ([Sub]). *)

type trip = Trip_const of int | Trip_param of string [@@deriving show, eq, ord]

type loop = { counter : string; trip : trip; body : stmt list }
[@@deriving show, eq, ord]

type program = { arrays : array_decl list; params : string list; loop : loop }
[@@deriving show, eq, ord]

(** {2 Accessors and traversals} *)

val find_array : program -> string -> array_decl option
val find_array_exn : program -> string -> array_decl

val fold_expr_loads : ('a -> mem_ref -> 'a) -> 'a -> expr -> 'a
val fold_cond_loads : ('a -> mem_ref -> 'a) -> 'a -> cond -> 'a

val expr_loads : expr -> mem_ref list
(** Loads in evaluation order, duplicates preserved. *)

val cond_loads : cond -> mem_ref list

val stmt_refs : stmt -> mem_ref list
(** All stream references: rhs loads, guard loads, then the store for
    [Assign] (a reduction's accumulator cell is not a stream). *)

val stmt_loads : stmt -> mem_ref list
(** Every load of the statement (rhs and guard), no store. *)

val program_refs : program -> mem_ref list

val fold_expr_params : ('a -> string -> 'a) -> 'a -> expr -> 'a
val expr_params : expr -> string list

val expr_op_count : expr -> int
(** Arithmetic node count (the ideal scalar cost's arithmetic part). *)

val expr_size : expr -> int
val map_expr_refs : (mem_ref -> mem_ref) -> expr -> expr
val map_cond_refs : (mem_ref -> mem_ref) -> cond -> cond

val elem_ty_of_program : program -> elem_ty
(** The uniform element type (legality-checked); raises without arrays. *)
