(** Pretty-printing of loop programs to concrete syntax; output re-parses
    to an equal program (property-tested). *)

val binop_symbol : Ast.binop -> string
(** Infix symbol; total — [Min]/[Max] yield their call-syntax names
    ["min"]/["max"] (there is no infix form; {!pp_expr} emits calls). *)

val binop_prec : Ast.binop -> int

val cmp_symbol : Ast.cmp -> string

val pp_mem_ref : Format.formatter -> Ast.mem_ref -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_cond : Format.formatter -> Ast.cond -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_align : Format.formatter -> Ast.base_align -> unit
val pp_array_decl : Format.formatter -> Ast.array_decl -> unit
val pp_trip : Format.formatter -> Ast.trip -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val mem_ref_to_string : Ast.mem_ref -> string
