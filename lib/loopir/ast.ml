(** Abstract syntax of the scalar loop language.

    This is the paper's input domain (§4.1): a normalized innermost loop
    [for (i = 0; i < ub; i++) { ... }] whose statements store to and load
    from stride-one array references [a\[i + c\]], plus loop-invariant scalar
    parameters. All memory references in a loop access data of one uniform
    element width.

    A program also carries the array declarations, because alignment analysis
    needs each array's compile-time base alignment (or the fact that it is
    unknown until runtime). *)

type elem_ty = I8 | I16 | I32 | I64 [@@deriving show { with_path = false }, eq, ord]

let elem_width = function I8 -> 1 | I16 -> 2 | I32 -> 4 | I64 -> 8

let elem_ty_of_width = function
  | 1 -> I8
  | 2 -> I16
  | 4 -> I32
  | 8 -> I64
  | w -> invalid_arg (Printf.sprintf "Ast.elem_ty_of_width: %d" w)

let elem_ty_name = function
  | I8 -> "int8"
  | I16 -> "int16"
  | I32 -> "int32"
  | I64 -> "int64"

(** Compile-time knowledge of an array's base alignment modulo the vector
    length. [Known k] means [base ≡ k (mod V)]; [Unknown] means the
    alignment is only discoverable at runtime (e.g. the array is a function
    parameter). The paper's "natural alignment" assumption ([base mod D = 0])
    is enforced by the legality analysis and by the simulator's placement. *)
type base_align = Known of int | Unknown
[@@deriving show { with_path = false }, eq, ord]

type array_decl = {
  arr_name : string;
  arr_ty : elem_ty;
  arr_len : int;  (** extent in elements; used for placement and verification *)
  arr_align : base_align;
}
[@@deriving show { with_path = false }, eq, ord]

(** An array reference [a\[stride*i + offset\]]. The loop counter appears
    only here (paper assumption: "the loop counter can only appear in the
    address computation of stride-one references"). The paper handles
    stride 1 only; strides 2 and 4 on {e loads} are our gather extension
    (its future-work item "alignment handling of loops with non-unit stride
    accesses"). *)
type mem_ref = { ref_array : string; ref_offset : int; ref_stride : int }
[@@deriving show { with_path = false }, eq, ord]

let mem_ref ?(stride = 1) array offset =
  { ref_array = array; ref_offset = offset; ref_stride = stride }

let supported_strides = [ 1; 2; 4 ]

type binop = Simd_machine.Lane.binop = Add | Sub | Mul | Min | Max | And | Or | Xor
[@@deriving show { with_path = false }, eq, ord]

(** Comparison operators (predication extension): signed lane compares,
    re-exported from the machine model like {!binop}. *)
type cmp = Simd_machine.Lane.cmp = Lt | Le | Gt | Ge | Eq | Ne
[@@deriving show { with_path = false }, eq, ord]

type expr =
  | Load of mem_ref  (** [a\[i + c\]] *)
  | Param of string  (** loop-invariant scalar parameter *)
  | Const of int64  (** integer literal *)
  | Binop of binop * expr * expr
  | Select of cond * expr * expr
      (** [select(cond, a, b)]: lane-wise [cond ? a : b] (predication
          extension). Both arms are evaluated — the language has no
          side-effecting expressions, so this matches the vector [vsel]
          lowering exactly. *)

(** A comparison [cl ⋈ cr] guarding a statement or selecting between
    expression arms. *)
and cond = { cmp : cmp; cl : expr; cr : expr }
[@@deriving show { with_path = false }, eq, ord]

(** Statement kind. [Assign] is the paper's store statement
    [a\[i+c\] = rhs]. [Reduce op] is our reduction extension
    [acc op= rhs] — the paper's "accesses to scalar variables … occurring
    in non-address computation" future-work item — where [lhs] names a
    one-element accumulator array addressed absolutely (not by the loop
    counter) and [op] is an associative-commutative operator with an
    identity. *)
type stmt_kind = Assign | Reduce of binop
[@@deriving show { with_path = false }, eq, ord]

(** One loop-body statement: [a\[i+c\] = rhs] or [acc op= rhs], optionally
    guarded ([if (cond) { … }], the predication extension): a guarded
    statement executes — stores or accumulates — only in iterations where
    the guard holds. The parser attaches the guard of an [if] block to each
    statement inside it (and the syntactic complement to else-branch
    statements); {!Simd_mask.Mask.if_convert} merges complementary pairs
    into [Select] statements where possible. *)
type stmt = { lhs : mem_ref; rhs : expr; kind : stmt_kind; guard : cond option }
[@@deriving show { with_path = false }, eq, ord]

let stmt ?guard lhs rhs kind = { lhs; rhs; kind; guard }

let is_reduction (s : stmt) = s.kind <> Assign

(** [negate_cond c] — the syntactic complement: same operands, complementary
    operator. [negate_cond c] holds exactly when [c] does not. *)
let negate_cond (c : cond) : cond =
  { c with cmp = Simd_machine.Lane.negate_cmp c.cmp }

(** [complementary a b] — do the two guards partition every iteration
    (syntactically: identical operands, complementary operators)? *)
let complementary (a : cond) (b : cond) = equal_cond (negate_cond a) b

(** [reduction_ops] — operators usable in reductions, with their
    identities (the value that masks out-of-range lanes). *)
let reduction_identity (op : binop) ~(ty : elem_ty) : int64 option =
  let d = elem_width ty in
  match op with
  | Add | Or | Xor -> Some 0L
  | Mul -> Some 1L
  | And -> Some (-1L)
  | Min -> Some (Simd_machine.Lane.max_value d)
  | Max -> Some (Simd_machine.Lane.min_value d)
  | Sub -> None (* not associative-commutative *)

(** Loop trip count: a compile-time constant or a runtime parameter (the
    paper's "unknown loop bounds" case). *)
type trip = Trip_const of int | Trip_param of string
[@@deriving show { with_path = false }, eq, ord]

type loop = {
  counter : string;  (** induction variable, normalized [0 .. ub-1] step 1 *)
  trip : trip;
  body : stmt list;
}
[@@deriving show { with_path = false }, eq, ord]

type program = {
  arrays : array_decl list;
  params : string list;  (** scalar parameter names (loop invariants) *)
  loop : loop;
}
[@@deriving show { with_path = false }, eq, ord]

(* ------------------------------------------------------------------ *)
(* Accessors and traversals                                            *)
(* ------------------------------------------------------------------ *)

let find_array program name =
  List.find_opt (fun d -> d.arr_name = name) program.arrays

let find_array_exn program name =
  match find_array program name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Ast.find_array_exn: no array %S" name)

(** [fold_expr_loads f acc e] folds over every [Load] in [e], left to right. *)
let rec fold_expr_loads f acc = function
  | Load r -> f acc r
  | Param _ | Const _ -> acc
  | Binop (_, a, b) -> fold_expr_loads f (fold_expr_loads f acc a) b
  | Select (c, a, b) ->
    fold_expr_loads f (fold_expr_loads f (fold_cond_loads f acc c) a) b

and fold_cond_loads f acc (c : cond) =
  fold_expr_loads f (fold_expr_loads f acc c.cl) c.cr

(** [expr_loads e] lists the memory references loaded by [e] in evaluation
    order (duplicates preserved). *)
let expr_loads e = List.rev (fold_expr_loads (fun acc r -> r :: acc) [] e)

(** [cond_loads c] lists the memory references loaded by a guard. *)
let cond_loads c = List.rev (fold_cond_loads (fun acc r -> r :: acc) [] c)

(** [stmt_refs s] lists every stream memory reference of [s]: all loads,
    then the store for [Assign] statements (a reduction's accumulator is an
    absolute scalar cell, not a stream). *)
let stmt_refs s =
  expr_loads s.rhs
  @ (match s.guard with Some c -> cond_loads c | None -> [])
  @ (match s.kind with Assign -> [ s.lhs ] | Reduce _ -> [])

(** [stmt_loads s] — every load of [s] (rhs and guard), no store. *)
let stmt_loads s =
  expr_loads s.rhs @ match s.guard with Some c -> cond_loads c | None -> []

(** [program_refs p] lists every static memory reference in the loop body. *)
let program_refs p = List.concat_map stmt_refs p.loop.body

(** [fold_expr_params f acc e] folds over every [Param] occurrence. *)
let rec fold_expr_params f acc = function
  | Param x -> f acc x
  | Load _ | Const _ -> acc
  | Binop (_, a, b) -> fold_expr_params f (fold_expr_params f acc a) b
  | Select (c, a, b) ->
    let acc = fold_expr_params f (fold_expr_params f acc c.cl) c.cr in
    fold_expr_params f (fold_expr_params f acc a) b

let expr_params e =
  Simd_support.Util.dedup (List.rev (fold_expr_params (fun acc x -> x :: acc) [] e))

(** [expr_op_count e] counts arithmetic operations in [e] — the paper's
    "ideal scalar instruction count" charges one op per arithmetic node, one
    per load, and one per store; this is the arithmetic part. *)
let rec expr_op_count = function
  | Load _ | Param _ | Const _ -> 0
  | Binop (_, a, b) -> 1 + expr_op_count a + expr_op_count b
  | Select (c, a, b) ->
    (* one compare + one select *)
    2 + expr_op_count c.cl + expr_op_count c.cr + expr_op_count a
    + expr_op_count b

(** [expr_size e] — total node count, used as a complexity measure. *)
let rec expr_size = function
  | Load _ | Param _ | Const _ -> 1
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Select (c, a, b) ->
    2 + expr_size c.cl + expr_size c.cr + expr_size a + expr_size b

(** [map_expr_refs f e] rewrites every memory reference in [e]. *)
let rec map_expr_refs f = function
  | Load r -> Load (f r)
  | (Param _ | Const _) as e -> e
  | Binop (op, a, b) -> Binop (op, map_expr_refs f a, map_expr_refs f b)
  | Select (c, a, b) ->
    Select (map_cond_refs f c, map_expr_refs f a, map_expr_refs f b)

and map_cond_refs f (c : cond) =
  { c with cl = map_expr_refs f c.cl; cr = map_expr_refs f c.cr }

(** [elem_ty_of_program p] — the uniform element type of all references
    (guaranteed by the legality analysis). Raises if the program has no
    arrays. *)
let elem_ty_of_program p =
  match p.arrays with
  | [] -> invalid_arg "Ast.elem_ty_of_program: no arrays"
  | d :: _ -> d.arr_ty
