(** Pretty-printing of loop programs to concrete syntax.

    The output is valid input for {!Parse.program_of_string}; the round trip
    is property-tested. Operator precedence follows C ([*] over [+]/[-] over
    [&] over [^] over [|]); [min]/[max] print as calls. *)

open Ast

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  (* No infix form exists; callers wanting concrete syntax for a whole
     expression get call syntax from [pp_expr]. Returning the call-syntax
     names keeps this function total for external users of the API. *)
  | Min -> "min"
  | Max -> "max"

let cmp_symbol = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

(* Precedence levels, higher binds tighter. *)
let binop_prec = function
  | Mul -> 5
  | Add | Sub -> 4
  | And -> 3
  | Xor -> 2
  | Or -> 1
  | Min | Max -> 6

let pp_mem_ref fmt { ref_array; ref_offset; ref_stride } =
  let idx = if ref_stride = 1 then "i" else Printf.sprintf "%d*i" ref_stride in
  if ref_offset = 0 then Format.fprintf fmt "%s[%s]" ref_array idx
  else if ref_offset > 0 then
    Format.fprintf fmt "%s[%s+%d]" ref_array idx ref_offset
  else Format.fprintf fmt "%s[%s-%d]" ref_array idx (-ref_offset)

let rec pp_expr_prec prec fmt e =
  match e with
  | Load r -> pp_mem_ref fmt r
  | Param x -> Format.pp_print_string fmt x
  | Const c ->
    if Int64.compare c 0L < 0 then Format.fprintf fmt "(%Ld)" c
    else Format.fprintf fmt "%Ld" c
  | Binop ((Min | Max) as op, a, b) ->
    Format.fprintf fmt "%s(%a, %a)"
      (match op with Min -> "min" | _ -> "max")
      (pp_expr_prec 0) a (pp_expr_prec 0) b
  | Binop (op, a, b) ->
    let p = binop_prec op in
    let needs_parens = p < prec in
    if needs_parens then Format.pp_print_string fmt "(";
    (* Left-associative: the right operand needs strictly higher precedence. *)
    Format.fprintf fmt "%a %s %a" (pp_expr_prec p) a (binop_symbol op)
      (pp_expr_prec (p + 1)) b;
    if needs_parens then Format.pp_print_string fmt ")"
  | Select (c, a, b) ->
    Format.fprintf fmt "select(%a, %a, %a)" pp_cond c (pp_expr_prec 0) a
      (pp_expr_prec 0) b

(* Comparisons bind loosest and only appear where the grammar expects a
   [cond], so both operands print at top level. *)
and pp_cond fmt ({ cmp; cl; cr } : cond) =
  Format.fprintf fmt "%a %s %a" (pp_expr_prec 0) cl (cmp_symbol cmp)
    (pp_expr_prec 0) cr

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_basic_stmt fmt { lhs; rhs; kind; guard = _ } =
  match kind with
  | Assign -> Format.fprintf fmt "%a = %a;" pp_mem_ref lhs pp_expr rhs
  | Reduce ((Min | Max) as op) ->
    Format.fprintf fmt "%s %s= %a;" lhs.ref_array
      (match op with Min -> "min" | _ -> "max")
      pp_expr rhs
  | Reduce op ->
    Format.fprintf fmt "%s %s= %a;" lhs.ref_array (binop_symbol op) pp_expr rhs

(* Each guarded statement prints as its own single-statement [if] block;
   parsing splits multi-statement blocks into per-statement guards, so the
   round trip is stable after one parse. *)
let pp_stmt fmt (s : stmt) =
  match s.guard with
  | None -> pp_basic_stmt fmt s
  | Some c -> Format.fprintf fmt "if (%a) { %a }" pp_cond c pp_basic_stmt s

let pp_align fmt = function
  | Known k -> Format.pp_print_int fmt k
  | Unknown -> Format.pp_print_string fmt "?"

let pp_array_decl fmt { arr_name; arr_ty; arr_len; arr_align } =
  Format.fprintf fmt "%s %s[%d] @@ %a;" (elem_ty_name arr_ty) arr_name arr_len
    pp_align arr_align

let pp_trip fmt = function
  | Trip_const n -> Format.pp_print_int fmt n
  | Trip_param x -> Format.pp_print_string fmt x

let pp_program fmt (p : program) =
  List.iter (fun d -> Format.fprintf fmt "%a@\n" pp_array_decl d) p.arrays;
  List.iter (fun x -> Format.fprintf fmt "param %s;@\n" x) p.params;
  Format.fprintf fmt "for (%s = 0; %s < %a; %s++) {@\n" p.loop.counter
    p.loop.counter pp_trip p.loop.trip p.loop.counter;
  List.iter (fun s -> Format.fprintf fmt "  %a@\n" pp_stmt s) p.loop.body;
  Format.fprintf fmt "}@\n"

let program_to_string p = Format.asprintf "%a" pp_program p
let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let mem_ref_to_string r = Format.asprintf "%a" pp_mem_ref r
