(** Legality analysis: checks the paper's simdization assumptions (§4.1) and
    a conservative dependence test, and computes per-reference stream
    offsets.

    The §4.1 assumptions are:
    - all memory references are loop invariant or stride-one array
      references (guaranteed syntactically by the parser);
    - the base address of an array is naturally aligned to its element
      width (checked against the declared alignment here; enforced by the
      simulator's placement for runtime alignments);
    - the loop counter appears only in address computations (syntactic);
    - all references access data of one uniform length — no conversions.

    Beyond §4.1 we conservatively require that no stored array is referenced
    by any other access, so reordering stores within a vector block cannot
    violate a dependence; the paper's synthesized benchmarks satisfy this by
    construction. *)

type error =
  | Mixed_element_widths of { a : string; b : string }
  | Bad_base_alignment of { array : string; align : int; reason : string }
  | Negative_offset of Ast.mem_ref
  | Store_conflict of { array : string; detail : string }
  | Out_of_bounds of { r : Ast.mem_ref; trip : int; len : int }
  | Bad_reduction of { array : string; reason : string }
  | Empty_body

let pp_error fmt = function
  | Mixed_element_widths { a; b } ->
    Format.fprintf fmt "arrays %S and %S have different element widths" a b
  | Bad_base_alignment { array; align; reason } ->
    Format.fprintf fmt "array %S has invalid base alignment %d: %s" array align reason
  | Negative_offset r ->
    Format.fprintf fmt "reference %s has a negative offset" (Pp.mem_ref_to_string r)
  | Store_conflict { array; detail } ->
    Format.fprintf fmt "array %S: %s" array detail
  | Out_of_bounds { r; trip; len } ->
    Format.fprintf fmt "reference %s overruns its array (trip %d, length %d)"
      (Pp.mem_ref_to_string r) trip len
  | Bad_reduction { array; reason } ->
    Format.fprintf fmt "reduction into %S: %s" array reason
  | Empty_body -> Format.pp_print_string fmt "loop body is empty"

let error_to_string e = Format.asprintf "%a" pp_error e

exception Illegal of error

(** Analysis summary attached to a legal program. *)
type t = {
  program : Ast.program;
  machine : Simd_machine.Config.t;
  elem : int;  (** uniform element width D *)
  block : int;  (** blocking factor B = V/D (paper Eq. 7) *)
  offsets : (Ast.mem_ref * Align.t) list;
      (** stream offset of every distinct reference *)
  all_known : bool;  (** every offset is a compile-time constant *)
}

let offset_of t (r : Ast.mem_ref) =
  match List.assoc_opt r t.offsets with
  | Some o -> o
  | None -> Align.of_ref ~machine:t.machine ~program:t.program r

(** [check ~machine program] — validate and summarize, or report the first
    violation. *)
let check ~machine (program : Ast.program) : (t, error) result =
  let open Ast in
  try
    if program.loop.body = [] then raise (Illegal Empty_body);
    (* Uniform element width. *)
    let elem =
      match program.arrays with
      | [] -> raise (Illegal Empty_body)
      | d0 :: rest ->
        List.iter
          (fun d ->
            if not (equal_elem_ty d.arr_ty d0.arr_ty) then
              raise
                (Illegal (Mixed_element_widths { a = d0.arr_name; b = d.arr_name })))
          rest;
        elem_width d0.arr_ty
    in
    let v = Simd_machine.Config.vector_len machine in
    if v mod elem <> 0 then
      raise
        (Illegal
           (Bad_base_alignment
              { array = (List.hd program.arrays).arr_name; align = 0;
                reason = "element width does not divide the vector length" }));
    let block = v / elem in
    (* Base alignments: in range and naturally aligned. *)
    List.iter
      (fun d ->
        match d.arr_align with
        | Unknown -> ()
        | Known k ->
          if k < 0 || k >= v then
            raise
              (Illegal
                 (Bad_base_alignment
                    { array = d.arr_name; align = k; reason =
                        Printf.sprintf "must lie in [0, %d)" v }));
          if k mod elem <> 0 then
            raise
              (Illegal
                 (Bad_base_alignment
                    { array = d.arr_name; align = k; reason =
                        "must be a multiple of the element width (natural alignment)"
                    })))
      program.arrays;
    (* Non-negative reference offsets (normalized loops start at 0), and
       stride restrictions: strides must be supported, and only loads may
       be strided (strided stores would need scatter; future work, as in
       the paper). *)
    let refs = program_refs program in
    List.iter
      (fun r -> if r.ref_offset < 0 then raise (Illegal (Negative_offset r)))
      refs;
    List.iter
      (fun r ->
        if not (List.mem r.ref_stride Ast.supported_strides) then
          raise
            (Illegal
               (Store_conflict
                  { array = r.ref_array;
                    detail = Printf.sprintf "unsupported stride %d" r.ref_stride })))
      refs;
    List.iter
      (fun s ->
        if s.lhs.ref_stride <> 1 then
          raise
            (Illegal
               (Store_conflict
                  { array = s.lhs.ref_array;
                    detail = "strided stores are not supported (scatter)" })))
      program.loop.body;
    (* Bounds, when the trip count is a compile-time constant. *)
    (match program.loop.trip with
    | Trip_param _ -> ()
    | Trip_const n ->
      List.iter
        (fun r ->
          let decl = find_array_exn program r.ref_array in
          if (r.ref_stride * (n - 1)) + r.ref_offset + 1 > decl.arr_len then
            raise (Illegal (Out_of_bounds { r; trip = n; len = decl.arr_len })))
        refs);
    (* Reductions: the operator must be associative-commutative with an
       identity (guaranteed for parser-produced programs, checked for
       programmatic ones), and never guarded here — {!Simd_mask.Mask}'s
       if-conversion rewrites a guarded reduction into an unguarded
       identity-select before analysis, and the mask lowering below this
       layer predicates stores only. *)
    List.iter
      (fun s ->
        match s.kind with
        | Assign -> ()
        | Reduce _ when s.guard <> None ->
          raise
            (Illegal
               (Bad_reduction
                  { array = s.lhs.ref_array;
                    reason = "guarded reductions must be if-converted first                               (Mask.if_convert rewrites them to                               identity-selects)" }))
        | Reduce op -> (
          match
            Ast.reduction_identity op ~ty:(elem_ty_of_program program)
          with
          | Some _ -> ()
          | None ->
            raise
              (Illegal
                 (Bad_reduction
                    { array = s.lhs.ref_array;
                      reason = "operator has no identity (not \
                                associative-commutative)" }))))
      program.loop.body;
    (* Conservative dependences: a stored array (or accumulator) is written
       by exactly one statement and never loaded. Exception (predication
       extension): exactly two statements may store to the same reference
       when their guards are syntactic complements — each lane is then
       written by exactly one of the two masked stores, so no dependence is
       violated ([Mask.if_convert] merges such pairs into one [Select]
       statement when it runs, but correctness does not depend on the
       merge). *)
    let stores = List.map (fun s -> s.lhs) program.loop.body in
    let store_names = List.map (fun r -> r.ref_array) stores in
    let complementary_pair name =
      match
        List.filter (fun s -> s.lhs.ref_array = name) program.loop.body
      with
      | [ a; b ] -> (
        equal_mem_ref a.lhs b.lhs
        && a.kind = Assign && b.kind = Assign
        &&
        match (a.guard, b.guard) with
        | Some ga, Some gb -> Ast.complementary ga gb
        | _ -> false)
      | _ -> false
    in
    List.iter
      (fun (name, count) ->
        if count > 1 && not (count = 2 && complementary_pair name) then
          raise
            (Illegal
               (Store_conflict
                  { array = name; detail = "stored by more than one statement" })))
      (Simd_support.Util.group_count store_names);
    List.iter
      (fun s ->
        List.iter
          (fun r ->
            if List.mem r.ref_array store_names then
              raise
                (Illegal
                   (Store_conflict
                      { array = r.ref_array;
                        detail = "loaded while also being a store target" })))
          (stmt_loads s))
      program.loop.body;
    (* Stream offsets. *)
    let offsets =
      List.map (fun r -> (r, Align.of_ref ~machine ~program r))
        (Simd_support.Util.dedup refs)
    in
    let all_known = List.for_all (fun (_, o) -> Align.is_known o) offsets in
    Ok { program; machine; elem; block; offsets; all_known }
  with Illegal e -> Error e

let check_exn ~machine program =
  match check ~machine program with
  | Ok t -> t
  | Error e ->
    invalid_arg (Printf.sprintf "Analysis.check_exn: %s" (error_to_string e))

(** [misaligned_fraction t] — fraction of static references whose stream
    offset is nonzero or unknown; the paper reports its benchmarks have 75%+
    misaligned references. *)
let misaligned_fraction t =
  let refs = Ast.program_refs t.program in
  let mis =
    List.length
      (List.filter
         (fun r -> match offset_of t r with Align.Known 0 -> false | _ -> true)
         refs)
  in
  float_of_int mis /. float_of_int (List.length refs)

(** [distinct_store_alignment t stmt] — the store stream offset of [stmt]. *)
let store_offset t (stmt : Ast.stmt) = offset_of t stmt.lhs
