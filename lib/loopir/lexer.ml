(** Hand-written lexer for the loop language.

    Menhir/ocamllex are deliberately not used: the language is tiny and a
    hand lexer gives precise, located error messages with no build-time
    dependencies. *)

type pos = { line : int; col : int }

let pp_pos fmt { line; col } = Format.fprintf fmt "line %d, column %d" line col

type token =
  | IDENT of string
  | INT of int64
  | KW_PARAM
  | KW_FOR
  | KW_MIN
  | KW_MAX
  | KW_IF
  | KW_ELSE
  | KW_SELECT
  | KW_TYPE of Ast.elem_ty
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | EQ
  | PLUS
  | PLUSPLUS
  | MINUS
  | STAR
  | AMP
  | BAR
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | AT
  | QUESTION
  | OPEQ of Ast.binop  (** compound assignment: [+=], [*=], [&=], [|=], [^=] *)
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %Ld" n
  | KW_PARAM -> "'param'"
  | KW_FOR -> "'for'"
  | KW_MIN -> "'min'"
  | KW_MAX -> "'max'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_SELECT -> "'select'"
  | KW_TYPE t -> Printf.sprintf "'%s'" (Ast.elem_ty_name t)
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | EQ -> "'='"
  | PLUS -> "'+'"
  | PLUSPLUS -> "'++'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | CARET -> "'^'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | AT -> "'@'"
  | QUESTION -> "'?'"
  | OPEQ op -> Printf.sprintf "'%s='" (Simd_machine.Lane.binop_name op)
  | EOF -> "end of input"

exception Error of pos * string

type t = {
  src : string;
  mutable idx : int;
  mutable line : int;
  mutable col : int;
}

let create src = { src; idx = 0; line = 1; col = 1 }

let pos t = { line = t.line; col = t.col }

let peek_char t = if t.idx < String.length t.src then Some t.src.[t.idx] else None

let advance t =
  (match peek_char t with
  | Some '\n' ->
    t.line <- t.line + 1;
    t.col <- 1
  | Some _ -> t.col <- t.col + 1
  | None -> ());
  t.idx <- t.idx + 1

let error t msg = raise (Error (pos t, msg))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws_and_comments t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws_and_comments t
  | Some '/' when t.idx + 1 < String.length t.src && t.src.[t.idx + 1] = '/' ->
    while peek_char t <> None && peek_char t <> Some '\n' do
      advance t
    done;
    skip_ws_and_comments t
  | Some '/' when t.idx + 1 < String.length t.src && t.src.[t.idx + 1] = '*' ->
    let start = pos t in
    advance t;
    advance t;
    let rec close () =
      match peek_char t with
      | None -> raise (Error (start, "unterminated comment"))
      | Some '*' when t.idx + 1 < String.length t.src && t.src.[t.idx + 1] = '/' ->
        advance t;
        advance t
      | Some _ ->
        advance t;
        close ()
    in
    close ();
    skip_ws_and_comments t
  | _ -> ()

let lex_ident t =
  let start = t.idx in
  while
    match peek_char t with Some c when is_ident_char c -> true | _ -> false
  do
    advance t
  done;
  let s = String.sub t.src start (t.idx - start) in
  match s with
  | "param" -> KW_PARAM
  | "for" -> KW_FOR
  | "min" -> KW_MIN
  | "max" -> KW_MAX
  | "if" -> KW_IF
  | "else" -> KW_ELSE
  | "select" -> KW_SELECT
  | "int8" -> KW_TYPE Ast.I8
  | "int16" -> KW_TYPE Ast.I16
  | "int32" -> KW_TYPE Ast.I32
  | "int64" -> KW_TYPE Ast.I64
  | _ -> IDENT s

let lex_int t =
  let start = t.idx in
  while match peek_char t with Some c when is_digit c -> true | _ -> false do
    advance t
  done;
  let s = String.sub t.src start (t.idx - start) in
  match Int64.of_string_opt s with
  | Some n -> INT n
  | None -> error t (Printf.sprintf "integer literal %s out of range" s)

(** [next t] — the next token together with its starting position. *)
let next t : pos * token =
  skip_ws_and_comments t;
  let p = pos t in
  match peek_char t with
  | None -> (p, EOF)
  | Some c when is_ident_start c -> (p, lex_ident t)
  | Some c when is_digit c -> (p, lex_int t)
  | Some '+' ->
    advance t;
    if peek_char t = Some '+' then begin
      advance t;
      (p, PLUSPLUS)
    end
    else if peek_char t = Some '=' then begin
      advance t;
      (p, OPEQ Ast.Add)
    end
    else (p, PLUS)
  | Some (('*' | '&' | '|' | '^') as c) when t.idx + 1 < String.length t.src
                                             && t.src.[t.idx + 1] = '=' ->
    advance t;
    advance t;
    let op =
      match c with
      | '*' -> Ast.Mul
      | '&' -> Ast.And
      | '|' -> Ast.Or
      | _ -> Ast.Xor
    in
    (p, OPEQ op)
  | Some (('<' | '>' | '=' | '!') as c) ->
    advance t;
    let two = peek_char t = Some '=' in
    if two then advance t;
    let tok =
      match (c, two) with
      | '<', true -> LE
      | '<', false -> LT
      | '>', true -> GE
      | '>', false -> GT
      | '=', true -> EQEQ
      | '=', false -> EQ
      | '!', true -> NEQ
      | _ -> raise (Error (p, "unexpected character '!' (did you mean '!='?)"))
    in
    (p, tok)
  | Some c ->
    advance t;
    let tok =
      match c with
      | '[' -> LBRACKET
      | ']' -> RBRACKET
      | '(' -> LPAREN
      | ')' -> RPAREN
      | '{' -> LBRACE
      | '}' -> RBRACE
      | ';' -> SEMI
      | ',' -> COMMA
      | '-' -> MINUS
      | '*' -> STAR
      | '&' -> AMP
      | '|' -> BAR
      | '^' -> CARET
      | '@' -> AT
      | '?' -> QUESTION
      | _ -> raise (Error (p, Printf.sprintf "unexpected character %C" c))
    in
    (p, tok)

(** [tokenize src] — the full token stream (positions included), ending with
    [EOF]. *)
let tokenize src =
  let t = create src in
  let rec go acc =
    let ((_, tok) as item) = next t in
    if tok = EOF then List.rev (item :: acc) else go (item :: acc)
  in
  go []
