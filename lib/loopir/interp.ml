(** Reference scalar interpreter.

    Executes a loop program directly, statement by statement, iteration by
    iteration — the semantic oracle every simdization is differentially
    tested against. It also produces the paper's "ideal scalar instruction
    count": one operation per load, per store, and per arithmetic node,
    explicitly excluding address computation and loop overhead (§5.3: the
    scalar reference is idealized; the simdized code is charged its real
    overhead). *)

open Simd_support

(** Runtime environment: where arrays live and what the invariants are. *)
type env = {
  layout : Layout.t;
  params : int64 Util.String_map.t;
  trip : int;  (** actual trip count (resolves [Trip_param]) *)
}

let make_env ~layout ?(params = []) ~trip () =
  {
    layout;
    params =
      List.fold_left (fun m (k, v) -> Util.String_map.add k v m)
        Util.String_map.empty params;
    trip;
  }

let param_value env name =
  match Util.String_map.find_opt name env.params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Interp.param_value: unbound param %S" name)

let trip_count env (loop : Ast.loop) =
  match loop.trip with
  | Ast.Trip_const n -> n
  | Ast.Trip_param _ -> env.trip

(** Dynamic operation counters for the ideal scalar execution. *)
type counts = { loads : int; stores : int; ariths : int }

let total_ops { loads; stores; ariths } = loads + stores + ariths

(** [run ~mem ~env program] — execute the whole loop on [mem], returning the
    ideal scalar operation counts. *)
let run ~mem ~env (program : Ast.program) : counts =
  let elem =
    match program.arrays with
    | [] -> invalid_arg "Interp.run: program has no arrays"
    | d :: _ -> Ast.elem_width d.arr_ty
  in
  let ariths = ref 0 in
  let ref_addr (r : Ast.mem_ref) i =
    Layout.addr env.layout ~elem ~name:r.ref_array
      ~index:((r.ref_stride * i) + r.ref_offset)
  in
  let rec eval i (e : Ast.expr) =
    match e with
    | Ast.Load r -> Simd_machine.Mem.load_scalar mem ~elem (ref_addr r i)
    | Ast.Param x -> param_value env x
    | Ast.Const c -> Simd_machine.Lane.canonicalize elem c
    | Ast.Binop (op, a, b) ->
      let va = eval i a in
      let vb = eval i b in
      incr ariths;
      Simd_machine.Lane.apply elem op va vb
    | Ast.Select (c, a, b) ->
      let taken = eval_cond i c in
      let va = eval i a in
      let vb = eval i b in
      incr ariths (* the select *);
      if taken then va else vb
  and eval_cond i (c : Ast.cond) =
    let vl = eval i c.cl in
    let vr = eval i c.cr in
    incr ariths (* the compare *);
    Simd_machine.Lane.apply_cmp elem c.cmp vl vr
  in
  let n = trip_count env program.loop in
  Simd_machine.Mem.reset_counters mem;
  (* Accumulators live in registers across the loop (the idealized scalar
     code the paper compares against would keep them there): load once,
     accumulate per iteration, store once. *)
  let acc_addr (s : Ast.stmt) =
    Layout.addr env.layout ~elem ~name:s.lhs.Ast.ref_array ~index:0
  in
  let accs = Hashtbl.create 4 in
  List.iter
    (fun (s : Ast.stmt) ->
      if Ast.is_reduction s then
        Hashtbl.replace accs s.lhs.Ast.ref_array
          (Simd_machine.Mem.load_scalar mem ~elem (acc_addr s)))
    program.loop.body;
  for i = 0 to n - 1 do
    List.iter
      (fun (s : Ast.stmt) ->
        (* Guarded statements (predication extension) follow true scalar
           semantics: the guard is evaluated every iteration; the body runs
           only when it holds. *)
        match s.guard with
        | Some c when not (eval_cond i c) -> ()
        | _ -> (
        let v = eval i s.rhs in
        match s.kind with
        | Ast.Assign ->
          Simd_machine.Mem.store_scalar mem ~elem (ref_addr s.lhs i) v
        | Ast.Reduce op ->
          incr ariths;
          Hashtbl.replace accs s.lhs.Ast.ref_array
            (Simd_machine.Lane.apply elem op
               (Hashtbl.find accs s.lhs.Ast.ref_array)
               v)))
      program.loop.body
  done;
  List.iter
    (fun (s : Ast.stmt) ->
      if Ast.is_reduction s then
        Simd_machine.Mem.store_scalar mem ~elem (acc_addr s)
          (Hashtbl.find accs s.lhs.Ast.ref_array))
    program.loop.body;
  let c = Simd_machine.Mem.counters mem in
  { loads = c.scalar_loads; stores = c.scalar_stores; ariths = !ariths }

(** [ideal_scalar_ops program ~trip] — the ideal count without executing:
    per iteration, each store statement costs (#loads + #ariths + 1 store);
    a reduction costs (#loads + #ariths + 1 accumulate) with the
    accumulator's own load/store hoisted outside the loop. A guard is
    charged branchlessly (its loads and compare plus the full statement,
    every iteration) — the idealization a predicated scalar machine would
    run, so the static count does not depend on data. *)
let ideal_scalar_ops (program : Ast.program) ~trip =
  let guard_cost (s : Ast.stmt) =
    match s.guard with
    | None -> 0
    | Some c ->
      List.length (Ast.cond_loads c) + Ast.expr_op_count c.cl
      + Ast.expr_op_count c.cr + 1
  in
  let per_iter =
    Util.sum_by
      (fun (s : Ast.stmt) ->
        List.length (Ast.expr_loads s.rhs) + Ast.expr_op_count s.rhs + 1
        + guard_cost s)
      program.loop.body
  in
  let acc_io = 2 * List.length (List.filter Ast.is_reduction program.loop.body) in
  (per_iter * trip) + acc_io

(** [data_stored program ~trip] — total number of stored elements ("data"),
    the denominator of the operations-per-datum metric. *)
let data_stored (program : Ast.program) ~trip =
  List.length program.loop.body * trip
