(** Recursive-descent parser for the loop language.

    Grammar (EBNF):
    {v
      program   ::= decl* loop
      decl      ::= type IDENT '[' INT ']' ('@' (INT | '?'))? ';'
                  | 'param' IDENT ';'
      loop      ::= 'for' '(' IDENT '=' '0' ';' IDENT '<' bound ';' IDENT '++' ')'
                    '{' stmt* '}'
      bound     ::= INT | IDENT
      stmt      ::= basic | 'if' '(' cond ')' '{' basic* '}'
                            ('else' '{' basic* '}')?
      basic     ::= ref '=' expr ';'
                  | IDENT op'=' expr ';'            (reduction extension)
      ref       ::= IDENT '[' IDENT (('+'|'-') INT)? ']'
      cond      ::= expr ('<'|'<='|'>'|'>='|'=='|'!=') expr
      expr      ::= or_expr
      or_expr   ::= xor_expr ('|' xor_expr)*
      xor_expr  ::= and_expr ('^' and_expr)*
      and_expr  ::= add_expr ('&' add_expr)*
      add_expr  ::= mul_expr (('+'|'-') mul_expr)*
      mul_expr  ::= atom ('*' atom)*
      atom      ::= ref | IDENT | INT | '(' expr ')'
                  | ('min'|'max') '(' expr ',' expr ')'
                  | 'select' '(' cond ',' expr ',' expr ')'
    v}

    Predication ([if]/[select], the mask extension): an [if] block guards
    each statement inside it; the parser attaches the guard to the
    then-branch statements and its syntactic complement to the else-branch
    statements — no merging happens here ({!Simd_mask.Mask.if_convert} is
    the optimizing pass). [if]s do not nest.

    An [IDENT] atom resolves to a scalar parameter; array names may only
    appear in references. The parser performs that resolution using the
    declarations seen so far, so declarations must precede the loop. *)

exception Error of Lexer.pos * string

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

type state = {
  mutable toks : (Lexer.pos * Lexer.token) list;
  mutable arrays : Ast.array_decl list;  (* reversed *)
  mutable params : string list;  (* reversed *)
}

let peek st =
  match st.toks with
  | [] -> assert false (* stream always ends with EOF *)
  | t :: _ -> t

let advance st = match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let pos, got = next st in
  if got <> tok then
    error pos "expected %s but found %s" (Lexer.token_name tok) (Lexer.token_name got)

let expect_ident st =
  match next st with
  | _, Lexer.IDENT s -> s
  | pos, got -> error pos "expected identifier but found %s" (Lexer.token_name got)

let expect_int st =
  match next st with
  | pos, Lexer.INT n ->
    if Int64.compare n (Int64.of_int max_int) > 0 then error pos "integer too large";
    Int64.to_int n
  | pos, got -> error pos "expected integer but found %s" (Lexer.token_name got)

let is_array st name = List.exists (fun d -> d.Ast.arr_name = name) st.arrays
let is_param st name = List.mem name st.params

let check_fresh st pos name =
  if is_array st name || is_param st name then
    error pos "duplicate declaration of %S" name

(* --- declarations ------------------------------------------------- *)

let parse_array_decl st ty =
  let pos, _ = peek st in
  let name = expect_ident st in
  check_fresh st pos name;
  expect st Lexer.LBRACKET;
  let len = expect_int st in
  if len <= 0 then error pos "array %S must have positive length" name;
  expect st Lexer.RBRACKET;
  let align =
    match peek st with
    | _, Lexer.AT ->
      advance st;
      (match next st with
      | _, Lexer.INT n -> Ast.Known (Int64.to_int n)
      | _, Lexer.QUESTION -> Ast.Unknown
      | p, got ->
        error p "expected alignment (integer or '?') but found %s"
          (Lexer.token_name got))
    | _ -> Ast.Known 0
  in
  expect st Lexer.SEMI;
  st.arrays <-
    { Ast.arr_name = name; arr_ty = ty; arr_len = len; arr_align = align }
    :: st.arrays

let parse_param_decl st =
  let pos, _ = peek st in
  let name = expect_ident st in
  check_fresh st pos name;
  expect st Lexer.SEMI;
  st.params <- name :: st.params

(* --- expressions --------------------------------------------------- *)

let parse_ref st ~counter name =
  (* [name '['] already consumed up to '['; index forms are [i±c] and the
     strided-gather extension [s*i±c] with s ∈ {2, 4}. *)
  let pos, _ = peek st in
  let stride =
    match peek st with
    | _, Lexer.INT n ->
      advance st;
      expect st Lexer.STAR;
      let s = Int64.to_int n in
      if not (List.mem s Ast.supported_strides) then
        error pos "unsupported stride %d (supported: 1, 2, 4)" s;
      s
    | _ -> 1
  in
  let idx = expect_ident st in
  if idx <> counter then
    error pos "index must be the loop counter %S (affine references only), got %S"
      counter idx;
  let offset =
    match peek st with
    | _, Lexer.PLUS ->
      advance st;
      expect_int st
    | _, Lexer.MINUS ->
      advance st;
      -expect_int st
    | _ -> 0
  in
  expect st Lexer.RBRACKET;
  { Ast.ref_array = name; ref_offset = offset; ref_stride = stride }

let rec parse_expr st ~counter = parse_or st ~counter

and parse_binop_chain st ~counter ~sub ~ops =
  let lhs = ref (sub st ~counter) in
  let rec go () =
    match peek st with
    | _, tok -> (
      match List.assoc_opt tok ops with
      | Some op ->
        advance st;
        let rhs = sub st ~counter in
        lhs := Ast.Binop (op, !lhs, rhs);
        go ()
      | None -> ())
  in
  go ();
  !lhs

and parse_or st ~counter =
  parse_binop_chain st ~counter ~sub:parse_xor ~ops:[ (Lexer.BAR, Ast.Or) ]

and parse_xor st ~counter =
  parse_binop_chain st ~counter ~sub:parse_and ~ops:[ (Lexer.CARET, Ast.Xor) ]

and parse_and st ~counter =
  parse_binop_chain st ~counter ~sub:parse_add ~ops:[ (Lexer.AMP, Ast.And) ]

and parse_add st ~counter =
  parse_binop_chain st ~counter ~sub:parse_mul
    ~ops:[ (Lexer.PLUS, Ast.Add); (Lexer.MINUS, Ast.Sub) ]

and parse_mul st ~counter =
  parse_binop_chain st ~counter ~sub:parse_atom ~ops:[ (Lexer.STAR, Ast.Mul) ]

and parse_cond st ~counter =
  let cl = parse_expr st ~counter in
  let cmp =
    match next st with
    | _, Lexer.LT -> Ast.Lt
    | _, Lexer.LE -> Ast.Le
    | _, Lexer.GT -> Ast.Gt
    | _, Lexer.GE -> Ast.Ge
    | _, Lexer.EQEQ -> Ast.Eq
    | _, Lexer.NEQ -> Ast.Ne
    | pos, got ->
      error pos "expected comparison operator but found %s" (Lexer.token_name got)
  in
  let cr = parse_expr st ~counter in
  { Ast.cmp; cl; cr }

and parse_atom st ~counter =
  match next st with
  | _, Lexer.INT n -> Ast.Const n
  | _, Lexer.LPAREN ->
    let e = parse_expr st ~counter in
    expect st Lexer.RPAREN;
    e
  | _, Lexer.KW_MIN ->
    expect st Lexer.LPAREN;
    let a = parse_expr st ~counter in
    expect st Lexer.COMMA;
    let b = parse_expr st ~counter in
    expect st Lexer.RPAREN;
    Ast.Binop (Ast.Min, a, b)
  | _, Lexer.KW_MAX ->
    expect st Lexer.LPAREN;
    let a = parse_expr st ~counter in
    expect st Lexer.COMMA;
    let b = parse_expr st ~counter in
    expect st Lexer.RPAREN;
    Ast.Binop (Ast.Max, a, b)
  | _, Lexer.KW_SELECT ->
    expect st Lexer.LPAREN;
    let c = parse_cond st ~counter in
    expect st Lexer.COMMA;
    let a = parse_expr st ~counter in
    expect st Lexer.COMMA;
    let b = parse_expr st ~counter in
    expect st Lexer.RPAREN;
    Ast.Select (c, a, b)
  | pos, Lexer.MINUS -> (
    (* negative literal *)
    match next st with
    | _, Lexer.INT n -> Ast.Const (Int64.neg n)
    | _, got ->
      error pos "expected integer after unary '-' but found %s" (Lexer.token_name got))
  | pos, Lexer.IDENT name -> (
    match peek st with
    | _, Lexer.LBRACKET ->
      if not (is_array st name) then error pos "undeclared array %S" name;
      advance st;
      Ast.Load (parse_ref st ~counter name)
    | _ ->
      if is_array st name then
        error pos "array %S used without an index" name
      else if is_param st name then Ast.Param name
      else error pos "undeclared identifier %S" name)
  | pos, got -> error pos "expected expression but found %s" (Lexer.token_name got)

(* --- statements and loop ------------------------------------------- *)

let parse_stmt st ~counter ~guard =
  let pos, tok = next st in
  match tok with
  | Lexer.IDENT name -> (
    if not (is_array st name) then error pos "undeclared array %S in store" name;
    let finish_reduction op =
      let rhs = parse_expr st ~counter in
      expect st Lexer.SEMI;
      {
        Ast.lhs = { Ast.ref_array = name; ref_offset = 0; ref_stride = 1 };
        rhs;
        kind = Ast.Reduce op;
        guard;
      }
    in
    match peek st with
    | _, Lexer.LBRACKET ->
      advance st;
      let lhs = parse_ref st ~counter name in
      expect st Lexer.EQ;
      let rhs = parse_expr st ~counter in
      expect st Lexer.SEMI;
      { Ast.lhs; rhs; kind = Ast.Assign; guard }
    | _, Lexer.OPEQ op ->
      advance st;
      finish_reduction op
    | _, Lexer.KW_MIN ->
      advance st;
      expect st Lexer.EQ;
      finish_reduction Ast.Min
    | _, Lexer.KW_MAX ->
      advance st;
      expect st Lexer.EQ;
      finish_reduction Ast.Max
    | p, got ->
      error p "expected '[', '+=', '*=', '&=', '|=', '^=', 'min=' or 'max=' \
               after %S but found %s" name (Lexer.token_name got))
  | got -> error pos "expected a statement but found %s" (Lexer.token_name got)

(* An [if] statement: parse the guard and attach it (or its complement, for
   the else branch) to every statement of the block. No nesting. *)
let parse_if st ~counter =
  expect st Lexer.LPAREN;
  let c = parse_cond st ~counter in
  expect st Lexer.RPAREN;
  let block guard =
    expect st Lexer.LBRACE;
    let rec go acc =
      match peek st with
      | _, Lexer.RBRACE ->
        advance st;
        List.rev acc
      | pos, Lexer.KW_IF -> error pos "nested 'if' statements are not supported"
      | _ -> go (parse_stmt st ~counter ~guard:(Some guard) :: acc)
    in
    go []
  in
  let then_stmts = block c in
  let else_stmts =
    match peek st with
    | _, Lexer.KW_ELSE ->
      advance st;
      block (Ast.negate_cond c)
    | _ -> []
  in
  then_stmts @ else_stmts

let parse_loop st =
  expect st Lexer.KW_FOR;
  expect st Lexer.LPAREN;
  let pos_c, _ = peek st in
  let counter = expect_ident st in
  if is_array st counter || is_param st counter then
    error pos_c "loop counter %S clashes with a declaration" counter;
  expect st Lexer.EQ;
  let pos0, _ = peek st in
  let zero = expect_int st in
  if zero <> 0 then error pos0 "loops must be normalized: lower bound must be 0";
  expect st Lexer.SEMI;
  let pos_c2, _ = peek st in
  let c2 = expect_ident st in
  if c2 <> counter then error pos_c2 "condition must test the loop counter %S" counter;
  expect st Lexer.LT;
  let trip =
    match next st with
    | _, Lexer.INT n -> Ast.Trip_const (Int64.to_int n)
    | pos, Lexer.IDENT x ->
      if not (is_param st x) then error pos "trip count %S is not a declared param" x;
      Ast.Trip_param x
    | pos, got ->
      error pos "expected trip count (integer or param) but found %s"
        (Lexer.token_name got)
  in
  expect st Lexer.SEMI;
  let pos_c3, _ = peek st in
  let c3 = expect_ident st in
  if c3 <> counter then error pos_c3 "increment must update the loop counter %S" counter;
  expect st Lexer.PLUSPLUS;
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let rec stmts acc =
    match peek st with
    | _, Lexer.RBRACE ->
      advance st;
      List.rev acc
    | _, Lexer.KW_IF ->
      advance st;
      stmts (List.rev_append (parse_if st ~counter) acc)
    | _ -> stmts (parse_stmt st ~counter ~guard:None :: acc)
  in
  let body = stmts [] in
  { Ast.counter; trip; body }

let parse_program st =
  let rec decls () =
    match peek st with
    | _, Lexer.KW_TYPE ty ->
      advance st;
      parse_array_decl st ty;
      decls ()
    | _, Lexer.KW_PARAM ->
      advance st;
      parse_param_decl st;
      decls ()
    | _ -> ()
  in
  decls ();
  let loop = parse_loop st in
  expect st Lexer.EOF;
  { Ast.arrays = List.rev st.arrays; params = List.rev st.params; loop }

(** [program_of_string src] parses a full program.
    Raises {!Error} or {!Lexer.Error} with a position on malformed input. *)
let program_of_string src =
  let st = { toks = Lexer.tokenize src; arrays = []; params = [] } in
  parse_program st

(** [program_of_string_result src] — same, as a [result] with a rendered
    message. *)
let program_of_string_result src =
  match program_of_string src with
  | p -> Ok p
  | exception Error (pos, msg) ->
    Error (Format.asprintf "parse error at %a: %s" Lexer.pp_pos pos msg)
  | exception Lexer.Error (pos, msg) ->
    Error (Format.asprintf "lex error at %a: %s" Lexer.pp_pos pos msg)
