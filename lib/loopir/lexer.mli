(** Hand-written lexer for the loop language (positions, C-style comments,
    compound-assignment tokens for the reduction extension). *)

type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

type token =
  | IDENT of string
  | INT of int64
  | KW_PARAM
  | KW_FOR
  | KW_MIN
  | KW_MAX
  | KW_IF
  | KW_ELSE
  | KW_SELECT
  | KW_TYPE of Ast.elem_ty
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | EQ
  | PLUS
  | PLUSPLUS
  | MINUS
  | STAR
  | AMP
  | BAR
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | AT
  | QUESTION
  | OPEQ of Ast.binop  (** [+=], [*=], [&=], [|=], [^=] *)
  | EOF

val token_name : token -> string

exception Error of pos * string

type t

val create : string -> t
val pos : t -> pos

val next : t -> pos * token
(** The next token with its starting position. *)

val tokenize : string -> (pos * token) list
(** The full stream, ending with [EOF]. *)
