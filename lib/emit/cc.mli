(** Shared C-compiler discovery: one probe for every consumer that compiles
    emitted C — the gcc integration tests and the native differential
    oracle ({!Simd_par.Native}).

    The probe tries [$SIMD_CC] (when set and non-empty), then [gcc], [cc],
    [clang], and caches the first hit for the whole process, so a test
    suite or fuzz campaign pays for discovery once. *)

type t
(** A discovered, working C compiler. *)

val path : t -> string
(** The command name or path the probe found. *)

val id : t -> string
(** A stable identifier for cache keys (currently the command name). *)

val find : unit -> t option
(** The process-wide cached probe result. [None]: no C compiler on PATH. *)

val rediscover : unit -> t option
(** Re-run the probe, bypassing and refreshing the cache (tests). *)

val compile :
  t -> ?flags:string -> src:string -> exe:string -> unit -> (unit, string) result
(** [compile t ~src ~exe ()] — compile one translation unit to an
    executable (default [flags] ["-O1"]). [Error] carries the compiler
    invocation and the tail of its diagnostic output. *)
