(** Portable-C backend: plain C11 with a generic [V]-byte vector struct and
    reference implementations of the machine operations (including the
    address-truncating load/store). Compiled and differentially tested with
    gcc in the integration tests. *)

val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string

val kernel : Simd_vir.Prog.t -> string
(** [kernel_scalar] (the original loop) and [kernel_simd] (guarded simdized
    code), without the prelude. Generated temporaries are renamed with a
    collision-free prefix. *)

val unit : Simd_vir.Prog.t -> string
(** Prelude + kernels: a complete translation unit. *)

val harness_with :
  unit_text:string ->
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** The self-checking [main] scaffolding over an arbitrary backend's
    translation unit [unit_text] (every backend emits the same
    [kernel_scalar]/[kernel_simd] signatures, so the scaffolding is
    backend-independent): scalar and simdized kernels on identical
    noise-filled arenas placed exactly like the simulator's layout,
    byte-compared; prints "OK" and exits 0 on agreement. *)

val harness :
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** Self-checking [main]: scalar and simdized kernels on identical
    noise-filled arenas (placed exactly like the simulator's layout),
    byte-compared; prints "OK" and exits 0 on agreement. *)
