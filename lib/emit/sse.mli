(** SSE (x86) backend: explicit address truncation before the aligned
    [_mm_load_si128]/[_mm_store_si128] forms reproduces the paper's memory
    unit; runtime [vshiftpair] via SSSE3 [_mm_shuffle_epi8] on both
    operands. Vectors are fixed at V = 16; requires [-mssse3]. *)

val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string
(** The backend's operation definitions ([vload]/[vstore]/[vshiftpair]/
    [vsplice]/[vpack_even]/[vsplat] and the lane ops). Raises
    [Invalid_argument] unless [v = 16]. *)

val unit : Simd_vir.Prog.t -> string
(** Prelude + kernels: a complete translation unit exposing
    [kernel_scalar] and [kernel_simd]. *)

val harness :
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** {!Portable.harness_with} over the SSE unit (compilable on x86-64 with
    SSSE3; exercised by integration tests and the native oracle). *)
