(** The backend registry and capability probe (see the interface).

    Each backend is described declaratively — name, native vector length,
    extra compiler flags, probe program — so consumers (the native oracle,
    the compile service, the bench matrix, [bin/simdize]) iterate the
    registry instead of hard-coding emitters. The probe compiles {e and
    runs} a minimal program using the backend's intrinsics: compiling
    proves the toolchain has the headers/flags ([Toolchain_only] — enough
    to emit and syntax-check, e.g. AltiVec on an x86 cross gcc), running
    proves the CPU executes the instructions ([Supported] — required
    before the native differential oracle may execute harnesses, else a
    wider-ISA binary dies with SIGILL). *)

type id = Portable | Altivec | Sse | Avx2 | Neon

let all = [ Portable; Altivec; Sse; Avx2; Neon ]

let name = function
  | Portable -> "portable"
  | Altivec -> "altivec"
  | Sse -> "sse"
  | Avx2 -> "avx2"
  | Neon -> "neon"

let of_name = function
  | "portable" | "c" -> Some Portable
  | "altivec" -> Some Altivec
  | "sse" -> Some Sse
  | "avx2" -> Some Avx2
  | "neon" -> Some Neon
  | _ -> None

let describe = function
  | Portable -> "plain C11 reference implementation (any V)"
  | Altivec -> "AltiVec/VMX intrinsics, V = 16 (-maltivec)"
  | Sse -> "SSE with SSSE3 shuffles, V = 16 (-mssse3)"
  | Avx2 -> "AVX2 intrinsics, V = 32 (-mavx2)"
  | Neon -> "AArch64 NEON intrinsics, V = 16"

(* Extra cflags the backend's unit needs beyond the base optimization
   level. NEON needs none: <arm_neon.h> is baseline on AArch64. *)
let cflags = function
  | Portable -> []
  | Altivec -> [ "-maltivec" ]
  | Sse -> [ "-mssse3" ]
  | Avx2 -> [ "-mavx2" ]
  | Neon -> []

let native_vl = function
  | Portable -> None
  | Altivec | Sse | Neon -> Some 16
  | Avx2 -> Some 32

let default_vl b = Option.value ~default:16 (native_vl b)

let supports_vl b v =
  match native_vl b with
  | Some n -> v = n
  | None ->
    (* the portable struct-of-bytes vec_t works at any machine V *)
    v >= 4 && v <= 64 && v land (v - 1) = 0

let unit_for b (prog : Simd_vir.Prog.t) =
  match b with
  | Portable -> Portable.unit prog
  | Altivec -> Altivec.unit prog
  | Sse -> Sse.unit prog
  | Avx2 -> Avx2.unit prog
  | Neon -> Neon.unit prog

let harness_for b ~layout ~params ~trip (prog : Simd_vir.Prog.t) =
  match b with
  | Portable -> Portable.harness ~layout ~params ~trip prog
  | Altivec -> Altivec.harness ~layout ~params ~trip prog
  | Sse -> Sse.harness ~layout ~params ~trip prog
  | Avx2 -> Avx2.harness ~layout ~params ~trip prog
  | Neon -> Neon.harness ~layout ~params ~trip prog

(* ------------------------------------------------------------------ *)
(* Capability probe                                                    *)
(* ------------------------------------------------------------------ *)

type support = Supported | Toolchain_only | Unsupported of string

let support_name = function
  | Supported -> "supported"
  | Toolchain_only -> "toolchain-only"
  | Unsupported _ -> "unsupported"

let pp_support fmt = function
  | Supported -> Format.pp_print_string fmt "supported"
  | Toolchain_only -> Format.pp_print_string fmt "toolchain-only (compiles, cannot run here)"
  | Unsupported m -> Format.fprintf fmt "unsupported (%s)" m

(* One tiny program per backend: includes the header, uses a
   representative intrinsic (the one the emitter leans on), verifies a
   known result. Compile failure → Unsupported; run failure (typically
   SIGILL on a CPU without the ISA) → Toolchain_only. *)
let probe_source = function
  | Portable ->
    "#include <stdint.h>\nint main(void) { volatile uint8_t b[16] = {1}; return b[0] == 1 ? 0 : 1; }"
  | Sse ->
    "#include <tmmintrin.h>\n\
     int main(void) { __m128i a = _mm_set1_epi8(1); a = _mm_shuffle_epi8(a, a);\n\
    \  return _mm_cvtsi128_si32(a) == 16843009 ? 0 : 1; }"
  | Avx2 ->
    "#include <immintrin.h>\n\
     int main(void) { __m256i a = _mm256_set1_epi8(2); __m256i b = _mm256_add_epi8(a, a);\n\
    \  b = _mm256_blendv_epi8(a, b, _mm256_set1_epi8((char)0x80));\n\
    \  return _mm256_extract_epi8(b, 31) == 4 ? 0 : 1; }"
  | Altivec ->
    "#include <altivec.h>\n\
     int main(void) { vector signed int a = vec_splats(3); a = vec_add(a, a);\n\
    \  return vec_extract(a, 0) == 6 ? 0 : 1; }"
  | Neon ->
    "#include <arm_neon.h>\n\
     int main(void) { int32x4_t a = vdupq_n_s32(5); a = vaddq_s32(a, a);\n\
    \  return vgetq_lane_s32(a, 0) == 10 ? 0 : 1; }"

let base_flags = "-O1"

let flags b = String.concat " " (base_flags :: cflags b)

let with_temp_dir f =
  let dir = Filename.temp_file "simd_backend" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let probe_uncached (cc : Cc.t) b : support =
  with_temp_dir (fun dir ->
      let src = Filename.concat dir (name b ^ "_probe.c") in
      let exe = Filename.concat dir (name b ^ "_probe") in
      let oc = open_out src in
      output_string oc (probe_source b);
      close_out oc;
      match Cc.compile cc ~flags:(flags b) ~src ~exe () with
      | Error _ -> Unsupported "probe does not compile"
      | Ok () ->
        if
          Sys.command
            (Printf.sprintf "%s >/dev/null 2>&1" (Filename.quote exe))
          = 0
        then Supported
        else Toolchain_only)

(* Per-(compiler, backend) cache: probes shell out twice, and every
   oracle case would otherwise re-pay them. *)
let cache : (string * id, support) Hashtbl.t = Hashtbl.create 16

let probe ?cc b : support =
  let cc = match cc with Some c -> Some c | None -> Cc.find () in
  match cc with
  | None -> Unsupported "no C compiler found"
  | Some cc -> (
    let key = (Cc.id cc, b) in
    match Hashtbl.find_opt cache key with
    | Some s -> s
    | None ->
      let s = probe_uncached cc b in
      Hashtbl.replace cache key s;
      s)

let probe_all ?cc () = List.map (fun b -> (b, probe ?cc b)) all

let clear_probe_cache () = Hashtbl.reset cache

let to_json b s =
  Simd_support.Json.Obj
    [
      ("backend", Simd_support.Json.String (name b));
      ( "vl",
        match native_vl b with
        | Some n -> Simd_support.Json.Int n
        | None -> Simd_support.Json.String "any" );
      ("cflags", Simd_support.Json.List
         (List.map (fun f -> Simd_support.Json.String f) (cflags b)));
      ("support", Simd_support.Json.String (support_name s));
      ( "detail",
        Simd_support.Json.String
          (match s with Unsupported m -> m | _ -> "") );
    ]
