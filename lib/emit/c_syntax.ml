(** Shared C-source fragments: scalar types and expressions, addresses,
    runtime offset computations, and the plain scalar rendition of the
    original loop (used both as the guard fallback and as the reference
    kernel in generated self-checking harnesses). *)

open Simd_loopir
open Simd_vir

let ctype (ty : Ast.elem_ty) =
  match ty with
  | Ast.I8 -> "int8_t"
  | Ast.I16 -> "int16_t"
  | Ast.I32 -> "int32_t"
  | Ast.I64 -> "int64_t"

(* The unsigned type +, - and * are computed in. The machine wraps at the
   element width, but C signed overflow is undefined behaviour — gcc folds
   e.g. [a > a + b] to [0 > b] even at -O0, diverging from the simulator.
   uint32_t (not the element's own unsigned type: uint8_t/uint16_t promote
   back to signed int, and uint16*uint16 can overflow int) keeps the
   computation defined; the cast back to [ctype] wraps at width. *)
let uctype (ty : Ast.elem_ty) =
  match ty with
  | Ast.I8 | Ast.I16 | Ast.I32 -> "uint32_t"
  | Ast.I64 -> "uint64_t"

let binop_wraps (op : Ast.binop) =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul -> true
  | Ast.And | Ast.Or | Ast.Xor | Ast.Min | Ast.Max -> false

let binop_is_infix (op : Ast.binop) =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.And | Ast.Or | Ast.Xor -> true
  | Ast.Min | Ast.Max -> false

let binop_c (op : Ast.binop) =
  match op with
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.And -> "&"
  | Ast.Or -> "|"
  | Ast.Xor -> "^"
  | Ast.Min -> "MINV"
  | Ast.Max -> "MAXV"

(** Scalar expression at iteration variable [iv] (C identifier). Casting
    every operation back to the element type reproduces the machine's
    wrap-at-width arithmetic in C. *)
let scalar_index ~iv (r : Ast.mem_ref) =
  let base =
    if r.Ast.ref_stride = 1 then iv
    else Printf.sprintf "%d * %s" r.Ast.ref_stride iv
  in
  if r.Ast.ref_offset = 0 then base
  else Printf.sprintf "%s + %d" base r.Ast.ref_offset

let cmp_c (c : Ast.cmp) =
  match c with
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="

let rec scalar_expr ~ty ~iv (e : Ast.expr) : string =
  match e with
  | Ast.Load r -> Printf.sprintf "%s[%s]" r.Ast.ref_array (scalar_index ~iv r)
  | Ast.Param x -> x
  | Ast.Const c -> Printf.sprintf "(%s)%LdLL" (ctype ty) c
  | Ast.Binop (op, a, b) ->
    let sa = scalar_expr ~ty ~iv a and sb = scalar_expr ~ty ~iv b in
    combine ~ty op sa sb
  | Ast.Select (c, a, b) ->
    Printf.sprintf "(%s ? (%s) : (%s))" (scalar_cond ~ty ~iv c)
      (scalar_expr ~ty ~iv a) (scalar_expr ~ty ~iv b)

and scalar_cond ~ty ~iv (c : Ast.cond) : string =
  Printf.sprintf "((%s) %s (%s))" (scalar_expr ~ty ~iv c.Ast.cl)
    (cmp_c c.Ast.cmp)
    (scalar_expr ~ty ~iv c.Ast.cr)

and combine ~ty op sa sb =
  if binop_wraps op then
    Printf.sprintf "(%s)((%s)(%s) %s (%s)(%s))" (ctype ty) (uctype ty) sa
      (binop_c op) (uctype ty) sb
  else if binop_is_infix op then
    Printf.sprintf "(%s)((%s) %s (%s))" (ctype ty) sa (binop_c op) sb
  else Printf.sprintf "(%s)%s((%s), (%s))" (ctype ty) (binop_c op) sa sb

(** Invariant expression (no loads): same printer, loads rejected upstream. *)
let invariant_expr ~ty (e : Ast.expr) : string = scalar_expr ~ty ~iv:"0" e

(** [fresh_ident ~program base] — [base], suffixed with underscores until it
    collides with no array or parameter name. *)
let rec fresh_ident ~(program : Ast.program) base =
  let taken =
    List.map (fun (d : Ast.array_decl) -> d.Ast.arr_name) program.Ast.arrays
    @ program.Ast.params
  in
  if List.mem base taken then fresh_ident ~program (base ^ "_") else base

(** The original scalar loop as plain C, writing through the declared
    pointers; [iv] is the loop-variable name (use {!fresh_ident} to avoid
    clashing with arrays and parameters). *)
let scalar_loop ~(program : Ast.program) ~(ub : string) ~(iv : string)
    ~(indent : string) : string =
  let ty = Ast.elem_ty_of_program program in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%sfor (long %s = 0; %s < %s; %s++) {\n" indent iv iv ub iv);
  List.iter
    (fun (s : Ast.stmt) ->
      (* A guarded statement executes its store only where the guard
         holds — evaluated afresh every scalar iteration. *)
      let body =
        match s.Ast.kind with
        | Ast.Assign ->
          let lhs =
            Printf.sprintf "%s[%s]" s.Ast.lhs.Ast.ref_array
              (scalar_index ~iv s.Ast.lhs)
          in
          Printf.sprintf "%s = %s;" lhs (scalar_expr ~ty ~iv s.Ast.rhs)
        | Ast.Reduce op ->
          (* accumulate in memory: same final state as the register form *)
          let cell = Printf.sprintf "%s[0]" s.Ast.lhs.Ast.ref_array in
          let rhs = scalar_expr ~ty ~iv s.Ast.rhs in
          Printf.sprintf "%s = %s;" cell (combine ~ty op cell rhs)
      in
      match s.Ast.guard with
      | None -> Buffer.add_string buf (Printf.sprintf "%s  %s\n" indent body)
      | Some g ->
        Buffer.add_string buf
          (Printf.sprintf "%s  if (%s) %s\n" indent (scalar_cond ~ty ~iv g)
             body))
    program.Ast.loop.Ast.body;
  Buffer.add_string buf (Printf.sprintf "%s}\n" indent);
  Buffer.contents buf

(** C address of a VIR address at iteration variable [iv]. *)
let addr ~iv (a : Addr.t) : string =
  match a.Addr.scale with
  | 0 -> Printf.sprintf "&%s[%d]" a.Addr.array a.Addr.offset
  | 1 ->
    if a.Addr.offset = 0 then Printf.sprintf "&%s[%s]" a.Addr.array iv
    else Printf.sprintf "&%s[%s + (%d)]" a.Addr.array iv a.Addr.offset
  | s ->
    if a.Addr.offset = 0 then Printf.sprintf "&%s[%d * %s]" a.Addr.array s iv
    else Printf.sprintf "&%s[%d * %s + (%d)]" a.Addr.array s iv a.Addr.offset

(** Runtime integer expression; [v] is the vector length. *)
let rec rexpr ~iv ~ub ~v (r : Rexpr.t) : string =
  match r with
  | Rexpr.Const c -> string_of_int c
  | Rexpr.Trip -> ub
  | Rexpr.Counter -> iv
  | Rexpr.Offset_of a ->
    Printf.sprintf "(long)((uintptr_t)(%s) & %d)" (addr ~iv a) (v - 1)
  | Rexpr.Add (a, b) ->
    Printf.sprintf "(%s + %s)" (rexpr ~iv ~ub ~v a) (rexpr ~iv ~ub ~v b)
  | Rexpr.Sub (a, b) ->
    Printf.sprintf "(%s - %s)" (rexpr ~iv ~ub ~v a) (rexpr ~iv ~ub ~v b)
  | Rexpr.Mul_const (a, k) -> Printf.sprintf "(%s * %d)" (rexpr ~iv ~ub ~v a) k
  | Rexpr.Mod_const (a, m) ->
    (* Operands are non-negative by construction; C % suffices. *)
    Printf.sprintf "(%s %% %d)" (rexpr ~iv ~ub ~v a) m

let cond ~iv ~ub ~v (c : Rexpr.cond) : string =
  match c with
  | Rexpr.Ge (a, b) -> Printf.sprintf "%s >= %s" (rexpr ~iv ~ub ~v a) (rexpr ~iv ~ub ~v b)
  | Rexpr.Gt (a, b) -> Printf.sprintf "%s > %s" (rexpr ~iv ~ub ~v a) (rexpr ~iv ~ub ~v b)
  | Rexpr.Le (a, b) -> Printf.sprintf "%s <= %s" (rexpr ~iv ~ub ~v a) (rexpr ~iv ~ub ~v b)
  | Rexpr.Lt (a, b) -> Printf.sprintf "%s < %s" (rexpr ~iv ~ub ~v a) (rexpr ~iv ~ub ~v b)

(** The trip-count parameter name, dodging user identifiers. *)
let ub_name (program : Ast.program) = fresh_ident ~program "ub"

(** A prefix that, prepended to generated temporary names, cannot collide
    with any array or parameter name: one underscore more than the longest
    leading-underscore run among the program's identifiers (our temporaries
    never begin with an underscore themselves). *)
let temp_prefix (program : Ast.program) : string =
  let leading s =
    let n = ref 0 in
    while !n < String.length s && s.[!n] = '_' do
      incr n
    done;
    !n
  in
  let names =
    List.map (fun (d : Ast.array_decl) -> d.Ast.arr_name) program.Ast.arrays
    @ program.Ast.params
  in
  String.make (1 + List.fold_left (fun m s -> max m (leading s)) 0 names) '_'

(** Kernel parameter list: one pointer per array, the trip count, then the
    scalar parameters. *)
let kernel_params (program : Ast.program) : string =
  let ty = ctype (Ast.elem_ty_of_program program) in
  String.concat ", "
    (List.map (fun (d : Ast.array_decl) -> Printf.sprintf "%s *%s" ty d.Ast.arr_name)
       program.Ast.arrays
    @ [ "long " ^ ub_name program ]
    @ List.map (fun p -> Printf.sprintf "%s %s" ty p) program.Ast.params)

let kernel_args (program : Ast.program) : string =
  String.concat ", "
    (List.map (fun (d : Ast.array_decl) -> d.Ast.arr_name) program.Ast.arrays
    @ [ ub_name program ]
    @ program.Ast.params)

(** MIN/MAX helper macros, included by every backend prelude. *)
let minmax_macros =
  "#define MINV(a, b) ((a) < (b) ? (a) : (b))\n\
   #define MAXV(a, b) ((a) > (b) ? (a) : (b))\n"
