(** SSE (x86) backend.

    x86's 16-byte loads do not truncate addresses, so [vload]/[vstore]
    truncate explicitly before using the aligned [_mm_load_si128] /
    [_mm_store_si128] forms — exactly the normalization the paper's machine
    performs in hardware. [vshiftpair] with a runtime shift uses SSSE3
    [_mm_shuffle_epi8] on both operands (index vector [{sh, …, sh+15}]
    masked into each source); [vsplice] is a byte blend through a computed
    mask. Requires [-mssse3]. *)

open Simd_loopir

let prelude ~v ~(ty : Ast.elem_ty) : string =
  if v <> 16 then invalid_arg "Sse.prelude: SSE vectors are 16 bytes";
  let ct = C_syntax.ctype ty in
  let suffix =
    match ty with
    | Ast.I8 -> "epi8"
    | Ast.I16 -> "epi16"
    | Ast.I32 -> "epi32"
    | Ast.I64 -> "epi64"
  in
  let lanes = 16 / Ast.elem_width ty in
  let lane_fallback name op =
    Printf.sprintf
      "static inline vec_t %s(vec_t a, vec_t b) {\n\
      \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
      \  ua.v = a; ub.v = b;\n\
      \  for (int k = 0; k < %d; k++) ur.e[k] = (elem_t)(%s);\n\
      \  return ur.v;\n\
       }" name lanes lanes op
  in
  String.concat "\n"
    [
      "#include <tmmintrin.h> /* SSSE3: _mm_shuffle_epi8 */";
      "#include <stdint.h>";
      "#include <string.h>";
      "";
      C_syntax.minmax_macros;
      Printf.sprintf "typedef %s elem_t;" ct;
      (* wrap-at-width lane arithmetic: see C_syntax.uctype *)
      Printf.sprintf "typedef %s uelem_t;" (C_syntax.uctype ty);
      "typedef __m128i vec_t;";
      "";
      "/* Truncate the address, then use the aligned load/store forms:";
      "   this reproduces the AltiVec-style memory unit on x86. */";
      "static inline vec_t vload(const void *p) {";
      "  return _mm_load_si128((const __m128i *)((uintptr_t)p & ~(uintptr_t)15));";
      "}";
      "static inline void vstore(void *p, vec_t v) {";
      "  _mm_store_si128((__m128i *)((uintptr_t)p & ~(uintptr_t)15), v);";
      "}";
      "";
      "static inline vec_t v_iota(void) {";
      "  return _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);";
      "}";
      "";
      "/* vshiftpair: idx = {sh..sh+15}; bytes with idx < 16 come from a";
      "   (pshufb keeps them, high-bit set lanes zero out), bytes with";
      "   idx >= 16 come from b via idx - 16. */";
      "static inline vec_t vshiftpair(vec_t a, vec_t b, long sh) {";
      "  vec_t idx = _mm_add_epi8(_mm_set1_epi8((char)sh), v_iota());";
      "  vec_t in_a = _mm_cmplt_epi8(idx, _mm_set1_epi8(16));";
      "  vec_t from_a = _mm_shuffle_epi8(a, _mm_or_si128(idx, _mm_andnot_si128(in_a, _mm_set1_epi8((char)0x80))));";
      "  vec_t idx_b = _mm_sub_epi8(idx, _mm_set1_epi8(16));";
      "  vec_t from_b = _mm_shuffle_epi8(b, _mm_or_si128(idx_b, _mm_and_si128(in_a, _mm_set1_epi8((char)0x80))));";
      "  return _mm_or_si128(from_a, from_b);";
      "}";
      "";
      "/* vsplice: mask = iota < p selects a. */";
      "static inline vec_t vsplice(vec_t a, vec_t b, long p) {";
      "  vec_t mask = _mm_cmplt_epi8(v_iota(), _mm_set1_epi8((char)p));";
      "  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));";
      "}";
      "";
      "/* vpack_even: even-indexed elements of the 2V concatenation";
      "   (strided-gather extension): pshufb each source with a static";
      "   mask (0x80 lanes zero out), then or. */";
      Printf.sprintf
        "static inline vec_t vpack_even(vec_t a, vec_t b) {\n\
        \  static const char m1[16] = { %s };\n\
        \  static const char m2[16] = { %s };\n\
        \  vec_t idx1, idx2;\n\
        \  memcpy(&idx1, m1, 16);\n\
        \  memcpy(&idx2, m2, 16);\n\
        \  return _mm_or_si128(_mm_shuffle_epi8(a, idx1), _mm_shuffle_epi8(b, idx2));\n\
         }"
        (let d = Ast.elem_width ty in
         let lanes = 16 / d in
         String.concat ", "
           (List.concat_map
              (fun k ->
                List.init d (fun byte ->
                    let src = 2 * k * d in
                    if src < 16 then string_of_int (src + byte) else "(char)0x80"))
              (List.init lanes Fun.id)))
        (let d = Ast.elem_width ty in
         let lanes = 16 / d in
         String.concat ", "
           (List.concat_map
              (fun k ->
                List.init d (fun byte ->
                    let src = 2 * k * d in
                    if src >= 16 then string_of_int (src - 16 + byte)
                    else "(char)0x80"))
              (List.init lanes Fun.id)));
      "static inline vec_t vsplat(elem_t x) {";
      (match ty with
      | Ast.I8 -> "  return _mm_set1_epi8((char)x);"
      | Ast.I16 -> "  return _mm_set1_epi16((short)x);"
      | Ast.I32 -> "  return _mm_set1_epi32((int)x);"
      | Ast.I64 -> "  return _mm_set1_epi64x((long long)x);");
      "}";
      "";
      Printf.sprintf
        "static inline vec_t vadd(vec_t a, vec_t b) { return _mm_add_%s(a, b); }"
        suffix;
      Printf.sprintf
        "static inline vec_t vsub(vec_t a, vec_t b) { return _mm_sub_%s(a, b); }"
        suffix;
      "static inline vec_t vand(vec_t a, vec_t b) { return _mm_and_si128(a, b); }";
      "static inline vec_t vor(vec_t a, vec_t b) { return _mm_or_si128(a, b); }";
      "static inline vec_t vxor(vec_t a, vec_t b) { return _mm_xor_si128(a, b); }";
      "/* Widths without a direct SSE instruction fall back to lanes. */";
      lane_fallback "vmul" "(uelem_t)ua.e[k] * (uelem_t)ub.e[k]";
      lane_fallback "vmin" "MINV(ua.e[k], ub.e[k])";
      lane_fallback "vmax" "MAXV(ua.e[k], ub.e[k])";
      "";
      "/* Mask-producing compares (predication): gt/eq are native up to";
      "   32-bit lanes (SSE4.2's 64-bit compare stays off the SSSE3 floor);";
      "   the other four derive by swapping operands and complementing. */";
      "static inline vec_t vnotm(vec_t a) { return _mm_xor_si128(a, _mm_set1_epi8((char)0xff)); }";
      (match ty with
      | Ast.I64 ->
        String.concat "\n"
          [
            lane_fallback "vcmp_gt" "ua.e[k] > ub.e[k] ? -1 : 0";
            lane_fallback "vcmp_eq" "ua.e[k] == ub.e[k] ? -1 : 0";
          ]
      | Ast.I8 | Ast.I16 | Ast.I32 ->
        Printf.sprintf
          "static inline vec_t vcmp_gt(vec_t a, vec_t b) { return _mm_cmpgt_%s(a, b); }\n\
           static inline vec_t vcmp_eq(vec_t a, vec_t b) { return _mm_cmpeq_%s(a, b); }"
          suffix suffix);
      "static inline vec_t vcmp_lt(vec_t a, vec_t b) { return vcmp_gt(b, a); }";
      "static inline vec_t vcmp_ne(vec_t a, vec_t b) { return vnotm(vcmp_eq(a, b)); }";
      "static inline vec_t vcmp_ge(vec_t a, vec_t b) { return vnotm(vcmp_gt(b, a)); }";
      "static inline vec_t vcmp_le(vec_t a, vec_t b) { return vnotm(vcmp_gt(a, b)); }";
      "";
      "/* vsel: bitwise (m & a) | (~m & b). */";
      "static inline vec_t vsel(vec_t m, vec_t a, vec_t b) {";
      "  return _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b));";
      "}";
      "";
      "/* Truncating masked store: blend the new lanes over the bytes";
      "   already in memory, then store the whole register. */";
      "static inline void vstore_mask(void *p, vec_t v, vec_t m) {";
      "  __m128i *q = (__m128i *)((uintptr_t)p & ~(uintptr_t)15);";
      "  _mm_store_si128(q, vsel(m, v, _mm_load_si128(q)));";
      "}";
      "";
    ]

(** [unit prog] — full SSE translation unit (prelude + both kernels). *)
let unit (prog : Simd_vir.Prog.t) : string =
  let ty = Ast.elem_ty_of_program prog.Simd_vir.Prog.source in
  let v = Simd_machine.Config.vector_len prog.Simd_vir.Prog.machine in
  prelude ~v ~ty ^ "\n" ^ Portable.kernel prog

(** [harness ~layout ~params ~trip prog] — self-checking main over the SSE
    unit (compilable on any x86-64 with SSSE3; exercised by integration
    tests when the host compiler supports it). *)
let harness ~layout ~params ~trip (prog : Simd_vir.Prog.t) : string =
  Portable.harness_with ~unit_text:(unit prog) ~layout ~params ~trip prog
