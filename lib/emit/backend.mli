(** The backend registry: one declarative description per C emitter —
    name, native vector length, extra compiler flags, probe program —
    plus the capability probe that classifies what the build machine can
    do with each.

    Consumers iterate this registry instead of hard-coding emitters: the
    native differential oracle ({!Simd_par.Native}) runs every
    [Supported] backend per case, the compile service exposes the names
    as emit-selection values, and the bench/docs matrix
    ({!Matrix}, [tools/gen_docs.sh]) renders it. The contract an emitter
    must meet is documented in [docs/BACKENDS.md]. *)

type id = Portable | Altivec | Sse | Avx2 | Neon

val all : id list
(** Registry order: [Portable; Altivec; Sse; Avx2; Neon]. *)

val name : id -> string
(** ["portable"], ["altivec"], ["sse"], ["avx2"], ["neon"]. *)

val of_name : string -> id option
(** Inverse of {!name}; also accepts ["c"] for [Portable]. *)

val describe : id -> string
(** One-line human description (ISA, vector width, required flag). *)

val cflags : id -> string list
(** Extra compiler flags the backend's unit needs (e.g. [["-mavx2"]];
    empty for [Portable] and [Neon]). *)

val native_vl : id -> int option
(** The one vector length the ISA implements, or [None] for [Portable]
    (the reference implementation works at any valid V). *)

val default_vl : id -> int
(** {!native_vl}, defaulting to 16 for [Portable]. *)

val supports_vl : id -> int -> bool
(** Can this backend emit a program compiled at vector length [v]?
    Fixed-width ISAs accept exactly their native V; [Portable] accepts
    any power of two in [\[4, 64\]]. *)

val unit_for : id -> Simd_vir.Prog.t -> string
(** The backend's complete translation unit. Raises [Invalid_argument]
    when the program's machine V is not supported (see
    {!supports_vl}). *)

val harness_for :
  id ->
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** The backend's self-checking differential harness
    ({!Portable.harness_with} over {!unit_for}). *)

(** What the build machine can do with a backend:
    - [Supported] — the probe compiles {e and runs} here, so emitted
      harnesses may be executed natively;
    - [Toolchain_only] — the probe compiles but its binary does not run
      (e.g. AVX2 headers on a pre-AVX2 CPU, or an AltiVec cross
      toolchain): units can be emitted and syntax-checked, but the native
      oracle must classify the backend as skipped, not failed;
    - [Unsupported] — the toolchain rejects the probe (missing headers or
      flags). *)
type support = Supported | Toolchain_only | Unsupported of string

val support_name : support -> string
(** ["supported"] / ["toolchain-only"] / ["unsupported"]. *)

val pp_support : Format.formatter -> support -> unit

val probe_source : id -> string
(** The minimal C program the probe compiles and runs: includes the
    backend's header and exercises a representative intrinsic. *)

val flags : id -> string
(** The full flag string the probe (and harness compiles) use:
    ["-O1"] + {!cflags}. *)

val probe : ?cc:Cc.t -> id -> support
(** Classify a backend on this machine ([?cc] defaults to {!Cc.find};
    [Unsupported] when no compiler exists). Results are cached per
    (compiler, backend) for the process. *)

val probe_all : ?cc:Cc.t -> unit -> (id * support) list
(** {!probe} across the whole registry, in {!all} order. *)

val clear_probe_cache : unit -> unit
(** Drop cached probe results (tests that change [SIMD_CC]). *)

val to_json : id -> support -> Simd_support.Json.t
(** One matrix row: backend, native V, cflags, support classification. *)
