(** AltiVec/VMX backend.

    Emits the same kernels as {!Portable} over a prelude that implements the
    generic operations with AltiVec intrinsics, following §2.2's recipes:

    - [vload]/[vstore] are [vec_ld]/[vec_st], whose hardware semantics
      already truncate the address (this is the machine the paper models);
    - [vshiftpair] is [vec_perm] with a permute vector
      [vsplat((char)sh) + (0, 1, …, 15)];
    - [vsplice] is [vec_sel] with a mask from comparing [(0, …, 15)]
      against [vsplat((char)p)];
    - [vsplat] is a scalar insert plus [vec_splat]. *)

open Simd_loopir

let vec_ctype (ty : Ast.elem_ty) =
  match ty with
  | Ast.I8 -> "vector signed char"
  | Ast.I16 -> "vector signed short"
  | Ast.I32 -> "vector signed int"
  | Ast.I64 -> "vector signed long long"

let prelude ~v ~(ty : Ast.elem_ty) : string =
  if v <> 16 then
    invalid_arg "Altivec.prelude: AltiVec vectors are 16 bytes";
  let ct = C_syntax.ctype ty in
  let vct = vec_ctype ty in
  let lanes = 16 / Ast.elem_width ty in
  String.concat "\n"
    [
      "#include <altivec.h>";
      "#include <stdint.h>";
      "";
      C_syntax.minmax_macros;
      Printf.sprintf "typedef %s elem_t;" ct;
      (* wrap-at-width lane arithmetic: see C_syntax.uctype *)
      Printf.sprintf "typedef %s uelem_t;" (C_syntax.uctype ty);
      Printf.sprintf "typedef %s vec_t;" vct;
      "";
      "/* vec_ld/vec_st ignore the low 4 address bits (paper §1). */";
      "static inline vec_t vload(const void *p) { return vec_ld(0, (const elem_t *)p); }";
      "static inline void vstore(void *p, vec_t v) { vec_st(v, 0, (elem_t *)p); }";
      "";
      "static const vector unsigned char v_iota =";
      "  { 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15 };";
      "";
      "/* vshiftpair via vec_perm: permute vector = vsplat((char)sh) + iota";
      "   (paper §2.2); sh may be a runtime value in [0, 16]. */";
      "static inline vec_t vshiftpair(vec_t a, vec_t b, long sh) {";
      "  vector unsigned char pv = vec_add(vec_splats((unsigned char)sh), v_iota);";
      "  return vec_perm(a, b, pv);";
      "}";
      "";
      "/* vsplice via vec_sel: mask selects a's byte where iota < p. */";
      "static inline vec_t vsplice(vec_t a, vec_t b, long p) {";
      "  vector unsigned char mask =";
      "    (vector unsigned char)vec_cmplt(v_iota, vec_splats((unsigned char)p));";
      "  return vec_sel(b, a, mask);";
      "}";
      "";
      "/* vpack_even: even-indexed elements of the 2V concatenation";
      "   (strided-gather extension), via vec_perm with a static mask. */";
      Printf.sprintf
        "static inline vec_t vpack_even(vec_t a, vec_t b) {\n\
        \  static const vector unsigned char mask = { %s };\n\
        \  return vec_perm(a, b, mask);\n\
         }"
        (String.concat ", "
           (List.concat_map
              (fun k ->
                let d = Ast.elem_width ty in
                List.init d (fun byte -> string_of_int ((2 * k * d) + byte)))
              (List.init (16 / Ast.elem_width ty) Fun.id)));
      Printf.sprintf
        "static inline vec_t vsplat(elem_t x) { return vec_splats(x); }";
      "";
      "static inline vec_t vadd(vec_t a, vec_t b) { return vec_add(a, b); }";
      "static inline vec_t vsub(vec_t a, vec_t b) { return vec_sub(a, b); }";
      "static inline vec_t vmin(vec_t a, vec_t b) { return vec_min(a, b); }";
      "static inline vec_t vmax(vec_t a, vec_t b) { return vec_max(a, b); }";
      "static inline vec_t vand(vec_t a, vec_t b) { return vec_and(a, b); }";
      "static inline vec_t vor(vec_t a, vec_t b) { return vec_or(a, b); }";
      "static inline vec_t vxor(vec_t a, vec_t b) { return vec_xor(a, b); }";
      "/* Element-wise multiply (modular); VMX has no full-width vector";
      "   multiply for every width, so spell it out via lane extraction. */";
      Printf.sprintf
        "static inline vec_t vmul(vec_t a, vec_t b) {\n\
        \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
        \  ua.v = a; ub.v = b;\n\
        \  for (int k = 0; k < %d; k++) ur.e[k] = (elem_t)((uelem_t)ua.e[k] * (uelem_t)ub.e[k]);\n\
        \  return ur.v;\n\
         }"
        lanes lanes;
      "";
      "/* Mask-producing compares (predication): vec_cmpgt/vec_cmpeq return";
      "   bool vectors (all-ones / all-zeros lanes) — cast back to vec_t.";
      "   lt swaps operands; ne/ge/le complement via vec_nor. */";
      "static inline vec_t vnotm(vec_t a) { return vec_nor(a, a); }";
      "static inline vec_t vcmp_gt(vec_t a, vec_t b) { return (vec_t)vec_cmpgt(a, b); }";
      "static inline vec_t vcmp_eq(vec_t a, vec_t b) { return (vec_t)vec_cmpeq(a, b); }";
      "static inline vec_t vcmp_lt(vec_t a, vec_t b) { return vcmp_gt(b, a); }";
      "static inline vec_t vcmp_ne(vec_t a, vec_t b) { return vnotm(vcmp_eq(a, b)); }";
      "static inline vec_t vcmp_ge(vec_t a, vec_t b) { return vnotm(vcmp_gt(b, a)); }";
      "static inline vec_t vcmp_le(vec_t a, vec_t b) { return vnotm(vcmp_gt(a, b)); }";
      "";
      "/* vsel: (m & a) | (b & ~m) — mask lanes are all-ones or all-zeros.";
      "   Spelled with and/andc/or so the mask needs no bool-vector cast. */";
      "static inline vec_t vsel(vec_t m, vec_t a, vec_t b) {";
      "  return vec_or(vec_and(m, a), vec_andc(b, m));";
      "}";
      "";
      "/* Truncating masked store (vec_ld/vec_st already truncate): blend";
      "   the new lanes over the bytes already in memory. */";
      "static inline void vstore_mask(void *p, vec_t v, vec_t m) {";
      "  vec_st(vsel(m, v, vec_ld(0, (const elem_t *)p)), 0, (elem_t *)p);";
      "}";
      "";
    ]

(** [unit prog] — full AltiVec translation unit (prelude + both kernels). *)
let unit (prog : Simd_vir.Prog.t) : string =
  let ty = Ast.elem_ty_of_program prog.Simd_vir.Prog.source in
  let v = Simd_machine.Config.vector_len prog.Simd_vir.Prog.machine in
  prelude ~v ~ty ^ "\n" ^ Portable.kernel prog

(** [harness ~layout ~params ~trip prog] — self-checking main over the
    AltiVec unit (compilable where gcc accepts [-maltivec]; exercised by
    the native oracle on POWER hosts). *)
let harness ~layout ~params ~trip (prog : Simd_vir.Prog.t) : string =
  Portable.harness_with ~unit_text:(unit prog) ~layout ~params ~trip prog
