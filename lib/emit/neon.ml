(** NEON (AArch64) backend, V = 16.

    NEON loads/stores do not truncate addresses (like x86, unlike
    AltiVec), so [vload]/[vstore] mask the low 4 bits explicitly before
    [vld1q]/[vst1q] — the truncated address is 16-aligned, so the aligned
    forms are exact. The cross-register byte extract [vextq] takes only
    immediate positions, and the paper's [vshiftpair] amount is a runtime
    value for runtime alignments, so [vshiftpair] round-trips through a
    32-byte spill buffer and re-loads at the byte offset (NEON [vld1q]
    permits unaligned addresses). [vsplice] is a [vbslq] bit-select under
    an [iota < p] byte mask. Vectors are typed per element width
    ([int32x4_t], …) with [vreinterpretq] casts for the byte-granular
    operations. Requires [<arm_neon.h>] (AArch64 gcc/clang; no extra
    flag). *)

open Simd_loopir

(* Per-width NEON typed vector, intrinsic suffix, and a byte-view cast
   pair (identity at width 8, vreinterpretq otherwise). *)
let vec_ctype (ty : Ast.elem_ty) =
  match ty with
  | Ast.I8 -> "int8x16_t"
  | Ast.I16 -> "int16x8_t"
  | Ast.I32 -> "int32x4_t"
  | Ast.I64 -> "int64x2_t"

let suffix (ty : Ast.elem_ty) =
  match ty with
  | Ast.I8 -> "s8"
  | Ast.I16 -> "s16"
  | Ast.I32 -> "s32"
  | Ast.I64 -> "s64"

let prelude ~v ~(ty : Ast.elem_ty) : string =
  if v <> 16 then invalid_arg "Neon.prelude: NEON vectors are 16 bytes";
  let ct = C_syntax.ctype ty in
  let vct = vec_ctype ty in
  let sfx = suffix ty in
  let d = Ast.elem_width ty in
  let lanes = 16 / d in
  let to_bytes e =
    if ty = Ast.I8 then e else Printf.sprintf "vreinterpretq_s8_%s(%s)" sfx e
  in
  let of_bytes e =
    if ty = Ast.I8 then e else Printf.sprintf "vreinterpretq_%s_s8(%s)" sfx e
  in
  let lane_fallback name op =
    Printf.sprintf
      "static inline vec_t %s(vec_t a, vec_t b) {\n\
      \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
      \  ua.v = a; ub.v = b;\n\
      \  for (int k = 0; k < %d; k++) ur.e[k] = (elem_t)(%s);\n\
      \  return ur.v;\n\
       }" name lanes lanes op
  in
  let simple name intr =
    Printf.sprintf "static inline vec_t %s(vec_t a, vec_t b) { return %s_%s(a, b); }"
      name intr sfx
  in
  String.concat "\n"
    [
      "#include <arm_neon.h>";
      "#include <stdint.h>";
      "#include <string.h>";
      "";
      C_syntax.minmax_macros;
      Printf.sprintf "typedef %s elem_t;" ct;
      (* wrap-at-width lane arithmetic: see C_syntax.uctype *)
      Printf.sprintf "typedef %s uelem_t;" (C_syntax.uctype ty);
      Printf.sprintf "typedef %s vec_t;" vct;
      "";
      "/* NEON does not truncate addresses; mask the low 4 bits to";
      "   reproduce the paper's memory unit. */";
      "static inline vec_t vload(const void *p) {";
      Printf.sprintf
        "  return vld1q_%s((const elem_t *)((uintptr_t)p & ~(uintptr_t)15));"
        sfx;
      "}";
      "static inline void vstore(void *p, vec_t v) {";
      Printf.sprintf
        "  vst1q_%s((elem_t *)((uintptr_t)p & ~(uintptr_t)15), v);" sfx;
      "}";
      "";
      "static inline uint8x16_t v_iota(void) {";
      "  static const uint8_t k[16] = { 0, 1, 2, 3, 4, 5, 6, 7,";
      "                                 8, 9, 10, 11, 12, 13, 14, 15 };";
      "  return vld1q_u8(k);";
      "}";
      "";
      "/* vshiftpair: bytes [sh, sh+16) of a ++ b. vextq takes only";
      "   immediate positions, so spill both registers and re-load at the";
      "   (runtime) byte offset; sh in [0, 16]. */";
      "static inline vec_t vshiftpair(vec_t a, vec_t b, long sh) {";
      "  int8_t buf[32] __attribute__((aligned(16)));";
      Printf.sprintf "  vst1q_s8(buf, %s);" (to_bytes "a");
      Printf.sprintf "  vst1q_s8(buf + 16, %s);" (to_bytes "b");
      Printf.sprintf "  return %s;" (of_bytes "vld1q_s8(buf + sh)");
      "}";
      "";
      "/* vsplice: bit-select under an iota < p byte mask. */";
      "static inline vec_t vsplice(vec_t a, vec_t b, long p) {";
      "  uint8x16_t mask = vcltq_u8(v_iota(), vdupq_n_u8((uint8_t)p));";
      Printf.sprintf "  return %s;"
        (of_bytes
           (Printf.sprintf "vbslq_s8(mask, %s, %s)" (to_bytes "a")
              (to_bytes "b")));
      "}";
      "";
      "/* vpack_even: even-indexed elements of the 2V concatenation";
      "   (strided-gather extension); lane-wise — vuzp1q covers only the";
      "   in-register halves. */";
      Printf.sprintf
        "static inline vec_t vpack_even(vec_t a, vec_t b) {\n\
        \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
        \  ua.v = a; ub.v = b;\n\
        \  for (int k = 0; k < %d; k++)\n\
        \    ur.e[k] = 2 * k < %d ? ua.e[2 * k] : ub.e[(2 * k) - %d];\n\
        \  return ur.v;\n\
         }"
        lanes lanes lanes lanes;
      Printf.sprintf
        "static inline vec_t vsplat(elem_t x) { return vdupq_n_%s(x); }" sfx;
      "";
      simple "vadd" "vaddq";
      simple "vsub" "vsubq";
      (* 64-bit lanes have no vminq/vmaxq/vmulq on NEON. *)
      (if ty = Ast.I64 then
         String.concat "\n"
           [
             "/* int64 lanes: no vminq/vmaxq/vmulq_s64 — fall back. */";
             lane_fallback "vmin" "MINV(ua.e[k], ub.e[k])";
             lane_fallback "vmax" "MAXV(ua.e[k], ub.e[k])";
             lane_fallback "vmul" "(uelem_t)ua.e[k] * (uelem_t)ub.e[k]";
           ]
       else
         String.concat "\n"
           [ simple "vmin" "vminq"; simple "vmax" "vmaxq"; simple "vmul" "vmulq" ]);
      simple "vand" "vandq";
      simple "vor" "vorrq";
      simple "vxor" "veorq";
      "";
      "/* Mask-producing compares (predication): AArch64 has the full set";
      "   at every width; the unsigned results reinterpret back to vec_t";
      "   (all-ones / all-zeros lanes). ne derives from eq. */";
      Printf.sprintf
        "static inline vec_t vnotm(vec_t a) { return %s; }"
        (of_bytes
           (Printf.sprintf "veorq_s8(%s, vdupq_n_s8(-1))" (to_bytes "a")));
      (let cmp name intr =
         Printf.sprintf
           "static inline vec_t %s(vec_t a, vec_t b) { return vreinterpretq_%s_u%d(%s_%s(a, b)); }"
           name sfx (8 * d) intr sfx
       in
       String.concat "\n"
         [
           cmp "vcmp_gt" "vcgtq";
           cmp "vcmp_ge" "vcgeq";
           cmp "vcmp_lt" "vcltq";
           cmp "vcmp_le" "vcleq";
           cmp "vcmp_eq" "vceqq";
         ]);
      "static inline vec_t vcmp_ne(vec_t a, vec_t b) { return vnotm(vcmp_eq(a, b)); }";
      "";
      "/* vsel: bit-select through the byte view. */";
      "static inline vec_t vsel(vec_t m, vec_t a, vec_t b) {";
      Printf.sprintf "  return %s;"
        (of_bytes
           (Printf.sprintf "vbslq_s8(vreinterpretq_u8_s8(%s), %s, %s)"
              (to_bytes "m") (to_bytes "a") (to_bytes "b")));
      "}";
      "";
      "/* Truncating masked store: blend the new lanes over the bytes";
      "   already in memory, then store the whole register. */";
      "static inline void vstore_mask(void *p, vec_t v, vec_t m) {";
      "  elem_t *q = (elem_t *)((uintptr_t)p & ~(uintptr_t)15);";
      Printf.sprintf "  vst1q_%s(q, vsel(m, v, vld1q_%s(q)));" sfx sfx;
      "}";
      "";
    ]

(** [unit prog] — full NEON translation unit (prelude + both kernels). *)
let unit (prog : Simd_vir.Prog.t) : string =
  let ty = Ast.elem_ty_of_program prog.Simd_vir.Prog.source in
  let v = Simd_machine.Config.vector_len prog.Simd_vir.Prog.machine in
  prelude ~v ~ty ^ "\n" ^ Portable.kernel prog

(** [harness ~layout ~params ~trip prog] — self-checking main over the
    NEON unit (compilable on AArch64; run by the native oracle on ARM
    hosts). *)
let harness ~layout ~params ~trip (prog : Simd_vir.Prog.t) : string =
  Portable.harness_with ~unit_text:(unit prog) ~layout ~params ~trip prog
