(** AltiVec/VMX backend: the same kernels over a prelude implementing the
    generic operations with AltiVec intrinsics per §2.2 ([vec_ld]/[vec_st],
    [vec_perm] with a [vsplat((char)sh) + iota] permute vector, [vec_sel]
    with a comparison mask, [vec_splats]).

    This is the machine the paper models: [vec_ld]/[vec_st] truncate the
    low 4 address bits in hardware, so no explicit masking is emitted.
    Vectors are fixed at V = 16; requires [-maltivec]. *)

val vec_ctype : Simd_loopir.Ast.elem_ty -> string
(** The AltiVec vector type for an element width, e.g.
    [vector signed int] for [I32]. *)

val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string
(** The backend's operation definitions ([vload]/[vstore]/[vshiftpair]/
    [vsplice]/[vpack_even]/[vsplat] and the lane ops). Raises
    [Invalid_argument] unless [v = 16]. *)

val unit : Simd_vir.Prog.t -> string
(** Prelude + kernels: a complete translation unit exposing
    [kernel_scalar] and [kernel_simd]. *)

val harness :
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** {!Portable.harness_with} over the AltiVec unit (compilable where gcc
    accepts [-maltivec]; run by the native oracle on POWER hosts). *)
