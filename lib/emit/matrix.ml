(** The backend matrix (see the interface): one placed compilation joined
    against the backend registry — each row retargets the placement to the
    backend's native vector length ({!Simd_codegen.Retarget}), probes what
    the build machine can do with the result, and prices it under the
    retargeted cost model. *)

module Driver = Simd_codegen.Driver
module Retarget = Simd_codegen.Retarget
module Machine = Simd_machine.Config
module Report = Simd_opt.Report
module Json = Simd_support.Json

type row = {
  backend : Backend.id;
  support : Backend.support;
  vl : int;
  retarget : (Retarget.t, Driver.reason) result;
}

let row_vl (o : Driver.outcome) b =
  match Backend.native_vl b with
  | Some v -> v
  | None -> Machine.vector_len o.Driver.config.Driver.machine

let rows ?cc ?check (o : Driver.outcome) : row list =
  List.map
    (fun backend ->
      let vl = row_vl o backend in
      {
        backend;
        support = Backend.probe ?cc backend;
        vl;
        retarget = Retarget.retarget ?check ~vector_len:vl o;
      })
    Backend.all

let unit_of_row (r : row) : string option =
  match r.retarget with
  | Ok t -> Some (Backend.unit_for r.backend t.Retarget.outcome.Driver.prog)
  | Error _ -> None

let row_to_json (r : row) =
  let base =
    match Backend.to_json r.backend r.support with
    | Json.Obj fields -> fields
    | _ -> []
  in
  let retarget_fields =
    match r.retarget with
    | Ok t ->
      let report = Driver.report t.Retarget.outcome in
      [
        ("retarget", Retarget.to_json t);
        ("cost", Json.Float report.Report.total_cost);
        ("body_cost", Json.Float report.Report.body_cost);
      ]
    | Error reason ->
      [
        ( "retarget_error",
          Json.String (Format.asprintf "%a" Driver.pp_reason reason) );
      ]
  in
  Json.Obj ((("row_vl", Json.Int r.vl) :: base) @ retarget_fields)

let to_json (rows : row list) = Json.List (List.map row_to_json rows)
