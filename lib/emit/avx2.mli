(** AVX2 (x86) backend, V = 32 — the first wide backend; programs reach it
    by compiling at vector length 32 or by retargeting a V = 16 placement
    ({!Simd_codegen.Retarget}).

    AVX2's byte shuffle is lane-local (it cannot move bytes across the
    16-byte lane boundary), so the runtime-amount [vshiftpair] round-trips
    through a 64-byte aligned spill buffer instead of a shuffle cascade;
    [vsplice] is a [_mm256_blendv_epi8] byte blend under an [iota < p]
    mask. Loads/stores truncate the address (low 5 bits) before the
    aligned forms. Requires [-mavx2]. *)

val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string
(** The backend's operation definitions ([vload]/[vstore]/[vshiftpair]/
    [vsplice]/[vpack_even]/[vsplat] and the lane ops). Raises
    [Invalid_argument] unless [v = 32]. *)

val unit : Simd_vir.Prog.t -> string
(** Prelude + kernels: a complete translation unit exposing
    [kernel_scalar] and [kernel_simd]. *)

val harness :
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** {!Portable.harness_with} over the AVX2 unit (compilable on x86-64 with
    AVX2; run by the native oracle when the build machine supports it). *)
