(** Shared C-compiler discovery (see the interface). Probing shells out to
    [command -v], which is POSIX and quiet; compilation redirects
    diagnostics to a log file next to the output so a failure message can
    quote them. *)

type t = { cc_path : string }

let path t = t.cc_path
let id t = t.cc_path

let works name =
  Sys.command (Printf.sprintf "command -v %s >/dev/null 2>&1" (Filename.quote name))
  = 0

let probe () =
  let candidates =
    match Sys.getenv_opt "SIMD_CC" with
    | Some cc when cc <> "" -> [ cc; "gcc"; "cc"; "clang" ]
    | _ -> [ "gcc"; "cc"; "clang" ]
  in
  List.find_map (fun name -> if works name then Some { cc_path = name } else None)
    candidates

(* The cache is a [ref] rather than a [lazy] so tests can force a re-probe
   (e.g. after setting SIMD_CC). *)
let cache : t option option ref = ref None

let find () =
  match !cache with
  | Some r -> r
  | None ->
    let r = probe () in
    cache := Some r;
    r

let rediscover () =
  let r = probe () in
  cache := Some r;
  r

let read_tail path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let keep = min len 2000 in
    seek_in ic (len - keep);
    let s =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic keep)
    in
    String.trim s
  with _ -> ""

let compile t ?(flags = "-O1") ~src ~exe () =
  let log = exe ^ ".cc.log" in
  let cmd =
    Printf.sprintf "%s %s -o %s %s 2>%s" (Filename.quote t.cc_path) flags
      (Filename.quote exe) (Filename.quote src) (Filename.quote log)
  in
  if Sys.command cmd = 0 then begin
    (try Sys.remove log with Sys_error _ -> ());
    Ok ()
  end
  else
    let diag = read_tail log in
    Error
      (Printf.sprintf "%s failed%s" cmd
         (if diag = "" then "" else ":\n" ^ diag))
