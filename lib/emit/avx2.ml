(** AVX2 (x86) backend, V = 32.

    The first wide backend: one [__m256i] register holds a 32-byte chunk,
    so a program must be compiled (or retargeted, {!Simd_codegen.Retarget})
    at vector length 32 before this emitter applies.

    AVX2's permute unit is split into two 16-byte lanes —
    [_mm256_shuffle_epi8] cannot move a byte across the lane boundary — so
    the byte-granular cross-register [vshiftpair] does not map to one
    shuffle the way SSSE3's does. Rather than a three-instruction
    lane-crossing dance whose correctness depends on the shift amount's
    range, [vshiftpair] round-trips through a 64-byte aligned spill buffer
    and re-loads at the (runtime) byte offset with [_mm256_loadu_si256]:
    store-forwarding makes this fast in practice and it is correct for
    every [sh] in [0, 32]. [vsplice] is a byte blend
    ([_mm256_blendv_epi8]) under an [iota < p] mask, which is lane-local
    and safe. Loads/stores truncate the address (low 5 bits) before the
    aligned forms, reproducing the paper's memory unit at V = 32.
    Requires [-mavx2]. *)

open Simd_loopir

let prelude ~v ~(ty : Ast.elem_ty) : string =
  if v <> 32 then invalid_arg "Avx2.prelude: AVX2 vectors are 32 bytes";
  let ct = C_syntax.ctype ty in
  let suffix =
    match ty with
    | Ast.I8 -> "epi8"
    | Ast.I16 -> "epi16"
    | Ast.I32 -> "epi32"
    | Ast.I64 -> "epi64"
  in
  let d = Ast.elem_width ty in
  let lanes = 32 / d in
  let lane_fallback name op =
    Printf.sprintf
      "static inline vec_t %s(vec_t a, vec_t b) {\n\
      \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
      \  ua.v = a; ub.v = b;\n\
      \  for (int k = 0; k < %d; k++) ur.e[k] = (elem_t)(%s);\n\
      \  return ur.v;\n\
       }" name lanes lanes op
  in
  String.concat "\n"
    [
      "#include <immintrin.h> /* AVX2 */";
      "#include <stdint.h>";
      "#include <string.h>";
      "";
      C_syntax.minmax_macros;
      Printf.sprintf "typedef %s elem_t;" ct;
      (* wrap-at-width lane arithmetic: see C_syntax.uctype *)
      Printf.sprintf "typedef %s uelem_t;" (C_syntax.uctype ty);
      "typedef __m256i vec_t;";
      "";
      "/* Truncate the address, then use the aligned load/store forms:";
      "   this reproduces the AltiVec-style memory unit at V = 32. */";
      "static inline vec_t vload(const void *p) {";
      "  return _mm256_load_si256((const __m256i *)((uintptr_t)p & ~(uintptr_t)31));";
      "}";
      "static inline void vstore(void *p, vec_t v) {";
      "  _mm256_store_si256((__m256i *)((uintptr_t)p & ~(uintptr_t)31), v);";
      "}";
      "";
      "static inline vec_t v_iota(void) {";
      "  return _mm256_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,";
      "                          14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,";
      "                          26, 27, 28, 29, 30, 31);";
      "}";
      "";
      "/* vshiftpair: bytes [sh, sh+32) of a ++ b. _mm256_shuffle_epi8 is";
      "   lane-local (cannot cross the 16-byte boundary), so spill both";
      "   registers and re-load at the byte offset; sh in [0, 32]. */";
      "static inline vec_t vshiftpair(vec_t a, vec_t b, long sh) {";
      "  uint8_t buf[64] __attribute__((aligned(32)));";
      "  _mm256_store_si256((__m256i *)buf, a);";
      "  _mm256_store_si256((__m256i *)(buf + 32), b);";
      "  return _mm256_loadu_si256((const __m256i *)(buf + sh));";
      "}";
      "";
      "/* vsplice: byte blend under an iota < p mask (lane-local, safe).";
      "   iota and p both fit signed 8-bit, so the signed compare is exact";
      "   for p in [0, 32]. */";
      "static inline vec_t vsplice(vec_t a, vec_t b, long p) {";
      "  vec_t mask = _mm256_cmpgt_epi8(_mm256_set1_epi8((char)p), v_iota());";
      "  return _mm256_blendv_epi8(b, a, mask);";
      "}";
      "";
      "/* vpack_even: even-indexed elements of the 2V concatenation";
      "   (strided-gather extension); kept lane-wise — a static cross-lane";
      "   shuffle would need _mm256_permutevar8x32 per width. */";
      Printf.sprintf
        "static inline vec_t vpack_even(vec_t a, vec_t b) {\n\
        \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
        \  ua.v = a; ub.v = b;\n\
        \  for (int k = 0; k < %d; k++)\n\
        \    ur.e[k] = 2 * k < %d ? ua.e[2 * k] : ub.e[(2 * k) - %d];\n\
        \  return ur.v;\n\
         }"
        lanes lanes lanes lanes;
      "static inline vec_t vsplat(elem_t x) {";
      (match ty with
      | Ast.I8 -> "  return _mm256_set1_epi8((char)x);"
      | Ast.I16 -> "  return _mm256_set1_epi16((short)x);"
      | Ast.I32 -> "  return _mm256_set1_epi32((int)x);"
      | Ast.I64 -> "  return _mm256_set1_epi64x((long long)x);");
      "}";
      "";
      Printf.sprintf
        "static inline vec_t vadd(vec_t a, vec_t b) { return _mm256_add_%s(a, b); }"
        suffix;
      Printf.sprintf
        "static inline vec_t vsub(vec_t a, vec_t b) { return _mm256_sub_%s(a, b); }"
        suffix;
      "static inline vec_t vand(vec_t a, vec_t b) { return _mm256_and_si256(a, b); }";
      "static inline vec_t vor(vec_t a, vec_t b) { return _mm256_or_si256(a, b); }";
      "static inline vec_t vxor(vec_t a, vec_t b) { return _mm256_xor_si256(a, b); }";
      "/* Widths without a direct AVX2 instruction fall back to lanes. */";
      lane_fallback "vmul" "(uelem_t)ua.e[k] * (uelem_t)ub.e[k]";
      lane_fallback "vmin" "MINV(ua.e[k], ub.e[k])";
      lane_fallback "vmax" "MAXV(ua.e[k], ub.e[k])";
      "";
    ]

(** [unit prog] — full AVX2 translation unit (prelude + both kernels). *)
let unit (prog : Simd_vir.Prog.t) : string =
  let ty = Ast.elem_ty_of_program prog.Simd_vir.Prog.source in
  let v = Simd_machine.Config.vector_len prog.Simd_vir.Prog.machine in
  prelude ~v ~ty ^ "\n" ^ Portable.kernel prog

(** [harness ~layout ~params ~trip prog] — self-checking main over the
    AVX2 unit (compilable on x86-64 with AVX2; exercised by the native
    oracle when the build machine supports it). *)
let harness ~layout ~params ~trip (prog : Simd_vir.Prog.t) : string =
  Portable.harness_with ~unit_text:(unit prog) ~layout ~params ~trip prog
