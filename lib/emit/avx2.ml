(** AVX2 (x86) backend, V = 32.

    The first wide backend: one [__m256i] register holds a 32-byte chunk,
    so a program must be compiled (or retargeted, {!Simd_codegen.Retarget})
    at vector length 32 before this emitter applies.

    AVX2's permute unit is split into two 16-byte lanes —
    [_mm256_shuffle_epi8] cannot move a byte across the lane boundary — so
    the byte-granular cross-register [vshiftpair] does not map to one
    shuffle the way SSSE3's does. Rather than a three-instruction
    lane-crossing dance whose correctness depends on the shift amount's
    range, [vshiftpair] round-trips through a 64-byte aligned spill buffer
    and re-loads at the (runtime) byte offset with [_mm256_loadu_si256]:
    store-forwarding makes this fast in practice and it is correct for
    every [sh] in [0, 32]. [vsplice] is a byte blend
    ([_mm256_blendv_epi8]) under an [iota < p] mask, which is lane-local
    and safe. Loads/stores truncate the address (low 5 bits) before the
    aligned forms, reproducing the paper's memory unit at V = 32.
    Requires [-mavx2]. *)

open Simd_loopir

let prelude ~v ~(ty : Ast.elem_ty) : string =
  if v <> 32 then invalid_arg "Avx2.prelude: AVX2 vectors are 32 bytes";
  let ct = C_syntax.ctype ty in
  let suffix =
    match ty with
    | Ast.I8 -> "epi8"
    | Ast.I16 -> "epi16"
    | Ast.I32 -> "epi32"
    | Ast.I64 -> "epi64"
  in
  let d = Ast.elem_width ty in
  let lanes = 32 / d in
  let lane_fallback name op =
    Printf.sprintf
      "static inline vec_t %s(vec_t a, vec_t b) {\n\
      \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
      \  ua.v = a; ub.v = b;\n\
      \  for (int k = 0; k < %d; k++) ur.e[k] = (elem_t)(%s);\n\
      \  return ur.v;\n\
       }" name lanes lanes op
  in
  String.concat "\n"
    [
      "#include <immintrin.h> /* AVX2 */";
      "#include <stdint.h>";
      "#include <string.h>";
      "";
      C_syntax.minmax_macros;
      Printf.sprintf "typedef %s elem_t;" ct;
      (* wrap-at-width lane arithmetic: see C_syntax.uctype *)
      Printf.sprintf "typedef %s uelem_t;" (C_syntax.uctype ty);
      "typedef __m256i vec_t;";
      "";
      "/* Truncate the address, then use the aligned load/store forms:";
      "   this reproduces the AltiVec-style memory unit at V = 32. */";
      "static inline vec_t vload(const void *p) {";
      "  return _mm256_load_si256((const __m256i *)((uintptr_t)p & ~(uintptr_t)31));";
      "}";
      "static inline void vstore(void *p, vec_t v) {";
      "  _mm256_store_si256((__m256i *)((uintptr_t)p & ~(uintptr_t)31), v);";
      "}";
      "";
      "static inline vec_t v_iota(void) {";
      "  return _mm256_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,";
      "                          14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,";
      "                          26, 27, 28, 29, 30, 31);";
      "}";
      "";
      "/* vshiftpair: bytes [sh, sh+32) of a ++ b. _mm256_shuffle_epi8 is";
      "   lane-local (cannot cross the 16-byte boundary); the spill path";
      "   round-trips a 64-byte aligned buffer and re-loads at the byte";
      "   offset — correct for every sh in [0, 32], kept as the fallback";
      "   for amounts the fast path's jump table cannot fold. */";
      "static inline vec_t vshiftpair_spill(vec_t a, vec_t b, long sh) {";
      "  uint8_t buf[64] __attribute__((aligned(32)));";
      "  _mm256_store_si256((__m256i *)buf, a);";
      "  _mm256_store_si256((__m256i *)(buf + 32), b);";
      "  return _mm256_loadu_si256((const __m256i *)(buf + sh));";
      "}";
      "";
      "/* Fast path: mid = permute2x128(a, b, 0x21) = [a_hi, b_lo], so per";
      "   16-byte lane the concatenation a ++ b reads [a_lo,a_hi,b_lo,b_hi]";
      "   and _mm256_alignr_epi8 (lane-local, immediate amount) extracts";
      "   bytes [n, n+16) of each adjacent lane pair:";
      "     sh in (0,16):  alignr(mid, a, sh)        -> lanes [sh, sh+16),";
      "                                                 [sh+16, sh+32)";
      "     sh in (16,32): alignr(b, mid, sh - 16)";
      "   The immediate forces a switch; compile-time shift amounts (the";
      "   common case after specialization) fold to the single case. */";
      "static inline vec_t vshiftpair(vec_t a, vec_t b, long sh) {";
      "  vec_t mid = _mm256_permute2x128_si256(a, b, 0x21);";
      "  switch (sh) {";
      "  case 0: return a;";
      "  case 16: return mid;";
      "  case 32: return b;";
      "#define SHIFTPAIR_LO(n) case n: return _mm256_alignr_epi8(mid, a, n);";
      "#define SHIFTPAIR_HI(n) case (16 + n): return _mm256_alignr_epi8(b, mid, n);";
      "  SHIFTPAIR_LO(1) SHIFTPAIR_LO(2) SHIFTPAIR_LO(3) SHIFTPAIR_LO(4)";
      "  SHIFTPAIR_LO(5) SHIFTPAIR_LO(6) SHIFTPAIR_LO(7) SHIFTPAIR_LO(8)";
      "  SHIFTPAIR_LO(9) SHIFTPAIR_LO(10) SHIFTPAIR_LO(11) SHIFTPAIR_LO(12)";
      "  SHIFTPAIR_LO(13) SHIFTPAIR_LO(14) SHIFTPAIR_LO(15)";
      "  SHIFTPAIR_HI(1) SHIFTPAIR_HI(2) SHIFTPAIR_HI(3) SHIFTPAIR_HI(4)";
      "  SHIFTPAIR_HI(5) SHIFTPAIR_HI(6) SHIFTPAIR_HI(7) SHIFTPAIR_HI(8)";
      "  SHIFTPAIR_HI(9) SHIFTPAIR_HI(10) SHIFTPAIR_HI(11) SHIFTPAIR_HI(12)";
      "  SHIFTPAIR_HI(13) SHIFTPAIR_HI(14) SHIFTPAIR_HI(15)";
      "#undef SHIFTPAIR_LO";
      "#undef SHIFTPAIR_HI";
      "  default: return vshiftpair_spill(a, b, sh);";
      "  }";
      "}";
      "";
      "/* vsplice: byte blend under an iota < p mask (lane-local, safe).";
      "   iota and p both fit signed 8-bit, so the signed compare is exact";
      "   for p in [0, 32]. */";
      "static inline vec_t vsplice(vec_t a, vec_t b, long p) {";
      "  vec_t mask = _mm256_cmpgt_epi8(_mm256_set1_epi8((char)p), v_iota());";
      "  return _mm256_blendv_epi8(b, a, mask);";
      "}";
      "";
      "/* vpack_even: even-indexed elements of the 2V concatenation";
      "   (strided-gather extension); kept lane-wise — a static cross-lane";
      "   shuffle would need _mm256_permutevar8x32 per width. */";
      Printf.sprintf
        "static inline vec_t vpack_even(vec_t a, vec_t b) {\n\
        \  union { vec_t v; elem_t e[%d]; } ua, ub, ur;\n\
        \  ua.v = a; ub.v = b;\n\
        \  for (int k = 0; k < %d; k++)\n\
        \    ur.e[k] = 2 * k < %d ? ua.e[2 * k] : ub.e[(2 * k) - %d];\n\
        \  return ur.v;\n\
         }"
        lanes lanes lanes lanes;
      "static inline vec_t vsplat(elem_t x) {";
      (match ty with
      | Ast.I8 -> "  return _mm256_set1_epi8((char)x);"
      | Ast.I16 -> "  return _mm256_set1_epi16((short)x);"
      | Ast.I32 -> "  return _mm256_set1_epi32((int)x);"
      | Ast.I64 -> "  return _mm256_set1_epi64x((long long)x);");
      "}";
      "";
      Printf.sprintf
        "static inline vec_t vadd(vec_t a, vec_t b) { return _mm256_add_%s(a, b); }"
        suffix;
      Printf.sprintf
        "static inline vec_t vsub(vec_t a, vec_t b) { return _mm256_sub_%s(a, b); }"
        suffix;
      "static inline vec_t vand(vec_t a, vec_t b) { return _mm256_and_si256(a, b); }";
      "static inline vec_t vor(vec_t a, vec_t b) { return _mm256_or_si256(a, b); }";
      "static inline vec_t vxor(vec_t a, vec_t b) { return _mm256_xor_si256(a, b); }";
      "/* Widths without a direct AVX2 instruction fall back to lanes. */";
      lane_fallback "vmul" "(uelem_t)ua.e[k] * (uelem_t)ub.e[k]";
      lane_fallback "vmin" "MINV(ua.e[k], ub.e[k])";
      lane_fallback "vmax" "MAXV(ua.e[k], ub.e[k])";
      "";
      "/* Mask-producing compares (predication): gt/eq are native at every";
      "   width on AVX2; the other four derive by swapping operands and";
      "   complementing. */";
      "static inline vec_t vnotm(vec_t a) { return _mm256_xor_si256(a, _mm256_set1_epi8((char)0xff)); }";
      Printf.sprintf
        "static inline vec_t vcmp_gt(vec_t a, vec_t b) { return _mm256_cmpgt_%s(a, b); }"
        suffix;
      Printf.sprintf
        "static inline vec_t vcmp_eq(vec_t a, vec_t b) { return _mm256_cmpeq_%s(a, b); }"
        suffix;
      "static inline vec_t vcmp_lt(vec_t a, vec_t b) { return vcmp_gt(b, a); }";
      "static inline vec_t vcmp_ne(vec_t a, vec_t b) { return vnotm(vcmp_eq(a, b)); }";
      "static inline vec_t vcmp_ge(vec_t a, vec_t b) { return vnotm(vcmp_gt(b, a)); }";
      "static inline vec_t vcmp_le(vec_t a, vec_t b) { return vnotm(vcmp_gt(a, b)); }";
      "";
      "/* vsel via the byte blend: blendv keys on each byte's high bit, and";
      "   mask lanes are all-ones or all-zeros, so it is a lane select. */";
      "static inline vec_t vsel(vec_t m, vec_t a, vec_t b) {";
      "  return _mm256_blendv_epi8(b, a, m);";
      "}";
      "";
      "/* Truncating masked store: blend the new lanes over the bytes";
      "   already in memory, then store the whole register. */";
      "static inline void vstore_mask(void *p, vec_t v, vec_t m) {";
      "  __m256i *q = (__m256i *)((uintptr_t)p & ~(uintptr_t)31);";
      "  _mm256_store_si256(q, vsel(m, v, _mm256_load_si256(q)));";
      "}";
      "";
    ]

(** [unit prog] — full AVX2 translation unit (prelude + both kernels). *)
let unit (prog : Simd_vir.Prog.t) : string =
  let ty = Ast.elem_ty_of_program prog.Simd_vir.Prog.source in
  let v = Simd_machine.Config.vector_len prog.Simd_vir.Prog.machine in
  prelude ~v ~ty ^ "\n" ^ Portable.kernel prog

(** [harness ~layout ~params ~trip prog] — self-checking main over the
    AVX2 unit (compilable on x86-64 with AVX2; exercised by the native
    oracle when the build machine supports it). *)
let harness ~layout ~params ~trip (prog : Simd_vir.Prog.t) : string =
  Portable.harness_with ~unit_text:(unit prog) ~layout ~params ~trip prog
