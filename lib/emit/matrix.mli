(** The backend matrix: one placed compilation ({!Simd_codegen.Driver}
    outcome) joined against the whole backend registry ({!Backend}).

    For each backend, the placement is retargeted to the backend's native
    vector length ({!Simd_codegen.Retarget} — [Portable] keeps the source
    V), the build machine's capability is probed, and the retargeted
    compilation is priced under its V′ cost model. This is the table
    [bench --json] publishes, [bin/backends.exe] prints, and
    [docs/BACKENDS.md] renders. *)

module Driver = Simd_codegen.Driver
module Retarget = Simd_codegen.Retarget

type row = {
  backend : Backend.id;
  support : Backend.support;  (** what this machine can do with it *)
  vl : int;  (** the vector length the row targets *)
  retarget : (Retarget.t, Driver.reason) result;
      (** the placement re-instantiated at [vl] ([Error] when the program
          is illegal or the trip too small at that width) *)
}

val rows : ?cc:Cc.t -> ?check:bool -> Driver.outcome -> row list
(** One row per registry backend, in {!Backend.all} order. [?check]
    (default on, per {!Retarget.retarget}) verifies each retargeted
    compilation. *)

val unit_of_row : row -> string option
(** The backend's translation unit for the row's retargeted program
    ([None] when the retarget failed). *)

val row_to_json : row -> Simd_support.Json.t
val to_json : row list -> Simd_support.Json.t
(** Rows for [BENCH_backends.json]: backend, support, V, retarget
    statuses, verifier error count, weighted costs. *)
