(** Shared C-source fragments: scalar types/expressions, addresses, runtime
    offset computations, and the plain scalar rendition of the original
    loop (guard fallback + reference kernel in generated harnesses). *)

open Simd_loopir
open Simd_vir

val ctype : Ast.elem_ty -> string

val uctype : Ast.elem_ty -> string
(** Unsigned type wide enough to compute +, -, * without C UB: the machine
    wraps at the element width, C signed overflow does not. At least
    [unsigned int] so sub-[int] widths dodge re-promotion to signed. *)

val binop_is_infix : Ast.binop -> bool
val binop_c : Ast.binop -> string
val binop_wraps : Ast.binop -> bool

val cmp_c : Ast.cmp -> string
(** The C relational operator of a lane compare. *)

val scalar_expr : ty:Ast.elem_ty -> iv:string -> Ast.expr -> string
(** Expression at iteration variable [iv], wrapping at the element width. *)

val scalar_cond : ty:Ast.elem_ty -> iv:string -> Ast.cond -> string
(** A guard/select condition as a scalar C boolean expression. *)

val invariant_expr : ty:Ast.elem_ty -> Ast.expr -> string

val fresh_ident : program:Ast.program -> string -> string
(** Suffix with underscores until free of array/parameter collisions. *)

val scalar_loop :
  program:Ast.program -> ub:string -> iv:string -> indent:string -> string
(** The original loop (stores and reductions) as plain C. *)

val addr : iv:string -> Addr.t -> string
val rexpr : iv:string -> ub:string -> v:int -> Rexpr.t -> string
val cond : iv:string -> ub:string -> v:int -> Rexpr.cond -> string

val ub_name : Ast.program -> string
(** Collision-free trip-count parameter name. *)

val temp_prefix : Ast.program -> string
(** Underscore prefix making generated temporaries collision-free. *)

val kernel_params : Ast.program -> string
val kernel_args : Ast.program -> string
val minmax_macros : string
