(** Portable-C backend.

    Emits the simdized program as plain C11 with a generic vector type
    (a [V]-byte struct) and reference implementations of the machine's
    operations, including the address-truncating load/store semantics. The
    output compiles with any C compiler — the integration tests build it
    with gcc and diff the result against the scalar loop, closing the loop
    between the OCaml simulator's semantics and real execution. *)

open Simd_loopir
open Simd_vir

let prelude ~v ~(ty : Ast.elem_ty) : string =
  let d = Ast.elem_width ty in
  let lanes = v / d in
  let ct = C_syntax.ctype ty in
  String.concat "\n"
    [
      "#include <stdint.h>";
      "#include <string.h>";
      "";
      C_syntax.minmax_macros;
      Printf.sprintf "#define VLEN %d" v;
      Printf.sprintf "#define LANES %d" lanes;
      Printf.sprintf "typedef %s elem_t;" ct;
      (* wrap-at-width lane arithmetic: see C_syntax.uctype *)
      Printf.sprintf "typedef %s uelem_t;" (C_syntax.uctype ty);
      "typedef struct { uint8_t b[VLEN]; } vec_t;";
      "";
      "/* Truncating vector load/store: the low address bits are ignored,";
      "   as on AltiVec (lvx/stvx). */";
      "static inline vec_t vload(const void *p) {";
      "  vec_t r;";
      "  memcpy(r.b, (const uint8_t *)((uintptr_t)p & ~(uintptr_t)(VLEN - 1)), VLEN);";
      "  return r;";
      "}";
      "static inline void vstore(void *p, vec_t v) {";
      "  memcpy((uint8_t *)((uintptr_t)p & ~(uintptr_t)(VLEN - 1)), v.b, VLEN);";
      "}";
      "";
      "/* vshiftpair: bytes [sh, sh+VLEN) of the concatenation a ++ b;";
      "   0 <= sh <= VLEN (sh == VLEN selects b entirely). */";
      "static inline vec_t vshiftpair(vec_t a, vec_t b, long sh) {";
      "  vec_t r;";
      "  for (int k = 0; k < VLEN; k++) {";
      "    long s = k + sh;";
      "    r.b[k] = s < VLEN ? a.b[s] : b.b[s - VLEN];";
      "  }";
      "  return r;";
      "}";
      "";
      "/* vsplice: first p bytes of a, remaining bytes of b. */";
      "static inline vec_t vsplice(vec_t a, vec_t b, long p) {";
      "  vec_t r;";
      "  for (int k = 0; k < VLEN; k++) r.b[k] = k < p ? a.b[k] : b.b[k];";
      "  return r;";
      "}";
      "";
      "/* vpack_even: even-indexed elements of the 2V concatenation";
      "   (strided-gather extension). */";
      "static inline vec_t vpack_even(vec_t a, vec_t b) {";
      "  vec_t r;";
      "  for (int k = 0; k < LANES; k++) {";
      "    int src = 2 * k;";
      "    const uint8_t *from = src < LANES ? a.b : b.b;";
      "    int lane = src < LANES ? src : src - LANES;";
      "    memcpy(r.b + k * sizeof(elem_t), from + lane * sizeof(elem_t), sizeof(elem_t));";
      "  }";
      "  return r;";
      "}";
      "";
      "static inline vec_t vsplat(elem_t x) {";
      "  vec_t r;";
      "  for (int k = 0; k < LANES; k++) memcpy(r.b + k * sizeof(elem_t), &x, sizeof(elem_t));";
      "  return r;";
      "}";
      "";
      "#define DEFINE_LANEOP(name, expr) \\";
      "  static inline vec_t name(vec_t a, vec_t b) { \\";
      "    vec_t r; \\";
      "    for (int k = 0; k < LANES; k++) { \\";
      "      elem_t x, y, z; \\";
      "      memcpy(&x, a.b + k * sizeof(elem_t), sizeof(elem_t)); \\";
      "      memcpy(&y, b.b + k * sizeof(elem_t), sizeof(elem_t)); \\";
      "      z = (elem_t)(expr); \\";
      "      memcpy(r.b + k * sizeof(elem_t), &z, sizeof(elem_t)); \\";
      "    } \\";
      "    return r; \\";
      "  }";
      "/* +, -, * computed unsigned: the machine wraps at the element width,";
      "   and C signed overflow is undefined behaviour. */";
      "DEFINE_LANEOP(vadd, (uelem_t)x + (uelem_t)y)";
      "DEFINE_LANEOP(vsub, (uelem_t)x - (uelem_t)y)";
      "DEFINE_LANEOP(vmul, (uelem_t)x * (uelem_t)y)";
      "DEFINE_LANEOP(vmin, MINV(x, y))";
      "DEFINE_LANEOP(vmax, MAXV(x, y))";
      "DEFINE_LANEOP(vand, x & y)";
      "DEFINE_LANEOP(vor, x | y)";
      "DEFINE_LANEOP(vxor, x ^ y)";
      "";
      "/* Lane-wise compare: all-ones lanes where the relation holds, else";
      "   all-zeros (the mask representation every vsel consumes). */";
      "#define DEFINE_LANECMP(name, rel) \\";
      "  static inline vec_t name(vec_t a, vec_t b) { \\";
      "    vec_t r; \\";
      "    for (int k = 0; k < LANES; k++) { \\";
      "      elem_t x, y; \\";
      "      memcpy(&x, a.b + k * sizeof(elem_t), sizeof(elem_t)); \\";
      "      memcpy(&y, b.b + k * sizeof(elem_t), sizeof(elem_t)); \\";
      "      memset(r.b + k * sizeof(elem_t), (x rel y) ? 0xff : 0x00, sizeof(elem_t)); \\";
      "    } \\";
      "    return r; \\";
      "  }";
      "DEFINE_LANECMP(vcmp_lt, <)";
      "DEFINE_LANECMP(vcmp_le, <=)";
      "DEFINE_LANECMP(vcmp_gt, >)";
      "DEFINE_LANECMP(vcmp_ge, >=)";
      "DEFINE_LANECMP(vcmp_eq, ==)";
      "DEFINE_LANECMP(vcmp_ne, !=)";
      "";
      "/* vsel: bitwise (m & a) | (~m & b) - mask lanes are all-ones or";
      "   all-zeros, so this is a lane select. */";
      "static inline vec_t vsel(vec_t m, vec_t a, vec_t b) {";
      "  vec_t r;";
      "  for (int k = 0; k < VLEN; k++)";
      "    r.b[k] = (uint8_t)((m.b[k] & a.b[k]) | (~m.b[k] & b.b[k]));";
      "  return r;";
      "}";
      "";
      "/* Truncating masked store: write only the bytes whose mask byte is";
      "   set; unset lanes keep the bytes already in memory. */";
      "static inline void vstore_mask(void *p, vec_t v, vec_t m) {";
      "  uint8_t *q = (uint8_t *)((uintptr_t)p & ~(uintptr_t)(VLEN - 1));";
      "  for (int k = 0; k < VLEN; k++)";
      "    if (m.b[k]) q[k] = v.b[k];";
      "}";
      "";
    ]

let vop_name (op : Ast.binop) = "v" ^ Simd_machine.Lane.binop_name op

let rec vexpr ~iv ~ub ~v ~ty (e : Expr.vexpr) : string =
  match e with
  | Expr.Load a -> Printf.sprintf "vload(%s)" (C_syntax.addr ~iv a)
  | Expr.Op (op, a, b) ->
    Printf.sprintf "%s(%s, %s)" (vop_name op) (vexpr ~iv ~ub ~v ~ty a)
      (vexpr ~iv ~ub ~v ~ty b)
  | Expr.Splat s -> Printf.sprintf "vsplat(%s)" (C_syntax.invariant_expr ~ty s)
  | Expr.Shiftpair (a, b, sh) ->
    Printf.sprintf "vshiftpair(%s, %s, %s)" (vexpr ~iv ~ub ~v ~ty a)
      (vexpr ~iv ~ub ~v ~ty b)
      (C_syntax.rexpr ~iv ~ub ~v sh)
  | Expr.Splice (a, b, p) ->
    Printf.sprintf "vsplice(%s, %s, %s)" (vexpr ~iv ~ub ~v ~ty a)
      (vexpr ~iv ~ub ~v ~ty b)
      (C_syntax.rexpr ~iv ~ub ~v p)
  | Expr.Pack (a, b) ->
    Printf.sprintf "vpack_even(%s, %s)" (vexpr ~iv ~ub ~v ~ty a)
      (vexpr ~iv ~ub ~v ~ty b)
  | Expr.Cmp (c, a, b) ->
    Printf.sprintf "vcmp_%s(%s, %s)"
      (Simd_machine.Lane.cmp_name c)
      (vexpr ~iv ~ub ~v ~ty a) (vexpr ~iv ~ub ~v ~ty b)
  | Expr.Sel (m, a, b) ->
    Printf.sprintf "vsel(%s, %s, %s)" (vexpr ~iv ~ub ~v ~ty m)
      (vexpr ~iv ~ub ~v ~ty a) (vexpr ~iv ~ub ~v ~ty b)
  | Expr.Temp x -> x

let rec stmt ~buf ~indent ~iv ~ub ~v ~ty (s : Expr.stmt) : unit =
  match s with
  | Expr.Store (a, e) ->
    Buffer.add_string buf
      (Printf.sprintf "%svstore(%s, %s);\n" indent (C_syntax.addr ~iv a)
         (vexpr ~iv ~ub ~v ~ty e))
  | Expr.Storem (a, e, m) ->
    Buffer.add_string buf
      (Printf.sprintf "%svstore_mask(%s, %s, %s);\n" indent
         (C_syntax.addr ~iv a)
         (vexpr ~iv ~ub ~v ~ty e)
         (vexpr ~iv ~ub ~v ~ty m))
  | Expr.Assign (x, e) ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" indent x (vexpr ~iv ~ub ~v ~ty e))
  | Expr.If (c, th, el) ->
    Buffer.add_string buf
      (Printf.sprintf "%sif (%s) {\n" indent (C_syntax.cond ~iv ~ub ~v c));
    List.iter (stmt ~buf ~indent:(indent ^ "  ") ~iv ~ub ~v ~ty) th;
    if el <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%s} else {\n" indent);
      List.iter (stmt ~buf ~indent:(indent ^ "  ") ~iv ~ub ~v ~ty) el
    end;
    Buffer.add_string buf (Printf.sprintf "%s}\n" indent)

let upper_bound ~ub (b : Prog.bound) =
  match b with
  | Prog.B_const n -> string_of_int n
  | Prog.B_trip_minus k -> Printf.sprintf "(%s - %d)" ub k

(** [kernel prog] — the simdized kernel as a C function [kernel_simd], with
    the scalar fallback for trips below the guard, plus the scalar
    reference [kernel_scalar]. Does not include the prelude. *)
let kernel (prog : Prog.t) : string =
  let program = prog.Prog.source in
  let ty = Ast.elem_ty_of_program program in
  let v = Simd_machine.Config.vector_len prog.Prog.machine in
  let ub = C_syntax.ub_name program in
  let iv = C_syntax.fresh_ident ~program "i" in
  let siv = C_syntax.fresh_ident ~program "s" in
  (* Generated temporaries get a collision-free underscore prefix. *)
  let tp = C_syntax.temp_prefix program in
  let rec rename_expr (e : Expr.vexpr) =
    match e with
    | Expr.Temp x -> Expr.Temp (tp ^ x)
    | Expr.Load _ | Expr.Splat _ -> e
    | Expr.Op (op, a, b) -> Expr.Op (op, rename_expr a, rename_expr b)
    | Expr.Shiftpair (a, b, s) -> Expr.Shiftpair (rename_expr a, rename_expr b, s)
    | Expr.Splice (a, b, p) -> Expr.Splice (rename_expr a, rename_expr b, p)
    | Expr.Pack (a, b) -> Expr.Pack (rename_expr a, rename_expr b)
    | Expr.Cmp (c, a, b) -> Expr.Cmp (c, rename_expr a, rename_expr b)
    | Expr.Sel (m, a, b) ->
      Expr.Sel (rename_expr m, rename_expr a, rename_expr b)
  in
  let rec rename_stmt (s : Expr.stmt) =
    match s with
    | Expr.Store (a, e) -> Expr.Store (a, rename_expr e)
    | Expr.Storem (a, e, m) -> Expr.Storem (a, rename_expr e, rename_expr m)
    | Expr.Assign (x, e) -> Expr.Assign (tp ^ x, rename_expr e)
    | Expr.If (c, t, e) ->
      Expr.If (c, List.map rename_stmt t, List.map rename_stmt e)
  in
  let prog =
    {
      prog with
      Prog.prologue = List.map rename_stmt prog.Prog.prologue;
      body = List.map rename_stmt prog.Prog.body;
      epilogues = List.map (List.map rename_stmt) prog.Prog.epilogues;
    }
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "void kernel_scalar(%s) {\n" (C_syntax.kernel_params program));
  (List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  (void)%s;\n" p)))
    (List.map (fun (d : Ast.array_decl) -> d.Ast.arr_name) program.Ast.arrays
    @ program.Ast.params);
  Buffer.add_string buf (C_syntax.scalar_loop ~program ~ub ~iv:siv ~indent:"  ");
  Buffer.add_string buf "}\n\n";
  Buffer.add_string buf
    (Printf.sprintf "void kernel_simd(%s) {\n" (C_syntax.kernel_params program));
  Buffer.add_string buf
    (Printf.sprintf "  if (%s <= %d) { /* trip-count guard: scalar fallback */\n"
       ub prog.Prog.min_trip);
  Buffer.add_string buf (C_syntax.scalar_loop ~program ~ub ~iv:siv ~indent:"    ");
  Buffer.add_string buf "    return;\n  }\n";
  (* Vector temporaries. *)
  let temps =
    Simd_support.Util.dedup
      (Expr.temps_written prog.Prog.prologue
      @ Expr.temps_written prog.Prog.body
      @ List.concat_map Expr.temps_written prog.Prog.epilogues)
  in
  if temps <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  vec_t %s;\n" (String.concat ", " temps));
  Buffer.add_string buf (Printf.sprintf "  long %s = 0;\n" iv);
  Buffer.add_string buf "  /* prologue: peeled first simdized iteration */\n";
  List.iter (stmt ~buf ~indent:"  " ~iv ~ub ~v ~ty) prog.Prog.prologue;
  Buffer.add_string buf "  /* steady state */\n";
  (if prog.Prog.unroll = 1 then
     Buffer.add_string buf
       (Printf.sprintf "  for (%s = %d; %s < %s; %s += %d) {\n" iv prog.Prog.lower
          iv
          (upper_bound ~ub prog.Prog.upper)
          iv prog.Prog.block)
   else
     Buffer.add_string buf
       (Printf.sprintf "  for (%s = %d; %s + %d < %s; %s += %d) { /* unrolled x%d */\n"
          iv prog.Prog.lower iv
          ((prog.Prog.unroll - 1) * prog.Prog.block)
          (upper_bound ~ub prog.Prog.upper)
          iv (Prog.step prog) prog.Prog.unroll));
  List.iter (stmt ~buf ~indent:"    " ~iv ~ub ~v ~ty) prog.Prog.body;
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  /* epilogue (guarded residual stores) */\n";
  List.iteri
    (fun k stmts ->
      (* keep the counter in sync even across empty virtual iterations *)
      if k > 0 then
        Buffer.add_string buf (Printf.sprintf "  %s += %d;\n" iv prog.Prog.block);
      List.iter (stmt ~buf ~indent:"  " ~iv ~ub ~v ~ty) stmts)
    prog.Prog.epilogues;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** [unit prog] — prelude + kernels: a complete translation unit exposing
    [kernel_scalar] and [kernel_simd]. *)
let unit (prog : Prog.t) : string =
  let ty = Ast.elem_ty_of_program prog.Prog.source in
  let v = Simd_machine.Config.vector_len prog.Prog.machine in
  prelude ~v ~ty ^ "\n" ^ kernel prog

(** [harness_with ~unit_text ~layout ~params ~trip prog] — the
    self-checking [main] scaffolding over an arbitrary backend's
    translation unit: two identical noise-filled arenas, scalar kernel on
    one, simdized kernel on the other, byte-compare. Exit code 0 and "OK"
    on agreement. Every backend emits the same [kernel_scalar]/[kernel_simd]
    signatures ({!kernel}), so the scaffolding is backend-independent; the
    array placement mirrors the simulator's layout exactly (same base
    offsets relative to a [V]-aligned arena), so the run exercises the very
    alignments the loop was compiled for. *)
let harness_with ~(unit_text : string) ~(layout : Layout.t)
    ~(params : (string * int64) list) ~(trip : int) (prog : Prog.t) : string =
  let program = prog.Prog.source in
  let ty = Ast.elem_ty_of_program program in
  let ct = C_syntax.ctype ty in
  let size = layout.Layout.arena_size in
  let v = Simd_machine.Config.vector_len prog.Prog.machine in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf unit_text;
  Buffer.add_string buf "\n#include <stdio.h>\n\n";
  Buffer.add_string buf
    "static uint64_t sm64_state;\n\
     static uint64_t sm64_next(void) {\n\
    \  uint64_t z = (sm64_state += 0x9E3779B97F4A7C15ULL);\n\
    \  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;\n\
    \  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;\n\
    \  return z ^ (z >> 31);\n\
     }\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "static uint8_t arena_a[%d] __attribute__((aligned(%d)));\n\
        static uint8_t arena_b[%d] __attribute__((aligned(%d)));\n\n"
       size v size v);
  Buffer.add_string buf "int main(void) {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  sm64_state = 0x5EEDULL;\n\
       \  for (int k = 0; k < %d; k++) arena_a[k] = (uint8_t)(sm64_next() & 0xff);\n\
       \  memcpy(arena_b, arena_a, %d);\n"
       size size);
  Buffer.add_string buf (Printf.sprintf "  long ub = %d;\n" trip);
  List.iter
    (fun p ->
      let value = try List.assoc p params with Not_found -> 1L in
      Buffer.add_string buf (Printf.sprintf "  %s %s = (%s)%LdLL;\n" ct p ct value))
    program.Ast.params;
  let ptrs arena =
    List.iter
      (fun (d : Ast.array_decl) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s *%s = (%s *)(%s + %d);\n" ct d.Ast.arr_name ct arena
             (Layout.base layout d.Ast.arr_name)))
      program.Ast.arrays
  in
  Buffer.add_string buf "  {\n";
  ptrs "arena_a";
  Buffer.add_string buf
    (Printf.sprintf "  kernel_scalar(%s);\n" (C_syntax.kernel_args program));
  Buffer.add_string buf "  }\n  {\n";
  ptrs "arena_b";
  Buffer.add_string buf
    (Printf.sprintf "  kernel_simd(%s);\n" (C_syntax.kernel_args program));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  if (memcmp(arena_a, arena_b, %d) != 0) {\n\
       \    for (int k = 0; k < %d; k++)\n\
       \      if (arena_a[k] != arena_b[k]) {\n\
       \        printf(\"MISMATCH at byte %%d: scalar %%02x simd %%02x\\n\", k,\n\
       \               arena_a[k], arena_b[k]);\n\
       \        return 1;\n\
       \      }\n\
       \  }\n\
       \  puts(\"OK\");\n\
       \  return 0;\n}\n"
       size size)
  ;
  Buffer.contents buf

(** [harness ~layout ~params ~trip prog] — {!harness_with} over the
    portable unit. *)
let harness ~layout ~params ~trip (prog : Prog.t) : string =
  harness_with ~unit_text:(unit prog) ~layout ~params ~trip prog
