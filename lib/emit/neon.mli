(** NEON (AArch64) backend, V = 16.

    Explicit address truncation (NEON, like x86, does not truncate in
    hardware) before [vld1q]/[vst1q]; runtime-amount [vshiftpair] via a
    32-byte spill buffer (NEON's [vextq] extract takes only immediate
    positions); [vsplice] via [vbslq] bit-select under an [iota < p] byte
    mask. Vectors are typed per element width with [vreinterpretq] casts
    for the byte-granular operations. Requires [<arm_neon.h>] (AArch64
    toolchains; no extra flag). *)

val vec_ctype : Simd_loopir.Ast.elem_ty -> string
(** The NEON vector type for an element width, e.g. [int32x4_t] for
    [I32]. *)

val prelude : v:int -> ty:Simd_loopir.Ast.elem_ty -> string
(** The backend's operation definitions ([vload]/[vstore]/[vshiftpair]/
    [vsplice]/[vpack_even]/[vsplat] and the lane ops). Raises
    [Invalid_argument] unless [v = 16]. *)

val unit : Simd_vir.Prog.t -> string
(** Prelude + kernels: a complete translation unit exposing
    [kernel_scalar] and [kernel_simd]. *)

val harness :
  layout:Simd_loopir.Layout.t ->
  params:(string * int64) list ->
  trip:int ->
  Simd_vir.Prog.t ->
  string
(** {!Portable.harness_with} over the NEON unit (compilable on AArch64;
    run by the native oracle on ARM hosts). *)
