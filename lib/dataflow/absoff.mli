(** The abstract stream-offset lattice of the static verifier.

    An abstract value describes what the checker knows about a byte offset
    modulo the vector width [V]: nothing constrains it ([Top]), it is an
    exact compile-time residue ([Byte]), it is a runtime base alignment
    plus a compile-time correction ([Sym] — the symbolic case the paper's
    runtime-alignment codegen produces, §4.4), or it is lane-uniform and
    compatible with every offset ([Bot] — splats and rotated reduction
    accumulators, whose content is identical at any shift).

    All arithmetic is modulo [V]; every constructor is kept normalized to
    a canonical residue in [0, V). *)

type t =
  | Bot  (** lane-uniform value: matches any offset *)
  | Byte of int  (** exactly [k mod V] bytes *)
  | Sym of { arr : string; sign : int; k : int }
      (** [(sign * align(arr) + k) mod V] where [align(arr)] is the
          runtime base alignment of array [arr]; [sign] is [+1]/[-1] *)
  | Top  (** unknown *)

(** Outcome of comparing two abstract offsets for equality mod [V]. *)
type verdict = Proved | Refuted | Unknown

val normalize : v:int -> t -> t
(** Canonicalize residues into [0, V). *)

val equal : t -> t -> bool

val cmp : v:int -> t -> t -> verdict
(** Are the two offsets provably equal / provably different mod [V]?
    [Bot] is equal to everything; [Sym]s over different arrays (or with
    different signs) are incomparable. *)

val merge : v:int -> t -> t -> t
(** The offset of a node whose operands carry the two values: keeps the
    more precise side when they agree, [Top] when they may differ. *)

val add : v:int -> t -> t -> t
val neg : v:int -> t -> t
val sub : v:int -> t -> t -> t
val mul_const : v:int -> t -> int -> t

val mod_const : v:int -> t -> int -> t
(** [mod_const ~v x m] — abstract [x mod m]. Exact when [m = v] (the
    common shift-amount normalization) or when [m] divides [v] and [x] is
    a known byte residue. *)

val of_align : v:int -> arr:string -> Simd_loopir.Align.t -> t
(** Lift an analysis-level alignment: [Known k] to [Byte k], [Runtime] to
    [Sym] anchored at the array's base. *)

val of_addr :
  v:int ->
  elem:int ->
  lookup:(string -> int option) ->
  Simd_vir.Addr.t ->
  t
(** The alignment of a VIR address at any block-aligned iteration:
    [base + offset*elem mod v] when [lookup] knows the base, else
    symbolic. Counter terms vanish because every stream advances whole
    vectors per iteration. *)

val eval_rexpr :
  v:int -> elem:int -> lookup:(string -> int option) -> Simd_vir.Rexpr.t -> t
(** Abstract evaluation of a runtime scalar expression (shift amounts,
    splice points). [Trip]/[Counter] are [Top]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
