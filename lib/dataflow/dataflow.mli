(** A generic iterative dataflow engine over the emitted vector IR.

    The VIR of a compilation is three regions — prologue, steady body,
    epilogue segments — of mostly straight-line statements, with [If]
    guards only inside epilogues. This module provides the shared
    region walks (forward, backward, bounded fixpoints) and the four
    shipped analyses: liveness ({!Live}), reaching definitions and the
    carried-temp discipline ({!Reach} / {!Defs}), available shift
    expressions ({!Avail}), and stream-offset constant propagation on
    the {!Absoff} lattice ({!Offsets}). {!Deadshift} is the graph-level
    wasted-shift scan, and {!Cleanup} is the dataflow-backed rewriter
    behind the driver's [vir_cleanup] pass and the linter's evidence.

    Statement numbering convention (shared with [Simd.Check]):
    statements are numbered by top-level position in their region;
    statements inside an [If] inherit the guard's index. *)

open Simd_vir
module SM = Simd_support.Util.String_map
module SS = Simd_support.Util.String_set

(** {1 The engine} *)

val forward :
  leaf:(idx:int -> 'a -> Expr.stmt -> 'a) ->
  guard:(idx:int -> 'a -> Expr.stmt -> unit) ->
  join:('a -> 'a -> 'a) ->
  idx0:int ->
  'a ->
  Expr.stmt list ->
  'a
(** Forward walk. [leaf] transfers over non-[If] statements; [guard]
    observes each [If] (both branches then run from the pre-guard state
    with the guard's index) and [join] merges the branch exits. *)

val backward :
  leaf:('a -> Expr.stmt -> 'a) ->
  join:('a -> 'a -> 'a) ->
  'a ->
  Expr.stmt list ->
  'a
(** Backward walk; an [If]'s in-fact is the [join] of its branches'. *)

val fixpoint :
  ?rounds:int ->
  equal:('a -> 'a -> bool) ->
  widen:('a -> 'a -> 'a) ->
  f:('a -> 'a) ->
  'a ->
  'a
(** Bounded Kleene iteration: apply [f] until [equal] (at most [rounds]
    times, default 4), then force convergence with one [widen] step. *)

val env_equal : Absoff.t SM.t -> Absoff.t SM.t -> bool

val join_env : v:int -> Absoff.t SM.t -> Absoff.t SM.t -> Absoff.t SM.t
(** Optimistic branch join: agreeing bindings merge, one-sided bindings
    survive as-is. *)

val widen_env : Absoff.t SM.t -> Absoff.t SM.t -> Absoff.t SM.t
(** Loop-entry widening: any disagreement or one-sided binding goes to
    [Top]. *)

(** {1 Liveness} *)

module Live : sig
  val add_reads : SS.t -> Expr.vexpr -> SS.t
  (** Add every temp read by the expression. *)

  val transfer : SS.t -> Expr.stmt -> SS.t
  (** One-statement backward liveness transfer (non-[If]). *)

  val live_in : SS.t -> Expr.stmt list -> SS.t
  (** Temps live on entry given the live-out set. *)

  val loop_out : body:Expr.stmt list -> SS.t -> SS.t
  (** Live-out of a loop body whose exit feeds the given tail set: the
      least set closed under the back edge. *)

  val reads_of : Expr.stmt list -> SS.t
  (** Every temp read anywhere in the statements. *)
end

(** {1 Reaching definitions: the carried-temp discipline} *)

module Reach : sig
  val stmt_reads : string list -> Expr.stmt -> string list
  (** Temps read by one statement, prepended in reverse evaluation
      order (accumulator convention of the checker). *)

  val stmt_defs : Expr.stmt -> string list

  type carried = {
    ca_name : string;
    ca_first_read : int;  (** index of the first (pre-definition) read *)
    ca_first_def : int option;  (** first body definition, if any *)
    ca_def_count : int;  (** number of body definitions *)
  }
  (** A loop-carried temporary: read before any body definition. *)

  val carried_temps : Expr.stmt list -> carried list
  (** The loop-carried temporaries of a body, in first-read order. *)
end

(** {1 Definition summaries} *)

module Defs : sig
  type t = {
    last : Expr.vexpr SM.t;
    first_idx : int SM.t;
    count : int SM.t;
  }

  val scan : Expr.stmt list -> t
  (** Top-level definition summary of a region. [If]-defined names are
      poisoned (never single-def). *)

  val single_def : t -> string -> (int * Expr.vexpr) option
  (** The unique top-level definition of a temp, if it has exactly one. *)

  val resolve : ?n:int -> t -> Expr.vexpr -> Expr.vexpr
  (** Chase a temp through single definitions, at most [n] (default 8)
      hops. Structural only — see {!Avail.safe} for value validity. *)
end

(** {1 Available expressions} *)

module Avail : sig
  type t = { defs : Defs.t; stored : SS.t array; all_stored : SS.t }

  val analyze : Expr.stmt list -> t

  val safe : t -> src:int -> use:int -> Expr.vexpr -> bool
  (** Does [e], taken from statement [src], still denote the same value
      at statement [use] ([src < use], one execution of the region)?
      True when no temp read by [e] is redefined and no array loaded by
      [e] is stored between the two points. *)

  val as_shift :
    t -> use:int -> Expr.vexpr -> (int * Expr.vexpr * Expr.vexpr * int) option
  (** View a shiftpair half as an available compile-time shift:
      [(source index, first half, second half, amount)] — either an
      inline [Shiftpair] or a temp single-defined as one before [use]. *)
end

(** {1 Stream-offset constant propagation} *)

module Offsets : sig
  type ctx = {
    v : int;
    elem : int;
    lookup : string -> int option;
        (** compile-time base alignment of an array, if known *)
    opaque_loads : bool;
        (** MemNorm ran: known-aligned load offsets are gone *)
  }

  val load_off : ctx -> Addr.t -> Absoff.t
  val eval_rexpr : ctx -> Rexpr.t -> Absoff.t

  val eval : ctx -> Absoff.t SM.t -> Expr.vexpr -> Absoff.t
  (** The abstract stream offset of an expression — the diagnostic-free
      mirror of the checker's evaluation. *)

  val transfer : ctx -> idx:int -> Absoff.t SM.t -> Expr.stmt -> Absoff.t SM.t

  val exec : ctx -> Absoff.t SM.t -> Expr.stmt list -> Absoff.t SM.t
  (** Propagate an offset environment through a region. *)

  val entry : ctx -> Absoff.t SM.t -> Expr.stmt list -> Absoff.t SM.t
  (** The loop-entry environment: widened fixpoint of the body transfer
      from the prologue exit. *)
end

(** {1 Dead / cancelling stream shifts (graph level)} *)

module Deadshift : sig
  type finding =
    | No_op of { from_ : Simd_dreorg.Offset.t; to_ : Simd_dreorg.Offset.t }
    | Cancelling of {
        f1 : Simd_dreorg.Offset.t;
        t1 : Simd_dreorg.Offset.t;
        to_ : Simd_dreorg.Offset.t;
      }

  val find :
    block:int ->
    shared:(Simd_dreorg.Graph.chain -> bool) ->
    Simd_dreorg.Graph.node ->
    finding list
  (** Pre-order scan for no-op shifts and cancelling shift pairs.
      [shared] answers whether a chain has another consumer body-wide. *)
end

(** {1 The cleanup rewriter} *)

module Cleanup : sig
  type action =
    | Combined of { where : string; detail : string }
    | Propagated of { where : string; temp : string }
    | Hoisted of { where : string; temp : string }
    | Removed of { where : string; temp : string; clobber : bool }
        (** [clobber]: the name is read elsewhere but this value never
            reaches a read (write-before-read) *)

  val action_where : action -> string

  val run :
    v:int ->
    block:int ->
    prologue:Expr.stmt list ->
    body:Expr.stmt list ->
    epilogues:Expr.stmt list list ->
    (Expr.stmt list * Expr.stmt list * Expr.stmt list list) * action list
  (** Copy propagation, shift combining, invariant hoisting and
      liveness DCE, iterated to a fixpoint (at most 8 rounds). Every
      rewrite is value-exact; callers re-validate with [Simd.Check] at
      the pass boundary. Epilogue segment count is preserved. *)

  val dry_run :
    v:int ->
    block:int ->
    prologue:Expr.stmt list ->
    body:Expr.stmt list ->
    epilogues:Expr.stmt list list ->
    action list
  (** The actions {!run} would take, without rewriting anything. *)
end
