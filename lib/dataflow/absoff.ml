(* Abstract stream offsets modulo V. See the interface for the lattice. *)

module Util = Simd_support.Util
module Align = Simd_loopir.Align
module Addr = Simd_vir.Addr
module Rexpr = Simd_vir.Rexpr

type t =
  | Bot
  | Byte of int
  | Sym of { arr : string; sign : int; k : int }
  | Top

type verdict = Proved | Refuted | Unknown

let normalize ~v = function
  | Bot -> Bot
  | Byte k -> Byte (Util.pos_mod k v)
  | Sym { arr; sign; k } ->
    Sym { arr; sign = (if sign >= 0 then 1 else -1); k = Util.pos_mod k v }
  | Top -> Top

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Byte a, Byte b -> a = b
  | Sym a, Sym b -> a.arr = b.arr && a.sign = b.sign && a.k = b.k
  | _ -> false

let cmp ~v a b =
  match (normalize ~v a, normalize ~v b) with
  | Bot, _ | _, Bot -> Proved
  | Top, _ | _, Top -> Unknown
  | Byte a, Byte b -> if a = b then Proved else Refuted
  | Sym a, Sym b when a.arr = b.arr && a.sign = b.sign ->
    if a.k = b.k then Proved else Refuted
  | Sym _, Sym _ | Sym _, Byte _ | Byte _, Sym _ -> Unknown

let merge ~v a b =
  match cmp ~v a b with
  | Proved -> (
    (* keep the more informative side *)
    match (a, b) with
    | Bot, x | x, Bot -> x
    | x, _ -> normalize ~v x)
  | Refuted | Unknown -> Top

let add ~v a b =
  normalize ~v
    (match (normalize ~v a, normalize ~v b) with
    | Bot, x | x, Bot -> x (* Bot is absorbed: lane-uniform + offset o = o *)
    | Top, _ | _, Top -> Top
    | Byte a, Byte b -> Byte (a + b)
    | Byte c, Sym s | Sym s, Byte c -> Sym { s with k = s.k + c }
    | Sym a, Sym b ->
      if a.arr = b.arr && a.sign <> b.sign then Byte (a.k + b.k) else Top)

let neg ~v x =
  normalize ~v
    (match normalize ~v x with
    | Bot -> Bot
    | Top -> Top
    | Byte k -> Byte (-k)
    | Sym { arr; sign; k } -> Sym { arr; sign = -sign; k = -k })

let sub ~v a b = add ~v a (neg ~v b)

let mul_const ~v x c =
  normalize ~v
    (match normalize ~v x with
    | Bot -> Bot
    | Byte k -> Byte (k * c)
    | Sym _ when Util.pos_mod c v = 0 -> Byte 0
    | Sym _ as s when c = 1 -> s
    | Sym _ -> Top
    | Top -> Top)

let mod_const ~v x m =
  if m = v then normalize ~v x
  else if m > 0 && v mod m = 0 then
    match normalize ~v x with
    | Byte k -> Byte (k mod m)
    | Bot -> Bot
    | Sym _ | Top -> Top
  else Top

let of_align ~v ~arr = function
  | Align.Known k -> normalize ~v (Byte k)
  | Align.Runtime -> Sym { arr; sign = 1; k = 0 }

let of_addr ~v ~elem ~lookup (a : Addr.t) =
  (* At every point the checker evaluates an address, the loop counter is a
     multiple of the block B, so [scale * i * elem] is a multiple of V
     (scale >= 1 streams advance whole vectors; scale = 0 is counter-free).
     The residue is therefore [base + offset*elem mod V]. *)
  match lookup a.Addr.array with
  | Some base -> normalize ~v (Byte (base + (a.Addr.offset * elem)))
  | None ->
    normalize ~v
      (Sym { arr = a.Addr.array; sign = 1; k = a.Addr.offset * elem })

let rec eval_rexpr ~v ~elem ~lookup (r : Rexpr.t) =
  let go = eval_rexpr ~v ~elem ~lookup in
  match r with
  | Rexpr.Const k -> normalize ~v (Byte k)
  | Rexpr.Offset_of a -> of_addr ~v ~elem ~lookup a
  | Rexpr.Trip | Rexpr.Counter -> Top
  | Rexpr.Add (a, b) -> add ~v (go a) (go b)
  | Rexpr.Sub (a, b) -> sub ~v (go a) (go b)
  | Rexpr.Mul_const (a, c) -> mul_const ~v (go a) c
  | Rexpr.Mod_const (a, m) -> mod_const ~v (go a) m

let pp fmt = function
  | Bot -> Format.pp_print_string fmt "any"
  | Byte k -> Format.fprintf fmt "%d" k
  | Sym { arr; sign; k } ->
    Format.fprintf fmt "%salign(%s)%s" (if sign < 0 then "-" else "") arr
      (if k = 0 then "" else Printf.sprintf "+%d" k)
  | Top -> Format.pp_print_string fmt "?"

let to_string x = Format.asprintf "%a" pp x
