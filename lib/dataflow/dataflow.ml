(* A generic iterative dataflow engine over the emitted vector IR.

   The VIR a compilation produces is three regions — prologue, steady
   body, epilogue segments — of mostly straight-line statements, with
   [If] guards only inside epilogues. Every static fact the verifier and
   the linter need (liveness, carried-temp discipline, reaching
   definitions, available shift expressions, abstract stream offsets) is
   a walk over that shape; this module provides the walks once so
   [Simd.Check], [Simd.Lint] and the [vir_cleanup] pass stop hand-rolling
   them.

   Conventions shared with the checker: statements are numbered by their
   top-level position in the region; statements inside an [If] inherit
   the guard's index (they are alternatives for one slot, and the
   checker's diagnostics already use that numbering). *)

open Simd_vir
module Util = Simd_support.Util
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module SM = Util.String_map
module SS = Util.String_set

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

(** Forward walk: [leaf ~idx st s] transfers over a non-[If] statement,
    [guard ~idx st s] observes an [If] before its branches run (both
    branches start from the state before the guard, with the guard's
    index), and [join] merges the branch exits. *)
let rec forward ~leaf ~guard ~join ~idx0 st stmts =
  let st, _ =
    List.fold_left
      (fun (st, i) s ->
        let st' =
          match s with
          | Expr.If (_, t, f) ->
            guard ~idx:i st s;
            let st_t = forward ~leaf ~guard ~join ~idx0:i st t in
            let st_f = forward ~leaf ~guard ~join ~idx0:i st f in
            join st_t st_f
          | Expr.Store _ | Expr.Storem _ | Expr.Assign _ -> leaf ~idx:i st s
        in
        (st', i + 1))
      (st, idx0) stmts
  in
  st

(** Backward walk: [leaf out s] transfers over a non-[If] statement;
    an [If]'s in-fact is the [join] of both branches' in-facts (each
    computed against the fact after the [If]). *)
let rec backward ~leaf ~join out stmts =
  List.fold_right
    (fun s out ->
      match s with
      | Expr.If (_, t, f) ->
        join (backward ~leaf ~join out t) (backward ~leaf ~join out f)
      | Expr.Store _ | Expr.Storem _ | Expr.Assign _ -> leaf out s)
    stmts out

(** Bounded Kleene iteration: apply [f] until [equal], at most [rounds]
    times, then force convergence with one [widen] step. Termination
    therefore never depends on the client lattice having finite height —
    only on [widen x (f x)] being a post-fixpoint. *)
let fixpoint ?(rounds = 4) ~equal ~widen ~f x =
  let rec go n x =
    let x' = f x in
    if equal x x' then x else if n = 0 then widen x x' else go (n - 1) x'
  in
  go rounds x

(* Ready-made lattice plumbing for [Absoff] environments (temp name ->
   abstract stream offset), shared by the checker and the offset
   analysis below. *)

let env_equal a b = SM.equal Absoff.equal a b

(** Optimistic join at an [If]: keep what both branches agree on; a
    binding present on only one side survives as-is (the branches are
    alternatives realizing the same slot — this is the checker's
    historical join, false positives being worse than missed lints). *)
let join_env ~v a b =
  SM.merge
    (fun _ a b ->
      match (a, b) with
      | Some a, Some b -> Some (Absoff.merge ~v a b)
      | Some a, None | None, Some a -> Some a
      | None, None -> None)
    a b

(** Widening for the loop-entry fixpoint: any disagreement (or binding
    present on one side only) goes to [Top]. *)
let widen_env prev next =
  SM.merge
    (fun _ a b ->
      match (a, b) with
      | Some a, Some b -> if Absoff.equal a b then Some a else Some Absoff.Top
      | Some _, None | None, Some _ -> Some Absoff.Top
      | None, None -> None)
    prev next

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

module Live = struct
  let add_reads acc e =
    Expr.fold_vexpr
      (fun acc n -> match n with Expr.Temp x -> SS.add x acc | _ -> acc)
      acc e

  let transfer out = function
    | Expr.Assign (x, e) -> add_reads (SS.remove x out) e
    | Expr.Store (_, e) -> add_reads out e
    | Expr.Storem (_, e, m) -> add_reads (add_reads out e) m
    | Expr.If _ -> out (* handled structurally by [backward] *)

  (** Temps live on entry to [stmts] given the live-out set [out]. *)
  let live_in out stmts = backward ~leaf:transfer ~join:SS.union out stmts

  (** Live-out of a loop body whose exit feeds [tail]: the least set
      closed under the back edge, [out = tail ∪ live_in(out, body)].
      [live_in] is monotone, so iterating from [tail] converges. *)
  let loop_out ~body tail =
    let rec go out =
      let out' = SS.union tail (live_in out body) in
      if SS.equal out out' then out else go out'
    in
    go tail

  (** Every temp read anywhere in [stmts]. *)
  let reads_of stmts = Expr.fold_stmts add_reads SS.empty stmts
end

(* ------------------------------------------------------------------ *)
(* Reaching definitions: the carried-temp discipline                   *)
(* ------------------------------------------------------------------ *)

module Reach = struct
  (* Temps read by a statement, in evaluation order (value before mask,
     then-branch before else-branch) — the checker's historical order,
     which fixes the reporting position of carried-temp diagnostics. *)
  let rec stmt_reads acc = function
    | Expr.Store (_, e) | Expr.Assign (_, e) ->
      Expr.fold_vexpr
        (fun acc e -> match e with Expr.Temp x -> x :: acc | _ -> acc)
        acc e
    | Expr.Storem (_, e, m) ->
      let note acc e =
        Expr.fold_vexpr
          (fun acc e -> match e with Expr.Temp x -> x :: acc | _ -> acc)
          acc e
      in
      note (note acc e) m
    | Expr.If (_, t, f) ->
      let acc = List.fold_left stmt_reads acc t in
      List.fold_left stmt_reads acc f

  let stmt_defs = function
    | Expr.Assign (x, _) -> [ x ]
    | Expr.Store _ | Expr.Storem _ -> []
    | Expr.If (_, t, f) -> Expr.temps_written t @ Expr.temps_written f

  (** A loop-carried temporary: read at [ca_first_read] before any body
      definition reaches it. [ca_first_def]/[ca_def_count] describe the
      body definitions of the same name (the seam restores of software
      pipelining and unrolling). *)
  type carried = {
    ca_name : string;
    ca_first_read : int;
    ca_first_def : int option;
    ca_def_count : int;
  }

  (** The loop-carried temporaries of a body, in first-read order. A
      temp is carried iff its first read is at or before its first
      definition (reads and defs of one statement count the read
      first). *)
  let carried_temps body =
    let n = List.length body in
    let reads = Array.make n [] and defs = Array.make n [] in
    List.iteri
      (fun i s ->
        reads.(i) <- List.rev (stmt_reads [] s);
        defs.(i) <- stmt_defs s)
      body;
    let first_def = Hashtbl.create 16 and def_count = Hashtbl.create 16 in
    Array.iteri
      (fun i ds ->
        List.iter
          (fun x ->
            if not (Hashtbl.mem first_def x) then Hashtbl.add first_def x i;
            Hashtbl.replace def_count x
              (1 + Option.value ~default:0 (Hashtbl.find_opt def_count x)))
          ds)
      defs;
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    Array.iteri
      (fun i rs ->
        List.iter
          (fun x ->
            if not (Hashtbl.mem seen x) then begin
              Hashtbl.add seen x ();
              let fd = Hashtbl.find_opt first_def x in
              let live_in =
                match fd with None -> true | Some d -> i <= d
              in
              if live_in then
                acc :=
                  {
                    ca_name = x;
                    ca_first_read = i;
                    ca_first_def = fd;
                    ca_def_count =
                      Option.value ~default:0 (Hashtbl.find_opt def_count x);
                  }
                  :: !acc
            end)
          rs)
      reads;
    List.rev !acc
end

(* ------------------------------------------------------------------ *)
(* Definition summaries (single-def resolution)                        *)
(* ------------------------------------------------------------------ *)

module Defs = struct
  (** Top-level definition summary of a region: last defining expression,
      first definition index, and definition count per temp. Definitions
      inside [If] branches poison the name (count bumped past 1 and the
      expression dropped) — single-def resolution never looks through a
      guard. *)
  type t = {
    last : Expr.vexpr SM.t;
    first_idx : int SM.t;
    count : int SM.t;
  }

  let scan stmts =
    let bump x i acc ~by ~expr =
      {
        last =
          (match expr with
          | Some e -> SM.add x e acc.last
          | None -> SM.remove x acc.last);
        first_idx =
          (if SM.mem x acc.first_idx then acc.first_idx
           else SM.add x i acc.first_idx);
        count =
          SM.add x
            (by + Option.value ~default:0 (SM.find_opt x acc.count))
            acc.count;
      }
    in
    let t, _ =
      List.fold_left
        (fun (acc, i) s ->
          let acc =
            match s with
            | Expr.Assign (x, e) -> bump x i acc ~by:1 ~expr:(Some e)
            | Expr.If (_, tb, fb) ->
              List.fold_left
                (fun acc x -> bump x i acc ~by:2 ~expr:None)
                acc
                (Expr.temps_written tb @ Expr.temps_written fb)
            | Expr.Store _ | Expr.Storem _ -> acc
          in
          (acc, i + 1))
        ({ last = SM.empty; first_idx = SM.empty; count = SM.empty }, 0)
        stmts
    in
    t

  (** [single_def t x] is [Some (idx, e)] iff [x] has exactly one
      top-level definition [Assign (x, e)] in the region, at index
      [idx]. *)
  let single_def t x =
    match
      (SM.find_opt x t.count, SM.find_opt x t.last, SM.find_opt x t.first_idx)
    with
    | Some 1, Some e, Some i -> Some (i, e)
    | _ -> None

  (** Chase a temporary through single definitions, at most [n] hops
      (structural resolution only — callers owning a value question must
      check evaluation-order safety themselves). *)
  let resolve ?(n = 8) t e =
    let rec go n e =
      match e with
      | Expr.Temp x when n > 0 -> (
        match single_def t x with Some (_, e') -> go (n - 1) e' | None -> e)
      | e -> e
    in
    go n e
end

(* ------------------------------------------------------------------ *)
(* Available expressions: when is a definition still valid at a use?    *)
(* ------------------------------------------------------------------ *)

module Avail = struct
  (** Availability summary of one region: per-index stored-array sets
      plus the definition summary, answering "does the expression [e],
      taken from statement [src], still denote the same value at
      statement [use]?". *)
  type t = { defs : Defs.t; stored : SS.t array; all_stored : SS.t }

  let rec stmt_stored acc = function
    | Expr.Store (a, _) | Expr.Storem (a, _, _) ->
      SS.add a.Addr.array acc
    | Expr.Assign _ -> acc
    | Expr.If (_, t, f) ->
      List.fold_left stmt_stored (List.fold_left stmt_stored acc t) f

  let analyze stmts =
    let arr = Array.of_list stmts in
    let stored = Array.map (fun s -> stmt_stored SS.empty s) arr in
    {
      defs = Defs.scan stmts;
      stored;
      all_stored = Array.fold_left SS.union SS.empty stored;
    }

  (* Arrays stored by statements strictly between [src] and [use]. *)
  let stores_between t ~src ~use =
    let acc = ref SS.empty in
    for k = src + 1 to use - 1 do
      if k >= 0 && k < Array.length t.stored then
        acc := SS.union !acc t.stored.(k)
    done;
    !acc

  (** [safe t ~src ~use e]: every read [e] performs yields the same value
      at statement [use] as at statement [src] (src < use, same region,
      one execution). Temps must be unredefined between the two points
      ([If]-defined names are poisoned by {!Defs.scan}); loads must not
      have their array stored in between. *)
  let safe t ~src ~use e =
    let tainted = stores_between t ~src ~use in
    let ok = ref true in
    ignore
      (Expr.fold_vexpr
         (fun () n ->
           (match n with
           | Expr.Temp z -> (
             match SM.find_opt z t.defs.Defs.count with
             | None -> () (* no definition here: constant over the region *)
             | Some 1 -> (
               match SM.find_opt z t.defs.Defs.first_idx with
               | Some dz when dz < src || dz >= use -> ()
               | _ -> ok := false)
             | Some _ -> ok := false)
           | Expr.Load a ->
             if SS.mem a.Addr.array tainted then ok := false
           | _ -> ());
           ())
         () e);
    !ok

  (** View a shiftpair half as an available compile-time shift: either an
      inline [Shiftpair] (source = the using statement itself) or a temp
      whose single definition before [use] is one. Returns
      [(src, x, y, amount)]. *)
  let as_shift t ~use h =
    match h with
    | Expr.Shiftpair (x, y, s) when Rexpr.is_const s ->
      Some (use, x, y, Rexpr.const_exn s)
    | Expr.Temp z -> (
      match Defs.single_def t.defs z with
      | Some (dz, Expr.Shiftpair (x, y, s))
        when dz < use && Rexpr.is_const s ->
        Some (dz, x, y, Rexpr.const_exn s)
      | _ -> None)
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Stream-offset constant propagation                                  *)
(* ------------------------------------------------------------------ *)

module Offsets = struct
  (** The abstract-interpretation context: vector width, element width,
      base-alignment lookup, and whether MemNorm already rewrote
      known-aligned load addresses (making their offsets opaque). *)
  type ctx = {
    v : int;
    elem : int;
    lookup : string -> int option;
    opaque_loads : bool;
  }

  let load_off ctx (a : Addr.t) =
    if ctx.opaque_loads && ctx.lookup a.Addr.array <> None then Absoff.Top
    else Absoff.of_addr ~v:ctx.v ~elem:ctx.elem ~lookup:ctx.lookup a

  let eval_rexpr ctx r =
    Absoff.eval_rexpr ~v:ctx.v ~elem:ctx.elem ~lookup:ctx.lookup r

  (** The diagnostic-free mirror of the checker's abstract evaluation:
      the abstract stream offset of [e] in environment [env]. The
      checker re-runs the same arms with reporting on; keeping the two
      in lockstep is what lets it reuse {!entry} below. *)
  let rec eval ctx env e =
    let v = ctx.v in
    let go e = eval ctx env e in
    match e with
    | Expr.Load a -> load_off ctx a
    | Expr.Splat _ -> Absoff.Bot
    | Expr.Temp x -> (
      match SM.find_opt x env with Some o -> o | None -> Absoff.Top)
    | Expr.Op (_, a, b) | Expr.Cmp (_, a, b) ->
      Absoff.merge ~v (go a) (go b)
    | Expr.Shiftpair (x, y, _) when Expr.equal_vexpr x y ->
      (* register rotation: lanes no longer denote stream offsets *)
      Absoff.Top
    | Expr.Shiftpair (x, y, s) ->
      Absoff.sub ~v (Absoff.merge ~v (go x) (go y)) (eval_rexpr ctx s)
    | Expr.Splice (x, y, _) -> Absoff.merge ~v (go x) (go y)
    | Expr.Pack (x, y) -> (
      match (go x, go y) with
      | Absoff.Byte 0, Absoff.Byte 0 -> Absoff.Byte 0
      | _ -> Absoff.Top)
    | Expr.Sel (m, a, b) ->
      Absoff.merge ~v (go m) (Absoff.merge ~v (go a) (go b))

  let transfer ctx ~idx:_ env = function
    | Expr.Assign (x, e) -> SM.add x (eval ctx env e) env
    | Expr.Store _ | Expr.Storem _ | Expr.If _ -> env

  (** Propagate an offset environment through a region. *)
  let exec ctx env stmts =
    forward ~leaf:(transfer ctx)
      ~guard:(fun ~idx:_ _ _ -> ())
      ~join:(join_env ~v:ctx.v) ~idx0:0 env stmts

  (** The loop-entry environment: the least (widened) fixpoint of
      running the body from [env0] — carried temps settle on the offset
      their seam protocol maintains, disagreements widen to [Top]. *)
  let entry ctx env0 body =
    fixpoint ~rounds:4 ~equal:env_equal ~widen:widen_env
      ~f:(fun env -> exec ctx env body)
      env0
end

(* ------------------------------------------------------------------ *)
(* Dead / cancelling stream shifts (graph level)                       *)
(* ------------------------------------------------------------------ *)

module Deadshift = struct
  type finding =
    | No_op of { from_ : Offset.t; to_ : Offset.t }
        (** a [vshiftstream] whose source and target offsets provably
            coincide *)
    | Cancelling of { f1 : Offset.t; t1 : Offset.t; to_ : Offset.t }
        (** a shift pair [f1 -> t1 -> to_] that returns the stream to
            its original offset through an unshared detour *)

  (** Pre-order scan of a reorganization graph for wasted shifts.
      [shared c] answers whether chain [c] has another consumer
      body-wide (a detour feeding two statements is not dead). *)
  let find ~block ~shared root =
    let acc = ref [] in
    let note f = acc := f :: !acc in
    let rec go (n : Graph.node) =
      (match n with
      | Graph.Shift (src, from, to_) -> (
        if Offset.matches ~block from to_ then
          note (No_op { from_ = from; to_ });
        match src with
        | Graph.Shift (_, f1, t1)
          when Offset.matches ~block t1 from
               && Offset.matches ~block f1 to_
               && (not (Offset.matches ~block from to_))
               && not
                    (match Graph.chain_of src with
                    | Some c -> shared c
                    | None -> false) ->
          note (Cancelling { f1; t1; to_ })
        | _ -> ())
      | Graph.Load _ | Graph.Strided _ | Graph.Splat _ | Graph.Op _
      | Graph.Cmp _ | Graph.Sel _ ->
        ());
      match n with
      | Graph.Op (_, a, b) | Graph.Cmp (_, a, b) ->
        go a;
        go b
      | Graph.Sel (m, a, b) ->
        go m;
        go a;
        go b
      | Graph.Shift (src, _, _) -> go src
      | Graph.Load _ | Graph.Strided _ | Graph.Splat _ -> ()
    in
    go root;
    List.rev !acc
end

(* ------------------------------------------------------------------ *)
(* The cleanup rewriter                                                *)
(* ------------------------------------------------------------------ *)

module Cleanup = struct
  (** What one cleanup application did, in application order. These
      double as the linter's evidence: a dry run's actions are exactly
      the wasted work the report points at. *)
  type action =
    | Combined of { where : string; detail : string }
        (** a shift was folded away or merged with its producer *)
    | Propagated of { where : string; temp : string }
        (** a read of a copy temp was redirected to its source *)
    | Hoisted of { where : string; temp : string }
        (** a loop-invariant body definition moved to the prologue *)
    | Removed of { where : string; temp : string; clobber : bool }
        (** a dead definition was deleted; [clobber] marks a value that
            is overwritten or abandoned even though the name is read
            elsewhere (write-before-read) *)

  let action_where = function
    | Combined { where; _ }
    | Propagated { where; _ }
    | Hoisted { where; _ }
    | Removed { where; _ } ->
      where

  (* --- shift combining + copy propagation (one region) ------------- *)

  (* The combining algebra. With X = vshiftpair(A, B, s) and
     Y = vshiftpair(B, C, s), vshiftpair(X, Y, t) selects bytes
     [s+t .. s+t+V-1] of A·B·C, so with m = s + t:
       m = 0          -> A
       0 < m < V      -> vshiftpair(A, B, m)
       m = V          -> B
       V < m < 2V     -> vshiftpair(B, C, m - V)
       m = 2V         -> C *)
  let concat3_window ~v ~x1 ~y1 ~x2 ~y2 m =
    if m = 0 then Some x1
    else if m < v then Some (Expr.Shiftpair (x1, y1, Rexpr.Const m))
    else if m = v then Some y1
    else if m < 2 * v then Some (Expr.Shiftpair (x2, y2, Rexpr.Const (m - v)))
    else if m = 2 * v then Some y2
    else None

  let combine_region ~v ~block ~region ~prologue_defined ~note stmts =
    let elem = v / block in
    let avail = Avail.analyze stmts in
    let defs = avail.Avail.defs in
    let where i = Printf.sprintf "%s#%d" region i in
    let amount_ok m = m >= 0 && m mod elem = 0 in
    (* Resolve a shiftpair half to the load it windows, tracking how many
       software-pipelining seams the chase crosses: a definition at or
       after the read point supplies last iteration's value, whose load
       sits one iteration — [scale * block] elements — earlier in the
       stream. Returns the resolved expression with its iteration lag. *)
    let resolve_lagged ~at e =
      let rec go n at lag e =
        match e with
        | Expr.Temp x when n > 0 -> (
          match Defs.single_def defs x with
          | Some (d, e') -> go (n - 1) d (if d < at then lag else lag + 1) e'
          | None -> (e, lag))
        | _ -> (e, lag)
      in
      go 4 at 0 e
    in
    (* One rewrite attempt at a (children-already-rewritten) node. *)
    let try_rules i e =
      match e with
      | Expr.Temp x -> (
        (* copy propagation through single-def temp-to-temp copies *)
        match Defs.single_def defs x with
        | Some (dx, (Expr.Temp y as ey))
          when dx < i && y <> x && Avail.safe avail ~src:dx ~use:i ey ->
          Some (ey, Propagated { where = where i; temp = x })
        | _ -> None)
      | Expr.Shiftpair (a, b, s) when Rexpr.is_const s -> (
        let t = Rexpr.const_exn s in
        if t = 0 then
          Some
            ( a,
              Combined
                {
                  where = where i;
                  detail = "vshiftpair amount 0 is the identity on its \
                            first half";
                } )
        else if t = v then
          Some
            ( b,
              Combined
                {
                  where = where i;
                  detail =
                    Printf.sprintf
                      "vshiftpair amount %d selects exactly its second half"
                      v;
                } )
        else if t < 0 || t > v then None
        else
          (* straight-line combine with the producing shiftpairs *)
          let straight =
            match (Avail.as_shift avail ~use:i a, Avail.as_shift avail ~use:i b)
            with
            | Some (da, x1, y1, s1), Some (db, x2, y2, s2)
              when s1 = s2 && s1 >= 0 && s1 <= v && Expr.equal_vexpr y1 x2 ->
              let m = s1 + t in
              if not (amount_ok m) then None
              else (
                match concat3_window ~v ~x1 ~y1 ~x2 ~y2 m with
                | Some r
                  when Avail.safe avail ~src:da ~use:i x1
                       && Avail.safe avail ~src:da ~use:i y1
                       && Avail.safe avail ~src:db ~use:i x2
                       && Avail.safe avail ~src:db ~use:i y2 ->
                  Some
                    ( r,
                      Combined
                        {
                          where = where i;
                          detail =
                            Printf.sprintf
                              "combined adjacent vshiftpairs (amounts %d + \
                               %d over one stream)"
                              s1 t;
                        } )
                | _ -> None)
            | _ -> None
          in
          if straight <> None then straight
          else
            (* Carried combine: vshiftpair(tx, ty, t) where tx is the
               software-pipelining copy of ty (tx@k = ty@(k-1)) and ty's
               definition vshiftpair(x2, y2, s) advances a pure load
               stream — y2 one full iteration ahead of x2, so
               ty@(k-1) = vshiftpair(x2@(k-1), x2@k, s) and the whole
               expression is a window over x2@(k-1)·x2@k·y2@k. Windows
               needing the unmaterialized x2@(k-1) (m < V) are skipped. *)
            match (prologue_defined, a, b) with
            | Some prologue_defined, Expr.Temp tx, Expr.Temp ty -> (
              match (Defs.single_def defs tx, Defs.single_def defs ty) with
              | ( Some (dx, Expr.Temp ty'),
                  Some (dy, Expr.Shiftpair (x2, y2, s2)) )
                when ty' = ty && dx > i && dy < i
                     && SS.mem tx prologue_defined
                     && Rexpr.is_const s2 -> (
                let sc = Rexpr.const_exn s2 in
                let m = sc + t in
                match (resolve_lagged ~at:dy x2, resolve_lagged ~at:dy y2)
                with
                | (Expr.Load p, lp), (Expr.Load q, lq)
                  when sc >= 0 && sc <= v && amount_ok m
                       && p.Addr.array = q.Addr.array
                       && p.Addr.scale = q.Addr.scale
                       && p.Addr.scale >= 1
                       && q.Addr.offset
                          - (lq * q.Addr.scale * block)
                          - (p.Addr.offset - (lp * p.Addr.scale * block))
                          = p.Addr.scale * block
                       && not (SS.mem p.Addr.array avail.Avail.all_stored)
                  -> (
                  let repl =
                    if m = v then Some x2
                    else if m > v && m < 2 * v then
                      Some (Expr.Shiftpair (x2, y2, Rexpr.Const (m - v)))
                    else if m = 2 * v then Some y2
                    else None (* m < V needs last iteration's register *)
                  in
                  match repl with
                  | Some r
                    when Avail.safe avail ~src:dy ~use:i x2
                         && Avail.safe avail ~src:dy ~use:i y2 ->
                    Some
                      ( r,
                        Combined
                          {
                            where = where i;
                            detail =
                              Printf.sprintf
                                "combined the carried vshiftpair chain \
                                 through %s/%s (amounts %d + %d over one \
                                 stream)"
                                tx ty sc t;
                          } )
                  | _ -> None)
                | _ -> None)
              | _ -> None)
            | _ -> None)
      | _ -> None
    in
    let rewrite_at i e =
      let rec go e =
        let e =
          match e with
          | Expr.Op (op, a, b) -> Expr.Op (op, go a, go b)
          | Expr.Shiftpair (a, b, s) -> Expr.Shiftpair (go a, go b, s)
          | Expr.Splice (a, b, p) -> Expr.Splice (go a, go b, p)
          | Expr.Pack (a, b) -> Expr.Pack (go a, go b)
          | Expr.Cmp (c, a, b) -> Expr.Cmp (c, go a, go b)
          | Expr.Sel (m, a, b) -> Expr.Sel (go m, go a, go b)
          | Expr.Load _ | Expr.Splat _ | Expr.Temp _ -> e
        in
        (* at most one rule application per node per round: later rounds
           pick up follow-on opportunities, and cyclic copy chains
           cannot ping-pong *)
        match try_rules i e with
        | Some (e', act) ->
          note act;
          e'
        | None -> e
      in
      go e
    in
    List.mapi
      (fun i s ->
        match s with
        | Expr.Store (a, e) -> Expr.Store (a, rewrite_at i e)
        | Expr.Assign (x, e) -> Expr.Assign (x, rewrite_at i e)
        | Expr.Storem (a, e, m) ->
          Expr.Storem (a, rewrite_at i e, rewrite_at i m)
        | Expr.If _ -> s)
      stmts

  (* --- loop-invariant hoisting -------------------------------------- *)

  let hoist_invariants ~prologue ~body ~prologue_defined ~note =
    let defs = Defs.scan body in
    let body_defined = SS.of_list (Expr.temps_written body) in
    let carried =
      SS.of_list
        (List.map (fun c -> c.Reach.ca_name) (Reach.carried_temps body))
    in
    (* Invariant: no loads (addresses move every iteration), no reads of
       body-defined temps, and only compile-time shift amounts / splice
       points (runtime amounts may carry the loop counter). *)
    let rec expr_ok e =
      match e with
      | Expr.Load _ -> false
      | Expr.Splat _ -> true
      | Expr.Temp z -> not (SS.mem z body_defined)
      | Expr.Op (_, a, b) | Expr.Pack (a, b) | Expr.Cmp (_, a, b) ->
        expr_ok a && expr_ok b
      | Expr.Shiftpair (a, b, s) | Expr.Splice (a, b, s) ->
        Rexpr.is_const s && expr_ok a && expr_ok b
      | Expr.Sel (m, a, b) -> expr_ok m && expr_ok a && expr_ok b
    in
    let hoisted = ref [] and kept = ref [] in
    List.iteri
      (fun i s ->
        match s with
        | Expr.Assign (x, e)
          when Defs.single_def defs x <> None
               && (not (SS.mem x carried))
               && (not (SS.mem x prologue_defined))
               && expr_ok e ->
          hoisted := s :: !hoisted;
          note (Hoisted { where = Printf.sprintf "body#%d" i; temp = x })
        | _ -> kept := s :: !kept)
      body;
    (prologue @ List.rev !hoisted, List.rev !kept)

  (* --- liveness-based DCE ------------------------------------------- *)

  (* Backward sweep over one region (or [If] branch; branch statements
     inherit the guard's index). Stores are always kept; an [Assign]
     whose temp is dead is deleted, cascading within the sweep; an [If]
     whose branches both empty out is dropped. Returns the kept
     statements and the live-in set. *)
  let rec sweep ~region ~read_anywhere ~idx0 ~note out stmts =
    let indexed = List.mapi (fun k s -> (idx0 + k, s)) stmts in
    List.fold_right
      (fun (i, s) (kept, out) ->
        match s with
        | Expr.Assign (x, e) ->
          if SS.mem x out then (s :: kept, Live.add_reads (SS.remove x out) e)
          else begin
            note
              (Removed
                 {
                   where = Printf.sprintf "%s#%d" region i;
                   temp = x;
                   clobber = SS.mem x read_anywhere;
                 });
            (kept, out)
          end
        | Expr.Store (_, e) -> (s :: kept, Live.add_reads out e)
        | Expr.Storem (_, e, m) ->
          (s :: kept, Live.add_reads (Live.add_reads out e) m)
        | Expr.If (c, t, f) ->
          let t', out_t =
            sweep ~region ~read_anywhere ~idx0:i ~note out t
          in
          let f', out_f =
            sweep ~region ~read_anywhere ~idx0:i ~note out f
          in
          if t' = [] && f' = [] then (kept, SS.union out_t out_f)
          else (Expr.If (c, t', f') :: kept, SS.union out_t out_f))
      indexed ([], out)

  (* Whole-program DCE. Epilogue segments are threaded back to front;
     the body's live-out closes over the back edge; the prologue's
     live-out is the union of the body's live-in and the epilogues'
     (the steady loop may run zero iterations). The epilogue segment
     count is preserved even when a segment empties (the bound checks
     demand [unroll + 1] segments). *)
  let dce_program ~note prologue body epilogues =
    let read_anywhere =
      List.fold_left
        (fun acc stmts -> SS.union acc (Live.reads_of stmts))
        SS.empty
        (prologue :: body :: epilogues)
    in
    let sweep = sweep ~read_anywhere ~idx0:0 ~note in
    let eps_rev, live_epis =
      List.fold_left
        (fun (acc, out) (k, seg) ->
          let seg', inn =
            sweep ~region:(Printf.sprintf "epilogue[%d]" k) out seg
          in
          (seg' :: acc, inn))
        ([], SS.empty)
        (List.rev (List.mapi (fun k seg -> (k, seg)) epilogues))
    in
    let body_out = Live.loop_out ~body live_epis in
    let body', body_in = sweep ~region:"body" body_out body in
    let prologue', _ =
      sweep ~region:"prologue" (SS.union body_in live_epis) prologue
    in
    (prologue', body', eps_rev)

  (* --- the pass ------------------------------------------------------ *)

  (** [run ~v ~block ~prologue ~body ~epilogues] applies copy
      propagation, shift combining, invariant hoisting and DCE to a
      fixpoint (at most 8 rounds), returning the rewritten regions and
      the actions in application order. Every rewrite is value-exact;
      the driver re-validates the result with [Simd.Check] at the pass
      boundary. *)
  let run ~v ~block ~prologue ~body ~epilogues =
    let all = ref [] in
    let rec rounds n (p, b, es) =
      if n = 0 then (p, b, es)
      else begin
        let before = List.length !all in
        let note a = all := a :: !all in
        let prologue_defined = SS.of_list (Expr.temps_written p) in
        let p =
          combine_region ~v ~block ~region:"prologue" ~prologue_defined:None
            ~note p
        in
        let b =
          combine_region ~v ~block ~region:"body"
            ~prologue_defined:(Some prologue_defined) ~note b
        in
        let es =
          List.mapi
            (fun k seg ->
              combine_region ~v ~block
                ~region:(Printf.sprintf "epilogue[%d]" k)
                ~prologue_defined:None ~note seg)
            es
        in
        let p, b = hoist_invariants ~prologue:p ~body:b ~prologue_defined ~note in
        let p, b, es = dce_program ~note p b es in
        if List.length !all = before then (p, b, es)
        else rounds (n - 1) (p, b, es)
      end
    in
    let result = rounds 8 (prologue, body, epilogues) in
    (result, List.rev !all)

  (** A dry run: the actions cleanup {e would} take, leaving the program
      untouched — the linter's evidence stream. *)
  let dry_run ~v ~block ~prologue ~body ~epilogues =
    snd (run ~v ~block ~prologue ~body ~epilogues)
end
