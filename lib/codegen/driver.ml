(** The simdization driver: analysis → (reassociation) → shift placement →
    code generation → optimization passes → epilogue derivation.

    This is the top of the compilation scheme the paper describes in §1:
    simdize as if unconstrained, insert reorganization via a policy, then
    generate and optimize SIMD code.

    Every phase is instrumented for {!Simd_trace.Trace}: pass the [?trace]
    sink to {!simdize} to record reassociation, per-statement
    shift-placement provenance, the generated IR, and one event per
    optimization stage with pre/post snapshots. The default sink is
    {!Simd_trace.Trace.none} and every snapshot construction is guarded by
    {!Simd_trace.Trace.active}, so an untraced compilation does no extra
    work. *)

open Simd_loopir
open Simd_vir
module Policy = Simd_dreorg.Policy
module Graph = Simd_dreorg.Graph
module Reassoc = Simd_dreorg.Reassoc
module Trace = Simd_trace.Trace
module Check = Simd_check.Check

(** Cross-iteration reuse strategy (§5.5): none, predictive commoning (a
    post-pass on standard code), or software-pipelined generation. *)
type reuse = No_reuse | Predictive_commoning | Software_pipelining
[@@deriving show { with_path = false }, eq]

let reuse_name = function
  | No_reuse -> "plain"
  | Predictive_commoning -> "pc"
  | Software_pipelining -> "sp"

type config = {
  machine : Simd_machine.Config.t;
  policy : Policy.t;
  reuse : reuse;
  memnorm : bool;  (** normalize load addresses to aligned chunks *)
  reassoc : bool;  (** common-offset reassociation *)
  cse : bool;  (** local value numbering (traditional redundancy elim.) *)
  hoist_splats : bool;
  unroll : int;
      (** steady-loop unroll factor (≥ 1); 2 removes depth-1 pipelining
          copies by modulo variable expansion (§4.5) *)
  specialize_epilogue : bool;
      (** fold the guarded epilogue for compile-time trip counts *)
  peel_baseline : bool;
      (** simdize only if loop peeling (prior work) is applicable — the
          baseline scheme; the policy is forced to eager *)
  cleanup : bool;
      (** dataflow-backed VIR cleanup after placement: copy propagation,
          no-op/adjacent shift combining, invariant hoisting, DCE
          ({!Passes.vir_cleanup}) *)
}

let default =
  {
    machine = Simd_machine.Config.default;
    policy = Policy.Dominant;
    reuse = Software_pipelining;
    memnorm = true;
    reassoc = false;
    cse = true;
    hoist_splats = true;
    unroll = 1;
    specialize_epilogue = true;
    peel_baseline = false;
    cleanup = false;
  }

(** Why a loop was left scalar. *)
type reason =
  | Illegal of Analysis.error
  | Trip_too_small of { trip : int; needed : int }
  | Peeling_inapplicable of Peel.verdict

let pp_reason fmt = function
  | Illegal e -> Format.fprintf fmt "not simdizable: %a" Analysis.pp_error e
  | Trip_too_small { trip; needed } ->
    Format.fprintf fmt "trip count %d too small (need > %d)" trip needed
  | Peeling_inapplicable v ->
    Format.fprintf fmt "peeling baseline: %a" Peel.pp_verdict v

type outcome = {
  prog : Prog.t;
  analysis : Analysis.t;
  graphs : (Ast.stmt * Graph.t) list;
  policies_used : Policy.t list;
      (** per statement; differs from the requested policy when runtime
          alignments forced the zero-shift fallback (§4.4) *)
  shared_streams : Simd_opt.Joint.shared list;
      (** reorganization chains occurring in more than one placed graph —
          the streams value numbering collapses into one [vshiftstream].
          Detected for every policy; the [joint] policy is the one that
          actively steers placement toward them. *)
  config : config;
  checks : (string * Check.result) list;
      (** per pass boundary, in pipeline order, when [simdize ~check:true]
          ran the static verifier; each boundary records only the
          violations first observed there, so the boundary name is the
          offending pass. Empty when checking was off. *)
}

type result = Simdized of outcome | Scalar of reason

(* ------------------------------------------------------------------ *)

let place_with_fallback config ~analysis stmt =
  let p = Simd_opt.Place.place_with_fallback config.policy ~analysis stmt in
  (p.Simd_opt.Place.graph, p.Simd_opt.Place.used)

(* The pass-pipeline state: the three IR regions a pass may rewrite
   (epilogues stay empty until derived). *)
type pstate = {
  st_prologue : Expr.stmt list;
  st_body : Expr.stmt list;
  st_epilogues : Expr.stmt list list;
}

let snap st =
  Trace.snapshot ~prologue:st.st_prologue ~body:st.st_body
    ~epilogues:st.st_epilogues

let run_passes ?(trace = Trace.none) ?(on_stage = fun ~name:_ _ -> ()) config
    ~analysis (prog : Prog.t) : Prog.t =
  let names = Names.create () in
  let stage ~name ~enabled st f =
    let st = Trace.record_pass trace ~name ~enabled st ~snap f in
    on_stage ~name st;
    st
  in
  let st =
    { st_prologue = prog.Prog.prologue; st_body = prog.Prog.body; st_epilogues = [] }
  in
  let st =
    stage ~name:"hoist_splats" ~enabled:config.hoist_splats st (fun st ->
        let p, b =
          Passes.hoist_splats ~names ~prologue:st.st_prologue ~body:st.st_body
        in
        { st with st_prologue = p; st_body = b })
  in
  let st =
    stage ~name:"memnorm" ~enabled:config.memnorm st (fun st ->
        {
          st with
          st_body = Passes.memnorm ~analysis st.st_body;
          st_prologue = Passes.memnorm ~analysis st.st_prologue;
        })
  in
  let st =
    stage ~name:"cse" ~enabled:config.cse st (fun st ->
        { st with st_body = Passes.cse ~names st.st_body })
  in
  let st =
    stage ~name:"predictive_commoning"
      ~enabled:(config.reuse = Predictive_commoning) st (fun st ->
        let inits, b =
          Passes.predictive_commoning ~block:prog.Prog.block
            ~lb:prog.Prog.lower ~prologue:st.st_prologue
            (if config.cse then st.st_body else Passes.cse ~names st.st_body)
        in
        { st with st_body = b; st_prologue = st.st_prologue @ inits })
  in
  (* A second [cse] event: the prologue is value-numbered only after
     predictive commoning has appended its carried-temp initializers. *)
  let st =
    stage ~name:"cse" ~enabled:config.cse st (fun st ->
        { st with st_prologue = Passes.cse ~names st.st_prologue })
  in
  (* Rebuild the per-iteration epilogue template from the optimized (but
     not yet unrolled) body; the epilogue always advances one block at a
     time regardless of unrolling. *)
  let template =
    Gen.derive_epilogue ~analysis ~reductions:prog.Prog.reductions st.st_body
  in
  let unroll = max 1 config.unroll in
  let st =
    stage ~name:"unroll" ~enabled:(unroll > 1) st (fun st ->
        {
          st with
          st_body = Passes.unroll ~block:prog.Prog.block ~factor:unroll st.st_body;
        })
  in
  let trip_const =
    match prog.Prog.source.Ast.loop.Ast.trip with
    | Ast.Trip_const n -> Some n
    | Ast.Trip_param _ -> None
  in
  let n_virtual = unroll + 1 in
  (* Always runs; [config.specialize_epilogue] selects between exit-counter
     specialization (compile-time trip) and the generic guarded template. *)
  let st =
    stage ~name:"derive_epilogues" ~enabled:true st (fun st ->
        let prog_shape = { prog with Prog.body = st.st_body; unroll } in
        let epilogues =
          match (config.specialize_epilogue, trip_const) with
          | true, Some trip ->
            let exit = Prog.exit_counter prog_shape ~trip in
            List.init n_virtual (fun k ->
                Passes.specialize ~analysis ~trip:(Some trip)
                  ~i:(Some (exit + (k * prog.Prog.block)))
                  template)
          | _ ->
            let t =
              Passes.specialize ~analysis ~trip:trip_const ~i:None template
            in
            List.init n_virtual (fun _ -> t)
        in
        { st with st_epilogues = epilogues })
  in
  (* Reduction finalization (horizontal combine + scalar write-back) runs
     once, after the last virtual epilogue iteration. *)
  let st =
    stage ~name:"finalize_reductions" ~enabled:(prog.Prog.reductions <> []) st
      (fun st ->
        match (prog.Prog.reductions, List.rev st.st_epilogues) with
        | [], _ | _, [] -> st
        | reds, last :: earlier ->
          {
            st with
            st_epilogues =
              List.rev
                ((last @ Gen.finalize_reductions ~analysis ~names reds)
                :: earlier);
          })
  in
  let st =
    stage ~name:"dce" ~enabled:true st (fun st ->
        { st with st_epilogues = Passes.dce st.st_epilogues })
  in
  let st =
    stage ~name:"vir_cleanup" ~enabled:config.cleanup st (fun st ->
        let p, b, e =
          Passes.vir_cleanup
            ~v:(Simd_machine.Config.vector_len config.machine)
            ~block:prog.Prog.block ~prologue:st.st_prologue ~body:st.st_body
            ~epilogues:st.st_epilogues
        in
        { st_prologue = p; st_body = b; st_epilogues = e })
  in
  {
    prog with
    Prog.prologue = st.st_prologue;
    body = st.st_body;
    epilogues = st.st_epilogues;
    unroll;
  }

(* Shift-placement provenance for the trace: every [vshiftstream] of a
   placed graph, in evaluation order, priced individually. *)
let rec shift_provenance machine (n : Graph.node) : Trace.shift_prov list =
  match n with
  | Graph.Load _ | Graph.Strided _ | Graph.Splat _ -> []
  | Graph.Op (_, a, b) | Graph.Cmp (_, a, b) ->
    shift_provenance machine a @ shift_provenance machine b
  | Graph.Sel (m, a, b) ->
    shift_provenance machine m @ shift_provenance machine a
    @ shift_provenance machine b
  | Graph.Shift (src, from, to_) ->
    shift_provenance machine src
    @ [
        {
          Trace.sp_from = from;
          sp_to = to_;
          sp_dir = Simd_opt.Cost.direction ~from ~to_;
          sp_cost = Simd_opt.Cost.shift_cost machine ~from ~to_;
        };
      ]

let record_placements trace config ~analysis placed =
  if Trace.active trace then
    List.iteri
      (fun i (stmt, g, used) ->
        Trace.add trace
          (Trace.Placement
             {
               Trace.pl_index = i;
               pl_source = Pp.stmt_to_string stmt;
               pl_requested = config.policy;
               pl_used = used;
               pl_target = g.Graph.store_offset;
               pl_graph = Graph.to_string g;
               pl_shifts =
                 (shift_provenance config.machine g.Graph.root
                 @
                 match g.Graph.mask with
                 | Some m -> shift_provenance config.machine m
                 | None -> []);
               pl_shift_cost = Simd_opt.Cost.shift_cost_of_graph ~analysis g;
               pl_cost = Simd_opt.Cost.graph_cost ~analysis ~stmt g;
             }))
      placed

(** [simdize ?trace ?check config program] — the whole pipeline, optionally
    recording every decision into [trace] and, with [check], re-running the
    static verifier ({!Simd_check.Check}) at every pass boundary. *)
let simdize ?(trace = Trace.none) ?(check = false) (config : config)
    (program : Ast.program) : result =
  (* If-conversion (the predication extension, [Simd.Mask]) runs before
     legality analysis: complementary guarded pairs become selects, guarded
     reductions become identity-selects, and whatever guards remain lower
     as masked stores. *)
  let program, mask_stats = Simd_mask.Mask.if_convert program in
  if
    Trace.active trace
    && (mask_stats.Simd_mask.Mask.merged_selects > 0
       || mask_stats.Simd_mask.Mask.rewritten_reductions > 0
       || mask_stats.Simd_mask.Mask.residual_guards > 0)
  then
    Trace.note trace ~label:"if-convert"
      (Simd_mask.Mask.show_stats mask_stats);
  match Analysis.check ~machine:config.machine program with
  | Error e -> Scalar (Illegal e)
  | Ok analysis -> (
    let program, analysis =
      if config.reassoc then begin
        let before =
          if Trace.active trace then Pp.program_to_string program else ""
        in
        let program' = Reassoc.apply_program ~analysis program in
        if Trace.active trace then
          Trace.add trace
            (Trace.Reassoc
               {
                 applied = true;
                 before;
                 after = Pp.program_to_string program';
               });
        (program', Analysis.check_exn ~machine:config.machine program')
      end
      else begin
        (if Trace.active trace then
           let s = Pp.program_to_string program in
           Trace.add trace (Trace.Reassoc { applied = false; before = s; after = s }));
        (program, analysis)
      end
    in
    match
      if config.peel_baseline then
        match Peel.check analysis with
        | Peel.Applicable -> Ok { config with policy = Policy.Eager }
        | v -> Error (Peeling_inapplicable v)
      else Ok config
    with
    | Error r -> Scalar r
    | Ok config -> (
      (* The checker collector: each boundary re-verifies the whole IR but
         reports only violations not already seen at an earlier boundary,
         so the first boundary a violation surfaces at names the pass that
         introduced it. *)
      let checks = ref [] in
      let seen = Hashtbl.create 64 in
      (* After MemNorm, compile-time-aligned load addresses no longer carry
         their stream offset — the checker must treat them as opaque. *)
      let normalized = ref false in
      let record_check name (r : Check.result) =
        let fresh =
          List.filter
            (fun (v : Check.violation) ->
              if Hashtbl.mem seen v then false
              else begin
                Hashtbl.add seen v ();
                true
              end)
            r.Check.violations
        in
        let r = { r with Check.violations = fresh } in
        checks := (name, r) :: !checks;
        if Trace.active trace && fresh <> [] then
          Trace.add trace
            (Trace.Check
               {
                 name;
                 violations = List.map Check.violation_to_string fresh;
               })
      in
      let placed =
        match config.policy with
        | Policy.Joint ->
          (* whole-body placement: offsets are chosen body-globally so one
             vshiftstream can feed several statements (value numbering
             merges the structurally equal chains at lowering) *)
          Simd_opt.Joint.place_body ~analysis program.Ast.loop.Ast.body
        | _ ->
          List.map
            (fun stmt ->
              let g, p = place_with_fallback config ~analysis stmt in
              (stmt, g, p))
            program.Ast.loop.Ast.body
      in
      record_placements trace config ~analysis placed;
      let graphs = List.map (fun (s, g, _) -> (s, g)) placed in
      let shared =
        Simd_opt.Joint.shared_streams ~analysis (List.map snd graphs)
      in
      if shared <> [] && Trace.active trace then
        Trace.note trace ~label:"shared-streams"
          (Format.asprintf "%a"
             (Format.pp_print_list
                ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
                Simd_opt.Joint.pp_shared)
             shared);
      if check then record_check "placement" (Check.check_graphs ~analysis graphs);
      let policies_used = List.map (fun (_, _, p) -> p) placed in
      let mode =
        match config.reuse with
        | Software_pipelining -> Gen.Pipelined
        | No_reuse | Predictive_commoning -> Gen.Standard
      in
      let names = Names.create () in
      match Gen.generate ~analysis ~names ~mode graphs with
      | Error (Gen.Trip_too_small { trip; needed }) ->
        Scalar (Trip_too_small { trip; needed })
      | Error (Gen.Unsupported_shift msg) ->
        invalid_arg ("Driver.simdize: unexpected shift failure: " ^ msg)
      | Ok prog ->
        if Trace.active trace then
          Trace.add trace
            (Trace.Generated
               {
                 mode =
                   (match mode with
                   | Gen.Pipelined -> "pipelined"
                   | Gen.Standard -> "standard");
                 snap =
                   Trace.snapshot ~prologue:prog.Prog.prologue
                     ~body:prog.Prog.body ~epilogues:[];
               });
        if check then
          record_check "generate"
            (Check.check_regions ~analysis ~prologue:prog.Prog.prologue
               ~body:prog.Prog.body ~epilogues:[] ());
        let last_body = ref prog.Prog.body in
        let on_stage ~name (st : pstate) =
          if check then begin
            if name = "memnorm" then normalized := config.memnorm;
            if name = "unroll" && config.unroll > 1 then
              record_check name
                (Check.check_unroll ~analysis ~factor:config.unroll
                   ~pre:!last_body ~post:st.st_body);
            record_check name
              (Check.check_regions ~analysis ~loads_normalized:!normalized
                 ~prologue:st.st_prologue ~body:st.st_body
                 ~epilogues:st.st_epilogues ());
            last_body := st.st_body
          end
        in
        let prog = run_passes ~trace ~on_stage config ~analysis prog in
        if check then begin
          let peel_amount =
            if config.peel_baseline then
              match Peel.check analysis with
              | Peel.Applicable -> Some (Peel.peel_amount analysis)
              | Peel.Mixed_alignments | Peel.Runtime_alignment -> None
            else None
          in
          record_check "final"
            (Check.check_prog ?peel_amount ~loads_normalized:!normalized
               ~analysis prog)
        end;
        Simdized
          {
            prog;
            analysis;
            graphs;
            policies_used;
            shared_streams = shared;
            config;
            checks = List.rev !checks;
          }))

(** [simdize_exn] — [simdize] that raises on scalar fallback (tests). *)
let simdize_exn ?trace ?check config program =
  match simdize ?trace ?check config program with
  | Simdized o -> o
  | Scalar r -> invalid_arg (Format.asprintf "Driver.simdize_exn: %a" pp_reason r)

(** [check_violations outcome] — every static-verifier violation of a
    [~check:true] compilation, flattened in boundary order, each paired
    with the pass boundary that first surfaced it. *)
let check_violations (o : outcome) : (string * Check.violation) list =
  List.concat_map
    (fun (name, (r : Check.result)) ->
      List.map (fun v -> (name, v)) r.Check.violations)
    o.checks

(** [check_facts outcome] — the proof obligations discharged across all
    boundaries of a [~check:true] compilation. *)
let check_facts (o : outcome) : Check.facts =
  List.fold_left
    (fun acc (_, (r : Check.result)) -> Check.add_facts acc r.Check.facts)
    Check.no_facts o.checks

(** [report outcome] — the static cost report of a compilation: what each
    statement's placement cost under the machine's cost model, and what
    every other policy would have cost ([--stats], bench JSON). *)
let report (o : outcome) : Simd_opt.Report.t =
  let placed =
    List.map2 (fun (s, g) p -> (s, g, p)) o.graphs o.policies_used
  in
  Simd_opt.Report.make ~analysis:o.analysis ~requested:o.config.policy ~placed
