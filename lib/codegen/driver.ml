(** The simdization driver: analysis → (reassociation) → shift placement →
    code generation → optimization passes → epilogue derivation.

    This is the top of the compilation scheme the paper describes in §1:
    simdize as if unconstrained, insert reorganization via a policy, then
    generate and optimize SIMD code. *)

open Simd_loopir
open Simd_vir
module Policy = Simd_dreorg.Policy
module Graph = Simd_dreorg.Graph
module Reassoc = Simd_dreorg.Reassoc

(** Cross-iteration reuse strategy (§5.5): none, predictive commoning (a
    post-pass on standard code), or software-pipelined generation. *)
type reuse = No_reuse | Predictive_commoning | Software_pipelining
[@@deriving show { with_path = false }, eq]

let reuse_name = function
  | No_reuse -> "plain"
  | Predictive_commoning -> "pc"
  | Software_pipelining -> "sp"

type config = {
  machine : Simd_machine.Config.t;
  policy : Policy.t;
  reuse : reuse;
  memnorm : bool;  (** normalize load addresses to aligned chunks *)
  reassoc : bool;  (** common-offset reassociation *)
  cse : bool;  (** local value numbering (traditional redundancy elim.) *)
  hoist_splats : bool;
  unroll : int;
      (** steady-loop unroll factor (≥ 1); 2 removes depth-1 pipelining
          copies by modulo variable expansion (§4.5) *)
  specialize_epilogue : bool;
      (** fold the guarded epilogue for compile-time trip counts *)
  peel_baseline : bool;
      (** simdize only if loop peeling (prior work) is applicable — the
          baseline scheme; the policy is forced to eager *)
}

let default =
  {
    machine = Simd_machine.Config.default;
    policy = Policy.Dominant;
    reuse = Software_pipelining;
    memnorm = true;
    reassoc = false;
    cse = true;
    hoist_splats = true;
    unroll = 1;
    specialize_epilogue = true;
    peel_baseline = false;
  }

(** Why a loop was left scalar. *)
type reason =
  | Illegal of Analysis.error
  | Trip_too_small of { trip : int; needed : int }
  | Peeling_inapplicable of Peel.verdict

let pp_reason fmt = function
  | Illegal e -> Format.fprintf fmt "not simdizable: %a" Analysis.pp_error e
  | Trip_too_small { trip; needed } ->
    Format.fprintf fmt "trip count %d too small (need > %d)" trip needed
  | Peeling_inapplicable v ->
    Format.fprintf fmt "peeling baseline: %a" Peel.pp_verdict v

type outcome = {
  prog : Prog.t;
  analysis : Analysis.t;
  graphs : (Ast.stmt * Graph.t) list;
  policies_used : Policy.t list;
      (** per statement; differs from the requested policy when runtime
          alignments forced the zero-shift fallback (§4.4) *)
  config : config;
}

type result = Simdized of outcome | Scalar of reason

(* ------------------------------------------------------------------ *)

let place_with_fallback config ~analysis stmt =
  let p = Simd_opt.Place.place_with_fallback config.policy ~analysis stmt in
  (p.Simd_opt.Place.graph, p.Simd_opt.Place.used)

let run_passes config ~analysis (prog : Prog.t) : Prog.t =
  let names = Names.create () in
  let prologue = ref prog.Prog.prologue in
  let body = ref prog.Prog.body in
  if config.hoist_splats then begin
    let p, b = Passes.hoist_splats ~names ~prologue:!prologue ~body:!body in
    prologue := p;
    body := b
  end;
  if config.memnorm then begin
    body := Passes.memnorm ~analysis !body;
    prologue := Passes.memnorm ~analysis !prologue
  end;
  if config.cse then body := Passes.cse ~names !body;
  (if config.reuse = Predictive_commoning then begin
     let inits, b =
       Passes.predictive_commoning ~block:prog.Prog.block ~lb:prog.Prog.lower
         ~prologue:!prologue
         (if config.cse then !body else Passes.cse ~names !body)
     in
     body := b;
     prologue := !prologue @ inits
   end);
  if config.cse then prologue := Passes.cse ~names !prologue;
  (* Rebuild the per-iteration epilogue template from the optimized (but
     not yet unrolled) body; the epilogue always advances one block at a
     time regardless of unrolling. *)
  let template =
    Gen.derive_epilogue ~analysis ~reductions:prog.Prog.reductions !body
  in
  let unroll = max 1 config.unroll in
  if unroll > 1 then body := Passes.unroll ~block:prog.Prog.block ~factor:unroll !body;
  let trip_const =
    match prog.Prog.source.Ast.loop.Ast.trip with
    | Ast.Trip_const n -> Some n
    | Ast.Trip_param _ -> None
  in
  let n_virtual = unroll + 1 in
  let prog_shape = { prog with Prog.body = !body; unroll } in
  let epilogues =
    match (config.specialize_epilogue, trip_const) with
    | true, Some trip ->
      let exit = Prog.exit_counter prog_shape ~trip in
      List.init n_virtual (fun k ->
          Passes.specialize ~analysis ~trip:(Some trip)
            ~i:(Some (exit + (k * prog.Prog.block)))
            template)
    | _ ->
      let t = Passes.specialize ~analysis ~trip:trip_const ~i:None template in
      List.init n_virtual (fun _ -> t)
  in
  (* Reduction finalization (horizontal combine + scalar write-back) runs
     once, after the last virtual epilogue iteration. *)
  let epilogues =
    match (prog.Prog.reductions, List.rev epilogues) with
    | [], _ | _, [] -> epilogues
    | reds, last :: earlier ->
      List.rev ((last @ Gen.finalize_reductions ~analysis ~names reds) :: earlier)
  in
  let epilogues = Passes.dce epilogues in
  { prog_shape with Prog.prologue = !prologue; epilogues }

(** [simdize config program] — the whole pipeline. *)
let simdize (config : config) (program : Ast.program) : result =
  match Analysis.check ~machine:config.machine program with
  | Error e -> Scalar (Illegal e)
  | Ok analysis -> (
    let program, analysis =
      if config.reassoc then begin
        let program' = Reassoc.apply_program ~analysis program in
        (program', Analysis.check_exn ~machine:config.machine program')
      end
      else (program, analysis)
    in
    match
      if config.peel_baseline then
        match Peel.check analysis with
        | Peel.Applicable -> Ok { config with policy = Policy.Eager }
        | v -> Error (Peeling_inapplicable v)
      else Ok config
    with
    | Error r -> Scalar r
    | Ok config -> (
      let placed =
        List.map
          (fun stmt ->
            let g, p = place_with_fallback config ~analysis stmt in
            (stmt, g, p))
          program.Ast.loop.Ast.body
      in
      let graphs = List.map (fun (s, g, _) -> (s, g)) placed in
      let policies_used = List.map (fun (_, _, p) -> p) placed in
      let mode =
        match config.reuse with
        | Software_pipelining -> Gen.Pipelined
        | No_reuse | Predictive_commoning -> Gen.Standard
      in
      let names = Names.create () in
      match Gen.generate ~analysis ~names ~mode graphs with
      | Error (Gen.Trip_too_small { trip; needed }) ->
        Scalar (Trip_too_small { trip; needed })
      | Error (Gen.Unsupported_shift msg) ->
        invalid_arg ("Driver.simdize: unexpected shift failure: " ^ msg)
      | Ok prog ->
        let prog = run_passes config ~analysis prog in
        Simdized { prog; analysis; graphs; policies_used; config }))

(** [simdize_exn] — [simdize] that raises on scalar fallback (tests). *)
let simdize_exn config program =
  match simdize config program with
  | Simdized o -> o
  | Scalar r -> invalid_arg (Format.asprintf "Driver.simdize_exn: %a" pp_reason r)

(** [report outcome] — the static cost report of a compilation: what each
    statement's placement cost under the machine's cost model, and what
    every other policy would have cost ([--stats], bench JSON). *)
let report (o : outcome) : Simd_opt.Report.t =
  let placed =
    List.map2 (fun (s, g) p -> (s, g, p)) o.graphs o.policies_used
  in
  Simd_opt.Report.make ~analysis:o.analysis ~requested:o.config.policy ~placed
