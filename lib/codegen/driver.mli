(** The simdization driver: analysis → (reassociation) → shift placement →
    code generation → optimization passes → epilogue derivation.

    Pass a {!Simd_trace.Trace} sink via [?trace] to record every decision
    of a compilation — reassociation, per-statement shift-placement
    provenance, the generated IR, and one event per optimization stage
    with pre/post snapshots. Tracing is zero-cost when the sink is
    {!Simd_trace.Trace.none} (the default). *)

open Simd_loopir
open Simd_vir
module Policy = Simd_dreorg.Policy
module Graph = Simd_dreorg.Graph
module Reassoc = Simd_dreorg.Reassoc
module Trace = Simd_trace.Trace
module Check = Simd_check.Check

(** Cross-iteration reuse strategy (§5.5). *)
type reuse = No_reuse | Predictive_commoning | Software_pipelining
[@@deriving show, eq]

val reuse_name : reuse -> string

type config = {
  machine : Simd_machine.Config.t;
  policy : Policy.t;
  reuse : reuse;
  memnorm : bool;
  reassoc : bool;
  cse : bool;
  hoist_splats : bool;
  unroll : int;  (** ≥ 1; 2 removes depth-1 pipelining copies (§4.5) *)
  specialize_epilogue : bool;
  peel_baseline : bool;  (** prior-work baseline: require peeling applicability *)
  cleanup : bool;
      (** dataflow-backed VIR cleanup after placement
          ({!Passes.vir_cleanup}) *)
}

val default : config
(** 16-byte machine, dominant-shift, software pipelining, MemNorm + CSE +
    splat hoisting on, no reassociation, no unrolling. *)

type reason =
  | Illegal of Analysis.error
  | Trip_too_small of { trip : int; needed : int }
  | Peeling_inapplicable of Peel.verdict

val pp_reason : Format.formatter -> reason -> unit

type outcome = {
  prog : Prog.t;
  analysis : Analysis.t;
  graphs : (Ast.stmt * Graph.t) list;
  policies_used : Policy.t list;
      (** per statement; [Zero] where runtime alignments forced the
          fallback (§4.4) *)
  shared_streams : Simd_opt.Joint.shared list;
      (** reorganization chains occurring in more than one placed graph —
          one shared [vshiftstream] after value numbering. Detected under
          every policy; [joint] steers placement toward them. *)
  config : config;
  checks : (string * Check.result) list;
      (** static-verifier results per pass boundary (pipeline order) when
          compiled with [~check:true]; each boundary holds only the
          violations first observed there, so the boundary name is the
          offending pass. Empty when checking was off. *)
}

type result = Simdized of outcome | Scalar of reason

(** The pass-pipeline state threaded through {!run_passes}: the three IR
    regions a pass may rewrite (epilogues stay empty until derived). *)
type pstate = {
  st_prologue : Expr.stmt list;
  st_body : Expr.stmt list;
  st_epilogues : Expr.stmt list list;
}

val run_passes :
  ?trace:Trace.t ->
  ?on_stage:(name:string -> pstate -> unit) ->
  config ->
  analysis:Analysis.t ->
  Prog.t ->
  Prog.t
(** The optimization-pass pipeline alone (hoisting, MemNorm, CSE,
    predictive commoning, unrolling, epilogue derivation, reduction
    finalization, DCE) applied to a freshly generated program.
    [on_stage] fires after every stage with the pipeline state — the
    driver's own boundary checking and {!Retarget}'s re-instantiation
    both hang off it. *)

val simdize : ?trace:Trace.t -> ?check:bool -> config -> Ast.program -> result
(** The whole pipeline. [?trace] (default {!Simd_trace.Trace.none})
    receives the ordered event stream of this compilation. [?check]
    (default [false]) re-runs the static verifier ({!Simd_check.Check}) on
    the placed graphs, the generated IR, after every optimization stage,
    and on the final program — recording per-boundary results in
    [outcome.checks] (and, when tracing, as [Trace.Check] events). *)

val simdize_exn :
  ?trace:Trace.t -> ?check:bool -> config -> Ast.program -> outcome
(** [simdize] that raises on scalar fallback (tests). *)

val check_violations : outcome -> (string * Check.violation) list
(** All static-verifier violations of a [~check:true] compilation in
    boundary order, each paired with the pass boundary that first surfaced
    it (empty for clean or check-free compilations). *)

val check_facts : outcome -> Check.facts
(** Total proof obligations discharged across all boundaries. *)

val report : outcome -> Simd_opt.Report.t
(** The compilation's static cost report: per-statement streams, chosen
    shifts, operation counts, weighted cost, and the cost under every other
    placeable policy. *)
