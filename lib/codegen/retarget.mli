(** Vector-length-agnostic retargeting: re-instantiate one placed
    compilation ({!Driver.outcome}) at a different vector length V′
    without rerunning shift placement.

    Shift placement is structural — which streams are reorganized and
    where the [vshiftstream]s sit — and mostly survives a change of V;
    what does {e not} survive are the numeric stream offsets
    ([(base + offset·D) mod V]), the blocking factor B = V′/D, and every
    prologue/epilogue bound derived from them (Eqs. 8–16). [retarget]
    keeps the structure, renumbers the offsets at V′, repairs the places
    where an offset equality held at V but not at V′ (and drops shifts
    that became no-ops), then regenerates and re-optimizes code so the
    bound math is recomputed, with {!Simd_check.Check} discharging the
    retargeted obligations as the correctness gate.

    The driving use case is the backend matrix ({!Simd_emit.Matrix}): one
    placement at the default V = 16 feeds the AltiVec/SSE/NEON emitters
    directly and retargets to V′ = 32 for AVX2 (or V′ = 64 for a future
    AVX-512) without re-placement. *)

module Policy = Simd_dreorg.Policy
module Trace = Simd_trace.Trace
module Check = Simd_check.Check
module Json = Simd_support.Json

(** How one statement's placed graph survived the retarget. *)
type status =
  | Preserved  (** shift structure unchanged; only offsets renumbered *)
  | Repaired of int
      (** structure kept with [n] edits: repair shifts inserted at leaves
          whose V′ offset no longer meets the context requirement, and
          shifts dropped as V′ no-ops *)
  | Replaced of Policy.t
      (** the preserved structure was not lowerable at V′ (an unsupported
          runtime reorganization direction) — the statement was re-placed
          from scratch with this policy *)

val status_name : status -> string
(** ["preserved"] / ["repaired"] / ["replaced"]. *)

val pp_status : Format.formatter -> status -> unit
(** Like {!status_name} but with the repair count / fallback policy. *)

type t = {
  outcome : Driver.outcome;
      (** a full compilation at V′: retargeted graphs, regenerated and
          re-optimized program, fresh analysis, and — when checking was on
          — the [retarget-placement] / [retarget-final] verifier
          boundaries in [outcome.checks] *)
  statuses : status list;  (** per statement, same order as the graphs *)
  from_vl : int;  (** V of the source compilation *)
  to_vl : int;  (** V′ this result targets *)
}

val supported_vls : int list
(** The vector lengths the backend matrix sweeps: [\[16; 32; 64\]]. *)

val retarget :
  ?trace:Trace.t ->
  ?check:bool ->
  vector_len:int ->
  Driver.outcome ->
  (t, Driver.reason) result
(** [retarget ~vector_len o] — re-instantiate [o] at V′ = [vector_len]
    (a power of two in [\[4, 64\]]).

    [?check] (default [true] — retargeting exists to be verified) runs
    {!Simd_check.Check} on the retargeted graphs and on the final
    program, recording both boundaries in [outcome.checks].

    Errors mirror {!Driver.simdize}'s scalar reasons: the program may be
    illegal at V′ ([Illegal] — e.g. an array's declared base alignment no
    longer covers a whole vector) or the trip count may not reach the 3B
    guard at the wider block ([Trip_too_small], Eq. 16). The source
    outcome's [peel_baseline] is not re-asserted: peeling applicability
    is V-dependent, and the retarget answers for the placed graphs, not
    the baseline's claim. *)

val retarget_exn :
  ?trace:Trace.t -> ?check:bool -> vector_len:int -> Driver.outcome -> t
(** {!retarget} raising on scalar fallback (tests). *)

val sweep :
  ?trace:Trace.t ->
  ?check:bool ->
  ?vector_lens:int list ->
  Driver.outcome ->
  (int * (t, Driver.reason) result) list
(** {!retarget} at every V′ in [vector_lens] (default
    {!supported_vls}), in order. *)

val counts : t -> int * int * int
(** [(preserved, repaired, replaced)] statement totals. *)

val error_violations : t -> (string * Check.violation) list
(** Error-severity verifier violations across both retarget boundaries,
    paired with the boundary name (empty for a clean — or check-free —
    retarget). *)

val to_json : t -> Json.t
(** Summary object for [bench --json] / [BENCH_backends.json]: VLs,
    per-statement statuses, status totals, error count, and the V′ cost
    report's weighted totals. *)
