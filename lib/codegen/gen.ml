(** SIMD code generation from data reorganization graphs (paper §4).

    Two generation modes:
    - {b Standard} (Fig. 7): a stream shift at offset [from]→[to] lowers to
      one [Shiftpair] combining the current register of the source stream
      with its next register (left shift, [from > to]) or its previous one
      (right shift, [from < to]). "Next"/"previous" registers are the same
      expression at iteration [i ± B] (the paper's [Substitute(i → i ± B)]).
    - {b Pipelined} (Fig. 10): the value flowing into each shift from the
      larger iteration ("second") is computed into a fresh [new] temporary
      and carried across iterations through an [old] temporary, so the
      steady-state loop never reloads data already loaded — the paper's
      never-load-the-same-data-twice guarantee.

    Statement handling (Fig. 9): the first simdized iteration is peeled into
    a prologue whose store splices the new value into the original memory
    content from byte [ProSplice = addr(0) mod V]; the steady-state loop
    issues full (truncating) vector stores; the epilogue re-executes the
    body at the loop exit counter (and once more at [exit + B]) with every
    store guarded by the remaining byte count

    {v  L = (ub - i)*D + corr  v}

    storing a full vector while [L >= V] and splicing the final [L] bytes
    otherwise. [corr] is the store alignment for blocked bounds (stores are
    truncation-adjusted) and 0 for per-store bounds (stores are exactly
    aligned). This one guarded form subsumes Eqs. 8/9/14/16: evaluated at
    [i = exit] and [i = exit + B] it performs exactly the full-plus-partial
    (or single partial) epilogue stores the paper derives. *)

open Simd_loopir
open Simd_vir
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset

type mode = Standard | Pipelined [@@deriving show { with_path = false }, eq]

(* Bounds are always the "blocked" scheme of §4.3/4.4: LB = B (Eq. 12) and
   the steady counter stays a multiple of B, with stores relying on address
   truncation. This is deliberate: the Fig.-7 lowering of a stream shift
   pairs the registers of iterations i and i±B, and the chunk a truncating
   load/store touches at counter value i only lines up with the i = 0 stream
   pictures when i ≡ 0 (mod B). A steady loop entered at Eq. 10's
   LB = (V - ProSplice)/D would evaluate the same expressions at a shifted
   phase and combine the wrong chunks; Eq. 12 is the paper's own refinement
   that removes the phase dependence (see DESIGN.md). The single-statement
   Eqs. 10/11 are still honored through Eq. 13's compile-time upper bound,
   which degenerates to Eq. 11 for one statement. *)

type error =
  | Trip_too_small of { trip : int; needed : int }
      (** compile-time trip count cannot fill prologue+steady+epilogue *)
  | Unsupported_shift of string
      (** a stream shift whose direction is not compile-time decidable —
          cannot happen for graphs produced by the provided policies *)

let pp_error fmt = function
  | Trip_too_small { trip; needed } ->
    Format.fprintf fmt "trip count %d too small to simdize (need > %d)" trip needed
  | Unsupported_shift msg -> Format.fprintf fmt "unsupported stream shift: %s" msg

exception Failed of error

(* ------------------------------------------------------------------ *)
(* Generation context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  analysis : Analysis.t;
  names : Names.t;
  v : int;  (** vector length *)
  elem : int;
  block : int;
  lb : int;  (** steady-loop lower bound (needed for pipelining inits) *)
  mutable prologue_inits : Expr.stmt list;  (** reversed *)
  mutable body_pre : Expr.stmt list;  (** reversed; per-statement, flushed *)
  mutable body_copies : Expr.stmt list;  (** reversed; per-statement, flushed *)
}

let push_init ctx s = ctx.prologue_inits <- s :: ctx.prologue_inits
let push_pre ctx s = ctx.body_pre <- s :: ctx.body_pre
let push_copy ctx s = ctx.body_copies <- s :: ctx.body_copies

let take_pre ctx =
  let r = List.rev ctx.body_pre in
  ctx.body_pre <- [];
  r

let take_copies ctx =
  let r = List.rev ctx.body_copies in
  ctx.body_copies <- [];
  r

(* ------------------------------------------------------------------ *)
(* Offsets as runtime expressions                                      *)
(* ------------------------------------------------------------------ *)

(** Stream offsets are loop invariants: for a stride-one reference the
    address advances by [B*D = V] bytes per simdized iteration, so
    [addr & (V-1)] is the same at every counter value the generated code
    evaluates it at (multiples of [B], including the prologue's 0). *)
let rexpr_of_offset (o : Offset.t) : Rexpr.t =
  match o with
  | Offset.Known k -> Rexpr.Const k
  | Offset.Runtime r -> Rexpr.Offset_of (Addr.of_ref r)
  | Offset.Any -> invalid_arg "Gen.rexpr_of_offset: ⊥ offset"

(** Shift direction, decidable at compile time (paper §4.4: under the
    zero-shift policy loads shift left to 0 and stores shift right from 0
    even when the offsets themselves are runtime values). *)
type direction = Left | Right

let direction ~(from : Offset.t) ~(to_ : Offset.t) : direction option =
  match (from, to_) with
  | Offset.Known f, Offset.Known t ->
    if f > t then Some Left else if f < t then Some Right else None
  | Offset.Runtime _, Offset.Known 0 -> Some Left
  | Offset.Known 0, Offset.Runtime _ -> Some Right
  | _ ->
    raise
      (Failed
         (Unsupported_shift
            (Format.asprintf "from %a to %a" Offset.pp from Offset.pp to_)))

(** Shift amounts (see {!Simd_machine.Vec.shiftpair} for the [0..V] domain):
    left shifts use [(from - to) mod V]; right shifts use
    [V - ((to - from) mod V)] so that a runtime-aligned store ([to = 0])
    yields shift [V] (select the second operand) rather than 0. *)
let left_shift_amount ctx ~from ~to_ =
  Rexpr.mod_const (Rexpr.sub (rexpr_of_offset from) (rexpr_of_offset to_)) ctx.v

let right_shift_amount ctx ~from ~to_ =
  Rexpr.sub (Rexpr.Const ctx.v)
    (Rexpr.mod_const (Rexpr.sub (rexpr_of_offset to_) (rexpr_of_offset from)) ctx.v)

(* ------------------------------------------------------------------ *)
(* Expression generation                                               *)
(* ------------------------------------------------------------------ *)

(** [gen_gather ctx ~disp r] — lower a strided load (extension). For stride
    [s], the [B] gathered elements span [s] aligned windows of the array:
    window [j] holds elements [s·i + c + jB .. +B), obtained as
    [vshiftpair(chunk_j, chunk_{j+1}, o)] (plain loads when the reference is
    aligned; the shift amount may be a runtime offset). A [log2 s]-level
    [vpack] tree then selects every [s]-th element, delivering the gathered
    stream contiguously at offset 0. Adjacent windows share chunks (CSE) and
    consecutive iterations share the boundary chunk (predictive
    commoning). *)
let gen_gather ctx ~disp (r : Ast.mem_ref) : Expr.vexpr =
  let s = r.Ast.ref_stride in
  let base = Addr.shift_iter (Addr.of_ref r) ~by:disp in
  let o = Analysis.offset_of ctx.analysis r in
  let chunk j =
    Expr.Load { base with Addr.offset = base.Addr.offset + (j * ctx.block) }
  in
  let window j =
    match o with
    | Align.Known 0 -> chunk j
    | Align.Known k -> Expr.Shiftpair (chunk j, chunk (j + 1), Rexpr.Const k)
    | Align.Runtime ->
      Expr.Shiftpair (chunk j, chunk (j + 1), Rexpr.Offset_of base)
  in
  let rec tree = function
    | [ w ] -> w
    | ws ->
      let rec pair_up = function
        | a :: b :: rest -> Expr.Pack (a, b) :: pair_up rest
        | rest -> rest
      in
      tree (pair_up ws)
  in
  tree (List.init s window)

(** [gen_std ctx ~disp node] — standard generation (paper Fig. 7) of the
    stream value at iteration [i + disp]. *)
let rec gen_std ctx ~disp (n : Graph.node) : Expr.vexpr =
  match n with
  | Graph.Load r -> Expr.Load (Addr.shift_iter (Addr.of_ref r) ~by:disp)
  | Graph.Strided r -> gen_gather ctx ~disp r
  | Graph.Splat e -> Expr.Splat e
  | Graph.Op (op, a, b) -> Expr.Op (op, gen_std ctx ~disp a, gen_std ctx ~disp b)
  | Graph.Cmp (c, a, b) -> Expr.Cmp (c, gen_std ctx ~disp a, gen_std ctx ~disp b)
  | Graph.Sel (m, a, b) ->
    Expr.Sel (gen_std ctx ~disp m, gen_std ctx ~disp a, gen_std ctx ~disp b)
  | Graph.Shift (src, from, to_) -> (
    match direction ~from ~to_ with
    | None -> gen_std ctx ~disp src (* no-op shift *)
    | Some Left ->
      let curr = gen_std ctx ~disp src in
      let next = gen_std ctx ~disp:(disp + ctx.block) src in
      Expr.Shiftpair (curr, next, left_shift_amount ctx ~from ~to_)
    | Some Right ->
      let prev = gen_std ctx ~disp:(disp - ctx.block) src in
      let curr = gen_std ctx ~disp src in
      Expr.Shiftpair (prev, curr, right_shift_amount ctx ~from ~to_))

(** [gen_sp ctx ~disp node] — software-pipelined generation (paper Fig. 10).
    Emits, per shift: a prologue initialization of the [old] carry (the
    "first" value at the first steady iteration), a body assignment of the
    "second" value to [new], and a bottom-of-body copy [old := new]. *)
let rec gen_sp ctx ~disp (n : Graph.node) : Expr.vexpr =
  match n with
  | Graph.Load r -> Expr.Load (Addr.shift_iter (Addr.of_ref r) ~by:disp)
  | Graph.Strided r ->
    (* gathers are not pipelined (their cross-iteration chunk reuse is the
       predictive-commoning pass's job) *)
    gen_gather ctx ~disp r
  | Graph.Splat e -> Expr.Splat e
  | Graph.Op (op, a, b) -> Expr.Op (op, gen_sp ctx ~disp a, gen_sp ctx ~disp b)
  | Graph.Cmp (c, a, b) -> Expr.Cmp (c, gen_sp ctx ~disp a, gen_sp ctx ~disp b)
  | Graph.Sel (m, a, b) ->
    Expr.Sel (gen_sp ctx ~disp m, gen_sp ctx ~disp a, gen_sp ctx ~disp b)
  | Graph.Shift (src, from, to_) -> (
    match direction ~from ~to_ with
    | None -> gen_sp ctx ~disp src
    | Some dir ->
      let first, second, shift =
        match dir with
        | Left ->
          ( gen_std ctx ~disp src,
            gen_sp ctx ~disp:(disp + ctx.block) src,
            left_shift_amount ctx ~from ~to_ )
        | Right ->
          ( gen_std ctx ~disp:(disp - ctx.block) src,
            gen_sp ctx ~disp src,
            right_shift_amount ctx ~from ~to_ )
      in
      let old_t, new_t = Names.fresh_pair ctx.names in
      (* The carry must hold "first" as seen by the first steady iteration
         i = LB; the prologue executes at i = 0, so advance by LB. *)
      push_init ctx (Expr.Assign (old_t, Expr.shift_iter first ~by:ctx.lb));
      push_pre ctx (Expr.Assign (new_t, second));
      push_copy ctx (Expr.Assign (old_t, Expr.Temp new_t));
      Expr.Shiftpair (Expr.Temp old_t, Expr.Temp new_t, shift))

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

(** Per-statement epilogue-leftover correction (see module doc). *)
type store_info = {
  store_addr : Addr.t;
  store_offset_rexpr : Rexpr.t;
  leftover_corr : Rexpr.t;
}

type bounds = { lower : int; upper : Prog.bound }

let epi_splice_elems ~v ~elem ~store_off ~trip =
  (* floor(EpiSplice / D) with EpiSplice = (o + ub*D) mod V   (Eq. 9) *)
  Simd_support.Util.pos_mod (store_off + (trip * elem)) v / elem

let compute_bounds ctx ~(stmts : Ast.stmt list) : bounds =
  let analysis = ctx.analysis in
  let trip_const =
    match analysis.Analysis.program.Ast.loop.Ast.trip with
    | Ast.Trip_const n -> Some n
    | Ast.Trip_param _ -> None
  in
  (* A reduction's value stream is shifted to offset 0 (its "store
     alignment" for bound purposes); an Assign uses its store address
     alignment. *)
  let store_offsets =
    List.map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Reduce _ -> Align.Known 0
        | Ast.Assign -> Analysis.offset_of analysis s.Ast.lhs)
      stmts
  in
  let all_store_known = List.for_all Align.is_known store_offsets in
  (* Eq. 12: LB = B. Upper bound: Eq. 13 when everything is compile-time
     (degenerates to Eq. 11 for a single statement), Eq. 15 otherwise. *)
  let lower = ctx.block in
  let upper =
    match trip_const with
    | Some trip when all_store_known ->
      let max_epi =
        List.fold_left
          (fun acc o ->
            max acc
              (epi_splice_elems ~v:ctx.v ~elem:ctx.elem
                 ~store_off:(Align.known_exn o) ~trip))
          0 store_offsets
      in
      Prog.B_const (trip - max_epi)
    | _ -> Prog.B_trip_minus (ctx.block - 1) (* UB = ub - B + 1   (Eq. 15) *)
  in
  { lower; upper }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let store_info ctx (stmt : Ast.stmt) : store_info =
  let store_addr = Addr.of_ref stmt.Ast.lhs in
  let o = Analysis.offset_of ctx.analysis stmt.Ast.lhs in
  let store_offset_rexpr =
    match o with
    | Align.Known k -> Rexpr.Const k
    | Align.Runtime -> Rexpr.Offset_of store_addr
  in
  { store_addr; store_offset_rexpr; leftover_corr = store_offset_rexpr }

(** Per-statement codegen plan: ordinary store or reduction (extension). *)
type plan = Store_plan of store_info | Reduce_plan of Prog.reduction

let make_plan ctx (stmt : Ast.stmt) : plan =
  match stmt.Ast.kind with
  | Ast.Assign -> Store_plan (store_info ctx stmt)
  | Ast.Reduce op ->
    let acc_temp = Names.fresh ctx.names ~prefix:"acc" in
    let ident_temp = Names.fresh ctx.names ~prefix:"ident" in
    Reduce_plan
      { Prog.acc_temp; ident_temp; red_op = op; acc_ref = stmt.Ast.lhs }

let identity_const ctx (op : Ast.binop) : Ast.expr =
  match
    Ast.reduction_identity op ~ty:(Ast.elem_ty_of_width ctx.elem)
  with
  | Some v -> Ast.Const v
  | None -> invalid_arg "Gen.identity_const: operator has no identity"

(** Prologue statement (Fig. 9, GenSimdStmt-Prologue). For a store: splice
    the new value into the original memory from byte [ProSplice]; a
    compile-time-aligned store needs no splice. For a reduction: initialize
    the identity-splat and vector-accumulator temporaries, then fold in the
    i = 0 block (which is entirely valid — the stream was shifted to offset
    0 and the guard assures trip > 3B ≥ B). Values are always generated
    with the standard (non-pipelined) generator, as in the paper. *)
let gen_prologue_stmt ctx ~(plan : plan) (graph : Graph.t) : Expr.stmt list =
  let value = gen_std ctx ~disp:0 graph.Graph.root in
  let mask = Option.map (gen_std ctx ~disp:0) graph.Graph.mask in
  match plan with
  | Store_plan info -> (
    (* With a mask the prologue store stays splice-protected AND masked:
       lanes before [ProSplice] carry the original memory bytes, so a
       masked write there is a no-op either way, and the peeled iterations
       honour the guard lane-wise — not vacuously. *)
    match (info.store_offset_rexpr, mask) with
    | Rexpr.Const 0, None -> [ Expr.Store (info.store_addr, value) ]
    | Rexpr.Const 0, Some m -> [ Expr.Storem (info.store_addr, value, m) ]
    | point, None ->
      [
        Expr.Store
          (info.store_addr, Expr.Splice (Expr.Load info.store_addr, value, point));
      ]
    | point, Some m ->
      [
        Expr.Storem
          ( info.store_addr,
            Expr.Splice (Expr.Load info.store_addr, value, point),
            m );
      ])
  | Reduce_plan r ->
    [
      Expr.Assign (r.Prog.ident_temp, Expr.Splat (identity_const ctx r.Prog.red_op));
      Expr.Assign (r.Prog.acc_temp, Expr.Temp r.Prog.ident_temp);
      Expr.Assign
        ( r.Prog.acc_temp,
          Expr.Op (r.Prog.red_op, Expr.Temp r.Prog.acc_temp, value) );
    ]

(** Steady-state statement (Fig. 9, GenSimdStmt-Steady), plus any
    pipelining pre-assignments and bottom copies. *)
let gen_steady_stmt ctx ~mode ~(plan : plan) (graph : Graph.t) :
    Expr.stmt list =
  let gen =
    match mode with Standard -> gen_std ctx ~disp:0 | Pipelined -> gen_sp ctx ~disp:0
  in
  let value = gen graph.Graph.root in
  let mask = Option.map gen graph.Graph.mask in
  let core =
    match (plan, mask) with
    | Store_plan info, None -> Expr.Store (info.store_addr, value)
    | Store_plan info, Some m -> Expr.Storem (info.store_addr, value, m)
    | Reduce_plan _, Some _ ->
      (* if_convert rewrites guarded reductions to identity-selects; the
         analysis rejects any survivor before codegen *)
      invalid_arg "Gen.gen_steady_stmt: guarded reduction reached codegen"
    | Reduce_plan r, None ->
      Expr.Assign
        (r.Prog.acc_temp, Expr.Op (r.Prog.red_op, Expr.Temp r.Prog.acc_temp, value))
  in
  take_pre ctx @ [ core ] @ take_copies ctx

(** [leftover info] — remaining store-stream bytes at the current counter:
    [L = (ub - i)*D + corr]. *)
let leftover ctx (info : store_info) : Rexpr.t =
  Rexpr.add
    (Rexpr.mul_const (Rexpr.sub Rexpr.Trip Rexpr.Counter) ctx.elem)
    info.leftover_corr

(** [guard_stores ctx ~infos ~reductions body] — the epilogue template: the
    steady body with every store guarded by its remaining byte count, and
    every reduction accumulation guarded by its remaining element count
    [L = ub - i] (a full block while [L ≥ B]; the final partial block masks
    lanes ≥ L with the operator's identity before accumulating). *)
let guard_stores ctx ~(infos : (string * store_info) list)
    ~(reductions : Prog.reduction list) (body : Expr.stmt list) :
    Expr.stmt list =
  let rec guard s =
    match (s : Expr.stmt) with
    | Expr.Assign (x, Expr.Op (op, Expr.Temp x', value))
      when x = x'
           && List.exists (fun r -> r.Prog.acc_temp = x) reductions ->
      let r = List.find (fun r -> r.Prog.acc_temp = x) reductions in
      let l_elems = Rexpr.sub Rexpr.Trip Rexpr.Counter in
      Expr.If
        ( Rexpr.Ge (l_elems, Rexpr.Const ctx.block),
          [ Expr.Assign (x, Expr.Op (op, Expr.Temp x, value)) ],
          [
            Expr.If
              ( Rexpr.Gt (l_elems, Rexpr.Const 0),
                [
                  Expr.Assign
                    ( x,
                      Expr.Op
                        ( op,
                          Expr.Temp x,
                          Expr.Splice
                            ( value,
                              Expr.Temp r.Prog.ident_temp,
                              Rexpr.mul_const l_elems ctx.elem ) ) );
                ],
                [] );
          ] )
    | Expr.Assign _ -> s
    | Expr.If (c, t, e) -> Expr.If (c, List.map guard t, List.map guard e)
    | Expr.Store (addr, value) ->
      let info =
        match List.assoc_opt addr.Addr.array infos with
        | Some i -> i
        | None -> invalid_arg "Gen.guard_stores: store to unknown array"
      in
      let l = leftover ctx info in
      Expr.If
        ( Rexpr.Ge (l, Rexpr.Const ctx.v),
          [ Expr.Store (addr, value) ],
          [
            Expr.If
              ( Rexpr.Gt (l, Rexpr.Const 0),
                [ Expr.Store (addr, Expr.Splice (value, Expr.Load addr, l)) ],
                [] );
          ] )
    | Expr.Storem (addr, value, mask) ->
      (* masked epilogue store: same splice protection beyond the valid
         bytes; the mask still decides every surviving lane, so peeled
         iterations evaluate the guard — lane-wise — rather than storing
         unconditionally *)
      let info =
        match List.assoc_opt addr.Addr.array infos with
        | Some i -> i
        | None -> invalid_arg "Gen.guard_stores: store to unknown array"
      in
      let l = leftover ctx info in
      Expr.If
        ( Rexpr.Ge (l, Rexpr.Const ctx.v),
          [ Expr.Storem (addr, value, mask) ],
          [
            Expr.If
              ( Rexpr.Gt (l, Rexpr.Const 0),
                [
                  Expr.Storem
                    (addr, Expr.Splice (value, Expr.Load addr, l), mask);
                ],
                [] );
          ] )
  in
  List.map guard body

let dummy_ctx ~(analysis : Analysis.t) =
  let machine = analysis.Analysis.machine in
  {
    analysis;
    names = Names.create ();
    v = Simd_machine.Config.vector_len machine;
    elem = analysis.Analysis.elem;
    block = analysis.Analysis.block;
    lb = analysis.Analysis.block;
    prologue_inits = [];
    body_pre = [];
    body_copies = [];
  }

(** [derive_epilogue ~analysis ~reductions body] — rebuild the guarded
    epilogue template from a (possibly optimized) steady body. Used by the
    driver after the optimization passes rewrite the body. *)
let derive_epilogue ~(analysis : Analysis.t)
    ~(reductions : Prog.reduction list) (body : Expr.stmt list) :
    Expr.stmt list =
  let ctx = dummy_ctx ~analysis in
  let infos =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Assign -> Some (s.Ast.lhs.Ast.ref_array, store_info ctx s)
        | Ast.Reduce _ -> None)
      analysis.Analysis.program.Ast.loop.Ast.body
  in
  guard_stores ctx ~infos ~reductions body

(** [finalize_reductions ~analysis ~names reductions] — the statements run
    once after the last epilogue iteration, per reduction:

    + horizontal reduction: [log2 B] rotate-and-combine rounds
      ([vshiftpair(acc, acc, h)] for h = V/2, V/4, …, D) leave the total in
      {e every} lane;
    + merge with the accumulator cell's initial memory value (the scalar
      semantics is [acc = acc ⊕ Σ]), lane-wise against the loaded chunk;
    + write back only the accumulator's D bytes via two [vsplice]s, so
      neighbouring memory is untouched. *)
let finalize_reductions ~(analysis : Analysis.t) ~(names : Names.t)
    (reductions : Prog.reduction list) : Expr.stmt list =
  let v = Simd_machine.Config.vector_len analysis.Analysis.machine in
  let elem = analysis.Analysis.elem in
  List.concat_map
    (fun (r : Prog.reduction) ->
      let acc = r.Prog.acc_temp in
      let addr =
        {
          Addr.array = r.Prog.acc_ref.Ast.ref_array;
          offset = r.Prog.acc_ref.Ast.ref_offset;
          scale = 0;
        }
      in
      let off : Rexpr.t =
        match Analysis.offset_of analysis r.Prog.acc_ref with
        | Align.Known k -> Rexpr.Const k
        | Align.Runtime -> Rexpr.Offset_of addr
      in
      let rec rounds h acc_stmts =
        if h < elem then List.rev acc_stmts
        else
          rounds (h / 2)
            (Expr.Assign
               ( acc,
                 Expr.Op
                   ( r.Prog.red_op,
                     Expr.Temp acc,
                     Expr.Shiftpair (Expr.Temp acc, Expr.Temp acc, Rexpr.Const h)
                   ) )
            :: acc_stmts)
      in
      let horizontal = rounds (v / 2) [] in
      let t_old = Names.fresh names ~prefix:"red" in
      let t_comb = Names.fresh names ~prefix:"red" in
      let t_mask = Names.fresh names ~prefix:"red" in
      horizontal
      @ [
          Expr.Assign (t_old, Expr.Load addr);
          Expr.Assign
            (t_comb, Expr.Op (r.Prog.red_op, Expr.Temp t_old, Expr.Temp acc));
          Expr.Assign
            (t_mask, Expr.Splice (Expr.Temp t_old, Expr.Temp t_comb, off));
          Expr.Store
            ( addr,
              Expr.Splice
                (Expr.Temp t_mask, Expr.Temp t_old, Rexpr.add off (Rexpr.Const elem))
            );
        ])
    reductions

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** [generate ~analysis ~names ~mode graphs] — produce the simdized program
    for the analyzed loop, one data reorganization graph per body statement
    (in order). The epilogue is left as the guarded body template;
    {!Passes.specialize_epilogue} can fold it for compile-time trip counts.

    Fails with [Trip_too_small] when a compile-time trip count cannot cover
    prologue + one steady iteration + epilogue (trip must exceed [3B],
    §4.4). *)
let generate ~(analysis : Analysis.t) ~(names : Names.t) ~(mode : mode)
    (graphs : (Ast.stmt * Graph.t) list) : (Prog.t, error) result =
  let program = analysis.Analysis.program in
  let machine = analysis.Analysis.machine in
  let v = Simd_machine.Config.vector_len machine in
  let min_trip = 3 * analysis.Analysis.block in
  try
    (match program.Ast.loop.Ast.trip with
    | Ast.Trip_const n when n <= min_trip ->
      raise (Failed (Trip_too_small { trip = n; needed = min_trip }))
    | _ -> ());
    let ctx =
      {
        analysis;
        names;
        v;
        elem = analysis.Analysis.elem;
        block = analysis.Analysis.block;
        lb = 0 (* patched below once bounds are known *);
        prologue_inits = [];
        body_pre = [];
        body_copies = [];
      }
    in
    let stmts = List.map fst graphs in
    let b = compute_bounds ctx ~stmts in
    let ctx = { ctx with lb = b.lower } in
    let plans =
      List.map
        (fun (s : Ast.stmt) -> (s.Ast.lhs.Ast.ref_array, make_plan ctx s))
        stmts
    in
    let plan_of (s : Ast.stmt) = List.assoc s.Ast.lhs.Ast.ref_array plans in
    let infos =
      List.filter_map
        (fun (name, p) ->
          match p with Store_plan i -> Some (name, i) | Reduce_plan _ -> None)
        plans
    in
    let reductions =
      List.filter_map
        (fun (_, p) ->
          match p with Reduce_plan r -> Some r | Store_plan _ -> None)
        plans
    in
    (* Prologue statements (standard generation, i = 0). *)
    let prologue_stmts =
      List.concat_map
        (fun (s, g) -> gen_prologue_stmt ctx ~plan:(plan_of s) g)
        graphs
    in
    (* Steady body (flushes pipelining pre/copies per statement, and collects
       pipelining prologue inits in ctx). *)
    let body =
      List.concat_map
        (fun (s, g) -> gen_steady_stmt ctx ~mode ~plan:(plan_of s) g)
        graphs
    in
    let prologue = prologue_stmts @ List.rev ctx.prologue_inits in
    let epilogue = guard_stores ctx ~infos ~reductions body in
    Ok
      {
        Prog.source = program;
        machine;
        elem = ctx.elem;
        block = ctx.block;
        unroll = 1;
        prologue;
        lower = b.lower;
        upper = b.upper;
        body;
        epilogues = [ epilogue; epilogue ];
        min_trip;
        reductions;
      }
  with Failed e -> Error e
