(** Vector-length-agnostic retargeting (Revec's rejuvenation premise):
    re-instantiate one placed compilation at a different vector length
    without rerunning shift placement.

    The placement decisions of {!Driver.simdize} — which reorganization
    chains exist and where the shifts sit — are structural and largely
    V-independent; what changes with V are the numeric stream offsets
    ([(base + offset·D) mod V]), the blocking factor B = V/D, and every
    bound formula derived from them (Eqs. 8–16). Retargeting therefore:

    - re-runs only the {e analysis} at V′ (alignments, blocking factor,
      legality — e.g. V′ may exceed an array's base alignment);
    - walks each placed graph top-down, keeping its shift {e structure}
      and recomputing every endpoint offset at V′. A leaf whose natural
      V′-offset no longer meets its context's requirement gets one repair
      shift; a shift that became a no-op at V′ is dropped;
    - falls back to a fresh per-statement placement ({!Simd_opt.Place},
      [Replaced]) only when the preserved structure cannot be lowered at
      V′ (e.g. a repair would need an unsupported runtime→runtime
      reorganization);
    - regenerates code with {!Gen.generate} and the full
      {!Driver.run_passes} pipeline — the peel amounts and Eqs. 8–16
      bounds are recomputed for free — and discharges the retargeted
      obligations with {!Simd_check.Check}.

    The subtle part is that offset equalities do not survive widening:
    offsets 4 and 20 coincide mod 16 but differ mod 32, so a shift chain
    that was a no-op at V = 16 may be load-bearing at V′ = 32 (and vice
    versa). The top-down rebuild handles both directions: the context
    requirement is re-derived at V′ at every node, so shifts are kept,
    dropped, or inserted exactly where the V′ offsets demand. *)

open Simd_loopir
module Policy = Simd_dreorg.Policy
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module Trace = Simd_trace.Trace
module Check = Simd_check.Check
module Machine = Simd_machine.Config
module Json = Simd_support.Json

(** How one statement's graph survived the retarget. *)
type status =
  | Preserved  (** structure unchanged; only offsets renumbered *)
  | Repaired of int  (** kept, with [n] repair shifts inserted/dropped *)
  | Replaced of Policy.t
      (** structure not lowerable at V′ — re-placed with this policy *)

let status_name = function
  | Preserved -> "preserved"
  | Repaired _ -> "repaired"
  | Replaced _ -> "replaced"

let pp_status fmt = function
  | Preserved -> Format.pp_print_string fmt "preserved"
  | Repaired n -> Format.fprintf fmt "repaired(%d)" n
  | Replaced p -> Format.fprintf fmt "replaced(%s)" (Policy.name p)

type t = {
  outcome : Driver.outcome;
  statuses : status list;
  from_vl : int;
  to_vl : int;
}

let supported_vls = [ 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Graph re-instantiation                                              *)
(* ------------------------------------------------------------------ *)

exception Unsupported of string

(* A compile-time offset renumbered at V′. Offsets recorded in a placed
   graph are canonical ([0, V)); widening keeps them, narrowing wraps. *)
let map_offset ~vl (o : Offset.t) =
  match o with
  | Offset.Known k -> Offset.Known (((k mod vl) + vl) mod vl)
  | Offset.Runtime _ | Offset.Any -> o

(* The stream-shift directions {!Gen} can lower (§4.4): compile-time on
   both ends, or runtime paired with offset 0 (vshiftleft/vshiftright by a
   runtime amount). Anything else must be re-placed. *)
let supported_direction ~from ~to_ =
  match (from, to_) with
  | Offset.Known _, Offset.Known _ -> true
  | Offset.Runtime _, Offset.Known 0 -> true
  | Offset.Known 0, Offset.Runtime _ -> true
  | _ -> false

let leaf_offset ~analysis (n : Graph.node) =
  match n with
  | Graph.Load r -> Offset.of_align (Analysis.offset_of analysis r) ~ref_:r
  | Graph.Strided _ -> Offset.Known 0
  | Graph.Splat _ -> Offset.Any
  | Graph.Op _ | Graph.Cmp _ | Graph.Sel _ | Graph.Shift _ ->
    invalid_arg "Retarget.leaf_offset: not a leaf"

let is_leaf = function
  | Graph.Load _ | Graph.Strided _ | Graph.Splat _ -> true
  | Graph.Op _ | Graph.Cmp _ | Graph.Sel _ | Graph.Shift _ -> false

let unsupported from to_ =
  raise
    (Unsupported
       (Format.asprintf "cannot reorganize stream %a -> %a" Offset.pp from
          Offset.pp to_))

(* Rebuild a placed subtree against the context requirement [req] (the
   offset this subtree must produce at V′). [repairs] counts structural
   edits — shifts inserted at leaves or dropped as V′ no-ops. *)
let rec rebuild ~analysis ~block ~vl ~repairs (n : Graph.node)
    (req : Offset.t) : Graph.node =
  match n with
  | Graph.Splat _ -> n (* offset ⊥ satisfies every requirement (Eq. 6) *)
  | Graph.Load _ | Graph.Strided _ ->
    let from = leaf_offset ~analysis n in
    if Offset.matches ~block from req then n
    else if supported_direction ~from ~to_:req then begin
      incr repairs;
      Graph.Shift (n, from, req)
    end
    else unsupported from req
  | Graph.Op (op, a, b) ->
    (* (C.3): both operands must produce the context offset. *)
    Graph.Op
      ( op,
        rebuild ~analysis ~block ~vl ~repairs a req,
        rebuild ~analysis ~block ~vl ~repairs b req )
  | Graph.Cmp (c, a, b) ->
    Graph.Cmp
      ( c,
        rebuild ~analysis ~block ~vl ~repairs a req,
        rebuild ~analysis ~block ~vl ~repairs b req )
  | Graph.Sel (m, a, b) ->
    (* (C.3) is ternary for vsel: mask and both arms at the context offset. *)
    Graph.Sel
      ( rebuild ~analysis ~block ~vl ~repairs m req,
        rebuild ~analysis ~block ~vl ~repairs a req,
        rebuild ~analysis ~block ~vl ~repairs b req )
  | Graph.Shift (src, from_old, _) ->
    (* The shift absorbs the requirement: its source is rebuilt against
       the old intermediate offset renumbered at V′ (leaves instead keep
       their natural offset — the shift's [from] end is recomputed from
       whatever the source now produces). *)
    let src' =
      if is_leaf src then src
      else rebuild ~analysis ~block ~vl ~repairs src (map_offset ~vl from_old)
    in
    let from = Graph.offset_of ~analysis src' in
    if Offset.is_any from then src' (* splat-only subtree: shift is moot *)
    else if Offset.matches ~block from req then begin
      incr repairs;
      (* no-op at V′ *)
      src'
    end
    else if supported_direction ~from ~to_:req then Graph.Shift (src', from, req)
    else unsupported from req

(* One statement: preserve/repair the placed graph, or re-place it. *)
let retarget_graph ~analysis ~fallback (stmt : Ast.stmt) (g : Graph.t) :
    Graph.t * status =
  let block = analysis.Analysis.block in
  let vl = Machine.vector_len analysis.Analysis.machine in
  let target = Policy.target_offset ~analysis stmt in
  let replace () =
    let p = Simd_opt.Place.place_with_fallback fallback ~analysis stmt in
    (p.Simd_opt.Place.graph, Replaced p.Simd_opt.Place.used)
  in
  let repairs = ref 0 in
  match
    (* The mask stream is renumbered exactly like the value stream: it must
       reach the store offset at V′ (the (C.2) analogue for masks). *)
    ( rebuild ~analysis ~block ~vl ~repairs g.Graph.root target,
      Option.map
        (fun m -> rebuild ~analysis ~block ~vl ~repairs m target)
        g.Graph.mask )
  with
  | exception (Unsupported _ | Graph.Invalid _) -> replace ()
  | root, mask -> (
    let g' =
      { Graph.store = stmt.Ast.lhs; store_offset = target; root; block; mask }
    in
    match Graph.validate ~analysis g' with
    | Ok () -> (g', if !repairs = 0 then Preserved else Repaired !repairs)
    | Error _ -> replace ())

(* ------------------------------------------------------------------ *)
(* Whole-compilation retarget                                          *)
(* ------------------------------------------------------------------ *)

let generate_and_optimize ~trace ~check ~analysis (config : Driver.config)
    placed =
  let graphs = List.map (fun (s, g, _, _) -> (s, g)) placed in
  let checks = ref [] in
  let record name r = checks := (name, r) :: !checks in
  if check then record "retarget-placement" (Check.check_graphs ~analysis graphs);
  let mode =
    match config.Driver.reuse with
    | Driver.Software_pipelining -> Gen.Pipelined
    | Driver.No_reuse | Driver.Predictive_commoning -> Gen.Standard
  in
  let names = Names.create () in
  match Gen.generate ~analysis ~names ~mode graphs with
  | Error e -> Error e
  | Ok prog ->
    let prog = Driver.run_passes ~trace config ~analysis prog in
    if check then
      record "retarget-final"
        (Check.check_prog ~loads_normalized:config.Driver.memnorm ~analysis
           prog);
    let shared =
      Simd_opt.Joint.shared_streams ~analysis (List.map snd graphs)
    in
    Ok
      {
        Driver.prog;
        analysis;
        graphs;
        policies_used = List.map (fun (_, _, _, p) -> p) placed;
        shared_streams = shared;
        config;
        checks = List.rev !checks;
      }

let retarget ?(trace = Trace.none) ?(check = true) ~vector_len
    (o : Driver.outcome) : (t, Driver.reason) result =
  let from_vl = Machine.vector_len o.Driver.config.Driver.machine in
  let machine =
    Machine.with_costs
      (Machine.costs o.Driver.config.Driver.machine)
      (Machine.create ~vector_len)
  in
  (* Peeling applicability is V-dependent; a retarget never re-asserts the
     baseline's claim. *)
  let config = { o.Driver.config with Driver.machine; peel_baseline = false } in
  (* [o.analysis.program] is the program the graphs were placed for
     (post-reassociation when that ran), so placement inputs line up. *)
  let program = o.Driver.analysis.Analysis.program in
  match Analysis.check ~machine program with
  | Error e -> Error (Driver.Illegal e)
  | Ok analysis -> (
    let fallback =
      (* [Joint] is a whole-body placement; the per-statement fallback
         uses the exact solver instead. *)
      match config.Driver.policy with
      | Policy.Joint -> Policy.Optimal
      | p -> p
    in
    let retarget_stmt (stmt, g) used =
      let g', status = retarget_graph ~analysis ~fallback stmt g in
      let used' = match status with Replaced p -> p | _ -> used in
      (stmt, g', status, used')
    in
    let placed = List.map2 retarget_stmt o.Driver.graphs o.Driver.policies_used in
    let finish placed =
      match generate_and_optimize ~trace ~check ~analysis config placed with
      | Error (Gen.Trip_too_small { trip; needed }) ->
        `Scalar (Driver.Trip_too_small { trip; needed })
      | Error (Gen.Unsupported_shift msg) -> `Unsupported msg
      | Ok outcome ->
        `Done
          {
            outcome;
            statuses = List.map (fun (_, _, st, _) -> st) placed;
            from_vl;
            to_vl = vector_len;
          }
    in
    (* First try the preserved/repaired graphs; if lowering still rejects
       a shift direction (a preserved structure [Gen] cannot lower at V′),
       re-place every statement — the same totality the driver relies
       on. *)
    match finish placed with
    | `Done t -> Ok t
    | `Scalar r -> Error r
    | `Unsupported _ -> (
      let replaced =
        List.map
          (fun (stmt, _, _, _) ->
            let p = Simd_opt.Place.place_with_fallback fallback ~analysis stmt in
            ( stmt,
              p.Simd_opt.Place.graph,
              Replaced p.Simd_opt.Place.used,
              p.Simd_opt.Place.used ))
          placed
      in
      match finish replaced with
      | `Done t -> Ok t
      | `Scalar r -> Error r
      | `Unsupported msg ->
        invalid_arg ("Retarget.retarget: unexpected shift failure: " ^ msg)))

let retarget_exn ?trace ?check ~vector_len o =
  match retarget ?trace ?check ~vector_len o with
  | Ok t -> t
  | Error r ->
    invalid_arg (Format.asprintf "Retarget.retarget_exn: %a" Driver.pp_reason r)

let sweep ?trace ?check ?(vector_lens = supported_vls) (o : Driver.outcome) =
  List.map (fun vl -> (vl, retarget ?trace ?check ~vector_len:vl o)) vector_lens

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let counts (t : t) =
  List.fold_left
    (fun (p, r, x) -> function
      | Preserved -> (p + 1, r, x)
      | Repaired _ -> (p, r + 1, x)
      | Replaced _ -> (p, r, x + 1))
    (0, 0, 0) t.statuses

let error_violations (t : t) =
  List.filter
    (fun (_, (v : Check.violation)) -> v.Check.severity = Check.Error)
    (Driver.check_violations t.outcome)

let to_json (t : t) =
  let preserved, repaired, replaced = counts t in
  let report = Driver.report t.outcome in
  Json.Obj
    [
      ("from_vl", Json.Int t.from_vl);
      ("to_vl", Json.Int t.to_vl);
      ( "statuses",
        Json.List
          (List.map
             (fun st -> Json.String (Format.asprintf "%a" pp_status st))
             t.statuses) );
      ("preserved", Json.Int preserved);
      ("repaired", Json.Int repaired);
      ("replaced", Json.Int replaced);
      ("check_errors", Json.Int (List.length (error_violations t)));
      ("cost", Json.Float report.Simd_opt.Report.total_cost);
      ("body_cost", Json.Float report.Simd_opt.Report.body_cost);
    ]
