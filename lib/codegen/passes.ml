(** Post-generation optimization passes (paper §5.5's code-generation
    optimizations).

    - {b Splat hoisting}: loop-invariant [vsplat]s move to the prologue
      (standard LICM; real back ends always do this).
    - {b MemNorm}: vector-load addresses are normalized to their
      [V]-aligned truncations, so loads that touch the same chunk become
      syntactically identical and ordinary redundancy elimination catches
      them.
    - {b CSE}: local value numbering over a statement region, lowering the
      region to three-address form. Values are keyed with per-temporary and
      per-array-memory versions, so software-pipelining's mutated carries and
      stores are handled soundly without pessimistic kills.
    - {b PC (Predictive Commoning)}: cross-iteration reuse — a load at
      element offset [c] equals the load at offset [c + B] from the previous
      iteration (their addresses are identical), so it becomes a carried
      temporary initialized in the prologue and refreshed by a
      bottom-of-loop copy. This is the "more general TPO optimization" the
      paper leans on as the alternative to software-pipelined generation.
    - {b Epilogue specialization}: for compile-time trip counts the guarded
      epilogue template folds to straight-line stores (and dead guard arms,
      loads and copies disappear). *)

open Simd_loopir
open Simd_vir

(* ------------------------------------------------------------------ *)
(* Splat hoisting                                                      *)
(* ------------------------------------------------------------------ *)

(** [hoist_splats ~names ~prologue ~body] — replace every [Splat e] in
    [body] (and in [prologue], which may share the expressions) by a
    temporary assigned once at the head of the prologue. *)
let hoist_splats ~(names : Names.t) ~prologue ~body =
  let table : (Ast.expr * string) list ref = ref [] in
  let temp_for e =
    match List.find_opt (fun (e', _) -> Ast.equal_expr e e') !table with
    | Some (_, t) -> t
    | None ->
      let t = Names.fresh names ~prefix:"splat" in
      table := (e, t) :: !table;
      t
  in
  let rec rewrite (x : Expr.vexpr) : Expr.vexpr =
    match x with
    | Expr.Splat e -> Expr.Temp (temp_for e)
    | Expr.Load _ | Expr.Temp _ -> x
    | Expr.Op (op, a, b) -> Expr.Op (op, rewrite a, rewrite b)
    | Expr.Shiftpair (a, b, s) -> Expr.Shiftpair (rewrite a, rewrite b, s)
    | Expr.Splice (a, b, p) -> Expr.Splice (rewrite a, rewrite b, p)
    | Expr.Pack (a, b) -> Expr.Pack (rewrite a, rewrite b)
    | Expr.Cmp (c, a, b) -> Expr.Cmp (c, rewrite a, rewrite b)
    | Expr.Sel (m, a, b) -> Expr.Sel (rewrite m, rewrite a, rewrite b)
  in
  let body = Expr.map_stmts_exprs rewrite body in
  let prologue = Expr.map_stmts_exprs rewrite prologue in
  let inits =
    List.rev_map (fun (e, t) -> Expr.Assign (t, Expr.Splat e)) !table
  in
  (inits @ prologue, body)

(* ------------------------------------------------------------------ *)
(* Memory normalization                                                *)
(* ------------------------------------------------------------------ *)

(** [memnorm ~analysis stmts] — rewrite each load address [&a\[i+c\]] whose
    stream offset [o] is compile-time to [&a\[i + c - o/D\]], the address of
    the [V]-aligned chunk the truncating load actually reads. Sound because
    the generated code only evaluates addresses at counter values ≡ 0
    (mod B), where the truncation drop is exactly [o]. Store addresses are
    left alone (normalizing them enables no reuse). *)
let memnorm ~(analysis : Analysis.t) stmts =
  let elem = analysis.Analysis.elem in
  let norm (a : Addr.t) : Addr.t =
    let r = { Ast.ref_array = a.Addr.array; ref_offset = a.Addr.offset; ref_stride = 1 } in
    match Align.of_ref ~machine:analysis.Analysis.machine
            ~program:analysis.Analysis.program r
    with
    | Align.Known o -> { a with Addr.offset = a.Addr.offset - (o / elem) }
    | Align.Runtime -> a
  in
  let rec rewrite (x : Expr.vexpr) : Expr.vexpr =
    match x with
    | Expr.Load a -> Expr.Load (norm a)
    | Expr.Splat _ | Expr.Temp _ -> x
    | Expr.Op (op, a, b) -> Expr.Op (op, rewrite a, rewrite b)
    | Expr.Shiftpair (a, b, s) -> Expr.Shiftpair (rewrite a, rewrite b, s)
    | Expr.Splice (a, b, p) -> Expr.Splice (rewrite a, rewrite b, p)
    | Expr.Pack (a, b) -> Expr.Pack (rewrite a, rewrite b)
    | Expr.Cmp (c, a, b) -> Expr.Cmp (c, rewrite a, rewrite b)
    | Expr.Sel (m, a, b) -> Expr.Sel (rewrite m, rewrite a, rewrite b)
  in
  Expr.map_stmts_exprs rewrite stmts

(* ------------------------------------------------------------------ *)
(* Common subexpression elimination (local value numbering)            *)
(* ------------------------------------------------------------------ *)

module Lvn = struct
  type t = {
    names : Names.t;
    values : (string, string) Hashtbl.t;  (** canonical key → temp holding it *)
    temp_version : (string, int) Hashtbl.t;
    mem_version : (string, int) Hashtbl.t;  (** array → store count *)
    mutable out : Expr.stmt list;  (** reversed *)
  }

  let create names =
    {
      names;
      values = Hashtbl.create 64;
      temp_version = Hashtbl.create 16;
      mem_version = Hashtbl.create 16;
      out = [];
    }

  let emit t s = t.out <- s :: t.out

  let tver t name =
    match Hashtbl.find_opt t.temp_version name with Some v -> v | None -> 0

  let mver t arr =
    match Hashtbl.find_opt t.mem_version arr with Some v -> v | None -> 0

  let bump_temp t name = Hashtbl.replace t.temp_version name (tver t name + 1)
  let bump_mem t arr = Hashtbl.replace t.mem_version arr (mver t arr + 1)

  (* Canonical value keys embed temp and memory versions, so assignments to
     a carried temporary or stores to an array automatically retire stale
     equivalences — no explicit invalidation scans. *)
  let addr_key (a : Addr.t) =
    Printf.sprintf "%s[%s%d]" a.Addr.array
      (match a.Addr.scale with 0 -> "" | 1 -> "i+" | s -> Printf.sprintf "%d*i+" s)
      a.Addr.offset

  let rexpr_key (r : Rexpr.t) = Rexpr.show r

  (* [value t e] returns (key, value-id). The value-id of a temp includes
     its version; the value-id of a computed node is the temp that holds it
     after lowering. *)
  let rec lower t (e : Expr.vexpr) : string * Expr.vexpr =
    (* returns (value-id, atom) where atom is [Temp _] or a leaf usable as
       an operand *)
    match e with
    | Expr.Temp x -> (Printf.sprintf "%s@%d" x (tver t x), e)
    | _ ->
      let key, rebuilt = key_and_rebuild t e in
      (match Hashtbl.find_opt t.values key with
      | Some temp -> (Printf.sprintf "%s@%d" temp (tver t temp), Expr.Temp temp)
      | None ->
        let temp = Names.fresh t.names ~prefix:"t" in
        emit t (Expr.Assign (temp, rebuilt));
        Hashtbl.replace t.values key temp;
        (Printf.sprintf "%s@%d" temp (tver t temp), Expr.Temp temp))

  and key_and_rebuild t (e : Expr.vexpr) : string * Expr.vexpr =
    match e with
    | Expr.Temp _ -> assert false
    | Expr.Load a ->
      ( Printf.sprintf "load(%s)#m%d" (addr_key a) (mver t a.Addr.array),
        Expr.Load a )
    | Expr.Splat s -> (Printf.sprintf "splat(%s)" (Pp.expr_to_string s), Expr.Splat s)
    | Expr.Op (op, a, b) ->
      let ka, va = lower t a in
      let kb, vb = lower t b in
      ( Printf.sprintf "%s(%s,%s)" (Simd_machine.Lane.binop_name op) ka kb,
        Expr.Op (op, va, vb) )
    | Expr.Shiftpair (a, b, s) ->
      let ka, va = lower t a in
      let kb, vb = lower t b in
      ( Printf.sprintf "shiftpair(%s,%s,%s)" ka kb (rexpr_key s),
        Expr.Shiftpair (va, vb, s) )
    | Expr.Splice (a, b, p) ->
      let ka, va = lower t a in
      let kb, vb = lower t b in
      ( Printf.sprintf "splice(%s,%s,%s)" ka kb (rexpr_key p),
        Expr.Splice (va, vb, p) )
    | Expr.Pack (a, b) ->
      let ka, va = lower t a in
      let kb, vb = lower t b in
      (Printf.sprintf "pack(%s,%s)" ka kb, Expr.Pack (va, vb))
    | Expr.Cmp (c, a, b) ->
      let ka, va = lower t a in
      let kb, vb = lower t b in
      ( Printf.sprintf "cmp_%s(%s,%s)" (Simd_machine.Lane.cmp_name c) ka kb,
        Expr.Cmp (c, va, vb) )
    | Expr.Sel (m, a, b) ->
      let km, vm = lower t m in
      let ka, va = lower t a in
      let kb, vb = lower t b in
      (Printf.sprintf "sel(%s,%s,%s)" km ka kb, Expr.Sel (vm, va, vb))

  let rec stmt t (s : Expr.stmt) =
    match s with
    | Expr.Assign (x, Expr.Temp y) ->
      (* explicit copy (software-pipelining carry): keep as-is *)
      emit t (Expr.Assign (x, Expr.Temp y));
      bump_temp t x
    | Expr.Assign (x, e) ->
      let key, rebuilt = key_and_rebuild t e in
      (match Hashtbl.find_opt t.values key with
      | Some temp when temp <> x ->
        emit t (Expr.Assign (x, Expr.Temp temp));
        bump_temp t x
      | _ ->
        emit t (Expr.Assign (x, rebuilt));
        bump_temp t x;
        Hashtbl.replace t.values key x)
    | Expr.Store (addr, e) ->
      let _, atom = lower t e in
      emit t (Expr.Store (addr, atom));
      bump_mem t addr.Addr.array
    | Expr.Storem (addr, e, m) ->
      let _, atom = lower t e in
      let _, matom = lower t m in
      emit t (Expr.Storem (addr, atom, matom));
      bump_mem t addr.Addr.array
    | Expr.If (c, th, el) ->
      (* Conditionals only occur in epilogue templates; value-number the
         branches independently and retire everything afterwards. *)
      let saved = Hashtbl.copy t.values in
      let run branch =
        let sub = { t with values = Hashtbl.copy saved; out = [] } in
        List.iter (stmt sub) branch;
        List.rev sub.out
      in
      let th' = run th in
      let el' = run el in
      Hashtbl.reset t.values;
      emit t (Expr.If (c, th', el'))

  let run ~names stmts =
    let t = create names in
    List.iter (stmt t) stmts;
    List.rev t.out
end

(** [cse ~names stmts] — lower a region to three-address form with local
    value numbering; repeated loads/operations collapse to one temporary. *)
let cse ~names stmts = Lvn.run ~names stmts

(* ------------------------------------------------------------------ *)
(* Predictive commoning                                                *)
(* ------------------------------------------------------------------ *)

let used_temps_expr acc (e : Expr.vexpr) =
  Expr.fold_vexpr
    (fun acc n -> match n with Expr.Temp t -> t :: acc | _ -> acc)
    acc e

(** [predictive_commoning ~block ~lb ~prologue body] — cross-iteration value
    reuse on a three-address body (run {!cse} first).

    Every top-level temporary is expanded to its temporary-free value tree
    (splat temporaries defined in the prologue expand back to their [Splat]
    payloads). When [expand t_a] advanced one simdized iteration equals
    [expand t_b] — i.e. [t_a]'s value this iteration is exactly [t_b]'s
    value of the previous iteration — [t_a]'s computation is deleted and
    replaced by a loop-carried copy: the prologue initializes
    [t_a := expand t_a] advanced to the first steady iteration [LB], and a
    bottom-of-loop copy [t_a := t_b] refreshes it. Computations orphaned by
    the deletions are swept by a liveness pass. This covers both reused
    loads and reused shifted/combined values, which is what lets the
    zero-shift policy recover (the paper's ZERO-pc configuration).

    Returns [(prologue_inits, body')]. *)
let predictive_commoning ~(block : int) ~(lb : int)
    ~(prologue : Expr.stmt list) (body : Expr.stmt list) :
    Expr.stmt list * Expr.stmt list =
  (* Splat temporaries live in the prologue; expansion needs their payloads. *)
  let splat_defs =
    List.filter_map
      (function Expr.Assign (t, (Expr.Splat _ as e)) -> Some (t, e) | _ -> None)
      prologue
  in
  (* Only single-assignment temporaries have a stable per-iteration value
     tree. A multiply-assigned temp (a pipelining carry: prologue init plus
     bottom-of-loop copy) denotes the *previous* iteration's value, so
     expanding through its copy would be unsound. *)
  let assign_count t =
    List.length
      (List.filter
         (function Expr.Assign (t', _) -> t' = t | _ -> false)
         (prologue @ body))
  in
  let defs =
    List.filter_map
      (function
        | Expr.Assign (t, e) when assign_count t = 1 -> Some (t, e)
        | _ -> None)
      body
  in
  (* Expand a temp to a temp-free tree; [None] when it depends on a temp
     with no visible pure definition (e.g. a pipelining carry), or when the
     expanded tree exceeds a size budget — value numbering shares subtrees,
     so expansion can blow up exponentially on doubling expressions like
     ((x+x)+(x+x))+…; such temporaries simply stay uncarried. *)
  let budget = 4096 in
  let rec size (e : Expr.vexpr) =
    match e with
    | Expr.Temp _ | Expr.Load _ | Expr.Splat _ -> 1
    | Expr.Op (_, a, b)
    | Expr.Shiftpair (a, b, _)
    | Expr.Splice (a, b, _)
    | Expr.Pack (a, b)
    | Expr.Cmp (_, a, b) ->
      let sa = size a in
      if sa > budget then sa else sa + size b + 1
    | Expr.Sel (m, a, b) ->
      let sm = size m in
      if sm > budget then sm
      else
        let sa = size a in
        if sa > budget then sa else sm + sa + size b + 1
  in
  let cache : (string, Expr.vexpr option) Hashtbl.t = Hashtbl.create 16 in
  let rec expand_temp t : Expr.vexpr option =
    match Hashtbl.find_opt cache t with
    | Some r -> r
    | None ->
      Hashtbl.add cache t None (* cycle guard: carried temps expand to None *);
      let r =
        match List.assoc_opt t splat_defs with
        | Some e -> Some e
        | None -> (
          match List.assoc_opt t defs with
          | Some e -> expand e
          | None -> None)
      in
      let r =
        match r with
        | Some tree when size tree > budget -> None
        | r -> r
      in
      Hashtbl.replace cache t r;
      r
  and expand (e : Expr.vexpr) : Expr.vexpr option =
    match e with
    | Expr.Temp t -> expand_temp t
    | Expr.Load _ | Expr.Splat _ -> Some e
    | Expr.Op (op, a, b) -> (
      match (expand a, expand b) with
      | Some a', Some b' -> Some (Expr.Op (op, a', b'))
      | _ -> None)
    | Expr.Shiftpair (a, b, s) -> (
      match (expand a, expand b) with
      | Some a', Some b' -> Some (Expr.Shiftpair (a', b', s))
      | _ -> None)
    | Expr.Splice (a, b, p) -> (
      match (expand a, expand b) with
      | Some a', Some b' -> Some (Expr.Splice (a', b', p))
      | _ -> None)
    | Expr.Pack (a, b) -> (
      match (expand a, expand b) with
      | Some a', Some b' -> Some (Expr.Pack (a', b'))
      | _ -> None)
    | Expr.Cmp (c, a, b) -> (
      match (expand a, expand b) with
      | Some a', Some b' -> Some (Expr.Cmp (c, a', b'))
      | _ -> None)
    | Expr.Sel (m, a, b) -> (
      match (expand m, expand a, expand b) with
      | Some m', Some a', Some b' -> Some (Expr.Sel (m', a', b'))
      | _ -> None)
  in
  let expanded =
    List.filter_map
      (fun (t, _) ->
        match expand_temp t with Some tree -> Some (t, tree) | None -> None)
      defs
  in
  (* Invariant values (no loads) never change across iterations; carrying
     them is pointless (splats are already hoisted). *)
  let has_load tree =
    Expr.fold_vexpr (fun acc n -> acc || Expr.is_load n) false tree
  in
  (* t_a is carried from t_b when expand(t_a)@(i+B) = expand(t_b)@i. *)
  let carried =
    List.filter_map
      (fun (t_a, tree_a) ->
        if not (has_load tree_a) then None
        else
          let advanced = Expr.shift_iter tree_a ~by:block in
          List.find_map
            (fun (t_b, tree_b) ->
              if t_b <> t_a && Expr.equal_vexpr advanced tree_b then
                Some (t_a, tree_a, t_b)
              else None)
            expanded)
      expanded
  in
  if carried = [] then ([], body)
  else begin
    let carried_names = List.map (fun (t, _, _) -> t) carried in
    let body' =
      List.filter
        (function
          | Expr.Assign (t, _) when List.mem t carried_names -> false
          | _ -> true)
        body
    in
    (* Orphan sweep: drop assigns whose temps are no longer read by any
       surviving statement or carried copy. *)
    let carry_sources = List.map (fun (_, _, t_b) -> t_b) carried in
    let rec sweep body' =
      let read =
        Expr.fold_stmts (fun acc e -> used_temps_expr acc e) carry_sources body'
      in
      let body'' =
        List.filter
          (function
            | Expr.Assign (t, _) -> List.mem t read || List.mem t carried_names
            | _ -> true)
          body'
      in
      if List.length body'' = List.length body' then body' else sweep body''
    in
    let body' = sweep body' in
    (* Bottom copies in dependency order: if t_a carries from t_b and t_b
       itself carries from t_c, copy t_a := t_b before t_b := t_c. *)
    let rank t =
      (* chain depth: number of carry steps reachable from t *)
      let rec go t seen =
        match List.find_opt (fun (a, _, _) -> a = t) carried with
        | Some (_, _, b) when not (List.mem t seen) -> 1 + go b (t :: seen)
        | _ -> 0
      in
      go t []
    in
    let copies =
      carried
      |> List.sort (fun (a1, _, _) (a2, _, _) -> compare (rank a2) (rank a1))
      |> List.map (fun (t_a, _, t_b) -> Expr.Assign (t_a, Expr.Temp t_b))
    in
    let inits =
      List.map
        (fun (t_a, tree_a, _) ->
          Expr.Assign (t_a, Expr.shift_iter tree_a ~by:lb))
        carried
    in
    (inits, body' @ copies)
  end

(* ------------------------------------------------------------------ *)
(* Loop unrolling with copy propagation                                *)
(* ------------------------------------------------------------------ *)

(** [unroll ~block ~factor body] — replicate the steady body [factor] times
    (instance [j] advanced [j*B] iterations) while forward-propagating the
    loop-carried copies, the transformation the paper invokes to remove
    pipelining copies ("the copy operation can be easily removed by
    unrolling the loop twice and forward propagating the copy operation",
    §4.5).

    Within the unrolled body, a copy [x := y] merely renames: subsequent
    reads of [x] resolve to [y]'s current value. At the seam, carried
    temporaries must again hold their protocol values, so restores are
    emitted — and then coalesced away by renaming the defining assignment
    when the carried name is free past that point, which eliminates every
    copy of a depth-1 carry chain (the software-pipelining case). Deeper
    chains (multi-step predictive-commoning carries) retain one restore per
    chain link per unrolled body, i.e. their copy frequency divides by
    [factor]. *)

(** Test-only fault injection: when set, the seam-restore coalescer skips
    its [read_at_seam] safety guard, reintroducing the PR-1 carry-chain
    miscompilation the differential fuzzer originally found. The fuzz
    bisector's regression tests flip this to prove that pipeline bisection
    names [unroll] as the first diverging pass. Never set outside tests. *)
let unsafe_unroll_seam_coalesce_bug = ref false

let unroll ~(block : int) ~(factor : int) (body : Expr.stmt list) :
    Expr.stmt list =
  if factor < 1 then invalid_arg "Passes.unroll: factor must be >= 1";
  if factor = 1 then body
  else begin
    let sigma : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let resolve x = Option.value ~default:x (Hashtbl.find_opt sigma x) in
    let copy_targets = ref [] in
    let out = ref [] in
    (* Combined transform: advance addresses by [disp] iterations and
       resolve temporary reads through the current sigma. *)
    let rec xform ~disp (e : Expr.vexpr) : Expr.vexpr =
      match e with
      | Expr.Temp x -> Expr.Temp (resolve x)
      | Expr.Load a -> Expr.Load (Addr.shift_iter a ~by:disp)
      | Expr.Splat s -> Expr.Splat s
      | Expr.Op (op, a, b) -> Expr.Op (op, xform ~disp a, xform ~disp b)
      | Expr.Shiftpair (a, b, s) ->
        Expr.Shiftpair (xform ~disp a, xform ~disp b, shift_iter_rexpr' ~disp s)
      | Expr.Splice (a, b, p) ->
        Expr.Splice (xform ~disp a, xform ~disp b, shift_iter_rexpr' ~disp p)
      | Expr.Pack (a, b) -> Expr.Pack (xform ~disp a, xform ~disp b)
      | Expr.Cmp (c, a, b) -> Expr.Cmp (c, xform ~disp a, xform ~disp b)
      | Expr.Sel (m, a, b) ->
        Expr.Sel (xform ~disp m, xform ~disp a, xform ~disp b)
    and shift_iter_rexpr' ~disp (r : Rexpr.t) : Rexpr.t =
      Expr.shift_iter_rexpr r ~by:disp
    in
    for j = 0 to factor - 1 do
      let disp = j * block in
      List.iter
        (fun (s : Expr.stmt) ->
          match s with
          | Expr.Assign (x, Expr.Temp y) ->
            (* carried copy: propagate instead of emitting *)
            if not (List.mem x !copy_targets) then
              copy_targets := x :: !copy_targets;
            Hashtbl.replace sigma x (resolve y)
          | Expr.Assign (x, e) ->
            let x' = if factor = 1 then x else Printf.sprintf "%s_u%d" x j in
            let e' = xform ~disp e in
            out := Expr.Assign (x', e') :: !out;
            Hashtbl.replace sigma x x'
          | Expr.Store (addr, e) ->
            out := Expr.Store (Addr.shift_iter addr ~by:disp, xform ~disp e) :: !out
          | Expr.Storem (addr, e, m) ->
            out :=
              Expr.Storem
                (Addr.shift_iter addr ~by:disp, xform ~disp e, xform ~disp m)
              :: !out
          | Expr.If _ -> invalid_arg "Passes.unroll: conditional in steady body")
        body
    done;
    let emitted = List.rev !out in
    (* Seam restores — only for copy targets that are live into the next
       iteration, i.e. read before being (re)defined in the original body.
       CSE-introduced value copies (x := y with x defined before any read)
       are iteration-local and need no restore. *)
    let live_in =
      let assigned = Hashtbl.create 8 in
      let live = ref [] in
      let note_reads e =
        ignore
          (Expr.fold_vexpr
             (fun () n ->
               match n with
               | Expr.Temp t when not (Hashtbl.mem assigned t) ->
                 if not (List.mem t !live) then live := t :: !live
               | _ -> ())
             () e)
      in
      List.iter
        (fun (s : Expr.stmt) ->
          match s with
          | Expr.Assign (x, e) ->
            note_reads e;
            Hashtbl.replace assigned x ()
          | Expr.Store (_, e) -> note_reads e
          | Expr.Storem (_, e, m) ->
            note_reads e;
            note_reads m
          | Expr.If _ -> assert false)
        body;
      !live
    in
    (* Restore every live-in temporary whose name moved: copy targets, and
       also directly re-assigned carried temporaries such as reduction
       accumulators (x := op(x, …)). *)
    let moved =
      Simd_support.Util.dedup
        (List.filter
           (fun x -> resolve x <> x && List.mem x live_in)
           (List.rev !copy_targets
           @ List.filter_map
               (function Expr.Assign (x, _) -> Some x | _ -> None)
               body))
    in
    let restores = List.map (fun x -> (x, resolve x)) moved in
    (* Coalesce: rename a restore's source definition to the carried name
       when that name is textually dead past the definition.

       A carried name some other restore reads is NOT dead past any point:
       all restores execute at the seam, so renaming a mid-body definition
       to it would clobber the old value that restore still has to copy.
       This is exactly the depth-2+ carry chain produced by predictive
       commoning over loads two or more blocks apart — the seam needs
       [t0 := t3] to read the t3 carried in, not a reload coalesced onto
       t3 earlier in the body. Such names keep their explicit restore. *)
    let read_at_seam x =
      List.exists (fun (x', src) -> x' <> x && src = x) restores
    in
    let occurs_in_expr x e =
      Expr.fold_vexpr
        (fun acc n -> acc || match n with Expr.Temp t -> t = x | _ -> false)
        false e
    in
    let occurs_in_stmt x (s : Expr.stmt) =
      match s with
      | Expr.Assign (t, e) -> t = x || occurs_in_expr x e
      | Expr.Store (_, e) -> occurs_in_expr x e
      | Expr.Storem (_, e, m) -> occurs_in_expr x e || occurs_in_expr x m
      | Expr.If _ -> assert false
    in
    let emitted = Array.of_list emitted in
    let kept_restores = ref [] in
    (* Sources already renamed by a coalesce (several carried temporaries
       can share one source; only the first gets the definition). *)
    let src_subst = Hashtbl.create 4 in
    let renamed_defs = Hashtbl.create 4 in
    List.iter
      (fun (x, src) ->
        let src = Option.value ~default:src (Hashtbl.find_opt src_subst src) in
        let def_idx = ref (-1) in
        Array.iteri
          (fun k s ->
            match s with
            | Expr.Assign (t, _) when t = src -> def_idx := k
            | _ -> ())
          emitted;
        let last_x = ref (-1) in
        Array.iteri (fun k s -> if occurs_in_stmt x s then last_x := k) emitted;
        if
          !def_idx >= 0
          && !last_x < !def_idx
          && (not (Hashtbl.mem renamed_defs !def_idx))
          && (!unsafe_unroll_seam_coalesce_bug || not (read_at_seam x))
        then begin
          Hashtbl.replace renamed_defs !def_idx ();
          Hashtbl.replace src_subst src x;
          (* rename src -> x from its definition onward *)
          let rename_expr e =
            let rec go (e : Expr.vexpr) =
              match e with
              | Expr.Temp t when t = src -> Expr.Temp x
              | Expr.Temp _ | Expr.Load _ | Expr.Splat _ -> e
              | Expr.Op (op, a, b) -> Expr.Op (op, go a, go b)
              | Expr.Shiftpair (a, b, s) -> Expr.Shiftpair (go a, go b, s)
              | Expr.Splice (a, b, p) -> Expr.Splice (go a, go b, p)
              | Expr.Pack (a, b) -> Expr.Pack (go a, go b)
              | Expr.Cmp (c, a, b) -> Expr.Cmp (c, go a, go b)
              | Expr.Sel (m, a, b) -> Expr.Sel (go m, go a, go b)
            in
            go e
          in
          for k = !def_idx to Array.length emitted - 1 do
            emitted.(k) <-
              (match emitted.(k) with
              | Expr.Assign (t, e) ->
                Expr.Assign ((if t = src then x else t), rename_expr e)
              | Expr.Store (a, e) -> Expr.Store (a, rename_expr e)
              | Expr.Storem (a, e, m) ->
                Expr.Storem (a, rename_expr e, rename_expr m)
              | Expr.If _ -> assert false)
          done
        end
        else kept_restores := Expr.Assign (x, Expr.Temp src) :: !kept_restores)
      restores;
    Array.to_list emitted @ List.rev !kept_restores
  end

(* ------------------------------------------------------------------ *)
(* Epilogue specialization and cleanup                                 *)
(* ------------------------------------------------------------------ *)

(** Partial evaluation of runtime expressions given what is known. *)
let rec fold_rexpr ~(analysis : Analysis.t) ~trip ~i (r : Rexpr.t) : Rexpr.t =
  match r with
  | Rexpr.Const _ -> r
  | Rexpr.Trip -> (
    match trip with Some n -> Rexpr.Const n | None -> r)
  | Rexpr.Counter -> (
    match i with Some n -> Rexpr.Const n | None -> r)
  | Rexpr.Offset_of a -> (
    (* Counter-carrying addresses are only evaluated at counter values ≡ 0
       (mod B), where the offset equals the i = 0 stream offset; counter-free
       addresses are literal element addresses. Both reduce to
       (base + offset*D) mod V when the base alignment is declared. *)
    let r' = { Ast.ref_array = a.Addr.array; ref_offset = a.Addr.offset; ref_stride = 1 } in
    match
      Align.of_ref ~machine:analysis.Analysis.machine
        ~program:analysis.Analysis.program r'
    with
    | Align.Known k -> Rexpr.Const k
    | Align.Runtime -> r)
  | Rexpr.Add (a, b) ->
    Rexpr.add (fold_rexpr ~analysis ~trip ~i a) (fold_rexpr ~analysis ~trip ~i b)
  | Rexpr.Sub (a, b) ->
    Rexpr.sub (fold_rexpr ~analysis ~trip ~i a) (fold_rexpr ~analysis ~trip ~i b)
  | Rexpr.Mul_const (a, k) -> Rexpr.mul_const (fold_rexpr ~analysis ~trip ~i a) k
  | Rexpr.Mod_const (a, m) -> Rexpr.mod_const (fold_rexpr ~analysis ~trip ~i a) m

let fold_cond ~analysis ~trip ~i (c : Rexpr.cond) :
    [ `Known of bool | `Cond of Rexpr.cond ] =
  let f = fold_rexpr ~analysis ~trip ~i in
  let eval op recons a b =
    match (f a, f b) with
    | Rexpr.Const x, Rexpr.Const y -> `Known (op x y)
    | a', b' -> `Cond (recons a' b')
  in
  match c with
  | Rexpr.Ge (a, b) -> eval ( >= ) (fun a b -> Rexpr.Ge (a, b)) a b
  | Rexpr.Gt (a, b) -> eval ( > ) (fun a b -> Rexpr.Gt (a, b)) a b
  | Rexpr.Le (a, b) -> eval ( <= ) (fun a b -> Rexpr.Le (a, b)) a b
  | Rexpr.Lt (a, b) -> eval ( < ) (fun a b -> Rexpr.Lt (a, b)) a b

(** [specialize ~analysis ~trip ~i stmts] — resolve the loop counter and
    trip count in a statement region (when known), folding guard
    conditionals down to their live branch. *)
let rec specialize ~analysis ~trip ~i (stmts : Expr.stmt list) : Expr.stmt list =
  List.concat_map
    (fun s ->
      match (s : Expr.stmt) with
      | Expr.Store (a, e) ->
        [ Expr.Store (freeze_addr ~i a, spec_expr ~analysis ~trip ~i e) ]
      | Expr.Storem (a, e, m) ->
        [
          Expr.Storem
            ( freeze_addr ~i a,
              spec_expr ~analysis ~trip ~i e,
              spec_expr ~analysis ~trip ~i m );
        ]
      | Expr.Assign (x, e) -> [ Expr.Assign (x, spec_expr ~analysis ~trip ~i e) ]
      | Expr.If (c, th, el) -> (
        match fold_cond ~analysis ~trip ~i c with
        | `Known true -> specialize ~analysis ~trip ~i th
        | `Known false -> specialize ~analysis ~trip ~i el
        | `Cond c' ->
          [
            Expr.If
              (c', specialize ~analysis ~trip ~i th, specialize ~analysis ~trip ~i el);
          ]))
    stmts

and freeze_addr ~i (a : Addr.t) =
  match i with Some n -> Addr.freeze a ~i:n | None -> a

and spec_expr ~analysis ~trip ~i (e : Expr.vexpr) : Expr.vexpr =
  match e with
  | Expr.Load a -> Expr.Load (freeze_addr ~i a)
  | Expr.Splat _ | Expr.Temp _ -> e
  | Expr.Op (op, a, b) ->
    Expr.Op (op, spec_expr ~analysis ~trip ~i a, spec_expr ~analysis ~trip ~i b)
  | Expr.Shiftpair (a, b, s) ->
    Expr.Shiftpair
      ( spec_expr ~analysis ~trip ~i a,
        spec_expr ~analysis ~trip ~i b,
        fold_rexpr ~analysis ~trip ~i s )
  | Expr.Splice (a, b, p) ->
    Expr.Splice
      ( spec_expr ~analysis ~trip ~i a,
        spec_expr ~analysis ~trip ~i b,
        fold_rexpr ~analysis ~trip ~i p )
  | Expr.Pack (a, b) ->
    Expr.Pack (spec_expr ~analysis ~trip ~i a, spec_expr ~analysis ~trip ~i b)
  | Expr.Cmp (c, a, b) ->
    Expr.Cmp (c, spec_expr ~analysis ~trip ~i a, spec_expr ~analysis ~trip ~i b)
  | Expr.Sel (m, a, b) ->
    Expr.Sel
      ( spec_expr ~analysis ~trip ~i m,
        spec_expr ~analysis ~trip ~i a,
        spec_expr ~analysis ~trip ~i b )

(* ------------------------------------------------------------------ *)
(* Dead code elimination (epilogue cleanup)                            *)
(* ------------------------------------------------------------------ *)

(** [dce segments] — remove assignments whose temporaries are never read
    later (within the given consecutive segments, e.g. epilogue then
    epilogue2) and conditionals that became empty. Temporaries read by
    nothing downstream are dead because segments are the program tail. *)
let dce (segments : Expr.stmt list list) : Expr.stmt list list =
  (* Liveness is a set: a conditional's live-in is the union of its
     branches' live-ins (an earlier list-based version concatenated them,
     which doubled per conditional and went exponential across many virtual
     epilogue iterations). *)
  let module S = Simd_support.Util.String_set in
  let add_reads live e =
    Expr.fold_vexpr
      (fun acc n -> match n with Expr.Temp t -> S.add t acc | _ -> acc)
      live e
  in
  let rec sweep (live : S.t) (stmts : Expr.stmt list) : S.t * Expr.stmt list =
    (* backward pass *)
    match stmts with
    | [] -> (live, [])
    | s :: rest -> (
      let live, rest' = sweep live rest in
      match s with
      | Expr.Assign (x, e) ->
        if S.mem x live then (add_reads (S.remove x live) e, s :: rest')
        else (live, rest')
      | Expr.Store (_, e) -> (add_reads live e, s :: rest')
      | Expr.Storem (_, e, m) -> (add_reads (add_reads live e) m, s :: rest')
      | Expr.If (c, th, el) ->
        let live_t, th' = sweep live th in
        let live_e, el' = sweep live el in
        if th' = [] && el' = [] then (live, rest')
        else (S.union live_t live_e, Expr.If (c, th', el') :: rest'))
  in
  (* Process segments back to front, threading liveness. *)
  let rec go = function
    | [] -> (S.empty, [])
    | seg :: later ->
      let live_later, later' = go later in
      let live, seg' = sweep live_later seg in
      (live, seg' :: later')
  in
  snd (go segments)

(* ------------------------------------------------------------------ *)
(* Whole-program VIR cleanup (dataflow-backed)                         *)
(* ------------------------------------------------------------------ *)

(** [vir_cleanup ~v ~block ~prologue ~body ~epilogues] — the
    dataflow-backed cleanup pass: copy propagation through single-def
    temp copies, folding of no-op shifts, combining of adjacent (and
    carried, software-pipelined) [vshiftpair] chains, loop-invariant
    hoisting into the prologue, and whole-program liveness DCE that
    closes over the steady loop's back edge. Every rewrite is
    value-exact; the driver re-validates the result with [Simd.Check]
    at the pass boundary. Implemented by
    {!Simd_dataflow.Dataflow.Cleanup}. *)
let vir_cleanup ~v ~block ~prologue ~body ~epilogues =
  fst
    (Simd_dataflow.Dataflow.Cleanup.run ~v ~block ~prologue ~body ~epilogues)
