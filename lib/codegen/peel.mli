(** Loop-peeling baseline (prior work [3, 4]; paper §1/§6): applicable only
    when every reference shares one compile-time misalignment, in which
    case it is equivalent to eager-shift. *)

type verdict = Applicable | Mixed_alignments | Runtime_alignment

val pp_verdict : Format.formatter -> verdict -> unit
val check : Simd_loopir.Analysis.t -> verdict

val peel_amount : Simd_loopir.Analysis.t -> int
(** Scalar iterations to peel so the uniform misalignment reaches 0:
    [(V - o)/D mod B], always in [0, B). Raises [Invalid_argument] when the
    misalignment is not a multiple of the element size — whole-iteration
    peeling cannot cure such an offset. *)
