(** Loop-peeling baseline (prior work: Larsen et al. [3], Bik et al. [4];
    paper §1 and §6).

    The pre-existing approach to misalignment: peel scalar iterations off
    the front of the loop until the memory references become aligned, then
    simdize the all-aligned remainder. Peeling can align {e at most one}
    alignment class — it is applicable only when every reference in the
    loop has the same misalignment. The paper observes the scheme "is
    equivalent to the eager-shift policy with the restriction that all
    memory references in the loop must have the same misalignment", with
    its own prologue/epilogue falling out of peeling from the simdized
    loop. We implement it exactly that way: an applicability check, then
    eager-shift simdization (which inserts zero stream shifts in the
    applicable case). *)

open Simd_loopir

type verdict =
  | Applicable  (** all references share one compile-time misalignment *)
  | Mixed_alignments  (** more than one alignment class: peeling cannot help *)
  | Runtime_alignment  (** peel amount not computable at compile time *)

let pp_verdict fmt = function
  | Applicable -> Format.pp_print_string fmt "applicable"
  | Mixed_alignments ->
    Format.pp_print_string fmt "not applicable: multiple distinct alignments"
  | Runtime_alignment ->
    Format.pp_print_string fmt "not applicable: runtime alignments"

(** [check analysis] — can loop peeling simdize this loop? *)
let check (analysis : Analysis.t) : verdict =
  let offsets = List.map snd analysis.Analysis.offsets in
  let has_stride =
    List.exists
      (fun (r : Ast.mem_ref) -> r.Ast.ref_stride > 1)
      (Ast.program_refs analysis.Analysis.program)
  in
  if has_stride then Mixed_alignments (* peeling cannot gather *)
  else if not (List.for_all Align.is_known offsets) then Runtime_alignment
  else
    match Simd_support.Util.dedup offsets with
    | [] | [ _ ] -> Applicable
    | _ -> Mixed_alignments

(** [peel_amount analysis] — the number of scalar iterations to peel so the
    (uniform) misalignment [o] becomes 0: [(V - o)/D mod B]. Only meaningful
    when {!check} returns [Applicable].

    The [mod B] matters at [o = 0]: [(V - 0)/D = B] scalar iterations would
    re-misalign nothing but waste a whole block, and the reduced form keeps
    every result in [0, B). A misalignment that is not a multiple of the
    element size can never be cured by whole-iteration peeling (each peeled
    iteration advances the address by [D] bytes), so that is rejected
    explicitly rather than silently truncated by the division. *)
let peel_amount (analysis : Analysis.t) : int =
  match analysis.Analysis.offsets with
  | [] -> 0
  | (_, o) :: _ ->
    let o = Align.known_exn o in
    let d = analysis.Analysis.elem in
    let v = Simd_machine.Config.vector_len analysis.Analysis.machine in
    if o mod d <> 0 then
      invalid_arg
        (Printf.sprintf
           "Peel.peel_amount: misalignment %d is not a multiple of the \
            element size %d"
           o d)
    else (v - o) / d mod analysis.Analysis.block
