(** Post-generation optimization passes (paper §5.5): splat hoisting
    (LICM), memory normalization, local value numbering, value-level
    predictive commoning, loop unrolling with copy propagation (§4.5's
    copy-removal), epilogue specialization and dead-code cleanup. *)

open Simd_loopir
open Simd_vir

val hoist_splats :
  names:Names.t ->
  prologue:Expr.stmt list ->
  body:Expr.stmt list ->
  Expr.stmt list * Expr.stmt list
(** Move every loop-invariant [Splat] into a prologue temporary; returns
    [(prologue, body)]. *)

val memnorm : analysis:Analysis.t -> Expr.stmt list -> Expr.stmt list
(** Rewrite compile-time-offset load addresses to their V-aligned chunk
    addresses so same-chunk loads become syntactically identical. *)

val cse : names:Names.t -> Expr.stmt list -> Expr.stmt list
(** Local value numbering: lowers the region to three-address form;
    value keys carry per-temporary and per-array-memory versions, so
    pipelining carries and stores are handled soundly. *)

val predictive_commoning :
  block:int ->
  lb:int ->
  prologue:Expr.stmt list ->
  Expr.stmt list ->
  Expr.stmt list * Expr.stmt list
(** Cross-iteration value reuse on a three-address body: any temporary
    whose expanded value tree advanced one iteration equals another's
    becomes a loop-carried copy (initialized in the prologue). Returns
    [(prologue_inits, body)]. *)

val unsafe_unroll_seam_coalesce_bug : bool ref
(** Test-only fault injection: when set, {!unroll}'s seam-restore
    coalescer skips its read-at-seam safety guard, reintroducing the PR-1
    carry-chain miscompilation. Used by the bisection regression tests to
    prove the fuzzer names [unroll] as the first diverging pass; never set
    outside tests. *)

val unroll : block:int -> factor:int -> Expr.stmt list -> Expr.stmt list
(** Replicate the steady body with forward-propagated carries; seam
    restores are coalesced away for depth-1 carry chains (zero copies). *)

val fold_rexpr :
  analysis:Analysis.t -> trip:int option -> i:int option -> Rexpr.t -> Rexpr.t

val fold_cond :
  analysis:Analysis.t ->
  trip:int option ->
  i:int option ->
  Rexpr.cond ->
  [ `Known of bool | `Cond of Rexpr.cond ]

val specialize :
  analysis:Analysis.t ->
  trip:int option ->
  i:int option ->
  Expr.stmt list ->
  Expr.stmt list
(** Partial evaluation: resolve the counter/trip where known, folding guard
    conditionals to their live branch. *)

val dce : Expr.stmt list list -> Expr.stmt list list
(** Backward liveness over consecutive tail segments: drop dead
    assignments and emptied conditionals. *)

val vir_cleanup :
  v:int ->
  block:int ->
  prologue:Expr.stmt list ->
  body:Expr.stmt list ->
  epilogues:Expr.stmt list list ->
  Expr.stmt list * Expr.stmt list * Expr.stmt list list
(** The dataflow-backed whole-program cleanup (copy propagation, shift
    combining, invariant hoisting, back-edge-aware DCE); value-exact and
    re-validated by the checker at its pass boundary. Preserves the
    epilogue segment count. *)
