(** Common-offset reassociation (paper §5.5, "OffsetReassoc"): regroup
    chains of one associative-commutative operator so operands with
    identical stream offsets combine first, letting lazy/dominant placement
    reach the analytic shift minimum. *)

val flatten : Simd_loopir.Ast.binop -> Simd_loopir.Ast.expr -> Simd_loopir.Ast.expr list
(** Operand list of a maximal chain of one associative-commutative
    operator, left to right. *)

val rebuild : Simd_loopir.Ast.binop -> Simd_loopir.Ast.expr list -> Simd_loopir.Ast.expr
(** Left-associated chain over the operand list — the inverse of
    {!flatten} up to grouping. *)

val apply : analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Simd_loopir.Ast.stmt
(** Reassociate every eligible operator chain in the statement's RHS so
    same-offset operands are adjacent (grouped smallest offset first). *)

val apply_program :
  analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.program -> Simd_loopir.Ast.program
(** {!apply} over every statement of the loop body. *)
