(** Stream-shift placement policies (paper §3.4): zero-shift (the only
    policy usable under runtime alignments; prior work/VAST equivalent),
    eager-shift, lazy-shift, and dominant-shift. See the implementation
    header for the full description. *)

type t = Zero | Eager | Lazy | Dominant | Optimal | Auto | Joint
[@@deriving show, eq, ord]

val registry : (t * string * string list * string) list
(** The single registration point: (policy, canonical name, aliases,
    one-line description). [all]/[heuristics]/[name]/[of_name] and CLI help
    derive from it, so a policy cannot be half-registered. *)

val all : t list

val heuristics : t list
(** The paper's §3.4 policies, the ones {!place} implements. [Optimal],
    [Auto] and [Joint] are placed by the exact solver ({!Simd.Opt}). *)

val name : t -> string
val of_name : string -> t option

val describe : t -> string
(** The registry's one-line description. *)

type error =
  | Requires_compile_time_alignment of t
  | Requires_solver of t
  | Not_bare of t * string
      (** the tree handed to placement already carries [Shift] nodes
          ({!Graph.assert_bare}) *)

val pp_error : Format.formatter -> error -> unit

val offsets_known : analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> bool
(** Every stride-one reference of the statement has a compile-time offset
    (strided gathers always stream at offset 0) — the precondition of every
    policy except zero-shift. *)

val target_offset : analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Offset.t
(** The offset a statement's value stream must reach: the store alignment
    (C.2) for assignments, offset 0 for reductions. *)

val dominant_offset :
  analysis:Simd_loopir.Analysis.t -> Simd_loopir.Ast.stmt -> Offset.t
(** Most frequent offset among loads and store; ties prefer the store
    alignment, then the smallest value. *)

val place :
  ?root:Graph.node ->
  t ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Graph.t, error) result
(** Build the statement's valid data reorganization graph under the
    policy. [root] (default [Graph.of_expr stmt.rhs]) supplies a pre-built
    tree; it must satisfy {!Graph.assert_bare} or the result is
    [Error (Not_bare _)]. *)

val place_exn :
  ?root:Graph.node ->
  t ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  Graph.t
(** {!place}, raising [Invalid_argument] on error. *)
