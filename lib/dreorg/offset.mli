(** Stream offsets as data-reorganization-graph node properties (paper
    §3.3): compile-time constants, runtime values identified by the
    reference whose address computes them, or ⊥ for splats (which satisfy
    every constraint). *)

type t =
  | Known of int
  | Runtime of Simd_loopir.Ast.mem_ref
  | Any  (** ⊥ *)
[@@deriving show, eq, ord]

val of_align : Simd_loopir.Align.t -> ref_:Simd_loopir.Ast.mem_ref -> t
(** The offset of a load/store stream from its reference's alignment
    analysis: [Known k] for compile-time offsets, [Runtime ref_]
    otherwise. *)

val matches : block:int -> t -> t -> bool
(** Constraint (C.3): provably equal byte offsets. Two runtime offsets
    match when they come from one array with index offsets congruent mod
    the blocking factor. *)

val merge : block:int -> t -> t -> t
(** The offset of a [vop] given matching operand offsets (Eq. 4). *)

val is_any : t -> bool
val is_known : t -> bool
val pp : Format.formatter -> t -> unit
