(** The data reorganization graph (paper §3.3).

    An expression tree augmented with data reordering nodes. Node kinds and
    their stream offsets:

    - [Load r] — a [vload] stream; offset = alignment of [addr(i=0)] (Eq. 1).
    - [Op (op, a, b)] — a [vop]; operand offsets must match (C.3); the node's
      offset is the uniform operand offset (Eq. 4).
    - [Splat e] — a [vsplat] of a loop invariant; offset ⊥ (Eq. 6).
    - [Shift (src, from, to_)] — a [vshiftstream]; re-offsets the stream from
      [from] (which must equal [src]'s offset) to [to_] (Eq. 5); [to_] must
      be loop invariant and never ⊥.

    A graph is one statement's tree plus its store: the store requires the
    root offset to equal the store address alignment (C.2). *)

open Simd_loopir

type node =
  | Load of Ast.mem_ref
  | Strided of Ast.mem_ref
      (** strided-gather leaf (extension): the lowered shift-window-pack
          sequence delivers the values contiguously at stream offset 0 *)
  | Op of Ast.binop * node * node
  | Splat of Ast.expr
  | Shift of node * Offset.t * Offset.t  (** (source, from, to) *)
  | Cmp of Ast.cmp * node * node
      (** [vcmp] (predication extension): a mask-producing lane compare.
          Offset-wise an ordinary vop — operand offsets must match (C.3)
          and the mask stream inherits them: the mask for the value at
          offset [o] sits at offset [o]. *)
  | Sel of node * node * node
      (** [vsel(mask, a, b)] (predication extension): lane blend. All
          three operands — mask included — must agree on offset (C.3). *)
[@@deriving show { with_path = false }, eq]

type t = {
  store : Ast.mem_ref;
  store_offset : Offset.t;  (** never [Any] *)
  root : node;
  block : int;  (** blocking factor, for runtime-offset congruence *)
  mask : node option;
      (** store mask (predication extension): present iff the statement is
          guarded; a mask tree rooted in a [Cmp], placed at the store
          offset like the value tree — a masked store at offset [o]
          consumes both streams at [o] (the (C.2) analogue for masks) *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** [is_invariant e] — no loads: the whole subtree is loop invariant and can
    become a single [Splat]. *)
let rec is_invariant (e : Ast.expr) =
  match e with
  | Ast.Load _ -> false
  | Ast.Param _ | Ast.Const _ -> true
  | Ast.Binop (_, a, b) -> is_invariant a && is_invariant b
  | Ast.Select (c, a, b) ->
    is_invariant c.Ast.cl && is_invariant c.Ast.cr && is_invariant a
    && is_invariant b

(** [of_expr e] — the bare graph of an expression, with {e no} reordering
    nodes: the "simdize as if there were no alignment constraints" step.
    Maximal loop-invariant subtrees become single [Splat] nodes. *)
let rec of_expr (e : Ast.expr) : node =
  if is_invariant e then Splat e
  else
    match e with
    | Ast.Load r when r.Ast.ref_stride > 1 -> Strided r
    | Ast.Load r -> Load r
    | Ast.Binop (op, a, b) -> Op (op, of_expr a, of_expr b)
    | Ast.Select (c, a, b) -> Sel (of_cond c, of_expr a, of_expr b)
    | Ast.Param _ | Ast.Const _ -> assert false (* invariant, handled above *)

(** [of_cond c] — the bare mask tree of a guard: a [Cmp] over the operand
    trees (a guard over invariants yields a compare of two splats — a
    loop-invariant mask at offset ⊥). *)
and of_cond (c : Ast.cond) : node =
  Cmp (c.Ast.cmp, of_expr c.Ast.cl, of_expr c.Ast.cr)

(* ------------------------------------------------------------------ *)
(* Bare-tree precondition                                              *)
(* ------------------------------------------------------------------ *)

(** [find_shift n] — the endpoints of the first [Shift] node of a subtree,
    if any (leftmost-innermost). *)
let rec find_shift = function
  | Load _ | Strided _ | Splat _ -> None
  | Op (_, a, b) | Cmp (_, a, b) -> (
    match find_shift a with Some s -> Some s | None -> find_shift b)
  | Sel (m, a, b) -> (
    match find_shift m with
    | Some s -> Some s
    | None -> (
      match find_shift a with Some s -> Some s | None -> find_shift b))
  | Shift (src, from, to_) -> (
    match find_shift src with Some s -> Some s | None -> Some (from, to_))

let is_bare n = find_shift n = None

(** [assert_bare n] — the checked precondition of every placement policy
    and of the exact solver: the tree must carry no reordering nodes yet.
    Feeding an already-placed graph back through placement (e.g. out of the
    cross-statement sharing pass) is a caller bug; this turns it into a
    diagnosable error instead of a crash. *)
let assert_bare n =
  match find_shift n with
  | None -> Ok ()
  | Some (from, to_) ->
    Error
      (Format.asprintf
         "tree already placed: contains vshiftstream(%a -> %a); placement \
          requires the bare expression tree"
         Offset.pp from Offset.pp to_)

(* ------------------------------------------------------------------ *)
(* Shareable reorganization chains                                     *)
(* ------------------------------------------------------------------ *)

(** A shareable reorganization chain: a [Shift] node whose entire subtree
    consists of shifts over a single [Load]/[Strided] leaf. Two such nodes
    in different statements denote the {e same} [vshiftstream] — and lower
    to one shared stream under value numbering — exactly when their keys
    are equal: same memory reference, same gather-ness, same shift path
    from the leaf outward. *)
type chain = {
  chain_ref : Ast.mem_ref;
  chain_gather : bool;
  chain_hops : (Offset.t * Offset.t) list;  (** leaf-outward, non-empty *)
}

let equal_chain a b =
  Ast.equal_mem_ref a.chain_ref b.chain_ref
  && a.chain_gather = b.chain_gather
  && List.equal
       (fun (f1, t1) (f2, t2) -> Offset.equal f1 f2 && Offset.equal t1 t2)
       a.chain_hops b.chain_hops

(** [chain_of n] — [Some] chain when [n] is a shareable [Shift] node (its
    subtree is shifts over one leaf), [None] otherwise. *)
let chain_of n =
  let rec spine = function
    | Load r -> Some (r, false, [])
    | Strided r -> Some (r, true, [])
    | Splat _ | Op _ | Cmp _ | Sel _ -> None
    | Shift (src, from, to_) ->
      Option.map (fun (r, g, hops) -> (r, g, hops @ [ (from, to_) ])) (spine src)
  in
  match n with
  | Shift _ ->
    Option.map
      (fun (chain_ref, chain_gather, chain_hops) ->
        { chain_ref; chain_gather; chain_hops })
      (spine n)
  | Load _ | Strided _ | Splat _ | Op _ | Cmp _ | Sel _ -> None

(** [chains n] — every shareable [Shift] node of the subtree (each hop of a
    multi-shift chain is its own entry: each materializes one
    [vshiftstream]). *)
let chains n =
  let rec go acc n =
    match n with
    | Load _ | Strided _ | Splat _ -> acc
    | Op (_, a, b) | Cmp (_, a, b) -> go (go acc a) b
    | Sel (m, a, b) -> go (go (go acc m) a) b
    | Shift (src, _, _) ->
      let acc = match chain_of n with Some c -> c :: acc | None -> acc in
      go acc src
  in
  List.rev (go [] n)

(** [all_chains g] — shareable chains of the whole graph, mask tree
    included (mask streams share like data streams). *)
let all_chains g =
  chains g.root @ match g.mask with Some m -> chains m | None -> []

(* ------------------------------------------------------------------ *)
(* Offsets and validity                                                *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

(** [offset_of ~analysis node] — the node's stream offset, raising
    {!Invalid} if a [vop]'s operands (or a shift's source) violate the
    constraints. *)
let rec offset_of ~(analysis : Analysis.t) (n : node) : Offset.t =
  match n with
  | Load r -> Offset.of_align (Analysis.offset_of analysis r) ~ref_:r
  | Strided _ -> Offset.Known 0 (* packed contiguously by construction *)
  | Splat _ -> Offset.Any
  | Op (op, a, b) ->
    let oa = offset_of ~analysis a in
    let ob = offset_of ~analysis b in
    if not (Offset.matches ~block:analysis.Analysis.block oa ob) then
      raise
        (Invalid
           (Format.asprintf "operands of %s at offsets %a vs %a violate (C.3)"
              (Simd_machine.Lane.binop_name op)
              Offset.pp oa Offset.pp ob));
    Offset.merge ~block:analysis.Analysis.block oa ob
  | Cmp (c, a, b) ->
    let oa = offset_of ~analysis a in
    let ob = offset_of ~analysis b in
    if not (Offset.matches ~block:analysis.Analysis.block oa ob) then
      raise
        (Invalid
           (Format.asprintf
              "operands of vcmp_%s at offsets %a vs %a violate (C.3)"
              (Simd_machine.Lane.cmp_name c)
              Offset.pp oa Offset.pp ob));
    Offset.merge ~block:analysis.Analysis.block oa ob
  | Sel (m, a, b) ->
    let om = offset_of ~analysis m in
    let oa = offset_of ~analysis a in
    let ob = offset_of ~analysis b in
    let block = analysis.Analysis.block in
    if
      not
        (Offset.matches ~block om oa
        && Offset.matches ~block oa ob
        && Offset.matches ~block om ob)
    then
      raise
        (Invalid
           (Format.asprintf
              "operands of vsel at offsets %a / %a / %a violate (C.3)"
              Offset.pp om Offset.pp oa Offset.pp ob));
    Offset.merge ~block om (Offset.merge ~block oa ob)
  | Shift (src, from, to_) ->
    let os = offset_of ~analysis src in
    if Offset.is_any from || Offset.is_any to_ then
      raise (Invalid "vshiftstream with ⊥ endpoint");
    if not (Offset.matches ~block:analysis.Analysis.block os from) then
      raise
        (Invalid
           (Format.asprintf "vshiftstream 'from' %a does not match source offset %a"
              Offset.pp from Offset.pp os));
    to_

(** [validate ~analysis g] — check (C.2) and (C.3) for the whole graph:
    the value tree's root offset must match the store alignment, and so
    must the mask tree's when present (a masked store consumes both
    streams at the store offset). *)
let validate ~(analysis : Analysis.t) (g : t) : (unit, string) result =
  let check_tree what n =
    match offset_of ~analysis n with
    | o ->
      if Offset.matches ~block:g.block o g.store_offset then Ok ()
      else
        Error
          (Format.asprintf "%s offset %a does not match store alignment %a (C.2)"
             what Offset.pp o Offset.pp g.store_offset)
    | exception Invalid msg -> Error msg
  in
  match check_tree "root" g.root with
  | Error _ as e -> e
  | Ok () -> (
    match g.mask with Some m -> check_tree "mask" m | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Measures                                                            *)
(* ------------------------------------------------------------------ *)

(** [shift_count n] — number of [vshiftstream] nodes (what the policies
    minimize). *)
let rec shift_count = function
  | Load _ | Strided _ | Splat _ -> 0
  | Op (_, a, b) | Cmp (_, a, b) -> shift_count a + shift_count b
  | Sel (m, a, b) -> shift_count m + shift_count a + shift_count b
  | Shift (src, _, _) -> 1 + shift_count src

let graph_shift_count g =
  shift_count g.root + match g.mask with Some m -> shift_count m | None -> 0

(** [leaf_offsets ~analysis n] — offsets of all [Load] leaves, left to
    right. *)
let rec leaf_offsets ~analysis = function
  | Load r -> [ Offset.of_align (Analysis.offset_of analysis r) ~ref_:r ]
  | Strided _ -> [ Offset.Known 0 ]
  | Splat _ -> []
  | Op (_, a, b) | Cmp (_, a, b) ->
    leaf_offsets ~analysis a @ leaf_offsets ~analysis b
  | Sel (m, a, b) ->
    leaf_offsets ~analysis m @ leaf_offsets ~analysis a
    @ leaf_offsets ~analysis b
  | Shift (src, _, _) -> leaf_offsets ~analysis src

let rec pp_node fmt = function
  | Load r -> Format.fprintf fmt "vload(%s)" (Pp.mem_ref_to_string r)
  | Strided r -> Format.fprintf fmt "vgather(%s)" (Pp.mem_ref_to_string r)
  | Op (op, a, b) ->
    Format.fprintf fmt "v%s(%a, %a)" (Simd_machine.Lane.binop_name op) pp_node a
      pp_node b
  | Splat e -> Format.fprintf fmt "vsplat(%a)" Pp.pp_expr e
  | Shift (src, from, to_) ->
    Format.fprintf fmt "vshiftstream(%a, %a, %a)" pp_node src Offset.pp from
      Offset.pp to_
  | Cmp (c, a, b) ->
    Format.fprintf fmt "vcmp_%s(%a, %a)" (Simd_machine.Lane.cmp_name c)
      pp_node a pp_node b
  | Sel (m, a, b) ->
    Format.fprintf fmt "vsel(%a, %a, %a)" pp_node m pp_node a pp_node b

let pp fmt g =
  match g.mask with
  | None ->
    Format.fprintf fmt "vstore(%s @@ %a, %a)" (Pp.mem_ref_to_string g.store)
      Offset.pp g.store_offset pp_node g.root
  | Some m ->
    Format.fprintf fmt "vstore.mask(%s @@ %a, %a, %a)"
      (Pp.mem_ref_to_string g.store) Offset.pp g.store_offset pp_node g.root
      pp_node m

let to_string g = Format.asprintf "%a" pp g
