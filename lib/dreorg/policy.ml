(** Stream-shift placement policies (paper §3.4).

    Given one statement's bare expression tree, each policy inserts
    [vshiftstream] nodes so that the resulting data reorganization graph is
    valid — constraints (C.2)/(C.3) hold — while trying to minimize the
    number of shifts:

    - {b Zero-shift}: shift every misaligned load stream to offset 0 right
      after the load, and shift the root stream from 0 to the store
      alignment. Least optimized, but the only policy whose shift
      {e directions} are compile-time even when alignments are runtime
      values (loads always shift left to 0, stores always shift right from
      0) — hence the policy used whenever alignment is unknown (§4.4), and
      the one prior work [6]/VAST [7] corresponds to.
    - {b Eager-shift}: shift each misaligned load directly to the store
      alignment; requires compile-time alignments.
    - {b Lazy-shift}: delay shifts while operand streams are relatively
      aligned; when an operation's operands disagree, meet at one operand's
      offset (preferring the store alignment when it is a candidate, so the
      final store shift can be elided); shift the root to the store
      alignment at the end.
    - {b Dominant-shift}: lazy placement, but disagreeing operands meet at
      the globally most frequent stream offset when it is a candidate — the
      paper notes this policy "is most effective if applied after the
      lazy-shift policy", which is exactly this formulation. *)

open Simd_loopir

type t = Zero | Eager | Lazy | Dominant | Optimal | Auto | Joint
[@@deriving show { with_path = false }, eq, ord]

(** The single registration point: every policy appears here exactly once
    with its canonical name, accepted aliases, and one-line description.
    [all], [heuristics], [name], [of_name] and the CLI help text all derive
    from this list, so a policy cannot be half-registered. *)
let registry =
  [
    ( Zero,
      "zero",
      [],
      "shift loads to offset 0 and the store stream from 0; the only policy \
       whose shift directions are compile-time under runtime alignments" );
    (Eager, "eager", [], "shift each misaligned load directly to the store \
                          alignment");
    ( Lazy,
      "lazy",
      [],
      "delay shifts while operand streams are relatively aligned; meet \
       disagreeing operands at one operand's offset" );
    ( Dominant,
      "dominant",
      [ "dom" ],
      "lazy placement meeting at the statement's most frequent offset when \
       it is a candidate" );
    ( Optimal,
      "optimal",
      [ "opt" ],
      "provably minimum-cost placement by dynamic programming over the data \
       reorganization graph (Simd.Opt solver)" );
    ( Auto,
      "auto",
      [],
      "per-statement argmin over every policy including optimal; falls back \
       to zero under runtime alignments" );
    ( Joint,
      "joint",
      [],
      "whole-body minimum-cost placement with cross-statement vshiftstream \
       sharing (Simd.Opt.Joint solver); never worse than optimal per body" );
  ]

let all = List.map (fun (p, _, _, _) -> p) registry

(** The paper's §3.4 heuristics — the policies {!place} implements
    directly. [Optimal] and [Auto] are placed by the exact solver
    ({!Simd.Opt}), one library layer up. *)
let heuristics = [ Zero; Eager; Lazy; Dominant ]

let name p =
  let _, n, _, _ = List.find (fun (p', _, _, _) -> equal p p') registry in
  n

let of_name s =
  List.find_map
    (fun (p, n, aliases, _) ->
      if String.equal s n || List.exists (String.equal s) aliases then Some p
      else None)
    registry

let describe p =
  let _, _, _, d = List.find (fun (p', _, _, _) -> equal p p') registry in
  d

type error =
  | Requires_compile_time_alignment of t
      (** eager/lazy/dominant need every stream offset at compile time *)
  | Requires_solver of t
      (** optimal/auto/joint are placed by {!Simd.Opt}, not by this module *)
  | Not_bare of t * string
      (** the tree handed to placement already carries [Shift] nodes — a
          re-placed graph was fed back through a policy
          ({!Graph.assert_bare}) *)

let pp_error fmt = function
  | Requires_compile_time_alignment p ->
    Format.fprintf fmt
      "policy %s requires compile-time alignments (use the zero-shift policy)"
      (name p)
  | Requires_solver p ->
    Format.fprintf fmt
      "policy %s is placed by the exact solver (Simd.Opt.Place), not by \
       Policy.place"
      (name p)
  | Not_bare (p, msg) ->
    Format.fprintf fmt "policy %s cannot place a non-bare tree: %s" (name p)
      msg

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let load_offset ~(analysis : Analysis.t) r =
  Offset.of_align (Analysis.offset_of analysis r) ~ref_:r

(* The offset the statement's value stream must reach. For a store it is
   the store address alignment (constraint C.2); for a reduction it is 0:
   the accumulated stream is shifted so that block [i] holds exactly the
   values of original iterations [i, i+B), which makes epilogue masking a
   prefix splice and the prologue block entirely valid. *)
let target_offset ~(analysis : Analysis.t) (stmt : Ast.stmt) =
  match stmt.Ast.kind with
  | Ast.Reduce _ -> Offset.Known 0
  | Ast.Assign ->
    Offset.of_align (Analysis.offset_of analysis stmt.Ast.lhs) ~ref_:stmt.Ast.lhs

(** Insert a shift unless the stream is already at the target. [Any]
    (splat-only) streams satisfy every constraint and are never shifted. *)
let shift_to ~block node ~from ~target =
  if Offset.is_any from then node
  else if Offset.matches ~block from target then node
  else Graph.Shift (node, from, target)

(** All-known check: eager/lazy/dominant/optimal precondition. Strided
    references are exempt — their gathered streams sit at offset 0
    regardless of the (possibly runtime) base alignment. *)
let offsets_known ~(analysis : Analysis.t) (stmt : Ast.stmt) =
  List.for_all
    (fun (r : Ast.mem_ref) ->
      r.Ast.ref_stride > 1 || Align.is_known (Analysis.offset_of analysis r))
    (Ast.stmt_refs stmt)

(* ------------------------------------------------------------------ *)
(* Zero-shift                                                          *)
(* ------------------------------------------------------------------ *)

(* The workers below require a bare tree — {!place} discharges
   [Graph.assert_bare] before dispatching, so their [Shift] branches are
   unreachable; they raise [Graph.Invalid] defensively rather than crash. *)
let not_bare_invalid () =
  raise (Graph.Invalid "bare-tree precondition violated (Graph.assert_bare)")

let place_zero ~(analysis : Analysis.t) ~root (stmt : Ast.stmt) : Graph.t =
  let block = analysis.Analysis.block in
  let zero = Offset.Known 0 in
  (* An interior node sits at 0 once its children are placed — unless every
     child is invariant ([Any]), which [of_expr] rules out for value trees
     but [of_cond] permits for loop-invariant guards. *)
  let join offs = if List.for_all Offset.is_any offs then Offset.Any else zero in
  let rec go (n : Graph.node) : Graph.node * Offset.t =
    match n with
    | Graph.Load r ->
      let from = load_offset ~analysis r in
      (shift_to ~block n ~from ~target:zero, if Offset.is_any from then Offset.Any else zero)
    | Graph.Strided _ -> (n, zero)
    | Graph.Splat _ -> (n, Offset.Any)
    | Graph.Op (op, a, b) ->
      let a', _ = go a in
      let b', _ = go b in
      (Graph.Op (op, a', b'), zero)
    | Graph.Cmp (c, a, b) ->
      let a', oa = go a in
      let b', ob = go b in
      (Graph.Cmp (c, a', b'), join [ oa; ob ])
    | Graph.Sel (m, a, b) ->
      let m', om = go m in
      let a', oa = go a in
      let b', ob = go b in
      (Graph.Sel (m', a', b'), join [ om; oa; ob ])
    | Graph.Shift _ -> not_bare_invalid ()
  in
  let store_offset = target_offset ~analysis stmt in
  let root, root_off = go root in
  let root = shift_to ~block root ~from:root_off ~target:store_offset in
  let mask =
    Option.map
      (fun c ->
        let m, off = go (Graph.of_cond c) in
        shift_to ~block m ~from:off ~target:store_offset)
      stmt.Ast.guard
  in
  { Graph.store = stmt.Ast.lhs; store_offset; root; block; mask }

(* ------------------------------------------------------------------ *)
(* Eager-shift                                                         *)
(* ------------------------------------------------------------------ *)

let place_eager ~(analysis : Analysis.t) ~root (stmt : Ast.stmt) : Graph.t =
  let block = analysis.Analysis.block in
  let store_offset = target_offset ~analysis stmt in
  let rec go (n : Graph.node) : Graph.node =
    match n with
    | Graph.Load r ->
      shift_to ~block n ~from:(load_offset ~analysis r) ~target:store_offset
    | Graph.Strided _ ->
      shift_to ~block n ~from:(Offset.Known 0) ~target:store_offset
    | Graph.Splat _ -> n
    | Graph.Op (op, a, b) -> Graph.Op (op, go a, go b)
    | Graph.Cmp (c, a, b) -> Graph.Cmp (c, go a, go b)
    | Graph.Sel (m, a, b) -> Graph.Sel (go m, go a, go b)
    | Graph.Shift _ -> not_bare_invalid ()
  in
  let root = go root in
  let mask = Option.map (fun c -> go (Graph.of_cond c)) stmt.Ast.guard in
  { Graph.store = stmt.Ast.lhs; store_offset; root; block; mask }

(* ------------------------------------------------------------------ *)
(* Lazy- and dominant-shift                                            *)
(* ------------------------------------------------------------------ *)

(** Shared meet-based placement. [preferred] optionally names an offset to
    meet at whenever it is one of the two candidates (the global dominant
    offset for the dominant policy; the store offset is always a secondary
    preference because meeting there elides the final store shift). *)
let place_meet ~(analysis : Analysis.t) ~preferred ~root (stmt : Ast.stmt) :
    Graph.t =
  let block = analysis.Analysis.block in
  let store_offset = target_offset ~analysis stmt in
  let choose_target offsets =
    (* mismatching operands are all [Known], but splat siblings of a
       ternary meet may contribute [Any] — never a meet candidate *)
    let candidates = List.filter (fun o -> not (Offset.is_any o)) offsets in
    let is_pref o = match preferred with Some p -> Offset.equal o p | None -> false in
    if List.exists is_pref candidates then Option.get preferred
    else if List.exists (Offset.equal store_offset) candidates then store_offset
    else List.hd candidates (* leftmost *)
  in
  let all_match offs =
    let rec go = function
      | [] | [ _ ] -> true
      | o :: rest ->
        List.for_all (fun o' -> Offset.matches ~block o o') rest && go rest
    in
    go offs
  in
  let rec go (n : Graph.node) : Graph.node * Offset.t =
    match n with
    | Graph.Load r -> (n, load_offset ~analysis r)
    | Graph.Strided _ -> (n, Offset.Known 0)
    | Graph.Splat _ -> (n, Offset.Any)
    | Graph.Op (op, a, b) ->
      let a', oa = go a in
      let b', ob = go b in
      if Offset.matches ~block oa ob then
        (Graph.Op (op, a', b'), Offset.merge ~block oa ob)
      else begin
        let target = choose_target [ oa; ob ] in
        let a' = shift_to ~block a' ~from:oa ~target in
        let b' = shift_to ~block b' ~from:ob ~target in
        (Graph.Op (op, a', b'), target)
      end
    | Graph.Cmp (c, a, b) ->
      let a', oa = go a in
      let b', ob = go b in
      if Offset.matches ~block oa ob then
        (Graph.Cmp (c, a', b'), Offset.merge ~block oa ob)
      else begin
        let target = choose_target [ oa; ob ] in
        let a' = shift_to ~block a' ~from:oa ~target in
        let b' = shift_to ~block b' ~from:ob ~target in
        (Graph.Cmp (c, a', b'), target)
      end
    | Graph.Sel (m, a, b) ->
      (* ternary meet: all three streams — mask included — must agree
         (C.3), so disagreement picks ONE common meet offset *)
      let m', om = go m in
      let a', oa = go a in
      let b', ob = go b in
      if all_match [ om; oa; ob ] then
        (Graph.Sel (m', a', b'),
         Offset.merge ~block om (Offset.merge ~block oa ob))
      else begin
        let target = choose_target [ om; oa; ob ] in
        let m' = shift_to ~block m' ~from:om ~target in
        let a' = shift_to ~block a' ~from:oa ~target in
        let b' = shift_to ~block b' ~from:ob ~target in
        (Graph.Sel (m', a', b'), target)
      end
    | Graph.Shift _ -> not_bare_invalid ()
  in
  let root, root_off = go root in
  let root = shift_to ~block root ~from:root_off ~target:store_offset in
  let mask =
    Option.map
      (fun c ->
        let m, off = go (Graph.of_cond c) in
        shift_to ~block m ~from:off ~target:store_offset)
      stmt.Ast.guard
  in
  { Graph.store = stmt.Ast.lhs; store_offset; root; block; mask }

(** The dominant stream offset of a statement: the most frequent offset
    among all load leaves and the store. Ties break toward the store
    alignment (saving the root shift), then toward the smallest byte
    offset (determinism). *)
let dominant_offset ~(analysis : Analysis.t) (stmt : Ast.stmt) : Offset.t =
  let store_offset = target_offset ~analysis stmt in
  let offsets =
    store_offset
    :: List.map
         (fun (r : Ast.mem_ref) ->
           if r.Ast.ref_stride > 1 then Offset.Known 0
           else load_offset ~analysis r)
         (Ast.stmt_loads stmt)
  in
  let offsets = List.filter (fun o -> not (Offset.is_any o)) offsets in
  let counted = Simd_support.Util.group_count offsets in
  let best =
    List.fold_left
      (fun acc (o, c) ->
        match acc with
        | None -> Some (o, c)
        | Some (bo, bc) ->
          if
            c > bc
            || (c = bc && Offset.equal o store_offset && not (Offset.equal bo store_offset))
            || c = bc
               && (not (Offset.equal bo store_offset))
               && Offset.compare o bo < 0
          then Some (o, c)
          else acc)
      None counted
  in
  match best with Some (o, _) -> o | None -> store_offset

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** [place ?root policy ~analysis stmt] — build the statement's valid data
    reorganization graph under [policy]. [root] (default
    [Graph.of_expr stmt.rhs]) lets the caller supply a pre-built bare tree;
    the bare-tree precondition is checked either way, so a re-placed graph
    fed back through a policy yields [Not_bare], not a crash. *)
let place ?root (policy : t) ~(analysis : Analysis.t) (stmt : Ast.stmt) :
    (Graph.t, error) result =
  let root =
    match root with Some r -> r | None -> Graph.of_expr stmt.Ast.rhs
  in
  match Graph.assert_bare root with
  | Error msg -> Error (Not_bare (policy, msg))
  | Ok () -> (
    match policy with
    | Optimal | Auto | Joint -> Error (Requires_solver policy)
    | Zero -> Ok (place_zero ~analysis ~root stmt)
    | (Eager | Lazy | Dominant) when not (offsets_known ~analysis stmt) ->
      Error (Requires_compile_time_alignment policy)
    | Eager -> Ok (place_eager ~analysis ~root stmt)
    | Lazy -> Ok (place_meet ~analysis ~preferred:None ~root stmt)
    | Dominant ->
      Ok
        (place_meet ~analysis
           ~preferred:(Some (dominant_offset ~analysis stmt))
           ~root stmt))

(** [place_exn] — [place], raising on policy/alignment mismatch. *)
let place_exn ?root policy ~analysis stmt =
  match place ?root policy ~analysis stmt with
  | Ok g -> g
  | Error e -> invalid_arg (Format.asprintf "Policy.place_exn: %a" pp_error e)
