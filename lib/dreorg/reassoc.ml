(** Common-offset reassociation (paper §5.5, "OffsetReassoc").

    Uses associativity and commutativity to regroup chains of one operator
    so that operands with identical stream offsets are combined first. After
    regrouping, each same-offset group forms a shift-free subtree, so the
    lazy/dominant policies only pay one stream shift per {e distinct}
    offset (minus one), which is the analytic minimum the paper's LB model
    charges — this is what makes those policies reach "on average no shift
    overhead over LB" in Figure 12.

    Group ordering: the group whose offset equals the store alignment is
    placed first (the lazy meet then targets it and the final store shift is
    elided); remaining groups follow by decreasing size, ties by first
    appearance. Only chains of associative-commutative operators are
    touched; [Sub] and mixed-operator trees are left alone. *)

open Simd_loopir

(** [flatten op e] — operands of the maximal [op]-chain rooted at [e]
    (left-to-right). *)
let rec flatten (op : Ast.binop) (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Binop (op', a, b) when op' = op && Simd_machine.Lane.binop_associative op ->
    flatten op a @ flatten op b
  | _ -> [ e ]

(** [rebuild op es] — left-leaning chain. *)
let rebuild (op : Ast.binop) (es : Ast.expr list) : Ast.expr =
  match es with
  | [] -> invalid_arg "Reassoc.rebuild: empty operand list"
  | e :: rest -> List.fold_left (fun acc x -> Ast.Binop (op, acc, x)) e rest

(** Offset key of an operand subtree for grouping: the uniform compile-time
    offset of its loads if it has one, [`Any] if it is invariant, [`Mixed]
    otherwise (mixed or runtime subtrees are never regrouped with others). *)
let operand_key ~(analysis : Analysis.t) (e : Ast.expr) =
  let loads = Ast.expr_loads e in
  if loads = [] then `Any
  else
    let offs =
      List.map
        (fun (r : Ast.mem_ref) ->
          (* a strided gather delivers its stream at offset 0 *)
          if r.Ast.ref_stride > 1 then Align.Known 0
          else Analysis.offset_of analysis r)
        loads
    in
    match offs with
    | [] -> `Any
    | o :: rest ->
      if List.for_all (Align.equal o) rest then
        match o with Align.Known k -> `Known k | Align.Runtime -> `Mixed
      else `Mixed

(** [apply ~analysis stmt] — reassociate the statement's right-hand side.
    The transformation is semantics-preserving for the wrap-around machine
    arithmetic we model (all regrouped operators are associative and
    commutative on every lane width). *)
let apply ~(analysis : Analysis.t) (stmt : Ast.stmt) : Ast.stmt =
  let store_off = Analysis.offset_of analysis stmt.Ast.lhs in
  let rec rewrite (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Load _ | Ast.Param _ | Ast.Const _ -> e
    | Ast.Binop (op, _, _) when Simd_machine.Lane.binop_commutative op -> (
      let operands = flatten op e in
      match operands with
      | [ _ ] | [] -> e
      | _ ->
        let operands = List.map rewrite operands in
        (* Group by offset key, preserving first-appearance order. *)
        let keys =
          Simd_support.Util.dedup (List.map (operand_key ~analysis) operands)
        in
        let groups =
          List.map
            (fun k ->
              (k, List.filter (fun o -> operand_key ~analysis o = k) operands))
            keys
        in
        let store_key =
          match store_off with Align.Known k -> `Known k | Align.Runtime -> `Mixed
        in
        (* Store-aligned group first, then by decreasing size (stable). *)
        let score (k, members) =
          let first = if k = store_key && k <> `Mixed then 0 else 1 in
          (first, -List.length members)
        in
        let groups = List.stable_sort (fun a b -> compare (score a) (score b)) groups in
        rebuild op (List.map (fun (_, members) -> rebuild op members) groups))
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rewrite a, rewrite b)
    | Ast.Select (c, a, b) ->
      (* a select is an opaque regrouping boundary; reassociate within its
         condition operands and arms independently *)
      Ast.Select
        ( { c with Ast.cl = rewrite c.Ast.cl; Ast.cr = rewrite c.Ast.cr },
          rewrite a, rewrite b )
  in
  { stmt with Ast.rhs = rewrite stmt.Ast.rhs }

(** [apply_program ~analysis program] — reassociate every statement. *)
let apply_program ~(analysis : Analysis.t) (program : Ast.program) : Ast.program =
  {
    program with
    Ast.loop =
      {
        program.Ast.loop with
        Ast.body = List.map (apply ~analysis) program.Ast.loop.body;
      };
  }
