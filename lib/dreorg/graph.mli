(** The data reorganization graph (paper §3.3): an expression tree
    augmented with stream offsets and [vshiftstream] nodes, subject to the
    validity constraints (C.2) (root offset = store alignment) and (C.3)
    (operand offsets match). *)

type node =
  | Load of Simd_loopir.Ast.mem_ref  (** offset = alignment of addr(0), Eq. 1 *)
  | Strided of Simd_loopir.Ast.mem_ref
      (** strided-gather leaf (extension); stream offset 0 by construction *)
  | Op of Simd_loopir.Ast.binop * node * node
  | Splat of Simd_loopir.Ast.expr  (** offset ⊥, Eq. 6 *)
  | Shift of node * Offset.t * Offset.t  (** vshiftstream (src, from, to), Eq. 5 *)
  | Cmp of Simd_loopir.Ast.cmp * node * node
      (** mask-producing lane compare ([vcmp]); an ordinary vop for (C.3) *)
  | Sel of node * node * node
      (** lane blend [vsel(mask, a, b)]; all three operands obey (C.3) *)
[@@deriving show, eq]

type t = {
  store : Simd_loopir.Ast.mem_ref;
  store_offset : Offset.t;  (** never [Any] *)
  root : node;
  block : int;
  mask : node option;
      (** store mask, present iff the statement is guarded; placed at the
          store offset like the value tree ((C.2) analogue for masks) *)
}

val is_invariant : Simd_loopir.Ast.expr -> bool
(** No reference to the loop counter — the subtree becomes one [Splat]. *)

val of_expr : Simd_loopir.Ast.expr -> node
(** The bare graph with no reordering nodes — "simdize as if there were no
    alignment constraints". Maximal invariant subtrees become [Splat]s. *)

val of_cond : Simd_loopir.Ast.cond -> node
(** The bare mask tree of a guard: a [Cmp] over the operand trees. *)

val find_shift : node -> (Offset.t * Offset.t) option
(** Endpoints of the first [Shift] node of the subtree, if any. *)

val is_bare : node -> bool
(** No [Shift] nodes anywhere in the subtree. *)

val assert_bare : node -> (unit, string) result
(** The checked precondition of every placement policy and the exact
    solver: placement starts from the bare expression tree. An
    already-placed tree yields a diagnosable [Error] naming the offending
    [vshiftstream]. *)

type chain = {
  chain_ref : Simd_loopir.Ast.mem_ref;
  chain_gather : bool;
  chain_hops : (Offset.t * Offset.t) list;  (** leaf-outward, non-empty *)
}
(** A shareable reorganization chain: a [Shift] whose whole subtree is
    shifts over one leaf. Equal chains in different statements lower to one
    shared [vshiftstream] under value numbering. *)

val equal_chain : chain -> chain -> bool

val chain_of : node -> chain option
(** [Some] when the node is a shareable [Shift]; [None] otherwise. *)

val chains : node -> chain list
(** Every shareable [Shift] node of the subtree, one entry per hop. *)

val all_chains : t -> chain list
(** Shareable chains of the whole graph, mask tree included. *)

exception Invalid of string

val offset_of : analysis:Simd_loopir.Analysis.t -> node -> Offset.t
(** A node's stream offset; raises {!Invalid} on constraint violations. *)

val validate : analysis:Simd_loopir.Analysis.t -> t -> (unit, string) result
(** Check (C.2) and (C.3) for the whole graph, mask tree included. *)

val shift_count : node -> int
(** Number of [Shift] nodes in the subtree — the paper's comparison metric
    for the §3.4 policies. *)

val graph_shift_count : t -> int
(** {!shift_count} of the root plus the mask tree. *)

val leaf_offsets : analysis:Simd_loopir.Analysis.t -> node -> Offset.t list
(** Stream offsets of the [Load]/[Strided]/[Splat] leaves, left to
    right. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
