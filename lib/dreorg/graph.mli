(** The data reorganization graph (paper §3.3): an expression tree
    augmented with stream offsets and [vshiftstream] nodes, subject to the
    validity constraints (C.2) (root offset = store alignment) and (C.3)
    (operand offsets match). *)

type node =
  | Load of Simd_loopir.Ast.mem_ref  (** offset = alignment of addr(0), Eq. 1 *)
  | Strided of Simd_loopir.Ast.mem_ref
      (** strided-gather leaf (extension); stream offset 0 by construction *)
  | Op of Simd_loopir.Ast.binop * node * node
  | Splat of Simd_loopir.Ast.expr  (** offset ⊥, Eq. 6 *)
  | Shift of node * Offset.t * Offset.t  (** vshiftstream (src, from, to), Eq. 5 *)
[@@deriving show, eq]

type t = {
  store : Simd_loopir.Ast.mem_ref;
  store_offset : Offset.t;  (** never [Any] *)
  root : node;
  block : int;
}

val is_invariant : Simd_loopir.Ast.expr -> bool
(** No reference to the loop counter — the subtree becomes one [Splat]. *)

val of_expr : Simd_loopir.Ast.expr -> node
(** The bare graph with no reordering nodes — "simdize as if there were no
    alignment constraints". Maximal invariant subtrees become [Splat]s. *)

exception Invalid of string

val offset_of : analysis:Simd_loopir.Analysis.t -> node -> Offset.t
(** A node's stream offset; raises {!Invalid} on constraint violations. *)

val validate : analysis:Simd_loopir.Analysis.t -> t -> (unit, string) result
(** Check (C.2) and (C.3) for the whole graph. *)

val shift_count : node -> int
(** Number of [Shift] nodes in the subtree — the paper's comparison metric
    for the §3.4 policies. *)

val graph_shift_count : t -> int
(** {!shift_count} of the root. *)

val leaf_offsets : analysis:Simd_loopir.Analysis.t -> node -> Offset.t list
(** Stream offsets of the [Load]/[Strided]/[Splat] leaves, left to
    right. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
