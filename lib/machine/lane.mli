(** Lane-level scalar arithmetic: two's-complement values of width
    [D ∈ {1, 2, 4, 8}] bytes carried as sign-extended [int64]s, with all
    operations wrapping modulo [2^(8D)]. *)

type width = int
(** Element width in bytes: 1, 2, 4 or 8. *)

val check_width : width -> unit
(** Raises [Invalid_argument] on unsupported widths. *)

val bits : width -> int

val canonicalize : width -> int64 -> int64
(** Truncate to [D] bytes and sign-extend. *)

val min_value : width -> int64
val max_value : width -> int64

(** Binary lane operations (the loop IR's operator set). *)
type binop = Add | Sub | Mul | Min | Max | And | Or | Xor

val all_binops : binop list
val binop_name : binop -> string

val binop_commutative : binop -> bool
(** Used by common-offset reassociation and the reduction extension. *)

val binop_associative : binop -> bool

(** Lane comparisons (predication extension): signed compares over
    canonical values. *)
type cmp = Lt | Le | Gt | Ge | Eq | Ne

val all_cmps : cmp list
val cmp_name : cmp -> string

val negate_cmp : cmp -> cmp
(** Complement over the same operand order: [negate_cmp c a b = not (c a b)]. *)

val apply_cmp : width -> cmp -> int64 -> int64 -> bool
(** Evaluate one lane comparison (signed, canonical). *)

val pp_cmp : Format.formatter -> cmp -> unit

val apply : width -> binop -> int64 -> int64 -> int64
(** Evaluate one lane, wrapping to the width; the result is canonical. *)

val pp_binop : Format.formatter -> binop -> unit
