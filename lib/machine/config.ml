(** Target-machine description.

    The paper targets "generic 16-byte wide SIMD units that are representative
    of most SIMD architectures currently available" whose load-store unit
    supports only [V]-byte aligned loads and stores (AltiVec semantics: the
    low bits of the address are silently ignored). We keep the vector length
    configurable so that tests can exercise 8- and 32-byte machines as well. *)

(** Static per-operation weights for the reorganization cost model used by
    the exact shift-placement solver ({!Simd.Opt}) and its reports.

    The asymmetry that matters is [shift_left] vs [shift_right]: a stream
    shift lowers to one [vshiftpair] either way (Fig. 7), but a {e right}
    shift combines the current register with the {e previous} one — the
    register of iteration [i − B] — so the prologue must prepend a load of
    data {e before} the stream start (the [v_old] initialisation of
    Eqs. 8–10), and the steady state carries one extra live value. A left
    shift pairs with the {e next} register, data the loop was about to load
    anyway. Hence right shifts default slightly more expensive; all other
    weights default to 1 so that costs degenerate to reorganization-op
    counts when directions do not discriminate. *)
type cost_model = {
  load : float;  (** one [vload] per simdized iteration *)
  store : float;  (** one [vstore] *)
  op : float;  (** one [vop] *)
  splat : float;  (** one [vsplat] (hoisted in practice) *)
  shift_left : float;  (** [vshiftstream] lowered as a left [vshiftpair] *)
  shift_right : float;
      (** right [vshiftpair]: needs the previous register, i.e. a prologue
          prepended load (Eqs. 8–10) *)
  splice : float;  (** one [vsplice] (prologue/epilogue edge stores) *)
  pack : float;  (** one [vpack] level of a strided gather *)
  cmp : float;  (** one [vcmp] (mask-producing compare; predication) *)
  sel : float;  (** one [vsel] (mask blend, including a masked store's) *)
}

let default_costs =
  {
    load = 1.0;
    store = 1.0;
    op = 1.0;
    splat = 1.0;
    shift_left = 1.0;
    shift_right = 1.25;
    splice = 1.0;
    pack = 1.0;
    cmp = 1.0;
    sel = 1.0;
  }

type t = {
  vector_len : int;  (** [V]: vector register length in bytes; a power of two. *)
  costs : cost_model;
}

let check_costs costs =
  let ok f = f >= 0.0 && Float.is_finite f in
  if
    not
      (List.for_all ok
         [
           costs.load; costs.store; costs.op; costs.splat; costs.shift_left;
           costs.shift_right; costs.splice; costs.pack; costs.cmp; costs.sel;
         ])
  then
    invalid_arg "Config.with_costs: cost weights must be finite and non-negative"

let create ~vector_len =
  if not (Simd_support.Util.is_pow2 vector_len) then
    invalid_arg "Config.create: vector_len must be a power of two";
  if vector_len < 4 || vector_len > 64 then
    invalid_arg "Config.create: vector_len out of supported range [4, 64]";
  { vector_len; costs = default_costs }

(** [with_costs costs t] — the same machine with replaced cost-model
    weights (must be finite and non-negative). *)
let with_costs costs t =
  check_costs costs;
  { t with costs }

(** The paper's machine: V = 16 bytes (AltiVec / VMX / SSE class). *)
let default = create ~vector_len:16

let vector_len t = t.vector_len
let costs t = t.costs

(** [shift_cost t dir] — the weight of one stream shift lowered in the
    given direction. *)
let shift_cost t = function
  | `Left -> t.costs.shift_left
  | `Right -> t.costs.shift_right

(** [blocking_factor t ~elem] is [B = V/D] (paper Eq. 7): the number of data
    of width [elem] packed in one vector register. *)
let blocking_factor t ~elem =
  if elem <= 0 || t.vector_len mod elem <> 0 then
    invalid_arg "Config.blocking_factor: element width must divide V";
  t.vector_len / elem

(** [truncate_addr t addr] models the memory unit: the effective address of a
    vector load or store is [addr] with its low [log2 V] bits ignored. *)
let truncate_addr t addr = addr land lnot (t.vector_len - 1)

(** [alignment t addr] is [addr mod V]: the byte offset of [addr] within its
    enclosing [V]-byte chunk. This is what the paper calls the (mis)alignment
    of a memory reference. *)
let alignment t addr = addr land (t.vector_len - 1)

let pp fmt t = Format.fprintf fmt "machine(V=%d)" t.vector_len
