(** Target-machine description: a SIMD unit with [V]-byte vector registers
    whose loads and stores silently truncate addresses to [V]-byte
    boundaries (AltiVec semantics; paper §1/§2.1). *)

type t

(** Static per-operation weights for the reorganization cost model (used by
    the exact shift-placement solver {!Simd.Opt} and its reports). Left and
    right stream shifts are weighted separately: a right shift pairs the
    current register with the {e previous} one, forcing a prologue
    prepended load (Eqs. 8–10), so it defaults slightly more expensive. *)
type cost_model = {
  load : float;
  store : float;
  op : float;
  splat : float;
  shift_left : float;
  shift_right : float;
  splice : float;
  pack : float;
  cmp : float;  (** one [vcmp] (predication extension) *)
  sel : float;  (** one [vsel] (blend; also a masked store's) *)
}

val default_costs : cost_model
(** Every weight 1 except [shift_right = 1.25]. *)

val create : vector_len:int -> t
(** [create ~vector_len] — a machine with [V = vector_len] bytes per vector
    register; must be a power of two in [\[4, 64\]]; default cost weights. *)

val with_costs : cost_model -> t -> t
(** Replace the cost-model weights (must be finite and non-negative). *)

val default : t
(** The paper's machine: V = 16 bytes (AltiVec / VMX / SSE class). *)

val vector_len : t -> int

val costs : t -> cost_model

val shift_cost : t -> [ `Left | `Right ] -> float
(** The weight of one stream shift lowered in the given direction. *)

val blocking_factor : t -> elem:int -> int
(** [B = V/D] (paper Eq. 7): data of width [elem] per vector register. *)

val truncate_addr : t -> int -> int
(** The effective address of a vector memory access: low [log2 V] bits
    cleared. *)

val alignment : t -> int -> int
(** [addr mod V]: the byte offset of an address within its enclosing chunk
    — the paper's (mis)alignment of a reference. *)

val pp : Format.formatter -> t -> unit
