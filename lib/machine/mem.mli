(** Byte-addressed memory with the paper's truncating vector access
    semantics ("a load instruction loads 16-byte contiguous memory from
    16-byte aligned memory, ignoring the last 4 bits of the address").
    Counts dynamic accesses by class. *)

type t

val create : Config.t -> size:int -> t
val size : t -> int
val config : t -> Config.t
val copy : t -> t

val load_vector : t -> int -> Vec.t
(** Truncating vector load; counts one dynamic vector load. *)

val effective_vector_addr : t -> int -> int
(** The address a vector access actually touches (for load tracing). *)

val store_vector : t -> int -> Vec.t -> unit
(** Truncating vector store; counts one dynamic vector store. *)

val store_vector_masked : t -> int -> Vec.t -> Vec.t -> unit
(** [store_vector_masked t addr vec mask] — truncating masked vector store:
    only bytes whose mask byte is set are written. Counts one dynamic
    vector store. *)

val load_scalar : t -> elem:int -> int -> int64
(** Byte-exact scalar load (little-endian, signed); counted. *)

val store_scalar : t -> elem:int -> int -> int64 -> unit
(** Byte-exact scalar store; counted. *)

val peek_bytes : t -> int -> int -> bytes
(** Inspection without counting. *)

val peek_scalar : t -> elem:int -> int -> int64
val poke_scalar : t -> elem:int -> int -> int64 -> unit

val fill_random : t -> Simd_support.Prng.t -> unit
(** Fill the arena with deterministic noise (differential-test worlds). *)

type counters = {
  scalar_loads : int;
  scalar_stores : int;
  vector_loads : int;
  vector_stores : int;
}

val counters : t -> counters
val reset_counters : t -> unit

val equal_region : t -> t -> addr:int -> len:int -> bool
(** Compare a byte range across two arenas. *)
