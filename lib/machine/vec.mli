(** Vector register values and the generic data-reorganization operations
    of paper §2.2 ([vsplat], [vshiftpair], [vsplice]).

    A value is an immutable [V]-byte register; lanes of width [D] occupy
    ascending byte offsets, little-endian (so the simulator agrees with the
    C the emitter produces on x86-64). *)

type t

val length : t -> int

val zero : vector_len:int -> t
val of_bytes : bytes -> t
val to_bytes : t -> bytes
val get_byte : t -> int -> int

val init : vector_len:int -> (int -> int) -> t
(** [init ~vector_len f] — byte [k] is [f k land 0xff]. *)

val equal : t -> t -> bool

val read_lane : t -> elem:int -> lane:int -> int64
(** Sign-extended lane read. *)

val write_lane : bytes -> elem:int -> lane:int -> int64 -> unit
(** Write into a mutable scratch buffer. *)

val of_lanes : vector_len:int -> elem:int -> int64 list -> t
val to_lanes : t -> elem:int -> int64 list

val splat : vector_len:int -> elem:int -> int64 -> t
(** Replicate a scalar across all lanes ([vsplat]). *)

val shiftpair : t -> t -> shift:int -> t
(** Bytes [\[shift, shift+V)] of the concatenation ([vshiftpair],
    AltiVec [vec_perm]). Domain [0 ≤ shift ≤ V]; [V] selects the second
    operand entirely (needed by runtime right-shifts of aligned stores). *)

val splice : t -> t -> point:int -> t
(** First [point] bytes of the first operand, rest of the second
    ([vsplice], AltiVec [vec_sel]). Domain [0 ≤ point ≤ V]. *)

val binop : elem:int -> Lane.binop -> t -> t -> t
(** Lane-wise operation at the given width. *)

val cmp : elem:int -> Lane.cmp -> t -> t -> t
(** Lane-wise comparison producing an all-ones/all-zeros mask per lane
    ([vcmp]; AltiVec [vec_cmpgt], SSE [pcmpgtd] class). *)

val select : t -> t -> t -> t
(** [select m a b] — bitwise select [(m & a) | (~m & b)] ([vsel]; AltiVec
    [vec_sel]). *)

val pp : ?elem:int -> Format.formatter -> t -> unit

val pack_even : elem:int -> t -> t -> t
(** Even-indexed elements of the 2V concatenation — the gather step of the
    strided-load extension (AltiVec [vec_perm] / SSSE3 [pshufb] class). *)
