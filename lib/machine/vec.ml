(** Vector register values and the generic data-reorganization operations.

    A vector value is an immutable array of [V] bytes. Lanes of width [D] are
    laid out at ascending byte offsets — lane [k] occupies bytes
    [k*D .. (k+1)*D - 1] — and are encoded little-endian so that the
    simulator, the portable-C emitter output (run on x86-64 in tests) and the
    scalar interpreter all agree on memory contents.

    The three generic reorganization operations are the ones of paper §2.2:
    [splat], [shiftpair] and [splice]. *)

type t = Bytes.t
(* Invariant: never mutated after construction; length = V of the machine. *)

let length = Bytes.length

let check_same_len v1 v2 =
  if Bytes.length v1 <> Bytes.length v2 then
    invalid_arg "Vec: vector length mismatch"

let zero ~vector_len = Bytes.make vector_len '\000'

let of_bytes b = Bytes.copy b
let to_bytes v = Bytes.copy v

let get_byte v i = Char.code (Bytes.get v i)

let init ~vector_len f =
  Bytes.init vector_len (fun i -> Char.chr (f i land 0xff))

let equal = Bytes.equal

(** [read_lane v ~elem ~lane] reads lane [lane] of width [elem], sign-extended
    (little-endian byte order). *)
let read_lane v ~elem ~lane =
  Lane.check_width elem;
  let base = lane * elem in
  if base < 0 || base + elem > Bytes.length v then
    invalid_arg "Vec.read_lane: lane out of range";
  let raw = ref 0L in
  for k = elem - 1 downto 0 do
    raw := Int64.logor (Int64.shift_left !raw 8) (Int64.of_int (get_byte v (base + k)))
  done;
  Lane.canonicalize elem !raw

(** [write_lane b ~elem ~lane value] writes into a mutable scratch buffer. *)
let write_lane b ~elem ~lane value =
  Lane.check_width elem;
  let base = lane * elem in
  if base < 0 || base + elem > Bytes.length b then
    invalid_arg "Vec.write_lane: lane out of range";
  let v = ref value in
  for k = 0 to elem - 1 do
    Bytes.set b (base + k) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done

(** [of_lanes ~vector_len ~elem lanes] builds a vector from [V/D] lane
    values. *)
let of_lanes ~vector_len ~elem lanes =
  if List.length lanes * elem <> vector_len then
    invalid_arg "Vec.of_lanes: wrong number of lanes";
  let b = Bytes.make vector_len '\000' in
  List.iteri (fun lane v -> write_lane b ~elem ~lane v) lanes;
  b

(** [to_lanes v ~elem] reads out all lanes. *)
let to_lanes v ~elem =
  let n = Bytes.length v / elem in
  List.init n (fun lane -> read_lane v ~elem ~lane)

(** [splat ~vector_len ~elem x] replicates the scalar [x] across all lanes —
    paper §2.2 [vsplat], AltiVec [vec_splat]. *)
let splat ~vector_len ~elem x =
  let b = Bytes.make vector_len '\000' in
  for lane = 0 to (vector_len / elem) - 1 do
    write_lane b ~elem ~lane x
  done;
  b

(** [shiftpair v1 v2 ~shift] selects bytes [shift .. shift+V-1] from the
    double-length concatenation [v1 ++ v2] — paper §2.2 [vshiftpair],
    implementable with AltiVec [vec_perm]. Requires [0 <= shift <= V]
    ([shift = 0] copies [v1]; [shift = V] copies [v2] — the latter arises in
    runtime right-shift code when the store turns out to be aligned, where
    the shift amount is computed as [V - offset] with [offset = 0]). *)
let shiftpair v1 v2 ~shift =
  check_same_len v1 v2;
  let v = Bytes.length v1 in
  if shift < 0 || shift > v then invalid_arg "Vec.shiftpair: shift out of range";
  Bytes.init v (fun i ->
      let src = i + shift in
      if src < v then Bytes.get v1 src else Bytes.get v2 (src - v))

(** [splice v1 v2 ~point] concatenates the first [point] bytes of [v1] with
    the last [V - point] bytes of [v2]: [out.(j) = if j < point then v1.(j)
    else v2.(j)] — paper §2.2 [vsplice], implementable with AltiVec
    [vec_sel]. [point = 0] copies [v2]; [point = V] copies [v1]. *)
let splice v1 v2 ~point =
  check_same_len v1 v2;
  let v = Bytes.length v1 in
  if point < 0 || point > v then invalid_arg "Vec.splice: point out of range";
  Bytes.init v (fun i -> if i < point then Bytes.get v1 i else Bytes.get v2 i)

(** [binop ~elem op v1 v2] applies [op] lane-wise at width [elem]. *)
let binop ~elem op v1 v2 =
  check_same_len v1 v2;
  Lane.check_width elem;
  let vl = Bytes.length v1 in
  if vl mod elem <> 0 then invalid_arg "Vec.binop: width does not divide V";
  let out = Bytes.make vl '\000' in
  for lane = 0 to (vl / elem) - 1 do
    let a = read_lane v1 ~elem ~lane and b = read_lane v2 ~elem ~lane in
    write_lane out ~elem ~lane (Lane.apply elem op a b)
  done;
  out

(** [cmp ~elem c v1 v2] compares lane-wise at width [elem], producing the
    SIMD-style mask vector: each result lane is all-ones where the
    comparison holds and all-zeros where it does not (AltiVec [vec_cmpgt],
    SSE [pcmpgtd] class). *)
let cmp ~elem c v1 v2 =
  check_same_len v1 v2;
  Lane.check_width elem;
  let vl = Bytes.length v1 in
  if vl mod elem <> 0 then invalid_arg "Vec.cmp: width does not divide V";
  let out = Bytes.make vl '\000' in
  for lane = 0 to (vl / elem) - 1 do
    let a = read_lane v1 ~elem ~lane and b = read_lane v2 ~elem ~lane in
    if Lane.apply_cmp elem c a b then write_lane out ~elem ~lane (-1L)
  done;
  out

(** [select m v1 v2] — bitwise select: byte [k] of the result comes from
    [v1] where the mask byte is set and from [v2] where it is clear
    ([(m & v1) | (~m & v2)]; AltiVec [vec_sel], SSE and/andnot/or). Masks
    produced by {!cmp} have all-ones/all-zeros lanes, so lane granularity
    follows from byte granularity. *)
let select m v1 v2 =
  check_same_len m v1;
  check_same_len v1 v2;
  Bytes.init (Bytes.length m) (fun i ->
      let mb = get_byte m i in
      Char.chr ((mb land get_byte v1 i) lor (lnot mb land 0xff land get_byte v2 i)))

let pp ?(elem = 4) fmt v =
  let lanes = to_lanes v ~elem in
  Format.fprintf fmt "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (fun f x -> Format.fprintf f "%Ld" x))
    lanes

(** [pack_even ~elem v1 v2] selects the even-indexed elements of the
    2V-byte concatenation [v1 ++ v2]: output lane [k] is concat lane [2k].
    This is the gather step of the strided-load extension, implementable
    with AltiVec [vec_perm] (compile-time mask) or SSSE3 [pshufb]. *)
let pack_even ~elem v1 v2 =
  check_same_len v1 v2;
  Lane.check_width elem;
  let vl = Bytes.length v1 in
  if vl mod elem <> 0 then invalid_arg "Vec.pack_even: width does not divide V";
  let lanes = vl / elem in
  let out = Bytes.make vl '\000' in
  for k = 0 to lanes - 1 do
    let src = 2 * k in
    let value =
      if src < lanes then read_lane v1 ~elem ~lane:src
      else read_lane v2 ~elem ~lane:(src - lanes)
    in
    write_lane out ~elem ~lane:k value
  done;
  out
