(** Byte-addressed memory with the paper's truncating vector access semantics.

    Memory is a flat byte arena. Vector loads and stores ignore the low
    [log2 V] address bits, exactly as AltiVec's [lvx]/[stvx] do (paper §1:
    "a load instruction loads 16-byte contiguous memory from 16-byte aligned
    memory, ignoring the last 4 bits of the memory address"). Scalar accesses
    are byte-exact. The simulator places arrays with guard padding so that
    truncated accesses just past either end of an array stay in bounds. *)

type t = {
  config : Config.t;
  data : Bytes.t;
  mutable scalar_loads : int;
  mutable scalar_stores : int;
  mutable vector_loads : int;
  mutable vector_stores : int;
}

let create config ~size =
  if size <= 0 then invalid_arg "Mem.create: non-positive size";
  {
    config;
    data = Bytes.make size '\000';
    scalar_loads = 0;
    scalar_stores = 0;
    vector_loads = 0;
    vector_stores = 0;
  }

let size t = Bytes.length t.data
let config t = t.config

let copy t =
  {
    config = t.config;
    data = Bytes.copy t.data;
    scalar_loads = t.scalar_loads;
    scalar_stores = t.scalar_stores;
    vector_loads = t.vector_loads;
    vector_stores = t.vector_stores;
  }

let check_range t addr len what =
  if addr < 0 || addr + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Mem.%s: address %d (+%d) out of arena [0, %d)" what addr
         len (Bytes.length t.data))

(** [load_vector t addr] — truncating vector load; counts one dynamic vector
    load. *)
let load_vector t addr =
  let v = Config.vector_len t.config in
  let base = Config.truncate_addr t.config addr in
  check_range t base v "load_vector";
  t.vector_loads <- t.vector_loads + 1;
  Vec.of_bytes (Bytes.sub t.data base v)

(** [effective_vector_addr t addr] — the address a vector access actually
    touches (for never-load-twice instrumentation). *)
let effective_vector_addr t addr = Config.truncate_addr t.config addr

(** [store_vector t addr vec] — truncating vector store; counts one dynamic
    vector store. *)
let store_vector t addr vec =
  let v = Config.vector_len t.config in
  if Vec.length vec <> v then invalid_arg "Mem.store_vector: wrong vector length";
  let base = Config.truncate_addr t.config addr in
  check_range t base v "store_vector";
  t.vector_stores <- t.vector_stores + 1;
  Bytes.blit (Vec.to_bytes vec) 0 t.data base v

(** [store_vector_masked t addr vec mask] — truncating masked vector store
    (the predication extension): bytes whose mask byte is set are written,
    bytes whose mask byte is clear leave memory untouched. Masks produced
    by {!Vec.cmp} are all-ones/all-zeros per lane, so this is lane-granular
    in practice. Counts one dynamic vector store. *)
let store_vector_masked t addr vec mask =
  let v = Config.vector_len t.config in
  if Vec.length vec <> v || Vec.length mask <> v then
    invalid_arg "Mem.store_vector_masked: wrong vector length";
  let base = Config.truncate_addr t.config addr in
  check_range t base v "store_vector_masked";
  t.vector_stores <- t.vector_stores + 1;
  let vb = Vec.to_bytes vec in
  for k = 0 to v - 1 do
    if Vec.get_byte mask k <> 0 then Bytes.set t.data (base + k) (Bytes.get vb k)
  done

(** [load_scalar t ~elem addr] — byte-exact scalar load of an [elem]-byte
    little-endian signed value; counts one dynamic scalar load. *)
let load_scalar t ~elem addr =
  Lane.check_width elem;
  check_range t addr elem "load_scalar";
  t.scalar_loads <- t.scalar_loads + 1;
  let raw = ref 0L in
  for k = elem - 1 downto 0 do
    raw :=
      Int64.logor (Int64.shift_left !raw 8)
        (Int64.of_int (Char.code (Bytes.get t.data (addr + k))))
  done;
  Lane.canonicalize elem !raw

(** [store_scalar t ~elem addr v] — byte-exact scalar store; counts one
    dynamic scalar store. *)
let store_scalar t ~elem addr v =
  Lane.check_width elem;
  check_range t addr elem "store_scalar";
  t.scalar_stores <- t.scalar_stores + 1;
  let x = ref v in
  for k = 0 to elem - 1 do
    Bytes.set t.data (addr + k) (Char.chr (Int64.to_int (Int64.logand !x 0xFFL)));
    x := Int64.shift_right_logical !x 8
  done

(** [peek_bytes t addr len] — inspection without counting (for test oracles
    and memory diffing). *)
let peek_bytes t addr len =
  check_range t addr len "peek_bytes";
  Bytes.sub t.data addr len

(** [peek_scalar t ~elem addr] — inspection without counting. *)
let peek_scalar t ~elem addr =
  Lane.check_width elem;
  check_range t addr elem "peek_scalar";
  let raw = ref 0L in
  for k = elem - 1 downto 0 do
    raw :=
      Int64.logor (Int64.shift_left !raw 8)
        (Int64.of_int (Char.code (Bytes.get t.data (addr + k))))
  done;
  Lane.canonicalize elem !raw

(** [poke_scalar t ~elem addr v] — initialization without counting. *)
let poke_scalar t ~elem addr v =
  Lane.check_width elem;
  check_range t addr elem "poke_scalar";
  let x = ref v in
  for k = 0 to elem - 1 do
    Bytes.set t.data (addr + k) (Char.chr (Int64.to_int (Int64.logand !x 0xFFL)));
    x := Int64.shift_right_logical !x 8
  done

(** [fill_random t prng] — fill the whole arena with deterministic noise so
    that "garbage" bytes around arrays are distinguishable from zeros in
    differential tests. *)
let fill_random t prng =
  for i = 0 to Bytes.length t.data - 1 do
    Bytes.set t.data i (Char.chr (Simd_support.Prng.int prng ~bound:256))
  done

type counters = {
  scalar_loads : int;
  scalar_stores : int;
  vector_loads : int;
  vector_stores : int;
}

let counters (t : t) : counters =
  {
    scalar_loads = t.scalar_loads;
    scalar_stores = t.scalar_stores;
    vector_loads = t.vector_loads;
    vector_stores = t.vector_stores;
  }

let reset_counters (t : t) =
  t.scalar_loads <- 0;
  t.scalar_stores <- 0;
  t.vector_loads <- 0;
  t.vector_stores <- 0

(** [equal_region a b ~addr ~len] — compare a byte range across two arenas. *)
let equal_region a b ~addr ~len =
  check_range a addr len "equal_region";
  check_range b addr len "equal_region";
  Bytes.equal (Bytes.sub a.data addr len) (Bytes.sub b.data addr len)
