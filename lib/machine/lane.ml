(** Lane-level scalar arithmetic.

    Lane values are carried as [int64] regardless of the element width
    [D ∈ {1, 2, 4, 8}] and are kept in *sign-extended canonical form*: the
    value of a [D]-byte lane is the two's-complement signed integer it
    represents. All arithmetic wraps modulo [2^(8D)], matching both the SIMD
    hardware the paper targets and the C code our emitter generates. *)

type width = int
(** Element width in bytes: 1, 2, 4 or 8. *)

let check_width d =
  match d with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg (Printf.sprintf "Lane.check_width: unsupported width %d" d)

let bits d = 8 * d

(** [canonicalize d v] truncates [v] to [D] bytes and sign-extends. *)
let canonicalize d v =
  check_width d;
  if d = 8 then v
  else
    let b = bits d in
    let shifted = Int64.shift_left v (64 - b) in
    Int64.shift_right shifted (64 - b)

(** [min_value d] / [max_value d]: signed range bounds of a [D]-byte lane. *)
let min_value d =
  check_width d;
  if d = 8 then Int64.min_int else Int64.neg (Int64.shift_left 1L (bits d - 1))

let max_value d =
  check_width d;
  if d = 8 then Int64.max_int else Int64.sub (Int64.shift_left 1L (bits d - 1)) 1L

(** Binary lane operations. The set matches the scalar operator set of the
    loop IR; the paper's evaluation uses [Add] exclusively ("all arithmetic
    operations are essentially the same for alignment handling") but the
    machinery is operator-agnostic. *)
type binop = Add | Sub | Mul | Min | Max | And | Or | Xor

let all_binops = [ Add; Sub; Mul; Min; Max; And; Or; Xor ]

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Min -> "min"
  | Max -> "max"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

(** [binop_commutative op] — used by common-offset reassociation, which may
    only regroup chains of one associative-commutative operator. *)
let binop_commutative = function
  | Add | Mul | Min | Max | And | Or | Xor -> true
  | Sub -> false

let binop_associative = function
  | Add | Mul | Min | Max | And | Or | Xor -> true
  | Sub -> false

(** Lane comparisons (the predication extension): signed compares over
    canonical values, producing a boolean per lane. The vector form
    ({!Vec.cmp}) materializes the boolean as an all-ones/all-zeros lane,
    matching [vcmpgt]-style SIMD compare instructions. *)
type cmp = Lt | Le | Gt | Ge | Eq | Ne

let all_cmps = [ Lt; Le; Gt; Ge; Eq; Ne ]

let cmp_name = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

(** [negate_cmp c] — the complementary comparison over the {e same} operand
    order: [negate_cmp c a b = not (c a b)]. If-conversion uses this to tag
    else-branch statements with the syntactic complement of the guard. *)
let negate_cmp = function
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le
  | Eq -> Ne
  | Ne -> Eq

(** [apply_cmp d c a b] evaluates one lane comparison (signed, on canonical
    values). *)
let apply_cmp d c a b =
  check_width d;
  let a = canonicalize d a and b = canonicalize d b in
  let s = Int64.compare a b in
  match c with
  | Lt -> s < 0
  | Le -> s <= 0
  | Gt -> s > 0
  | Ge -> s >= 0
  | Eq -> s = 0
  | Ne -> s <> 0

let pp_cmp fmt c = Format.pp_print_string fmt (cmp_name c)

(** [apply d op a b] evaluates one lane, wrapping to width [d]. Inputs need
    not be canonical; the result always is. *)
let apply d op a b =
  check_width d;
  let a = canonicalize d a and b = canonicalize d b in
  let raw =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Min -> if Int64.compare a b <= 0 then a else b
    | Max -> if Int64.compare a b >= 0 then a else b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
  in
  canonicalize d raw

let pp_binop fmt op = Format.pp_print_string fmt (binop_name op)
