(** Registry-based lint driver over compiled programs.

    Where {!Simd_check.Check} proves invariants (wrong answers), the
    linter reports waste and suspicion (right answers, badly): vector
    operations whose results are never read, stream shifts that cancel
    body-wide, loop-invariant work recomputed every iteration, masked
    stores whose masks are provably lane-uniform. Every rule is named,
    severity-tagged, and registered in {!rules} — the one list the CLI,
    the JSON schema, and the docs all enumerate.

    Most rules are evidence-backed rather than re-implemented: they read
    the action log of a {!Simd_dataflow.Dataflow.Cleanup.dry_run} over
    the compiled regions, so a finding is by construction something the
    [vir_cleanup] pass can fix — running the driver with [cleanup = true]
    and re-linting yields a clean report. The remaining rules
    (shift-amount range, mask uniformity, unused streams) are structural
    walks over the same IR.

    Severity maps onto exit codes in exactly one place ({!exit_code}):
    any [Error] finding exits 2, warnings exit 1 under [~strict:true]
    and 0 otherwise — shared verbatim by [simdlint.exe],
    [simdize --lint] and [simdize --check]. *)

open Simd_vir
module Check = Simd_check.Check
module Dataflow = Simd_dataflow.Dataflow
module Driver = Simd_codegen.Driver
module Json = Simd_support.Json
module SS = Simd_support.Util.String_set

type severity = Check.severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  where : string;
  detail : string;
}

type report = {
  findings : finding list;
  counts : (string * int) list;
  errors : int;
  warnings : int;
}

(* ------------------------------------------------------------------ *)
(* Rule context                                                        *)
(* ------------------------------------------------------------------ *)

(* Everything a rule may look at, computed once per [run]: the compiled
   program, its geometry, and the cleanup rewriter's dry-run evidence. *)
type ctx = {
  prog : Prog.t;
  v : int;
  elem : int;
  actions : Dataflow.Cleanup.action list;
}

let regions (p : Prog.t) =
  ("prologue", p.Prog.prologue) :: ("body", p.Prog.body)
  :: List.mapi
       (fun k seg -> (Printf.sprintf "epilogue[%d]" k, seg))
       p.Prog.epilogues

(* Walk every statement of a region with the shared numbering convention:
   top-level position, [If] arms inheriting the guard's index. *)
let iter_region f stmts =
  let rec arm idx s =
    match s with
    | Expr.If (_, t, e) ->
      f idx s;
      List.iter (arm idx) t;
      List.iter (arm idx) e
    | _ -> f idx s
  in
  List.iteri arm stmts

(* ------------------------------------------------------------------ *)
(* Evidence-backed rules (cleanup dry-run)                             *)
(* ------------------------------------------------------------------ *)

let dead_vop ctx =
  List.filter_map
    (function
      | Dataflow.Cleanup.Removed { where; temp; clobber = false } ->
        Some
          ( where,
            Printf.sprintf "definition of %s is dead: no later statement reads it"
              temp )
      | _ -> None)
    ctx.actions

let write_clobber ctx =
  List.filter_map
    (function
      | Dataflow.Cleanup.Removed { where; temp; clobber = true } ->
        Some
          ( where,
            Printf.sprintf
              "%s is overwritten before this value reaches any read \
               (write-before-read clobber)"
              temp )
      | _ -> None)
    ctx.actions

let redundant_shift ctx =
  List.filter_map
    (function
      | Dataflow.Cleanup.Combined { where; detail } -> Some (where, detail)
      | _ -> None)
    ctx.actions

let invariant_vop ctx =
  List.filter_map
    (function
      | Dataflow.Cleanup.Hoisted { where; temp } ->
        Some
          ( where,
            Printf.sprintf
              "loop-invariant definition of %s is recomputed every iteration \
               (hoistable to the prologue)"
              temp )
      | _ -> None)
    ctx.actions

(* ------------------------------------------------------------------ *)
(* Structural rules                                                    *)
(* ------------------------------------------------------------------ *)

(* Arrays touched by the emitted code or the source loop. Splats embed
   only scalar parameter expressions, so array uses are exactly the VIR
   addresses, the [Offset_of] leaves of runtime shift amounts, reduction
   targets, and the source references. *)
let used_arrays ctx =
  let rec rexpr acc (r : Rexpr.t) =
    match r with
    | Rexpr.Const _ | Rexpr.Trip | Rexpr.Counter -> acc
    | Rexpr.Offset_of a -> SS.add a.Addr.array acc
    | Rexpr.Add (x, y) | Rexpr.Sub (x, y) -> rexpr (rexpr acc x) y
    | Rexpr.Mul_const (x, _) | Rexpr.Mod_const (x, _) -> rexpr acc x
  in
  let vexpr acc e =
    Expr.fold_vexpr
      (fun acc e ->
        match e with
        | Expr.Load a -> SS.add a.Addr.array acc
        | Expr.Shiftpair (_, _, r) | Expr.Splice (_, _, r) -> rexpr acc r
        | _ -> acc)
      acc e
  in
  let cond acc (c : Rexpr.cond) =
    match c with
    | Rexpr.Ge (x, y) | Rexpr.Gt (x, y) | Rexpr.Le (x, y) | Rexpr.Lt (x, y) ->
      rexpr (rexpr acc x) y
  in
  let rec stmt acc s =
    match s with
    | Expr.Store (a, e) -> vexpr (SS.add a.Addr.array acc) e
    | Expr.Storem (a, e, m) -> vexpr (vexpr (SS.add a.Addr.array acc) e) m
    | Expr.Assign (_, e) -> vexpr acc e
    | Expr.If (c, t, e) ->
      List.fold_left stmt (List.fold_left stmt (cond acc c) t) e
  in
  let acc =
    List.fold_left
      (fun acc (_, stmts) -> List.fold_left stmt acc stmts)
      SS.empty (regions ctx.prog)
  in
  let acc =
    List.fold_left
      (fun acc (r : Prog.reduction) ->
        SS.add r.Prog.acc_ref.Simd_loopir.Ast.ref_array acc)
      acc ctx.prog.Prog.reductions
  in
  List.fold_left
    (fun acc (r : Simd_loopir.Ast.mem_ref) ->
      SS.add r.Simd_loopir.Ast.ref_array acc)
    acc
    (Simd_loopir.Ast.program_refs ctx.prog.Prog.source)

let unused_stream ctx =
  let used = used_arrays ctx in
  List.filter_map
    (fun (d : Simd_loopir.Ast.array_decl) ->
      if SS.mem d.Simd_loopir.Ast.arr_name used then None
      else
        Some
          ( "program",
            Printf.sprintf "stream %s is declared but never loaded or stored"
              d.Simd_loopir.Ast.arr_name ))
    ctx.prog.Prog.source.Simd_loopir.Ast.arrays

let shift_range ctx =
  let out = ref [] in
  let emit where detail = out := (where, detail) :: !out in
  let check_vexpr where e =
    ignore
      (Expr.fold_vexpr
         (fun () e ->
           match e with
           | Expr.Shiftpair (_, _, r) when Rexpr.is_const r ->
             let c = Rexpr.const_exn r in
             if c < 0 || c > ctx.v then
               emit where
                 (Printf.sprintf
                    "vshiftstream amount %d outside the register range [0, %d]"
                    c ctx.v)
             else if c mod ctx.elem <> 0 then
               emit where
                 (Printf.sprintf
                    "vshiftstream amount %d is not a multiple of the element \
                     width %d"
                    c ctx.elem)
           | Expr.Splice (_, _, r) when Rexpr.is_const r ->
             let c = Rexpr.const_exn r in
             if c < 0 || c > ctx.v then
               emit where
                 (Printf.sprintf
                    "vsplice point %d outside the register range [0, %d]" c
                    ctx.v)
           | _ -> ())
         () e)
  in
  List.iter
    (fun (name, stmts) ->
      iter_region
        (fun idx s ->
          let where = Printf.sprintf "%s#%d" name idx in
          match s with
          | Expr.Store (_, e) | Expr.Assign (_, e) -> check_vexpr where e
          | Expr.Storem (_, e, m) ->
            check_vexpr where e;
            check_vexpr where m
          | Expr.If _ -> ())
        stmts)
    (regions ctx.prog);
  List.rev !out

let mask_uniform ctx =
  let out = ref [] in
  List.iter
    (fun (name, stmts) ->
      let defs = Dataflow.Defs.scan stmts in
      iter_region
        (fun idx s ->
          match s with
          | Expr.Storem (_, _, mask) -> (
            match Dataflow.Defs.resolve defs mask with
            | Expr.Splat _ ->
              out :=
                ( Printf.sprintf "%s#%d" name idx,
                  "masked store whose mask is provably lane-uniform: a plain \
                   store under a scalar guard stores the same lanes" )
                :: !out
            | _ -> ())
          | _ -> ())
        stmts)
    (regions ctx.prog);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type rule = { name : string; severity : severity; doc : string }

(* The checkers, in registry order. Kept alongside [rules] rather than
   inside it so the public registry stays closure-free (printable,
   comparable). *)
let checkers : (string * (ctx -> (string * string) list)) list =
  [
    ("dead-vop", dead_vop);
    ("redundant-shift", redundant_shift);
    ("unused-stream", unused_stream);
    ("write-clobber", write_clobber);
    ("invariant-vop", invariant_vop);
    ("shift-range", shift_range);
    ("mask-uniform", mask_uniform);
  ]

let rules : rule list =
  [
    {
      name = "dead-vop";
      severity = Warning;
      doc =
        "a vector operation's result is never read by any later statement";
    };
    {
      name = "redundant-shift";
      severity = Warning;
      doc =
        "a vshiftstream is a no-op or cancels against an adjacent or \
         loop-carried shift of the same stream";
    };
    {
      name = "unused-stream";
      severity = Warning;
      doc = "a declared stream is never loaded or stored by the program";
    };
    {
      name = "write-clobber";
      severity = Warning;
      doc =
        "a temporary is overwritten before the written value reaches any \
         read";
    };
    {
      name = "invariant-vop";
      severity = Warning;
      doc =
        "a loop-invariant vector operation is recomputed every iteration \
         instead of being hoisted to the prologue";
    };
    {
      name = "shift-range";
      severity = Error;
      doc =
        "a compile-time shift amount or splice point falls outside the \
         vector register, or is not a multiple of the element width";
    };
    {
      name = "mask-uniform";
      severity = Warning;
      doc =
        "a masked store's mask resolves to a splat, so every lane agrees \
         and a guarded plain store would do";
    };
  ]

let find_rule name = List.find (fun r -> r.name = name) rules

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let run (outcome : Driver.outcome) : report =
  let prog = outcome.Driver.prog in
  let v =
    Simd_machine.Config.vector_len
      outcome.Driver.analysis.Simd_loopir.Analysis.machine
  in
  let ctx =
    {
      prog;
      v;
      elem = prog.Prog.elem;
      actions =
        Dataflow.Cleanup.dry_run ~v ~block:prog.Prog.block
          ~prologue:prog.Prog.prologue ~body:prog.Prog.body
          ~epilogues:prog.Prog.epilogues;
    }
  in
  let findings =
    List.concat_map
      (fun (name, check) ->
        let severity = (find_rule name).severity in
        List.map
          (fun (where, detail) -> { rule = name; severity; where; detail })
          (check ctx))
      checkers
  in
  let count sev =
    List.length
      (List.filter (fun (f : finding) -> f.severity = sev) findings)
  in
  let counts =
    List.map
      (fun (name, _) ->
        ( name,
          List.length
            (List.filter (fun (f : finding) -> f.rule = name) findings) ))
      checkers
  in
  { findings; counts; errors = count Error; warnings = count Warning }

let clean r = r.findings = []

let exit_code ~strict (r : report) =
  if r.errors > 0 then 2 else if strict && r.warnings > 0 then 1 else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_finding fmt (f : finding) =
  Format.fprintf fmt "%s %s [%s]: %s"
    (Check.severity_name f.severity)
    f.where f.rule f.detail

let pp_report fmt (r : report) =
  List.iter (fun f -> Format.fprintf fmt "%a@\n" pp_finding f) r.findings;
  Format.fprintf fmt "%d error(s), %d warning(s)" r.errors r.warnings

let report_to_string (r : report) = Format.asprintf "%a" pp_report r

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("schema", Json.String "simd-lint/1");
      ( "findings",
        Json.List
          (List.map
             (fun (f : finding) ->
               Json.Obj
                 [
                   ("rule", Json.String f.rule);
                   ("severity", Json.String (Check.severity_name f.severity));
                   ("where", Json.String f.where);
                   ("detail", Json.String f.detail);
                 ])
             r.findings) );
      ( "counts",
        Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) r.counts) );
      ("errors", Json.Int r.errors);
      ("warnings", Json.Int r.warnings);
    ]
