(** Registry-based lint driver: named, severity-tagged waste-and-suspicion
    rules over a compiled program, most of them evidence-backed by the
    cleanup rewriter's dry run ({!Simd_dataflow.Dataflow.Cleanup}). See
    the implementation header for the rule catalogue and the exit-code
    contract. *)

type severity = Simd_check.Check.severity = Error | Warning

type finding = {
  rule : string;  (** registry name, e.g. ["dead-vop"] *)
  severity : severity;
  where : string;  (** region + statement (["body#2"]) or ["program"] *)
  detail : string;
}

type report = {
  findings : finding list;  (** registry order, then region order *)
  counts : (string * int) list;  (** per rule, zeros included *)
  errors : int;
  warnings : int;
}

(** One registry entry; {!rules} is the single source the CLI, JSON
    consumers, and docs enumerate. *)
type rule = { name : string; severity : severity; doc : string }

val rules : rule list
val find_rule : string -> rule

val run : Simd_codegen.Driver.outcome -> report
(** Lint a compilation. Runs one {!Simd_dataflow.Dataflow.Cleanup.dry_run}
    over the emitted regions plus the structural walks; does not rewrite
    anything. A compilation driven with [cleanup = true] lints clean of
    the evidence-backed rules by construction. *)

val clean : report -> bool

val exit_code : strict:bool -> report -> int
(** The one exit-code policy shared by [simdlint.exe], [simdize --lint]
    and [simdize --check]: any error exits [2]; warnings exit [1] under
    [~strict:true] and [0] otherwise; a clean report exits [0]. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

val report_to_json : report -> Simd_support.Json.t
(** The [simd-lint/1] document: schema tag, findings, per-rule counts
    (zeros included), and the error/warning totals. *)
