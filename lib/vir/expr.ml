(** Vector expressions and statements of the vector IR.

    This is the code-level counterpart of the data reorganization graph:
    stream-level [vshiftstream] nodes have been lowered to register-level
    [Shiftpair] operations, and partial stores appear as [Splice]d stores.

    Statements execute in list order. [Assign] binds a named vector
    temporary (single static assignment is {e not} required — software
    pipelining deliberately overwrites its carried temporaries). *)

type vexpr =
  | Load of Addr.t  (** truncating vector load *)
  | Op of Simd_loopir.Ast.binop * vexpr * vexpr  (** lane-wise operation *)
  | Splat of Simd_loopir.Ast.expr
      (** replicate a loop-invariant scalar (no [Load]s inside) *)
  | Shiftpair of vexpr * vexpr * Rexpr.t
      (** bytes [sh .. sh+V-1] of the concatenation (paper §2.2) *)
  | Splice of vexpr * vexpr * Rexpr.t
      (** first [p] bytes of the first operand, rest of the second *)
  | Pack of vexpr * vexpr
      (** even-indexed elements of the 2V concatenation — the gather step
          of the strided-load extension *)
  | Temp of string  (** read a vector temporary *)
  | Cmp of Simd_loopir.Ast.cmp * vexpr * vexpr
      (** [vcmp]: lane compare producing an all-ones/all-zeros mask
          (predication extension) *)
  | Sel of vexpr * vexpr * vexpr
      (** [vsel(mask, a, b)]: lane blend — first where the mask is set,
          second where it is clear *)
[@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Store of Addr.t * vexpr  (** truncating vector store *)
  | Assign of string * vexpr  (** vector temporary definition *)
  | If of Rexpr.cond * stmt list * stmt list
      (** runtime guard (epilogue leftover handling, §4.4) *)
  | Storem of Addr.t * vexpr * vexpr
      (** truncating {e masked} vector store (addr, value, mask): lanes
          whose mask is set are written, clear lanes leave memory intact
          (predication extension) *)
[@@deriving show { with_path = false }, eq, ord]

(* ------------------------------------------------------------------ *)
(* Substitution i → i + by (paper's Substitute(n, i → i ± B))          *)
(* ------------------------------------------------------------------ *)

let rec shift_iter_rexpr (r : Rexpr.t) ~by : Rexpr.t =
  match r with
  | Rexpr.Const _ | Rexpr.Trip | Rexpr.Counter -> r
  | Rexpr.Offset_of a -> Rexpr.Offset_of (Addr.shift_iter a ~by)
  | Rexpr.Add (a, b) -> Rexpr.Add (shift_iter_rexpr a ~by, shift_iter_rexpr b ~by)
  | Rexpr.Sub (a, b) -> Rexpr.Sub (shift_iter_rexpr a ~by, shift_iter_rexpr b ~by)
  | Rexpr.Mul_const (a, k) -> Rexpr.Mul_const (shift_iter_rexpr a ~by, k)
  | Rexpr.Mod_const (a, m) -> Rexpr.Mod_const (shift_iter_rexpr a ~by, m)

(** [shift_iter e ~by] rewrites every counter-carrying address in [e] so
    that evaluating the result at iteration [i] equals evaluating [e] at
    [i + by]. Temporaries are left untouched (their values are
    iteration-bound; callers must not shift expressions containing live
    temporaries — asserted here). *)
let rec shift_iter (e : vexpr) ~by : vexpr =
  match e with
  | Load a -> Load (Addr.shift_iter a ~by)
  | Op (op, x, y) -> Op (op, shift_iter x ~by, shift_iter y ~by)
  | Splat s -> Splat s
  | Shiftpair (x, y, sh) ->
    Shiftpair (shift_iter x ~by, shift_iter y ~by, shift_iter_rexpr sh ~by)
  | Splice (x, y, p) ->
    Splice (shift_iter x ~by, shift_iter y ~by, shift_iter_rexpr p ~by)
  | Pack (x, y) -> Pack (shift_iter x ~by, shift_iter y ~by)
  | Cmp (c, x, y) -> Cmp (c, shift_iter x ~by, shift_iter y ~by)
  | Sel (m, x, y) -> Sel (shift_iter m ~by, shift_iter x ~by, shift_iter y ~by)
  | Temp _ -> invalid_arg "Expr.shift_iter: expression contains a temporary"

(** [freeze e ~i] resolves the loop counter to the constant [i] in every
    address of [e] (for prologue/epilogue code). *)
let rec freeze (e : vexpr) ~i : vexpr =
  match e with
  | Load a -> Load (Addr.freeze a ~i)
  | Op (op, x, y) -> Op (op, freeze x ~i, freeze y ~i)
  | Splat s -> Splat s
  | Shiftpair (x, y, sh) -> Shiftpair (freeze x ~i, freeze y ~i, freeze_rexpr sh ~i)
  | Splice (x, y, p) -> Splice (freeze x ~i, freeze y ~i, freeze_rexpr p ~i)
  | Pack (x, y) -> Pack (freeze x ~i, freeze y ~i)
  | Cmp (c, x, y) -> Cmp (c, freeze x ~i, freeze y ~i)
  | Sel (m, x, y) -> Sel (freeze m ~i, freeze x ~i, freeze y ~i)
  | Temp t -> Temp t

and freeze_rexpr (r : Rexpr.t) ~i : Rexpr.t =
  match r with
  | Rexpr.Const _ | Rexpr.Trip -> r
  | Rexpr.Counter -> Rexpr.Const i
  | Rexpr.Offset_of a -> Rexpr.Offset_of (Addr.freeze a ~i)
  | Rexpr.Add (a, b) -> Rexpr.add (freeze_rexpr a ~i) (freeze_rexpr b ~i)
  | Rexpr.Sub (a, b) -> Rexpr.sub (freeze_rexpr a ~i) (freeze_rexpr b ~i)
  | Rexpr.Mul_const (a, k) -> Rexpr.mul_const (freeze_rexpr a ~i) k
  | Rexpr.Mod_const (a, m) -> Rexpr.mod_const (freeze_rexpr a ~i) m

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** [fold_vexpr f acc e] folds over every node of [e], children first. *)
let rec fold_vexpr f acc e =
  match e with
  | Load _ | Splat _ | Temp _ -> f acc e
  | Op (_, x, y)
  | Shiftpair (x, y, _)
  | Splice (x, y, _)
  | Pack (x, y)
  | Cmp (_, x, y) ->
    f (fold_vexpr f (fold_vexpr f acc x) y) e
  | Sel (m, x, y) ->
    f (fold_vexpr f (fold_vexpr f (fold_vexpr f acc m) x) y) e

(** [fold_stmts f acc stmts] folds [f] over every vector expression
    (outermost nodes) appearing in [stmts], in execution order. *)
let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Store (_, e) | Assign (_, e) -> f acc e
      | Storem (_, e, m) -> f (f acc e) m
      | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e)
    acc stmts

(** [map_stmts_exprs f stmts] rewrites the top-level expression of every
    statement. *)
let rec map_stmts_exprs f stmts =
  List.map
    (fun s ->
      match s with
      | Store (a, e) -> Store (a, f e)
      | Assign (x, e) -> Assign (x, f e)
      | Storem (a, e, m) -> Storem (a, f e, f m)
      | If (c, t, e) -> If (c, map_stmts_exprs f t, map_stmts_exprs f e))
    stmts

(** [loads_of_stmts stmts] — every [Load] address in the statements,
    in occurrence order (duplicates preserved). *)
let loads_of_stmts stmts =
  List.rev
    (fold_stmts
       (fun acc e ->
         fold_vexpr
           (fun acc n -> match n with Load a -> a :: acc | _ -> acc)
           acc e)
       [] stmts)

(** [count_nodes pred stmts] — count expression nodes satisfying [pred]. *)
let count_nodes pred stmts =
  fold_stmts
    (fun acc e -> fold_vexpr (fun acc n -> if pred n then acc + 1 else acc) acc e)
    0 stmts

let is_shift = function Shiftpair _ -> true | _ -> false
let is_load = function Load _ -> true | _ -> false

(** [temps_written stmts] — names assigned anywhere in [stmts]. *)
let rec temps_written stmts =
  List.concat_map
    (function
      | Assign (x, _) -> [ x ]
      | Store _ | Storem _ -> []
      | If (_, t, e) -> temps_written t @ temps_written e)
    stmts
