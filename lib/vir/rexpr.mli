(** Compile-time-or-runtime integer expressions: shift amounts, splice
    points and leftover counts that become runtime computations when
    alignments or the trip count are unknown (paper §4.4). *)

type t =
  | Const of int
  | Offset_of of Addr.t  (** [addr mod V] at the current iteration *)
  | Trip  (** the runtime trip count [ub] *)
  | Counter  (** the current simdized loop counter [i] *)
  | Add of t * t
  | Sub of t * t
  | Mul_const of t * int
  | Mod_const of t * int
[@@deriving show, eq, ord]

val is_const : t -> bool
(** Is the expression a literal [Const]? (The smart constructors fold
    eagerly, so compile-time-known values always reach this form.) *)

val const_exn : t -> int
(** The value of a [Const]; raises [Invalid_argument] on runtime
    expressions. Guard with {!is_const}. *)

(** Constant-folding smart constructors. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul_const : t -> int -> t
val mod_const : t -> int -> t

val of_align : Simd_loopir.Align.t -> addr:Addr.t -> t
(** Lift an analysis-level offset: constants stay constants, runtime ones
    become [addr & (V-1)] computations. *)

(** Comparisons for guard statements. *)
type cond = Ge of t * t | Gt of t * t | Le of t * t | Lt of t * t
[@@deriving show, eq, ord]

val pp : Format.formatter -> t -> unit
val pp_cond : Format.formatter -> cond -> unit
