(** Vector expressions and statements of the vector IR — the code-level
    counterpart of the data reorganization graph, with stream shifts
    lowered to register-level [Shiftpair]s and partial stores to [Splice]d
    stores. *)

type vexpr =
  | Load of Addr.t  (** truncating vector load *)
  | Op of Simd_loopir.Ast.binop * vexpr * vexpr
  | Splat of Simd_loopir.Ast.expr  (** loop-invariant scalar, replicated *)
  | Shiftpair of vexpr * vexpr * Rexpr.t  (** paper §2.2 *)
  | Splice of vexpr * vexpr * Rexpr.t
  | Pack of vexpr * vexpr
      (** even-lane gather of the 2V concatenation (strided-load extension) *)
  | Temp of string
  | Cmp of Simd_loopir.Ast.cmp * vexpr * vexpr
      (** [vcmp]: mask-producing lane compare (predication extension) *)
  | Sel of vexpr * vexpr * vexpr
      (** [vsel(mask, a, b)]: lane blend *)
[@@deriving show, eq, ord]

type stmt =
  | Store of Addr.t * vexpr  (** truncating vector store *)
  | Assign of string * vexpr
  | If of Rexpr.cond * stmt list * stmt list  (** runtime guard (§4.4) *)
  | Storem of Addr.t * vexpr * vexpr
      (** masked vector store (addr, value, mask); predication extension *)
[@@deriving show, eq, ord]

val shift_iter_rexpr : Rexpr.t -> by:int -> Rexpr.t
(** {!shift_iter} on the runtime expression level: displace every
    counter-carrying {!Rexpr.Offset_of} address by [by] iterations
    ([Counter] terms are left alone — callers substitute them
    separately). *)

val shift_iter : vexpr -> by:int -> vexpr
(** Rewrite counter-carrying addresses so that evaluating at iteration [i]
    equals evaluating the original at [i + by]. Raises on temporaries
    (their values are iteration-bound). *)

val freeze : vexpr -> i:int -> vexpr
(** Resolve the loop counter to a constant everywhere (temps are kept). *)

val freeze_rexpr : Rexpr.t -> i:int -> Rexpr.t
(** {!freeze} on the runtime expression level: resolve [Counter] to [i]
    and pin every address to its iteration-[i] element (via
    {!Addr.freeze}). *)

val fold_vexpr : ('a -> vexpr -> 'a) -> 'a -> vexpr -> 'a
(** Children-first fold over every node. *)

val fold_stmts : ('a -> vexpr -> 'a) -> 'a -> stmt list -> 'a
(** Fold [f] over every top-level expression of every statement,
    descending into both arms of [If] guards (the expressions themselves
    are not traversed — combine with {!fold_vexpr} for node-level
    folds). *)

val map_stmts_exprs : (vexpr -> vexpr) -> stmt list -> stmt list
(** Rewrite every top-level expression in place ([Store] values and
    [Assign] right-hand sides, through [If] arms); statement structure is
    preserved. *)

val loads_of_stmts : stmt list -> Addr.t list
(** Every [Load] address in the statements, in traversal order
    (duplicates kept — used by the never-load-twice accounting). *)

val count_nodes : (vexpr -> bool) -> stmt list -> int
(** Number of expression nodes satisfying the predicate, over all
    statements and all nesting levels. *)

val is_shift : vexpr -> bool
(** Is the node a [Shiftpair]? (Predicate for {!count_nodes}.) *)

val is_load : vexpr -> bool
(** Is the node a [Load]? (Predicate for {!count_nodes}.) *)

val temps_written : stmt list -> string list
(** Names assigned anywhere in the statements (including inside [If]
    arms), in write order; a name assigned twice appears twice. *)
