(** Addresses in the vector IR: the byte address of
    [array\[scale*i + offset\]] — [scale] is the reference's stride (0 for
    counter-free addresses used by prologue/epilogue-specialized code and
    accumulator cells). Offsets are in elements. *)

type t = {
  array : string;
  offset : int;  (** element offset; may be negative (guard-zone reads) *)
  scale : int;  (** counter multiplier; 0 = counter-free *)
}
[@@deriving show, eq, ord]

val of_ref : Simd_loopir.Ast.mem_ref -> t
(** The address of a source-level reference: the reference's stride
    becomes [scale], its constant offset becomes [offset]. *)

val with_counter : t -> bool
(** Does the address depend on the loop counter ([scale <> 0])? *)

val shift_iter : t -> by:int -> t
(** The paper's [Substitute(i → i + by)]: advance [scale * by] elements. *)

val at_iteration : t -> i:int -> int
(** The concrete element index at iteration [i]: [scale*i + offset]. *)

val freeze : t -> i:int -> t
(** The counter-free address the address denotes at iteration [i]
    ([offset = ]{!at_iteration}[, scale = 0]) — prologue/epilogue
    specialization. *)

val pp : Format.formatter -> t -> unit
(** Source-like rendering: [&a\[i+2\]], [&a\[4\]] (counter-free),
    [&a\[2*i-1\]]. *)

val to_string : t -> string
