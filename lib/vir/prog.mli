(** Simdized programs (paper §4.2–4.5): a trip-guarded prologue / steady
    loop / guarded-epilogue structure, with optional unrolling and
    reduction metadata. See the implementation header for the full shape. *)

type bound =
  | B_const of int
  | B_trip_minus of int  (** [ub - k], runtime trip counts (Eq. 15) *)
[@@deriving show, eq]

(** Metadata for one reduction statement (extension). *)
type reduction = {
  acc_temp : string;
  ident_temp : string;
  red_op : Simd_loopir.Ast.binop;
  acc_ref : Simd_loopir.Ast.mem_ref;
}
[@@deriving show, eq]

type t = {
  source : Simd_loopir.Ast.program;
  machine : Simd_machine.Config.t;
  elem : int;  (** D *)
  block : int;  (** B = V/D *)
  unroll : int;  (** body covers [unroll] simdized iterations *)
  prologue : Expr.stmt list;  (** executed with i = 0 *)
  lower : int;  (** LB (Eq. 12) *)
  upper : bound;  (** UB (Eqs. 11/13/15) *)
  body : Expr.stmt list;
  epilogues : Expr.stmt list list;
      (** virtual iterations: element [k] runs at [i = exit + k*B] *)
  min_trip : int;  (** guard: simdized path requires [trip > min_trip] *)
  reductions : reduction list;
}

val resolve_upper : t -> trip:int -> int
(** The concrete UB for a concrete trip count: [B_const n] is [n],
    [B_trip_minus k] is [trip - k] (Eq. 15). *)

val step : t -> int
(** Counter increment per steady iteration: [unroll * block]. *)

val continue_cond : t -> upper:int -> int -> bool
(** [continue_cond t ~upper i] — may the (possibly unrolled) body run at
    counter [i]? Every one of the [unroll] instances must stay below
    [upper]: [i + (unroll-1)*B < upper]. *)

val exit_counter : t -> trip:int -> int
(** The counter value when the steady loop exits — where epilogue
    segment [k] runs at [exit + k*B]. *)

val steady_iterations : t -> trip:int -> int
(** How many times the steady body executes for this trip count. *)

val pp_vexpr : Format.formatter -> Expr.vexpr -> unit
val pp_stmt : indent:int -> Format.formatter -> Expr.stmt -> unit
val pp_bound : Format.formatter -> bound -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Static operation counts (policy sanity checks, tests). *)
type static_counts = {
  loads : int;
  stores : int;
  ops : int;
  splats : int;
  shifts : int;
  splices : int;
  packs : int;
  copies : int;
}

val static_counts_of_stmts : Expr.stmt list -> static_counts
(** Count every operation class over the statements ([If] arms
    included); [copies] counts [Assign (x, Temp y)] statements. *)

val body_counts : t -> static_counts
(** {!static_counts_of_stmts} of the steady body — the per-iteration
    static cost the policies and traces report. *)
