(** Simdized programs.

    The shape mirrors the paper's code-generation output (§4.2–4.5):

    {v
      if (ub > min_trip) {
        <prologue>                       // executed with i = 0
        for (i = lower; i < upper; i += block)
          <body>
        <epilogue>                       // executed with i = loop exit value
      } else {
        <original scalar loop>           // unknown-bound guard fallback
      }
    v}

    The prologue handles the peeled first simdized iteration (partial store
    via [Splice]) and initializes software-pipelining / predictive-commoning
    temporaries. The epilogue finishes each statement's store stream: at most
    one full store plus one partial store (EpiLeftOver < 2V, paper §4.3). *)

type bound =
  | B_const of int  (** compile-time upper bound *)
  | B_trip_minus of int  (** [ub - k] for runtime trip counts (Eq. 15) *)
[@@deriving show { with_path = false }, eq]

(** Metadata for one reduction statement (extension; see
    {!Simd_loopir.Ast.stmt_kind}): the vector accumulator temporary, the
    identity-splat temporary used for prologue initialization and epilogue
    lane masking, the operator, and the scalar accumulator cell. The
    epilogue derivation and finalization passes consume this. *)
type reduction = {
  acc_temp : string;
  ident_temp : string;
  red_op : Simd_loopir.Ast.binop;
  acc_ref : Simd_loopir.Ast.mem_ref;  (** absolute: element 0 of the array *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  source : Simd_loopir.Ast.program;  (** original loop (scalar fallback, decls) *)
  machine : Simd_machine.Config.t;
  elem : int;  (** D *)
  block : int;  (** B = V/D *)
  unroll : int;
      (** steady-body unroll factor: the body covers [unroll] simdized
          iterations, the counter steps by [unroll * block], and the loop
          runs while [i + (unroll-1)*block < upper] so every instance stays
          in bounds; 1 = no unrolling *)
  prologue : Expr.stmt list;
  lower : int;  (** LB; always compile-time (Eqs. 10/12) *)
  upper : bound;  (** UB (Eqs. 11/13/15) *)
  body : Expr.stmt list;
  epilogues : Expr.stmt list list;
      (** virtual epilogue iterations: element [k] executes once with
          [i = exit_counter + k*block]. Guarded stores make each virtual
          iteration store exactly the still-missing bytes; without
          unrolling two suffice (EpiLeftOver < 2V, §4.3), with unrolling up
          to [unroll + 1]. *)
  min_trip : int;
      (** simdized path requires [trip > min_trip]; otherwise scalar
          fallback (§4.4: "guarded by a test of ub > 3B") *)
  reductions : reduction list;  (** one per [Reduce] statement, in order *)
}

(** [resolve_upper t ~trip] — the concrete steady-loop upper bound. *)
let resolve_upper t ~trip =
  match t.upper with B_const n -> n | B_trip_minus k -> trip - k

(** [step t] — counter increment per steady iteration. *)
let step t = t.unroll * t.block

(** [continue_cond t ~upper i] — may the (possibly unrolled) body run at
    counter [i]? Every unrolled instance must stay below [upper]. *)
let continue_cond t ~upper i = i + ((t.unroll - 1) * t.block) < upper

(** [exit_counter t ~trip] — the value of [i] after the steady loop. *)
let exit_counter t ~trip =
  let upper = resolve_upper t ~trip in
  let rec go i = if continue_cond t ~upper i then go (i + step t) else i in
  go t.lower

(** [steady_iterations t ~trip] — how many times the body executes. *)
let steady_iterations t ~trip =
  let upper = resolve_upper t ~trip in
  let rec go i n = if continue_cond t ~upper i then go (i + step t) (n + 1) else n in
  go t.lower 0

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_vexpr fmt (e : Expr.vexpr) =
  match e with
  | Expr.Load a -> Format.fprintf fmt "vload(%a)" Addr.pp a
  | Expr.Op (op, x, y) ->
    Format.fprintf fmt "v%s(%a, %a)" (Simd_machine.Lane.binop_name op) pp_vexpr x
      pp_vexpr y
  | Expr.Splat s -> Format.fprintf fmt "vsplat(%a)" Simd_loopir.Pp.pp_expr s
  | Expr.Shiftpair (x, y, sh) ->
    Format.fprintf fmt "vshiftpair(%a, %a, %a)" pp_vexpr x pp_vexpr y Rexpr.pp sh
  | Expr.Splice (x, y, p) ->
    Format.fprintf fmt "vsplice(%a, %a, %a)" pp_vexpr x pp_vexpr y Rexpr.pp p
  | Expr.Pack (x, y) -> Format.fprintf fmt "vpack(%a, %a)" pp_vexpr x pp_vexpr y
  | Expr.Cmp (c, x, y) ->
    Format.fprintf fmt "vcmp_%s(%a, %a)" (Simd_machine.Lane.cmp_name c)
      pp_vexpr x pp_vexpr y
  | Expr.Sel (m, x, y) ->
    Format.fprintf fmt "vsel(%a, %a, %a)" pp_vexpr m pp_vexpr x pp_vexpr y
  | Expr.Temp x -> Format.pp_print_string fmt x

let rec pp_stmt ~indent fmt (s : Expr.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Expr.Store (a, e) -> Format.fprintf fmt "%svstore(%a, %a)@\n" pad Addr.pp a pp_vexpr e
  | Expr.Storem (a, e, m) ->
    Format.fprintf fmt "%svstore.mask(%a, %a, %a)@\n" pad Addr.pp a pp_vexpr e
      pp_vexpr m
  | Expr.Assign (x, e) -> Format.fprintf fmt "%s%s := %a@\n" pad x pp_vexpr e
  | Expr.If (c, t, e) ->
    Format.fprintf fmt "%sif (%a) {@\n" pad Rexpr.pp_cond c;
    List.iter (pp_stmt ~indent:(indent + 2) fmt) t;
    if e <> [] then begin
      Format.fprintf fmt "%s} else {@\n" pad;
      List.iter (pp_stmt ~indent:(indent + 2) fmt) e
    end;
    Format.fprintf fmt "%s}@\n" pad

let pp_bound fmt = function
  | B_const n -> Format.pp_print_int fmt n
  | B_trip_minus k -> Format.fprintf fmt "ub - %d" k

let pp fmt t =
  Format.fprintf fmt "// simdized: V=%d D=%d B=%d (guard: ub > %d)@\n"
    (Simd_machine.Config.vector_len t.machine)
    t.elem t.block t.min_trip;
  Format.fprintf fmt "prologue (i = 0):@\n";
  List.iter (pp_stmt ~indent:2 fmt) t.prologue;
  if t.unroll = 1 then
    Format.fprintf fmt "for (i = %d; i < %a; i += %d) {@\n" t.lower pp_bound
      t.upper t.block
  else
    Format.fprintf fmt "for (i = %d; i + %d < %a; i += %d) {  // unrolled x%d@\n"
      t.lower
      ((t.unroll - 1) * t.block)
      pp_bound t.upper (step t) t.unroll;
  List.iter (pp_stmt ~indent:2 fmt) t.body;
  Format.fprintf fmt "}@\n";
  List.iteri
    (fun k stmts ->
      if stmts <> [] then begin
        if k = 0 then Format.fprintf fmt "epilogue (i = exit):@\n"
        else Format.fprintf fmt "epilogue (i = exit + %d):@\n" (k * t.block);
        List.iter (pp_stmt ~indent:2 fmt) stmts
      end)
    t.epilogues

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Static operation summary                                            *)
(* ------------------------------------------------------------------ *)

(** Static counts of body operations, used to sanity-check policies (e.g.
    the paper's shift counts for Figures 4–6). Conditionals count both
    branches (they never appear in steady-state bodies). *)
type static_counts = {
  loads : int;
  stores : int;
  ops : int;
  splats : int;
  shifts : int;
  splices : int;
  packs : int;
  copies : int;
}

let static_counts_of_stmts stmts =
  let incr_expr acc (e : Expr.vexpr) =
    Expr.fold_vexpr
      (fun acc n ->
        match n with
        | Expr.Load _ -> { acc with loads = acc.loads + 1 }
        | Expr.Op _ -> { acc with ops = acc.ops + 1 }
        | Expr.Splat _ -> { acc with splats = acc.splats + 1 }
        | Expr.Shiftpair _ -> { acc with shifts = acc.shifts + 1 }
        | Expr.Splice _ -> { acc with splices = acc.splices + 1 }
        | Expr.Pack _ -> { acc with packs = acc.packs + 1 }
        (* vcmp and vsel are ordinary lane vops for the static summary;
           machine-parameterized costing lives in {!Simd.Opt.Cost} *)
        | Expr.Cmp _ | Expr.Sel _ -> { acc with ops = acc.ops + 1 }
        | Expr.Temp _ -> acc)
      acc e
  in
  let rec go acc stmts =
    List.fold_left
      (fun acc s ->
        match (s : Expr.stmt) with
        | Expr.Store (_, e) -> incr_expr { acc with stores = acc.stores + 1 } e
        | Expr.Storem (_, e, m) ->
          incr_expr (incr_expr { acc with stores = acc.stores + 1 } e) m
        | Expr.Assign (_, Expr.Temp _) -> { acc with copies = acc.copies + 1 }
        | Expr.Assign (_, e) -> incr_expr acc e
        | Expr.If (_, t, e) -> go (go acc t) e)
      acc stmts
  in
  go
    { loads = 0; stores = 0; ops = 0; splats = 0; shifts = 0; splices = 0;
      packs = 0; copies = 0 }
    stmts

let body_counts t = static_counts_of_stmts t.body
