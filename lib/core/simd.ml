(** Public API of the alignment-constrained simdization library.

    This facade re-exports every subsystem under one namespace and provides
    the handful of one-call entry points a downstream user needs:

    {[
      let program = Simd.parse_exn source in
      match Simd.simdize program with
      | Simd.Driver.Simdized o ->
        print_string (Simd.Vir_prog.to_string o.prog);
        print_string (Simd.Emit_portable.unit o.prog)
      | Simd.Driver.Scalar reason -> ...
    ]}

    Subsystem map (see DESIGN.md):
    - {!Ast}/{!Parse}/{!Pp}/{!Analysis}: the scalar loop language;
    - {!Machine}/{!Vec}/{!Mem}: the SIMD machine model;
    - {!Offset}/{!Graph}/{!Policy}/{!Reassoc}: data reorganization graphs;
    - {!Mask}: if-conversion for predicated loops (guards/selects);
    - {!Gen}/{!Passes}/{!Driver}/{!Peel}: code generation;
    - {!Retarget}: vector-length-agnostic re-instantiation of a placed
      compilation at another V (the backend matrix's engine);
    - {!Dataflow}/{!Absoff}: the VIR dataflow engine and its offset
      lattice; {!Check}: the pass-boundary static verifier; {!Lint}: the
      registry-based lint driver;
    - {!Vir_expr}/{!Vir_prog}: the vector IR;
    - {!Exec}/{!Sim_run}: the simulator;
    - {!Emit_portable}/{!Emit_altivec}/{!Emit_sse}/{!Emit_avx2}/
      {!Emit_neon}: C backends; {!Backend} the registry + capability
      probe; {!Matrix} the per-backend retargeting table;
    - {!Synth}/{!Lb}/{!Measure}/{!Suite}: the evaluation harness;
    - {!Fuzz}/{!Par}: differential fuzzing and the process pool;
    - {!Serve}/{!Cas}: the batched compile service and the
      content-addressed artifact store behind it. *)

(* Support *)
module Prng = Simd_support.Prng
module Util = Simd_support.Util
module Json = Simd_support.Json

(* Machine model *)
module Machine = Simd_machine.Config
module Lane = Simd_machine.Lane
module Vec = Simd_machine.Vec
module Mem = Simd_machine.Mem

(* Loop IR *)
module Ast = Simd_loopir.Ast
module Parse = Simd_loopir.Parse
module Pp = Simd_loopir.Pp
module Align = Simd_loopir.Align
module Analysis = Simd_loopir.Analysis
module Layout = Simd_loopir.Layout
module Interp = Simd_loopir.Interp

(* Data reorganization *)
module Offset = Simd_dreorg.Offset
module Graph = Simd_dreorg.Graph
module Policy = Simd_dreorg.Policy
module Reassoc = Simd_dreorg.Reassoc

(* Exact shift placement ({!Opt.Cost}, {!Opt.Table}, {!Opt.Solve},
   {!Opt.Auto}, {!Opt.Place}, {!Opt.Report}) *)
module Opt = Simd_opt

(* Vector IR *)
module Vir_addr = Simd_vir.Addr
module Vir_rexpr = Simd_vir.Rexpr
module Vir_expr = Simd_vir.Expr
module Vir_prog = Simd_vir.Prog

(* Pass-pipeline tracing ({!Trace.Diff} for the structural line diffs) *)
module Trace = Simd_trace.Trace

(* Static analysis: the generic VIR dataflow engine ({!Dataflow.Live},
   {!Dataflow.Reach}, {!Dataflow.Avail}, {!Dataflow.Offsets},
   {!Dataflow.Cleanup}) and its offset lattice ({!Absoff}); the
   pass-boundary verifier ({!Check}, run at every boundary via
   [Driver.simdize ~check:true]); the registry-based linter ({!Lint},
   surfaced as [simdize --lint] and [bin/simdlint.exe]) *)
module Dataflow = Simd_dataflow.Dataflow
module Absoff = Simd_dataflow.Absoff
module Check = Simd_check.Check
module Lint = Simd_lint.Lint

(* Predication: if-conversion of guarded statements into selects and
   masked stores (run by {!Driver.simdize} before legality analysis) *)
module Mask = Simd_mask.Mask

(* Code generation *)
module Names = Simd_codegen.Names
module Gen = Simd_codegen.Gen
module Passes = Simd_codegen.Passes
module Peel = Simd_codegen.Peel
module Driver = Simd_codegen.Driver
module Retarget = Simd_codegen.Retarget

(* Simulation *)
module Exec = Simd_sim.Exec
module Sim_run = Simd_sim.Run

(* Emission: one module per backend, the registry + capability probe
   ({!Backend}), and the per-backend retargeting matrix ({!Matrix}) *)
module Emit_portable = Simd_emit.Portable
module Emit_altivec = Simd_emit.Altivec
module Emit_sse = Simd_emit.Sse
module Emit_avx2 = Simd_emit.Avx2
module Emit_neon = Simd_emit.Neon
module Backend = Simd_emit.Backend
module Matrix = Simd_emit.Matrix
module C_syntax = Simd_emit.C_syntax
module Cc = Simd_emit.Cc

(* Evaluation harness *)
module Synth = Simd_bench.Synth
module Lb = Simd_bench.Lb
module Measure = Simd_bench.Measure
module Suite = Simd_bench.Suite

(* Differential fuzzing ({!Fuzz.Genloop}, {!Fuzz.Oracle}, {!Fuzz.Shrink},
   {!Fuzz.Campaign}, {!Fuzz.Case}) *)
module Fuzz = Simd_fuzz

(* Parallel job pool ({!Par.Pool}, {!Par.Native}, {!Par.Campaign}):
   multicore fuzz campaigns and the native-differential oracle *)
module Par = Simd_par

(* Compile service ({!Serve.Protocol}, {!Serve.Compile}, {!Serve.Server}):
   the batched long-lived server, its wire protocol, and the pure
   compile-once path behind it *)
module Serve = Simd_serve

(* Content-addressed artifact store backing the native oracle's harness
   cache and the compile service's artifact cache *)
module Cas = Simd_support.Cas

(* ------------------------------------------------------------------ *)
(* Convenience entry points                                            *)
(* ------------------------------------------------------------------ *)

(** [parse source] — parse a loop program from concrete syntax. *)
let parse = Parse.program_of_string_result

(** [parse_exn source] — like {!parse}, raising on malformed input. *)
let parse_exn = Parse.program_of_string

(** [simdize ?config ?trace ?check program] — analyze, place shifts,
    generate and optimize SIMD code (defaults: 16-byte machine,
    dominant-shift policy, software pipelining, MemNorm + CSE on). Pass
    [?trace] (a {!Trace.create} sink) to record the full pass-pipeline
    event stream; [?check] runs the static verifier ({!Check}) at every
    pass boundary. *)
let simdize ?(config = Driver.default) ?trace ?check program =
  Driver.simdize ?trace ?check config program

(** [simdize_exn ?config ?trace ?check program] — like {!simdize}, raising
    when the loop stays scalar. *)
let simdize_exn ?(config = Driver.default) ?trace ?check program =
  Driver.simdize_exn ?trace ?check config program

(** [verify ?config ?seed ?trip program] — simdize and differentially test
    against the scalar interpreter on noise-filled memory. *)
let verify ?(config = Driver.default) ?(seed = 0x5EED) ?trip program =
  Measure.verify ~config ~setup_seed:seed ?trip program

(** [emit_c ?config ?backend program] — simdize and pretty-print a complete
    C translation unit ([`Portable] compiles anywhere; the others target
    their ISA and require the matching vector length in [config] —
    [`Avx2] needs V = 32, the rest V = 16). *)
let emit_c ?(config = Driver.default) ?(backend = `Portable) program =
  match Driver.simdize config program with
  | Driver.Scalar r -> Error (Format.asprintf "%a" Driver.pp_reason r)
  | Driver.Simdized o ->
    Ok
      (match backend with
      | `Portable -> Emit_portable.unit o.Driver.prog
      | `Altivec -> Emit_altivec.unit o.Driver.prog
      | `Sse -> Emit_sse.unit o.Driver.prog
      | `Avx2 -> Emit_avx2.unit o.Driver.prog
      | `Neon -> Emit_neon.unit o.Driver.prog)

(** [measure ?config ?trip program] — simdize, simulate, and report the
    dynamic operation counts, operations per datum, and speedup over the
    ideal scalar execution. *)
let measure ?(config = Driver.default) ?trip program =
  let sample = Measure.run ~config ?trip program in
  (sample, Measure.opd sample, Measure.speedup sample)
