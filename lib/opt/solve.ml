(** The exact stream-shift placement solver.

    Dynamic programming over the statement's bare data reorganization
    graph: each node gets a table ({!Table.t}) mapping every target byte
    offset [t ∈ [0, V)] to the minimum stream-shift cost of producing the
    node's value stream at offset [t], together with a rebuild function
    materializing a placement that achieves it. Leaves cost one direct
    shift (their lowering direction — and hence weight — is forced by
    comparing source and target offsets); an operation node meets its
    operands at the cheapest common offset [m] and optionally appends one
    trailing shift [m → t]. Because tables are closed under appending
    shifts (see {!Table}), restricting to a single trailing shift per node
    loses nothing, and the root entry at the store alignment (constraint
    C.2) is the true minimum over {e all} valid placements — V·n table
    entries, O(V²) work per operation node.

    Requires compile-time alignments, like every policy except zero-shift:
    callers fall back to zero-shift otherwise ({!Place}). *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module Policy = Simd_dreorg.Policy
module Config = Simd_machine.Config

(* DP over the bare tree: table + a rebuild function materializing the
   subtree placed so its stream sits at the given byte offset. [override]
   lets the joint solver substitute a different table/rebuild pair for
   selected nodes (leaves routed through a shared stream offset); it is
   consulted first at every node. *)
let rec build ?override ~(analysis : Analysis.t) ~machine ~v (n : Graph.node) :
    Table.t * (int -> Graph.node) =
  match override with
  | Some f when Option.is_some (f n) -> Option.get (f n)
  | _ -> (
    match n with
    | Graph.Load r ->
      let o =
        match Analysis.offset_of analysis r with
        | Align.Known k -> k
        | Align.Runtime -> assert false (* guarded by [offsets_known] *)
      in
      leaf ~machine ~v n o
    | Graph.Strided _ -> leaf ~machine ~v n 0 (* gathered streams sit at 0 *)
    | Graph.Splat _ -> (Table.Any, fun _ -> n)
    | Graph.Op (op, a, b) ->
      let ta, ra = build ?override ~analysis ~machine ~v a in
      let tb, rb = build ?override ~analysis ~machine ~v b in
      let table, choice = Table.meet machine ta tb in
      let rebuild t =
        match table with
        | Table.Any -> Graph.Op (op, ra 0, rb 0) (* offset ⊥; t irrelevant *)
        | Table.Tbl _ ->
          let m = choice.(t) in
          let child ct r =
            match ct with Table.Any -> r 0 | Table.Tbl _ -> r m
          in
          let core = Graph.Op (op, child ta ra, child tb rb) in
          if m = t then core
          else Graph.Shift (core, Offset.Known m, Offset.Known t)
      in
      (table, rebuild)
    | Graph.Cmp (c, a, b) ->
      let ta, ra = build ?override ~analysis ~machine ~v a in
      let tb, rb = build ?override ~analysis ~machine ~v b in
      let table, choice = Table.meet machine ta tb in
      let rebuild t =
        match table with
        | Table.Any -> Graph.Cmp (c, ra 0, rb 0)
        | Table.Tbl _ ->
          let m = choice.(t) in
          let child ct r =
            match ct with Table.Any -> r 0 | Table.Tbl _ -> r m
          in
          let core = Graph.Cmp (c, child ta ra, child tb rb) in
          if m = t then core
          else Graph.Shift (core, Offset.Known m, Offset.Known t)
      in
      (table, rebuild)
    | Graph.Sel (sm, a, b) ->
      (* ternary: mask and both arms must meet at ONE common offset
         (C.3); Table.meet_list is the n-ary meet — nesting binary meets
         would need a shift between them that no graph node carries *)
      let tm, rm = build ?override ~analysis ~machine ~v sm in
      let ta, ra = build ?override ~analysis ~machine ~v a in
      let tb, rb = build ?override ~analysis ~machine ~v b in
      let table, choice = Table.meet_list machine [ tm; ta; tb ] in
      let rebuild t =
        match table with
        | Table.Any -> Graph.Sel (rm 0, ra 0, rb 0)
        | Table.Tbl _ ->
          let m = choice.(t) in
          let child ct r =
            match ct with Table.Any -> r 0 | Table.Tbl _ -> r m
          in
          let core = Graph.Sel (child tm rm, child ta ra, child tb rb) in
          if m = t then core
          else Graph.Shift (core, Offset.Known m, Offset.Known t)
      in
      (table, rebuild)
    | Graph.Shift _ ->
      (* [solve_with_cost] discharges [Graph.assert_bare] before building;
         defensive, not a crash path *)
      raise (Graph.Invalid "bare-tree precondition violated (Graph.assert_bare)")
    )

and leaf ~machine ~v n o =
  ( Table.leaf machine ~v o,
    fun t ->
      if t = o then n else Graph.Shift (n, Offset.Known o, Offset.Known t) )

(** [solve_with_cost ?root ~analysis stmt] — the minimum-cost graph
    together with the DP's shift-cost value at the root (which {!Test_opt}
    cross-checks against {!Cost.shift_cost_of_graph} of the rebuilt
    graph). [root] (default [Graph.of_expr stmt.rhs]) must be bare, or the
    result is [Error (Not_bare _)]. *)
let solve_with_cost ?root ~(analysis : Analysis.t) (stmt : Ast.stmt) :
    (Graph.t * float, Policy.error) result =
  let bare =
    match root with Some r -> r | None -> Graph.of_expr stmt.Ast.rhs
  in
  match Graph.assert_bare bare with
  | Error msg -> Error (Policy.Not_bare (Policy.Optimal, msg))
  | Ok () ->
    if not (Policy.offsets_known ~analysis stmt) then
      Error (Policy.Requires_compile_time_alignment Policy.Optimal)
    else begin
      let machine = analysis.Analysis.machine in
      let v = Config.vector_len machine in
      let store_offset = Policy.target_offset ~analysis stmt in
      let target =
        match store_offset with
        | Offset.Known k -> k
        | Offset.Runtime _ | Offset.Any ->
          assert false (* offsets_known covers the store; reductions use 0 *)
      in
      let table, rebuild = build ~analysis ~machine ~v bare in
      let root = rebuild target in
      (* the mask tree of a guarded statement is solved by the same DP and
         placed at the store offset — a masked store consumes value and
         mask streams at the same offset *)
      let mask, mask_cost =
        match stmt.Ast.guard with
        | None -> (None, 0.0)
        | Some c ->
          let mt, mrebuild =
            build ~analysis ~machine ~v (Graph.of_cond c)
          in
          (Some (mrebuild target), Table.cost mt target)
      in
      let g =
        { Graph.store = stmt.Ast.lhs; store_offset; root;
          block = analysis.Analysis.block; mask }
      in
      Ok (g, Table.cost table target +. mask_cost)
    end

let solve ?root ~analysis stmt =
  Result.map fst (solve_with_cost ?root ~analysis stmt)

let solve_exn ~analysis stmt =
  match solve ~analysis stmt with
  | Ok g -> g
  | Error e ->
    invalid_arg (Format.asprintf "Opt.Solve.solve_exn: %a" Policy.pp_error e)
