(** Per-statement automatic policy selection: place the statement under
    every policy (the four §3.4 heuristics and the exact solver), score
    each graph with the machine cost model, and keep the cheapest. The
    earliest policy in registration order wins ties, so when a heuristic
    already achieves the optimum the report credits the simpler policy.
    Under runtime alignments only zero-shift applies (§4.4), mirroring the
    fallback of every other policy. *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Policy = Simd_dreorg.Policy

let candidates = Policy.heuristics @ [ Policy.Optimal ]

(* One candidate's placement, or [None] when the policy does not apply to
   the statement (a candidate list is a preference order, not a promise
   that every entry fits). *)
let try_candidate ~analysis stmt p : (Graph.t * Policy.t) option =
  let placed =
    match p with
    | Policy.Optimal | Policy.Auto | Policy.Joint -> Solve.solve ~analysis stmt
    | p -> Policy.place p ~analysis stmt
  in
  match placed with Ok g -> Some (g, p) | Error _ -> None

(** [place ?candidates ~analysis stmt] — the cheapest placement among
    [candidates] and the policy that produced it. Total: never fails —
    zero-shift is the fallback both under runtime alignments and when the
    candidate list yields no placement at all (empty list, or every entry
    inapplicable). *)
let place ?(candidates = candidates) ~(analysis : Analysis.t)
    (stmt : Ast.stmt) : Graph.t * Policy.t =
  let zero () = (Policy.place_exn Policy.Zero ~analysis stmt, Policy.Zero) in
  if not (Policy.offsets_known ~analysis stmt) then zero ()
  else begin
    let scored =
      List.filter_map
        (fun p ->
          Option.map
            (fun (g, p) -> (g, p, Cost.graph_cost ~analysis ~stmt g))
            (try_candidate ~analysis stmt p))
        candidates
    in
    match scored with
    | [] -> zero ()
    | first :: rest ->
      let g, p, _ =
        List.fold_left
          (fun ((_, _, bc) as best) ((_, _, c) as cand) ->
            if c < bc then cand else best)
          first rest
      in
      (g, p)
  end
