(** Per-statement automatic policy selection: place the statement under
    every policy (the four §3.4 heuristics and the exact solver), score
    each graph with the machine cost model, and keep the cheapest. The
    earliest policy in registration order wins ties, so when a heuristic
    already achieves the optimum the report credits the simpler policy.
    Under runtime alignments only zero-shift applies (§4.4), mirroring the
    fallback of every other policy. *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Policy = Simd_dreorg.Policy

let candidates = Policy.heuristics @ [ Policy.Optimal ]

(** [place ~analysis stmt] — the cheapest placement and the policy that
    produced it. Total: never fails (zero-shift fallback). *)
let place ~(analysis : Analysis.t) (stmt : Ast.stmt) : Graph.t * Policy.t =
  if not (Policy.offsets_known ~analysis stmt) then
    (Policy.place_exn Policy.Zero ~analysis stmt, Policy.Zero)
  else begin
    let scored =
      List.map
        (fun p ->
          let g =
            match p with
            | Policy.Optimal -> Solve.solve_exn ~analysis stmt
            | p -> Policy.place_exn p ~analysis stmt
          in
          (g, p, Cost.graph_cost ~analysis ~stmt g))
        candidates
    in
    let g, p, _ =
      match scored with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun ((_, _, bc) as best) ((_, _, c) as cand) ->
            if c < bc then cand else best)
          first rest
    in
    (g, p)
  end
