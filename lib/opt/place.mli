(** The total placement dispatcher covering every policy: §3.4 heuristics
    via {!Simd_dreorg.Policy.place}, [Optimal]/[Auto] via the exact
    solver. *)

type placement = {
  graph : Simd_dreorg.Graph.t;
  used : Simd_dreorg.Policy.t;
      (** the policy that actually produced [graph] (differs from the
          requested one under [Auto] or zero-shift fallback) *)
}

val place :
  Simd_dreorg.Policy.t ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (placement, Simd_dreorg.Policy.error) result
(** Errors only with [Requires_compile_time_alignment]; [Zero] and [Auto]
    are total. *)

val place_with_fallback :
  Simd_dreorg.Policy.t ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  placement
(** Zero-shift fallback under runtime alignments (§4.4). *)

val place_exn :
  Simd_dreorg.Policy.t ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  placement
(** {!place}, raising on the runtime-alignment error (no fallback). *)
