(** Per-node dynamic-programming tables for the exact shift-placement
    solver: minimum stream-shift cost of producing a subtree's value stream
    at each target byte offset in [\[0, V)]. Tables are closed under
    appending one more shift, so a single trailing shift per node suffices
    and the DP is exact (see the implementation header). *)

type t =
  | Any  (** loop-invariant (splat-only) subtree: offset ⊥, free everywhere *)
  | Tbl of float array  (** indexed by target byte offset, length V *)

val sc : Simd_machine.Config.t -> from:int -> to_:int -> float
(** Cost of one stream shift between byte offsets; 0 when equal. *)

val cost : t -> int -> float

val leaf : Simd_machine.Config.t -> v:int -> int -> t
(** [leaf machine ~v o] — closed table of a leaf streaming at offset [o]. *)

val meet : Simd_machine.Config.t -> t -> t -> t * int array
(** Combine two operand tables into the operation node's table, returning
    for each target [t] the chosen meet offset. Identity choices when at
    most one side constrains the offset; [[||]] when both are invariant.
    Ties prefer no trailing shift, then the smallest meet offset. *)

val meet_list : Simd_machine.Config.t -> t list -> t * int array
(** N-ary {!meet} for ternary [vsel] nodes: all constrained operands meet
    at one common offset before the optional trailing shift. *)
