(** Machine-readable static cost reports: what one compilation decided —
    per statement, the streams and their alignments, the chosen shifts, the
    operation counts and their weighted cost, and what every other
    applicable policy would have cost. Serializes to JSON
    ({!Simd_support.Json}) for the [--stats] CLI flag and the benchmark
    harness. *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module Policy = Simd_dreorg.Policy
module Config = Simd_machine.Config
module Json = Simd_support.Json

type stream = {
  stream_array : string;
  stream_offset : int;  (** element offset in the subscript *)
  stream_stride : int;
  stream_kind : [ `Load | `Gather | `Store ];
  stream_align : Align.t;  (** byte offset of the stream within its chunk *)
}

type shift = {
  shift_from : Offset.t;
  shift_to : Offset.t;
  shift_dir : Cost.direction option;
}

type stmt_report = {
  index : int;
  source : string;  (** the statement, pretty-printed *)
  requested : Policy.t;
  used : Policy.t;  (** after [Auto] selection or zero-shift fallback *)
  target : Offset.t;  (** offset the value stream must reach (C.2) *)
  streams : stream list;
  shifts : shift list;  (** chosen stream shifts, in evaluation order *)
  counts : Cost.counts;
  cost : float;
  alternatives : (Policy.t * float) list;
      (** static cost under every other placeable policy *)
}

type shared_stream = {
  shared_array : string;
  shared_offset : int;  (** element offset in the subscript *)
  shared_stride : int;
  shared_from : Offset.t;  (** the shared chain's outermost hop *)
  shared_to : Offset.t;
  shared_consumers : int;  (** occurrences body-wide, ≥ 2 *)
  shared_saved : float;  (** shift cost saved by sharing *)
}

type t = {
  policy : Policy.t;  (** the requested driver policy *)
  vector_len : int;
  cost_model : Config.cost_model;
  stmts : stmt_report list;
  totals : Cost.counts;
  total_cost : float;
  shared : shared_stream list;
      (** reorganization chains occurring in more than one statement — one
          [vshiftstream] after value numbering, whatever the policy;
          [joint] is the policy that steers placement toward them *)
  body_cost : float;
      (** [total_cost] minus the sharing discount ({!Joint.body_cost}) *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let streams_of_stmt ~(analysis : Analysis.t) (stmt : Ast.stmt) : stream list =
  let of_ref kind (r : Ast.mem_ref) =
    {
      stream_array = r.Ast.ref_array;
      stream_offset = r.Ast.ref_offset;
      stream_stride = r.Ast.ref_stride;
      stream_kind = kind;
      stream_align = Analysis.offset_of analysis r;
    }
  in
  let loads =
    List.map
      (fun (r : Ast.mem_ref) ->
        of_ref (if r.Ast.ref_stride > 1 then `Gather else `Load) r)
      (Ast.expr_loads stmt.Ast.rhs)
  in
  match stmt.Ast.kind with
  | Ast.Assign -> loads @ [ of_ref `Store stmt.Ast.lhs ]
  | Ast.Reduce _ -> loads

let rec shifts_of_node (n : Graph.node) : shift list =
  match n with
  | Graph.Load _ | Graph.Strided _ | Graph.Splat _ -> []
  | Graph.Op (_, a, b) | Graph.Cmp (_, a, b) ->
    shifts_of_node a @ shifts_of_node b
  | Graph.Sel (m, a, b) ->
    shifts_of_node m @ shifts_of_node a @ shifts_of_node b
  | Graph.Shift (src, from, to_) ->
    shifts_of_node src
    @ [ { shift_from = from; shift_to = to_; shift_dir = Cost.direction ~from ~to_ } ]

(** Static cost of [stmt] under every policy that can place it (the four
    heuristics plus the exact solver; [Auto] is definitionally the min). *)
let alternatives ~(analysis : Analysis.t) (stmt : Ast.stmt) :
    (Policy.t * float) list =
  List.filter_map
    (fun p ->
      match Place.place p ~analysis stmt with
      | Ok { Place.graph; _ } ->
        Some (p, Cost.graph_cost ~analysis ~stmt graph)
      | Error _ -> None)
    Auto.candidates

(** [make ~analysis ~requested ~placed] — build the report from the
    driver's placement results, one [(stmt, graph, used-policy)] triple per
    statement. *)
let make ~(analysis : Analysis.t) ~(requested : Policy.t)
    ~(placed : (Ast.stmt * Graph.t * Policy.t) list) : t =
  let machine = analysis.Analysis.machine in
  let stmts =
    List.mapi
      (fun index (stmt, graph, used) ->
        let counts = Cost.counts_of_graph ~analysis ~stmt graph in
        {
          index;
          source = Pp.stmt_to_string stmt;
          requested;
          used;
          target = graph.Graph.store_offset;
          streams = streams_of_stmt ~analysis stmt;
          shifts =
            (shifts_of_node graph.Graph.root
            @
            match graph.Graph.mask with
            | Some m -> shifts_of_node m
            | None -> []);
          counts;
          cost = Cost.cost_of_counts machine counts;
          alternatives = alternatives ~analysis stmt;
        })
      placed
  in
  let totals =
    List.fold_left
      (fun acc s -> Cost.add_counts acc s.counts)
      Cost.zero_counts stmts
  in
  let shared =
    List.map
      (fun (s : Joint.shared) ->
        let r = s.Joint.sh_chain.Graph.chain_ref in
        let from, to_ =
          List.nth s.Joint.sh_chain.Graph.chain_hops
            (List.length s.Joint.sh_chain.Graph.chain_hops - 1)
        in
        {
          shared_array = r.Ast.ref_array;
          shared_offset = r.Ast.ref_offset;
          shared_stride = r.Ast.ref_stride;
          shared_from = from;
          shared_to = to_;
          shared_consumers = s.Joint.sh_count;
          shared_saved = s.Joint.sh_saved;
        })
      (Joint.shared_streams ~analysis
         (List.map (fun (_, g, _) -> g) placed))
  in
  {
    policy = requested;
    vector_len = Config.vector_len machine;
    cost_model = Config.costs machine;
    stmts;
    totals;
    total_cost = Cost.cost_of_counts machine totals;
    shared;
    body_cost =
      Joint.body_cost ~analysis (List.map (fun (s, g, _) -> (s, g)) placed);
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let offset_to_json (o : Offset.t) : Json.t =
  match o with
  | Offset.Known k -> Json.Int k
  | Offset.Runtime _ | Offset.Any ->
    Json.String (Format.asprintf "%a" Offset.pp o)

let align_to_json (a : Align.t) : Json.t =
  match a with
  | Align.Known k -> Json.Int k
  | Align.Runtime -> Json.String "runtime"

let direction_name = function
  | Some Cost.Left -> "left"
  | Some Cost.Right -> "right"
  | None -> "none"

let kind_name = function `Load -> "load" | `Gather -> "gather" | `Store -> "store"

let counts_to_json (c : Cost.counts) : Json.t =
  Json.Obj
    [
      ("loads", Json.Int c.Cost.loads);
      ("stores", Json.Int c.Cost.stores);
      ("ops", Json.Int c.Cost.ops);
      ("splats", Json.Int c.Cost.splats);
      ("shifts_left", Json.Int c.Cost.shifts_left);
      ("shifts_right", Json.Int c.Cost.shifts_right);
      ("packs", Json.Int c.Cost.packs);
      ("splices", Json.Int c.Cost.splices);
    ]

let cost_model_to_json (w : Config.cost_model) : Json.t =
  Json.Obj
    [
      ("load", Json.Float w.Config.load);
      ("store", Json.Float w.Config.store);
      ("op", Json.Float w.Config.op);
      ("splat", Json.Float w.Config.splat);
      ("shift_left", Json.Float w.Config.shift_left);
      ("shift_right", Json.Float w.Config.shift_right);
      ("splice", Json.Float w.Config.splice);
      ("pack", Json.Float w.Config.pack);
    ]

let stream_to_json (s : stream) : Json.t =
  Json.Obj
    [
      ("array", Json.String s.stream_array);
      ("offset", Json.Int s.stream_offset);
      ("stride", Json.Int s.stream_stride);
      ("kind", Json.String (kind_name s.stream_kind));
      ("align", align_to_json s.stream_align);
    ]

let shift_to_json (s : shift) : Json.t =
  Json.Obj
    [
      ("from", offset_to_json s.shift_from);
      ("to", offset_to_json s.shift_to);
      ("direction", Json.String (direction_name s.shift_dir));
    ]

let stmt_to_json (s : stmt_report) : Json.t =
  Json.Obj
    [
      ("index", Json.Int s.index);
      ("source", Json.String s.source);
      ("requested_policy", Json.String (Policy.name s.requested));
      ("used_policy", Json.String (Policy.name s.used));
      ("target_offset", offset_to_json s.target);
      ("streams", Json.List (List.map stream_to_json s.streams));
      ("shifts", Json.List (List.map shift_to_json s.shifts));
      ("counts", counts_to_json s.counts);
      ("cost", Json.Float s.cost);
      ( "alternatives",
        Json.Obj
          (List.map
             (fun (p, c) -> (Policy.name p, Json.Float c))
             s.alternatives) );
    ]

let shared_to_json (s : shared_stream) : Json.t =
  Json.Obj
    [
      ("array", Json.String s.shared_array);
      ("offset", Json.Int s.shared_offset);
      ("stride", Json.Int s.shared_stride);
      ("from", offset_to_json s.shared_from);
      ("to", offset_to_json s.shared_to);
      ("consumers", Json.Int s.shared_consumers);
      ("saved", Json.Float s.shared_saved);
    ]

let to_json (r : t) : Json.t =
  Json.Obj
    [
      ("policy", Json.String (Policy.name r.policy));
      ("vector_len", Json.Int r.vector_len);
      ("cost_model", cost_model_to_json r.cost_model);
      ("statements", Json.List (List.map stmt_to_json r.stmts));
      ("totals", counts_to_json r.totals);
      ("total_cost", Json.Float r.total_cost);
      ("shared_streams", Json.List (List.map shared_to_json r.shared));
      ("body_cost", Json.Float r.body_cost);
    ]

let to_string ?indent r = Json.to_string ?indent (to_json r)

(* ------------------------------------------------------------------ *)
(* Human-readable summary                                              *)
(* ------------------------------------------------------------------ *)

let pp fmt (r : t) =
  Format.fprintf fmt "@[<v>policy %s, V = %d bytes@," (Policy.name r.policy)
    r.vector_len;
  List.iter
    (fun s ->
      Format.fprintf fmt "stmt %d: %s@,  used %s, cost %.2f (%d shifts: %dL %dR)@,"
        s.index s.source (Policy.name s.used) s.cost
        (Cost.shifts s.counts) s.counts.Cost.shifts_left
        s.counts.Cost.shifts_right;
      List.iter
        (fun (p, c) -> Format.fprintf fmt "    %-8s %.2f@," (Policy.name p) c)
        s.alternatives)
    r.stmts;
  List.iter
    (fun s ->
      Format.fprintf fmt
        "shared: %s[%d] stride %d, %a -> %a, %d consumers (saves %.2f)@,"
        s.shared_array s.shared_offset s.shared_stride Offset.pp s.shared_from
        Offset.pp s.shared_to s.shared_consumers s.shared_saved)
    r.shared;
  Format.fprintf fmt "total cost %.2f" r.total_cost;
  if r.shared <> [] then
    Format.fprintf fmt " (body cost %.2f after sharing)" r.body_cost;
  Format.fprintf fmt "@]"
