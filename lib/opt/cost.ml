(** Applying the machine cost model ({!Simd_machine.Config.cost_model}) to
    placed data reorganization graphs.

    The static cost of a graph decomposes into a {e placement-invariant}
    part (loads, the store or reduction accumulate, vops, splats, gather
    packs/window shifts, edge splices) that every policy pays identically,
    and the {e placement-variant} part: the stream shifts, weighted by
    lowering direction. A left shift ([from > to]) pairs the current
    register with the next one — data the loop loads anyway; a right shift
    ([from < to]) pairs it with the {e previous} register, which forces a
    prologue prepended load (Eqs. 8–10), hence its distinct (default
    higher) weight. Minimizing graph cost therefore minimizes exactly the
    shift term, which is what {!Solve} does. *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module Policy = Simd_dreorg.Policy
module Config = Simd_machine.Config

type direction = Left | Right

(** Lowering direction of a stream shift, mirroring the code generator
    (paper §4.4): compile-time endpoints compare numerically; a runtime
    offset shifting to 0 is always a left shift, and a stream leaving
    offset 0 for a runtime target is always a right shift (the zero-shift
    policy's two cases). [None] for a no-op shift. *)
let direction ~(from : Offset.t) ~(to_ : Offset.t) : direction option =
  match (from, to_) with
  | Offset.Known f, Offset.Known t ->
    if f > t then Some Left else if f < t then Some Right else None
  | Offset.Runtime _, Offset.Known 0 -> Some Left
  | Offset.Known 0, Offset.Runtime _ -> Some Right
  | _ ->
    invalid_arg
      (Format.asprintf "Opt.Cost.direction: undecidable shift %a -> %a"
         Offset.pp from Offset.pp to_)

(** [shift_cost machine ~from ~to_] — the weight of one stream shift; 0 for
    a no-op. *)
let shift_cost (machine : Config.t) ~from ~to_ =
  match direction ~from ~to_ with
  | None -> 0.0
  | Some Left -> Config.shift_cost machine `Left
  | Some Right -> Config.shift_cost machine `Right

(* ------------------------------------------------------------------ *)
(* Static operation counts of a placed graph                           *)
(* ------------------------------------------------------------------ *)

(** Static reorganization/memory operations of one statement graph. All
    fields except [splices] count operations per steady-state simdized
    iteration; [splices] counts the one-time edge splices (the prologue
    partial store for a misaligned or runtime-aligned store, one epilogue
    partial store, or the two write-back splices of a reduction). *)
type counts = {
  loads : int;
  stores : int;
  ops : int;
  splats : int;
  shifts_left : int;
  shifts_right : int;
  packs : int;
  splices : int;
  cmps : int;  (** [vcmp] mask-producing compares (predication) *)
  sels : int;
      (** [vsel] blends, including the one a masked store lowers to *)
}
[@@deriving show { with_path = false }, eq]

let zero_counts =
  {
    loads = 0;
    stores = 0;
    ops = 0;
    splats = 0;
    shifts_left = 0;
    shifts_right = 0;
    packs = 0;
    splices = 0;
    cmps = 0;
    sels = 0;
  }

let add_counts a b =
  {
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    ops = a.ops + b.ops;
    splats = a.splats + b.splats;
    shifts_left = a.shifts_left + b.shifts_left;
    shifts_right = a.shifts_right + b.shifts_right;
    packs = a.packs + b.packs;
    splices = a.splices + b.splices;
    cmps = a.cmps + b.cmps;
    sels = a.sels + b.sels;
  }

let shifts c = c.shifts_left + c.shifts_right

(** [counts_of_node ~analysis node] — per-iteration counts of a subtree. A
    stride-[s] gather consumes [s] chunks, [s] window shifts when its base
    is misaligned (counted as left shifts: a window pairs a chunk with the
    {e next} one), and [s − 1] packs (see {!Simd_codegen.Gen.gen_gather}
    and the matching accounting in {!Simd_bench.Lb}). *)
let rec counts_of_node ~(analysis : Analysis.t) (n : Graph.node) : counts =
  match n with
  | Graph.Load _ -> { zero_counts with loads = 1 }
  | Graph.Strided r ->
    let s = r.Ast.ref_stride in
    let window_shifts =
      match Analysis.offset_of analysis r with
      | Align.Known 0 -> 0
      | Align.Known _ | Align.Runtime -> s
    in
    { zero_counts with loads = s; shifts_left = window_shifts; packs = s - 1 }
  | Graph.Splat _ -> { zero_counts with splats = 1 }
  | Graph.Op (_, a, b) ->
    let ca = counts_of_node ~analysis a in
    let cb = counts_of_node ~analysis b in
    { (add_counts ca cb) with ops = ca.ops + cb.ops + 1 }
  | Graph.Cmp (_, a, b) ->
    let ca = counts_of_node ~analysis a in
    let cb = counts_of_node ~analysis b in
    let c = add_counts ca cb in
    { c with cmps = c.cmps + 1 }
  | Graph.Sel (m, a, b) ->
    let c =
      add_counts
        (counts_of_node ~analysis m)
        (add_counts (counts_of_node ~analysis a) (counts_of_node ~analysis b))
    in
    { c with sels = c.sels + 1 }
  | Graph.Shift (src, from, to_) -> (
    let cs = counts_of_node ~analysis src in
    match direction ~from ~to_ with
    | None -> cs
    | Some Left -> { cs with shifts_left = cs.shifts_left + 1 }
    | Some Right -> { cs with shifts_right = cs.shifts_right + 1 })

(** [counts_of_graph ~analysis ~stmt g] — whole-statement counts: the
    subtree plus the store (or the reduction accumulate) and the one-time
    edge splices. *)
let counts_of_graph ~(analysis : Analysis.t) ~(stmt : Ast.stmt) (g : Graph.t) :
    counts =
  let c = counts_of_node ~analysis g.Graph.root in
  let c =
    (* a guarded statement pays its mask tree every iteration plus one
       [vsel] for the masked store's blend *)
    match g.Graph.mask with
    | None -> c
    | Some m ->
      let cm = counts_of_node ~analysis m in
      let c = add_counts c cm in
      { c with sels = c.sels + 1 }
  in
  match stmt.Ast.kind with
  | Ast.Reduce _ ->
    (* one accumulate per iteration; finalization writes back the
       accumulator cell through two splices *)
    { c with ops = c.ops + 1; splices = c.splices + 2 }
  | Ast.Assign ->
    let prologue_splice =
      match g.Graph.store_offset with Offset.Known 0 -> 0 | _ -> 1
    in
    {
      c with
      stores = c.stores + 1;
      splices = c.splices + prologue_splice + 1 (* epilogue partial store *);
    }

(* ------------------------------------------------------------------ *)
(* Weighted costs                                                      *)
(* ------------------------------------------------------------------ *)

let cost_of_counts (machine : Config.t) (c : counts) =
  let w = Config.costs machine in
  (float_of_int c.loads *. w.Config.load)
  +. (float_of_int c.stores *. w.Config.store)
  +. (float_of_int c.ops *. w.Config.op)
  +. (float_of_int c.splats *. w.Config.splat)
  +. (float_of_int c.shifts_left *. w.Config.shift_left)
  +. (float_of_int c.shifts_right *. w.Config.shift_right)
  +. (float_of_int c.packs *. w.Config.pack)
  +. (float_of_int c.splices *. w.Config.splice)
  +. (float_of_int c.cmps *. w.Config.cmp)
  +. (float_of_int c.sels *. w.Config.sel)

(** [graph_cost ~analysis ~stmt g] — the statement's total static cost
    under the machine's cost model (the quantity {!Solve} minimizes; only
    the stream-shift term varies across placements). *)
let graph_cost ~(analysis : Analysis.t) ~(stmt : Ast.stmt) (g : Graph.t) =
  cost_of_counts analysis.Analysis.machine (counts_of_graph ~analysis ~stmt g)

(** [shift_cost_of_graph ~analysis g] — the placement-variant term alone:
    explicit stream-shift nodes only. A misaligned gather's window shifts
    are priced by {!counts_of_graph} but excluded here — they are fixed by
    the reference, not by the placement, so the DP does not account for
    them. *)
let shift_cost_of_graph ~(analysis : Analysis.t) (g : Graph.t) =
  let machine = analysis.Analysis.machine in
  let rec go = function
    | Graph.Load _ | Graph.Strided _ | Graph.Splat _ -> 0.0
    | Graph.Op (_, a, b) | Graph.Cmp (_, a, b) -> go a +. go b
    | Graph.Sel (m, a, b) -> go m +. go a +. go b
    | Graph.Shift (src, from, to_) -> (
      go src
      +.
      match direction ~from ~to_ with
      | None -> 0.0
      | Some Left -> Config.shift_cost machine `Left
      | Some Right -> Config.shift_cost machine `Right)
  in
  (go g.Graph.root
  +. match g.Graph.mask with Some m -> go m | None -> 0.0)
