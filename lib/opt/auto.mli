(** Per-statement automatic policy selection: argmin by machine cost over
    the four §3.4 heuristics and the exact solver; earliest policy wins
    ties; zero-shift under runtime alignments. *)

val candidates : Simd_dreorg.Policy.t list
(** The policies competed per statement, in tie-breaking order: the four
    heuristics, then [Optimal]. *)

val place :
  ?candidates:Simd_dreorg.Policy.t list ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  Simd_dreorg.Graph.t * Simd_dreorg.Policy.t
(** Total: never fails. Returns the graph and the policy that produced it.
    Zero-shift is the fallback under runtime alignments and whenever
    [candidates] (default {!candidates}) yields no placement — an empty or
    fully inapplicable list degrades to zero, not to a crash. *)
