(** The total placement dispatcher: one entry point covering every
    {!Simd_dreorg.Policy.t}, routing the §3.4 heuristics to
    {!Simd_dreorg.Policy.place} and [Optimal]/[Auto]/[Joint] to the exact
    solver. The driver goes through this module, never through
    [Policy.place] directly, so a [Requires_solver] error can only mean a
    caller bypassed the dispatcher. *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Policy = Simd_dreorg.Policy

type placement = {
  graph : Graph.t;
  used : Policy.t;  (** the policy that actually produced [graph] *)
}

(** [place policy ~analysis stmt] — place under [policy]. Errors only with
    [Requires_compile_time_alignment] (for eager/lazy/dominant/optimal
    under runtime alignments); [Auto] is total. *)
let place (policy : Policy.t) ~(analysis : Analysis.t) (stmt : Ast.stmt) :
    (placement, Policy.error) result =
  match policy with
  | Policy.Zero | Policy.Eager | Policy.Lazy | Policy.Dominant ->
    Result.map
      (fun graph -> { graph; used = policy })
      (Policy.place policy ~analysis stmt)
  | Policy.Optimal ->
    Result.map
      (fun graph -> { graph; used = Policy.Optimal })
      (Solve.solve ~analysis stmt)
  | Policy.Auto ->
    let graph, used = Auto.place ~analysis stmt in
    Ok { graph; used }
  | Policy.Joint -> (
    (* single-statement joint placement ≡ optimal (no cross-statement
       sharing); whole-body joint placement lives in the driver, which
       calls [Joint.place_body] over the full body instead of this
       per-statement entry point *)
    if not (Policy.offsets_known ~analysis stmt) then
      Error (Policy.Requires_compile_time_alignment Policy.Joint)
    else
      match Joint.place_body ~analysis [ stmt ] with
      | [ (_, graph, used) ] -> Ok { graph; used }
      | _ -> assert false (* place_body preserves statement count *))

(** [place_with_fallback policy ~analysis stmt] — like {!place} but falls
    back to zero-shift when the policy needs compile-time alignments the
    statement lacks (§4.4); [used] records the fallback. *)
let place_with_fallback policy ~analysis stmt : placement =
  match place policy ~analysis stmt with
  | Ok p -> p
  | Error (Policy.Requires_compile_time_alignment _) ->
    { graph = Policy.place_exn Policy.Zero ~analysis stmt; used = Policy.Zero }
  | Error ((Policy.Requires_solver _ | Policy.Not_bare _) as e) ->
    (* [place] dispatches every policy and hands workers bare trees; a
       caller reaching here bypassed the dispatcher *)
    invalid_arg
      (Format.asprintf "Opt.Place.place_with_fallback: %a" Policy.pp_error e)

let place_exn policy ~analysis stmt =
  match place policy ~analysis stmt with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "Opt.Place.place_exn: %a" Policy.pp_error e)
