(** Applying the machine cost model ({!Simd_machine.Config.cost_model}) to
    placed data reorganization graphs. Only the stream-shift term varies
    across placements of the same statement; everything else (loads, store,
    vops, splats, gather packs, edge splices) is policy-invariant. *)

type direction = Left | Right

val direction :
  from:Simd_dreorg.Offset.t -> to_:Simd_dreorg.Offset.t -> direction option
(** Lowering direction of a stream shift, mirroring the code generator
    (§4.4): known endpoints compare numerically; [Runtime → Known 0] is a
    left shift, [Known 0 → Runtime] a right shift. [None] for a no-op.
    Raises [Invalid_argument] on undecidable endpoint combinations. *)

val shift_cost :
  Simd_machine.Config.t ->
  from:Simd_dreorg.Offset.t ->
  to_:Simd_dreorg.Offset.t ->
  float
(** Price of one stream shift under the machine's per-direction weights
    (a right shift costs more than a left one — it forces a prepended
    prologue load); 0 for a no-op shift. *)

(** Static reorganization/memory operations of one statement graph. All
    fields except [splices] count per steady-state simdized iteration;
    [splices] counts one-time edge splices (misaligned-store prologue,
    epilogue partial store, reduction write-back). *)
type counts = {
  loads : int;
  stores : int;
  ops : int;
  splats : int;
  shifts_left : int;
  shifts_right : int;
  packs : int;
  splices : int;
  cmps : int;  (** [vcmp] mask-producing compares (predication) *)
  sels : int;  (** [vsel] blends, including a masked store's *)
}
[@@deriving show, eq]

val zero_counts : counts
val add_counts : counts -> counts -> counts

val shifts : counts -> int
(** Total stream shifts, either direction. *)

val counts_of_node :
  analysis:Simd_loopir.Analysis.t -> Simd_dreorg.Graph.node -> counts
(** Static operation counts of one graph subtree (loads deduplicated per
    distinct reference). *)

val counts_of_graph :
  analysis:Simd_loopir.Analysis.t ->
  stmt:Simd_loopir.Ast.stmt ->
  Simd_dreorg.Graph.t ->
  counts
(** Whole-statement counts: the root subtree plus the store and its edge
    splices. *)

val cost_of_counts : Simd_machine.Config.t -> counts -> float
(** Weighted sum of {!counts} under the machine's cost model. *)

val graph_cost :
  analysis:Simd_loopir.Analysis.t ->
  stmt:Simd_loopir.Ast.stmt ->
  Simd_dreorg.Graph.t ->
  float
(** The statement's total static cost under the machine's cost model — the
    quantity {!Solve} minimizes. *)

val shift_cost_of_graph :
  analysis:Simd_loopir.Analysis.t -> Simd_dreorg.Graph.t -> float
(** The placement-variant (stream-shift) term alone. *)
