(** Machine-readable static cost reports of one compilation: per statement,
    the streams and their alignments, the chosen shifts, operation counts,
    weighted cost, and the cost under every other placeable policy. *)

type stream = {
  stream_array : string;
  stream_offset : int;
  stream_stride : int;
  stream_kind : [ `Load | `Gather | `Store ];
  stream_align : Simd_loopir.Align.t;
}

type shift = {
  shift_from : Simd_dreorg.Offset.t;
  shift_to : Simd_dreorg.Offset.t;
  shift_dir : Cost.direction option;
}

type stmt_report = {
  index : int;
  source : string;
  requested : Simd_dreorg.Policy.t;
  used : Simd_dreorg.Policy.t;
  target : Simd_dreorg.Offset.t;
  streams : stream list;
  shifts : shift list;
  counts : Cost.counts;
  cost : float;
  alternatives : (Simd_dreorg.Policy.t * float) list;
}

type shared_stream = {
  shared_array : string;
  shared_offset : int;
  shared_stride : int;
  shared_from : Simd_dreorg.Offset.t;
  shared_to : Simd_dreorg.Offset.t;
  shared_consumers : int;
  shared_saved : float;
}

type t = {
  policy : Simd_dreorg.Policy.t;
  vector_len : int;
  cost_model : Simd_machine.Config.cost_model;
  stmts : stmt_report list;
  totals : Cost.counts;
  total_cost : float;
  shared : shared_stream list;
      (** reorganization chains occurring in more than one statement — one
          [vshiftstream] after value numbering ({!Joint.shared_streams}) *)
  body_cost : float;
      (** [total_cost] minus the sharing discount ({!Joint.body_cost}) *)
}

val make :
  analysis:Simd_loopir.Analysis.t ->
  requested:Simd_dreorg.Policy.t ->
  placed:
    (Simd_loopir.Ast.stmt * Simd_dreorg.Graph.t * Simd_dreorg.Policy.t) list ->
  t
(** Build the report from the driver's placed graphs: one [stmt_report]
    per statement (in source order) plus whole-loop totals. *)

val alternatives :
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Simd_dreorg.Policy.t * float) list
(** Static cost of the statement under every policy that can place it. *)

val to_json : t -> Simd_support.Json.t
(** The `--stats` document: schema described in the README. *)

val to_string : ?indent:int -> t -> string
(** {!to_json} rendered as text ([indent] defaults to 2). *)

val pp : Format.formatter -> t -> unit
