(** Whole-body shift placement with cross-statement stream sharing — the
    [joint] policy. Enumerates shareable stream classes across the body's
    statements, sweeps shared-offset assignments through the per-statement
    DP ({!Solve.build} with overridden leaf tables), and keeps the argmin
    body under {!body_cost}. The candidate set always contains the
    per-statement optimum and every §3.4 heuristic applied body-wide, so
    [joint ≤ optimal] and [joint ≤ heuristic] hold by construction. *)

type shared = {
  sh_chain : Simd_dreorg.Graph.chain;
  sh_count : int;  (** occurrences body-wide, ≥ 2 *)
  sh_saved : float;
      (** shift cost saved by sharing: the chain's outermost hop, once per
          extra consumer *)
}

val shared_streams :
  analysis:Simd_loopir.Analysis.t ->
  Simd_dreorg.Graph.t list ->
  shared list
(** Every reorganization chain occurring at least twice across the placed
    body — the streams value numbering collapses into one. *)

val pp_shared : Format.formatter -> shared -> unit

val body_cost :
  analysis:Simd_loopir.Analysis.t ->
  (Simd_loopir.Ast.stmt * Simd_dreorg.Graph.t) list ->
  float
(** Sum of per-statement graph costs minus the sharing discount. *)

val place_body :
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt list ->
  (Simd_loopir.Ast.stmt * Simd_dreorg.Graph.t * Simd_dreorg.Policy.t) list
(** Place the whole body jointly, in body order. Total: statements with
    runtime alignments take the zero-shift placement (§4.4) and are
    labelled [Zero]; the rest are labelled [Joint]. *)
