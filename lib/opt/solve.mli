(** The exact stream-shift placement solver: dynamic programming over the
    statement's data reorganization graph, returning a valid graph of
    provably minimum cost under the machine's cost model. Requires
    compile-time alignments ({!Simd_dreorg.Policy.offsets_known}); callers
    fall back to zero-shift otherwise ({!Place}). *)

val build :
  ?override:
    (Simd_dreorg.Graph.node ->
    (Table.t * (int -> Simd_dreorg.Graph.node)) option) ->
  analysis:Simd_loopir.Analysis.t ->
  machine:Simd_machine.Config.t ->
  v:int ->
  Simd_dreorg.Graph.node ->
  Table.t * (int -> Simd_dreorg.Graph.node)
(** The DP core: a node's per-offset cost table plus a rebuild function
    materializing the subtree placed at a given byte offset. [override]
    (consulted first at every node) lets {!Joint} substitute tables for
    leaves routed through a shared stream offset. The node must be bare. *)

val solve :
  ?root:Simd_dreorg.Graph.node ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Simd_dreorg.Graph.t, Simd_dreorg.Policy.error) result
(** The minimum-cost valid graph, or
    [Requires_compile_time_alignment Optimal] when any stride-one
    reference has a runtime offset, or [Not_bare] when [root] already
    carries shifts. *)

val solve_with_cost :
  ?root:Simd_dreorg.Graph.node ->
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Simd_dreorg.Graph.t * float, Simd_dreorg.Policy.error) result
(** Also returns the DP's root shift-cost value, which must equal
    {!Cost.shift_cost_of_graph} of the returned graph. *)

val solve_exn :
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  Simd_dreorg.Graph.t
(** {!solve}, raising [Invalid_argument] on the runtime-alignment
    error. *)
