(** The exact stream-shift placement solver: dynamic programming over the
    statement's data reorganization graph, returning a valid graph of
    provably minimum cost under the machine's cost model. Requires
    compile-time alignments ({!Simd_dreorg.Policy.offsets_known}); callers
    fall back to zero-shift otherwise ({!Place}). *)

val solve :
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Simd_dreorg.Graph.t, Simd_dreorg.Policy.error) result
(** The minimum-cost valid graph, or
    [Requires_compile_time_alignment Optimal] when any stride-one
    reference has a runtime offset. *)

val solve_with_cost :
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  (Simd_dreorg.Graph.t * float, Simd_dreorg.Policy.error) result
(** Also returns the DP's root shift-cost value, which must equal
    {!Cost.shift_cost_of_graph} of the returned graph. *)

val solve_exn :
  analysis:Simd_loopir.Analysis.t ->
  Simd_loopir.Ast.stmt ->
  Simd_dreorg.Graph.t
(** {!solve}, raising [Invalid_argument] on the runtime-alignment
    error. *)
