(** Per-node dynamic-programming tables for the exact shift-placement
    solver: for each reachable target byte offset [t ∈ \[0, V)], the
    minimum stream-shift cost of producing the subtree's value stream at
    offset [t].

    Tables are kept {e closed} under appending one more shift:
    [cost tbl t ≤ cost tbl m + sc(m, t)] for all [m, t]. Leaf tables are
    closed because the per-shift cost [sc] satisfies the triangle
    inequality (any composite path from [o] to [t] contains at least one
    shift in the net direction, and weights are non-negative), and {!meet}
    re-closes after combining operand tables — so a single trailing shift
    per node suffices and the DP is exact. *)

module Config = Simd_machine.Config

type t =
  | Any  (** loop-invariant (splat-only) subtree: offset ⊥, free everywhere *)
  | Tbl of float array  (** indexed by target byte offset, length V *)

(** Cost of one stream shift from byte offset [f] to [t]: left shifts move
    data toward lower offsets, right shifts toward higher ones (and pay the
    prologue prepended load, Eqs. 8–10). *)
let sc (machine : Config.t) ~from:f ~to_:t =
  if f = t then 0.0
  else if f > t then Config.shift_cost machine `Left
  else Config.shift_cost machine `Right

let cost tbl t = match tbl with Any -> 0.0 | Tbl a -> a.(t)

(** [leaf machine ~v o] — the (closed) table of a leaf whose stream sits at
    byte offset [o]: reaching [t] costs one direct shift. *)
let leaf (machine : Config.t) ~v o =
  Tbl (Array.init v (fun t -> sc machine ~from:o ~to_:t))

(** [meet machine ta tb] — combine two operand tables into the table of the
    operation node, also returning, for each target [t], the chosen meet
    offset [m] (where the operands agree before an optional trailing shift
    [m → t]). The choice array is the identity when at most one side
    constrains the offset, and [[||]] when both operands are invariant.
    Ties prefer [m = t] (no trailing shift), then the smallest [m]. *)
let meet (machine : Config.t) (ta : t) (tb : t) : t * int array =
  match (ta, tb) with
  | Any, Any -> (Any, [||])
  | Any, (Tbl b as tb) -> (tb, Array.init (Array.length b) Fun.id)
  | (Tbl a as ta), Any -> (ta, Array.init (Array.length a) Fun.id)
  | Tbl a, Tbl b ->
    let v = Array.length a in
    let inner m = a.(m) +. b.(m) in
    let out = Array.make v 0.0 in
    let choice = Array.make v 0 in
    for t = 0 to v - 1 do
      (* seed with the no-shift candidate m = t so it wins all ties; other
         candidates replace it only on strict improvement, which also makes
         the smallest equal-cost m win among the rest *)
      let best = ref (inner t) and best_m = ref t in
      for m = 0 to v - 1 do
        let c = inner m +. sc machine ~from:m ~to_:t in
        if c < !best then begin
          best := c;
          best_m := m
        end
      done;
      out.(t) <- !best;
      choice.(t) <- !best_m
    done;
    (Tbl out, choice)

(** [meet_list machine ts] — the n-ary generalization of {!meet}, needed by
    ternary [vsel] nodes: {e all} operands must meet at one common offset
    [m] (pairwise binary meets would require a shift node between the two
    meets that the graph has no place for), then an optional single
    trailing shift [m → t]. Invariant ([Any]) operands never constrain the
    meet. Ties prefer [m = t], then the smallest [m]. *)
let meet_list (machine : Config.t) (ts : t list) : t * int array =
  let tbls = List.filter_map (function Any -> None | Tbl a -> Some a) ts in
  match tbls with
  | [] -> (Any, [||])
  | [ a ] -> (Tbl a, Array.init (Array.length a) Fun.id)
  | _ ->
    let v = Array.length (List.hd tbls) in
    let inner m = List.fold_left (fun s a -> s +. a.(m)) 0.0 tbls in
    let out = Array.make v 0.0 in
    let choice = Array.make v 0 in
    for t = 0 to v - 1 do
      let best = ref (inner t) and best_m = ref t in
      for m = 0 to v - 1 do
        let c = inner m +. sc machine ~from:m ~to_:t in
        if c < !best then begin
          best := c;
          best_m := m
        end
      done;
      out.(t) <- !best;
      choice.(t) <- !best_m
    done;
    (Tbl out, choice)
