(** Whole-body shift placement with cross-statement stream sharing
    (paper §4.4 multi-statement loops; the `joint` policy).

    {!Solve} is provably optimal only {e per statement}: two statements
    loading the same misaligned stream each pay for their own
    [vshiftstream], and shift offsets are chosen independently even when
    meeting at a common offset would be cheaper globally (value numbering
    collapses structurally equal shift chains into one shared stream at
    lowering time, see {!Graph.chain}). This module lifts placement to the
    whole body:

    - enumerate the shareable stream classes — (array reference,
      gather-ness) pairs whose leaves occur at least twice across the
      body's bare trees;
    - for each assignment of a shared offset [σ] to a subset of classes,
      re-run the per-statement DP with the class leaves' tables extended
      by a route {e through} [σ] whose [o → σ] hop is priced as shared
      (free within one statement's table — the hop is paid once per body,
      not once per consumer);
    - materialize every candidate body (the per-statement optimum, each
      §3.4 heuristic applied body-wide, and every sharing assignment) and
      keep the argmin under the {e true} body cost {!body_cost}, which
      discounts each duplicated chain once per extra consumer.

    Because the candidate set always contains the per-statement optimum
    and every heuristic body, [joint ≤ optimal] and [joint ≤ heuristic]
    hold by construction under {!body_cost}. Statements with runtime
    alignments take the zero-shift placement, as everywhere else (§4.4).

    The assignment sweep is capped ({!val-cap}) — classes beyond the cap
    keep their native offsets. Real loop bodies have a handful of shared
    classes, so the cap is never reached in practice. *)

open Simd_loopir
module Graph = Simd_dreorg.Graph
module Offset = Simd_dreorg.Offset
module Policy = Simd_dreorg.Policy
module Config = Simd_machine.Config

(* ------------------------------------------------------------------ *)
(* Shared streams of a placed body                                     *)
(* ------------------------------------------------------------------ *)

type shared = {
  sh_chain : Graph.chain;  (** the duplicated reorganization chain *)
  sh_count : int;  (** number of consumers (occurrences body-wide), ≥ 2 *)
  sh_saved : float;
      (** shift cost paid [sh_count − 1] fewer times thanks to sharing:
          the chain's outermost hop, once per extra consumer *)
}

let last_hop (c : Graph.chain) =
  List.nth c.Graph.chain_hops (List.length c.Graph.chain_hops - 1)

(* Group by [Graph.equal_chain], preserving first-seen order. *)
let group_chains chains =
  let rec add c = function
    | [] -> [ (c, 1) ]
    | (c', n) :: tl when Graph.equal_chain c c' -> (c', n + 1) :: tl
    | hd :: tl -> hd :: add c tl
  in
  List.fold_left (fun acc c -> add c acc) [] chains

(** [shared_streams ~analysis graphs] — every reorganization chain that
    occurs at least twice across the body's placed graphs. Each entry of a
    multi-hop chain is counted separately ({!Graph.chains}): sharing the
    outer hop implies sharing the inner ones, and each contributes its own
    saved shift. *)
let shared_streams ~(analysis : Analysis.t) (graphs : Graph.t list) :
    shared list =
  let machine = analysis.Analysis.machine in
  List.concat_map (fun (g : Graph.t) -> Graph.all_chains g) graphs
  |> group_chains
  |> List.filter_map (fun (c, n) ->
         if n < 2 then None
         else begin
           let from, to_ = last_hop c in
           let saved =
             float_of_int (n - 1) *. Cost.shift_cost machine ~from ~to_
           in
           Some { sh_chain = c; sh_count = n; sh_saved = saved }
         end)

(** [body_cost ~analysis placed] — the whole-body static cost: the sum of
    per-statement graph costs minus the sharing discount (each duplicated
    chain's outermost shift is paid once, not once per consumer). Loads
    deduplicate under value numbering too, but identically under every
    placement of the same body, so they do not enter the comparison. *)
let pp_shared fmt s =
  let from, to_ = last_hop s.sh_chain in
  Format.fprintf fmt "vshiftstream(%s, %a -> %a) x%d (saves %.2f)"
    (Pp.mem_ref_to_string s.sh_chain.Graph.chain_ref)
    Offset.pp from Offset.pp to_ s.sh_count s.sh_saved

let body_cost ~(analysis : Analysis.t) (placed : (Ast.stmt * Graph.t) list) :
    float =
  let total =
    List.fold_left
      (fun acc (stmt, g) -> acc +. Cost.graph_cost ~analysis ~stmt g)
      0.0 placed
  in
  let discount =
    List.fold_left
      (fun acc s -> acc +. s.sh_saved)
      0.0
      (shared_streams ~analysis (List.map snd placed))
  in
  total -. discount

(* ------------------------------------------------------------------ *)
(* The joint solver                                                    *)
(* ------------------------------------------------------------------ *)

(** Sharing-assignment sweep bound: at most this many candidate bodies
    from the σ-assignment product (per-class target sets are tiny — the
    consuming statements' store offsets plus 0 — so real bodies stay far
    below it). *)
let cap = 256

(* A shareable stream class: one leaf kind with a compile-time native
   offset. Identity ignores the native offset (it is determined by the
   reference). *)
type cls = { cl_ref : Ast.mem_ref; cl_gather : bool; cl_native : int }

let equal_cls a b =
  Ast.equal_mem_ref a.cl_ref b.cl_ref && a.cl_gather = b.cl_gather

(* Leaf classes of a bare tree, one entry per occurrence. Runtime-offset
   loads are not shareable (the DP never sees them). *)
let leaf_classes ~(analysis : Analysis.t) root =
  let rec go acc = function
    | Graph.Load r -> (
      match Analysis.offset_of analysis r with
      | Align.Known k -> { cl_ref = r; cl_gather = false; cl_native = k } :: acc
      | Align.Runtime -> acc)
    | Graph.Strided r -> { cl_ref = r; cl_gather = true; cl_native = 0 } :: acc
    | Graph.Splat _ -> acc
    | Graph.Op (_, a, b) | Graph.Cmp (_, a, b) -> go (go acc a) b
    | Graph.Sel (m, a, b) -> go (go (go acc m) a) b
    | Graph.Shift (src, _, _) -> go acc src
  in
  go [] root

(* A leaf that may route through the shared stream offset [sigma]: the
   [o → sigma] hop is materialized per consumer (so each graph validates
   standalone and value numbering can merge the copies) but priced as
   shared — free within the statement's table. The final argmin re-scores
   every candidate by the true {!body_cost}, so a lone consumer cannot win
   on the discounted table. *)
let shared_leaf ~machine ~v n ~o ~sigma =
  let tbl =
    Array.init v (fun t ->
        Float.min
          (Table.sc machine ~from:o ~to_:t)
          (Table.sc machine ~from:sigma ~to_:t))
  in
  let rebuild t =
    if Table.sc machine ~from:sigma ~to_:t < Table.sc machine ~from:o ~to_:t
    then begin
      let inner =
        if sigma = o then n
        else Graph.Shift (n, Offset.Known o, Offset.Known sigma)
      in
      if t = sigma then inner
      else Graph.Shift (inner, Offset.Known sigma, Offset.Known t)
    end
    else if t = o then n
    else Graph.Shift (n, Offset.Known o, Offset.Known t)
  in
  (Table.Tbl tbl, rebuild)

(** [place_body ~analysis stmts] — place the whole body jointly, returning
    each statement's graph and the policy that actually produced it in
    body order ([Joint] for compile-time-aligned statements, [Zero] for
    the runtime-aligned fallback). *)
let place_body ~(analysis : Analysis.t) (stmts : Ast.stmt list) :
    (Ast.stmt * Graph.t * Policy.t) list =
  let machine = analysis.Analysis.machine in
  let v = Config.vector_len machine in
  let block = analysis.Analysis.block in
  let tagged = List.mapi (fun i s -> (i, s)) stmts in
  let known, unknown =
    List.partition (fun (_, s) -> Policy.offsets_known ~analysis s) tagged
  in
  let unknown_placed =
    List.map
      (fun (i, s) ->
        (i, s, Policy.place_exn Policy.Zero ~analysis s, Policy.Zero))
      unknown
  in
  let prepared =
    List.map
      (fun (i, s) ->
        let root = Graph.of_expr s.Ast.rhs in
        let mroot = Option.map Graph.of_cond s.Ast.guard in
        let target =
          match Policy.target_offset ~analysis s with
          | Offset.Known k -> k
          | Offset.Runtime _ | Offset.Any -> assert false (* offsets known *)
        in
        (i, s, root, mroot, target))
      known
  in
  let solve_stmt ?override (s, root, mroot, target) =
    let _table, rebuild = Solve.build ?override ~analysis ~machine ~v root in
    let store_offset = Policy.target_offset ~analysis s in
    (* the mask tree is placed by the same DP (and the same override, so
       guard streams participate in sharing) at the store offset *)
    let mask =
      Option.map
        (fun m ->
          let _t, mrebuild = Solve.build ?override ~analysis ~machine ~v m in
          mrebuild target)
        mroot
    in
    { Graph.store = s.Ast.lhs; store_offset; root = rebuild target; block;
      mask }
  in
  (* Candidate 0: the per-statement optimum — joint can never be worse. *)
  let baseline =
    List.map (fun (_, s, root, m, t) -> solve_stmt (s, root, m, t)) prepared
  in
  (* σ-assignment sweep over the shareable classes (mask trees included:
     a guard load shares its stream like any other load). *)
  let stmt_classes (root, mroot) =
    leaf_classes ~analysis root
    @
    match mroot with Some m -> leaf_classes ~analysis m | None -> []
  in
  let all_cls =
    List.concat_map (fun (_, _, root, mroot, _) -> stmt_classes (root, mroot))
      prepared
  in
  let shared_cls =
    let rec count c = function
      | [] -> 0
      | c' :: tl -> (if equal_cls c c' then 1 else 0) + count c tl
    in
    let rec uniq seen = function
      | [] -> List.rev seen
      | c :: tl ->
        if List.exists (equal_cls c) seen then uniq seen tl
        else uniq (c :: seen) tl
    in
    List.filter (fun c -> count c all_cls >= 2) (uniq [] all_cls)
  in
  let class_opts =
    List.map
      (fun c ->
        let targets =
          List.filter_map
            (fun (_, _, root, mroot, t) ->
              if List.exists (equal_cls c) (stmt_classes (root, mroot)) then
                Some t
              else None)
            prepared
        in
        let sigmas =
          List.sort_uniq compare (0 :: targets)
          |> List.filter (fun k -> k <> c.cl_native && k >= 0 && k < v)
        in
        (c, None :: List.map Option.some sigmas))
      shared_cls
  in
  let assignments =
    List.fold_left
      (fun acc (c, opts) ->
        if List.length acc * List.length opts > cap then acc
        else
          List.concat_map
            (fun asg -> List.map (fun o -> (c, o) :: asg) opts)
            acc)
      [ [] ] class_opts
    (* the all-None assignment is the baseline; drop it *)
    |> List.filter (List.exists (fun (_, o) -> o <> None))
  in
  let shared_bodies =
    List.map
      (fun asg ->
        let lookup c =
          List.find_map (fun (c', o) -> if equal_cls c c' then o else None) asg
        in
        let override n =
          match n with
          | Graph.Load r -> (
            match Analysis.offset_of analysis r with
            | Align.Known o -> (
              match lookup { cl_ref = r; cl_gather = false; cl_native = o } with
              | Some sigma -> Some (shared_leaf ~machine ~v n ~o ~sigma)
              | None -> None)
            | Align.Runtime -> None)
          | Graph.Strided r -> (
            match lookup { cl_ref = r; cl_gather = true; cl_native = 0 } with
            | Some sigma -> Some (shared_leaf ~machine ~v n ~o:0 ~sigma)
            | None -> None)
          | Graph.Splat _ | Graph.Op _ | Graph.Shift _ | Graph.Cmp _
          | Graph.Sel _ ->
            None
        in
        List.map
          (fun (_, s, root, m, t) -> solve_stmt ~override (s, root, m, t))
          prepared)
      assignments
  in
  (* Each §3.4 heuristic applied body-wide: under the sharing discount a
     heuristic's uniform detours (e.g. zero-shift meeting every stream at
     offset 0) can beat the per-statement optimum, so they compete too. *)
  let heuristic_bodies =
    List.filter_map
      (fun h ->
        let gs =
          List.map
            (fun (_, s, _, _, _) ->
              Result.to_option (Policy.place h ~analysis s))
            prepared
        in
        if List.for_all Option.is_some gs then
          Some (List.map Option.get gs)
        else None)
      Policy.heuristics
  in
  let assemble known_graphs =
    let known_entries =
      List.map2
        (fun (i, s, _, _, _) g -> (i, s, g, Policy.Joint))
        prepared known_graphs
    in
    List.sort
      (fun (i, _, _, _) (j, _, _, _) -> compare i j)
      (known_entries @ unknown_placed)
    |> List.map (fun (_, s, g, p) -> (s, g, p))
  in
  let score known_graphs =
    body_cost ~analysis
      (List.map (fun (s, g, _) -> (s, g)) (assemble known_graphs))
  in
  (* Strict [<]: ties keep the earliest candidate, so the per-statement
     optimum wins unless sharing (or a heuristic body) strictly helps. *)
  let best, _ =
    List.fold_left
      (fun ((_, bc) as acc) cand ->
        let c = score cand in
        if c < bc then (cand, c) else acc)
      (baseline, score baseline)
      (shared_bodies @ heuristic_bodies)
  in
  assemble best
