(** Content-addressed artifact store (see the interface). *)

type stats = { hits : int; misses : int; evictions : int; corrupt : int }

type t = {
  dir : string;
  max_entries : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corrupt : int;
}

let dir t = t.dir

let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; corrupt = t.corrupt }

let stats_to_json (s : stats) =
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
      ("corrupt", Json.Int s.corrupt);
    ]

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let create ?max_entries ~dir () =
  mkdir_p dir;
  { dir; max_entries; hits = 0; misses = 0; evictions = 0; corrupt = 0 }

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* ------------------------------------------------------------------ *)
(* Entry layout                                                        *)
(* ------------------------------------------------------------------ *)

let blob_suffix = ".blob"
let raw_suffix = ".raw"
let blob_path t ~key = Filename.concat t.dir (key ^ blob_suffix)
let raw_path t ~key = Filename.concat t.dir (key ^ raw_suffix)

let is_entry name =
  Filename.check_suffix name blob_suffix || Filename.check_suffix name raw_suffix

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* Mark an entry recently used. [Unix.utimes p 0. 0.] sets both times to
   now; failure (entry evicted by a concurrent sweep) is harmless. *)
let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic write: unique temp name in the store directory, then rename.
   Best-effort — a store that cannot be written (disk full, directory
   removed, permissions) degrades to a future miss; it never raises into
   a caller whose own work already succeeded. A failed write never leaves
   the temp file behind, and a short write is never renamed into place. *)
let write_atomic t path contents =
  match Filename.temp_file ~temp_dir:t.dir "cas" ".tmp" with
  | exception Sys_error _ -> ()
  | tmp ->
    let wrote =
      match open_out_bin tmp with
      | exception Sys_error _ -> false
      | oc -> (
        try
          output_string oc contents;
          close_out oc;
          true
        with Sys_error _ ->
          close_out_noerr oc;
          false)
    in
    if not wrote then remove_quiet tmp
    else (try Sys.rename tmp path with Sys_error _ -> remove_quiet tmp)

(* ------------------------------------------------------------------ *)
(* LRU sweep                                                           *)
(* ------------------------------------------------------------------ *)

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           if not (is_entry name) then None
           else
             let path = Filename.concat t.dir name in
             match Unix.stat path with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind = Unix.S_REG ->
               Some (path, st.Unix.st_mtime)
             | _ -> None)

let entry_count t = List.length (entries t)

let sweep t =
  match t.max_entries with
  | None -> 0
  | Some bound ->
    let es = entries t in
    let excess = List.length es - bound in
    if excess <= 0 then 0
    else begin
      let oldest_first =
        List.sort (fun (p1, m1) (p2, m2) -> compare (m1, p1) (m2, p2)) es
      in
      let victims = List.filteri (fun i _ -> i < excess) oldest_first in
      List.iter (fun (path, _) -> remove_quiet path) victims;
      let n = List.length victims in
      t.evictions <- t.evictions + n;
      n
    end

(* ------------------------------------------------------------------ *)
(* Blob entries: integrity envelope                                    *)
(* ------------------------------------------------------------------ *)

(* First line: magic, payload digest, payload length. A reader that finds
   anything else — truncation, a torn write on a non-POSIX filesystem,
   plain disk rot — treats the entry as absent and rebuilds. *)
let envelope payload =
  Printf.sprintf "simd-cas/1 %s %d\n"
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

let decode_entry raw : string option =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub raw 0 nl in
    let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
    match String.split_on_char ' ' header with
    | [ "simd-cas/1"; digest; len ] ->
      if
        int_of_string_opt len = Some (String.length payload)
        && Digest.to_hex (Digest.string payload) = digest
      then Some payload
      else None
    | _ -> None)

let find t ~key =
  let path = blob_path t ~key in
  match read_file path with
  | exception Sys_error _ ->
    t.misses <- t.misses + 1;
    None
  | raw -> (
    match decode_entry raw with
    | Some payload ->
      t.hits <- t.hits + 1;
      touch path;
      Some payload
    | None ->
      (* corrupt: delete so the rebuilt entry replaces it *)
      t.corrupt <- t.corrupt + 1;
      t.misses <- t.misses + 1;
      remove_quiet path;
      None)

let store t ~key payload =
  write_atomic t (blob_path t ~key) (envelope payload ^ payload);
  ignore (sweep t)

let find_or_build t ~key build =
  match find t ~key with
  | Some payload -> Ok payload
  | None -> (
    match build () with
    | Error _ as e -> e
    | Ok payload ->
      store t ~key payload;
      Ok payload)

(* ------------------------------------------------------------------ *)
(* Raw file entries                                                    *)
(* ------------------------------------------------------------------ *)

let find_raw t ~key =
  let path = raw_path t ~key in
  if Sys.file_exists path then begin
    t.hits <- t.hits + 1;
    touch path;
    Some path
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

let build_raw t ~key builder =
  match find_raw t ~key with
  | Some path -> Ok path
  | None -> (
    let path = raw_path t ~key in
    let tmp = Filename.temp_file ~temp_dir:t.dir "cas" ".tmp" in
    (* temp_file creates the file; the builder overwrites it *)
    match builder tmp with
    | Error m ->
      remove_quiet tmp;
      Error m
    | Ok () ->
      let placed =
        try
          Sys.rename tmp path;
          true
        with Sys_error _ ->
          remove_quiet tmp;
          (* a concurrent builder may have won the rename race *)
          Sys.file_exists path
      in
      ignore (sweep t);
      if placed then Ok path
      else Error ("cas: cannot place artifact at " ^ path))
