(** Minimal JSON document builder and printer.

    The container has no JSON library, and the machine-readable outputs this
    repo emits (static cost reports, bench results) only need construction
    and printing — never parsing. Values are a plain variant; [to_string]
    produces RFC 8259-conformant text: strings are escaped, non-finite
    floats (which JSON cannot represent) are emitted as null, and integral
    floats keep a trailing [.0] so readers preserve the number's type. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level (v : t) =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        emit buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  output_char oc '\n'

let to_file ?indent path v =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel ?indent oc v)
