(** Minimal JSON document builder, printer, and parser.

    The container has no JSON library. Values are a plain variant;
    [to_string] produces RFC 8259-conformant text: strings are escaped,
    non-finite floats (which JSON cannot represent) are emitted as null,
    and integral floats keep a trailing [.0] so readers preserve the
    number's type. [of_string] is the matching recursive-descent reader —
    the compile-service protocol ({!Simd_serve}) is newline-delimited JSON
    in both directions, so the repo now needs both halves. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level (v : t) =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        emit buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  output_char oc '\n'

let to_file ?indent path v =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel ?indent oc v)

(* ------------------------------------------------------------------ *)
(* Single-line rendering (newline-delimited protocols)                 *)
(* ------------------------------------------------------------------ *)

let rec emit_line buf (v : t) =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit_line buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        emit_line buf item)
      fields;
    Buffer.add_char buf '}'

let to_line v =
  let buf = Buffer.create 256 in
  emit_line buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type reader = { src : string; mutable pos : int }

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let next r =
  match peek r with
  | Some c ->
    r.pos <- r.pos + 1;
    c
  | None -> parse_fail "unexpected end of input"

let skip_ws r =
  while
    match peek r with
    | Some (' ' | '\t' | '\n' | '\r') ->
      r.pos <- r.pos + 1;
      true
    | _ -> false
  do
    ()
  done

let expect r c =
  let got = next r in
  if got <> c then parse_fail "expected %C at offset %d, got %C" c (r.pos - 1) got

let expect_lit r lit value =
  String.iter (expect r) lit;
  value

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> parse_fail "bad hex digit %C" c

(* UTF-8-encode one code point (surrogate pairs already combined). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_u16 r =
  let a = hex_digit (next r) in
  let b = hex_digit (next r) in
  let c = hex_digit (next r) in
  let d = hex_digit (next r) in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string_body r =
  let buf = Buffer.create 16 in
  let rec loop () =
    match next r with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (match next r with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        let cp = parse_u16 r in
        if cp >= 0xD800 && cp <= 0xDBFF then begin
          (* high surrogate: a \uXXXX low surrogate must follow *)
          expect r '\\';
          expect r 'u';
          let lo = parse_u16 r in
          if lo < 0xDC00 || lo > 0xDFFF then
            parse_fail "unpaired surrogate \\u%04x" cp;
          add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
        end
        else add_utf8 buf cp
      | c -> parse_fail "bad escape \\%C" c);
      loop ()
    | c when Char.code c < 0x20 ->
      parse_fail "unescaped control character 0x%02x in string" (Char.code c)
    | c ->
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number r =
  let start = r.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek r with Some c -> is_num_char c | None -> false do
    r.pos <- r.pos + 1
  done;
  let text = String.sub r.src start (r.pos - start) in
  let integral =
    not (String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text)
  in
  if integral then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
      (* out of int range: fall back to float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail "bad number %S" text)
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail "bad number %S" text

let rec parse_value r =
  skip_ws r;
  match peek r with
  | None -> parse_fail "unexpected end of input"
  | Some 'n' -> expect_lit r "null" Null
  | Some 't' -> expect_lit r "true" (Bool true)
  | Some 'f' -> expect_lit r "false" (Bool false)
  | Some '"' ->
    r.pos <- r.pos + 1;
    String (parse_string_body r)
  | Some '[' ->
    r.pos <- r.pos + 1;
    skip_ws r;
    if peek r = Some ']' then begin
      r.pos <- r.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value r ] in
      skip_ws r;
      while peek r = Some ',' do
        r.pos <- r.pos + 1;
        items := parse_value r :: !items;
        skip_ws r
      done;
      expect r ']';
      List (List.rev !items)
    end
  | Some '{' ->
    r.pos <- r.pos + 1;
    skip_ws r;
    if peek r = Some '}' then begin
      r.pos <- r.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws r;
        expect r '"';
        let k = parse_string_body r in
        skip_ws r;
        expect r ':';
        let v = parse_value r in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws r;
      while peek r = Some ',' do
        r.pos <- r.pos + 1;
        fields := field () :: !fields;
        skip_ws r
      done;
      expect r '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number r
  | Some c -> parse_fail "unexpected character %C at offset %d" c r.pos

let of_string s : (t, string) result =
  let r = { src = s; pos = 0 } in
  try
    let v = parse_value r in
    skip_ws r;
    if r.pos <> String.length s then
      parse_fail "trailing garbage at offset %d" r.pos;
    Ok v
  with Parse_error m -> Error ("json: " ^ m)

(* ------------------------------------------------------------------ *)
(* Accessors (Obj field lookup for protocol readers)                   *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None

let to_bool_opt = function
  | Bool b -> Some b
  | Int 0 -> Some false
  | Int 1 -> Some true
  | _ -> None
