(** Minimal JSON document builder and printer (construction only — the
    machine-readable outputs in this repo are write-only). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed JSON text (default indent 2). Non-finite floats become
    [null]; strings are escaped per RFC 8259. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val to_file : ?indent:int -> string -> t -> unit
