(** Minimal JSON document builder, printer, and parser. The parser exists
    for the compile-service protocol ({!Simd_serve}), which speaks
    newline-delimited JSON in both directions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed JSON text (default indent 2). Non-finite floats become
    [null]; strings are escaped per RFC 8259. *)

val to_line : t -> string
(** Compact single-line rendering (no spaces, no newlines) — the framing
    unit of newline-delimited protocols. Same escaping rules as
    {!to_string}, so [of_string (to_line v) = Ok v] for any [v] without
    non-finite floats. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val to_file : ?indent:int -> string -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document (RFC 8259: [\uXXXX] escapes are UTF-8
    encoded, surrogate pairs combined; numbers without [./e/E] that fit in
    [int] parse as {!Int}, everything else as {!Float}). Rejects trailing
    garbage. Never raises. *)

val member : string -> t -> t option
(** [member key (Obj fields)] — field lookup; [None] on missing key or
    non-object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option

val to_bool_opt : t -> bool option
(** Accepts [Bool], plus [Int 0/1] (the fuzz-header convention). *)
