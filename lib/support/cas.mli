(** Content-addressed on-disk artifact store.

    Generalized from the native oracle's compiled-harness cache
    ({!Simd_par.Native}) so every subsystem that maps a deterministic key
    to an expensive artifact — compiled harness binaries, whole
    compilation artifacts in the compile service ({!Simd_serve}) — shares
    one implementation with one set of guarantees:

    - {b Content addressing}: callers derive the key with {!key} from
      every input that determines the artifact (source, configuration,
      tool identity, library version). Stale entries are impossible by
      construction; cache directories carry over between runs and
      machines freely.
    - {b Concurrent-writer safety}: entries are written to a unique
      temporary name in the store directory and [rename]d into place
      (atomic on POSIX). Two processes building the same key race
      harmlessly — both succeed, one rename wins, the artifacts are
      identical anyway.
    - {b Corruption recovery}: blob entries carry an integrity envelope
      (length + digest). A truncated, garbled, or unreadable entry is
      counted, deleted, and treated as a miss — the artifact is rebuilt;
      corruption is never fatal and never served.
    - {b Bounded size}: with [max_entries] set, an LRU sweep (by entry
      mtime; hits touch their entry) evicts the oldest entries whenever
      the store grows past the bound.

    Two entry flavors share the store and the LRU sweep:

    - {e blobs} — string artifacts wrapped in the integrity envelope
      ([<key>.blob] files); and
    - {e raw files} — artifacts that must exist as plain files on disk,
      e.g. executables ([<key>.raw] files; integrity is existence-only,
      since external tools produce and consume them directly). *)

type t

(** Monotonic per-store counters (process-local). *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries removed by the LRU sweep *)
  corrupt : int;  (** blob entries that failed integrity validation *)
}

val create : ?max_entries:int -> dir:string -> unit -> t
(** Open (creating if missing, including parents) the store rooted at
    [dir]. [max_entries], when given, bounds the total number of entries
    (blobs + raw files); every store past the bound triggers an LRU
    sweep. Without it the store only grows (the native-oracle default,
    where CI caching manages lifetime). *)

val dir : t -> string
val stats : t -> stats

val stats_to_json : stats -> Json.t
(** [{"hits": .., "misses": .., "evictions": .., "corrupt": ..}] — the
    cache section of telemetry documents ([simd-serve/1], fuzz
    [--report-json] perf). *)

val key : string list -> string
(** Digest of the parts, NUL-separated (so part boundaries cannot be
    forged by concatenation). MD5 hex — a content-addressed build cache
    needs collision resistance against accident, not adversaries. *)

(** {1 Blob entries} *)

val find : t -> key:string -> string option
(** The stored artifact, validated against its envelope. Counts a hit
    (touching the entry for LRU) or a miss; an entry failing validation
    also counts as [corrupt] and is deleted. *)

val store : t -> key:string -> string -> unit
(** Write (or atomically overwrite) the blob entry for [key], then sweep
    if the store is bounded. Best-effort: a store that cannot be written
    (disk full, directory removed) degrades to a future miss rather than
    raising — the caller's artifact is already in hand. *)

val find_or_build :
  t -> key:string -> (unit -> (string, string) result) -> (string, string) result
(** [find] then, on a miss, run the builder and [store] its output.
    Builder errors are returned, not cached. *)

(** {1 Raw file entries} *)

val raw_path : t -> key:string -> string
(** The path the raw entry for [key] lives at (whether or not it exists
    yet). *)

val find_raw : t -> key:string -> string option
(** The entry's path when present (counts a hit and touches it), [None]
    otherwise (counts a miss). *)

val build_raw :
  t -> key:string -> (string -> (unit, string) result) -> (string, string) result
(** [build_raw t ~key builder] — on a miss, [builder tmp] must produce
    the artifact at path [tmp] (a unique name in the store directory);
    it is then renamed into place and the final path returned. On a hit,
    the builder does not run. *)

(** {1 Maintenance} *)

val sweep : t -> int
(** Evict least-recently-used entries until the store is within
    [max_entries] (no-op for unbounded stores); returns the number
    evicted. Runs automatically on [store]/[build_raw]. *)

val entry_count : t -> int
(** Current number of entries on disk (blobs + raw files). *)
