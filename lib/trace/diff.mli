(** Deterministic line-oriented diff (exact LCS) between two
    pretty-printed IR snapshots. The same input pair always renders the
    same edit script, so transcripts embedding these diffs are stable
    enough for documentation drift checks. *)

type line =
  | Keep of string  (** present in both versions *)
  | Del of string  (** only in the old version *)
  | Add of string  (** only in the new version *)

val lines : string -> string -> line list
(** [lines old_s new_s] — LCS-minimal whole-line edit script from [old_s]
    to [new_s]. A trailing newline does not produce a phantom empty line. *)

val changed : line list -> bool
(** Does the script contain any [Del]/[Add]? *)

val changes_only : line list -> line list
(** Drop [Keep] lines, preserving order. *)

val line_to_string : line -> string
(** ["  x"], ["- x"] or ["+ x"]. *)

val pp : Format.formatter -> line list -> unit

val to_json : line list -> Simd_support.Json.t
(** The rendered lines as a JSON string array. *)
