(** Pass-pipeline tracing: an observability layer the driver threads
    through one compilation, recording an ordered sequence of events —
    shift-placement provenance (which policy or solver rule placed each
    [vshiftstream] at which offset and what it cost under {!Simd_opt.Cost}),
    the generated IR, and one event per optimization pass with pre/post
    snapshots, structural diffs ({!Diff}) and operation-count deltas.

    Design constraints, in order:

    - {b Zero cost when off.} The default sink {!none} is inert: the driver
      guards every snapshot construction behind {!active}, so an untraced
      compilation performs no pretty-printing, no diffing, and no
      allocation beyond the [if].
    - {b Deterministic.} Everything in the comparable output ({!pp},
      {!to_json} with [~timings:false], the default) is a pure function of
      the compilation: no timestamps, no hash ordering. Wall-clock pass
      durations are recorded in the events but only rendered when
      explicitly requested, so traces can be embedded in documentation and
      diffed by CI.
    - {b Machine readable.} {!to_json} follows the schema documented in
      [docs/TRACE.md]; {!summary_to_json} is the compact per-scheme form
      the benchmark harness attaches to its JSON documents. *)

module Json = Simd_support.Json
module Prog = Simd_vir.Prog
module Expr = Simd_vir.Expr
module Offset = Simd_dreorg.Offset
module Policy = Simd_dreorg.Policy
module Cost = Simd_opt.Cost
module Diff = Diff

(* ------------------------------------------------------------------ *)
(* The pass registry                                                   *)
(* ------------------------------------------------------------------ *)

(** The config-gated passes of the driver pipeline, in application order —
    the single source of truth shared by the driver's tracing, the fuzz
    bisector ({!Simd_fuzz.Bisect}), and the generated documentation.
    [reassoc] runs on the scalar AST before placement; the rest transform
    the generated vector IR. *)
let pipeline : (string * string) list =
  [
    ("reassoc", "common-offset reassociation of the scalar AST (§5.5)");
    ("hoist_splats", "loop-invariant vsplat hoisting into the prologue");
    ("memnorm", "load-address normalization to V-aligned chunks");
    ("cse", "local value numbering (three-address form)");
    ("predictive_commoning", "cross-iteration value reuse via carried temps");
    ("unroll", "steady-body unrolling with seam-restore coalescing (§4.5)");
    ("specialize_epilogue", "guard folding for compile-time trip counts");
    ( "vir_cleanup",
      "dataflow-backed cleanup: copy propagation, shift combining, \
       invariant hoisting, DCE" );
  ]

let pass_names = List.map fst pipeline

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type section = {
  text : string;  (** pretty-printed statements *)
  counts : Prog.static_counts;
}

type snapshot = { prologue : section; body : section; epilogues : section }

let section_of_stmts (stmts : Expr.stmt list) : section =
  {
    text =
      Format.asprintf "@[<v>%a@]"
        (fun fmt -> List.iter (Prog.pp_stmt ~indent:0 fmt))
        stmts;
    counts = Prog.static_counts_of_stmts stmts;
  }

(** [snapshot ~prologue ~body ~epilogues] — capture the three IR regions of
    a compilation in flight ([epilogues] is empty until derived). *)
let snapshot ~prologue ~body ~epilogues : snapshot =
  {
    prologue = section_of_stmts prologue;
    body = section_of_stmts body;
    epilogues = section_of_stmts (List.concat epilogues);
  }

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

(** Provenance of one placed [vshiftstream]. *)
type shift_prov = {
  sp_from : Offset.t;
  sp_to : Offset.t;
  sp_dir : Cost.direction option;  (** lowering direction, None for no-op *)
  sp_cost : float;  (** price of this shift under the machine cost model *)
}

(** One statement's shift placement: which policy (or the exact solver, or
    the zero-shift fallback) produced the graph, where it put each shift,
    and what the statement costs under {!Simd_opt.Cost}. *)
type placement = {
  pl_index : int;
  pl_source : string;  (** the statement, pretty-printed *)
  pl_requested : Policy.t;
  pl_used : Policy.t;
      (** differs from [pl_requested] under [Auto] selection or the §4.4
          zero-shift fallback — this is the provenance rule *)
  pl_target : Offset.t;  (** offset the value stream must reach (C.2) *)
  pl_graph : string;  (** the placed reorganization graph, pretty-printed *)
  pl_shifts : shift_prov list;  (** in evaluation order *)
  pl_shift_cost : float;  (** placement-variant term *)
  pl_cost : float;  (** full statement cost *)
}

type event =
  | Reassoc of { applied : bool; before : string; after : string }
      (** scalar-AST reassociation; [applied = false] records the pass was
          configured off *)
  | Placement of placement
  | Generated of { mode : string; snap : snapshot }
      (** initial vector IR out of [Gen.generate] *)
  | Pass of {
      name : string;  (** a {!pipeline} name or a structural stage *)
      enabled : bool;  (** configured to run? (skips are recorded) *)
      before : snapshot;
      after : snapshot;
      elapsed_ms : float;  (** wall clock; excluded from comparable output *)
    }
  | Note of { label : string; body : string; timed : bool }
      (** free-form event from a subsystem outside the compilation pipeline
          (the {!Simd_par} pool emits its job log and stats this way);
          [timed] marks bodies carrying wall-clock data, which — like pass
          durations — are excluded from the comparable output *)
  | Check of { name : string; violations : string list }
      (** static-verifier findings at the pass boundary [name]
          ([Simd_check.Check] via the driver's [~check] mode); only fresh
          violations — first seen at this boundary — are recorded, so the
          event names the offending pass. Rendered violation strings keep
          this module independent of the checker. *)

(* ------------------------------------------------------------------ *)
(* The sink                                                            *)
(* ------------------------------------------------------------------ *)

type t = { mutable events : event list (* reversed *); enabled : bool }

(** The inert sink: {!active} is false, {!add} is a no-op. Drivers guard
    snapshot construction behind {!active}, so compiling with [none]
    records nothing and costs nothing. *)
let none = { events = []; enabled = false }

let create () = { events = []; enabled = true }
let active t = t.enabled
let add t e = if t.enabled then t.events <- e :: t.events
let events t = List.rev t.events

(** [note t ?timed ~label body] — record a {!Note} event (no-op on an
    inactive sink). Set [timed] when [body] carries wall-clock data. *)
let note t ?(timed = false) ~label body = add t (Note { label; body; timed })

(** [record_pass t ~name ~enabled state snap apply] — run [apply] on
    [state] (when [enabled]), recording a {!Pass} event with pre/post
    snapshots via [snap] if [t] is active. The inactive path performs no
    snapshotting. *)
let record_pass t ~name ~enabled state ~snap apply =
  if not t.enabled then if enabled then apply state else state
  else begin
    let before = snap state in
    let t0 = Sys.time () in
    let state' = if enabled then apply state else state in
    let elapsed_ms = (Sys.time () -. t0) *. 1000. in
    add t (Pass { name; enabled; before; after = snap state'; elapsed_ms });
    state'
  end

(* ------------------------------------------------------------------ *)
(* Deltas and summaries                                                *)
(* ------------------------------------------------------------------ *)

let delta_counts (a : Prog.static_counts) (b : Prog.static_counts) :
    (string * int) list =
  let fields (c : Prog.static_counts) =
    [
      ("loads", c.Prog.loads);
      ("stores", c.Prog.stores);
      ("ops", c.Prog.ops);
      ("splats", c.Prog.splats);
      ("shifts", c.Prog.shifts);
      ("splices", c.Prog.splices);
      ("packs", c.Prog.packs);
      ("copies", c.Prog.copies);
    ]
  in
  List.map2 (fun (k, x) (_, y) -> (k, y - x)) (fields a) (fields b)

let nonzero_deltas d = List.filter (fun (_, v) -> v <> 0) d

let pass_changed ~before ~after =
  before.prologue.text <> after.prologue.text
  || before.body.text <> after.body.text
  || before.epilogues.text <> after.epilogues.text

(** One row of the compact per-scheme summary: a pass, whether it ran,
    whether it changed anything, and its body operation-count delta. *)
type summary_row = {
  row_pass : string;
  row_enabled : bool;
  row_changed : bool;
  row_delta : (string * int) list;  (** nonzero body-count deltas *)
}

(* A pass may legitimately fire more than once (the driver value-numbers
   the body before predictive commoning and the prologue after it, both
   under "cse"); the summary merges repeats into one row per pass. *)
let merge_rows rows =
  let merge_deltas a b =
    let all =
      List.map fst a
      @ List.filter (fun k -> not (List.mem_assoc k a)) (List.map fst b)
    in
    List.filter_map
      (fun k ->
        let v =
          (try List.assoc k a with Not_found -> 0)
          + (try List.assoc k b with Not_found -> 0)
        in
        if v = 0 then None else Some (k, v))
      all
  in
  List.fold_left
    (fun acc r ->
      let rec go = function
        | [] -> [ r ]
        | r' :: rest when r'.row_pass = r.row_pass ->
          {
            r' with
            row_enabled = r'.row_enabled || r.row_enabled;
            row_changed = r'.row_changed || r.row_changed;
            row_delta = merge_deltas r'.row_delta r.row_delta;
          }
          :: rest
        | r' :: rest -> r' :: go rest
      in
      go acc)
    [] rows

let summary t : summary_row list =
  merge_rows
  @@ List.filter_map
    (function
      | Pass { name; enabled; before; after; _ } ->
        Some
          {
            row_pass = name;
            row_enabled = enabled;
            row_changed = pass_changed ~before ~after;
            row_delta =
              nonzero_deltas (delta_counts before.body.counts after.body.counts);
          }
      | Reassoc { applied; before; after } ->
        Some
          {
            row_pass = "reassoc";
            row_enabled = applied;
            row_changed = applied && before <> after;
            row_delta = [];
          }
      | Placement _ | Generated _ | Note _ | Check _ -> None)
    (events t)

(* ------------------------------------------------------------------ *)
(* Human transcript                                                    *)
(* ------------------------------------------------------------------ *)

let policy_name = Policy.name

let pp_offset fmt (o : Offset.t) = Offset.pp fmt o

let dir_name = function
  | Some Cost.Left -> "left"
  | Some Cost.Right -> "right"
  | None -> "none"

let pp_section_diff fmt ~label ~(before : section) ~(after : section) =
  if before.text <> after.text then begin
    Format.fprintf fmt "  %s:@\n" label;
    List.iter
      (fun l -> Format.fprintf fmt "    %s@\n" (Diff.line_to_string l))
      (Diff.lines before.text after.text)
  end

(** [pp ?timings fmt t] — the human transcript. Deterministic unless
    [timings] is set (the default [false] is what documentation embeds). *)
let pp ?(timings = false) fmt t =
  List.iter
    (fun e ->
      match e with
      | Note { label; body; timed } ->
        if (not timed) || timings then
          Format.fprintf fmt "== note %s: %s@\n" label body
      | Check { name; violations } ->
        Format.fprintf fmt "== check at %s: %d violation%s@\n" name
          (List.length violations)
          (if List.length violations = 1 then "" else "s");
        List.iter (fun v -> Format.fprintf fmt "    %s@\n" v) violations
      | Reassoc { applied; before; after } ->
        if not applied then
          Format.fprintf fmt "== reassoc: skipped (flag off)@\n"
        else if before = after then
          Format.fprintf fmt "== reassoc: applied, no change@\n"
        else begin
          Format.fprintf fmt "== reassoc: applied@\n";
          List.iter
            (fun l -> Format.fprintf fmt "    %s@\n" (Diff.line_to_string l))
            (Diff.lines before after)
        end
      | Placement p ->
        Format.fprintf fmt "== placement: stmt %d: %s@\n" p.pl_index p.pl_source;
        Format.fprintf fmt "   requested %s, used %s, target offset %a@\n"
          (policy_name p.pl_requested) (policy_name p.pl_used) pp_offset
          p.pl_target;
        List.iter
          (fun s ->
            Format.fprintf fmt "   vshiftstream %a -> %a (%s, cost %.2f)@\n"
              pp_offset s.sp_from pp_offset s.sp_to (dir_name s.sp_dir)
              s.sp_cost)
          p.pl_shifts;
        Format.fprintf fmt "   shift cost %.2f, statement cost %.2f@\n"
          p.pl_shift_cost p.pl_cost;
        Format.fprintf fmt "   graph:@\n";
        List.iter
          (fun line ->
            if line <> "" then Format.fprintf fmt "     %s@\n" line)
          (String.split_on_char '\n' p.pl_graph)
      | Generated { mode; snap } ->
        Format.fprintf fmt "== generate (%s):@\n" mode;
        List.iter
          (fun line ->
            if line <> "" then Format.fprintf fmt "    %s@\n" line)
          (String.split_on_char '\n' snap.body.text)
      | Pass { name; enabled; before; after; elapsed_ms } ->
        let status =
          if not enabled then "skipped (flag off)"
          else if pass_changed ~before ~after then "applied"
          else "applied, no change"
        in
        Format.fprintf fmt "== pass %s: %s" name status;
        if timings && enabled then Format.fprintf fmt " (%.3f ms)" elapsed_ms;
        Format.fprintf fmt "@\n";
        if enabled && pass_changed ~before ~after then begin
          (match nonzero_deltas (delta_counts before.body.counts after.body.counts) with
          | [] -> ()
          | ds ->
            Format.fprintf fmt "  body counts: %s@\n"
              (String.concat ", "
                 (List.map (fun (k, v) -> Printf.sprintf "%s %+d" k v) ds)));
          pp_section_diff fmt ~label:"prologue" ~before:before.prologue
            ~after:after.prologue;
          pp_section_diff fmt ~label:"body" ~before:before.body ~after:after.body;
          pp_section_diff fmt ~label:"epilogues" ~before:before.epilogues
            ~after:after.epilogues
        end)
    (events t)

let to_string ?timings t = Format.asprintf "%a" (fun fmt -> pp ?timings fmt) t

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let offset_to_json (o : Offset.t) : Json.t =
  match o with
  | Offset.Known k -> Json.Int k
  | Offset.Runtime _ | Offset.Any -> Json.String (Format.asprintf "%a" Offset.pp o)

let counts_to_json (c : Prog.static_counts) : Json.t =
  Json.Obj
    [
      ("loads", Json.Int c.Prog.loads);
      ("stores", Json.Int c.Prog.stores);
      ("ops", Json.Int c.Prog.ops);
      ("splats", Json.Int c.Prog.splats);
      ("shifts", Json.Int c.Prog.shifts);
      ("splices", Json.Int c.Prog.splices);
      ("packs", Json.Int c.Prog.packs);
      ("copies", Json.Int c.Prog.copies);
    ]

let section_to_json (s : section) : Json.t =
  Json.Obj [ ("text", Json.String s.text); ("counts", counts_to_json s.counts) ]

let snapshot_to_json (s : snapshot) : Json.t =
  Json.Obj
    [
      ("prologue", section_to_json s.prologue);
      ("body", section_to_json s.body);
      ("epilogues", section_to_json s.epilogues);
    ]

let shift_to_json (s : shift_prov) : Json.t =
  Json.Obj
    [
      ("from", offset_to_json s.sp_from);
      ("to", offset_to_json s.sp_to);
      ("direction", Json.String (dir_name s.sp_dir));
      ("cost", Json.Float s.sp_cost);
    ]

let event_to_json ~timings (e : event) : Json.t =
  match e with
  | Note { label; body; timed } ->
    Json.Obj
      [
        ("kind", Json.String "note");
        ("label", Json.String label);
        ("body", Json.String body);
        ("timed", Json.Bool timed);
      ]
  | Check { name; violations } ->
    Json.Obj
      [
        ("kind", Json.String "check");
        ("name", Json.String name);
        ( "violations",
          Json.List (List.map (fun v -> Json.String v) violations) );
      ]
  | Reassoc { applied; before; after } ->
    Json.Obj
      [
        ("kind", Json.String "reassoc");
        ("applied", Json.Bool applied);
        ("changed", Json.Bool (applied && before <> after));
        ("diff", Diff.to_json (Diff.lines before after));
      ]
  | Placement p ->
    Json.Obj
      [
        ("kind", Json.String "placement");
        ("stmt", Json.Int p.pl_index);
        ("source", Json.String p.pl_source);
        ("requested_policy", Json.String (policy_name p.pl_requested));
        ("used_policy", Json.String (policy_name p.pl_used));
        ("target_offset", offset_to_json p.pl_target);
        ("graph", Json.String p.pl_graph);
        ("shifts", Json.List (List.map shift_to_json p.pl_shifts));
        ("shift_cost", Json.Float p.pl_shift_cost);
        ("cost", Json.Float p.pl_cost);
      ]
  | Generated { mode; snap } ->
    Json.Obj
      [
        ("kind", Json.String "generate");
        ("mode", Json.String mode);
        ("snapshot", snapshot_to_json snap);
      ]
  | Pass { name; enabled; before; after; elapsed_ms } ->
    Json.Obj
      ([
         ("kind", Json.String "pass");
         ("name", Json.String name);
         ("enabled", Json.Bool enabled);
         ("changed", Json.Bool (pass_changed ~before ~after));
         ( "delta",
           Json.Obj
             (List.map
                (fun (k, v) -> (k, Json.Int v))
                (nonzero_deltas
                   (delta_counts before.body.counts after.body.counts))) );
         ("before", snapshot_to_json before);
         ("after", snapshot_to_json after);
         ("diff", Diff.to_json (Diff.lines before.body.text after.body.text));
       ]
      @ if timings then [ ("elapsed_ms", Json.Float elapsed_ms) ] else [])

(** [to_json ?timings t] — the full machine-readable trace (schema
    [simd-trace/1], documented in [docs/TRACE.md]). Deterministic with
    [timings] off (the default). *)
let to_json ?(timings = false) t : Json.t =
  let comparable = function
    | Note { timed = true; _ } -> timings
    | _ -> true
  in
  Json.Obj
    [
      ("schema", Json.String "simd-trace/1");
      ( "events",
        Json.List
          (List.map (event_to_json ~timings)
             (List.filter comparable (events t))) );
    ]

let summary_row_to_json (r : summary_row) : Json.t =
  Json.Obj
    [
      ("pass", Json.String r.row_pass);
      ("enabled", Json.Bool r.row_enabled);
      ("changed", Json.Bool r.row_changed);
      ( "delta",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.row_delta) );
    ]

(** [summary_to_json t] — the compact pass summary (no snapshots), what
    [bench/main.exe --json] attaches per scheme. *)
let summary_to_json t : Json.t = Json.List (List.map summary_row_to_json (summary t))
