(** Deterministic line-oriented structural diff, used to render what a
    compilation pass did to the IR.

    The algorithm is a plain longest-common-subsequence dynamic program
    over lines. Pass snapshots are small (a loop body is tens of lines),
    so the O(n·m) table is never a concern, and an exact LCS keeps the
    transcripts stable: the same pair of snapshots always renders the same
    diff, which is what lets documentation embed transcripts and CI check
    them for drift. *)

type line =
  | Keep of string  (** present in both versions *)
  | Del of string  (** only in the old version *)
  | Add of string  (** only in the new version *)

let split_lines s =
  (* [String.split_on_char '\n'] leaves a trailing "" for a final newline;
     dropping it keeps diffs of pretty-printed IR free of phantom lines. *)
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest
  | all -> List.rev all

(** [lines old_s new_s] — an LCS-minimal edit script from [old_s] to
    [new_s], as whole lines. *)
let lines old_s new_s : line list =
  let a = Array.of_list (split_lines old_s) in
  let b = Array.of_list (split_lines new_s) in
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] and b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let out = ref [] in
  let emit l = out := l :: !out in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    if a.(!i) = b.(!j) then begin
      emit (Keep a.(!i));
      incr i;
      incr j
    end
    else if lcs.(!i + 1).(!j) >= lcs.(!i).(!j + 1) then begin
      emit (Del a.(!i));
      incr i
    end
    else begin
      emit (Add b.(!j));
      incr j
    end
  done;
  while !i < n do
    emit (Del a.(!i));
    incr i
  done;
  while !j < m do
    emit (Add b.(!j));
    incr j
  done;
  List.rev !out

let changed ls = List.exists (function Keep _ -> false | _ -> true) ls

(** [changes_only ls] — drop [Keep] lines, preserving order (the compact
    form used by transcripts for long bodies). *)
let changes_only ls = List.filter (function Keep _ -> false | _ -> true) ls

let line_to_string = function
  | Keep s -> "  " ^ s
  | Del s -> "- " ^ s
  | Add s -> "+ " ^ s

let pp fmt ls =
  List.iter (fun l -> Format.fprintf fmt "%s@\n" (line_to_string l)) ls

let to_json ls : Simd_support.Json.t =
  Simd_support.Json.List
    (List.map (fun l -> Simd_support.Json.String (line_to_string l)) ls)
