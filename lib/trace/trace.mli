(** Pass-pipeline tracing: an observability layer the driver threads
    through one compilation, recording an ordered sequence of events —
    shift-placement provenance (which policy or solver rule placed each
    [vshiftstream] at which offset and what it cost under
    {!Simd_opt.Cost}), the generated IR, and one event per optimization
    pass with pre/post snapshots, structural diffs ({!Diff}) and
    operation-count deltas.

    Guarantees:

    - {b Zero cost when off}: the {!none} sink is inert; the driver guards
      snapshot construction behind {!active}, so untraced compilations do
      no extra work.
    - {b Deterministic}: {!pp} and {!to_json} with [~timings:false] (the
      default) are pure functions of the compilation — no timestamps —
      so transcripts can be embedded in [docs/] and drift-checked by CI.
    - {b Machine readable}: {!to_json} follows the [simd-trace/1] schema
      documented in [docs/TRACE.md]. *)

module Diff = Diff

(** {1 The pass registry} *)

val pipeline : (string * string) list
(** The config-gated passes of the driver pipeline in application order,
    each with a one-line charter — the shared vocabulary between the
    driver's trace events, the fuzz bisector, and the documentation. *)

val pass_names : string list
(** [List.map fst pipeline]. *)

(** {1 Snapshots} *)

(** One IR region, pretty-printed plus statically counted. *)
type section = { text : string; counts : Simd_vir.Prog.static_counts }

(** The three regions of a compilation in flight. *)
type snapshot = { prologue : section; body : section; epilogues : section }

val snapshot :
  prologue:Simd_vir.Expr.stmt list ->
  body:Simd_vir.Expr.stmt list ->
  epilogues:Simd_vir.Expr.stmt list list ->
  snapshot
(** Capture the current IR regions ([epilogues] is empty until derived). *)

(** {1 Events} *)

(** Provenance of one placed [vshiftstream]. *)
type shift_prov = {
  sp_from : Simd_dreorg.Offset.t;
  sp_to : Simd_dreorg.Offset.t;
  sp_dir : Simd_opt.Cost.direction option;
      (** lowering direction, [None] for a no-op *)
  sp_cost : float;  (** price under the machine cost model *)
}

(** One statement's shift placement: which policy (or solver, or the §4.4
    zero-shift fallback) produced the graph, where it put each shift, and
    what the statement costs. *)
type placement = {
  pl_index : int;  (** statement index in source order *)
  pl_source : string;  (** the statement, pretty-printed *)
  pl_requested : Simd_dreorg.Policy.t;
  pl_used : Simd_dreorg.Policy.t;
      (** differs from [pl_requested] under [Auto] selection or the
          zero-shift runtime-alignment fallback *)
  pl_target : Simd_dreorg.Offset.t;
      (** offset the value stream must reach (constraint C.2) *)
  pl_graph : string;  (** the placed reorganization graph, pretty-printed *)
  pl_shifts : shift_prov list;  (** in evaluation order *)
  pl_shift_cost : float;  (** the placement-variant cost term *)
  pl_cost : float;  (** full statement cost *)
}

type event =
  | Reassoc of { applied : bool; before : string; after : string }
      (** scalar-AST reassociation; [applied = false] records that the
          pass was configured off *)
  | Placement of placement
  | Generated of { mode : string; snap : snapshot }
      (** initial vector IR out of code generation *)
  | Pass of {
      name : string;  (** a {!pipeline} name or a structural stage *)
      enabled : bool;  (** configured to run? (skips are recorded too) *)
      before : snapshot;
      after : snapshot;
      elapsed_ms : float;
          (** wall clock; excluded from comparable output *)
    }
  | Note of { label : string; body : string; timed : bool }
      (** free-form event from a subsystem outside the compilation
          pipeline (e.g. the {!Simd_par} pool's job log and stats);
          [timed] bodies carry wall-clock data and are excluded from the
          comparable output like pass durations *)
  | Check of { name : string; violations : string list }
      (** static-verifier findings first observed at pass boundary [name]
          (the driver's [~check] mode): pre-rendered [Simd_check.Check]
          violation strings. Only emitted when a boundary surfaces fresh
          violations, so untraced and check-free compilations never see
          this event. *)

(** {1 The sink} *)

type t

val none : t
(** The inert sink: {!active} is [false], {!add} does nothing. *)

val create : unit -> t
(** A fresh recording sink. *)

val active : t -> bool
(** Guard for callers: build snapshots/events only when this is [true]. *)

val add : t -> event -> unit
val events : t -> event list
(** Recorded events, oldest first. *)

val note : t -> ?timed:bool -> label:string -> string -> unit
(** [note t ~label body] — record a {!Note} (no-op on an inactive sink).
    Set [timed] when [body] carries wall-clock data, so the default
    deterministic renderings skip it. *)

val record_pass :
  t ->
  name:string ->
  enabled:bool ->
  'a ->
  snap:('a -> snapshot) ->
  ('a -> 'a) ->
  'a
(** [record_pass t ~name ~enabled state ~snap apply] — run [apply] on
    [state] (when [enabled]), recording a {!Pass} event with pre/post
    snapshots and wall time when [t] is {!active}. The inactive path calls
    neither [snap] nor the clock. *)

(** {1 Rendering} *)

val pp : ?timings:bool -> Format.formatter -> t -> unit
(** The human transcript: one block per event with unified line diffs and
    nonzero count deltas. Deterministic unless [timings] (default
    [false]). *)

val to_string : ?timings:bool -> t -> string

val to_json : ?timings:bool -> t -> Simd_support.Json.t
(** The full machine-readable trace, schema [simd-trace/1] (documented in
    [docs/TRACE.md]). Deterministic with [timings] off (the default). *)

(** {1 Summaries} *)

(** One row of the compact per-scheme summary. *)
type summary_row = {
  row_pass : string;
  row_enabled : bool;
  row_changed : bool;
  row_delta : (string * int) list;  (** nonzero body-count deltas *)
}

val summary : t -> summary_row list
(** The {!Pass} and {!Reassoc} events reduced to pass/enabled/changed/delta
    rows, pipeline order. *)

val summary_to_json : t -> Simd_support.Json.t
(** What [bench/main.exe --json] attaches per scheme. *)
