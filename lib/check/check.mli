(** The pass-boundary static verifier: proves the paper's alignment
    invariants and VIR well-formedness on every compilation.

    Three entry points, one per IR level:

    - {!check_graphs} re-validates the placed data-reorganization graphs —
      (C.2) root offset = store alignment, (C.3) matching operand offsets —
      and runs the dead/redundant-shift lint on [vshiftstream] chains;
    - {!check_regions} abstractly interprets emitted VIR: it propagates
      symbolic stream offsets (the {!Absoff} lattice) through every vector
      expression, verifying (C.3) at each [vop]/[vshiftpair]/[vsplice],
      (C.2) at each store, the [vshiftpair] adjacency discipline (the two
      halves must be the current and next register of one stream), plus the
      well-formedness lints: def-before-use, the carried-temp seam
      discipline under unrolling, single definition per carried name, and
      in-range compile-time shift amounts and splice points;
    - {!check_prog} adds the whole-program structural checks against the
      paper's bound formulas: LB = B (Eq. 12), UB per Eqs. 11/13/15, the
      trip guard [3B] (Eq. 16), the prologue splice point (Eq. 8), the
      [unroll + 1] virtual epilogue iterations, per-segment epilogue store
      specialization (Eq. 9/14), and — when a peel amount is supplied — the
      peeling baseline's alignment claim.

    Violations carry a [rule] name (see [docs/CHECK.md] for the
    catalogue), a severity ([Error] = invariant broken, [Warning] = lint),
    the program point, and the offset derivation that failed. [facts]
    counts how many obligations were discharged, so callers can assert the
    checker actually proved something (non-vacuity). *)

open Simd_loopir
open Simd_vir
module Graph = Simd_dreorg.Graph

type severity = Error | Warning

type violation = {
  rule : string;  (** "C.2", "C.3", "adjacency", "def-before-use", ... *)
  severity : severity;
  where : string;  (** region + statement, e.g. ["body#2"] *)
  detail : string;  (** the derivation that failed *)
}

(** Discharged proof obligations (non-vacuity evidence). *)
type facts = {
  ops_proved : int;  (** vector ops with provably matching operands *)
  stores_proved : int;  (** stores with provably matching root offset *)
  shifts_proved : int;  (** shifts with proven adjacency/offset *)
  seams_proved : int;
      (** carried temporaries whose unroll-seam value was validated *)
}

type result = { violations : violation list; facts : facts }

val no_facts : facts
val add_facts : facts -> facts -> facts
val empty : result
val merge : result -> result -> result
val errors : result -> violation list
val warnings : result -> violation list
val severity_name : severity -> string
val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
val violation_to_json : violation -> Simd_support.Json.t
val facts_to_json : facts -> Simd_support.Json.t

val check_graphs :
  analysis:Analysis.t -> (Ast.stmt * Graph.t) list -> result
(** Re-validate placed reorganization graphs ((C.2)/(C.3) via
    {!Simd_dreorg.Graph.validate}) and lint [vshiftstream] nodes whose
    source and target offsets provably coincide — directly, or as a
    shift/unshift pair with zero net offset change. The pair rule counts
    consumers body-wide: a detour through a reorganization chain that
    another statement also rides (one shared stream after value numbering,
    {!Simd_dreorg.Graph.chains}) is paid for by the sharing and is not
    flagged. *)

val check_regions :
  analysis:Analysis.t ->
  ?loads_normalized:bool ->
  prologue:Expr.stmt list ->
  body:Expr.stmt list ->
  epilogues:Expr.stmt list list ->
  unit ->
  result
(** Abstractly interpret the three IR regions in execution order
    (prologue from an empty environment; body to a fixpoint over the
    loop-carried temps; epilogue segments sequentially).

    [loads_normalized] (default false) must be set once MemNorm has
    rewritten compile-time-aligned load addresses to their V-aligned
    chunks: from that point those loads' stream offsets are no longer
    recoverable from the address, so they evaluate to [Top] (the
    obligations were already discharged at the pre-MemNorm boundaries).
    Runtime-aligned loads are untouched by MemNorm and stay symbolic. *)

val check_unroll :
  analysis:Analysis.t ->
  factor:int ->
  pre:Expr.stmt list ->
  post:Expr.stmt list ->
  result
(** Translation validation for the unroll pass: value-number [factor]
    displaced executions of [pre] (the steady body before unrolling) and
    one execution of [post] (the unrolled body) over a shared table, then
    require every loop-carried temporary to end both executions with the
    same symbolic value ([carried-clobber] otherwise — the PR-1
    seam-restore miscompilation, invisible to per-statement offset checks
    because the clobbering value sits at the same offset mod V) and both
    executions to perform identical store sequences ([unroll-equiv]).
    Bodies containing conditionals are not unrolled and are skipped. *)

val check_prog :
  ?peel_amount:int ->
  ?loads_normalized:bool ->
  analysis:Analysis.t ->
  Prog.t ->
  result
(** {!check_regions} plus the structural bound checks (Eqs. 8–16) on a
    complete simdized program. [peel_amount] (the peeling baseline's
    choice) additionally asserts every compile-time reference alignment is
    cancelled by peeling that many iterations. *)
